// Network monitoring (the demo's headline application): a continuous
// aggregate over live per-node statistics, surviving node churn — the
// Figure 1 scenario at example scale.

#include <cinttypes>
#include <cstdio>

#include "core/network.h"
#include "planner/planner.h"
#include "workload/workloads.h"

using namespace pier;

int main() {
  core::PierNetworkOptions opts;
  opts.seed = 2;
  opts.node.router_kind = core::RouterKind::kChord;
  opts.node.engine.result_wait = Seconds(8);
  core::PierNetwork net(48, opts);
  net.Boot(Seconds(60));
  std::printf("48-node PIER network up; starting traffic publishers\n");

  workload::TrafficWorkload traffic(&net, workload::TrafficOptions{},
                                    /*seed=*/11);
  traffic.Start();
  net.RunFor(Seconds(30));

  // Nodes come and go while the query runs.
  sim::ChurnOptions churn;
  churn.mean_session = Seconds(120);
  churn.mean_downtime = Seconds(30);
  churn.start_at = net.sim()->now() + Seconds(30);
  net.EnableChurn(churn);

  std::printf("issuing: SELECT SUM(out_kbps), COUNT(*) FROM node_stats "
              "EVERY 10 SECONDS WINDOW 30 SECONDS\n\n");
  std::printf("%10s %12s %12s %8s\n", "time", "sum(Mbps)", "responding",
              "alive");
  auto q = planner::ExecuteSql(
      net.node(0)->query_engine(),
      "SELECT SUM(out_kbps) AS kbps, COUNT(*) AS nodes FROM node_stats "
      "EVERY 10 SECONDS WINDOW 30 SECONDS",
      [&](const query::ResultBatch& b) {
        if (b.rows.empty()) return;
        double kbps = 0;
        int64_t nodes = 0;
        (void)b.rows[0][0].AsDouble(&kbps);
        (void)b.rows[0][1].AsInt64(&nodes);
        std::printf("%9.0fs %12.2f %12" PRId64 " %8zu\n",
                    ToSecondsF(net.sim()->now()), kbps / 1000.0, nodes,
                    net.alive_count());
      });
  PIER_CHECK(q.ok());

  net.RunFor(Seconds(180));
  net.node(0)->query_engine()->Cancel(q.value());
  net.RunFor(Seconds(5));
  std::printf("\nmonitoring query cancelled cleanly\n");
  return 0;
}
