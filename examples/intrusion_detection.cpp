// Distributed intrusion detection (the paper's Table 1 scenario): every node
// runs a local IDS; PIER answers "what are the top intrusions network-wide?"
// with an in-network GROUP BY / ORDER BY / LIMIT — no central collector.

#include <cinttypes>
#include <cstdio>

#include "core/network.h"
#include "planner/planner.h"
#include "workload/workloads.h"

using namespace pier;

int main() {
  core::PierNetworkOptions opts;
  opts.seed = 3;
  opts.node.router_kind = core::RouterKind::kChord;
  opts.node.engine.result_wait = Seconds(10);
  core::PierNetwork net(64, opts);
  net.Boot(Seconds(60));

  size_t rows = workload::PublishSnortAlerts(&net, /*seed=*/21, /*decoys=*/6);
  net.RunFor(Seconds(10));
  std::printf("64 nodes, %zu local alert rows published\n\n", rows);

  std::printf("network-wide top 5 intrusion rules:\n");
  auto q = planner::ExecuteSql(
      net.node(7)->query_engine(),
      "SELECT rule_id, descr, SUM(hits) AS hits FROM snort_alerts "
      "GROUP BY rule_id, descr ORDER BY hits DESC LIMIT 5",
      [](const query::ResultBatch& b) {
        std::printf("%-6s %-40s %12s\n", "rule", "description", "hits");
        for (const auto& t : b.rows) {
          std::printf("%-6" PRId64 " %-40s %12" PRId64 "\n",
                      t[0].int64_value(), t[1].string_value().c_str(),
                      t[2].int64_value());
        }
      });
  PIER_CHECK(q.ok());
  net.RunFor(Seconds(20));

  // Drill down: which severe rules fired anywhere? (HAVING demo.)
  std::printf("\nrules exceeding 100k total hits:\n");
  auto q2 = planner::ExecuteSql(
      net.node(12)->query_engine(),
      "SELECT rule_id, SUM(hits) AS hits FROM snort_alerts "
      "GROUP BY rule_id HAVING SUM(hits) > 100000 ORDER BY hits DESC",
      [](const query::ResultBatch& b) {
        for (const auto& t : b.rows) {
          std::printf("  rule %" PRId64 ": %" PRId64 " hits\n",
                      t[0].int64_value(), t[1].int64_value());
        }
      });
  PIER_CHECK(q2.ok());
  net.RunFor(Seconds(20));
  return 0;
}
