// Network topology mapping with recursive queries (the paper's third
// application): the link table is distributed across nodes; a WITH
// RECURSIVE query computes multi-hop reachability entirely in-network via
// semi-naive expansion through the DHT.

#include <cinttypes>
#include <cstdio>

#include "core/network.h"
#include "planner/planner.h"
#include "workload/workloads.h"

using namespace pier;

int main() {
  core::PierNetworkOptions opts;
  opts.seed = 5;
  opts.node.router_kind = core::RouterKind::kChord;
  opts.node.engine.quiesce_window = Seconds(6);
  core::PierNetwork net(24, opts);
  net.Boot(Seconds(60));

  workload::TopologyOptions topo;
  topo.num_vertices = 20;
  topo.out_degree = 2;
  auto edges = workload::PublishTopology(&net, topo, /*seed=*/8);
  net.RunFor(Seconds(10));
  std::printf("published %zu directed links over 24 PIER nodes\n\n",
              edges.size());

  std::printf("WITH RECURSIVE reach(src,dst): what can v0 reach within 4 "
              "hops?\n");
  auto q = planner::ExecuteSql(
      net.node(0)->query_engine(),
      "WITH RECURSIVE reach(src, dst) AS ("
      "  SELECT src, dst FROM links "
      "  UNION SELECT reach.src, l.dst FROM reach JOIN links l "
      "    ON reach.dst = l.src"
      ") SELECT src, dst, hops FROM reach WHERE src = 'v0' MAXHOPS 4",
      [](const query::ResultBatch& b) {
        for (const auto& t : b.rows) {
          std::printf("  %s -> %-6s (%" PRId64 " hops)\n",
                      t[0].string_value().c_str(),
                      t[1].string_value().c_str(), t[2].int64_value());
        }
        std::printf("  (%zu destinations reachable)\n", b.rows.size());
      });
  PIER_CHECK(q.ok());
  net.RunFor(Seconds(90));

  std::printf("\nfull closure size per hop bound --\n");
  auto q2 = planner::ExecuteSql(
      net.node(5)->query_engine(),
      "WITH RECURSIVE reach(src, dst) AS ("
      "  SELECT src, dst FROM links "
      "  UNION SELECT reach.src, l.dst FROM reach JOIN links l "
      "    ON reach.dst = l.src"
      ") SELECT hops, COUNT(*) AS pairs FROM reach GROUP BY hops "
      "ORDER BY hops MAXHOPS 6",
      [](const query::ResultBatch& b) {
        for (const auto& t : b.rows) {
          std::printf("  %" PRId64 " hops: %" PRId64 " pairs\n",
                      t[0].int64_value(), t[1].int64_value());
        }
      });
  if (!q2.ok()) {
    // Aggregates over the closure run at the origin in this build.
    std::printf("  (aggregate-over-closure: %s)\n",
                q2.status().ToString().c_str());
  }
  net.RunFor(Seconds(90));
  return 0;
}
