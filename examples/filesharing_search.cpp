// Keyword filesharing search (the paper's second application; cf. "The Case
// for a Hybrid P2P Search Infrastructure", IPTPS'04): an inverted index
// lives in the DHT partitioned by keyword, so single-keyword search is a
// partition scan and multi-keyword search is a distributed self-join on
// file id.

#include <cinttypes>
#include <cstdio>

#include "core/network.h"
#include "planner/planner.h"
#include "workload/workloads.h"

using namespace pier;

int main() {
  core::PierNetworkOptions opts;
  opts.seed = 4;
  opts.node.router_kind = core::RouterKind::kChord;
  opts.node.engine.result_wait = Seconds(12);
  core::PierNetwork net(32, opts);
  net.Boot(Seconds(60));

  workload::FilesharingOptions fopts;
  size_t postings = workload::PublishFileIndex(&net, fopts, /*seed=*/5);
  net.RunFor(Seconds(10));
  std::printf("32 nodes share %zu files (%zu index postings)\n\n",
              fopts.num_files, postings);

  // Single-keyword search: selection over the keyword partition.
  std::printf("search: 'chord' --\n");
  auto q1 = planner::ExecuteSql(
      net.node(3)->query_engine(),
      "SELECT file_id, filename FROM file_index WHERE keyword = 'chord' "
      "ORDER BY file_id LIMIT 8",
      [](const query::ResultBatch& b) {
        for (const auto& t : b.rows) {
          std::printf("  #%-5" PRId64 " %s\n", t[0].int64_value(),
                      t[1].string_value().c_str());
        }
        std::printf("  (%zu hits shown)\n", b.rows.size());
      });
  PIER_CHECK(q1.ok());
  net.RunFor(Seconds(20));

  // Multi-keyword search = distributed self-join on file_id: files tagged
  // with BOTH keywords.
  std::printf("\nsearch: 'music' AND 'video' (self-join on file_id) --\n");
  auto q2 = planner::ExecuteSql(
      net.node(9)->query_engine(),
      "SELECT a.file_id, a.filename FROM file_index a JOIN file_index b "
      "ON a.file_id = b.file_id "
      "WHERE a.keyword = 'music' AND b.keyword = 'video' "
      "ORDER BY a.file_id LIMIT 10",
      [](const query::ResultBatch& b) {
        for (const auto& t : b.rows) {
          std::printf("  #%-5" PRId64 " %s\n", t[0].int64_value(),
                      t[1].string_value().c_str());
        }
        std::printf("  (%zu files match both keywords)\n", b.rows.size());
      });
  PIER_CHECK(q2.ok());
  net.RunFor(Seconds(30));

  // Popularity analytics over the index itself.
  std::printf("\nmost-indexed keywords --\n");
  auto q3 = planner::ExecuteSql(
      net.node(0)->query_engine(),
      "SELECT keyword, COUNT(*) AS files FROM file_index "
      "GROUP BY keyword ORDER BY files DESC LIMIT 5",
      [](const query::ResultBatch& b) {
        for (const auto& t : b.rows) {
          std::printf("  %-12s %" PRId64 " files\n",
                      t[0].string_value().c_str(), t[1].int64_value());
        }
      });
  PIER_CHECK(q3.ok());
  net.RunFor(Seconds(20));
  return 0;
}
