// Quickstart: boot a small PIER network, define a table, publish tuples from
// several nodes, and run SQL — the five-minute tour of the public API.

#include <cstdio>

#include "core/network.h"
#include "planner/planner.h"

using namespace pier;  // examples favor brevity

int main() {
  // 1. A simulated 16-node deployment on a Chord overlay.
  core::PierNetworkOptions opts;
  opts.seed = 1;
  opts.node.router_kind = core::RouterKind::kChord;
  core::PierNetwork net(16, opts);
  net.Boot(Seconds(60));
  std::printf("booted %zu-node PIER network\n", net.size());

  // 2. Declare a relation on every node: name = DHT namespace; the
  //    partitioning column decides where each tuple lives on the ring.
  catalog::TableDef servers;
  servers.name = "servers";
  servers.schema = catalog::Schema("servers", {{"region", ValueType::kString},
                                               {"host", ValueType::kString},
                                               {"load", ValueType::kDouble}});
  servers.partition_cols = {0};
  servers.ttl = Seconds(600);
  for (size_t i = 0; i < net.size(); ++i) {
    PIER_CHECK(net.node(i)->catalog()->Register(servers).ok());
  }

  // 3. Publish rows from different nodes (they hash-partition themselves).
  struct Row {
    const char* region;
    const char* host;
    double load;
  };
  Row rows[] = {{"us-west", "alpha", 0.82}, {"us-west", "bravo", 0.41},
                {"eu", "charlie", 0.93},    {"eu", "delta", 0.37},
                {"asia", "echo", 0.55},     {"asia", "foxtrot", 0.71}};
  size_t i = 0;
  for (const Row& r : rows) {
    catalog::Tuple t{Value::String(r.region), Value::String(r.host),
                     Value::Double(r.load)};
    PIER_CHECK(net.node(i++ % net.size())
                   ->query_engine()
                   ->Publish("servers", t)
                   .ok());
  }
  net.RunFor(Seconds(10));

  // 4. Run SQL from any node. The plan is broadcast over the overlay, every
  //    node scans its slice, and results stream back to the origin.
  auto print_batch = [](const query::ResultBatch& b) {
    std::printf("-- %zu rows --\n", b.rows.size());
    for (const auto& t : b.rows) {
      std::printf("  %s\n", catalog::TupleToString(t).c_str());
    }
  };

  std::printf("\nSELECT region, host FROM servers WHERE load > 0.5\n");
  auto q1 = planner::ExecuteSql(
      net.node(3)->query_engine(),
      "SELECT region, host, load FROM servers WHERE load > 0.5",
      print_batch);
  PIER_CHECK(q1.ok());
  net.RunFor(Seconds(15));

  std::printf("\nSELECT region, COUNT(*), AVG(load) GROUP BY region\n");
  auto q2 = planner::ExecuteSql(
      net.node(9)->query_engine(),
      "SELECT region, COUNT(*) AS n, AVG(load) AS avg_load FROM servers "
      "GROUP BY region ORDER BY n DESC",
      print_batch);
  PIER_CHECK(q2.ok());
  net.RunFor(Seconds(15));

  std::printf("\ndone: %llu virtual seconds simulated\n",
              static_cast<unsigned long long>(ToSecondsF(net.sim()->now())));
  return 0;
}
