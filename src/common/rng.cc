#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace pier {

namespace {
inline uint64_t Rotl64(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::Seed(uint64_t seed) {
  seed_ = seed;
  // SplitMix64 expansion of the seed into 256 bits of state.
  uint64_t x = seed;
  for (auto& s : state_) {
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    s = z ^ (z >> 31);
  }
  have_gaussian_spare_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl64(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl64(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - n) % n;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 1e-18;
  return -mean * std::log(u);
}

double Rng::Gaussian(double mean, double stddev) {
  if (have_gaussian_spare_) {
    have_gaussian_spare_ = false;
    return mean + stddev * gaussian_spare_;
  }
  double u1 = NextDouble(), u2 = NextDouble();
  if (u1 <= 0) u1 = 1e-18;
  double mag = std::sqrt(-2.0 * std::log(u1));
  gaussian_spare_ = mag * std::sin(2.0 * M_PI * u2);
  have_gaussian_spare_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  // Direct inverse-CDF on the fly; fine for occasional draws. Heavy users
  // should use ZipfDistribution.
  double norm = 0;
  for (uint64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
  double target = NextDouble() * norm;
  double acc = 0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(double(k), s);
    if (acc >= target) return k;
  }
  return n;
}

Rng Rng::Fork(uint64_t stream) const {
  return Rng(Mix64(seed_ ^ Mix64(stream + 0x5DEECE66Dull)));
}

ZipfDistribution::ZipfDistribution(uint64_t n, double s) {
  cdf_.reserve(n);
  double acc = 0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_.push_back(acc);
  }
  for (double& v : cdf_) v /= acc;
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace pier
