#include "common/bloom.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/hash.h"

namespace pier {

BloomFilter::BloomFilter(size_t bits, int num_hashes)
    : words_((std::max<size_t>(bits, 64) + 63) / 64, 0),
      num_hashes_(std::clamp(num_hashes, 1, 16)) {}

BloomFilter BloomFilter::ForEntries(size_t expected_entries) {
  // ~9.6 bits/key and 7 hashes gives about 1% FPP.
  size_t bits = std::max<size_t>(64, expected_entries * 10);
  return BloomFilter(bits, 7);
}

void BloomFilter::Add(uint64_t element_hash) {
  uint64_t h1 = element_hash;
  uint64_t h2 = Mix64(element_hash ^ 0xdeadbeefcafef00dull) | 1;
  size_t nbits = bit_count();
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % nbits;
    words_[bit / 64] |= (1ull << (bit % 64));
  }
}

bool BloomFilter::MayContain(uint64_t element_hash) const {
  uint64_t h1 = element_hash;
  uint64_t h2 = Mix64(element_hash ^ 0xdeadbeefcafef00dull) | 1;
  size_t nbits = bit_count();
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % nbits;
    if ((words_[bit / 64] & (1ull << (bit % 64))) == 0) return false;
  }
  return true;
}

Status BloomFilter::UnionWith(const BloomFilter& other) {
  if (other.words_.size() != words_.size() ||
      other.num_hashes_ != num_hashes_) {
    return Status::InvalidArgument("bloom filter geometry mismatch");
  }
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return Status::OK();
}

size_t BloomFilter::PopCount() const {
  size_t count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

double BloomFilter::EstimatedFpp(size_t inserted) const {
  double m = static_cast<double>(bit_count());
  double k = num_hashes_;
  double n = static_cast<double>(inserted);
  double per_bit = 1.0 - std::exp(-k * n / m);
  return std::pow(per_bit, k);
}

void BloomFilter::Serialize(Writer* w) const {
  w->PutVarint32(static_cast<uint32_t>(words_.size()));
  w->PutU8(static_cast<uint8_t>(num_hashes_));
  for (uint64_t word : words_) w->PutFixed64(word);
}

Status BloomFilter::Deserialize(Reader* r, BloomFilter* out) {
  uint32_t nwords = 0;
  uint8_t k = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint32(&nwords));
  PIER_RETURN_IF_ERROR(r->GetU8(&k));
  if (nwords == 0 || nwords > (1u << 24)) {
    return Status::Corruption("bloom filter size out of range");
  }
  BloomFilter filter(static_cast<size_t>(nwords) * 64, k);
  for (uint32_t i = 0; i < nwords; ++i) {
    PIER_RETURN_IF_ERROR(r->GetFixed64(&filter.words_[i]));
  }
  *out = std::move(filter);
  return Status::OK();
}

}  // namespace pier
