// Value: the dynamically-typed scalar that PIER tuples carry.
//
// PIER queries run over schemas declared at query time against data arriving
// from heterogeneous edge sources, so values are tagged at runtime. The type
// lattice is deliberately small: NULL, BOOL, INT64, DOUBLE, STRING, BYTES.

#ifndef PIER_COMMON_VALUE_H_
#define PIER_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/serialize.h"
#include "common/status.h"

namespace pier {

/// Runtime type tag of a Value. Numeric comparisons between INT64 and DOUBLE
/// are allowed (widening); everything else compares only within its own type.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kBytes = 5,
};

/// Human-readable type name ("INT64" etc.).
const char* ValueTypeName(ValueType t);

/// A single dynamically-typed scalar.
class Value {
 public:
  /// NULL value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int64(int64_t i) { return Value(Rep(i)); }
  static Value Double(double d) { return Value(Rep(d)); }
  static Value String(std::string s) {
    return Value(Rep(std::in_place_index<4>, std::move(s)));
  }
  static Value Bytes(std::string b) {
    return Value(Rep(std::in_place_index<5>, std::move(b)));
  }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors: only valid when type() matches (asserts otherwise).
  bool bool_value() const { return std::get<1>(rep_); }
  int64_t int64_value() const { return std::get<2>(rep_); }
  double double_value() const { return std::get<3>(rep_); }
  const std::string& string_value() const { return std::get<4>(rep_); }
  const std::string& bytes_value() const { return std::get<5>(rep_); }

  /// Numeric view: INT64 and DOUBLE widen to double; other types are an
  /// InvalidArgument error.
  Status AsDouble(double* out) const;
  /// Integer view: INT64 only.
  Status AsInt64(int64_t* out) const;

  /// Three-way comparison. NULL sorts before everything; INT64/DOUBLE compare
  /// numerically across types; mismatched non-numeric types order by type
  /// tag (total order so sorting is always well defined).
  int Compare(const Value& other) const;
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable 64-bit hash: equal values (including INT64 5 vs DOUBLE 5.0) hash
  /// identically, so hash-partitioned joins see them in the same bucket.
  uint64_t Hash() const;

  /// SQL-ish rendering for result printing ("NULL", "'str'", "3.25", ...).
  std::string ToString() const;

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, Value* out);
  /// Upper bound on Serialize output, for Writer::Reserve.
  size_t SerializedSizeBound() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string,
                           std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace pier

#endif  // PIER_COMMON_VALUE_H_
