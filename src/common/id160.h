// Id160: a 160-bit identifier on the DHT's circular key space.
//
// Both node identifiers and data keys live on the same ring (consistent
// hashing). The ring is ordered by unsigned big-endian comparison and wraps
// at 2^160. The operations here are exactly what a Chord-style overlay
// needs: clockwise interval membership, addition of 2^k offsets (finger
// targets), and clockwise distance.

#ifndef PIER_COMMON_ID160_H_
#define PIER_COMMON_ID160_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/serialize.h"
#include "common/status.h"

namespace pier {

/// A 160-bit unsigned integer on the identifier ring, stored big-endian.
class Id160 {
 public:
  static constexpr int kBits = 160;
  static constexpr int kBytes = 20;

  /// Zero identifier.
  Id160() : bytes_{} {}

  explicit Id160(const std::array<uint8_t, kBytes>& bytes) : bytes_(bytes) {}

  /// Identifier at SHA-1(name): how PIER maps names (node addresses,
  /// namespace/resource keys) onto the ring.
  static Id160 FromName(std::string_view name);
  /// Builds an id whose top 64 bits are `hi` and the rest zero; handy for
  /// evenly spacing test nodes.
  static Id160 FromUint64(uint64_t hi);
  /// Parses 40 hex characters. Returns InvalidArgument on malformed input.
  static Status FromHex(std::string_view hex, Id160* out);
  /// The maximum identifier (2^160 - 1).
  static Id160 Max();

  const std::array<uint8_t, kBytes>& bytes() const { return bytes_; }

  /// Ring arithmetic: this + 2^power (mod 2^160). Finger i of node n targets
  /// n + 2^i.
  Id160 AddPowerOfTwo(int power) const;
  /// Ring arithmetic: this + other (mod 2^160).
  Id160 Add(const Id160& other) const;
  /// Clockwise distance from this to other: (other - this) mod 2^160.
  Id160 DistanceTo(const Id160& other) const;

  /// True iff this lies in the clockwise-open interval (from, to]. Used for
  /// successor responsibility: node s owns keys in (predecessor, s].
  bool InIntervalOpenClosed(const Id160& from, const Id160& to) const;
  /// True iff this lies in the clockwise-open interval (from, to).
  bool InIntervalOpenOpen(const Id160& from, const Id160& to) const;

  /// Index of the highest set bit (159..0), or -1 for zero. log2 of the
  /// clockwise distance approximates "ring hops remaining".
  int HighestBit() const;

  /// 40-character lowercase hex.
  std::string ToHex() const;
  /// First 8 hex chars — enough to disambiguate in logs.
  std::string ToShortHex() const;

  void Serialize(Writer* w) const { w->PutRaw(bytes_.data(), kBytes); }
  static Status Deserialize(Reader* r, Id160* out);

  auto operator<=>(const Id160& other) const = default;

  /// Hash for use in unordered containers (keyspace is uniform already).
  struct Hasher {
    size_t operator()(const Id160& id) const {
      uint64_t h = 0;
      for (int i = 0; i < 8; ++i) h = (h << 8) | id.bytes_[i];
      return static_cast<size_t>(h);
    }
  };

 private:
  std::array<uint8_t, kBytes> bytes_;  // big-endian
};

}  // namespace pier

#endif  // PIER_COMMON_ID160_H_
