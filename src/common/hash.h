// Small non-cryptographic hashing helpers (64-bit mixers, FNV-1a bytes hash).
// Used for value hashing, hash-partitioned join buckets, and Bloom filters.

#ifndef PIER_COMMON_HASH_H_
#define PIER_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace pier {

/// SplitMix64 finalizer: a fast, well-dispersed 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte string, finished with Mix64 for avalanche.
uint64_t HashBytes(std::string_view bytes);

/// Combines two hashes (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ull + (a << 12) + (a >> 4));
}

}  // namespace pier

#endif  // PIER_COMMON_HASH_H_
