#include "common/serialize.h"

namespace pier {

void Writer::PutFixed16(uint16_t v) {
  char b[2];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  buf_.append(b, 2);
}

void Writer::PutFixed32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 4);
}

void Writer::PutFixed64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 8);
}

void Writer::PutVarint32(uint32_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void Writer::PutVarint64(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void Writer::PutVarint64Signed(int64_t v) {
  // Zig-zag: maps -1 -> 1, 1 -> 2, -2 -> 3, ...
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63);
  PutVarint64(zz);
}

void Writer::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(bits);
}

void Writer::PutString(std::string_view s) {
  PutVarint64(s.size());
  buf_.append(s.data(), s.size());
}

void Writer::PutRaw(const void* data, size_t n) {
  // n == 0 may come with data == nullptr (an empty vector's data()); the
  // append would be a no-op but passing null to it is still UB.
  if (n == 0) return;
  buf_.append(static_cast<const char*>(data), n);
}

Status Reader::Fail(const char* what) {
  failed_ = true;
  return Status::Corruption(what);
}

Status Reader::GetU8(uint8_t* v) {
  if (failed_) return Status::Corruption("reader poisoned");
  if (remaining() < 1) return Fail("truncated u8");
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status Reader::GetBool(bool* v) {
  uint8_t b = 0;
  PIER_RETURN_IF_ERROR(GetU8(&b));
  *v = (b != 0);
  return Status::OK();
}

Status Reader::GetFixed16(uint16_t* v) {
  if (failed_) return Status::Corruption("reader poisoned");
  if (remaining() < 2) return Fail("truncated fixed16");
  uint16_t out = 0;
  for (int i = 0; i < 2; ++i) {
    out |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 2;
  *v = out;
  return Status::OK();
}

Status Reader::GetFixed32(uint32_t* v) {
  if (failed_) return Status::Corruption("reader poisoned");
  if (remaining() < 4) return Fail("truncated fixed32");
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status Reader::GetFixed64(uint64_t* v) {
  if (failed_) return Status::Corruption("reader poisoned");
  if (remaining() < 8) return Fail("truncated fixed64");
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status Reader::GetVarint32(uint32_t* v) {
  uint64_t wide = 0;
  PIER_RETURN_IF_ERROR(GetVarint64(&wide));
  if (wide > UINT32_MAX) return Fail("varint32 overflow");
  *v = static_cast<uint32_t>(wide);
  return Status::OK();
}

Status Reader::GetVarint64(uint64_t* v) {
  if (failed_) return Status::Corruption("reader poisoned");
  uint64_t out = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) return Fail("truncated varint");
    if (shift >= 64) return Fail("varint too long");
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    out |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *v = out;
  return Status::OK();
}

Status Reader::GetVarint64Signed(int64_t* v) {
  uint64_t zz = 0;
  PIER_RETURN_IF_ERROR(GetVarint64(&zz));
  *v = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  return Status::OK();
}

Status Reader::GetDouble(double* v) {
  uint64_t bits = 0;
  PIER_RETURN_IF_ERROR(GetFixed64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status Reader::GetString(std::string* s) {
  uint64_t n = 0;
  PIER_RETURN_IF_ERROR(GetVarint64(&n));
  if (n > remaining()) return Fail("truncated string");
  s->assign(data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status Reader::GetRaw(void* out, size_t n) {
  if (failed_) return Status::Corruption("reader poisoned");
  if (n > remaining()) return Fail("truncated raw bytes");
  // n == 0 may come with out == nullptr (an empty vector's data()), and
  // memcpy's pointer arguments must be non-null even for zero sizes.
  if (n == 0) return Status::OK();
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

}  // namespace pier
