#include "common/sha1.h"

#include <cstring>

namespace pier {

namespace {
inline uint32_t Rotl(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

void Sha1::Reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  length_ = 0;
  buffered_ = 0;
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    uint32_t temp = Rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::Update(std::string_view data) {
  length_ += static_cast<uint64_t>(data.size()) * 8;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
  if (buffered_ > 0) {
    size_t take = std::min(n, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (n >= 64) {
    ProcessBlock(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffered_ = n;
  }
}

Sha1Digest Sha1::Finish() {
  // Append 0x80, pad with zeros to 56 mod 64, then the 64-bit big-endian
  // bit length.
  uint64_t bit_length = length_;
  uint8_t pad[72];
  size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  while ((buffered_ + pad_len) % 64 != 56) pad[pad_len++] = 0;
  Update(std::string_view(reinterpret_cast<char*>(pad), pad_len));
  length_ -= pad_len * 8;  // padding does not count toward message length

  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>((bit_length >> (56 - 8 * i)) & 0xff);
  }
  Update(std::string_view(reinterpret_cast<char*>(len_bytes), 8));

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<uint8_t>((h_[i] >> 24) & 0xff);
    digest[i * 4 + 1] = static_cast<uint8_t>((h_[i] >> 16) & 0xff);
    digest[i * 4 + 2] = static_cast<uint8_t>((h_[i] >> 8) & 0xff);
    digest[i * 4 + 3] = static_cast<uint8_t>(h_[i] & 0xff);
  }
  return digest;
}

Sha1Digest Sha1::Hash(std::string_view data) {
  Sha1 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

}  // namespace pier
