// Byte-level wire format used for every message that crosses the simulated
// network and for tuples stored in the DHT.
//
// Encoding rules:
//   - fixed-width integers are little-endian;
//   - varint32/varint64 use LEB128 (protobuf-compatible);
//   - strings/bytes are varint length followed by raw bytes;
//   - doubles are the IEEE-754 bit pattern as fixed64.
//
// Writer appends to an internal buffer; Reader consumes a borrowed buffer and
// reports malformed input via Status (never crashes on corrupt bytes — the
// simulator can inject corruption).

#ifndef PIER_COMMON_SERIALIZE_H_
#define PIER_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace pier {

/// Append-only encoder producing a byte string.
class Writer {
 public:
  Writer() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutFixed16(uint16_t v);
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  void PutVarint32(uint32_t v);
  void PutVarint64(uint64_t v);
  /// Zig-zag encodes so small negative values stay small on the wire.
  void PutVarint64Signed(int64_t v);
  void PutDouble(double v);
  /// Varint length prefix + raw bytes.
  void PutString(std::string_view s);
  /// Raw bytes with no length prefix (caller knows the width).
  void PutRaw(const void* data, size_t n);

  /// Pre-sizes the buffer for `n` more bytes; encoders that know their
  /// output size (tuples, frames, opgraphs) avoid realloc-and-copy growth.
  void Reserve(size_t n) { buf_.reserve(buf_.size() + n); }

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  std::string buf_;
};

/// Consuming decoder over a borrowed byte range. All getters return a Status
/// and write through an out-parameter; after the first error the reader is
/// poisoned and all subsequent reads fail.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v);
  Status GetBool(bool* v);
  Status GetFixed16(uint16_t* v);
  Status GetFixed32(uint32_t* v);
  Status GetFixed64(uint64_t* v);
  Status GetVarint32(uint32_t* v);
  Status GetVarint64(uint64_t* v);
  Status GetVarint64Signed(int64_t* v);
  Status GetDouble(double* v);
  Status GetString(std::string* s);
  /// Reads exactly `n` raw bytes.
  Status GetRaw(void* out, size_t n);

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Fail(const char* what);

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace pier

#endif  // PIER_COMMON_SERIALIZE_H_
