#include "common/value.h"

#include <cmath>
#include <cstdio>

#include "common/hash.h"

namespace pier {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBytes:
      return "BYTES";
  }
  return "UNKNOWN";
}

ValueType Value::type() const {
  return static_cast<ValueType>(rep_.index());
}

Status Value::AsDouble(double* out) const {
  switch (type()) {
    case ValueType::kInt64:
      *out = static_cast<double>(int64_value());
      return Status::OK();
    case ValueType::kDouble:
      *out = double_value();
      return Status::OK();
    default:
      return Status::InvalidArgument(std::string("not numeric: ") +
                                     ValueTypeName(type()));
  }
}

Status Value::AsInt64(int64_t* out) const {
  if (type() != ValueType::kInt64) {
    return Status::InvalidArgument(std::string("not INT64: ") +
                                   ValueTypeName(type()));
  }
  *out = int64_value();
  return Status::OK();
}

namespace {
bool IsNumeric(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}
int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }
}  // namespace

int Value::Compare(const Value& other) const {
  ValueType a = type(), b = other.type();
  // NULL sorts first.
  if (a == ValueType::kNull || b == ValueType::kNull) {
    if (a == b) return 0;
    return a == ValueType::kNull ? -1 : 1;
  }
  // Cross-type numeric comparison.
  if (IsNumeric(a) && IsNumeric(b)) {
    if (a == ValueType::kInt64 && b == ValueType::kInt64) {
      int64_t x = int64_value(), y = other.int64_value();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = 0, y = 0;
    (void)AsDouble(&x);
    (void)other.AsDouble(&y);
    return Sign(x - y);
  }
  if (a != b) return static_cast<int>(a) < static_cast<int>(b) ? -1 : 1;
  switch (a) {
    case ValueType::kBool: {
      int x = bool_value() ? 1 : 0, y = other.bool_value() ? 1 : 0;
      return x - y;
    }
    case ValueType::kString:
      return string_value().compare(other.string_value()) < 0
                 ? -1
                 : (string_value() == other.string_value() ? 0 : 1);
    case ValueType::kBytes:
      return bytes_value().compare(other.bytes_value()) < 0
                 ? -1
                 : (bytes_value() == other.bytes_value() ? 0 : 1);
    default:
      return 0;
  }
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ull;
    case ValueType::kBool:
      return Mix64(bool_value() ? 2 : 1);
    case ValueType::kInt64:
      // Integral doubles must hash like the equal int64.
      return Mix64(0x1234abcdull ^ static_cast<uint64_t>(int64_value()));
    case ValueType::kDouble: {
      double d = double_value();
      double rounded = std::nearbyint(d);
      if (rounded == d && std::abs(d) < 9.2e18) {
        return Mix64(0x1234abcdull ^
                     static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(0x5678efabull ^ bits);
    }
    case ValueType::kString:
      return HashBytes(string_value());
    case ValueType::kBytes:
      return HashBytes(bytes_value()) ^ 0xB0B0B0B0ull;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case ValueType::kInt64:
      return std::to_string(int64_value());
    case ValueType::kDouble: {
      char buf[32];
      snprintf(buf, sizeof(buf), "%.6g", double_value());
      return buf;
    }
    case ValueType::kString:
      return "'" + string_value() + "'";
    case ValueType::kBytes:
      return "x'" + std::to_string(bytes_value().size()) + " bytes'";
  }
  return "?";
}

void Value::Serialize(Writer* w) const {
  w->PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w->PutBool(bool_value());
      break;
    case ValueType::kInt64:
      w->PutVarint64Signed(int64_value());
      break;
    case ValueType::kDouble:
      w->PutDouble(double_value());
      break;
    case ValueType::kString:
      w->PutString(string_value());
      break;
    case ValueType::kBytes:
      w->PutString(bytes_value());
      break;
  }
}

size_t Value::SerializedSizeBound() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kBool:
      return 2;
    case ValueType::kInt64:
      return 11;  // tag + max varint64
    case ValueType::kDouble:
      return 9;
    case ValueType::kString:
      return 6 + string_value().size();  // tag + max varint32 len + bytes
    case ValueType::kBytes:
      return 6 + bytes_value().size();
  }
  return 1;
}

Status Value::Deserialize(Reader* r, Value* out) {
  uint8_t tag = 0;
  PIER_RETURN_IF_ERROR(r->GetU8(&tag));
  if (tag > static_cast<uint8_t>(ValueType::kBytes)) {
    return Status::Corruption("bad value type tag");
  }
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return Status::OK();
    case ValueType::kBool: {
      bool b = false;
      PIER_RETURN_IF_ERROR(r->GetBool(&b));
      *out = Value::Bool(b);
      return Status::OK();
    }
    case ValueType::kInt64: {
      int64_t v = 0;
      PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&v));
      *out = Value::Int64(v);
      return Status::OK();
    }
    case ValueType::kDouble: {
      double d = 0;
      PIER_RETURN_IF_ERROR(r->GetDouble(&d));
      *out = Value::Double(d);
      return Status::OK();
    }
    case ValueType::kString: {
      std::string s;
      PIER_RETURN_IF_ERROR(r->GetString(&s));
      *out = Value::String(std::move(s));
      return Status::OK();
    }
    case ValueType::kBytes: {
      std::string s;
      PIER_RETURN_IF_ERROR(r->GetString(&s));
      *out = Value::Bytes(std::move(s));
      return Status::OK();
    }
  }
  return Status::Corruption("unreachable value tag");
}

}  // namespace pier
