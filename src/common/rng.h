// Deterministic pseudo-random number generation.
//
// Every stochastic element of a PIER experiment (latency jitter, workload
// draws, churn schedules, node placement) derives from one seed, so any run
// is reproducible bit-for-bit. The core generator is xoshiro256**.

#ifndef PIER_COMMON_RNG_H_
#define PIER_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace pier {

/// xoshiro256** seeded via SplitMix64. Not thread-safe; the simulator is
/// single-threaded by design.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();
  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);
  /// Bernoulli trial.
  bool Chance(double p);
  /// Exponentially distributed with the given mean (inter-arrival times,
  /// session lengths).
  double Exponential(double mean);
  /// Gaussian via Box–Muller.
  double Gaussian(double mean, double stddev);
  /// Zipf-distributed rank in [1, n] with exponent `s` (skewed popularity —
  /// file keywords, intrusion rules).
  uint64_t Zipf(uint64_t n, double s);

  /// Derives an independent child generator; stream `i` of seed `s` is
  /// stable across runs.
  Rng Fork(uint64_t stream) const;

  /// The seed this generator was constructed/last Seed()ed with. Failing
  /// randomized tests must log this so any run can be replayed exactly.
  uint64_t seed() const { return seed_; }

 private:
  uint64_t state_[4];
  uint64_t seed_ = 0;
  bool have_gaussian_spare_ = false;
  double gaussian_spare_ = 0.0;
};

/// Precomputed CDF for repeated Zipf draws over a fixed n (O(log n) a draw).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);
  /// Rank in [1, n].
  uint64_t Sample(Rng* rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace pier

#endif  // PIER_COMMON_RNG_H_
