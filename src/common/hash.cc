#include "common/hash.h"

namespace pier {

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return Mix64(h);
}

}  // namespace pier
