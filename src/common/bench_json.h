// Machine-readable benchmark output: the shared `--json` harness.
//
// Every macro bench accepts `--json[=path]` (default BENCH_PR10.json) and, in
// that mode, appends/replaces its entry in a merged report file so a CI step
// can run several bench binaries and upload one artifact. The file is the
// perf trajectory of the repo: each PR lands with fresh numbers, so a
// regression is a visible diff, not an anecdote (PIQL's perf-as-contract).
//
// Schema (documented in docs/benchmarks.md):
//   {
//     "schema": "pier-bench-v1",
//     "benches": [
//       {"name": "...", "metrics": {"<metric>": {"value": <num>, "unit": "..."}}},
//       ...
//     ]
//   }
//
// The merge is line-oriented over a file this harness itself wrote: one
// bench entry per line, replaced by name. Timing metrics are informational;
// the bench's exit code carries only its self-check (CI fails on a wrong
// answer, never on a slow machine).

#ifndef PIER_COMMON_BENCH_JSON_H_
#define PIER_COMMON_BENCH_JSON_H_

#include <chrono>
#include <string>
#include <vector>

namespace pier {
namespace bench {

/// Result of scanning argv for harness flags. `args` keeps everything the
/// harness did not consume, so benches can layer their own flags on top.
struct JsonOptions {
  bool enabled = false;
  std::string path = "BENCH_PR10.json";
  std::vector<std::string> args;
};

/// Consumes `--json` / `--json=PATH` from the command line.
JsonOptions ParseJsonFlag(int argc, char** argv);

/// Collects one bench's metrics and merges them into the report file.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name);

  /// Records a metric; re-adding a name overwrites the earlier value.
  void Metric(const std::string& name, double value, const std::string& unit);

  /// This bench's entry as a single JSON line (no trailing newline).
  std::string ToJsonLine() const;

  /// Merges this entry into `path`: keeps other benches' lines, replaces any
  /// previous entry with the same name. Returns false on I/O failure.
  bool WriteMerged(const std::string& path) const;

 private:
  struct Entry {
    std::string name;
    double value;
    std::string unit;
  };
  std::string name_;
  std::vector<Entry> metrics_;
};

/// Wall-clock stopwatch for the real-time metrics (virtual time is free;
/// wall-clock is what the perf trajectory tracks).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bench
}  // namespace pier

#endif  // PIER_COMMON_BENCH_JSON_H_
