// Result<T>: a Status plus a value, for fallible functions that produce data.

#ifndef PIER_COMMON_RESULT_H_
#define PIER_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pier {

/// Either a value of type T or an error Status. Accessing value() on an
/// error Result is a programming bug (asserts in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return MakeThing();`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error Status: allows `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pier

/// Evaluates a Result-returning expression; on error returns the Status, on
/// success assigns the value to `lhs` (which must already be declared).
#define PIER_ASSIGN_OR_RETURN(lhs, expr)             \
  do {                                               \
    auto _pier_result = (expr);                      \
    if (!_pier_result.ok()) return _pier_result.status(); \
    lhs = std::move(_pier_result).value();           \
  } while (0)

#endif  // PIER_COMMON_RESULT_H_
