#include "common/id160.h"

#include "common/sha1.h"

namespace pier {

Id160 Id160::FromName(std::string_view name) {
  Sha1Digest digest = Sha1::Hash(name);
  std::array<uint8_t, kBytes> bytes;
  for (int i = 0; i < kBytes; ++i) bytes[i] = digest[i];
  return Id160(bytes);
}

Id160 Id160::FromUint64(uint64_t hi) {
  std::array<uint8_t, kBytes> bytes{};
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>((hi >> (56 - 8 * i)) & 0xff);
  }
  return Id160(bytes);
}

Id160 Id160::Max() {
  std::array<uint8_t, kBytes> bytes;
  bytes.fill(0xff);
  return Id160(bytes);
}

namespace {
int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Status Id160::FromHex(std::string_view hex, Id160* out) {
  if (hex.size() != 2 * kBytes) {
    return Status::InvalidArgument("Id160 hex must be 40 chars");
  }
  std::array<uint8_t, kBytes> bytes;
  for (int i = 0; i < kBytes; ++i) {
    int hi = HexValue(hex[2 * i]);
    int lo = HexValue(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("Id160 hex has non-hex char");
    }
    bytes[i] = static_cast<uint8_t>((hi << 4) | lo);
  }
  *out = Id160(bytes);
  return Status::OK();
}

Id160 Id160::AddPowerOfTwo(int power) const {
  // 2^power sets bit `power`, i.e. byte (kBytes-1 - power/8), bit power%8.
  std::array<uint8_t, kBytes> addend{};
  int byte_index = kBytes - 1 - power / 8;
  addend[byte_index] = static_cast<uint8_t>(1u << (power % 8));
  return Add(Id160(addend));
}

Id160 Id160::Add(const Id160& other) const {
  std::array<uint8_t, kBytes> out;
  unsigned carry = 0;
  for (int i = kBytes - 1; i >= 0; --i) {
    unsigned sum = static_cast<unsigned>(bytes_[i]) +
                   static_cast<unsigned>(other.bytes_[i]) + carry;
    out[i] = static_cast<uint8_t>(sum & 0xff);
    carry = sum >> 8;
  }
  return Id160(out);  // overflow wraps: mod 2^160
}

Id160 Id160::DistanceTo(const Id160& other) const {
  // (other - this) mod 2^160, schoolbook subtraction with borrow.
  std::array<uint8_t, kBytes> out;
  int borrow = 0;
  for (int i = kBytes - 1; i >= 0; --i) {
    int diff = static_cast<int>(other.bytes_[i]) -
               static_cast<int>(bytes_[i]) - borrow;
    if (diff < 0) {
      diff += 256;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<uint8_t>(diff);
  }
  return Id160(out);
}

bool Id160::InIntervalOpenClosed(const Id160& from, const Id160& to) const {
  if (from == to) {
    // Degenerate interval covers the whole ring (a node that is its own
    // successor owns everything).
    return true;
  }
  if (from < to) return from < *this && *this <= to;
  // Interval wraps through zero.
  return *this > from || *this <= to;
}

bool Id160::InIntervalOpenOpen(const Id160& from, const Id160& to) const {
  if (from == to) return *this != from;
  if (from < to) return from < *this && *this < to;
  return *this > from || *this < to;
}

int Id160::HighestBit() const {
  for (int i = 0; i < kBytes; ++i) {
    if (bytes_[i] != 0) {
      for (int b = 7; b >= 0; --b) {
        if (bytes_[i] & (1u << b)) return (kBytes - 1 - i) * 8 + b;
      }
    }
  }
  return -1;
}

std::string Id160::ToHex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(2 * kBytes);
  for (uint8_t b : bytes_) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

std::string Id160::ToShortHex() const { return ToHex().substr(0, 8); }

Status Id160::Deserialize(Reader* r, Id160* out) {
  std::array<uint8_t, kBytes> bytes;
  PIER_RETURN_IF_ERROR(r->GetRaw(bytes.data(), kBytes));
  *out = Id160(bytes);
  return Status::OK();
}

}  // namespace pier
