// Bloom filter over 64-bit element hashes.
//
// PIER's Bloom join ships a filter of each relation's join keys to the other
// relation's sites so non-matching tuples are dropped before the expensive
// rehash. Filters must serialize compactly and OR together (union of sets).

#ifndef PIER_COMMON_BLOOM_H_
#define PIER_COMMON_BLOOM_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace pier {

/// Fixed-size Bloom filter; elements are added by their 64-bit hash (use
/// Value::Hash() for tuple keys). k probe positions are derived by
/// double hashing.
class BloomFilter {
 public:
  /// `bits` is rounded up to a multiple of 64; `num_hashes` is clamped to
  /// [1, 16].
  BloomFilter(size_t bits, int num_hashes);
  /// Sized for `expected_entries` at ~1% false-positive rate.
  static BloomFilter ForEntries(size_t expected_entries);

  void Add(uint64_t element_hash);
  bool MayContain(uint64_t element_hash) const;

  /// Set union. Both filters must have identical geometry.
  Status UnionWith(const BloomFilter& other);

  size_t bit_count() const { return words_.size() * 64; }
  int num_hashes() const { return num_hashes_; }
  /// Number of set bits (diagnostic; drives saturation warnings).
  size_t PopCount() const;
  /// Estimated false-positive probability at the current load.
  double EstimatedFpp(size_t inserted) const;

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, BloomFilter* out);

  /// Wire size in bytes (for traffic accounting).
  size_t SerializedBytes() const { return 8 + words_.size() * 8; }

 private:
  std::vector<uint64_t> words_;
  int num_hashes_;
};

}  // namespace pier

#endif  // PIER_COMMON_BLOOM_H_
