// SHA-1 message digest (FIPS 180-1), implemented from the specification.
//
// PIER derives both node identifiers and DHT keys by hashing names into a
// 160-bit circular identifier space; SHA-1 is the hash the original DHTs
// (Chord, Bamboo) used. Cryptographic strength is irrelevant here — we need
// only uniform dispersion over the ring.

#ifndef PIER_COMMON_SHA1_H_
#define PIER_COMMON_SHA1_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace pier {

/// 20-byte SHA-1 digest.
using Sha1Digest = std::array<uint8_t, 20>;

/// Incremental SHA-1 hasher: Update() any number of times, then Finish().
class Sha1 {
 public:
  Sha1() { Reset(); }

  /// Re-initializes to the empty-message state.
  void Reset();
  /// Absorbs `data`.
  void Update(std::string_view data);
  /// Completes padding and returns the digest. The hasher must be Reset()
  /// before reuse.
  Sha1Digest Finish();

  /// One-shot convenience.
  static Sha1Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[5];
  uint64_t length_ = 0;          // total message bits
  uint8_t buffer_[64];           // partial block
  size_t buffered_ = 0;
};

}  // namespace pier

#endif  // PIER_COMMON_SHA1_H_
