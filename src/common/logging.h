// Leveled logging with a process-global sink.
//
// Log lines carry the simulated timestamp and the emitting node when set via
// LogContext, so a trace of a 300-node run reads like a distributed log.
// Default level is kWarn to keep test output quiet; experiments raise it.

#ifndef PIER_COMMON_LOGGING_H_
#define PIER_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/time_util.h"

namespace pier {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kNone = 4,
};

/// Process-global logging configuration and emit path.
class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Clock registration is a stack keyed by pointer identity so Simulation
  /// lifetimes may nest OR interleave: a destroyed simulation removes its
  /// own entry wherever it sits, and the most recent survivor supplies the
  /// timestamps. The logger can therefore never be left reading a
  /// destroyed clock.
  void push_clock_source(const TimePoint* now) { clocks_.push_back(now); }
  void remove_clock_source(const TimePoint* now) {
    clocks_.erase(std::remove(clocks_.begin(), clocks_.end(), now),
                  clocks_.end());
  }
  const TimePoint* clock_source() const {
    return clocks_.empty() ? nullptr : clocks_.back();
  }

  /// Writes one formatted line to stderr if `level` passes the filter.
  void Log(LogLevel level, const std::string& who, const std::string& msg);

  bool Enabled(LogLevel level) const { return level >= level_; }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::vector<const TimePoint*> clocks_;
};

namespace log_internal {
/// Stream-collecting helper behind the PLOG macro.
class LogLine {
 public:
  LogLine(LogLevel level, std::string who)
      : level_(level), who_(std::move(who)) {}
  ~LogLine() { Logger::Instance().Log(level_, who_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string who_;
  std::ostringstream stream_;
};
}  // namespace log_internal

}  // namespace pier

/// PLOG(kInfo, "node3") << "joined ring";
#define PLOG(level, who)                                      \
  if (::pier::Logger::Instance().Enabled(::pier::LogLevel::level)) \
  ::pier::log_internal::LogLine(::pier::LogLevel::level, (who))

/// Invariant check that survives NDEBUG: aborts with a message on violation.
/// Used for programming bugs, never for data errors (those get Status).
#define PIER_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      fprintf(stderr, "PIER_CHECK failed at %s:%d: %s\n", __FILE__,         \
              __LINE__, #cond);                                             \
      abort();                                                              \
    }                                                                       \
  } while (0)

#endif  // PIER_COMMON_LOGGING_H_
