// Virtual-time units. All PIER timing is expressed in simulated microseconds;
// the discrete-event simulator owns the clock (sim/event_queue.h).

#ifndef PIER_COMMON_TIME_UTIL_H_
#define PIER_COMMON_TIME_UTIL_H_

#include <cstdint>
#include <string>

namespace pier {

/// A point in virtual time, in microseconds since simulation start.
using TimePoint = int64_t;
/// A span of virtual time, in microseconds.
using Duration = int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * 1000;
inline constexpr Duration kMinute = 60 * kSecond;

constexpr Duration Millis(int64_t ms) { return ms * kMillisecond; }
constexpr Duration Seconds(int64_t s) { return s * kSecond; }
constexpr double ToSecondsF(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Renders a duration as "12.345s" / "87ms" / "250us" for logs and reports.
inline std::string FormatDuration(Duration d) {
  char buf[32];
  if (d >= kSecond) {
    snprintf(buf, sizeof(buf), "%.3fs", ToSecondsF(d));
  } else if (d >= kMillisecond) {
    snprintf(buf, sizeof(buf), "%lldms",
             static_cast<long long>(d / kMillisecond));
  } else {
    snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace pier

#endif  // PIER_COMMON_TIME_UTIL_H_
