#include "common/bench_json.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pier {
namespace bench {

namespace {
constexpr char kHeader0[] = "{";
constexpr char kHeader1[] = "  \"schema\": \"pier-bench-v1\",";
constexpr char kHeader2[] = "  \"benches\": [";
constexpr char kFooter0[] = "  ]";
constexpr char kFooter1[] = "}";

/// Formats a double the way JSON wants it: integral values without a
/// fractional part, everything else with enough digits to round-trip.
std::string NumberToJson(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 &&
      v > -1e15) {
    snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Extracts the "name" of an entry line this harness wrote earlier.
std::string EntryName(const std::string& line) {
  const std::string tag = "\"name\": \"";
  size_t p = line.find(tag);
  if (p == std::string::npos) return "";
  p += tag.size();
  size_t e = line.find('"', p);
  if (e == std::string::npos) return "";
  return line.substr(p, e - p);
}
}  // namespace

JsonOptions ParseJsonFlag(int argc, char** argv) {
  JsonOptions out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      out.enabled = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      out.enabled = true;
      out.path = arg.substr(7);
    } else {
      out.args.push_back(arg);
    }
  }
  return out;
}

JsonReport::JsonReport(std::string bench_name)
    : name_(std::move(bench_name)) {}

void JsonReport::Metric(const std::string& name, double value,
                        const std::string& unit) {
  for (Entry& e : metrics_) {
    if (e.name == name) {
      e.value = value;
      e.unit = unit;
      return;
    }
  }
  metrics_.push_back(Entry{name, value, unit});
}

std::string JsonReport::ToJsonLine() const {
  std::ostringstream os;
  os << "    {\"name\": \"" << EscapeJson(name_) << "\", \"metrics\": {";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    if (i > 0) os << ", ";
    os << '"' << EscapeJson(metrics_[i].name) << "\": {\"value\": "
       << NumberToJson(metrics_[i].value) << ", \"unit\": \""
       << EscapeJson(metrics_[i].unit) << "\"}";
  }
  os << "}}";
  return os.str();
}

bool JsonReport::WriteMerged(const std::string& path) const {
  // Collect surviving entry lines from a previous report (if any). Anything
  // that is not an entry line from our own format is ignored — the file is
  // regenerated wholesale each time.
  std::vector<std::string> entries;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("    {", 0) != 0) continue;
      std::string name = EntryName(line);
      if (name.empty() || name == name_) continue;
      // Strip any trailing comma; commas are re-inserted on write.
      if (!line.empty() && line.back() == ',') line.pop_back();
      entries.push_back(line);
    }
  }
  entries.push_back(ToJsonLine());

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << kHeader0 << '\n' << kHeader1 << '\n' << kHeader2 << '\n';
  for (size_t i = 0; i < entries.size(); ++i) {
    out << entries[i] << (i + 1 < entries.size() ? "," : "") << '\n';
  }
  out << kFooter0 << '\n' << kFooter1 << '\n';
  return static_cast<bool>(out);
}

}  // namespace bench
}  // namespace pier
