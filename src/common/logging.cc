#include "common/logging.h"

namespace pier {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel level, const std::string& who,
                 const std::string& msg) {
  if (!Enabled(level)) return;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kWarn:
      tag = "W";
      break;
    case LogLevel::kError:
      tag = "E";
      break;
    case LogLevel::kNone:
      return;
  }
  const TimePoint* now = clock_source();
  if (now != nullptr) {
    fprintf(stderr, "[%s %10.3fs %s] %s\n", tag, ToSecondsF(*now),
            who.c_str(), msg.c_str());
  } else {
    fprintf(stderr, "[%s %s] %s\n", tag, who.c_str(), msg.c_str());
  }
}

}  // namespace pier
