// Status: the error-reporting type used throughout PIER.
//
// Library code never throws exceptions (per the project style rules);
// fallible operations return a Status or a Result<T> (see result.h).
// Modeled on the RocksDB / Abseil status idiom.

#ifndef PIER_COMMON_STATUS_H_
#define PIER_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace pier {

/// A Status encodes the outcome of an operation: OK, or an error code plus a
/// human-readable message. Statuses are cheap to copy in the OK case.
class Status {
 public:
  /// Error categories. Keep stable: codes cross the simulated wire in some
  /// control responses.
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,
    kInvalidArgument = 2,
    kCorruption = 3,
    kNotSupported = 4,
    kTimeout = 5,
    kUnavailable = 6,
    kInternal = 7,
    kBusy = 8,
    kCancelled = 9,
    kAlreadyExists = 10,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Timeout(std::string msg = "") {
    return Status(Code::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Cancelled(std::string msg = "") {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(Code::kAlreadyExists, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsTimeout() const { return code_ == Code::kTimeout; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<category>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Code code_;
  std::string message_;
};

/// Name of a status code, e.g. "NotFound".
const char* StatusCodeName(Status::Code code);

}  // namespace pier

/// Propagates errors to the caller: evaluates `expr`; if the resulting Status
/// is not OK, returns it from the enclosing function.
#define PIER_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::pier::Status _pier_status = (expr);          \
    if (!_pier_status.ok()) return _pier_status;   \
  } while (0)

#endif  // PIER_COMMON_STATUS_H_
