// Deterministic jittered exponential backoff, shared by the query engine's
// reliable frame retries and the broadcast layer's per-edge retransmits.
// Jitter is derived from stable identifiers (never ambient randomness) so
// seeded simulation replays stay byte-identical.

#ifndef PIER_COMMON_BACKOFF_H_
#define PIER_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>
#include <string_view>

#include "common/time_util.h"

namespace pier {

/// Deterministic avalanche hash (splitmix64 finalizer).
inline uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic string hash (FNV-1a) for salting jitter with names
/// (namespaces, table names) instead of ambient randomness.
inline uint64_t HashBytes(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Delay before retransmit attempt `attempt` (the first retry is attempt 1):
/// initial * 2^(attempt-1), capped at max, then scaled by a factor in
/// [1 - jitter, 1 + jitter] derived from `salt` and the attempt number.
inline Duration RetryDelay(Duration initial, Duration max, double jitter,
                           uint64_t salt, int attempt) {
  Duration base = initial;
  for (int i = 1; i < attempt && base < max; ++i) base *= 2;
  base = std::min(base, max);
  if (jitter > 0) {
    uint64_t h = MixHash64(salt ^ (static_cast<uint64_t>(attempt) << 56));
    double frac = static_cast<double>(h >> 11) / 9007199254740992.0;  // 2^53
    base = static_cast<Duration>(
        static_cast<double>(base) * (1.0 - jitter + 2.0 * jitter * frac));
  }
  return std::max<Duration>(base, kMillisecond);
}

}  // namespace pier

#endif  // PIER_COMMON_BACKOFF_H_
