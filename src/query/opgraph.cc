#include "query/opgraph.h"

namespace pier {
namespace query {

const char* JoinStrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kSymmetricHash:
      return "symmetric-hash";
    case JoinStrategy::kFetchMatches:
      return "fetch-matches";
    case JoinStrategy::kSymmetricSemi:
      return "symmetric-semi";
    case JoinStrategy::kBloom:
      return "bloom";
  }
  return "?";
}

const char* AggStrategyName(AggStrategy s) {
  switch (s) {
    case AggStrategy::kDirect:
      return "direct";
    case AggStrategy::kTree:
      return "tree";
  }
  return "?";
}

const char* OpTypeName(OpType t) {
  switch (t) {
    case OpType::kScan:
      return "scan";
    case OpType::kFilter:
      return "filter";
    case OpType::kProject:
      return "project";
    case OpType::kJoin:
      return "join";
    case OpType::kPartialAgg:
      return "partial-agg";
    case OpType::kFinalAgg:
      return "final-agg";
    case OpType::kRecurse:
      return "recurse";
    case OpType::kCollect:
      return "collect";
    case OpType::kIndexScan:
      return "index-scan";
  }
  return "?";
}

const char* ExchangeKindName(ExchangeKind k) {
  switch (k) {
    case ExchangeKind::kLocal:
      return "local";
    case ExchangeKind::kRehash:
      return "rehash";
    case ExchangeKind::kToOrigin:
      return "to-origin";
    case ExchangeKind::kTree:
      return "tree";
  }
  return "?";
}

namespace detail {

void PutOptionalExpr(Writer* w, const exec::ExprPtr& e) {
  w->PutBool(e != nullptr);
  if (e != nullptr) e->Serialize(w);
}

Status GetOptionalExpr(Reader* r, exec::ExprPtr* out) {
  bool present = false;
  PIER_RETURN_IF_ERROR(r->GetBool(&present));
  if (!present) {
    out->reset();
    return Status::OK();
  }
  return exec::Expr::Deserialize(r, out);
}

void PutIntVec(Writer* w, const std::vector<int>& v) {
  w->PutVarint32(static_cast<uint32_t>(v.size()));
  for (int x : v) w->PutVarint64Signed(x);
}

Status GetIntVec(Reader* r, std::vector<int>* out) {
  uint32_t n = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 100000) return Status::Corruption("int vector too long");
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int64_t x = 0;
    PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&x));
    out->push_back(static_cast<int>(x));
  }
  return Status::OK();
}

}  // namespace detail

using detail::GetIntVec;
using detail::GetOptionalExpr;
using detail::PutIntVec;
using detail::PutOptionalExpr;

// Wire caps that bound allocation on corrupt input.
namespace {
constexpr uint32_t kMaxNodes = 64;
constexpr uint32_t kMaxInputs = 2;
constexpr uint32_t kMaxExprs = 1000;
constexpr uint32_t kMaxAggs = 1000;
}  // namespace

void OpNode::Serialize(Writer* w) const {
  w->PutU8(static_cast<uint8_t>(type));
  w->PutVarint32(static_cast<uint32_t>(inputs.size()));
  for (uint32_t in : inputs) w->PutVarint32(in);
  w->PutU8(static_cast<uint8_t>(out));
  w->PutString(table);
  schema.Serialize(w);
  PutOptionalExpr(w, predicate);
  w->PutVarint32(static_cast<uint32_t>(exprs.size()));
  for (const auto& e : exprs) e->Serialize(w);
  w->PutU8(static_cast<uint8_t>(strategy));
  PutIntVec(w, left_keys);
  PutIntVec(w, right_keys);
  PutIntVec(w, group_cols);
  w->PutVarint32(static_cast<uint32_t>(aggs.size()));
  for (const auto& a : aggs) a.Serialize(w);
  PutOptionalExpr(w, having);
  w->PutVarint64Signed(src_col);
  w->PutVarint64Signed(dst_col);
  w->PutVarint64Signed(max_hops);
  w->PutBool(distinct);
  PutIntVec(w, final_projection);
  w->PutVarint64Signed(order_col);
  w->PutBool(order_desc);
  w->PutVarint64Signed(limit);
  w->PutVarint64Signed(index_col);
  index_lo.Serialize(w);
  index_hi.Serialize(w);
}

Status OpNode::Deserialize(Reader* r, OpNode* out) {
  uint8_t type = 0;
  PIER_RETURN_IF_ERROR(r->GetU8(&type));
  if (type > static_cast<uint8_t>(OpType::kIndexScan)) {
    return Status::Corruption("bad op type");
  }
  out->type = static_cast<OpType>(type);
  uint32_t n = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > kMaxInputs) return Status::Corruption("too many op inputs");
  out->inputs.clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t in = 0;
    PIER_RETURN_IF_ERROR(r->GetVarint32(&in));
    out->inputs.push_back(in);
  }
  uint8_t exch = 0;
  PIER_RETURN_IF_ERROR(r->GetU8(&exch));
  if (exch > static_cast<uint8_t>(ExchangeKind::kTree)) {
    return Status::Corruption("bad exchange kind");
  }
  out->out = static_cast<ExchangeKind>(exch);
  PIER_RETURN_IF_ERROR(r->GetString(&out->table));
  PIER_RETURN_IF_ERROR(catalog::Schema::Deserialize(r, &out->schema));
  PIER_RETURN_IF_ERROR(GetOptionalExpr(r, &out->predicate));
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > kMaxExprs) return Status::Corruption("too many op exprs");
  out->exprs.clear();
  for (uint32_t i = 0; i < n; ++i) {
    exec::ExprPtr e;
    PIER_RETURN_IF_ERROR(exec::Expr::Deserialize(r, &e));
    out->exprs.push_back(std::move(e));
  }
  uint8_t strategy = 0;
  PIER_RETURN_IF_ERROR(r->GetU8(&strategy));
  if (strategy > static_cast<uint8_t>(JoinStrategy::kBloom)) {
    return Status::Corruption("bad join strategy");
  }
  out->strategy = static_cast<JoinStrategy>(strategy);
  PIER_RETURN_IF_ERROR(GetIntVec(r, &out->left_keys));
  PIER_RETURN_IF_ERROR(GetIntVec(r, &out->right_keys));
  PIER_RETURN_IF_ERROR(GetIntVec(r, &out->group_cols));
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > kMaxAggs) return Status::Corruption("too many aggs");
  out->aggs.clear();
  for (uint32_t i = 0; i < n; ++i) {
    exec::AggSpec a;
    PIER_RETURN_IF_ERROR(exec::AggSpec::Deserialize(r, &a));
    out->aggs.push_back(std::move(a));
  }
  PIER_RETURN_IF_ERROR(GetOptionalExpr(r, &out->having));
  int64_t src_col = 0, dst_col = 0, max_hops = 0, order_col = 0, limit = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&src_col));
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&dst_col));
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&max_hops));
  out->src_col = static_cast<int>(src_col);
  out->dst_col = static_cast<int>(dst_col);
  out->max_hops = static_cast<int>(max_hops);
  PIER_RETURN_IF_ERROR(r->GetBool(&out->distinct));
  PIER_RETURN_IF_ERROR(GetIntVec(r, &out->final_projection));
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&order_col));
  out->order_col = static_cast<int>(order_col);
  PIER_RETURN_IF_ERROR(r->GetBool(&out->order_desc));
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&limit));
  out->limit = limit;
  int64_t index_col = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&index_col));
  out->index_col = static_cast<int>(index_col);
  PIER_RETURN_IF_ERROR(Value::Deserialize(r, &out->index_lo));
  return Value::Deserialize(r, &out->index_hi);
}

std::string OpNode::ToString() const {
  std::string s = OpTypeName(type);
  auto int_list = [](const std::vector<int>& v) {
    std::string out = "[";
    for (size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(v[i]);
    }
    return out + "]";
  };
  switch (type) {
    case OpType::kScan:
      s += "(" + table + ")";
      break;
    case OpType::kIndexScan: {
      // The EXPLAIN-visible access path: which index, and what range the
      // PHT cursor will walk ("[" / "]" = closed side, "(" / ")" = open).
      std::string col = static_cast<size_t>(index_col) < schema.num_columns()
                            ? schema.column(index_col).name
                            : std::to_string(index_col);
      s += "(" + table + "." + col + " range=";
      s += index_lo.is_null() ? "(-inf" : "[" + index_lo.ToString();
      s += ", ";
      s += index_hi.is_null() ? "+inf)" : index_hi.ToString() + "]";
      s += ")";
      break;
    }
    case OpType::kFilter:
      if (predicate != nullptr) s += "(" + predicate->ToString() + ")";
      break;
    case OpType::kProject:
      s += "(" + std::to_string(exprs.size()) + " exprs)";
      break;
    case OpType::kJoin:
      s += "[" + std::string(JoinStrategyName(strategy)) + "] keys=" +
           int_list(left_keys) + "x" + int_list(right_keys);
      break;
    case OpType::kPartialAgg:
    case OpType::kFinalAgg: {
      s += "(group=" + int_list(group_cols) + " aggs=";
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i > 0) s += ",";
        s += exec::AggFuncName(aggs[i].fn);
      }
      s += ")";
      if (having != nullptr) s += " having=" + having->ToString();
      break;
    }
    case OpType::kRecurse:
      s += "(src=" + std::to_string(src_col) +
           " dst=" + std::to_string(dst_col) +
           " maxhops=" + std::to_string(max_hops) + ")";
      if (predicate != nullptr) s += " edge-where=" + predicate->ToString();
      break;
    case OpType::kCollect: {
      std::string opts;
      if (distinct) opts += " distinct";
      if (!final_projection.empty()) {
        opts += " select=" + int_list(final_projection);
      }
      if (order_col >= 0) {
        opts += " order=" + std::to_string(order_col) +
                (order_desc ? " desc" : " asc");
      }
      if (limit >= 0) opts += " limit=" + std::to_string(limit);
      s += "(" + (opts.empty() ? std::string() : opts.substr(1)) + ")";
      break;
    }
  }
  return s;
}

Status OpGraph::Validate() const {
  if (nodes.empty()) return Status::InvalidArgument("empty opgraph");
  if (nodes.size() > kMaxNodes) return Status::Corruption("opgraph too large");
  std::vector<int> consumers(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    const OpNode& n = nodes[i];
    for (uint32_t in : n.inputs) {
      if (in >= i) return Status::Corruption("opgraph edge not topological");
      ++consumers[in];
    }
    size_t want_inputs = 0;
    switch (n.type) {
      case OpType::kScan:
        want_inputs = 0;
        if (n.table.empty()) return Status::Corruption("scan without table");
        break;
      case OpType::kIndexScan:
        want_inputs = 0;
        if (n.table.empty()) {
          return Status::Corruption("index scan without table");
        }
        if (n.index_col < 0 ||
            static_cast<size_t>(n.index_col) >= n.schema.num_columns()) {
          return Status::Corruption("index scan column out of range");
        }
        if (n.out != ExchangeKind::kLocal &&
            n.out != ExchangeKind::kToOrigin) {
          return Status::Corruption(
              "index scan output must stay at the origin");
        }
        break;
      case OpType::kJoin:
        want_inputs = 2;
        if (n.left_keys.empty() || n.left_keys.size() != n.right_keys.size()) {
          return Status::Corruption("join key arity mismatch");
        }
        break;
      case OpType::kFilter:
        if (n.predicate == nullptr) {
          return Status::Corruption("filter without predicate");
        }
        want_inputs = 1;
        break;
      default:
        want_inputs = 1;
        break;
    }
    if (n.inputs.size() != want_inputs) {
      return Status::Corruption("bad input arity for " +
                                std::string(OpTypeName(n.type)));
    }
    if (n.out == ExchangeKind::kTree && n.type != OpType::kPartialAgg) {
      return Status::Corruption("tree exchange requires partial-agg producer");
    }
  }
  if (nodes.back().type != OpType::kCollect) {
    return Status::Corruption("opgraph root must be collect");
  }
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    if (consumers[i] != 1) {
      return Status::Corruption("every interior node needs exactly one "
                                "consumer");
    }
  }
  if (consumers.back() != 0) {
    return Status::Corruption("collect cannot feed another node");
  }
  return Status::OK();
}

int OpGraph::FindFirst(OpType type) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].type == type) return static_cast<int>(i);
  }
  return -1;
}

int OpGraph::ConsumerOf(uint32_t id) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (uint32_t in : nodes[i].inputs) {
      if (in == id) return static_cast<int>(i);
    }
  }
  return -1;
}

void OpGraph::Serialize(Writer* w) const {
  // Nodes serialize to a few dozen bytes each (kind, edges, columns); one
  // up-front reservation keeps plan encoding from growing through doubling.
  w->Reserve(8 + nodes.size() * 64);
  w->PutVarint32(static_cast<uint32_t>(nodes.size()));
  for (const OpNode& n : nodes) n.Serialize(w);
}

Status OpGraph::Deserialize(Reader* r, OpGraph* out) {
  uint32_t n = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > kMaxNodes) return Status::Corruption("opgraph too large");
  out->nodes.clear();
  out->nodes.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    OpNode node;
    PIER_RETURN_IF_ERROR(OpNode::Deserialize(r, &node));
    out->nodes.push_back(std::move(node));
  }
  return out->Validate();
}

std::string OpGraph::ToString() const {
  std::string s = "opgraph{\n";
  for (size_t i = 0; i < nodes.size(); ++i) {
    s += "  " + std::to_string(i) + ": " + nodes[i].ToString();
    if (!nodes[i].inputs.empty()) {
      s += " <- (";
      for (size_t k = 0; k < nodes[i].inputs.size(); ++k) {
        if (k > 0) s += ",";
        s += std::to_string(nodes[i].inputs[k]);
      }
      s += ")";
    }
    if (nodes[i].out != ExchangeKind::kLocal) {
      s += " => ";
      s += ExchangeKindName(nodes[i].out);
    }
    s += "\n";
  }
  s += "}";
  return s;
}

}  // namespace query
}  // namespace pier
