#include "query/reliable.h"

#include <algorithm>

namespace pier {
namespace query {

bool FrameDedupe::Admit(uint64_t frame_id) {
  if (frame_id == 0) return false;  // ids start at 1; 0 is malformed
  if (frame_id <= max_contig_ || sparse_.count(frame_id)) return false;
  ++admitted_;
  if (frame_id == max_contig_ + 1) {
    ++max_contig_;
    // Absorb any sparse ids that became contiguous.
    auto it = sparse_.begin();
    while (it != sparse_.end() && *it == max_contig_ + 1) {
      ++max_contig_;
      it = sparse_.erase(it);
    }
  } else if (sparse_.size() < kMaxSparse) {
    sparse_.insert(frame_id);
  }
  return true;
}

uint64_t ReliableOutbox::Enqueue(sim::HostId to, std::string bytes,
                                 bool control) {
  uint64_t id = next_id_++;
  Frame f;
  f.to = to;
  f.control = control;
  pending_bytes_ += bytes.size();
  if (!control) ++data_pending_;
  f.bytes = std::move(bytes);
  pending_.emplace(id, std::move(f));
  return id;
}

ReliableOutbox::Frame* ReliableOutbox::Get(uint64_t frame_id) {
  auto it = pending_.find(frame_id);
  return it == pending_.end() ? nullptr : &it->second;
}

bool ReliableOutbox::Ack(uint64_t frame_id) {
  auto it = pending_.find(frame_id);
  if (it == pending_.end()) return false;
  pending_bytes_ -= it->second.bytes.size();
  if (!it->second.control) --data_pending_;
  pending_.erase(it);
  return true;
}

void ReliableOutbox::MarkLost(uint64_t frame_id) {
  auto it = pending_.find(frame_id);
  if (it == pending_.end()) return;
  pending_bytes_ -= it->second.bytes.size();
  if (!it->second.control) {
    --data_pending_;
    ++lost;
  }
  pending_.erase(it);
}

void ReliableOutbox::Clear() {
  pending_.clear();
  pending_bytes_ = 0;
  data_pending_ = 0;
}

}  // namespace query
}  // namespace pier
