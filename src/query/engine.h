// QueryEngine: PIER's distributed query processor, one instance per node.
//
// The engine is the host side of the opgraph runtime (query/opgraph.h,
// query/ops/): it disseminates plans over the DHT broadcast tree, builds a
// per-query ops::QueryRuntime from each plan's graph, and routes network
// events — exchange arrivals, relayed partials, fetch/Bloom traffic,
// timers — to the runtime's stages. Operator logic lives in the stages;
// the engine owns only choreography:
//   - query dissemination and refresh (soft-state plan broadcasts);
//   - epoch alignment for continuous queries;
//   - the kToOrigin / kTree exchange routing (who a result or partial is
//     sent to, given this node's dissemination-tree position);
//   - origin-side collection and post-processing (final aggregation,
//     HAVING, DISTINCT, ORDER BY / LIMIT) driven by the graph's
//     final-agg / collect nodes;
//   - recursion quiescence detection and query teardown/GC.
//
// Everything is soft state: one-shot results are "best effort within the
// result wait window", exactly the guarantee the paper's demo gives.

#ifndef PIER_QUERY_ENGINE_H_
#define PIER_QUERY_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "catalog/table_def.h"
#include "catalog/tuple.h"
#include "common/result.h"
#include "dht/broadcast.h"
#include "dht/storage.h"
#include "exec/operators.h"
#include "overlay/router.h"
#include "overlay/transport.h"
#include "query/ops/runtime.h"
#include "query/plan.h"
#include "query/protocol.h"
#include "query/scheduler.h"
#include "sim/event_queue.h"

namespace pier {
namespace index {
class IndexManager;
}  // namespace index

namespace query {

/// Per-node query processor. Registers for Proto::kQuery and owns the
/// node's broadcast handler.
class QueryEngine : public ops::StageHost {
 public:
  using ResultCallback = std::function<void(const ResultBatch&)>;

  QueryEngine(overlay::Transport* transport, overlay::Router* router,
              dht::Dht* dht, dht::BroadcastService* broadcast,
              catalog::Catalog* catalog, EngineOptions options);
  ~QueryEngine() override;

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// The node-local catalog (register table definitions here).
  catalog::Catalog* catalog() { return catalog_; }

  /// Attaches the node's PHT index manager: publishes then piggyback index
  /// maintenance for every indexed attribute of the table. Optional (tests
  /// may run engines without indexing); must outlive the engine.
  void SetIndexManager(index::IndexManager* manager) {
    index_manager_ = manager;
  }

  /// Publishes one tuple of `table` into the DHT under a fresh instance id.
  Status Publish(const std::string& table, const catalog::Tuple& t);

  /// Publishes under a caller-stable instance id (scoped to this node):
  /// re-publishing with the same id renews/overwrites instead of
  /// accumulating — the idiom for periodically refreshed monitoring rows.
  Status PublishVersioned(const std::string& table, const catalog::Tuple& t,
                          uint64_t instance);

  /// Issues a distributed query from this node. `cb` fires once per epoch
  /// (exactly once for one-shot queries). Refused with Status::Busy when
  /// this node's admission budgets (live queries, plan operators, pending
  /// reliable-result bytes) are exhausted. Returns the query id.
  Result<uint64_t> Execute(QueryPlan plan, ResultCallback cb);

  /// Stops a (typically continuous) query network-wide: broadcasts kCancel
  /// down the dissemination tree so members free stage state and exchange
  /// namespaces immediately instead of squatting until TTL. No further
  /// result callbacks fire (cancellation never emits a final batch).
  void Cancel(uint64_t query_id);

  /// Kills every pending engine timer and epoch task (node crash/leave).
  /// A stopped engine must never fire another result callback: a crashed
  /// origin's result-window timer delivering an answer from beyond the
  /// grave is exactly the kind of zombie lifecycle this forbids.
  void Stop();

  const EngineStats& stats() const { return stats_; }
  const EngineOptions& options() const { return options_; }

  /// Number of queries this node currently tracks (diagnostics).
  size_t active_queries() const { return queries_.size(); }

  /// Whether `qid` is tracked here and not yet torn down — the testkit's
  /// namespace-hygiene probe (ended-but-unGCed husks don't count).
  bool HasLiveQuery(uint64_t qid) const;

  /// Audits the reliable result plane's teardown accounting: the admission
  /// gate's pending-byte counter must equal the bytes actually sitting in
  /// live outboxes, and ended queries must hold no reliable-plane state
  /// (frames, dedupe windows, member reports). The testkit's
  /// ExchangeHygieneChecker runs this on every node — a leak here is what
  /// wedges admission into permanent Busy under query storms.
  Status CheckReliableAccounting() const;

  // -- ops::StageHost --------------------------------------------------------
  sim::Simulation* sim() override { return sim_; }
  dht::Dht* dht() override { return dht_; }
  uint32_t self_host() const override { return transport_->self(); }
  const EngineOptions& engine_options() const override { return options_; }
  EngineStats* mutable_stats() override { return &stats_; }
  int QueryDepth(uint64_t qid) const override;
  void DeliverResult(uint64_t qid, uint64_t epoch,
                     const catalog::Tuple& t) override;
  void DeliverPartial(uint64_t qid, uint64_t epoch, const catalog::Tuple& t,
                      ExchangeKind route) override;
  void DeliverResultBatch(uint64_t qid, uint64_t epoch,
                          const exec::RowBatch& b) override;
  void DeliverPartialBatch(uint64_t qid, uint64_t epoch,
                           const std::vector<catalog::Tuple>& partials,
                           ExchangeKind route) override;
  void SendQueryBytes(uint32_t to, const Writer& w) override;
  void BroadcastBloomFilters(uint64_t qid, uint32_t node_id,
                             uint64_t parts_expected, uint64_t parts_reported,
                             bool complete, const BloomFilter& left,
                             const BloomFilter& right) override;
  void QueryCoverage(uint64_t qid, uint64_t* members,
                     bool* complete) const override;
  sim::TimerId ScheduleStageTimer(Duration delay, uint64_t qid,
                                  uint32_t node_id, uint64_t token) override;
  void CancelTimer(sim::TimerId id) override;
  void PostToStage(uint64_t qid, uint32_t node_id,
                   const std::function<void(ops::Stage*)>& fn) override;
  void OnIndexScanDone(uint64_t qid, bool ok) override;
  void SubmitScan(ScanWork work) override;
  void OnEpochScansDone(uint64_t qid, uint64_t epoch) override;
  bool ChargeRehashPuts(uint64_t qid, uint64_t n) override;

 private:
  struct ActiveQuery;

  // -- plumbing --------------------------------------------------------------
  void OnBroadcast(sim::HostId origin, uint64_t seq, sim::HostId parent,
                   int depth, const sim::Payload& payload);
  void OnDirect(sim::HostId from, Reader* r);
  /// The shared direct-message switch: called with the type byte already
  /// consumed, both for raw messages and for the inner bytes of an admitted
  /// kFrame envelope.
  void DispatchMessage(sim::HostId from, uint8_t type, Reader* r);
  void SendDirect(sim::HostId to, const Writer& w);
  void RouteArrival(uint64_t qid, const std::string& ns,
                    const dht::StoredItem& item);

  // -- reliable result plane -------------------------------------------------
  /// Wraps `inner` (a complete direct message) in an acked kFrame envelope
  /// and owns its retransmit schedule; falls back to a bare send when
  /// EngineOptions::reliable_results is off.
  void SendReliable(ActiveQuery* aq, sim::HostId to, Writer&& inner,
                    bool control);
  void SendFrameOnce(ActiveQuery* aq, uint64_t frame_id);
  void ScheduleFrameRetry(uint64_t qid, uint64_t frame_id);
  void OnFrame(sim::HostId from, Reader* r);
  void OnFrameAck(Reader* r);
  /// Member side: the reliable outbox just drained of data frames — tell
  /// the origin how much this member has contributed so far.
  void OnOutboxDrained(ActiveQuery* aq);
  void SendEpochReport(ActiveQuery* aq);
  /// Origin side: finalize `epoch` before the result window closes if every
  /// covered member has reported it complete and loss-free.
  void MaybeEarlyFinalize(ActiveQuery* aq, uint64_t epoch);
  /// Dissemination cover wave returned for broadcast `seq`.
  void OnCoverage(uint64_t seq, uint64_t members, bool complete);
  Completeness BuildCompleteness(ActiveQuery* aq, uint64_t epoch,
                                 bool exact_certified) const;

  // -- lifecycle -------------------------------------------------------------
  /// Deadline fired: origin finalizes what it has (flagged) and cancels
  /// network-wide; members self-expire.
  void OnDeadline(uint64_t qid);
  /// Arms/refreshes a member's deadline self-expiry and origin-liveness
  /// lease timers.
  void ArmMemberLifecycle(ActiveQuery* aq);

  // -- query lifecycle -------------------------------------------------------
  /// Graph constraints that need the catalog (partitioning prerequisites
  /// of fetch-matches joins and recursion).
  Status ValidateGraphAgainstCatalog(const OpGraph& graph) const;
  void InstallQuery(const PlanEnvelope& env, sim::HostId parent, int depth);
  /// Globally time-aligned epoch number for a continuous query.
  uint64_t CurrentEpoch(const ActiveQuery& aq) const;
  void StartEpoch(ActiveQuery* aq, uint64_t epoch);
  void FinalizeEpoch(ActiveQuery* aq, uint64_t epoch,
                     bool exact_certified = false);
  void EndQuery(uint64_t query_id);
  /// Member-side end-of-query teardown (also the local path for
  /// origin-local queries that never broadcast).
  void HandleQueryEnd(uint64_t query_id);
  void GcQuery(uint64_t query_id);
  /// Rewrites an index-scan query into the equivalent broadcast scan and
  /// disseminates it — the mid-churn / cold-index degradation path.
  void FallbackToScan(ActiveQuery* aq);

  // -- per-query budgets -------------------------------------------------------
  /// The plan's budget with engine-wide defaults filled into unset (0)
  /// dimensions.
  QueryBudget EffectiveBudget(const ActiveQuery& aq) const;
  /// Marks the query budget-tripped on this node (once): the scheduler's
  /// abort probe stops its scans, and a member tells the origin via
  /// kBudgetTrip so Completeness reports the degradation.
  void TripBudget(ActiveQuery* aq);

  // -- origin-side post-processing --------------------------------------------
  void OriginAccept(ActiveQuery* aq, uint64_t epoch, sim::HostId from,
                    const catalog::Tuple& t, bool is_partial);
  std::vector<catalog::Tuple> OriginPostProcess(ActiveQuery* aq,
                                                uint64_t epoch);

  overlay::Transport* transport_;
  overlay::Router* router_;
  dht::Dht* dht_;
  dht::BroadcastService* broadcast_;
  catalog::Catalog* catalog_;
  index::IndexManager* index_manager_ = nullptr;
  sim::Simulation* sim_;
  EngineOptions options_;
  EngineStats stats_;
  /// The multi-tenant scan dispatcher (round-robin quanta + shared sweeps).
  std::unique_ptr<QueryScheduler> scheduler_;

  /// Schedules an engine-owned timer: cancelled automatically when the
  /// engine is destroyed (node crash/reboot), so callbacks never fire on a
  /// dead engine.
  sim::TimerId ScheduleEngineTimer(Duration delay, std::function<void()> fn);
  sim::TimerId ScheduleEngineTimerAt(TimePoint when, std::function<void()> fn);

  uint64_t next_query_seq_ = 1;
  uint64_t publish_seq_ = 1;
  std::map<uint64_t, std::unique_ptr<ActiveQuery>> queries_;
  std::vector<sim::TimerId> engine_timers_;
  bool stopped_ = false;
  /// Bytes sitting in unacked reliable outboxes across all queries — the
  /// admission gate's backpressure signal.
  uint64_t pending_result_bytes_ = 0;
  /// Broadcast seq -> (qid, epoch): which query/epoch a pending
  /// dissemination cover wave reports coverage for.
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> coverage_waits_;
};

}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_ENGINE_H_
