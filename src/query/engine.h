// QueryEngine: PIER's distributed query processor, one instance per node.
//
// Responsibilities:
//   - query dissemination: plans broadcast over the DHT's dissemination tree;
//   - scans: each node contributes its local slice of a namespace;
//   - in-network aggregation: partials combine hop-by-hop up the broadcast
//     tree (AggStrategy::kTree) or flow directly to the origin (kDirect);
//   - distributed joins: symmetric hash (rehash into a per-query temp
//     namespace), fetch matches, symmetric semi-join with match-time tuple
//     fetch, and Bloom join with filter exchange;
//   - recursion: semi-naive transitive closure with in-DHT dedup and
//     quiescence detection at the origin;
//   - continuous queries: periodic re-execution with windowed scans, epoch-
//     aligned across nodes;
//   - result collection and origin-side post-processing (final aggregation,
//     HAVING, DISTINCT, ORDER BY / LIMIT).
//
// Everything is soft state: one-shot results are "best effort within the
// result wait window", exactly the guarantee the paper's demo gives.

#ifndef PIER_QUERY_ENGINE_H_
#define PIER_QUERY_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/table_def.h"
#include "catalog/tuple.h"
#include "common/bloom.h"
#include "common/result.h"
#include "dht/broadcast.h"
#include "dht/storage.h"
#include "exec/operators.h"
#include "overlay/router.h"
#include "overlay/transport.h"
#include "query/plan.h"
#include "sim/event_queue.h"

namespace pier {
namespace query {

struct EngineOptions {
  /// How long the origin waits for distributed results before finalizing an
  /// epoch (the paper's demo semantics: sum over nodes *responding* in the
  /// window).
  Duration result_wait = Seconds(8);
  /// Tree aggregation: a node at depth d holds partials for
  /// agg_hold_base * (agg_assumed_depth - d) before flushing to its parent,
  /// so children flush before parents.
  Duration agg_hold_base = Millis(800);
  int agg_assumed_depth = 8;
  /// Bloom join: origin collects per-node filters for this long before
  /// redistributing the union.
  Duration bloom_wait = Seconds(4);
  size_t bloom_bits = 1 << 14;
  int bloom_hashes = 5;
  /// TTL on rehashed temp tuples (per-query namespaces).
  Duration temp_ttl = Seconds(90);
  /// Recursion: the origin declares fixpoint after this long without a new
  /// result, bounded by recursion_deadline.
  Duration quiesce_window = Seconds(6);
  Duration recursion_deadline = Seconds(120);
  /// Member-side state GC delay after a query ends.
  Duration cleanup_delay = Seconds(30);
};

struct EngineStats {
  uint64_t queries_issued = 0;
  uint64_t plans_received = 0;
  uint64_t scans_run = 0;
  uint64_t tuples_scanned = 0;
  uint64_t result_msgs_sent = 0;
  uint64_t result_msgs_received = 0;
  uint64_t partial_msgs_sent = 0;
  uint64_t partial_msgs_received = 0;
  uint64_t rehash_puts = 0;
  uint64_t fetch_gets = 0;
  uint64_t semijoin_fetches = 0;
  uint64_t bloom_filters_sent = 0;
  uint64_t bloom_suppressed = 0;
  uint64_t recursion_expansions = 0;
  uint64_t recursion_duplicates = 0;
};

/// One epoch's worth of answers, delivered to the issuing client.
struct ResultBatch {
  uint64_t query_id = 0;
  uint64_t epoch = 0;
  /// Nodes heard from this epoch (aggregation queries: distinct reporters).
  size_t reporting_nodes = 0;
  std::vector<catalog::Tuple> rows;
};

/// Per-node query processor. Registers for Proto::kQuery and owns the
/// node's broadcast handler.
class QueryEngine {
 public:
  using ResultCallback = std::function<void(const ResultBatch&)>;

  QueryEngine(overlay::Transport* transport, overlay::Router* router,
              dht::Dht* dht, dht::BroadcastService* broadcast,
              catalog::Catalog* catalog, EngineOptions options);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// The node-local catalog (register table definitions here).
  catalog::Catalog* catalog() { return catalog_; }

  /// Publishes one tuple of `table` into the DHT under a fresh instance id.
  Status Publish(const std::string& table, const catalog::Tuple& t);

  /// Publishes under a caller-stable instance id (scoped to this node):
  /// re-publishing with the same id renews/overwrites instead of
  /// accumulating — the idiom for periodically refreshed monitoring rows.
  Status PublishVersioned(const std::string& table, const catalog::Tuple& t,
                          uint64_t instance);

  /// Issues a distributed query from this node. `cb` fires once per epoch
  /// (exactly once for one-shot queries). Returns the query id.
  Result<uint64_t> Execute(QueryPlan plan, ResultCallback cb);

  /// Stops a (typically continuous) query network-wide.
  void Cancel(uint64_t query_id);

  const EngineStats& stats() const { return stats_; }
  const EngineOptions& options() const { return options_; }

  /// Number of queries this node currently tracks (diagnostics).
  size_t active_queries() const { return queries_.size(); }

 private:
  struct ActiveQuery;

  // Message types under Proto::kQuery.
  enum class MsgType : uint8_t {
    kResultTuple = 1,
    kPartialAgg = 2,
    kFetchReq = 3,
    kFetchResp = 4,
    kBloomPart = 5,
  };
  // Broadcast payload kinds.
  enum class BcastKind : uint8_t {
    kPlan = 1,
    kBloomDist = 2,
    kQueryEnd = 3,
  };

  // -- plumbing --------------------------------------------------------------
  void OnBroadcast(sim::HostId origin, uint64_t seq, sim::HostId parent,
                   int depth, const std::string& payload);
  void OnDirect(sim::HostId from, Reader* r);
  void SendDirect(sim::HostId to, const Writer& w);

  // -- query lifecycle -------------------------------------------------------
  void InstallQuery(const PlanEnvelope& env, sim::HostId parent, int depth);
  /// Globally time-aligned epoch number for a continuous query.
  uint64_t CurrentEpoch(const ActiveQuery& aq) const;
  void StartEpoch(ActiveQuery* aq, uint64_t epoch);
  void FinalizeEpoch(ActiveQuery* aq, uint64_t epoch);
  void EndQuery(uint64_t query_id);
  void GcQuery(uint64_t query_id);

  // -- member-side execution -------------------------------------------------
  std::vector<catalog::Tuple> ScanLocal(const ActiveQuery& aq,
                                        const std::string& table,
                                        const catalog::Schema& schema);
  void RunSelectEpoch(ActiveQuery* aq, uint64_t epoch);
  void RunAggregateEpoch(ActiveQuery* aq, uint64_t epoch);
  void FlushCombiner(ActiveQuery* aq, uint64_t epoch);
  void SendPartial(ActiveQuery* aq, uint64_t epoch, const catalog::Tuple& t);
  void SendResult(ActiveQuery* aq, uint64_t epoch, const catalog::Tuple& t);
  void SetupJoin(ActiveQuery* aq);
  void RunJoinScan(ActiveQuery* aq, bool bloom_phase2);
  void RehashTuple(ActiveQuery* aq, int side, const catalog::Tuple& t);
  void OnTempArrival(uint64_t query_id, const dht::StoredItem& item);
  void HandleJoinOutput(ActiveQuery* aq, const catalog::Tuple& joined);
  void SetupRecursive(ActiveQuery* aq);
  void OnReachArrival(uint64_t query_id, const dht::StoredItem& item);

  // -- origin-side post-processing --------------------------------------------
  void OriginAccept(ActiveQuery* aq, uint64_t epoch, sim::HostId from,
                    const catalog::Tuple& t, bool is_partial);
  std::vector<catalog::Tuple> OriginPostProcess(ActiveQuery* aq,
                                                uint64_t epoch);

  std::string TempNamespace(uint64_t query_id) const {
    return "q" + std::to_string(query_id) + ".tmp";
  }
  std::string ReachNamespace(uint64_t query_id) const {
    return "q" + std::to_string(query_id) + ".reach";
  }

  overlay::Transport* transport_;
  overlay::Router* router_;
  dht::Dht* dht_;
  dht::BroadcastService* broadcast_;
  catalog::Catalog* catalog_;
  sim::Simulation* sim_;
  EngineOptions options_;
  EngineStats stats_;

  /// Schedules an engine-owned timer: cancelled automatically when the
  /// engine is destroyed (node crash/reboot), so callbacks never fire on a
  /// dead engine.
  sim::TimerId ScheduleEngineTimer(Duration delay, std::function<void()> fn);
  sim::TimerId ScheduleEngineTimerAt(TimePoint when, std::function<void()> fn);

  uint64_t next_query_seq_ = 1;
  uint64_t publish_seq_ = 1;
  std::map<uint64_t, std::unique_ptr<ActiveQuery>> queries_;
  std::vector<sim::TimerId> engine_timers_;
};

}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_ENGINE_H_
