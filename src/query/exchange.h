// The Exchange layer: how tuples cross node boundaries between opgraph
// stages. Each ExchangeKind (see opgraph.h) has a runtime half here:
//
//   kRehash   -> RehashExchange: ships tuples to the DHT owner of the
//                consumer's key columns under a per-edge temp namespace
//                ("q<qid>.x<edge>"); the owner consumes arrivals. This is
//                the traffic that used to be inlined in the engine as
//                RehashTuple/OnTempArrival.
//   kTree     -> TreeCombiner: the per-epoch combine box an interior
//                dissemination-tree node runs over its children's partials
//                before forwarding one merged partial upward.
//   kToOrigin -> no object needed: StageHost::DeliverResult/DeliverPartial
//                route directly.
//
// Exchanges are owned by the per-query runtime and die with it; in-flight
// DHT tuples carry their own TTL (soft state all the way down).

#ifndef PIER_QUERY_EXCHANGE_H_
#define PIER_QUERY_EXCHANGE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "dht/local_store.h"
#include "exec/batch.h"
#include "exec/operators.h"
#include "query/ops/stage.h"
#include "query/opgraph.h"

namespace pier {
namespace query {

/// Send half of a kRehash edge. The edge id is the consuming graph node's
/// id, so every join input pair shares one namespace and tags tuples with
/// their input side.
class RehashExchange {
 public:
  RehashExchange(ops::StageHost* host, uint64_t qid, uint32_t edge_id);
  /// Custom-namespace variant (recursion's `q<id>.reach` reach relation).
  RehashExchange(ops::StageHost* host, uint64_t qid, std::string ns);

  static std::string NamespaceFor(uint64_t qid, uint32_t edge_id);
  const std::string& ns() const { return ns_; }

  /// Ships `t` to the owner of hash(t[key_cols]) tagged with `side`.
  void Publish(int side, const std::vector<int>& key_cols,
               const catalog::Tuple& t);
  /// Batch-plane rehash: buckets `rows` by owner resource and ships ONE
  /// column-major RowBatch frame per bucket (marker + side + batch) instead
  /// of one put per tuple. Single-row buckets use the legacy row frame —
  /// it is smaller. `schema` is the rows' layout (the producing scan's).
  void PublishBatch(int side, const std::vector<int>& key_cols,
                    const catalog::Schema& schema,
                    const std::vector<catalog::Tuple>& rows);
  /// Ships `t` under an explicit precomputed resource (key-projection
  /// shipping for the semi-join).
  void PublishAt(int side, const std::string& resource,
                 const catalog::Tuple& t);
  /// Ships pre-encoded bytes under `resource` with a fresh per-node
  /// instance id — the shared bottom half of every rehash put (untagged:
  /// consumers that use this decode the value themselves).
  void PublishValue(const std::string& resource, std::string value);

  /// Decodes one arrival payload ([side u8][tuple]); Corruption on garbage.
  static Status DecodeArrival(const dht::StoredItem& item, int* side,
                              catalog::Tuple* t);

  /// True when `item` holds a PublishBatch frame (legacy row frames start
  /// with side 0/1; batch frames with the 0x42 marker byte).
  static bool IsBatchFrame(const dht::StoredItem& item);
  /// Decodes a PublishBatch frame; Corruption on garbage.
  static Status DecodeBatchArrival(const dht::StoredItem& item, int* side,
                                   exec::RowBatch* out);

 private:
  ops::StageHost* host_;
  uint64_t qid_;
  std::string ns_;
  uint64_t seq_ = 1;
};

/// Drains a spent aggregation box into a vector (single-shot: the op dies
/// with its sink and is never emitted into again).
std::vector<catalog::Tuple> DrainGroupBy(std::unique_ptr<exec::GroupByOp> op);

/// The combine box of a kTree edge: partials in, one merged partial stream
/// out when flushed. Single-shot per epoch — open, push, flush, discard —
/// mirroring the decomposable-aggregate contract (exec/agg.h).
class TreeCombiner {
 public:
  TreeCombiner(std::vector<int> group_cols, std::vector<exec::AggSpec> aggs,
               uint64_t epoch);

  uint64_t epoch() const { return epoch_; }
  bool open() const { return op_ != nullptr; }
  void Push(const catalog::Tuple& partial);
  /// Drains the combined partials; the combiner is spent afterwards.
  std::vector<catalog::Tuple> Flush();

  sim::TimerId flush_timer = 0;  ///< owned by the stage that armed it

 private:
  uint64_t epoch_;
  std::unique_ptr<exec::GroupByOp> op_;
};

}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_EXCHANGE_H_
