#include "query/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "index/index_manager.h"

namespace pier {
namespace query {

using catalog::Tuple;

namespace {

/// True when every source of `g` is an index scan and nothing in the graph
/// needs other members: such a query executes entirely at the origin (plus
/// the DHT owners the cursor contacts) and is never broadcast.
bool IsOriginLocalGraph(const OpGraph& g) {
  bool has_index_scan = false;
  for (const OpNode& n : g.nodes) {
    switch (n.type) {
      case OpType::kIndexScan:
        has_index_scan = true;
        break;
      case OpType::kFilter:
      case OpType::kProject:
      case OpType::kFinalAgg:
      case OpType::kCollect:
        break;
      default:
        return false;  // scans, joins, recursion, partial agg: distributed
    }
    if (n.out == ExchangeKind::kRehash || n.out == ExchangeKind::kTree) {
      return false;
    }
  }
  return has_index_scan;
}

}  // namespace

// ---------------------------------------------------------------------------
// Per-query state
// ---------------------------------------------------------------------------

struct QueryEngine::ActiveQuery {
  PlanEnvelope env;
  bool is_origin = false;
  bool installed = false;
  sim::HostId parent = sim::kInvalidHost;  ///< aggregation-tree parent
  int depth = 0;
  bool ended = false;
  /// Index-only plan executing without dissemination; cleared when a
  /// fallback rewrites it into a broadcast scan.
  bool origin_local = false;
  /// One rewrite per query: a fallback graph has no index scans left.
  bool fallback_done = false;

  /// The instantiated opgraph: this node's stages and local pipelines.
  std::unique_ptr<ops::QueryRuntime> runtime;

  // Continuous execution driver (member side, including the origin).
  sim::PeriodicTask epoch_task;

  // Origin-side collection.
  ResultCallback cb;
  struct EpochState {
    std::vector<Tuple> rows;
    std::unique_ptr<exec::GroupByOp> final_gb;
    std::unordered_set<uint32_t> reporters;
    sim::TimerId finalize_timer = 0;
    bool finalized = false;
  };
  std::map<uint64_t, EpochState> epochs;
  /// Epochs at or below this number already reported; stragglers count as
  /// late_partials instead of resurrecting dead epoch state.
  int64_t last_finalized_epoch = -1;
  std::unordered_set<std::string> origin_result_seen;  // recursion dedup
  TimePoint last_new_result = 0;
  sim::PeriodicTask quiesce_task;
};

// ---------------------------------------------------------------------------
// Construction / plumbing
// ---------------------------------------------------------------------------

QueryEngine::QueryEngine(overlay::Transport* transport,
                         overlay::Router* router, dht::Dht* dht,
                         dht::BroadcastService* broadcast,
                         catalog::Catalog* catalog, EngineOptions options)
    : transport_(transport),
      router_(router),
      dht_(dht),
      broadcast_(broadcast),
      catalog_(catalog),
      sim_(transport->simulation()),
      options_(options) {
  transport_->RegisterHandler(
      overlay::Proto::kQuery,
      [this](sim::HostId from, Reader* r, const sim::Payload& /*body*/) {
        OnDirect(from, r);
      });
  broadcast_->SetHandler([this](sim::HostId origin, uint64_t seq,
                                sim::HostId parent, int depth,
                                const sim::Payload& payload) {
    OnBroadcast(origin, seq, parent, depth, payload);
  });
}

QueryEngine::~QueryEngine() {
  // A destroyed engine (node crash or reboot) must leave no timers behind:
  // callbacks capture `this`.
  for (sim::TimerId id : engine_timers_) sim_->Cancel(id);
}

sim::TimerId QueryEngine::ScheduleEngineTimer(Duration delay,
                                              std::function<void()> fn) {
  sim::TimerId id = sim_->ScheduleAfter(delay, std::move(fn));
  engine_timers_.push_back(id);
  return id;
}

sim::TimerId QueryEngine::ScheduleEngineTimerAt(TimePoint when,
                                                std::function<void()> fn) {
  sim::TimerId id = sim_->ScheduleAt(when, std::move(fn));
  engine_timers_.push_back(id);
  return id;
}

void QueryEngine::SendDirect(sim::HostId to, const Writer& w) {
  transport_->Send(to, overlay::Proto::kQuery, w);
}

Status QueryEngine::Publish(const std::string& table, const Tuple& t) {
  return PublishVersioned(table, t, publish_seq_++);
}

Status QueryEngine::PublishVersioned(const std::string& table, const Tuple& t,
                                     uint64_t instance) {
  const catalog::TableDef* def = catalog_->Find(table);
  if (def == nullptr) {
    return Status::NotFound("no such table: " + table);
  }
  if (t.size() != def->schema.num_columns()) {
    return Status::InvalidArgument("tuple width mismatch for " + table);
  }
  // host+1 keeps every publisher-scoped id nonzero: the PHT index reuses
  // these ids for its entries, and instance 0 is its trie-marker slot.
  uint64_t scoped =
      (static_cast<uint64_t>(transport_->self() + 1) << 32) |
      (instance & 0xffffffffull);
  dht_->Put(def->KeyFor(t, scoped), catalog::TupleToBytes(t), def->ttl,
            nullptr);
  // Piggybacked index maintenance: the same publisher-scoped instance keys
  // the index entries, so renewals renew instead of duplicating.
  if (index_manager_ != nullptr && !def->indexes.empty()) {
    index_manager_->OnPublish(*def, t, scoped, def->ttl);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ops::StageHost — the exchange routing stages delegate to
// ---------------------------------------------------------------------------

int QueryEngine::QueryDepth(uint64_t qid) const {
  auto it = queries_.find(qid);
  return it == queries_.end() ? 0 : it->second->depth;
}

void QueryEngine::DeliverResult(uint64_t qid, uint64_t epoch,
                                const Tuple& t) {
  auto it = queries_.find(qid);
  if (it == queries_.end()) return;
  ActiveQuery* aq = it->second.get();
  if (aq->is_origin) {
    OriginAccept(aq, epoch, transport_->self(), t, /*is_partial=*/false);
    return;
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kResultTuple));
  w.PutVarint64(qid);
  w.PutVarint64(epoch);
  catalog::SerializeTuple(t, &w);
  ++stats_.result_msgs_sent;
  SendDirect(aq->env.origin, w);
}

void QueryEngine::DeliverPartial(uint64_t qid, uint64_t epoch, const Tuple& t,
                                 ExchangeKind route) {
  auto it = queries_.find(qid);
  if (it == queries_.end()) return;
  ActiveQuery* aq = it->second.get();
  if (aq->is_origin) {
    OriginAccept(aq, epoch, transport_->self(), t, /*is_partial=*/true);
    return;
  }
  sim::HostId to = aq->env.origin;
  if (route == ExchangeKind::kTree && aq->parent != sim::kInvalidHost) {
    to = aq->parent;
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kPartialAgg));
  w.PutVarint64(qid);
  w.PutVarint64(epoch);
  catalog::SerializeTuple(t, &w);
  ++stats_.partial_msgs_sent;
  SendDirect(to, w);
}

void QueryEngine::DeliverResultBatch(uint64_t qid, uint64_t epoch,
                                     const exec::RowBatch& b) {
  auto it = queries_.find(qid);
  if (it == queries_.end()) return;
  ActiveQuery* aq = it->second.get();
  if (aq->is_origin) {
    Tuple t;
    for (size_t i = 0; i < b.ActiveRows(); ++i) {
      b.ToTuple(b.RowId(i), &t);
      OriginAccept(aq, epoch, transport_->self(), t, /*is_partial=*/false);
    }
    return;
  }
  size_t n = b.ActiveRows();
  if (n == 0) return;
  // Chunked delivery: one lost frame costs at most result_frame_rows rows,
  // keeping best-effort recall under lossy links near the tuple plane's.
  size_t cap = options_.result_frame_rows == 0 ? n : options_.result_frame_rows;
  for (size_t start = 0; start < n; start += cap) {
    size_t len = std::min(cap, n - start);
    if (len == 1) {
      // A single row ships in the legacy frame — it is smaller.
      Tuple t;
      b.ToTuple(b.RowId(start), &t);
      DeliverResult(qid, epoch, t);
      continue;
    }
    Writer w;
    w.PutU8(static_cast<uint8_t>(MsgType::kResultBatch));
    w.PutVarint64(qid);
    w.PutVarint64(epoch);
    if (len == n) {
      b.Encode(&w);  // compacts the selection: the wire carries live rows
    } else {
      b.SliceLive(start, len).Encode(&w);
    }
    ++stats_.result_msgs_sent;
    ++stats_.batch_frames_sent;
    SendDirect(aq->env.origin, w);
  }
}

void QueryEngine::DeliverPartialBatch(uint64_t qid, uint64_t epoch,
                                      const std::vector<Tuple>& partials,
                                      ExchangeKind route) {
  if (partials.empty()) return;
  auto it = queries_.find(qid);
  if (it == queries_.end()) return;
  ActiveQuery* aq = it->second.get();
  if (aq->is_origin) {
    for (const Tuple& t : partials) {
      OriginAccept(aq, epoch, transport_->self(), t, /*is_partial=*/true);
    }
    return;
  }
  if (partials.size() == 1) {
    // A single partial ships in the legacy row frame — it is smaller.
    DeliverPartial(qid, epoch, partials[0], route);
    return;
  }
  sim::HostId to = aq->env.origin;
  if (route == ExchangeKind::kTree && aq->parent != sim::kInvalidHost) {
    to = aq->parent;
  }
  // Partial rows from one flush share a layout ([group..., v1, v2 per
  // agg]); columns whose state types diverge across rows (the int->double
  // widening ladder) ride the boxed lane via AppendValue's promotion.
  std::vector<ValueType> types;
  types.reserve(partials[0].size());
  for (const Value& v : partials[0]) types.push_back(v.type());
  for (const Tuple& t : partials) {
    if (t.size() != types.size()) {
      // Ragged widths cannot share one batch; ship row frames instead.
      for (const Tuple& p : partials) DeliverPartial(qid, epoch, p, route);
      return;
    }
  }
  exec::RowBatchBuilder builder(types);
  builder.Reserve(partials.size());
  for (const Tuple& t : partials) builder.Append(t);
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kPartialBatch));
  w.PutVarint64(qid);
  w.PutVarint64(epoch);
  builder.Take().Encode(&w);
  ++stats_.partial_msgs_sent;
  ++stats_.batch_frames_sent;
  SendDirect(to, w);
}

void QueryEngine::SendQueryBytes(uint32_t to, const Writer& w) {
  SendDirect(static_cast<sim::HostId>(to), w);
}

void QueryEngine::BroadcastBloomFilters(uint64_t qid, const BloomFilter& left,
                                        const BloomFilter& right) {
  Writer w;
  w.PutU8(static_cast<uint8_t>(BcastKind::kBloomDist));
  w.PutVarint64(qid);
  left.Serialize(&w);
  right.Serialize(&w);
  broadcast_->Broadcast(sim::Payload(w.Release()));
}

sim::TimerId QueryEngine::ScheduleStageTimer(Duration delay, uint64_t qid,
                                             uint32_t node_id,
                                             uint64_t token) {
  return ScheduleEngineTimer(delay, [this, qid, node_id, token] {
    auto it = queries_.find(qid);
    if (it == queries_.end() || it->second->ended ||
        it->second->runtime == nullptr) {
      return;
    }
    ops::Stage* stage = it->second->runtime->stage(node_id);
    if (stage != nullptr) stage->OnTimer(token);
  });
}

void QueryEngine::CancelTimer(sim::TimerId id) { sim_->Cancel(id); }

void QueryEngine::PostToStage(uint64_t qid, uint32_t node_id,
                              const std::function<void(ops::Stage*)>& fn) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second->ended ||
      it->second->runtime == nullptr) {
    return;
  }
  ops::Stage* stage = it->second->runtime->stage(node_id);
  if (stage != nullptr) fn(stage);
}

void QueryEngine::OnIndexScanDone(uint64_t qid, bool ok) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second->ended || !it->second->is_origin) {
    return;
  }
  ActiveQuery* aq = it->second.get();
  if (!ok) {
    // Deferred: this call is on the failing cursor's own stack, and the
    // fallback replaces the runtime that owns it.
    uint64_t query_id = aq->env.query_id;
    ScheduleEngineTimer(0, [this, query_id] {
      auto qit = queries_.find(query_id);
      if (qit == queries_.end() || qit->second->ended) return;
      FallbackToScan(qit->second.get());
    });
    return;
  }
  // The cursor read the whole range: for a one-shot origin-local query the
  // answer is already complete, so close it now instead of sitting out the
  // rest of the result window — the latency half of the index win. The
  // finalize is deferred a tick because degenerate walks (an empty range)
  // complete synchronously inside Execute(), and the client must never see
  // its result callback fire before Execute has returned the query id.
  if (aq->origin_local && aq->env.plan.every == 0) {
    ++stats_.index_early_finalizes;
    uint64_t query_id = aq->env.query_id;
    ScheduleEngineTimer(0, [this, query_id] {
      auto qit = queries_.find(query_id);
      if (qit == queries_.end() || qit->second->ended) return;
      FinalizeEpoch(qit->second.get(), 0);
    });
  }
}

void QueryEngine::FallbackToScan(ActiveQuery* aq) {
  if (aq->fallback_done) return;  // fallback graphs carry no index scans
  aq->fallback_done = true;
  ++stats_.index_fallbacks;
  PLOG(kInfo, "qe@" + std::to_string(transport_->self()))
      << "query " << aq->env.query_id
      << " index scan failed/cold; falling back to broadcast scan";

  // Rewrite in place: every index scan becomes the plain scan of the same
  // relation. The planner always keeps the full WHERE in the trailing
  // filter node, so the rewritten graph computes the identical answer.
  aq->runtime.reset();
  for (OpNode& n : aq->env.plan.graph.nodes) {
    if (n.type == OpType::kIndexScan) {
      n.type = OpType::kScan;
      n.index_col = 0;
      n.index_lo = Value::Null();
      n.index_hi = Value::Null();
    }
  }
  aq->env.plan.graph_is_derived = false;  // must travel as-is
  aq->origin_local = false;
  // Rows the failed cursor already delivered would double-count against
  // the broadcast re-execution: reset this epoch's collection (its
  // finalize deadline stays armed).
  uint64_t epoch = CurrentEpoch(*aq);
  auto eit = aq->epochs.find(epoch);
  if (eit != aq->epochs.end()) {
    eit->second.rows.clear();
    eit->second.final_gb.reset();
    eit->second.reporters.clear();
  }
  aq->runtime = std::make_unique<ops::QueryRuntime>(this, &aq->env,
                                                    /*is_origin=*/true);
  if (!aq->runtime->Init().ok()) {
    aq->runtime.reset();
    return;  // defensive: leaves the query to time out best-effort
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(BcastKind::kPlan));
  aq->env.Serialize(&w);
  broadcast_->Broadcast(sim::Payload(w.Release()));  // includes local delivery
  aq->runtime->StartEpoch(CurrentEpoch(*aq));
}

void QueryEngine::RouteArrival(uint64_t qid, const std::string& ns,
                               const dht::StoredItem& item) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second->ended ||
      it->second->runtime == nullptr) {
    return;
  }
  it->second->runtime->OnArrival(ns, item);
}

// ---------------------------------------------------------------------------
// Query issue / dissemination
// ---------------------------------------------------------------------------

Status QueryEngine::ValidateGraphAgainstCatalog(const OpGraph& graph) const {
  for (const OpNode& n : graph.nodes) {
    if (n.type == OpType::kJoin &&
        n.strategy == JoinStrategy::kFetchMatches) {
      const OpNode& right = graph.nodes[n.inputs[1]];
      const catalog::TableDef* def = catalog_->Find(right.table);
      if (def == nullptr || def->partition_cols != n.right_keys) {
        return Status::InvalidArgument(
            "fetch-matches requires the inner relation partitioned on the "
            "join key");
      }
    }
    if (n.type == OpType::kRecurse) {
      const OpNode& edge = graph.nodes[n.inputs[0]];
      const catalog::TableDef* def = catalog_->Find(edge.table);
      if (def == nullptr ||
          def->partition_cols != std::vector<int>{n.src_col}) {
        return Status::InvalidArgument(
            "recursive queries require the edge table partitioned on the "
            "source column");
      }
    }
    if (n.type == OpType::kIndexScan) {
      const catalog::TableDef* def = catalog_->Find(n.table);
      if (def == nullptr || def->IndexOn(n.index_col) == nullptr) {
        return Status::InvalidArgument(
            "index scan requires a declared index on the attribute");
      }
    }
  }
  return Status::OK();
}

Result<uint64_t> QueryEngine::Execute(QueryPlan plan, ResultCallback cb) {
  plan.EnsureGraph();
  PIER_RETURN_IF_ERROR(plan.graph.Validate());
  PIER_RETURN_IF_ERROR(ValidateGraphAgainstCatalog(plan.graph));

  uint64_t query_id =
      (static_cast<uint64_t>(transport_->self() + 1) << 32) |
      next_query_seq_++;

  auto aq = std::make_unique<ActiveQuery>();
  aq->env.query_id = query_id;
  aq->env.origin = transport_->self();
  aq->env.issued_at = sim_->now();
  aq->env.plan = std::move(plan);
  aq->is_origin = true;
  aq->origin_local = IsOriginLocalGraph(aq->env.plan.graph);
  aq->parent = transport_->self();
  aq->cb = std::move(cb);
  aq->runtime =
      std::make_unique<ops::QueryRuntime>(this, &aq->env, /*is_origin=*/true);
  PIER_RETURN_IF_ERROR(aq->runtime->Init());
  ++stats_.queries_issued;
  ActiveQuery* raw = aq.get();
  queries_.emplace(query_id, std::move(aq));

  // Strategy-specific origin duties (e.g. the Bloom filter-collection
  // window) start at issue time, before the plan broadcast goes out.
  raw->runtime->InitOrigin();

  if (raw->runtime->has_recurse()) {
    // Recursion: the origin watches for quiescence.
    TimePoint deadline = sim_->now() + options_.recursion_deadline;
    raw->last_new_result = sim_->now();
    raw->quiesce_task.Start(sim_, Seconds(1), Seconds(1), [this, query_id,
                                                           deadline] {
      auto it = queries_.find(query_id);
      if (it == queries_.end() || it->second->ended) return;
      ActiveQuery* q = it->second.get();
      bool quiet =
          sim_->now() - q->last_new_result >= options_.quiesce_window;
      if (quiet || sim_->now() >= deadline) {
        FinalizeEpoch(q, 0);
      }
    });
  } else {
    // Schedule the epoch-0 finalize.
    ActiveQuery::EpochState& es = raw->epochs[0];
    es.finalize_timer = ScheduleEngineTimerAt(
        raw->env.issued_at + options_.result_wait,
        [this, query_id] {
          auto it = queries_.find(query_id);
          if (it != queries_.end()) FinalizeEpoch(it->second.get(), 0);
        });
  }

  if (raw->origin_local) {
    // Index-only plan: nothing for other members to do — install locally
    // and let the cursor touch exactly the DHT owners it needs. The
    // dissemination broadcast (and its network-wide scan work) is the
    // first thing the index saves.
    InstallQuery(raw->env, transport_->self(), 0);
  } else {
    Writer w;
    w.PutU8(static_cast<uint8_t>(BcastKind::kPlan));
    raw->env.Serialize(&w);
    broadcast_->Broadcast(sim::Payload(w.Release()));
  }
  PLOG(kInfo, "qe@" + std::to_string(transport_->self()))
      << "issued query " << query_id << " " << raw->env.plan.ToString();
  return query_id;
}

void QueryEngine::Cancel(uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end() || !it->second->is_origin) return;
  EndQuery(query_id);
}

void QueryEngine::OnBroadcast(sim::HostId /*bcast_origin*/, uint64_t /*seq*/,
                              sim::HostId parent, int depth,
                              const sim::Payload& payload) {
  Reader r(payload.view());
  uint8_t kind = 0;
  if (!r.GetU8(&kind).ok()) return;
  switch (static_cast<BcastKind>(kind)) {
    case BcastKind::kPlan: {
      PlanEnvelope env;
      if (!PlanEnvelope::Deserialize(&r, &env).ok()) return;
      InstallQuery(env, parent, depth);
      break;
    }
    case BcastKind::kBloomDist: {
      uint64_t qid = 0;
      if (!r.GetVarint64(&qid).ok()) return;
      auto it = queries_.find(qid);
      if (it == queries_.end() || it->second->ended ||
          it->second->runtime == nullptr) {
        return;
      }
      BloomFilter left(64, 1), right(64, 1);
      if (!BloomFilter::Deserialize(&r, &left).ok() ||
          !BloomFilter::Deserialize(&r, &right).ok()) {
        return;
      }
      it->second->runtime->OnBloomDist(std::move(left), std::move(right));
      break;
    }
    case BcastKind::kQueryEnd: {
      uint64_t qid = 0;
      if (!r.GetVarint64(&qid).ok()) return;
      HandleQueryEnd(qid);
      break;
    }
  }
}

void QueryEngine::HandleQueryEnd(uint64_t qid) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second->ended) return;
  ActiveQuery* aq = it->second.get();
  aq->ended = true;
  aq->epoch_task.Stop();
  aq->quiesce_task.Stop();
  if (aq->runtime != nullptr) {
    for (const std::string& ns : aq->runtime->Namespaces()) {
      dht_->UnsubscribeArrivals(ns);
      dht_->local_store()->DropNamespace(ns);
    }
  }
  ScheduleEngineTimer(options_.cleanup_delay, [this, qid] { GcQuery(qid); });
}

void QueryEngine::InstallQuery(const PlanEnvelope& env, sim::HostId parent,
                               int depth) {
  auto it = queries_.find(env.query_id);
  if (it != queries_.end()) {
    // Already installed. Continuous queries are re-disseminated
    // periodically (soft state); a refresh carries a fresh tree position,
    // repairing aggregation trees around failed parents.
    if (!it->second->is_origin) {
      it->second->parent = parent;
      it->second->depth = depth;
      if (it->second->installed) return;
    } else if (it->second->installed) {
      return;
    }
  } else {
    auto aq = std::make_unique<ActiveQuery>();
    aq->env = env;
    aq->parent = parent;
    aq->depth = depth;
    queries_.emplace(env.query_id, std::move(aq));
    ++stats_.plans_received;
  }
  ActiveQuery* aq = queries_.find(env.query_id)->second.get();
  aq->installed = true;

  if (aq->runtime == nullptr) {
    aq->env.plan.EnsureGraph();
    aq->runtime = std::make_unique<ops::QueryRuntime>(this, &aq->env,
                                                      aq->is_origin);
    if (!aq->runtime->Init().ok()) {
      // Hostile or unexecutable graph: drop it (soft failure, no crash).
      aq->runtime.reset();
      return;
    }
  }

  if (aq->runtime->epochal()) {
    StartEpoch(aq, CurrentEpoch(*aq));
    if (aq->env.plan.every > 0) {
      // Align the periodic scan to global epoch boundaries (epochs are
      // numbered from the origin's issue time on the shared clock), so a
      // node that learns the query late — e.g. after a reboot — slots
      // into the same epochs as everyone else.
      uint64_t qid = env.query_id;
      Duration since = sim_->now() - aq->env.issued_at;
      Duration to_boundary =
          aq->env.plan.every - (since % aq->env.plan.every);
      aq->epoch_task.Start(sim_, to_boundary, aq->env.plan.every,
                           [this, qid] {
                             auto qit = queries_.find(qid);
                             if (qit == queries_.end()) return;
                             ActiveQuery* q = qit->second.get();
                             if (q->ended) return;
                             StartEpoch(q, CurrentEpoch(*q));
                           });
    }
  } else {
    // Joins and recursion set up once: subscribe this node's exchange
    // namespaces, then let the stages produce.
    uint64_t qid = env.query_id;
    for (const std::string& ns : aq->runtime->Namespaces()) {
      dht_->SubscribeArrivals(ns,
                              [this, qid, ns](const dht::StoredItem& item) {
                                RouteArrival(qid, ns, item);
                                return true;  // exchange tuples always store
                              });
    }
    aq->runtime->Start();
  }
}

uint64_t QueryEngine::CurrentEpoch(const ActiveQuery& aq) const {
  if (aq.env.plan.every <= 0) return 0;
  TimePoint since = sim_->now() - aq.env.issued_at;
  if (since < 0) return 0;
  return static_cast<uint64_t>(since / aq.env.plan.every);
}

void QueryEngine::StartEpoch(ActiveQuery* aq, uint64_t epoch) {
  if (aq->ended || aq->runtime == nullptr) return;
  // The origin schedules this epoch's finalize deadline (epoch 0's was
  // scheduled at Execute time) and refreshes the dissemination: nodes that
  // rebooted since the last broadcast re-learn the plan, and everyone gets
  // an up-to-date tree parent.
  if (aq->is_origin && epoch > 0) {
    ActiveQuery::EpochState& es = aq->epochs[epoch];
    uint64_t qid = aq->env.query_id;
    es.finalize_timer =
        ScheduleEngineTimer(options_.result_wait, [this, qid, epoch] {
          auto it = queries_.find(qid);
          if (it != queries_.end()) FinalizeEpoch(it->second.get(), epoch);
        });
    if (!aq->origin_local) {
      Writer w;
      w.PutU8(static_cast<uint8_t>(BcastKind::kPlan));
      aq->env.Serialize(&w);
      broadcast_->Broadcast(sim::Payload(w.Release()));
    }
  }
  aq->runtime->StartEpoch(epoch);
}

// ---------------------------------------------------------------------------
// Direct engine traffic
// ---------------------------------------------------------------------------

void QueryEngine::OnDirect(sim::HostId from, Reader* r) {
  uint8_t type = 0;
  if (!r->GetU8(&type).ok()) return;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kResultTuple:
    case MsgType::kPartialAgg: {
      uint64_t qid = 0, epoch = 0;
      Tuple t;
      if (!r->GetVarint64(&qid).ok() || !r->GetVarint64(&epoch).ok() ||
          !catalog::DeserializeTuple(r, &t).ok()) {
        return;
      }
      // Epochs count periods since issue time; anything near the integer
      // ceiling is a spoofed message (and would wrap the stage-timer token
      // space, which reserves 0 and encodes combiner flushes as 1+epoch).
      if (epoch >= (1ull << 62)) return;
      auto it = queries_.find(qid);
      if (it == queries_.end()) return;
      ActiveQuery* aq = it->second.get();
      bool is_partial = static_cast<MsgType>(type) == MsgType::kPartialAgg;
      if (is_partial) {
        ++stats_.partial_msgs_received;
      } else {
        ++stats_.result_msgs_received;
      }
      if (aq->is_origin) {
        OriginAccept(aq, epoch, from, t, is_partial);
      } else if (is_partial && !aq->ended && aq->runtime != nullptr) {
        // Interior tree node: combine if the window is open, else relay
        // upward unmodified (late child).
        aq->runtime->OnRemotePartial(epoch, t);
      }
      break;
    }
    case MsgType::kResultBatch:
    case MsgType::kPartialBatch: {
      uint64_t qid = 0, epoch = 0;
      exec::RowBatch b;
      if (!r->GetVarint64(&qid).ok() || !r->GetVarint64(&epoch).ok() ||
          !exec::RowBatch::Decode(r, &b).ok()) {
        return;
      }
      if (epoch >= (1ull << 62)) return;  // same spoof guard as row frames
      auto it = queries_.find(qid);
      if (it == queries_.end()) return;
      ActiveQuery* aq = it->second.get();
      bool is_partial = static_cast<MsgType>(type) == MsgType::kPartialBatch;
      if (is_partial) {
        ++stats_.partial_msgs_received;
      } else {
        ++stats_.result_msgs_received;
      }
      ++stats_.batch_frames_received;
      // Unpack and treat each row exactly like its row-frame twin — one
      // frame, N accept/combine decisions.
      Tuple t;
      for (size_t i = 0; i < b.num_rows(); ++i) {
        b.ToTuple(i, &t);
        if (aq->is_origin) {
          OriginAccept(aq, epoch, from, t, is_partial);
        } else if (is_partial && !aq->ended && aq->runtime != nullptr) {
          aq->runtime->OnRemotePartial(epoch, t);
        }
      }
      break;
    }
    case MsgType::kFetchReq: {
      uint64_t qid = 0;
      if (!r->GetVarint64(&qid).ok()) return;
      auto it = queries_.find(qid);
      if (it == queries_.end() || it->second->runtime == nullptr) return;
      it->second->runtime->OnFetchReq(from, r);
      break;
    }
    case MsgType::kFetchResp: {
      uint64_t qid = 0;
      if (!r->GetVarint64(&qid).ok()) return;
      auto it = queries_.find(qid);
      if (it == queries_.end() || it->second->ended ||
          it->second->runtime == nullptr) {
        return;
      }
      it->second->runtime->OnFetchResp(r);
      break;
    }
    case MsgType::kBloomPart: {
      uint64_t qid = 0;
      if (!r->GetVarint64(&qid).ok()) return;
      auto it = queries_.find(qid);
      if (it == queries_.end() || !it->second->is_origin ||
          it->second->ended || it->second->runtime == nullptr) {
        return;
      }
      it->second->runtime->OnBloomPart(r);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Origin-side collection and post-processing
// ---------------------------------------------------------------------------

void QueryEngine::OriginAccept(ActiveQuery* aq, uint64_t epoch,
                               sim::HostId from, const Tuple& t,
                               bool is_partial) {
  if (static_cast<int64_t>(epoch) <= aq->last_finalized_epoch) {
    ++stats_.late_partials;  // straggler past the window
    return;
  }
  ActiveQuery::EpochState& es = aq->epochs[epoch];
  if (es.finalized) {
    ++stats_.late_partials;
    return;
  }
  es.reporters.insert(from);
  if (is_partial) {
    const OpNode* fagg = aq->runtime != nullptr
                             ? aq->runtime->final_agg_node()
                             : nullptr;
    if (fagg == nullptr) return;  // partial for a non-aggregate graph
    if (es.final_gb == nullptr) {
      es.final_gb = std::make_unique<exec::GroupByOp>(
          fagg->group_cols, fagg->aggs, exec::AggPhase::kFinal);
    }
    es.final_gb->Push(t, 0);
    return;
  }
  if (aq->runtime != nullptr && aq->runtime->has_recurse()) {
    // Global dedup: the same pair may be reported via multiple temp owners
    // after churn.
    std::string key = catalog::TupleToBytes(t);
    if (!aq->origin_result_seen.insert(key).second) return;
    aq->last_new_result = sim_->now();
  }
  es.rows.push_back(t);
}

std::vector<Tuple> QueryEngine::OriginPostProcess(ActiveQuery* aq,
                                                  uint64_t epoch) {
  ActiveQuery::EpochState& es = aq->epochs[epoch];
  std::vector<Tuple> rows;
  const OpNode* fagg =
      aq->runtime != nullptr ? aq->runtime->final_agg_node() : nullptr;
  const OpNode* collect =
      aq->runtime != nullptr ? aq->runtime->collect_node() : nullptr;

  if (fagg != nullptr) {
    // Merge network partials (and, for join+aggregate, aggregate the raw
    // joined rows collected in es.rows with a complete group-by).
    bool from_partials =
        aq->runtime != nullptr && aq->runtime->has_partial_agg();
    exec::GroupByOp* gb = es.final_gb.get();
    std::unique_ptr<exec::GroupByOp> local;
    if (gb == nullptr || !es.rows.empty()) {
      local = std::make_unique<exec::GroupByOp>(
          fagg->group_cols, fagg->aggs,
          from_partials ? exec::AggPhase::kFinal
                        : exec::AggPhase::kComplete);
      gb = local.get();
      for (const Tuple& t : es.rows) gb->Push(t, 0);
      if (es.final_gb != nullptr) {
        // Should not happen (either partials or raw rows), but merge anyway.
        exec::FnSink relay([&gb](const Tuple& t) { gb->Push(t, 0); });
        es.final_gb->AddOutput(&relay);
        es.final_gb->FlushAndReset();
      }
    }
    exec::FnSink sink([&rows](const Tuple& t) { rows.push_back(t); });
    gb->AddOutput(&sink);
    gb->FlushAndReset();

    // SQL scalar-aggregate semantics: no groups and no input still yields
    // one row (COUNT = 0, SUM = NULL, ...).
    if (fagg->group_cols.empty() && rows.empty()) {
      Tuple identity;
      for (const exec::AggSpec& spec : fagg->aggs) {
        Value v1, v2;
        exec::AggInit(spec, &v1, &v2);
        identity.push_back(exec::AggFinalize(spec, v1, v2));
      }
      rows.push_back(std::move(identity));
    }

    if (fagg->having != nullptr) {
      std::vector<Tuple> kept;
      for (const Tuple& t : rows) {
        bool pass = false;
        if (exec::EvalPredicate(*fagg->having, t, &pass).ok() && pass) {
          kept.push_back(t);
        }
      }
      rows = std::move(kept);
    }
    if (collect != nullptr && !collect->final_projection.empty()) {
      for (Tuple& t : rows) {
        Tuple permuted;
        permuted.reserve(collect->final_projection.size());
        for (int c : collect->final_projection) {
          permuted.push_back(c >= 0 && static_cast<size_t>(c) < t.size()
                                 ? t[c]
                                 : Value::Null());
        }
        t = std::move(permuted);
      }
    }
  } else {
    rows = std::move(es.rows);
    es.rows.clear();
    if (collect != nullptr && collect->distinct) {
      std::vector<Tuple> unique;
      exec::DistinctOp distinct;
      exec::FnSink sink([&unique](const Tuple& t) { unique.push_back(t); });
      distinct.AddOutput(&sink);
      for (const Tuple& t : rows) distinct.Push(t, 0);
      rows = std::move(unique);
    }
  }

  if (collect != nullptr && collect->order_col >= 0) {
    size_t k = collect->limit >= 0 ? static_cast<size_t>(collect->limit)
                                   : rows.size();
    exec::TopKOp topk(collect->order_col, collect->order_desc, k);
    std::vector<Tuple> ordered;
    exec::FnSink sink([&ordered](const Tuple& t) { ordered.push_back(t); });
    topk.AddOutput(&sink);
    for (const Tuple& t : rows) topk.Push(t, 0);
    topk.FlushAndReset();
    rows = std::move(ordered);
  } else if (collect != nullptr && collect->limit >= 0 &&
             rows.size() > static_cast<size_t>(collect->limit)) {
    rows.resize(static_cast<size_t>(collect->limit));
  }
  return rows;
}

void QueryEngine::FinalizeEpoch(ActiveQuery* aq, uint64_t epoch) {
  if (!aq->is_origin || aq->ended) return;
  ActiveQuery::EpochState& es = aq->epochs[epoch];
  if (es.finalized) return;
  es.finalized = true;
  if (es.finalize_timer != 0) {
    sim_->Cancel(es.finalize_timer);
    es.finalize_timer = 0;
  }

  ResultBatch batch;
  batch.query_id = aq->env.query_id;
  batch.epoch = epoch;
  batch.reporting_nodes = es.reporters.size();
  batch.reporters.assign(es.reporters.begin(), es.reporters.end());
  std::sort(batch.reporters.begin(), batch.reporters.end());
  batch.rows = OriginPostProcess(aq, epoch);
  aq->last_finalized_epoch =
      std::max(aq->last_finalized_epoch, static_cast<int64_t>(epoch));
  if (aq->cb) aq->cb(batch);

  bool one_shot = aq->env.plan.every == 0;
  if (one_shot) {
    EndQuery(aq->env.query_id);
  } else {
    // Keep the query running; retire this epoch's state.
    aq->epochs.erase(epoch);
  }
}

void QueryEngine::EndQuery(uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end() || !it->second->is_origin) return;
  it->second->quiesce_task.Stop();
  if (it->second->origin_local) {
    // Never disseminated, so nothing remote to tear down.
    HandleQueryEnd(query_id);
    return;
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(BcastKind::kQueryEnd));
  w.PutVarint64(query_id);
  broadcast_->Broadcast(sim::Payload(w.Release()));  // includes local delivery
}

void QueryEngine::GcQuery(uint64_t query_id) { queries_.erase(query_id); }

}  // namespace query
}  // namespace pier
