#include "query/engine.h"

#include <algorithm>

#include "common/logging.h"

namespace pier {
namespace query {

using catalog::Tuple;

// ---------------------------------------------------------------------------
// Per-query state
// ---------------------------------------------------------------------------

struct QueryEngine::ActiveQuery {
  PlanEnvelope env;
  bool is_origin = false;
  bool installed = false;
  sim::HostId parent = sim::kInvalidHost;  ///< aggregation-tree parent
  int depth = 0;
  bool ended = false;

  // Continuous execution driver (member side, including the origin).
  sim::PeriodicTask epoch_task;
  uint64_t next_epoch = 1;

  // Tree aggregation: the per-epoch combine operator at interior nodes.
  std::unique_ptr<exec::GroupByOp> combiner;
  uint64_t combiner_epoch = 0;
  sim::TimerId combiner_flush_timer = 0;

  // Join (rendezvous role).
  exec::Dataflow flow;
  exec::SymmetricHashJoinOp* shj = nullptr;
  uint64_t rehash_seq = 1;
  std::unordered_map<uint64_t, Tuple> row_registry;  // semi-join fetch source
  uint64_t next_row_id = 1;
  struct PendingMatch {
    Tuple left, right;
    bool have_left = false, have_right = false;
  };
  std::unordered_map<uint64_t, PendingMatch> pending_matches;
  uint64_t next_match_id = 1;

  // Bloom join.
  std::unique_ptr<BloomFilter> bloom_left, bloom_right;  // origin collectors
  std::unique_ptr<BloomFilter> dist_left, dist_right;    // distributed union
  sim::TimerId bloom_timer = 0;

  // Recursion.
  std::unordered_set<std::string> reach_seen;  // dedup by canonical resource
  TimePoint last_new_result = 0;
  sim::PeriodicTask quiesce_task;

  // Origin-side collection.
  ResultCallback cb;
  struct EpochState {
    std::vector<Tuple> rows;
    std::unique_ptr<exec::GroupByOp> final_gb;
    std::unordered_set<uint32_t> reporters;
    sim::TimerId finalize_timer = 0;
    bool finalized = false;
  };
  std::map<uint64_t, EpochState> epochs;
  std::unordered_set<std::string> origin_result_seen;  // recursion dedup
};

// ---------------------------------------------------------------------------
// Construction / plumbing
// ---------------------------------------------------------------------------

QueryEngine::QueryEngine(overlay::Transport* transport,
                         overlay::Router* router, dht::Dht* dht,
                         dht::BroadcastService* broadcast,
                         catalog::Catalog* catalog, EngineOptions options)
    : transport_(transport),
      router_(router),
      dht_(dht),
      broadcast_(broadcast),
      catalog_(catalog),
      sim_(transport->simulation()),
      options_(options) {
  transport_->RegisterHandler(
      overlay::Proto::kQuery,
      [this](sim::HostId from, Reader* r) { OnDirect(from, r); });
  broadcast_->SetHandler([this](sim::HostId origin, uint64_t seq,
                                sim::HostId parent, int depth,
                                const std::string& payload) {
    OnBroadcast(origin, seq, parent, depth, payload);
  });
}

QueryEngine::~QueryEngine() {
  // A destroyed engine (node crash or reboot) must leave no timers behind:
  // callbacks capture `this`.
  for (sim::TimerId id : engine_timers_) sim_->Cancel(id);
}

sim::TimerId QueryEngine::ScheduleEngineTimer(Duration delay,
                                              std::function<void()> fn) {
  sim::TimerId id = sim_->ScheduleAfter(delay, std::move(fn));
  engine_timers_.push_back(id);
  return id;
}

sim::TimerId QueryEngine::ScheduleEngineTimerAt(TimePoint when,
                                                std::function<void()> fn) {
  sim::TimerId id = sim_->ScheduleAt(when, std::move(fn));
  engine_timers_.push_back(id);
  return id;
}

void QueryEngine::SendDirect(sim::HostId to, const Writer& w) {
  transport_->Send(to, overlay::Proto::kQuery, w);
}

Status QueryEngine::Publish(const std::string& table, const Tuple& t) {
  return PublishVersioned(table, t, publish_seq_++);
}

Status QueryEngine::PublishVersioned(const std::string& table, const Tuple& t,
                                     uint64_t instance) {
  const catalog::TableDef* def = catalog_->Find(table);
  if (def == nullptr) {
    return Status::NotFound("no such table: " + table);
  }
  if (t.size() != def->schema.num_columns()) {
    return Status::InvalidArgument("tuple width mismatch for " + table);
  }
  uint64_t scoped =
      (static_cast<uint64_t>(transport_->self()) << 32) |
      (instance & 0xffffffffull);
  dht_->Put(def->KeyFor(t, scoped), catalog::TupleToBytes(t), def->ttl,
            nullptr);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Query issue / dissemination
// ---------------------------------------------------------------------------

Result<uint64_t> QueryEngine::Execute(QueryPlan plan, ResultCallback cb) {
  if (plan.kind == PlanKind::kJoin &&
      plan.left_key_cols.size() != plan.right_key_cols.size()) {
    return Status::InvalidArgument("join key arity mismatch");
  }
  if (plan.kind == PlanKind::kJoin &&
      plan.join_strategy == JoinStrategy::kFetchMatches) {
    const catalog::TableDef* def = catalog_->Find(plan.right_table);
    if (def == nullptr || def->partition_cols != plan.right_key_cols) {
      return Status::InvalidArgument(
          "fetch-matches requires the inner relation partitioned on the "
          "join key");
    }
  }
  if (plan.kind == PlanKind::kRecursive) {
    const catalog::TableDef* def = catalog_->Find(plan.table);
    if (def == nullptr ||
        def->partition_cols != std::vector<int>{plan.src_col}) {
      return Status::InvalidArgument(
          "recursive queries require the edge table partitioned on the "
          "source column");
    }
  }

  uint64_t query_id =
      (static_cast<uint64_t>(transport_->self() + 1) << 32) |
      next_query_seq_++;
  ++stats_.queries_issued;

  auto aq = std::make_unique<ActiveQuery>();
  aq->env.query_id = query_id;
  aq->env.origin = transport_->self();
  aq->env.issued_at = sim_->now();
  aq->env.plan = std::move(plan);
  aq->is_origin = true;
  aq->parent = transport_->self();
  aq->cb = std::move(cb);
  ActiveQuery* raw = aq.get();
  queries_.emplace(query_id, std::move(aq));

  // Bloom join: the origin owns the filter-collection phase.
  if (raw->env.plan.kind == PlanKind::kJoin &&
      raw->env.plan.join_strategy == JoinStrategy::kBloom) {
    raw->bloom_left = std::make_unique<BloomFilter>(options_.bloom_bits,
                                                    options_.bloom_hashes);
    raw->bloom_right = std::make_unique<BloomFilter>(options_.bloom_bits,
                                                     options_.bloom_hashes);
    raw->bloom_timer = ScheduleEngineTimer(options_.bloom_wait, [this,
                                                                 query_id] {
      auto it = queries_.find(query_id);
      if (it == queries_.end() || it->second->ended) return;
      ActiveQuery* q = it->second.get();
      Writer w;
      w.PutU8(static_cast<uint8_t>(BcastKind::kBloomDist));
      w.PutVarint64(q->env.query_id);
      q->bloom_left->Serialize(&w);
      q->bloom_right->Serialize(&w);
      broadcast_->Broadcast(w.Release());
    });
  }

  // Recursion: the origin watches for quiescence.
  if (raw->env.plan.kind == PlanKind::kRecursive) {
    TimePoint deadline = sim_->now() + options_.recursion_deadline;
    raw->last_new_result = sim_->now();
    raw->quiesce_task.Start(sim_, Seconds(1), Seconds(1), [this, query_id,
                                                           deadline] {
      auto it = queries_.find(query_id);
      if (it == queries_.end() || it->second->ended) return;
      ActiveQuery* q = it->second.get();
      bool quiet =
          sim_->now() - q->last_new_result >= options_.quiesce_window;
      if (quiet || sim_->now() >= deadline) {
        FinalizeEpoch(q, 0);
      }
    });
  } else {
    // Schedule the epoch-0 finalize.
    ActiveQuery::EpochState& es = raw->epochs[0];
    es.finalize_timer = ScheduleEngineTimerAt(
        raw->env.issued_at + options_.result_wait,
        [this, query_id] {
          auto it = queries_.find(query_id);
          if (it != queries_.end()) FinalizeEpoch(it->second.get(), 0);
        });
  }

  Writer w;
  w.PutU8(static_cast<uint8_t>(BcastKind::kPlan));
  raw->env.Serialize(&w);
  broadcast_->Broadcast(w.Release());
  PLOG(kInfo, "qe@" + std::to_string(transport_->self()))
      << "issued query " << query_id << " " << raw->env.plan.ToString();
  return query_id;
}

void QueryEngine::Cancel(uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end() || !it->second->is_origin) return;
  EndQuery(query_id);
}

void QueryEngine::OnBroadcast(sim::HostId /*bcast_origin*/, uint64_t /*seq*/,
                              sim::HostId parent, int depth,
                              const std::string& payload) {
  Reader r(payload);
  uint8_t kind = 0;
  if (!r.GetU8(&kind).ok()) return;
  switch (static_cast<BcastKind>(kind)) {
    case BcastKind::kPlan: {
      PlanEnvelope env;
      if (!PlanEnvelope::Deserialize(&r, &env).ok()) return;
      InstallQuery(env, parent, depth);
      break;
    }
    case BcastKind::kBloomDist: {
      uint64_t qid = 0;
      if (!r.GetVarint64(&qid).ok()) return;
      auto it = queries_.find(qid);
      if (it == queries_.end() || it->second->ended) return;
      ActiveQuery* aq = it->second.get();
      BloomFilter left(64, 1), right(64, 1);
      if (!BloomFilter::Deserialize(&r, &left).ok() ||
          !BloomFilter::Deserialize(&r, &right).ok()) {
        return;
      }
      aq->dist_left = std::make_unique<BloomFilter>(std::move(left));
      aq->dist_right = std::make_unique<BloomFilter>(std::move(right));
      RunJoinScan(aq, /*bloom_phase2=*/true);
      break;
    }
    case BcastKind::kQueryEnd: {
      uint64_t qid = 0;
      if (!r.GetVarint64(&qid).ok()) return;
      auto it = queries_.find(qid);
      if (it == queries_.end() || it->second->ended) return;
      ActiveQuery* aq = it->second.get();
      aq->ended = true;
      aq->epoch_task.Stop();
      aq->quiesce_task.Stop();
      dht_->UnsubscribeArrivals(TempNamespace(qid));
      dht_->UnsubscribeArrivals(ReachNamespace(qid));
      dht_->local_store()->DropNamespace(TempNamespace(qid));
      dht_->local_store()->DropNamespace(ReachNamespace(qid));
      ScheduleEngineTimer(options_.cleanup_delay,
                          [this, qid] { GcQuery(qid); });
      break;
    }
  }
}

void QueryEngine::InstallQuery(const PlanEnvelope& env, sim::HostId parent,
                               int depth) {
  auto it = queries_.find(env.query_id);
  if (it != queries_.end()) {
    // Already installed. Continuous queries are re-disseminated
    // periodically (soft state); a refresh carries a fresh tree position,
    // repairing aggregation trees around failed parents.
    if (!it->second->is_origin) {
      it->second->parent = parent;
      it->second->depth = depth;
      if (it->second->installed) return;
    } else if (it->second->installed) {
      return;
    }
  } else {
    auto aq = std::make_unique<ActiveQuery>();
    aq->env = env;
    aq->parent = parent;
    aq->depth = depth;
    queries_.emplace(env.query_id, std::move(aq));
    ++stats_.plans_received;
  }
  ActiveQuery* aq = queries_.find(env.query_id)->second.get();
  aq->installed = true;

  switch (aq->env.plan.kind) {
    case PlanKind::kSelectProject:
    case PlanKind::kAggregate: {
      StartEpoch(aq, CurrentEpoch(*aq));
      if (aq->env.plan.every > 0) {
        // Align the periodic scan to global epoch boundaries (epochs are
        // numbered from the origin's issue time on the shared clock), so a
        // node that learns the query late — e.g. after a reboot — slots
        // into the same epochs as everyone else.
        uint64_t qid = env.query_id;
        Duration since = sim_->now() - aq->env.issued_at;
        Duration to_boundary =
            aq->env.plan.every - (since % aq->env.plan.every);
        aq->epoch_task.Start(sim_, to_boundary, aq->env.plan.every,
                             [this, qid] {
                               auto qit = queries_.find(qid);
                               if (qit == queries_.end()) return;
                               ActiveQuery* q = qit->second.get();
                               if (q->ended) return;
                               StartEpoch(q, CurrentEpoch(*q));
                             });
      }
      break;
    }
    case PlanKind::kJoin:
      SetupJoin(aq);
      break;
    case PlanKind::kRecursive:
      SetupRecursive(aq);
      break;
  }
}

uint64_t QueryEngine::CurrentEpoch(const ActiveQuery& aq) const {
  if (aq.env.plan.every <= 0) return 0;
  TimePoint since = sim_->now() - aq.env.issued_at;
  if (since < 0) return 0;
  return static_cast<uint64_t>(since / aq.env.plan.every);
}

// ---------------------------------------------------------------------------
// Scanning
// ---------------------------------------------------------------------------

std::vector<Tuple> QueryEngine::ScanLocal(const ActiveQuery& aq,
                                          const std::string& table,
                                          const catalog::Schema& schema) {
  ++stats_.scans_run;
  std::vector<Tuple> out;
  TimePoint cutoff =
      aq.env.plan.window > 0 ? sim_->now() - aq.env.plan.window : 0;
  for (const dht::StoredItem& item : dht_->LocalScan(table)) {
    if (item.replica) continue;  // primaries only: no double counting
    if (item.stored_at < cutoff) continue;
    Tuple t;
    if (!catalog::TupleFromBytes(item.value, &t).ok()) continue;
    if (t.size() != schema.num_columns()) continue;
    ++stats_.tuples_scanned;
    out.push_back(std::move(t));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Epochs (select & aggregate)
// ---------------------------------------------------------------------------

void QueryEngine::StartEpoch(ActiveQuery* aq, uint64_t epoch) {
  if (aq->ended) return;
  // The origin schedules this epoch's finalize deadline (epoch 0's was
  // scheduled at Execute time) and refreshes the dissemination: nodes that
  // rebooted since the last broadcast re-learn the plan, and everyone gets
  // an up-to-date tree parent.
  if (aq->is_origin && epoch > 0) {
    ActiveQuery::EpochState& es = aq->epochs[epoch];
    uint64_t qid = aq->env.query_id;
    es.finalize_timer =
        ScheduleEngineTimer(options_.result_wait, [this, qid, epoch] {
          auto it = queries_.find(qid);
          if (it != queries_.end()) FinalizeEpoch(it->second.get(), epoch);
        });
    Writer w;
    w.PutU8(static_cast<uint8_t>(BcastKind::kPlan));
    aq->env.Serialize(&w);
    broadcast_->Broadcast(w.Release());
  }
  if (aq->env.plan.kind == PlanKind::kSelectProject) {
    RunSelectEpoch(aq, epoch);
  } else if (aq->env.plan.kind == PlanKind::kAggregate) {
    RunAggregateEpoch(aq, epoch);
  }
}

void QueryEngine::RunSelectEpoch(ActiveQuery* aq, uint64_t epoch) {
  const QueryPlan& plan = aq->env.plan;
  int64_t local_cap = -1;
  if (plan.limit >= 0 && !plan.distinct && plan.order_col < 0 &&
      plan.aggs.empty()) {
    local_cap = plan.limit;  // no global ordering: first-k is first-k
  }
  int64_t sent = 0;
  for (const Tuple& t : ScanLocal(*aq, plan.table, plan.scan_schema)) {
    if (plan.where != nullptr) {
      bool pass = false;
      if (!exec::EvalPredicate(*plan.where, t, &pass).ok() || !pass) continue;
    }
    Tuple out;
    if (plan.projections.empty()) {
      out = t;
    } else {
      out.reserve(plan.projections.size());
      for (const auto& e : plan.projections) {
        Value v;
        if (!e->Eval(t, &v).ok()) v = Value::Null();
        out.push_back(std::move(v));
      }
    }
    SendResult(aq, epoch, out);
    if (local_cap >= 0 && ++sent >= local_cap) break;
  }
}

void QueryEngine::RunAggregateEpoch(ActiveQuery* aq, uint64_t epoch) {
  const QueryPlan& plan = aq->env.plan;
  // Local partial aggregation over this node's slice.
  exec::GroupByOp partial(plan.group_cols, plan.aggs,
                          exec::AggPhase::kPartial);
  std::vector<Tuple> partials;
  exec::FnSink sink([&partials](const Tuple& t) { partials.push_back(t); });
  partial.AddOutput(&sink);
  for (const Tuple& t : ScanLocal(*aq, plan.table, plan.scan_schema)) {
    if (plan.where != nullptr) {
      bool pass = false;
      if (!exec::EvalPredicate(*plan.where, t, &pass).ok() || !pass) continue;
    }
    partial.Push(t, 0);
  }
  partial.FlushAndReset();

  if (plan.agg_strategy == AggStrategy::kDirect || aq->is_origin) {
    for (const Tuple& p : partials) SendPartial(aq, epoch, p);
    return;
  }
  // Tree strategy: fold local partials into this node's combiner and hold
  // for children before flushing upward.
  if (aq->combiner == nullptr || aq->combiner_epoch != epoch) {
    if (aq->combiner != nullptr) FlushCombiner(aq, aq->combiner_epoch);
    aq->combiner = std::make_unique<exec::GroupByOp>(
        plan.group_cols, plan.aggs, exec::AggPhase::kCombine);
    aq->combiner_epoch = epoch;
    int levels_above = std::max(1, options_.agg_assumed_depth - aq->depth);
    uint64_t qid = aq->env.query_id;
    aq->combiner_flush_timer = ScheduleEngineTimer(
        options_.agg_hold_base * levels_above, [this, qid, epoch] {
          auto it = queries_.find(qid);
          if (it == queries_.end() || it->second->ended) return;
          FlushCombiner(it->second.get(), epoch);
        });
  }
  for (const Tuple& p : partials) aq->combiner->Push(p, 0);
}

void QueryEngine::FlushCombiner(ActiveQuery* aq, uint64_t epoch) {
  if (aq->combiner == nullptr || aq->combiner_epoch != epoch) return;
  std::vector<Tuple> combined;
  exec::FnSink sink([&combined](const Tuple& t) { combined.push_back(t); });
  aq->combiner->AddOutput(&sink);
  aq->combiner->FlushAndReset();
  aq->combiner.reset();
  if (aq->combiner_flush_timer != 0) {
    sim_->Cancel(aq->combiner_flush_timer);
    aq->combiner_flush_timer = 0;
  }
  for (const Tuple& t : combined) SendPartial(aq, epoch, t);
}

void QueryEngine::SendPartial(ActiveQuery* aq, uint64_t epoch,
                              const Tuple& t) {
  if (aq->is_origin) {
    OriginAccept(aq, epoch, transport_->self(), t, /*is_partial=*/true);
    return;
  }
  sim::HostId to = aq->env.origin;
  if (aq->env.plan.agg_strategy == AggStrategy::kTree &&
      aq->parent != sim::kInvalidHost) {
    to = aq->parent;
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kPartialAgg));
  w.PutVarint64(aq->env.query_id);
  w.PutVarint64(epoch);
  catalog::SerializeTuple(t, &w);
  ++stats_.partial_msgs_sent;
  SendDirect(to, w);
}

void QueryEngine::SendResult(ActiveQuery* aq, uint64_t epoch,
                             const Tuple& t) {
  if (aq->is_origin) {
    OriginAccept(aq, epoch, transport_->self(), t, /*is_partial=*/false);
    return;
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kResultTuple));
  w.PutVarint64(aq->env.query_id);
  w.PutVarint64(epoch);
  catalog::SerializeTuple(t, &w);
  ++stats_.result_msgs_sent;
  SendDirect(aq->env.origin, w);
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

void QueryEngine::SetupJoin(ActiveQuery* aq) {
  const QueryPlan& plan = aq->env.plan;
  uint64_t qid = aq->env.query_id;

  if (plan.join_strategy != JoinStrategy::kFetchMatches) {
    // Rendezvous role: consume rehashed tuples arriving in the temp
    // namespace and join them incrementally.
    std::vector<int> lkeys, rkeys;
    if (plan.join_strategy == JoinStrategy::kSymmetricSemi) {
      // Rehashed key-projections: [key values..., host, row id].
      for (size_t i = 0; i < plan.left_key_cols.size(); ++i) {
        lkeys.push_back(static_cast<int>(i));
        rkeys.push_back(static_cast<int>(i));
      }
    } else {
      lkeys = plan.left_key_cols;
      rkeys = plan.right_key_cols;
    }
    aq->shj = aq->flow.Add<exec::SymmetricHashJoinOp>(lkeys, rkeys, nullptr);
    exec::FnSink* sink = aq->flow.Add<exec::FnSink>([this, qid](const Tuple& t) {
      auto it = queries_.find(qid);
      if (it == queries_.end() || it->second->ended) return;
      HandleJoinOutput(it->second.get(), t);
    });
    aq->flow.Connect(aq->shj, sink);
    dht_->SubscribeArrivals(TempNamespace(qid),
                            [this, qid](const dht::StoredItem& item) {
                              OnTempArrival(qid, item);
                            });
    // Catch-up: tuples rehashed by fast nodes may land here before the plan
    // broadcast did; they are waiting in the temp namespace.
    for (const dht::StoredItem& item :
         dht_->LocalScan(TempNamespace(qid))) {
      if (!item.replica) OnTempArrival(qid, item);
    }
  }

  switch (plan.join_strategy) {
    case JoinStrategy::kSymmetricHash:
    case JoinStrategy::kSymmetricSemi:
    case JoinStrategy::kFetchMatches:
      RunJoinScan(aq, /*bloom_phase2=*/false);
      break;
    case JoinStrategy::kBloom: {
      // Phase 1: send local key filters to the origin.
      BloomFilter left(options_.bloom_bits, options_.bloom_hashes);
      BloomFilter right(options_.bloom_bits, options_.bloom_hashes);
      for (const Tuple& t :
           ScanLocal(*aq, plan.table, plan.scan_schema)) {
        left.Add(catalog::HashTupleCols(t, plan.left_key_cols));
      }
      for (const Tuple& t :
           ScanLocal(*aq, plan.right_table, plan.right_schema)) {
        right.Add(catalog::HashTupleCols(t, plan.right_key_cols));
      }
      if (aq->is_origin) {
        (void)aq->bloom_left->UnionWith(left);
        (void)aq->bloom_right->UnionWith(right);
      } else {
        Writer w;
        w.PutU8(static_cast<uint8_t>(MsgType::kBloomPart));
        w.PutVarint64(qid);
        left.Serialize(&w);
        right.Serialize(&w);
        ++stats_.bloom_filters_sent;
        SendDirect(aq->env.origin, w);
      }
      break;
    }
  }
}

void QueryEngine::RunJoinScan(ActiveQuery* aq, bool bloom_phase2) {
  const QueryPlan& plan = aq->env.plan;
  uint64_t qid = aq->env.query_id;

  std::vector<Tuple> left = ScanLocal(*aq, plan.table, plan.scan_schema);
  std::vector<Tuple> right =
      ScanLocal(*aq, plan.right_table, plan.right_schema);

  switch (plan.join_strategy) {
    case JoinStrategy::kBloom:
      if (!bloom_phase2) return;  // phase 2 starts when filters arrive
      [[fallthrough]];
    case JoinStrategy::kSymmetricHash: {
      for (const Tuple& t : left) {
        if (bloom_phase2 && aq->dist_right != nullptr &&
            !aq->dist_right->MayContain(
                catalog::HashTupleCols(t, plan.left_key_cols))) {
          ++stats_.bloom_suppressed;
          continue;
        }
        RehashTuple(aq, 0, t);
      }
      for (const Tuple& t : right) {
        if (bloom_phase2 && aq->dist_left != nullptr &&
            !aq->dist_left->MayContain(
                catalog::HashTupleCols(t, plan.right_key_cols))) {
          ++stats_.bloom_suppressed;
          continue;
        }
        RehashTuple(aq, 1, t);
      }
      break;
    }
    case JoinStrategy::kSymmetricSemi: {
      auto rehash_keys = [&](const std::vector<Tuple>& rows,
                             const std::vector<int>& keys, int side) {
        for (const Tuple& t : rows) {
          uint64_t row_id = aq->next_row_id++;
          aq->row_registry.emplace(row_id, t);
          Tuple proj;
          for (int c : keys) {
            proj.push_back(c >= 0 && static_cast<size_t>(c) < t.size()
                               ? t[c]
                               : Value::Null());
          }
          proj.push_back(Value::Int64(transport_->self()));
          proj.push_back(Value::Int64(static_cast<int64_t>(row_id)));
          RehashTuple(aq, side, proj);
        }
      };
      rehash_keys(left, plan.left_key_cols, 0);
      rehash_keys(right, plan.right_key_cols, 1);
      break;
    }
    case JoinStrategy::kFetchMatches: {
      for (const Tuple& t : left) {
        std::string resource =
            catalog::ResourceForCols(t, plan.left_key_cols);
        ++stats_.fetch_gets;
        Tuple probe = t;
        dht_->Get(plan.right_table, resource,
                  [this, qid, probe](Status s, std::vector<dht::DhtItem> items) {
                    if (!s.ok()) return;
                    auto it = queries_.find(qid);
                    if (it == queries_.end() || it->second->ended) return;
                    ActiveQuery* q = it->second.get();
                    const QueryPlan& p = q->env.plan;
                    for (const dht::DhtItem& item : items) {
                      Tuple rt;
                      if (!catalog::TupleFromBytes(item.value, &rt).ok()) {
                        continue;
                      }
                      // Verify true key equality (resources are hashes).
                      bool equal = true;
                      for (size_t i = 0; i < p.left_key_cols.size(); ++i) {
                        const Value& lv = probe[p.left_key_cols[i]];
                        const Value& rv = rt[p.right_key_cols[i]];
                        if (lv.is_null() || rv.is_null() ||
                            lv.Compare(rv) != 0) {
                          equal = false;
                          break;
                        }
                      }
                      if (!equal) continue;
                      Tuple joined = probe;
                      joined.insert(joined.end(), rt.begin(), rt.end());
                      HandleJoinOutput(q, joined);
                    }
                  });
      }
      break;
    }
  }
}

void QueryEngine::RehashTuple(ActiveQuery* aq, int side, const Tuple& t) {
  const QueryPlan& plan = aq->env.plan;
  std::string resource;
  if (plan.join_strategy == JoinStrategy::kSymmetricSemi) {
    // Key projection: keys occupy the leading columns.
    std::vector<int> cols;
    for (size_t i = 0; i < plan.left_key_cols.size(); ++i) {
      cols.push_back(static_cast<int>(i));
    }
    resource = catalog::ResourceForCols(t, cols);
  } else {
    resource = catalog::ResourceForCols(
        t, side == 0 ? plan.left_key_cols : plan.right_key_cols);
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(side));
  catalog::SerializeTuple(t, &w);
  uint64_t instance =
      (static_cast<uint64_t>(transport_->self()) << 32) | aq->rehash_seq++;
  ++stats_.rehash_puts;
  dht_->PutEx(dht::DhtKey{TempNamespace(aq->env.query_id), resource, instance},
              w.Release(), options_.temp_ttl, /*replicate=*/false, nullptr);
}

void QueryEngine::OnTempArrival(uint64_t query_id,
                                const dht::StoredItem& item) {
  auto it = queries_.find(query_id);
  if (it == queries_.end() || it->second->ended ||
      it->second->shj == nullptr) {
    return;
  }
  Reader r(item.value);
  uint8_t side = 0;
  Tuple t;
  if (!r.GetU8(&side).ok() || side > 1 ||
      !catalog::DeserializeTuple(&r, &t).ok()) {
    return;
  }
  it->second->shj->Push(t, side);
}

void QueryEngine::HandleJoinOutput(ActiveQuery* aq, const Tuple& joined) {
  const QueryPlan& plan = aq->env.plan;
  if (plan.join_strategy == JoinStrategy::kSymmetricSemi &&
      joined.size() == 2 * (plan.left_key_cols.size() + 2)) {
    // Matched key-projections: fetch the full tuples from both owners.
    // Layout: [lkeys(k), lhost, lrow, rkeys(k), rhost, rrow].
    size_t k = plan.left_key_cols.size();
    int64_t lhost = 0, lrow = 0, rhost = 0, rrow = 0;
    if (!joined[k].AsInt64(&lhost).ok() ||
        !joined[k + 1].AsInt64(&lrow).ok() ||
        !joined[2 * k + 2].AsInt64(&rhost).ok() ||
        !joined[2 * k + 3].AsInt64(&rrow).ok()) {
      return;
    }
    uint64_t match_id = aq->next_match_id++;
    aq->pending_matches.emplace(match_id, ActiveQuery::PendingMatch{});
    auto send_fetch = [&](int64_t host, int64_t row, uint8_t side) {
      Writer w;
      w.PutU8(static_cast<uint8_t>(MsgType::kFetchReq));
      w.PutVarint64(aq->env.query_id);
      w.PutVarint64(match_id);
      w.PutU8(side);
      w.PutVarint64(static_cast<uint64_t>(row));
      w.PutFixed32(transport_->self());
      ++stats_.semijoin_fetches;
      SendDirect(static_cast<sim::HostId>(host), w);
    };
    send_fetch(lhost, lrow, 0);
    send_fetch(rhost, rrow, 1);
    return;
  }

  // Full concatenated row: residual predicate, then project (or ship raw for
  // origin-side aggregation).
  if (plan.where != nullptr) {
    bool pass = false;
    if (!exec::EvalPredicate(*plan.where, joined, &pass).ok() || !pass) {
      return;
    }
  }
  if (!plan.aggs.empty()) {
    SendResult(aq, 0, joined);  // origin aggregates raw joined rows
    return;
  }
  Tuple out;
  if (plan.projections.empty()) {
    out = joined;
  } else {
    out.reserve(plan.projections.size());
    for (const auto& e : plan.projections) {
      Value v;
      if (!e->Eval(joined, &v).ok()) v = Value::Null();
      out.push_back(std::move(v));
    }
  }
  SendResult(aq, 0, out);
}

// ---------------------------------------------------------------------------
// Recursion (transitive closure)
// ---------------------------------------------------------------------------

void QueryEngine::SetupRecursive(ActiveQuery* aq) {
  uint64_t qid = aq->env.query_id;
  dht_->SubscribeArrivals(ReachNamespace(qid),
                          [this, qid](const dht::StoredItem& item) {
                            OnReachArrival(qid, item);
                          });
  // Catch-up on reach tuples delivered before this node saw the plan.
  for (const dht::StoredItem& item : dht_->LocalScan(ReachNamespace(qid))) {
    if (!item.replica) OnReachArrival(qid, item);
  }
  const QueryPlan& plan = aq->env.plan;
  // Seed: every local edge is a 1-hop path.
  for (const Tuple& e : ScanLocal(*aq, plan.table, plan.scan_schema)) {
    if (plan.where != nullptr) {
      bool pass = false;
      if (!exec::EvalPredicate(*plan.where, e, &pass).ok() || !pass) continue;
    }
    Tuple reach{e[plan.src_col], e[plan.dst_col], Value::Int64(1)};
    std::string resource = catalog::ResourceForCols(reach, {0, 1});
    uint64_t instance =
        (static_cast<uint64_t>(transport_->self()) << 32) | aq->rehash_seq++;
    dht_->PutEx(dht::DhtKey{ReachNamespace(qid), resource, instance},
                catalog::TupleToBytes(reach), options_.temp_ttl,
                /*replicate=*/false, nullptr);
  }
}

void QueryEngine::OnReachArrival(uint64_t query_id,
                                 const dht::StoredItem& item) {
  auto it = queries_.find(query_id);
  if (it == queries_.end() || it->second->ended) return;
  ActiveQuery* aq = it->second.get();
  const QueryPlan& plan = aq->env.plan;

  Tuple reach;
  if (!catalog::TupleFromBytes(item.value, &reach).ok() ||
      reach.size() != 3) {
    return;
  }
  // Dedup on the canonical (src, dst) resource: this node owns this pair.
  if (!aq->reach_seen.insert(item.key.resource).second) {
    ++stats_.recursion_duplicates;
    return;
  }

  // Report (src, dst, hops) to the origin through the outer pipeline.
  Tuple out = reach;
  bool report = true;
  if (plan.outer_where != nullptr) {
    bool pass = false;
    report = exec::EvalPredicate(*plan.outer_where, reach, &pass).ok() && pass;
  }
  if (report) {
    if (!plan.projections.empty()) {
      Tuple projected;
      for (const auto& e : plan.projections) {
        Value v;
        if (!e->Eval(reach, &v).ok()) v = Value::Null();
        projected.push_back(std::move(v));
      }
      out = std::move(projected);
    }
    SendResult(aq, 0, out);
  }

  // Expand: reach(s, d, h) ⋈ edge(d, w) -> reach(s, w, h+1).
  int64_t hops = 0;
  if (!reach[2].AsInt64(&hops).ok() || hops >= plan.max_hops) return;
  Tuple probe(static_cast<size_t>(plan.src_col) + 1);
  probe[plan.src_col] = reach[1];  // edges leaving `dst`
  std::string edge_resource =
      catalog::ResourceForCols(probe, {plan.src_col});
  uint64_t qid = query_id;
  Value src = reach[0];
  Value via = reach[1];
  dht_->Get(
      plan.table, edge_resource,
      [this, qid, src, via, hops](Status s, std::vector<dht::DhtItem> items) {
        if (!s.ok()) return;
        auto qit = queries_.find(qid);
        if (qit == queries_.end() || qit->second->ended) return;
        ActiveQuery* q = qit->second.get();
        const QueryPlan& p = q->env.plan;
        for (const dht::DhtItem& item : items) {
          Tuple edge;
          if (!catalog::TupleFromBytes(item.value, &edge).ok()) continue;
          if (edge.size() != p.scan_schema.num_columns()) continue;
          if (edge[p.src_col].Compare(via) != 0) continue;
          if (p.where != nullptr) {
            bool pass = false;
            if (!exec::EvalPredicate(*p.where, edge, &pass).ok() || !pass) {
              continue;
            }
          }
          Tuple next{src, edge[p.dst_col], Value::Int64(hops + 1)};
          std::string resource = catalog::ResourceForCols(next, {0, 1});
          uint64_t instance =
              (static_cast<uint64_t>(transport_->self()) << 32) |
              q->rehash_seq++;
          ++stats_.recursion_expansions;
          dht_->PutEx(dht::DhtKey{ReachNamespace(qid), resource, instance},
                      catalog::TupleToBytes(next), options_.temp_ttl,
                      /*replicate=*/false, nullptr);
        }
      });
}

// ---------------------------------------------------------------------------
// Origin-side collection and post-processing
// ---------------------------------------------------------------------------

void QueryEngine::OnDirect(sim::HostId from, Reader* r) {
  uint8_t type = 0;
  if (!r->GetU8(&type).ok()) return;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kResultTuple:
    case MsgType::kPartialAgg: {
      uint64_t qid = 0, epoch = 0;
      Tuple t;
      if (!r->GetVarint64(&qid).ok() || !r->GetVarint64(&epoch).ok() ||
          !catalog::DeserializeTuple(r, &t).ok()) {
        return;
      }
      auto it = queries_.find(qid);
      if (it == queries_.end()) return;
      ActiveQuery* aq = it->second.get();
      bool is_partial = static_cast<MsgType>(type) == MsgType::kPartialAgg;
      if (is_partial) {
        ++stats_.partial_msgs_received;
      } else {
        ++stats_.result_msgs_received;
      }
      if (aq->is_origin) {
        OriginAccept(aq, epoch, from, t, is_partial);
      } else if (is_partial) {
        // Interior tree node: combine if this epoch is still open, else
        // relay upward unmodified (late child).
        if (aq->combiner != nullptr && aq->combiner_epoch == epoch) {
          aq->combiner->Push(t, 0);
        } else {
          SendPartial(aq, epoch, t);
        }
      }
      break;
    }
    case MsgType::kFetchReq: {
      uint64_t qid = 0, match_id = 0, row_id = 0;
      uint8_t side = 0;
      uint32_t reply_to = 0;
      if (!r->GetVarint64(&qid).ok() || !r->GetVarint64(&match_id).ok() ||
          !r->GetU8(&side).ok() || !r->GetVarint64(&row_id).ok() ||
          !r->GetFixed32(&reply_to).ok()) {
        return;
      }
      auto it = queries_.find(qid);
      if (it == queries_.end()) return;
      auto row = it->second->row_registry.find(row_id);
      Writer w;
      w.PutU8(static_cast<uint8_t>(MsgType::kFetchResp));
      w.PutVarint64(qid);
      w.PutVarint64(match_id);
      w.PutU8(side);
      bool found = row != it->second->row_registry.end();
      w.PutBool(found);
      if (found) catalog::SerializeTuple(row->second, &w);
      SendDirect(reply_to, w);
      break;
    }
    case MsgType::kFetchResp: {
      uint64_t qid = 0, match_id = 0;
      uint8_t side = 0;
      bool found = false;
      if (!r->GetVarint64(&qid).ok() || !r->GetVarint64(&match_id).ok() ||
          !r->GetU8(&side).ok() || !r->GetBool(&found).ok()) {
        return;
      }
      auto it = queries_.find(qid);
      if (it == queries_.end() || it->second->ended) return;
      ActiveQuery* aq = it->second.get();
      auto pm = aq->pending_matches.find(match_id);
      if (pm == aq->pending_matches.end()) return;
      if (!found) {
        aq->pending_matches.erase(pm);
        return;
      }
      Tuple t;
      if (!catalog::DeserializeTuple(r, &t).ok()) return;
      if (side == 0) {
        pm->second.left = std::move(t);
        pm->second.have_left = true;
      } else {
        pm->second.right = std::move(t);
        pm->second.have_right = true;
      }
      if (pm->second.have_left && pm->second.have_right) {
        Tuple joined = pm->second.left;
        joined.insert(joined.end(), pm->second.right.begin(),
                      pm->second.right.end());
        aq->pending_matches.erase(pm);
        // Route through the standard full-row path (residual + project).
        const QueryPlan& plan = aq->env.plan;
        if (plan.where != nullptr) {
          bool pass = false;
          if (!exec::EvalPredicate(*plan.where, joined, &pass).ok() ||
              !pass) {
            return;
          }
        }
        Tuple out;
        if (plan.projections.empty()) {
          out = joined;
        } else {
          for (const auto& e : plan.projections) {
            Value v;
            if (!e->Eval(joined, &v).ok()) v = Value::Null();
            out.push_back(std::move(v));
          }
        }
        SendResult(aq, 0, out);
      }
      break;
    }
    case MsgType::kBloomPart: {
      uint64_t qid = 0;
      if (!r->GetVarint64(&qid).ok()) return;
      auto it = queries_.find(qid);
      if (it == queries_.end() || !it->second->is_origin ||
          it->second->ended) {
        return;
      }
      BloomFilter left(64, 1), right(64, 1);
      if (!BloomFilter::Deserialize(r, &left).ok() ||
          !BloomFilter::Deserialize(r, &right).ok()) {
        return;
      }
      (void)it->second->bloom_left->UnionWith(left);
      (void)it->second->bloom_right->UnionWith(right);
      break;
    }
  }
}

void QueryEngine::OriginAccept(ActiveQuery* aq, uint64_t epoch,
                               sim::HostId from, const Tuple& t,
                               bool is_partial) {
  ActiveQuery::EpochState& es = aq->epochs[epoch];
  if (es.finalized) return;  // straggler past the window
  es.reporters.insert(from);
  if (is_partial) {
    if (es.final_gb == nullptr) {
      es.final_gb = std::make_unique<exec::GroupByOp>(
          aq->env.plan.group_cols, aq->env.plan.aggs, exec::AggPhase::kFinal);
    }
    es.final_gb->Push(t, 0);
    return;
  }
  if (aq->env.plan.kind == PlanKind::kRecursive) {
    // Global dedup: the same pair may be reported via multiple temp owners
    // after churn.
    std::string key = catalog::TupleToBytes(t);
    if (!aq->origin_result_seen.insert(key).second) return;
    aq->last_new_result = sim_->now();
  }
  es.rows.push_back(t);
}

std::vector<Tuple> QueryEngine::OriginPostProcess(ActiveQuery* aq,
                                                  uint64_t epoch) {
  const QueryPlan& plan = aq->env.plan;
  ActiveQuery::EpochState& es = aq->epochs[epoch];
  std::vector<Tuple> rows;

  bool aggregated = !plan.aggs.empty();
  if (aggregated) {
    // Merge network partials (and, for join+aggregate, aggregate the raw
    // joined rows collected in es.rows with a complete group-by).
    exec::GroupByOp* gb = es.final_gb.get();
    std::unique_ptr<exec::GroupByOp> local;
    if (gb == nullptr || !es.rows.empty()) {
      local = std::make_unique<exec::GroupByOp>(
          plan.group_cols, plan.aggs,
          plan.kind == PlanKind::kAggregate ? exec::AggPhase::kFinal
                                            : exec::AggPhase::kComplete);
      gb = local.get();
      for (const Tuple& t : es.rows) gb->Push(t, 0);
      if (es.final_gb != nullptr) {
        // Should not happen (either partials or raw rows), but merge anyway.
        exec::FnSink relay([&gb](const Tuple& t) { gb->Push(t, 0); });
        es.final_gb->AddOutput(&relay);
        es.final_gb->FlushAndReset();
      }
    }
    exec::FnSink sink([&rows](const Tuple& t) { rows.push_back(t); });
    gb->AddOutput(&sink);
    gb->FlushAndReset();

    // SQL scalar-aggregate semantics: no groups and no input still yields
    // one row (COUNT = 0, SUM = NULL, ...).
    if (plan.group_cols.empty() && rows.empty()) {
      Tuple identity;
      for (const exec::AggSpec& spec : plan.aggs) {
        Value v1, v2;
        exec::AggInit(spec, &v1, &v2);
        identity.push_back(exec::AggFinalize(spec, v1, v2));
      }
      rows.push_back(std::move(identity));
    }

    if (plan.having != nullptr) {
      std::vector<Tuple> kept;
      for (const Tuple& t : rows) {
        bool pass = false;
        if (exec::EvalPredicate(*plan.having, t, &pass).ok() && pass) {
          kept.push_back(t);
        }
      }
      rows = std::move(kept);
    }
    if (!plan.final_projection.empty()) {
      for (Tuple& t : rows) {
        Tuple permuted;
        permuted.reserve(plan.final_projection.size());
        for (int c : plan.final_projection) {
          permuted.push_back(c >= 0 && static_cast<size_t>(c) < t.size()
                                 ? t[c]
                                 : Value::Null());
        }
        t = std::move(permuted);
      }
    }
  } else {
    rows = std::move(es.rows);
    es.rows.clear();
    if (plan.distinct) {
      std::vector<Tuple> unique;
      exec::DistinctOp distinct;
      exec::FnSink sink([&unique](const Tuple& t) { unique.push_back(t); });
      distinct.AddOutput(&sink);
      for (const Tuple& t : rows) distinct.Push(t, 0);
      rows = std::move(unique);
    }
  }

  if (plan.order_col >= 0) {
    size_t k = plan.limit >= 0 ? static_cast<size_t>(plan.limit)
                               : rows.size();
    exec::TopKOp topk(plan.order_col, plan.order_desc, k);
    std::vector<Tuple> ordered;
    exec::FnSink sink([&ordered](const Tuple& t) { ordered.push_back(t); });
    topk.AddOutput(&sink);
    for (const Tuple& t : rows) topk.Push(t, 0);
    topk.FlushAndReset();
    rows = std::move(ordered);
  } else if (plan.limit >= 0 &&
             rows.size() > static_cast<size_t>(plan.limit)) {
    rows.resize(static_cast<size_t>(plan.limit));
  }
  return rows;
}

void QueryEngine::FinalizeEpoch(ActiveQuery* aq, uint64_t epoch) {
  if (!aq->is_origin || aq->ended) return;
  ActiveQuery::EpochState& es = aq->epochs[epoch];
  if (es.finalized) return;
  es.finalized = true;
  if (es.finalize_timer != 0) {
    sim_->Cancel(es.finalize_timer);
    es.finalize_timer = 0;
  }

  ResultBatch batch;
  batch.query_id = aq->env.query_id;
  batch.epoch = epoch;
  batch.reporting_nodes = es.reporters.size();
  batch.rows = OriginPostProcess(aq, epoch);
  if (aq->cb) aq->cb(batch);

  bool one_shot = aq->env.plan.every == 0;
  if (one_shot) {
    EndQuery(aq->env.query_id);
  } else {
    // Keep the query running; retire this epoch's state.
    aq->epochs.erase(epoch);
  }
}

void QueryEngine::EndQuery(uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end() || !it->second->is_origin) return;
  it->second->quiesce_task.Stop();
  Writer w;
  w.PutU8(static_cast<uint8_t>(BcastKind::kQueryEnd));
  w.PutVarint64(query_id);
  broadcast_->Broadcast(w.Release());  // includes local delivery
}

void QueryEngine::GcQuery(uint64_t query_id) { queries_.erase(query_id); }

}  // namespace query
}  // namespace pier
