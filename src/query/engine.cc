#include "query/engine.h"

#include <algorithm>
#include <set>

#include "common/backoff.h"
#include "common/logging.h"
#include "index/index_manager.h"
#include "query/reliable.h"

namespace pier {
namespace query {

using catalog::Tuple;

namespace {

/// True when every source of `g` is an index scan and nothing in the graph
/// needs other members: such a query executes entirely at the origin (plus
/// the DHT owners the cursor contacts) and is never broadcast.
bool IsOriginLocalGraph(const OpGraph& g) {
  bool has_index_scan = false;
  for (const OpNode& n : g.nodes) {
    switch (n.type) {
      case OpType::kIndexScan:
        has_index_scan = true;
        break;
      case OpType::kFilter:
      case OpType::kProject:
      case OpType::kFinalAgg:
      case OpType::kCollect:
        break;
      default:
        return false;  // scans, joins, recursion, partial agg: distributed
    }
    if (n.out == ExchangeKind::kRehash || n.out == ExchangeKind::kTree) {
      return false;
    }
  }
  return has_index_scan;
}

/// True when the query's data plane is pure member->origin AND every member
/// produces its whole epoch from its scans alone (no async operator state).
/// Only such ("accountable") epochal queries send per-epoch completion
/// reports and can be certified exact: an interior tree relay can fold and
/// forward after its subtree reported, and a partial-agg combiner holds its
/// flush on a timer — either would let a member report "done" while rows
/// are still to come, making the certification chain unsound. Scheduled
/// scans complete asynchronously, so both the member report and the origin
/// certification additionally gate on the runtime's scans-done signal
/// (ActiveQuery::scans_done_epoch).
bool IsAccountableGraph(const OpGraph& g) {
  for (const OpNode& n : g.nodes) {
    if (n.out == ExchangeKind::kRehash || n.out == ExchangeKind::kTree) {
      return false;
    }
    // Whitelist, not blacklist: only operators that produce their whole
    // epoch synchronously inside StartEpoch qualify. Joins (even the
    // fetch-matches kind with direct out-edges) emit from async DHT-get
    // callbacks, recursion expands over arrival callbacks, partial-agg
    // combiners flush on hold timers, index cursors walk the trie
    // asynchronously — any of them would let a member's completion report
    // race its own rows.
    switch (n.type) {
      case OpType::kScan:
      case OpType::kFilter:
      case OpType::kProject:
      case OpType::kFinalAgg:
      case OpType::kCollect:
        break;
      default:
        return false;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Per-query state
// ---------------------------------------------------------------------------

struct QueryEngine::ActiveQuery {
  PlanEnvelope env;
  bool is_origin = false;
  bool installed = false;
  sim::HostId parent = sim::kInvalidHost;  ///< aggregation-tree parent
  int depth = 0;
  bool ended = false;
  /// Index-only plan executing without dissemination; cleared when a
  /// fallback rewrites it into a broadcast scan.
  bool origin_local = false;
  /// One rewrite per query: a fallback graph has no index scans left.
  bool fallback_done = false;

  /// The instantiated opgraph: this node's stages and local pipelines.
  std::unique_ptr<ops::QueryRuntime> runtime;

  // Continuous execution driver (member side, including the origin).
  sim::PeriodicTask epoch_task;

  // Origin-side collection.
  ResultCallback cb;
  struct EpochState {
    std::vector<Tuple> rows;
    std::unique_ptr<exec::GroupByOp> final_gb;
    std::unordered_set<uint32_t> reporters;
    sim::TimerId finalize_timer = 0;
    bool finalized = false;
    /// A certified early finalize is already queued (deferred one tick so a
    /// degenerate single-node query cannot call back inside Execute()).
    bool early_finalize_scheduled = false;
  };
  std::map<uint64_t, EpochState> epochs;
  /// Epochs at or below this number already reported; stragglers count as
  /// late_partials instead of resurrecting dead epoch state.
  int64_t last_finalized_epoch = -1;
  std::unordered_set<std::string> origin_result_seen;  // recursion dedup
  TimePoint last_new_result = 0;
  sim::PeriodicTask quiesce_task;

  // -- lifecycle (PR 8) ------------------------------------------------------
  bool cancelled = false;
  bool deadline_expired = false;
  sim::TimerId deadline_timer = 0;
  /// Member-side origin-liveness lease (reclaims state if the origin died
  /// without broadcasting an end).
  sim::TimerId lease_timer = 0;

  // -- reliable result plane (PR 8) ------------------------------------------
  /// Epochal with a pure member->origin data plane (see IsAccountableGraph).
  bool accountable = false;
  ReliableOutbox outbox;
  /// Receiver-side frame dedupe, per sender.
  std::map<uint32_t, FrameDedupe> rx_dedupe;
  /// Distinct data frames admitted per sender (the origin checks members'
  /// cumulative claims against this).
  std::map<uint32_t, uint64_t> rx_data_frames;
  /// Origin-side: latest per-member completion report (cumulative counters,
  /// merged by max so retransmit reorderings are harmless).
  struct MemberReport {
    uint64_t epoch = 0;
    uint64_t frames_to_origin = 0;
    uint64_t retried = 0;
    uint64_t lost = 0;
  };
  std::map<uint32_t, MemberReport> reports;
  /// Members that refused the plan at admission.
  std::set<uint32_t> shed_members;

  // -- multi-tenant scheduler / budgets (PR 9) -------------------------------
  /// Highest epoch whose scheduled scans have all completed on this node
  /// (-1 = none yet). Members gate their epoch reports on it; origins gate
  /// certification on it — an async scan still draining means rows are
  /// still to come.
  int64_t scans_done_epoch = -1;
  /// A per-query budget tripped on this node (sticky for the query's life).
  bool budget_tripped = false;
  /// Budget meters on this node.
  uint64_t bytes_shipped = 0;
  uint64_t rehash_puts = 0;
  /// Origin-side: members that told us their budget tripped (kBudgetTrip or
  /// an epoch report's flag).
  std::set<uint32_t> budget_tripped_members;
  /// From the dissemination cover wave: how many nodes the latest plan
  /// broadcast reached, and whether every subtree confirmed.
  uint64_t members_expected = 0;
  bool coverage_complete = false;

  // -- Bloom filter waves (PR 10) --------------------------------------------
  /// Origin-side: waves this query broadcast incomplete (parts lost/late
  /// or coverage unknown at bloom_wait) — those edges ran the full rehash.
  uint64_t filter_waves_degraded = 0;
};

// ---------------------------------------------------------------------------
// Construction / plumbing
// ---------------------------------------------------------------------------

QueryEngine::QueryEngine(overlay::Transport* transport,
                         overlay::Router* router, dht::Dht* dht,
                         dht::BroadcastService* broadcast,
                         catalog::Catalog* catalog, EngineOptions options)
    : transport_(transport),
      router_(router),
      dht_(dht),
      broadcast_(broadcast),
      catalog_(catalog),
      sim_(transport->simulation()),
      options_(options) {
  transport_->RegisterHandler(
      overlay::Proto::kQuery,
      [this](sim::HostId from, Reader* r, const sim::Payload& /*body*/) {
        OnDirect(from, r);
      });
  broadcast_->SetHandler([this](sim::HostId origin, uint64_t seq,
                                sim::HostId parent, int depth,
                                const sim::Payload& payload) {
    OnBroadcast(origin, seq, parent, depth, payload);
  });
  broadcast_->SetCoverageHandler(
      [this](uint64_t seq, uint64_t members, bool complete) {
        OnCoverage(seq, members, complete);
      });
  QueryScheduler::Options sched;
  sched.quantum_rows = options_.sched_quantum_rows;
  sched.round_interval = options_.sched_round_interval;
  sched.shared_window = options_.shared_scan_window;
  sched.batch_rows = options_.batch_size;
  scheduler_ = std::make_unique<QueryScheduler>(
      sim_, dht_, &stats_,
      [this](Duration delay, std::function<void()> fn) {
        return ScheduleEngineTimer(delay, std::move(fn));
      },
      sched);
}

QueryEngine::~QueryEngine() {
  // A destroyed engine (node crash or reboot) must leave no timers behind:
  // callbacks capture `this`.
  for (sim::TimerId id : engine_timers_) sim_->Cancel(id);
}

void QueryEngine::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (sim::TimerId id : engine_timers_) sim_->Cancel(id);
  engine_timers_.clear();
  for (auto& [qid, aq] : queries_) {
    (void)qid;
    aq->epoch_task.Stop();
    aq->quiesce_task.Stop();
    // Prune the reliable plane with the engine, not just on the normal
    // kQueryEnd path: a stopped (crashed) node must release its pending-byte
    // charge and per-sender dedupe state, or a storm of short queries under
    // churn grows these maps without bound and wedges the admission gate.
    pending_result_bytes_ -= aq->outbox.pending_bytes();
    aq->outbox.Clear();
    aq->rx_dedupe.clear();
    aq->rx_data_frames.clear();
    aq->reports.clear();
  }
  scheduler_->Stop();
}

sim::TimerId QueryEngine::ScheduleEngineTimer(Duration delay,
                                              std::function<void()> fn) {
  if (stopped_) return 0;
  sim::TimerId id = sim_->ScheduleAfter(delay, std::move(fn));
  engine_timers_.push_back(id);
  return id;
}

sim::TimerId QueryEngine::ScheduleEngineTimerAt(TimePoint when,
                                                std::function<void()> fn) {
  if (stopped_) return 0;
  sim::TimerId id = sim_->ScheduleAt(when, std::move(fn));
  engine_timers_.push_back(id);
  return id;
}

void QueryEngine::SendDirect(sim::HostId to, const Writer& w) {
  transport_->Send(to, overlay::Proto::kQuery, w);
}

Status QueryEngine::Publish(const std::string& table, const Tuple& t) {
  return PublishVersioned(table, t, publish_seq_++);
}

Status QueryEngine::PublishVersioned(const std::string& table, const Tuple& t,
                                     uint64_t instance) {
  const catalog::TableDef* def = catalog_->Find(table);
  if (def == nullptr) {
    return Status::NotFound("no such table: " + table);
  }
  if (t.size() != def->schema.num_columns()) {
    return Status::InvalidArgument("tuple width mismatch for " + table);
  }
  // host+1 keeps every publisher-scoped id nonzero: the PHT index reuses
  // these ids for its entries, and instance 0 is its trie-marker slot.
  uint64_t scoped =
      (static_cast<uint64_t>(transport_->self() + 1) << 32) |
      (instance & 0xffffffffull);
  dht_->Put(def->KeyFor(t, scoped), catalog::TupleToBytes(t), def->ttl,
            nullptr);
  // Piggybacked index maintenance: the same publisher-scoped instance keys
  // the index entries, so renewals renew instead of duplicating.
  if (index_manager_ != nullptr && !def->indexes.empty()) {
    index_manager_->OnPublish(*def, t, scoped, def->ttl);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ops::StageHost — the exchange routing stages delegate to
// ---------------------------------------------------------------------------

bool QueryEngine::HasLiveQuery(uint64_t qid) const {
  auto it = queries_.find(qid);
  return it != queries_.end() && !it->second->ended;
}

Status QueryEngine::CheckReliableAccounting() const {
  uint64_t live_pending = 0;
  for (const auto& [qid, aq] : queries_) {
    if (!aq->ended) {
      live_pending += aq->outbox.pending_bytes();
      continue;
    }
    // Ended-but-unGCed husks exist only to absorb stragglers; any reliable
    // state still attached to one is a teardown leak.
    if (aq->outbox.pending_frames() != 0) {
      return Status::Internal("query " + std::to_string(qid) +
                              " ended with " +
                              std::to_string(aq->outbox.pending_frames()) +
                              " frames still in its outbox");
    }
    if (!aq->rx_dedupe.empty()) {
      return Status::Internal("query " + std::to_string(qid) +
                              " ended with a live rx dedupe window");
    }
    if (!aq->reports.empty()) {
      return Status::Internal("query " + std::to_string(qid) +
                              " ended with member reports retained");
    }
  }
  if (live_pending != pending_result_bytes_) {
    return Status::Internal(
        "admission counter drift: pending_result_bytes=" +
        std::to_string(pending_result_bytes_) + " but live outboxes hold " +
        std::to_string(live_pending));
  }
  return Status::OK();
}

int QueryEngine::QueryDepth(uint64_t qid) const {
  auto it = queries_.find(qid);
  return it == queries_.end() ? 0 : it->second->depth;
}

void QueryEngine::DeliverResult(uint64_t qid, uint64_t epoch,
                                const Tuple& t) {
  auto it = queries_.find(qid);
  if (it == queries_.end()) return;
  ActiveQuery* aq = it->second.get();
  if (aq->is_origin) {
    OriginAccept(aq, epoch, transport_->self(), t, /*is_partial=*/false);
    return;
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kResultTuple));
  w.PutVarint64(qid);
  w.PutVarint64(epoch);
  catalog::SerializeTuple(t, &w);
  ++stats_.result_msgs_sent;
  SendReliable(aq, aq->env.origin, std::move(w), /*control=*/false);
}

void QueryEngine::DeliverPartial(uint64_t qid, uint64_t epoch, const Tuple& t,
                                 ExchangeKind route) {
  auto it = queries_.find(qid);
  if (it == queries_.end()) return;
  ActiveQuery* aq = it->second.get();
  if (aq->is_origin) {
    OriginAccept(aq, epoch, transport_->self(), t, /*is_partial=*/true);
    return;
  }
  sim::HostId to = aq->env.origin;
  if (route == ExchangeKind::kTree && aq->parent != sim::kInvalidHost) {
    to = aq->parent;
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kPartialAgg));
  w.PutVarint64(qid);
  w.PutVarint64(epoch);
  catalog::SerializeTuple(t, &w);
  ++stats_.partial_msgs_sent;
  SendReliable(aq, to, std::move(w), /*control=*/false);
}

void QueryEngine::DeliverResultBatch(uint64_t qid, uint64_t epoch,
                                     const exec::RowBatch& b) {
  auto it = queries_.find(qid);
  if (it == queries_.end()) return;
  ActiveQuery* aq = it->second.get();
  if (aq->is_origin) {
    Tuple t;
    for (size_t i = 0; i < b.ActiveRows(); ++i) {
      b.ToTuple(b.RowId(i), &t);
      OriginAccept(aq, epoch, transport_->self(), t, /*is_partial=*/false);
    }
    return;
  }
  size_t n = b.ActiveRows();
  if (n == 0) return;
  // Chunked delivery: one lost frame costs at most result_frame_rows rows,
  // keeping best-effort recall under lossy links near the tuple plane's.
  size_t cap = options_.result_frame_rows == 0 ? n : options_.result_frame_rows;
  for (size_t start = 0; start < n; start += cap) {
    size_t len = std::min(cap, n - start);
    if (len == 1) {
      // A single row ships in the legacy frame — it is smaller.
      Tuple t;
      b.ToTuple(b.RowId(start), &t);
      DeliverResult(qid, epoch, t);
      continue;
    }
    Writer w;
    w.PutU8(static_cast<uint8_t>(MsgType::kResultBatch));
    w.PutVarint64(qid);
    w.PutVarint64(epoch);
    if (len == n) {
      b.Encode(&w);  // compacts the selection: the wire carries live rows
    } else {
      b.SliceLive(start, len).Encode(&w);
    }
    ++stats_.result_msgs_sent;
    ++stats_.batch_frames_sent;
    SendReliable(aq, aq->env.origin, std::move(w), /*control=*/false);
  }
}

void QueryEngine::DeliverPartialBatch(uint64_t qid, uint64_t epoch,
                                      const std::vector<Tuple>& partials,
                                      ExchangeKind route) {
  if (partials.empty()) return;
  auto it = queries_.find(qid);
  if (it == queries_.end()) return;
  ActiveQuery* aq = it->second.get();
  if (aq->is_origin) {
    for (const Tuple& t : partials) {
      OriginAccept(aq, epoch, transport_->self(), t, /*is_partial=*/true);
    }
    return;
  }
  if (partials.size() == 1) {
    // A single partial ships in the legacy row frame — it is smaller.
    DeliverPartial(qid, epoch, partials[0], route);
    return;
  }
  sim::HostId to = aq->env.origin;
  if (route == ExchangeKind::kTree && aq->parent != sim::kInvalidHost) {
    to = aq->parent;
  }
  // Partial rows from one flush share a layout ([group..., v1, v2 per
  // agg]); columns whose state types diverge across rows (the int->double
  // widening ladder) ride the boxed lane via AppendValue's promotion.
  std::vector<ValueType> types;
  types.reserve(partials[0].size());
  for (const Value& v : partials[0]) types.push_back(v.type());
  for (const Tuple& t : partials) {
    if (t.size() != types.size()) {
      // Ragged widths cannot share one batch; ship row frames instead.
      for (const Tuple& p : partials) DeliverPartial(qid, epoch, p, route);
      return;
    }
  }
  exec::RowBatchBuilder builder(types);
  builder.Reserve(partials.size());
  for (const Tuple& t : partials) builder.Append(t);
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kPartialBatch));
  w.PutVarint64(qid);
  w.PutVarint64(epoch);
  builder.Take().Encode(&w);
  ++stats_.partial_msgs_sent;
  ++stats_.batch_frames_sent;
  SendReliable(aq, to, std::move(w), /*control=*/false);
}

void QueryEngine::SendQueryBytes(uint32_t to, const Writer& w) {
  SendDirect(static_cast<sim::HostId>(to), w);
}

void QueryEngine::BroadcastBloomFilters(uint64_t qid, uint32_t node_id,
                                        uint64_t parts_expected,
                                        uint64_t parts_reported, bool complete,
                                        const BloomFilter& left,
                                        const BloomFilter& right) {
  // The wave's verdict is part of the query's answer-quality story: an
  // incomplete wave means that edge ran the full rehash, and the batch's
  // Completeness must say so.
  auto it = queries_.find(qid);
  if (it != queries_.end()) {
    if (complete) {
      ++stats_.bloom_waves_complete;
    } else {
      ++stats_.bloom_waves_degraded;
      ++it->second->filter_waves_degraded;
      PLOG(kInfo, "qe@" + std::to_string(transport_->self()))
          << "query " << qid << " bloom wave incomplete ("
          << parts_reported << "/" << parts_expected
          << " parts): edge degrades to full rehash";
    }
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(BcastKind::kBloomDist));
  BloomDistFrame frame;
  frame.qid = qid;
  frame.join_node = node_id;
  frame.parts_expected = parts_expected;
  frame.parts_reported = parts_reported;
  frame.complete = complete;
  frame.left = left;
  frame.right = right;
  frame.Serialize(&w);
  broadcast_->Broadcast(sim::Payload(w.Release()));
}

void QueryEngine::QueryCoverage(uint64_t qid, uint64_t* members,
                                bool* complete) const {
  *members = 0;
  *complete = false;
  auto it = queries_.find(qid);
  if (it == queries_.end()) return;
  *members = it->second->members_expected;
  *complete = it->second->coverage_complete;
}

sim::TimerId QueryEngine::ScheduleStageTimer(Duration delay, uint64_t qid,
                                             uint32_t node_id,
                                             uint64_t token) {
  return ScheduleEngineTimer(delay, [this, qid, node_id, token] {
    auto it = queries_.find(qid);
    if (it == queries_.end() || it->second->ended ||
        it->second->runtime == nullptr) {
      return;
    }
    ops::Stage* stage = it->second->runtime->stage(node_id);
    if (stage != nullptr) stage->OnTimer(token);
  });
}

void QueryEngine::CancelTimer(sim::TimerId id) { sim_->Cancel(id); }

void QueryEngine::PostToStage(uint64_t qid, uint32_t node_id,
                              const std::function<void(ops::Stage*)>& fn) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second->ended ||
      it->second->runtime == nullptr) {
    return;
  }
  ops::Stage* stage = it->second->runtime->stage(node_id);
  if (stage != nullptr) fn(stage);
}

void QueryEngine::OnIndexScanDone(uint64_t qid, bool ok) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second->ended || !it->second->is_origin) {
    return;
  }
  ActiveQuery* aq = it->second.get();
  if (!ok) {
    // Deferred: this call is on the failing cursor's own stack, and the
    // fallback replaces the runtime that owns it.
    uint64_t query_id = aq->env.query_id;
    ScheduleEngineTimer(0, [this, query_id] {
      auto qit = queries_.find(query_id);
      if (qit == queries_.end() || qit->second->ended) return;
      FallbackToScan(qit->second.get());
    });
    return;
  }
  // The cursor read the whole range: for a one-shot origin-local query the
  // answer is already complete, so close it now instead of sitting out the
  // rest of the result window — the latency half of the index win. The
  // finalize is deferred a tick because degenerate walks (an empty range)
  // complete synchronously inside Execute(), and the client must never see
  // its result callback fire before Execute has returned the query id.
  if (aq->origin_local && aq->env.plan.every == 0) {
    ++stats_.index_early_finalizes;
    uint64_t query_id = aq->env.query_id;
    ScheduleEngineTimer(0, [this, query_id] {
      auto qit = queries_.find(query_id);
      if (qit == queries_.end() || qit->second->ended) return;
      FinalizeEpoch(qit->second.get(), 0);
    });
  }
}

void QueryEngine::FallbackToScan(ActiveQuery* aq) {
  if (aq->fallback_done) return;  // fallback graphs carry no index scans
  aq->fallback_done = true;
  ++stats_.index_fallbacks;
  PLOG(kInfo, "qe@" + std::to_string(transport_->self()))
      << "query " << aq->env.query_id
      << " index scan failed/cold; falling back to broadcast scan";

  // Rewrite in place: every index scan becomes the plain scan of the same
  // relation. The planner always keeps the full WHERE in the trailing
  // filter node, so the rewritten graph computes the identical answer.
  scheduler_->DropQuery(aq->env.query_id);  // queued feeds capture the runtime
  aq->runtime.reset();
  for (OpNode& n : aq->env.plan.graph.nodes) {
    if (n.type == OpType::kIndexScan) {
      n.type = OpType::kScan;
      n.index_col = 0;
      n.index_lo = Value::Null();
      n.index_hi = Value::Null();
    }
  }
  aq->env.plan.graph_is_derived = false;  // must travel as-is
  aq->origin_local = false;
  // Rows the failed cursor already delivered would double-count against
  // the broadcast re-execution: reset this epoch's collection (its
  // finalize deadline stays armed).
  uint64_t epoch = CurrentEpoch(*aq);
  auto eit = aq->epochs.find(epoch);
  if (eit != aq->epochs.end()) {
    eit->second.rows.clear();
    eit->second.final_gb.reset();
    eit->second.reporters.clear();
  }
  aq->runtime = std::make_unique<ops::QueryRuntime>(this, &aq->env,
                                                    /*is_origin=*/true);
  if (!aq->runtime->Init().ok()) {
    aq->runtime.reset();
    return;  // defensive: leaves the query to time out best-effort
  }
  aq->accountable =
      aq->runtime->epochal() && IsAccountableGraph(aq->env.plan.graph);
  Writer w;
  w.PutU8(static_cast<uint8_t>(BcastKind::kPlan));
  aq->env.Serialize(&w);
  // includes local delivery
  uint64_t seq = broadcast_->Broadcast(sim::Payload(w.Release()));
  if (seq != 0) coverage_waits_[seq] = {aq->env.query_id, epoch};
  aq->runtime->StartEpoch(CurrentEpoch(*aq));
}

void QueryEngine::RouteArrival(uint64_t qid, const std::string& ns,
                               const dht::StoredItem& item) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second->ended ||
      it->second->runtime == nullptr) {
    return;
  }
  it->second->runtime->OnArrival(ns, item);
}

// ---------------------------------------------------------------------------
// Reliable result plane
// ---------------------------------------------------------------------------

void QueryEngine::SendReliable(ActiveQuery* aq, sim::HostId to, Writer&& inner,
                               bool control) {
  // A frame enqueued after teardown would be charged to the admission gate
  // but never acked, lost, or cleared — the pending-byte leak that wedges
  // admission into permanent Busy. (Stage pipelines can still emit while a
  // teardown broadcast is being processed.)
  if (aq->ended) return;
  if (!control) {
    // Bytes-shipped budget: data frames only — control traffic (acks,
    // reports, the trip notice itself) must always flow or the origin
    // would read the degradation as loss.
    const QueryBudget budget = EffectiveBudget(*aq);
    if (budget.max_result_bytes > 0 &&
        aq->bytes_shipped + inner.size() > budget.max_result_bytes) {
      TripBudget(aq);
      ++stats_.budget_frames_dropped;
      return;
    }
    aq->bytes_shipped += inner.size();
  }
  if (!options_.reliable_results) {
    SendDirect(to, inner);
    return;
  }
  std::string bytes = inner.Release();
  pending_result_bytes_ += bytes.size();
  if (!control && to == aq->env.origin) ++aq->outbox.data_to_origin;
  uint64_t frame_id = aq->outbox.Enqueue(to, std::move(bytes), control);
  ++stats_.frames_sent;
  SendFrameOnce(aq, frame_id);
  ScheduleFrameRetry(aq->env.query_id, frame_id);
}

void QueryEngine::SendFrameOnce(ActiveQuery* aq, uint64_t frame_id) {
  ReliableOutbox::Frame* f = aq->outbox.Get(frame_id);
  if (f == nullptr) return;
  Writer w;
  w.Reserve(f->bytes.size() + 20);
  w.PutU8(static_cast<uint8_t>(MsgType::kFrame));
  w.PutVarint64(aq->env.query_id);
  w.PutVarint64(frame_id);
  w.PutRaw(f->bytes.data(), f->bytes.size());
  SendDirect(f->to, w);
}

void QueryEngine::ScheduleFrameRetry(uint64_t qid, uint64_t frame_id) {
  auto it = queries_.find(qid);
  if (it == queries_.end()) return;
  ReliableOutbox::Frame* f = it->second->outbox.Get(frame_id);
  if (f == nullptr) return;
  uint64_t salt = MixHash64(
      qid ^ (frame_id << 20) ^
      (static_cast<uint64_t>(transport_->self()) << 48));
  Duration delay = RetryDelay(options_.retry_initial, options_.retry_max,
                              options_.retry_jitter, salt, f->attempts);
  ScheduleEngineTimer(delay, [this, qid, frame_id] {
    auto qit = queries_.find(qid);
    if (qit == queries_.end()) return;
    ActiveQuery* q = qit->second.get();
    ReliableOutbox::Frame* fr = q->outbox.Get(frame_id);
    if (fr == nullptr || q->ended) return;
    if (fr->attempts >= options_.retry_budget) {
      // Lost for good: charge it loudly instead of pretending.
      bool was_data = !fr->control;
      pending_result_bytes_ -= fr->bytes.size();
      q->outbox.MarkLost(frame_id);
      ++stats_.frames_lost;
      if (was_data && q->outbox.data_drained()) OnOutboxDrained(q);
      return;
    }
    ++fr->attempts;
    if (!fr->control) ++q->outbox.retried;
    ++stats_.frames_retransmitted;
    stats_.frame_bytes_retransmitted += fr->bytes.size();
    SendFrameOnce(q, frame_id);
    ScheduleFrameRetry(qid, frame_id);
  });
}

void QueryEngine::OnFrame(sim::HostId from, Reader* r) {
  uint64_t qid = 0, frame_id = 0;
  if (!r->GetVarint64(&qid).ok() || !r->GetVarint64(&frame_id).ok()) return;
  // Always ack — duplicates and unknown or finished queries included — so
  // the sender's retransmits stop. Processing below is what is gated.
  Writer a;
  a.PutU8(static_cast<uint8_t>(MsgType::kFrameAck));
  a.PutVarint64(qid);
  a.PutVarint64(frame_id);
  SendDirect(from, a);
  auto it = queries_.find(qid);
  if (it == queries_.end()) return;
  ActiveQuery* aq = it->second.get();
  if (aq->ended) {
    // Teardown hygiene: an ended query's dedupe windows and admission
    // counters were pruned and must not regrow from stragglers. Still
    // dispatch so late data keeps counting as late_partials (a retransmit
    // racing the ack may count twice — the counter is diagnostic).
    uint8_t inner = 0;
    if (!r->GetU8(&inner).ok()) return;
    MsgType t = static_cast<MsgType>(inner);
    if (t == MsgType::kFrame || t == MsgType::kFrameAck) return;
    DispatchMessage(from, inner, r);
    return;
  }
  if (!aq->rx_dedupe[from].Admit(frame_id)) {
    ++stats_.frame_dupes_dropped;
    return;
  }
  uint8_t inner = 0;
  if (!r->GetU8(&inner).ok()) return;
  MsgType t = static_cast<MsgType>(inner);
  if (t == MsgType::kFrame || t == MsgType::kFrameAck) return;  // no nesting
  if (t == MsgType::kResultTuple || t == MsgType::kPartialAgg ||
      t == MsgType::kResultBatch || t == MsgType::kPartialBatch) {
    ++aq->rx_data_frames[from];
  }
  DispatchMessage(from, inner, r);
  // Admitted data may have been the last thing a certified epoch was
  // waiting on (a data frame can arrive after the member's report under
  // reordering).
  auto it2 = queries_.find(qid);
  if (it2 != queries_.end() && it2->second->is_origin &&
      !it2->second->ended && it2->second->accountable) {
    MaybeEarlyFinalize(it2->second.get(), CurrentEpoch(*it2->second));
  }
}

void QueryEngine::OnFrameAck(Reader* r) {
  uint64_t qid = 0, frame_id = 0;
  if (!r->GetVarint64(&qid).ok() || !r->GetVarint64(&frame_id).ok()) return;
  auto it = queries_.find(qid);
  if (it == queries_.end()) return;
  ActiveQuery* aq = it->second.get();
  ReliableOutbox::Frame* f = aq->outbox.Get(frame_id);
  if (f == nullptr) return;  // duplicate ack
  bool was_data = !f->control;
  pending_result_bytes_ -= f->bytes.size();
  aq->outbox.Ack(frame_id);
  ++stats_.frames_acked;
  if (was_data && !aq->ended && aq->outbox.data_drained()) {
    OnOutboxDrained(aq);
  }
}

void QueryEngine::OnOutboxDrained(ActiveQuery* aq) {
  if (aq->is_origin || aq->ended || !aq->accountable ||
      !options_.reliable_results) {
    return;
  }
  // A drained outbox means nothing while this epoch's scheduled scans are
  // still queued: more data frames are coming, and an early "done" claim
  // would let the origin certify an answer missing them.
  if (aq->scans_done_epoch < static_cast<int64_t>(CurrentEpoch(*aq))) return;
  SendEpochReport(aq);
}

void QueryEngine::SendEpochReport(ActiveQuery* aq) {
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kEpochReport));
  w.PutVarint64(aq->env.query_id);
  w.PutVarint64(CurrentEpoch(*aq));
  w.PutVarint64(aq->outbox.data_to_origin);
  w.PutVarint64(aq->outbox.retried);
  w.PutVarint64(aq->outbox.lost);
  // Flags bit 0: a budget tripped here — rides the report so an origin that
  // missed the kBudgetTrip frame still learns of the degradation.
  w.PutVarint64(aq->budget_tripped ? 1 : 0);
  ++stats_.epoch_reports_sent;
  SendReliable(aq, aq->env.origin, std::move(w), /*control=*/true);
}

void QueryEngine::OnCoverage(uint64_t seq, uint64_t members, bool complete) {
  auto it = coverage_waits_.find(seq);
  if (it == coverage_waits_.end()) return;
  auto [qid, epoch] = it->second;
  coverage_waits_.erase(it);
  auto qit = queries_.find(qid);
  if (qit == queries_.end() || !qit->second->is_origin ||
      qit->second->ended) {
    return;
  }
  ActiveQuery* aq = qit->second.get();
  aq->members_expected = members;
  aq->coverage_complete = complete;
  MaybeEarlyFinalize(aq, epoch);
}

void QueryEngine::MaybeEarlyFinalize(ActiveQuery* aq, uint64_t epoch) {
  if (!aq->is_origin || aq->ended || !aq->accountable ||
      !options_.reliable_results) {
    return;
  }
  if (aq->cancelled || aq->deadline_expired) return;
  if (!aq->coverage_complete || aq->members_expected == 0) return;
  if (!aq->shed_members.empty()) return;
  // A recently changed overlay neighborhood means this node's "everyone"
  // may be one side of a partition (the minority ring's cover wave returns
  // complete over 3 nodes of 10): no global exactness claim until the view
  // has been stable for a detection window.
  const TimePoint topo = router_->last_topology_change();
  if (options_.certify_stability_window > 0 && topo != 0 &&
      sim_->now() - topo < options_.certify_stability_window) {
    return;
  }
  // Budget degradation anywhere bars exactness, and the origin's own
  // scheduled scans must have drained — its loopback rows are part of the
  // answer being certified.
  if (aq->budget_tripped || !aq->budget_tripped_members.empty()) return;
  if (aq->scans_done_epoch < static_cast<int64_t>(epoch)) return;
  if (static_cast<int64_t>(epoch) <= aq->last_finalized_epoch) return;
  auto eit = aq->epochs.find(epoch);
  if (eit == aq->epochs.end() || eit->second.finalized ||
      eit->second.early_finalize_scheduled) {
    return;
  }
  // Every covered member (origin included: the +1) must have reported this
  // epoch loss-free, and every data frame it claims to have sent us must
  // have been admitted.
  if (aq->reports.size() + 1 < aq->members_expected) return;
  for (const auto& [host, rep] : aq->reports) {
    if (rep.epoch < epoch || rep.lost > 0) return;
    auto rx = aq->rx_data_frames.find(host);
    uint64_t admitted = rx == aq->rx_data_frames.end() ? 0 : rx->second;
    if (admitted < rep.frames_to_origin) return;  // data still in flight
  }
  eit->second.early_finalize_scheduled = true;
  ++stats_.reliable_early_finalizes;
  // Deferred a tick: a degenerate (single-node) dissemination certifies
  // synchronously inside Execute(), and the client must never see its
  // callback before Execute returns the query id.
  uint64_t qid = aq->env.query_id;
  ScheduleEngineTimer(0, [this, qid, epoch] {
    auto it = queries_.find(qid);
    if (it == queries_.end() || it->second->ended) return;
    FinalizeEpoch(it->second.get(), epoch, /*exact_certified=*/true);
  });
}

// ---------------------------------------------------------------------------
// Scheduler integration & per-query budgets
// ---------------------------------------------------------------------------

void QueryEngine::SubmitScan(ScanWork work) {
  const uint64_t qid = work.qid;
  // The abort probe is the engine's, not the runtime's: the scheduler must
  // stop serving a scan the moment the query ends or its budget trips,
  // even while a feed callback sits queued behind other tenants.
  work.aborted = [this, qid]() {
    auto it = queries_.find(qid);
    return it == queries_.end() || it->second->ended ||
           it->second->budget_tripped;
  };
  scheduler_->Submit(std::move(work));
}

void QueryEngine::OnEpochScansDone(uint64_t qid, uint64_t epoch) {
  auto it = queries_.find(qid);
  if (it == queries_.end()) return;
  ActiveQuery* aq = it->second.get();
  aq->scans_done_epoch =
      std::max(aq->scans_done_epoch, static_cast<int64_t>(epoch));
  if (aq->ended) return;
  if (!aq->is_origin && aq->accountable && options_.reliable_results &&
      aq->outbox.data_drained()) {
    // Everything this member will contribute for the epoch is already
    // acked — the drain event fired before the scans-done gate opened, so
    // report now.
    SendEpochReport(aq);
  }
  if (aq->is_origin && aq->accountable) {
    // The origin's own loopback scan was the last missing piece; the
    // member reports may already all be in.
    MaybeEarlyFinalize(aq, epoch);
  }
}

bool QueryEngine::ChargeRehashPuts(uint64_t qid, uint64_t n) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second->ended) return false;
  ActiveQuery* aq = it->second.get();
  const QueryBudget budget = EffectiveBudget(*aq);
  if (budget.max_rehash_puts == 0) return true;  // unlimited
  if (aq->budget_tripped || aq->rehash_puts + n > budget.max_rehash_puts) {
    TripBudget(aq);
    stats_.budget_rehash_dropped += n;
    return false;
  }
  aq->rehash_puts += n;
  return true;
}

QueryBudget QueryEngine::EffectiveBudget(const ActiveQuery& aq) const {
  QueryBudget b = aq.env.plan.budget;
  if (b.max_result_bytes == 0) {
    b.max_result_bytes = options_.default_budget.max_result_bytes;
  }
  if (b.max_rehash_puts == 0) {
    b.max_rehash_puts = options_.default_budget.max_rehash_puts;
  }
  if (b.max_result_rows == 0) {
    b.max_result_rows = options_.default_budget.max_result_rows;
  }
  return b;
}

void QueryEngine::TripBudget(ActiveQuery* aq) {
  if (aq->budget_tripped) return;
  aq->budget_tripped = true;
  ++stats_.budget_trips;
  PLOG(kInfo, "qe@" + std::to_string(transport_->self()))
      << "query " << aq->env.query_id << " tripped its resource budget";
  if (!aq->is_origin && !aq->ended) {
    // Tell the origin immediately (control frame: exempt from the very
    // byte budget that may have tripped) so the degradation lands in
    // Completeness even if no epoch report ever goes out.
    Writer w;
    w.PutU8(static_cast<uint8_t>(MsgType::kBudgetTrip));
    w.PutVarint64(aq->env.query_id);
    SendReliable(aq, aq->env.origin, std::move(w), /*control=*/true);
  }
}

// ---------------------------------------------------------------------------
// Deadlines, leases, completeness
// ---------------------------------------------------------------------------

void QueryEngine::OnDeadline(uint64_t qid) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second->ended) return;
  ActiveQuery* aq = it->second.get();
  aq->deadline_expired = true;
  ++stats_.queries_deadline_expired;
  if (!aq->is_origin) {
    // Self-expiry: the grace period passed without the origin's kCancel.
    HandleQueryEnd(qid);
    return;
  }
  // Degrade loudly: report whatever arrived, flagged deadline_expired, then
  // cancel network-wide so members free their state now.
  bool origin_local = aq->origin_local;
  FinalizeEpoch(aq, CurrentEpoch(*aq));
  auto it2 = queries_.find(qid);
  if (it2 != queries_.end() && !it2->second->ended && !origin_local) {
    Writer w;
    w.PutU8(static_cast<uint8_t>(BcastKind::kCancel));
    w.PutVarint64(qid);
    broadcast_->Broadcast(sim::Payload(w.Release()));
  }
}

void QueryEngine::ArmMemberLifecycle(ActiveQuery* aq) {
  if (aq->is_origin) return;
  uint64_t qid = aq->env.query_id;
  if (aq->env.deadline > 0 && aq->deadline_timer == 0) {
    // Two seconds of grace past the origin's deadline: its kCancel
    // normally lands first, making this the lost-broadcast backstop.
    aq->deadline_timer = ScheduleEngineTimerAt(
        aq->env.deadline + Seconds(2), [this, qid] { OnDeadline(qid); });
  }
  // Origin-liveness lease: a member whose origin crashed (no kQueryEnd, no
  // kCancel, no plan refreshes) reclaims its stage state and exchange
  // namespaces itself, well before the storage TTL would.
  TimePoint lease;
  if (aq->env.plan.every > 0) {
    // Refreshed on every plan re-broadcast: one missed period plus the
    // result window plus slack means the origin is gone.
    lease = sim_->now() + aq->env.plan.every + options_.result_wait +
            options_.member_lease;
  } else if (aq->runtime != nullptr && aq->runtime->has_recurse()) {
    lease = aq->env.issued_at + options_.recursion_deadline +
            options_.member_lease;
  } else {
    lease = aq->env.issued_at + options_.result_wait + options_.member_lease;
  }
  if (aq->lease_timer != 0) sim_->Cancel(aq->lease_timer);
  aq->lease_timer = ScheduleEngineTimerAt(lease, [this, qid] {
    auto it = queries_.find(qid);
    if (it == queries_.end() || it->second->ended) return;
    ++stats_.leases_reclaimed;
    HandleQueryEnd(qid);
  });
}

Completeness QueryEngine::BuildCompleteness(ActiveQuery* aq, uint64_t epoch,
                                            bool exact_certified) const {
  Completeness c;
  c.cancelled = aq->cancelled;
  c.deadline_expired = aq->deadline_expired;
  c.members_shed = aq->shed_members.size();
  c.budget_trips = aq->budget_tripped_members.size() +
                   (aq->budget_tripped ? 1 : 0);
  auto eit = aq->epochs.find(epoch);
  uint64_t reporters =
      eit != aq->epochs.end() ? eit->second.reporters.size() : 0;
  if (aq->origin_local) {
    c.members_expected = 1;
    c.members_reported = 1;
    c.coverage_complete = true;
  } else {
    c.members_expected = aq->members_expected;
    c.coverage_complete = aq->coverage_complete;
    if (aq->accountable && options_.reliable_results) {
      // Members with nothing to contribute still report; count them (and
      // the origin itself) over the raw data-reporter set.
      uint64_t reported = 1;
      for (const auto& [host, rep] : aq->reports) {
        if (rep.epoch >= epoch) ++reported;
      }
      c.members_reported = std::max(reported, reporters);
    } else {
      c.members_reported = reporters;
    }
  }
  for (const auto& [host, rep] : aq->reports) {
    c.frames_retried += rep.retried;
    c.frames_lost += rep.lost;
  }
  c.frames_retried += aq->outbox.retried;
  c.frames_lost += aq->outbox.lost;
  c.filter_waves_degraded = aq->filter_waves_degraded;
  c.exact = exact_certified && aq->filter_waves_degraded == 0;
  return c;
}

// ---------------------------------------------------------------------------
// Query issue / dissemination
// ---------------------------------------------------------------------------

Status QueryEngine::ValidateGraphAgainstCatalog(const OpGraph& graph) const {
  for (const OpNode& n : graph.nodes) {
    if (n.type == OpType::kJoin &&
        n.strategy == JoinStrategy::kFetchMatches) {
      const OpNode& right = graph.nodes[n.inputs[1]];
      const catalog::TableDef* def = catalog_->Find(right.table);
      if (def == nullptr || def->partition_cols != n.right_keys) {
        return Status::InvalidArgument(
            "fetch-matches requires the inner relation partitioned on the "
            "join key");
      }
    }
    if (n.type == OpType::kRecurse) {
      const OpNode& edge = graph.nodes[n.inputs[0]];
      const catalog::TableDef* def = catalog_->Find(edge.table);
      if (def == nullptr ||
          def->partition_cols != std::vector<int>{n.src_col}) {
        return Status::InvalidArgument(
            "recursive queries require the edge table partitioned on the "
            "source column");
      }
    }
    if (n.type == OpType::kIndexScan) {
      const catalog::TableDef* def = catalog_->Find(n.table);
      if (def == nullptr || def->IndexOn(n.index_col) == nullptr) {
        return Status::InvalidArgument(
            "index scan requires a declared index on the attribute");
      }
    }
  }
  return Status::OK();
}

Result<uint64_t> QueryEngine::Execute(QueryPlan plan, ResultCallback cb) {
  plan.EnsureGraph();
  PIER_RETURN_IF_ERROR(plan.graph.Validate());
  PIER_RETURN_IF_ERROR(ValidateGraphAgainstCatalog(plan.graph));

  // Admission: refuse at issue time rather than degrade mid-flight. A
  // refused caller gets a typed Busy and nothing was broadcast.
  size_t live = 0;
  for (const auto& [id, q] : queries_) {
    if (!q->ended) ++live;
  }
  if (live >= options_.max_live_queries) {
    ++stats_.admission_refusals;
    return Status::Busy("admission: live-query budget exhausted");
  }
  if (plan.graph.nodes.size() > options_.max_plan_operators) {
    ++stats_.admission_refusals;
    return Status::Busy("admission: plan exceeds operator budget");
  }
  if (pending_result_bytes_ > options_.max_pending_result_bytes) {
    ++stats_.admission_refusals;
    return Status::Busy("admission: pending result bytes over budget");
  }

  uint64_t query_id =
      (static_cast<uint64_t>(transport_->self() + 1) << 32) |
      next_query_seq_++;

  auto aq = std::make_unique<ActiveQuery>();
  aq->env.query_id = query_id;
  aq->env.origin = transport_->self();
  aq->env.issued_at = sim_->now();
  aq->env.plan = std::move(plan);
  aq->is_origin = true;
  aq->origin_local = IsOriginLocalGraph(aq->env.plan.graph);
  aq->parent = transport_->self();
  aq->cb = std::move(cb);
  // Resolve the deadline once, at the origin: the wire carries the absolute
  // time so every member counts down against the same clock.
  Duration deadline_after = aq->env.plan.deadline > 0
                                ? aq->env.plan.deadline
                                : options_.query_deadline;
  if (deadline_after > 0) {
    aq->env.deadline = aq->env.issued_at + deadline_after;
  }
  aq->runtime =
      std::make_unique<ops::QueryRuntime>(this, &aq->env, /*is_origin=*/true);
  PIER_RETURN_IF_ERROR(aq->runtime->Init());
  ++stats_.queries_issued;
  ActiveQuery* raw = aq.get();
  raw->accountable =
      raw->runtime->epochal() && IsAccountableGraph(raw->env.plan.graph);
  queries_.emplace(query_id, std::move(aq));

  if (raw->env.deadline > 0) {
    raw->deadline_timer = ScheduleEngineTimerAt(
        raw->env.deadline, [this, query_id] { OnDeadline(query_id); });
  }

  // Strategy-specific origin duties (e.g. the Bloom filter-collection
  // window) start at issue time, before the plan broadcast goes out.
  raw->runtime->InitOrigin();

  if (raw->runtime->has_recurse()) {
    // Recursion: the origin watches for quiescence.
    TimePoint deadline = sim_->now() + options_.recursion_deadline;
    raw->last_new_result = sim_->now();
    raw->quiesce_task.Start(sim_, Seconds(1), Seconds(1), [this, query_id,
                                                           deadline] {
      auto it = queries_.find(query_id);
      if (it == queries_.end() || it->second->ended) return;
      ActiveQuery* q = it->second.get();
      bool quiet =
          sim_->now() - q->last_new_result >= options_.quiesce_window;
      if (quiet || sim_->now() >= deadline) {
        FinalizeEpoch(q, 0);
      }
    });
  } else {
    // Schedule the epoch-0 finalize.
    ActiveQuery::EpochState& es = raw->epochs[0];
    es.finalize_timer = ScheduleEngineTimerAt(
        raw->env.issued_at + options_.result_wait,
        [this, query_id] {
          auto it = queries_.find(query_id);
          if (it != queries_.end()) FinalizeEpoch(it->second.get(), 0);
        });
  }

  if (raw->origin_local) {
    // Index-only plan: nothing for other members to do — install locally
    // and let the cursor touch exactly the DHT owners it needs. The
    // dissemination broadcast (and its network-wide scan work) is the
    // first thing the index saves.
    InstallQuery(raw->env, transport_->self(), 0);
  } else {
    Writer w;
    w.PutU8(static_cast<uint8_t>(BcastKind::kPlan));
    raw->env.Serialize(&w);
    uint64_t seq = broadcast_->Broadcast(sim::Payload(w.Release()));
    if (seq != 0) coverage_waits_[seq] = {query_id, 0};
  }
  PLOG(kInfo, "qe@" + std::to_string(transport_->self()))
      << "issued query " << query_id << " " << raw->env.plan.ToString();
  return query_id;
}

void QueryEngine::Cancel(uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end() || !it->second->is_origin || it->second->ended) {
    return;
  }
  ActiveQuery* aq = it->second.get();
  aq->cancelled = true;
  ++stats_.queries_cancelled;
  aq->quiesce_task.Stop();
  if (aq->origin_local) {
    // Never disseminated: tear down locally.
    HandleQueryEnd(query_id);
    return;
  }
  // kCancel rides the same dissemination tree the plan did (acked edges,
  // so it actually arrives), freeing member stage state and q<id>.x<n>
  // namespaces now instead of squatting until TTL. No final batch fires.
  Writer w;
  w.PutU8(static_cast<uint8_t>(BcastKind::kCancel));
  w.PutVarint64(query_id);
  broadcast_->Broadcast(sim::Payload(w.Release()));  // includes local delivery
}

void QueryEngine::OnBroadcast(sim::HostId /*bcast_origin*/, uint64_t /*seq*/,
                              sim::HostId parent, int depth,
                              const sim::Payload& payload) {
  Reader r(payload.view());
  uint8_t kind = 0;
  if (!r.GetU8(&kind).ok()) return;
  switch (static_cast<BcastKind>(kind)) {
    case BcastKind::kPlan: {
      PlanEnvelope env;
      if (!PlanEnvelope::Deserialize(&r, &env).ok()) return;
      InstallQuery(env, parent, depth);
      break;
    }
    case BcastKind::kBloomDist: {
      BloomDistFrame frame;
      if (!BloomDistFrame::Deserialize(&r, &frame).ok()) return;
      auto it = queries_.find(frame.qid);
      if (it == queries_.end() || it->second->ended ||
          it->second->runtime == nullptr) {
        return;
      }
      it->second->runtime->OnBloomDist(std::move(frame));
      break;
    }
    case BcastKind::kQueryEnd:
    case BcastKind::kCancel: {
      uint64_t qid = 0;
      if (!r.GetVarint64(&qid).ok()) return;
      HandleQueryEnd(qid);
      break;
    }
  }
}

void QueryEngine::HandleQueryEnd(uint64_t qid) {
  auto it = queries_.find(qid);
  if (it == queries_.end() || it->second->ended) return;
  ActiveQuery* aq = it->second.get();
  aq->ended = true;
  aq->epoch_task.Stop();
  aq->quiesce_task.Stop();
  // Drop unacked frames with the query: retransmitting into a dead query
  // only burns bytes (the receiver acks-and-ignores anyway), and the
  // admission gate must stop charging for them.
  pending_result_bytes_ -= aq->outbox.pending_bytes();
  aq->outbox.Clear();
  // Same for the receiver side: per-sender dedupe windows, admitted-frame
  // counters, and member reports die with the query on EVERY terminal path
  // (kQueryEnd, kCancel, member deadline self-expiry, lease reclaim all
  // route here) — not just the happy one. A storm of short queries must
  // leave these maps empty, not monotonically growing.
  aq->rx_dedupe.clear();
  aq->rx_data_frames.clear();
  aq->reports.clear();
  // Queued scan work captures the runtime about to be torn down.
  scheduler_->DropQuery(qid);
  if (aq->deadline_timer != 0) {
    sim_->Cancel(aq->deadline_timer);
    aq->deadline_timer = 0;
  }
  if (aq->lease_timer != 0) {
    sim_->Cancel(aq->lease_timer);
    aq->lease_timer = 0;
  }
  if (aq->runtime != nullptr) {
    for (const std::string& ns : aq->runtime->Namespaces()) {
      dht_->UnsubscribeArrivals(ns);
      dht_->local_store()->DropNamespace(ns);
    }
  }
  ScheduleEngineTimer(options_.cleanup_delay, [this, qid] { GcQuery(qid); });
}

void QueryEngine::InstallQuery(const PlanEnvelope& env, sim::HostId parent,
                               int depth) {
  auto it = queries_.find(env.query_id);
  if (it != queries_.end()) {
    // Already installed. Continuous queries are re-disseminated
    // periodically (soft state); a refresh carries a fresh tree position,
    // repairing aggregation trees around failed parents — and renews the
    // member's origin-liveness lease.
    if (!it->second->is_origin) {
      it->second->parent = parent;
      it->second->depth = depth;
      ArmMemberLifecycle(it->second.get());
      if (it->second->installed) return;
    } else if (it->second->installed) {
      return;
    }
  } else {
    // Member-side admission: refuse the plan at dissemination time, loudly.
    // The typed reject tells the origin exactly who shed, so its
    // Completeness summary reflects the shortfall instead of silently
    // missing rows.
    if (env.origin != transport_->self()) {
      AdmissionReason refuse_reason{};
      bool refused = false;
      size_t live = 0;
      for (const auto& [id, q] : queries_) {
        if (!q->ended) ++live;
      }
      if (live >= options_.max_live_queries) {
        refused = true;
        refuse_reason = AdmissionReason::kLiveQueries;
      } else if (pending_result_bytes_ > options_.max_pending_result_bytes) {
        refused = true;
        refuse_reason = AdmissionReason::kPendingBytes;
      }
      if (refused) {
        ++stats_.plans_shed;
        Writer w;
        w.PutU8(static_cast<uint8_t>(MsgType::kAdmissionReject));
        w.PutVarint64(env.query_id);
        w.PutU8(static_cast<uint8_t>(refuse_reason));
        SendDirect(env.origin, w);
        return;
      }
    }
    auto aq = std::make_unique<ActiveQuery>();
    aq->env = env;
    aq->parent = parent;
    aq->depth = depth;
    queries_.emplace(env.query_id, std::move(aq));
    ++stats_.plans_received;
  }
  ActiveQuery* aq = queries_.find(env.query_id)->second.get();
  aq->installed = true;

  if (aq->runtime == nullptr) {
    aq->env.plan.EnsureGraph();
    aq->runtime = std::make_unique<ops::QueryRuntime>(this, &aq->env,
                                                      aq->is_origin);
    if (!aq->runtime->Init().ok()) {
      // Hostile or unexecutable graph: drop it (soft failure, no crash) —
      // but still lease the husk so it cannot squat forever.
      aq->runtime.reset();
      ArmMemberLifecycle(aq);
      return;
    }
    aq->accountable =
        aq->runtime->epochal() && IsAccountableGraph(aq->env.plan.graph);
  }
  ArmMemberLifecycle(aq);

  if (aq->runtime->epochal()) {
    StartEpoch(aq, CurrentEpoch(*aq));
    if (aq->env.plan.every > 0) {
      // Align the periodic scan to global epoch boundaries (epochs are
      // numbered from the origin's issue time on the shared clock), so a
      // node that learns the query late — e.g. after a reboot — slots
      // into the same epochs as everyone else.
      uint64_t qid = env.query_id;
      Duration since = sim_->now() - aq->env.issued_at;
      Duration to_boundary =
          aq->env.plan.every - (since % aq->env.plan.every);
      aq->epoch_task.Start(sim_, to_boundary, aq->env.plan.every,
                           [this, qid] {
                             auto qit = queries_.find(qid);
                             if (qit == queries_.end()) return;
                             ActiveQuery* q = qit->second.get();
                             if (q->ended) return;
                             StartEpoch(q, CurrentEpoch(*q));
                           });
    }
  } else {
    // Joins and recursion set up once: subscribe this node's exchange
    // namespaces, then let the stages produce.
    uint64_t qid = env.query_id;
    for (const std::string& ns : aq->runtime->Namespaces()) {
      dht_->SubscribeArrivals(ns,
                              [this, qid, ns](const dht::StoredItem& item) {
                                RouteArrival(qid, ns, item);
                                return true;  // exchange tuples always store
                              });
    }
    aq->runtime->Start();
  }
}

uint64_t QueryEngine::CurrentEpoch(const ActiveQuery& aq) const {
  if (aq.env.plan.every <= 0) return 0;
  TimePoint since = sim_->now() - aq.env.issued_at;
  if (since < 0) return 0;
  return static_cast<uint64_t>(since / aq.env.plan.every);
}

void QueryEngine::StartEpoch(ActiveQuery* aq, uint64_t epoch) {
  if (aq->ended || aq->runtime == nullptr) return;
  // The origin schedules this epoch's finalize deadline (epoch 0's was
  // scheduled at Execute time) and refreshes the dissemination: nodes that
  // rebooted since the last broadcast re-learn the plan, and everyone gets
  // an up-to-date tree parent.
  if (aq->is_origin && epoch > 0) {
    ActiveQuery::EpochState& es = aq->epochs[epoch];
    uint64_t qid = aq->env.query_id;
    es.finalize_timer =
        ScheduleEngineTimer(options_.result_wait, [this, qid, epoch] {
          auto it = queries_.find(qid);
          if (it != queries_.end()) FinalizeEpoch(it->second.get(), epoch);
        });
    if (!aq->origin_local) {
      Writer w;
      w.PutU8(static_cast<uint8_t>(BcastKind::kPlan));
      aq->env.Serialize(&w);
      uint64_t seq = broadcast_->Broadcast(sim::Payload(w.Release()));
      if (seq != 0) coverage_waits_[seq] = {qid, epoch};
    }
  }
  // The runtime signals OnEpochScansDone when this epoch's scans complete
  // (synchronously on the legacy path, after the scheduler drains them on
  // the multi-tenant path); members report and origins certify from there.
  aq->runtime->StartEpoch(epoch);
}

// ---------------------------------------------------------------------------
// Direct engine traffic
// ---------------------------------------------------------------------------

void QueryEngine::OnDirect(sim::HostId from, Reader* r) {
  uint8_t type = 0;
  if (!r->GetU8(&type).ok()) return;
  DispatchMessage(from, type, r);
}

void QueryEngine::DispatchMessage(sim::HostId from, uint8_t type, Reader* r) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kFrame:
      OnFrame(from, r);
      return;
    case MsgType::kFrameAck:
      OnFrameAck(r);
      return;
    case MsgType::kEpochReport: {
      uint64_t qid = 0, epoch = 0, frames = 0, retried = 0, lost = 0;
      if (!r->GetVarint64(&qid).ok() || !r->GetVarint64(&epoch).ok() ||
          !r->GetVarint64(&frames).ok() || !r->GetVarint64(&retried).ok() ||
          !r->GetVarint64(&lost).ok()) {
        return;
      }
      uint64_t flags = 0;
      if (!r->GetVarint64(&flags).ok()) return;
      if (epoch >= (1ull << 62)) return;  // same spoof guard as data frames
      auto it = queries_.find(qid);
      if (it == queries_.end() || !it->second->is_origin ||
          it->second->ended) {
        return;
      }
      ActiveQuery* aq = it->second.get();
      ++stats_.epoch_reports_received;
      // Counters are cumulative; component-wise max makes retransmit
      // reorderings harmless.
      ActiveQuery::MemberReport& rep = aq->reports[from];
      rep.epoch = std::max(rep.epoch, epoch);
      rep.frames_to_origin = std::max(rep.frames_to_origin, frames);
      rep.retried = std::max(rep.retried, retried);
      rep.lost = std::max(rep.lost, lost);
      if (flags & 1) aq->budget_tripped_members.insert(from);
      MaybeEarlyFinalize(aq, CurrentEpoch(*aq));
      return;
    }
    case MsgType::kBudgetTrip: {
      uint64_t qid = 0;
      if (!r->GetVarint64(&qid).ok()) return;
      auto it = queries_.find(qid);
      if (it == queries_.end() || !it->second->is_origin ||
          it->second->ended) {
        return;
      }
      // Degrade loudly: the member stopped working within its budget; the
      // answer ships with budget_trips counted and exactness barred.
      it->second->budget_tripped_members.insert(from);
      return;
    }
    case MsgType::kAdmissionReject: {
      uint64_t qid = 0;
      uint8_t reason = 0;
      if (!r->GetVarint64(&qid).ok() || !r->GetU8(&reason).ok()) return;
      auto it = queries_.find(qid);
      if (it == queries_.end() || !it->second->is_origin ||
          it->second->ended) {
        return;
      }
      ++stats_.admission_rejects_received;
      // A shed member permanently bars exactness for this query run; the
      // Completeness summary carries the count so callers see the shortfall.
      it->second->shed_members.insert(from);
      return;
    }
    default:
      break;
  }
  switch (static_cast<MsgType>(type)) {
    case MsgType::kResultTuple:
    case MsgType::kPartialAgg: {
      uint64_t qid = 0, epoch = 0;
      Tuple t;
      if (!r->GetVarint64(&qid).ok() || !r->GetVarint64(&epoch).ok() ||
          !catalog::DeserializeTuple(r, &t).ok()) {
        return;
      }
      // Epochs count periods since issue time; anything near the integer
      // ceiling is a spoofed message (and would wrap the stage-timer token
      // space, which reserves 0 and encodes combiner flushes as 1+epoch).
      if (epoch >= (1ull << 62)) return;
      auto it = queries_.find(qid);
      if (it == queries_.end()) return;
      ActiveQuery* aq = it->second.get();
      bool is_partial = static_cast<MsgType>(type) == MsgType::kPartialAgg;
      if (is_partial) {
        ++stats_.partial_msgs_received;
      } else {
        ++stats_.result_msgs_received;
      }
      if (aq->is_origin) {
        OriginAccept(aq, epoch, from, t, is_partial);
      } else if (is_partial && !aq->ended && aq->runtime != nullptr) {
        // Interior tree node: combine if the window is open, else relay
        // upward unmodified (late child).
        aq->runtime->OnRemotePartial(epoch, t);
      }
      break;
    }
    case MsgType::kResultBatch:
    case MsgType::kPartialBatch: {
      uint64_t qid = 0, epoch = 0;
      exec::RowBatch b;
      if (!r->GetVarint64(&qid).ok() || !r->GetVarint64(&epoch).ok() ||
          !exec::RowBatch::Decode(r, &b).ok()) {
        return;
      }
      if (epoch >= (1ull << 62)) return;  // same spoof guard as row frames
      auto it = queries_.find(qid);
      if (it == queries_.end()) return;
      ActiveQuery* aq = it->second.get();
      bool is_partial = static_cast<MsgType>(type) == MsgType::kPartialBatch;
      if (is_partial) {
        ++stats_.partial_msgs_received;
      } else {
        ++stats_.result_msgs_received;
      }
      ++stats_.batch_frames_received;
      // Unpack and treat each row exactly like its row-frame twin — one
      // frame, N accept/combine decisions.
      Tuple t;
      for (size_t i = 0; i < b.num_rows(); ++i) {
        b.ToTuple(i, &t);
        if (aq->is_origin) {
          OriginAccept(aq, epoch, from, t, is_partial);
        } else if (is_partial && !aq->ended && aq->runtime != nullptr) {
          aq->runtime->OnRemotePartial(epoch, t);
        }
      }
      break;
    }
    case MsgType::kFetchReq: {
      uint64_t qid = 0;
      if (!r->GetVarint64(&qid).ok()) return;
      auto it = queries_.find(qid);
      if (it == queries_.end() || it->second->runtime == nullptr) return;
      it->second->runtime->OnFetchReq(from, r);
      break;
    }
    case MsgType::kFetchResp: {
      uint64_t qid = 0;
      if (!r->GetVarint64(&qid).ok()) return;
      auto it = queries_.find(qid);
      if (it == queries_.end() || it->second->ended ||
          it->second->runtime == nullptr) {
        return;
      }
      it->second->runtime->OnFetchResp(r);
      break;
    }
    case MsgType::kBloomPart: {
      BloomPartFrame frame;
      if (!BloomPartFrame::Deserialize(r, &frame).ok()) return;
      auto it = queries_.find(frame.qid);
      if (it == queries_.end() || !it->second->is_origin ||
          it->second->ended || it->second->runtime == nullptr) {
        return;
      }
      // `from` is the transport-level sender: parts are accounted per
      // member, so a retransmitted part never double-counts.
      it->second->runtime->OnBloomPart(from, frame);
      break;
    }
    default:
      break;  // frame-plane types handled above
  }
}

// ---------------------------------------------------------------------------
// Origin-side collection and post-processing
// ---------------------------------------------------------------------------

void QueryEngine::OriginAccept(ActiveQuery* aq, uint64_t epoch,
                               sim::HostId from, const Tuple& t,
                               bool is_partial) {
  if (static_cast<int64_t>(epoch) <= aq->last_finalized_epoch) {
    ++stats_.late_partials;  // straggler past the window
    return;
  }
  ActiveQuery::EpochState& es = aq->epochs[epoch];
  if (es.finalized) {
    ++stats_.late_partials;
    return;
  }
  es.reporters.insert(from);
  if (is_partial) {
    const OpNode* fagg = aq->runtime != nullptr
                             ? aq->runtime->final_agg_node()
                             : nullptr;
    if (fagg == nullptr) return;  // partial for a non-aggregate graph
    if (es.final_gb == nullptr) {
      es.final_gb = std::make_unique<exec::GroupByOp>(
          fagg->group_cols, fagg->aggs, exec::AggPhase::kFinal);
    }
    es.final_gb->Push(t, 0);
    return;
  }
  if (aq->runtime != nullptr && aq->runtime->has_recurse()) {
    // Global dedup: the same pair may be reported via multiple temp owners
    // after churn.
    std::string key = catalog::TupleToBytes(t);
    if (!aq->origin_result_seen.insert(key).second) return;
    aq->last_new_result = sim_->now();
  }
  // Result-window budget: the origin stops accumulating past the row cap
  // and flags the trip — callers get a bounded prefix declared degraded,
  // never an unbounded buffer or a silent truncation.
  const uint64_t row_cap = EffectiveBudget(*aq).max_result_rows;
  if (row_cap > 0 && es.rows.size() >= row_cap) {
    TripBudget(aq);
    ++stats_.budget_rows_dropped;
    return;
  }
  es.rows.push_back(t);
}

std::vector<Tuple> QueryEngine::OriginPostProcess(ActiveQuery* aq,
                                                  uint64_t epoch) {
  ActiveQuery::EpochState& es = aq->epochs[epoch];
  std::vector<Tuple> rows;
  const OpNode* fagg =
      aq->runtime != nullptr ? aq->runtime->final_agg_node() : nullptr;
  const OpNode* collect =
      aq->runtime != nullptr ? aq->runtime->collect_node() : nullptr;

  if (fagg != nullptr) {
    // Merge network partials (and, for join+aggregate, aggregate the raw
    // joined rows collected in es.rows with a complete group-by).
    bool from_partials =
        aq->runtime != nullptr && aq->runtime->has_partial_agg();
    exec::GroupByOp* gb = es.final_gb.get();
    std::unique_ptr<exec::GroupByOp> local;
    if (gb == nullptr || !es.rows.empty()) {
      local = std::make_unique<exec::GroupByOp>(
          fagg->group_cols, fagg->aggs,
          from_partials ? exec::AggPhase::kFinal
                        : exec::AggPhase::kComplete);
      gb = local.get();
      for (const Tuple& t : es.rows) gb->Push(t, 0);
      if (es.final_gb != nullptr) {
        // Should not happen (either partials or raw rows), but merge anyway.
        exec::FnSink relay([&gb](const Tuple& t) { gb->Push(t, 0); });
        es.final_gb->AddOutput(&relay);
        es.final_gb->FlushAndReset();
      }
    }
    exec::FnSink sink([&rows](const Tuple& t) { rows.push_back(t); });
    gb->AddOutput(&sink);
    gb->FlushAndReset();

    // SQL scalar-aggregate semantics: no groups and no input still yields
    // one row (COUNT = 0, SUM = NULL, ...).
    if (fagg->group_cols.empty() && rows.empty()) {
      Tuple identity;
      for (const exec::AggSpec& spec : fagg->aggs) {
        Value v1, v2;
        exec::AggInit(spec, &v1, &v2);
        identity.push_back(exec::AggFinalize(spec, v1, v2));
      }
      rows.push_back(std::move(identity));
    }

    if (fagg->having != nullptr) {
      std::vector<Tuple> kept;
      for (const Tuple& t : rows) {
        bool pass = false;
        if (exec::EvalPredicate(*fagg->having, t, &pass).ok() && pass) {
          kept.push_back(t);
        }
      }
      rows = std::move(kept);
    }
    if (collect != nullptr && !collect->final_projection.empty()) {
      for (Tuple& t : rows) {
        Tuple permuted;
        permuted.reserve(collect->final_projection.size());
        for (int c : collect->final_projection) {
          permuted.push_back(c >= 0 && static_cast<size_t>(c) < t.size()
                                 ? t[c]
                                 : Value::Null());
        }
        t = std::move(permuted);
      }
    }
  } else {
    rows = std::move(es.rows);
    es.rows.clear();
    if (collect != nullptr && collect->distinct) {
      std::vector<Tuple> unique;
      exec::DistinctOp distinct;
      exec::FnSink sink([&unique](const Tuple& t) { unique.push_back(t); });
      distinct.AddOutput(&sink);
      for (const Tuple& t : rows) distinct.Push(t, 0);
      rows = std::move(unique);
    }
  }

  if (collect != nullptr && collect->order_col >= 0) {
    size_t k = collect->limit >= 0 ? static_cast<size_t>(collect->limit)
                                   : rows.size();
    exec::TopKOp topk(collect->order_col, collect->order_desc, k);
    std::vector<Tuple> ordered;
    exec::FnSink sink([&ordered](const Tuple& t) { ordered.push_back(t); });
    topk.AddOutput(&sink);
    for (const Tuple& t : rows) topk.Push(t, 0);
    topk.FlushAndReset();
    rows = std::move(ordered);
  } else if (collect != nullptr && collect->limit >= 0 &&
             rows.size() > static_cast<size_t>(collect->limit)) {
    rows.resize(static_cast<size_t>(collect->limit));
  }
  return rows;
}

void QueryEngine::FinalizeEpoch(ActiveQuery* aq, uint64_t epoch,
                                bool exact_certified) {
  if (!aq->is_origin || aq->ended) return;
  // Re-check the certification at delivery time: the early finalize is
  // deferred a tick, and a late kAdmissionReject, budget trip, cancel, or
  // deadline can land in between (or arrive through a fault-plane
  // duplicate after the cover wave). A batch must never claim exact while
  // its own Completeness carries a degradation.
  if (exact_certified &&
      (!aq->shed_members.empty() || aq->cancelled || aq->deadline_expired ||
       aq->budget_tripped || !aq->budget_tripped_members.empty())) {
    exact_certified = false;
  }
  // A continuous query may race its early finalize against the result-wait
  // timer; whichever fired first already erased this epoch's state, and
  // operator[] below must not resurrect it.
  if (static_cast<int64_t>(epoch) <= aq->last_finalized_epoch) return;
  ActiveQuery::EpochState& es = aq->epochs[epoch];
  if (es.finalized) return;
  es.finalized = true;
  if (es.finalize_timer != 0) {
    sim_->Cancel(es.finalize_timer);
    es.finalize_timer = 0;
  }

  ResultBatch batch;
  batch.query_id = aq->env.query_id;
  batch.epoch = epoch;
  batch.reporting_nodes = es.reporters.size();
  batch.reporters.assign(es.reporters.begin(), es.reporters.end());
  std::sort(batch.reporters.begin(), batch.reporters.end());
  batch.completeness = BuildCompleteness(aq, epoch, exact_certified);
  batch.rows = OriginPostProcess(aq, epoch);
  aq->last_finalized_epoch =
      std::max(aq->last_finalized_epoch, static_cast<int64_t>(epoch));
  if (aq->cb && !aq->cancelled) aq->cb(batch);

  bool one_shot = aq->env.plan.every == 0;
  if (one_shot) {
    EndQuery(aq->env.query_id);
  } else {
    // Keep the query running; retire this epoch's state.
    aq->epochs.erase(epoch);
  }
}

void QueryEngine::EndQuery(uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end() || !it->second->is_origin) return;
  it->second->quiesce_task.Stop();
  if (it->second->origin_local) {
    // Never disseminated, so nothing remote to tear down.
    HandleQueryEnd(query_id);
    return;
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(BcastKind::kQueryEnd));
  w.PutVarint64(query_id);
  broadcast_->Broadcast(sim::Payload(w.Release()));  // includes local delivery
}

void QueryEngine::GcQuery(uint64_t query_id) {
  for (auto it = coverage_waits_.begin(); it != coverage_waits_.end();) {
    it = it->second.first == query_id ? coverage_waits_.erase(it)
                                      : std::next(it);
  }
  queries_.erase(query_id);
}

}  // namespace query
}  // namespace pier
