// Shared query-layer protocol surface: the engine's tuning knobs, its
// counters, the client-visible result batch, and the wire tags used by the
// engine's direct and broadcast messages. Split out of engine.h so the
// exchange layer (src/query/exchange.h) and the operator stages
// (src/query/ops/) can depend on it without pulling in the engine itself.

#ifndef PIER_QUERY_PROTOCOL_H_
#define PIER_QUERY_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/tuple.h"
#include "common/time_util.h"

namespace pier {
namespace query {

/// Per-query resource budget, enforced at the scheduler and the exchange
/// layer. 0 = unlimited. A tripped budget never silently drops the answer:
/// the member stops doing work, tells the origin via kBudgetTrip, and the
/// batch's Completeness reports budget_trips > 0 with exact = false.
struct QueryBudget {
  /// Max bytes of reliable result/partial frames a member may ship to the
  /// origin for this query.
  uint64_t max_result_bytes = 0;
  /// Max rehash-exchange puts a node may issue for this query (join/agg
  /// fan-out cap).
  uint64_t max_rehash_puts = 0;
  /// Max rows the origin accumulates in one epoch's result window.
  uint64_t max_result_rows = 0;
};

struct EngineOptions {
  /// How long the origin waits for distributed results before finalizing an
  /// epoch (the paper's demo semantics: sum over nodes *responding* in the
  /// window).
  Duration result_wait = Seconds(8);
  /// Tree aggregation: a node at depth d holds partials for
  /// agg_hold_base * (agg_assumed_depth - d) before flushing to its parent,
  /// so children flush before parents.
  Duration agg_hold_base = Millis(800);
  int agg_assumed_depth = 8;
  /// Bloom join: origin collects per-node filters for this long before
  /// redistributing the union.
  Duration bloom_wait = Seconds(4);
  size_t bloom_bits = 1 << 14;
  int bloom_hashes = 5;
  /// TTL on rehashed temp tuples (per-query exchange namespaces).
  Duration temp_ttl = Seconds(90);
  /// Recursion: the origin declares fixpoint after this long without a new
  /// result, bounded by recursion_deadline.
  Duration quiesce_window = Seconds(6);
  Duration recursion_deadline = Seconds(120);
  /// Member-side state GC delay after a query ends.
  Duration cleanup_delay = Seconds(30);
  /// Vectorized data plane: epochal scan pipelines decode store slices into
  /// column batches, evaluate compiled predicate kernels, aggregate with
  /// VectorGroupBy, and ship results/partials as column-major RowBatch
  /// frames (one message per batch instead of one per tuple). Pipelines the
  /// batch plane cannot express (joins, recursion, index cursors) fall back
  /// to the tuple path per scan — answers are identical either way.
  bool vectorized = true;
  /// Rows per batch on the vectorized path.
  uint32_t batch_size = 1024;
  /// Max rows per kResultBatch frame on the member->origin hop. A lost
  /// frame costs the whole frame (until its retransmit lands, or for good
  /// with reliable_results off): a small cap keeps the loss blast radius
  /// (and thus recall under faulty links) close to the row-at-a-time plane
  /// while still amortizing per-message framing. 0 = unbounded.
  uint32_t result_frame_rows = 4;
  // -- reliable result plane --------------------------------------------------
  /// Wrap every member->origin / member->parent result and partial frame in
  /// an acked, retried kFrame envelope with per-query monotone frame ids.
  /// Receivers dedupe by frame id, so retransmits are idempotent. Off =
  /// PR 7's fire-and-forget plane (kept for A/B tests and measurement).
  bool reliable_results = true;
  /// First retransmit after this long without an ack; subsequent attempts
  /// back off exponentially (x2) up to retry_max, each delay jittered by
  /// +/- retry_jitter to decorrelate retransmit storms across senders.
  Duration retry_initial = Millis(300);
  Duration retry_max = Seconds(2);
  /// Total send attempts per frame before it is declared lost-for-good and
  /// charged to Completeness::frames_lost. 7 attempts fit inside the
  /// default 8s result window at 20% per-hop loss with P(loss) ~ 1e-3.
  int retry_budget = 7;
  double retry_jitter = 0.25;
  // -- lifecycle --------------------------------------------------------------
  /// Default query deadline (0 = none). The origin finalizes whatever it has
  /// at issued_at + deadline, flags the batch deadline_expired, and tears
  /// the query down everywhere. Per-query override: QueryPlan::deadline.
  Duration query_deadline{0};
  /// Member-side origin-liveness lease: grace beyond a query's expected end
  /// (one-shot: issued_at + result_wait; continuous: refreshed by each
  /// epoch's plan re-broadcast) after which a member reclaims the query's
  /// stage state and exchange namespaces on its own. Protects against an
  /// origin that crashed without broadcasting kQueryEnd/kCancel.
  Duration member_lease = Seconds(20);
  // -- admission control ------------------------------------------------------
  /// Per-node live-query budget. Origins refuse Execute() with
  /// Status::Busy; members shed the plan at install time and answer with a
  /// typed kAdmissionReject instead of silently timing out.
  uint32_t max_live_queries = 256;
  /// Per-node bound on bytes sitting in unacked reliable-result outboxes.
  uint64_t max_pending_result_bytes = 8ull << 20;
  /// Fan-out budget: plans with more operators than this are refused at
  /// origin admission (a PIQL-style bounded-cost gate).
  uint32_t max_plan_operators = 64;
  // -- multi-tenant scheduler -------------------------------------------------
  /// Run epochal scans through the per-node QueryScheduler (round-robin over
  /// live queries with per-query quanta + shared-scan batching) instead of
  /// synchronously inside StartEpoch. Off = the single-tenant PR 7 path,
  /// kept for A/B tests.
  bool scheduler_enabled = true;
  /// Rows one query may consume from the store per scheduler round before
  /// the round-robin cursor moves on (fairness quantum). Served in whole
  /// batches, so the effective quantum rounds up to a batch boundary.
  uint32_t sched_quantum_rows = 2048;
  /// Delay between scheduler rounds while runnable scan work remains.
  Duration sched_round_interval = Millis(5);
  /// A materialized store sweep stays attachable to later same-table scans
  /// for this long (and only while the namespace is unmodified), so a burst
  /// of concurrent queries shares one sweep.
  Duration shared_scan_window = Millis(500);
  /// Engine-wide default budget applied when a plan ships none (0s =
  /// unlimited). Per-query override: QueryPlan::budget.
  QueryBudget default_budget;
  /// The origin refuses the `exact` certification while its overlay
  /// topology changed within this window: a freshly split (or merging)
  /// ring makes "every member reported" locally true but globally false —
  /// the minority side of a partition would otherwise certify a fraction
  /// of the answer as exact. Sized so a one-shot query issued within
  /// ~window - result_wait of a detected split can never certify before
  /// its result window closes. 0 = certify regardless (single-node tests).
  Duration certify_stability_window = Seconds(30);
};

struct EngineStats {
  uint64_t queries_issued = 0;
  uint64_t plans_received = 0;
  uint64_t scans_run = 0;
  uint64_t tuples_scanned = 0;
  uint64_t result_msgs_sent = 0;
  uint64_t result_msgs_received = 0;
  uint64_t partial_msgs_sent = 0;
  uint64_t partial_msgs_received = 0;
  /// Results/partials reaching the origin after their epoch finalized —
  /// stragglers the best-effort window dropped (they are counted, not
  /// folded into the already-delivered answer).
  uint64_t late_partials = 0;
  uint64_t rehash_puts = 0;
  uint64_t fetch_gets = 0;
  uint64_t semijoin_fetches = 0;
  uint64_t bloom_filters_sent = 0;
  uint64_t bloom_suppressed = 0;
  // -- Bloom filter-wave accounting (PR 10) ----------------------------------
  uint64_t bloom_parts_received = 0;  ///< origin: parts unioned in-window
  /// Origin: parts arriving after the bloom_wait broadcast closed the wave.
  /// They are counted, never unioned — a filter already broadcast cannot be
  /// amended, so the wave that missed them went out flagged incomplete.
  uint64_t bloom_parts_late = 0;
  uint64_t bloom_waves_complete = 0;  ///< origin: waves broadcast suppressing
  uint64_t bloom_waves_degraded = 0;  ///< origin: waves broadcast non-suppressing
  /// Member: kBloomDist never arrived (lost broadcast / partition); the
  /// fallback timer produced the full unsuppressed rehash instead.
  uint64_t bloom_dist_timeouts = 0;
  /// Member: serialized bytes of tuples a complete filter wave suppressed
  /// (traffic the Bloom strategy saved vs. the full rehash).
  uint64_t bloom_bytes_saved = 0;
  /// Member: full-tuple bytes minus key-projection bytes across semi-join
  /// rehashes (traffic the semi-join strategy saved vs. the full rehash).
  uint64_t semijoin_bytes_saved = 0;
  uint64_t recursion_expansions = 0;
  uint64_t recursion_duplicates = 0;
  // -- PHT index scans (origin-side) ----------------------------------------
  uint64_t index_scans_run = 0;      ///< cursor walks started
  uint64_t index_probes = 0;         ///< trie-node DHT gets issued
  uint64_t index_leaves = 0;         ///< leaves visited across walks
  uint64_t index_rows = 0;           ///< in-range rows emitted by cursors
  uint64_t index_early_finalizes = 0; ///< one-shot answers closed before
                                      ///< the result_wait deadline
  uint64_t index_fallbacks = 0;      ///< cursor failed or index cold ->
                                     ///< re-planned as broadcast scan
  // -- vectorized data plane -------------------------------------------------
  uint64_t batches_scanned = 0;      ///< RowBatches flushed by batch scans
  uint64_t batch_frames_sent = 0;    ///< column-major wire frames sent
  uint64_t batch_frames_received = 0;
  /// Epochal scan pipelines that requested vectorization but ran the tuple
  /// path (unsupported chain shape downstream of the scan).
  uint64_t vectorized_fallbacks = 0;
  // -- reliable result plane -------------------------------------------------
  uint64_t frames_sent = 0;           ///< kFrame envelopes first-sent
  uint64_t frames_acked = 0;          ///< acks consumed by a pending frame
  uint64_t frames_retransmitted = 0;  ///< retry sends (all frame kinds)
  uint64_t frame_bytes_retransmitted = 0;
  uint64_t frames_lost = 0;           ///< retry budget exhausted
  uint64_t frame_dupes_dropped = 0;   ///< receiver-side dedupe hits
  uint64_t epoch_reports_sent = 0;
  uint64_t epoch_reports_received = 0;
  /// One-shot epochs closed before result_wait because every expected
  /// member reported a fully-acked, loss-free epoch (the reliable plane's
  /// analogue of index_early_finalizes).
  uint64_t reliable_early_finalizes = 0;
  // -- lifecycle -------------------------------------------------------------
  uint64_t queries_cancelled = 0;        ///< user Cancel() at the origin
  uint64_t queries_deadline_expired = 0; ///< origin + member self-expiries
  uint64_t leases_reclaimed = 0;         ///< member lease fired (dead origin)
  // -- admission control -----------------------------------------------------
  uint64_t admission_refusals = 0;          ///< origin-side Execute refusals
  uint64_t plans_shed = 0;                  ///< member-side installs refused
  uint64_t admission_rejects_received = 0;  ///< origin-side kAdmissionReject
  // -- acked rehash puts -----------------------------------------------------
  uint64_t rehash_put_failures = 0;  ///< exchange puts dead after DHT retries
  uint64_t rehash_dupes_dropped = 0; ///< arrival instances deduped at stages
  // -- multi-tenant scheduler ------------------------------------------------
  uint64_t store_sweeps = 0;       ///< LocalStore sweeps materialized
  uint64_t shared_scan_hits = 0;   ///< scans served from a shared sweep
  uint64_t sched_rounds = 0;       ///< round-robin dispatch rounds run
  // -- per-query budgets -----------------------------------------------------
  uint64_t budget_trips = 0;           ///< queries that hit a budget (per node)
  uint64_t budget_frames_dropped = 0;  ///< result frames refused post-trip
  uint64_t budget_rehash_dropped = 0;  ///< rehash puts refused post-trip
  uint64_t budget_rows_dropped = 0;    ///< origin rows refused post-trip
};

/// Answer-quality accounting attached to every ResultBatch: how much of the
/// network the answer actually covers and what was lost getting it here.
/// The contract is *degrade loudly, never silently drop rows* — a batch is
/// marked `exact` only when the engine can certify nothing is missing.
struct Completeness {
  /// Members the dissemination tree confirmed covered for this epoch's plan
  /// broadcast (origin included). 0 = coverage unknown (reliable broadcast
  /// disabled or the cover wave had not returned by finalize time).
  uint64_t members_expected = 0;
  /// Members whose results (or per-epoch completion reports) reached the
  /// origin for this epoch, origin included.
  uint64_t members_reported = 0;
  /// The broadcast cover wave confirmed every reachable subtree delivered.
  bool coverage_complete = false;
  /// Frame retransmits / frames dropped after the retry budget, summed over
  /// the members that reported (plus the origin's own outbox).
  uint64_t frames_retried = 0;
  uint64_t frames_lost = 0;
  /// Members that refused the plan at admission (kAdmissionReject).
  uint64_t members_shed = 0;
  /// Nodes (members or the origin itself) that stopped work on this query
  /// because a per-query resource budget tripped. Any trip bars exactness:
  /// the rows that were not shipped are declared, never silently dropped.
  uint64_t budget_trips = 0;
  /// Bloom filter waves this query's origin had to broadcast incomplete
  /// (parts lost/late or coverage unknown at bloom_wait): those join edges
  /// ran the full rehash instead of suppressing — slower and heavier, but
  /// no rows were dropped. Any degraded wave bars exactness.
  uint64_t filter_waves_degraded = 0;
  bool cancelled = false;
  bool deadline_expired = false;
  /// Engine-certified: coverage complete, every member reported this epoch,
  /// zero frames lost, zero members shed, and every data frame members
  /// claim to have sent was admitted at the origin. Only the reliable
  /// direct-to-origin pipeline certifies; tree-aggregated and join answers
  /// stay conservatively non-exact even when they happen to be complete.
  bool exact = false;

  std::string ToString() const {
    std::string s = exact ? "exact" : "degraded";
    s += " members=" + std::to_string(members_reported) + "/" +
         std::to_string(members_expected);
    s += coverage_complete ? " covered" : " coverage-unknown";
    s += " retried=" + std::to_string(frames_retried);
    s += " lost=" + std::to_string(frames_lost);
    s += " shed=" + std::to_string(members_shed);
    if (budget_trips > 0) s += " budget-trips=" + std::to_string(budget_trips);
    if (filter_waves_degraded > 0) {
      s += " filter-waves-degraded=" + std::to_string(filter_waves_degraded);
    }
    if (cancelled) s += " cancelled";
    if (deadline_expired) s += " deadline-expired";
    return s;
  }
};

/// One epoch's worth of answers, delivered to the issuing client.
struct ResultBatch {
  uint64_t query_id = 0;
  uint64_t epoch = 0;
  /// Nodes heard from this epoch (aggregation queries: distinct reporters).
  size_t reporting_nodes = 0;
  /// Result provenance (diagnostic): the distinct hosts whose results or
  /// partials were folded into `rows`, sorted ascending. Under tree
  /// aggregation interior nodes subsume their subtrees, so this is the set
  /// of direct reporters, not every contributor. The fault testkit asserts
  /// its consistency with `reporting_nodes` and surfaces it when
  /// attributing degraded answers; answer scoring itself compares row
  /// multisets only.
  std::vector<uint32_t> reporters;
  std::vector<catalog::Tuple> rows;
  /// How complete this answer is and why (see Completeness).
  Completeness completeness;
};

/// Message types under overlay::Proto::kQuery (direct engine traffic).
enum class MsgType : uint8_t {
  kResultTuple = 1,
  kPartialAgg = 2,
  kFetchReq = 3,
  kFetchResp = 4,
  kBloomPart = 5,
  /// Column-major RowBatch frames: the batch-plane twins of kResultTuple
  /// and kPartialAgg. Payload: [qid][epoch][RowBatch] — one frame carries a
  /// whole batch of rows.
  kResultBatch = 6,
  kPartialBatch = 7,
  /// Reliable envelope: [qid][frame_id][inner message bytes]. The inner
  /// bytes are a complete direct message (kResultTuple/kPartialAgg/
  /// kResultBatch/kPartialBatch/kEpochReport). Receivers always ack —
  /// including duplicates and unknown queries, so retransmit storms die —
  /// and admit the inner message only on first sight of the frame id.
  kFrame = 8,
  /// [qid][frame_id], receiver -> sender.
  kFrameAck = 9,
  /// Member -> origin, per-epoch completion claim (sent as a control frame
  /// when the member's reliable outbox drains): [qid][epoch]
  /// [cumulative data frames sent to origin][retries][losses][flags]
  /// (flags bit 0: a per-query budget tripped on this member). The origin
  /// certifies an epoch exact only when every covered member's claim
  /// matches what it admitted and no flags are set.
  kEpochReport = 10,
  /// Member -> origin, admission shed: [qid][reason u8]. Sent instead of
  /// installing the plan when the member is over budget.
  kAdmissionReject = 11,
  /// Member -> origin, sent (as a reliable control frame) the first time a
  /// per-query budget trips on the member: [qid]. The origin folds it into
  /// Completeness::budget_trips and withholds the exact certification.
  kBudgetTrip = 12,
};

/// kAdmissionReject reasons.
enum class AdmissionReason : uint8_t {
  kLiveQueries = 1,
  kPendingBytes = 2,
};

/// Broadcast payload kinds (dissemination-tree traffic).
enum class BcastKind : uint8_t {
  kPlan = 1,
  kBloomDist = 2,
  kQueryEnd = 3,
  /// Cancellation/expiry: [qid]. Same member-side teardown as kQueryEnd
  /// (stage state and q<id>.x<n> namespaces dropped immediately, not at
  /// TTL), kept distinct so traces show *why* the query ended.
  kCancel = 4,
};

}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_PROTOCOL_H_
