// Shared query-layer protocol surface: the engine's tuning knobs, its
// counters, the client-visible result batch, and the wire tags used by the
// engine's direct and broadcast messages. Split out of engine.h so the
// exchange layer (src/query/exchange.h) and the operator stages
// (src/query/ops/) can depend on it without pulling in the engine itself.

#ifndef PIER_QUERY_PROTOCOL_H_
#define PIER_QUERY_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "catalog/tuple.h"
#include "common/time_util.h"

namespace pier {
namespace query {

struct EngineOptions {
  /// How long the origin waits for distributed results before finalizing an
  /// epoch (the paper's demo semantics: sum over nodes *responding* in the
  /// window).
  Duration result_wait = Seconds(8);
  /// Tree aggregation: a node at depth d holds partials for
  /// agg_hold_base * (agg_assumed_depth - d) before flushing to its parent,
  /// so children flush before parents.
  Duration agg_hold_base = Millis(800);
  int agg_assumed_depth = 8;
  /// Bloom join: origin collects per-node filters for this long before
  /// redistributing the union.
  Duration bloom_wait = Seconds(4);
  size_t bloom_bits = 1 << 14;
  int bloom_hashes = 5;
  /// TTL on rehashed temp tuples (per-query exchange namespaces).
  Duration temp_ttl = Seconds(90);
  /// Recursion: the origin declares fixpoint after this long without a new
  /// result, bounded by recursion_deadline.
  Duration quiesce_window = Seconds(6);
  Duration recursion_deadline = Seconds(120);
  /// Member-side state GC delay after a query ends.
  Duration cleanup_delay = Seconds(30);
  /// Vectorized data plane: epochal scan pipelines decode store slices into
  /// column batches, evaluate compiled predicate kernels, aggregate with
  /// VectorGroupBy, and ship results/partials as column-major RowBatch
  /// frames (one message per batch instead of one per tuple). Pipelines the
  /// batch plane cannot express (joins, recursion, index cursors) fall back
  /// to the tuple path per scan — answers are identical either way.
  bool vectorized = true;
  /// Rows per batch on the vectorized path.
  uint32_t batch_size = 1024;
  /// Max rows per kResultBatch frame on the member->origin hop. Result
  /// frames ride best-effort direct messages, so one lost frame costs the
  /// whole frame: a small cap keeps the loss blast radius (and thus recall
  /// under faulty links) close to the row-at-a-time plane while still
  /// amortizing per-message framing. 0 = unbounded.
  uint32_t result_frame_rows = 4;
};

struct EngineStats {
  uint64_t queries_issued = 0;
  uint64_t plans_received = 0;
  uint64_t scans_run = 0;
  uint64_t tuples_scanned = 0;
  uint64_t result_msgs_sent = 0;
  uint64_t result_msgs_received = 0;
  uint64_t partial_msgs_sent = 0;
  uint64_t partial_msgs_received = 0;
  /// Results/partials reaching the origin after their epoch finalized —
  /// stragglers the best-effort window dropped (they are counted, not
  /// folded into the already-delivered answer).
  uint64_t late_partials = 0;
  uint64_t rehash_puts = 0;
  uint64_t fetch_gets = 0;
  uint64_t semijoin_fetches = 0;
  uint64_t bloom_filters_sent = 0;
  uint64_t bloom_suppressed = 0;
  uint64_t recursion_expansions = 0;
  uint64_t recursion_duplicates = 0;
  // -- PHT index scans (origin-side) ----------------------------------------
  uint64_t index_scans_run = 0;      ///< cursor walks started
  uint64_t index_probes = 0;         ///< trie-node DHT gets issued
  uint64_t index_leaves = 0;         ///< leaves visited across walks
  uint64_t index_rows = 0;           ///< in-range rows emitted by cursors
  uint64_t index_early_finalizes = 0; ///< one-shot answers closed before
                                      ///< the result_wait deadline
  uint64_t index_fallbacks = 0;      ///< cursor failed or index cold ->
                                     ///< re-planned as broadcast scan
  // -- vectorized data plane -------------------------------------------------
  uint64_t batches_scanned = 0;      ///< RowBatches flushed by batch scans
  uint64_t batch_frames_sent = 0;    ///< column-major wire frames sent
  uint64_t batch_frames_received = 0;
  /// Epochal scan pipelines that requested vectorization but ran the tuple
  /// path (unsupported chain shape downstream of the scan).
  uint64_t vectorized_fallbacks = 0;
};

/// One epoch's worth of answers, delivered to the issuing client.
struct ResultBatch {
  uint64_t query_id = 0;
  uint64_t epoch = 0;
  /// Nodes heard from this epoch (aggregation queries: distinct reporters).
  size_t reporting_nodes = 0;
  /// Result provenance (diagnostic): the distinct hosts whose results or
  /// partials were folded into `rows`, sorted ascending. Under tree
  /// aggregation interior nodes subsume their subtrees, so this is the set
  /// of direct reporters, not every contributor. The fault testkit asserts
  /// its consistency with `reporting_nodes` and surfaces it when
  /// attributing degraded answers; answer scoring itself compares row
  /// multisets only.
  std::vector<uint32_t> reporters;
  std::vector<catalog::Tuple> rows;
};

/// Message types under overlay::Proto::kQuery (direct engine traffic).
enum class MsgType : uint8_t {
  kResultTuple = 1,
  kPartialAgg = 2,
  kFetchReq = 3,
  kFetchResp = 4,
  kBloomPart = 5,
  /// Column-major RowBatch frames: the batch-plane twins of kResultTuple
  /// and kPartialAgg. Payload: [qid][epoch][RowBatch] — one frame carries a
  /// whole batch of rows.
  kResultBatch = 6,
  kPartialBatch = 7,
};

/// Broadcast payload kinds (dissemination-tree traffic).
enum class BcastKind : uint8_t {
  kPlan = 1,
  kBloomDist = 2,
  kQueryEnd = 3,
};

}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_PROTOCOL_H_
