// QueryScheduler: the per-node multi-tenant dispatch loop for epochal scan
// work. PR 7's runtime ran every scan synchronously inside StartEpoch, so a
// node hosting many live queries served them strictly in plan-arrival order
// — one heavy scan starved every neighbor, and N concurrent queries over
// the same table walked the LocalStore N times. The scheduler fixes both:
//
//   - fairness: submitted scans join a round-robin ring and each round
//     serves at most `quantum_rows` rows per query before the cursor moves
//     on, so a storm of tenants makes progress together;
//   - shared scans: the first scan over (table, window-cutoff) materializes
//     one LocalStore sweep into column batches; later scans arriving while
//     the sweep is fresh (namespace version unchanged, within
//     `shared_window`) attach to the same batches instead of re-walking the
//     store. Each consumer applies its own compiled filter/project kernels
//     to the shared stream, so answers are byte-identical to a solo scan.
//
// The scheduler knows nothing about queries beyond the ScanWork contract:
// the runtime hands it a feed callback (the same batch pipeline StartEpoch
// used to drive) plus a completion callback, and the engine injects an
// abort probe so ended or budget-tripped queries stop consuming quanta.

#ifndef PIER_QUERY_SCHEDULER_H_
#define PIER_QUERY_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/time_util.h"
#include "dht/storage.h"
#include "exec/batch.h"
#include "query/protocol.h"
#include "sim/event_queue.h"

namespace pier {
namespace query {

/// One epochal scan pass, submitted by ops::QueryRuntime::StartEpoch.
struct ScanWork {
  uint64_t qid = 0;
  uint64_t epoch = 0;
  std::string table;
  catalog::Schema schema;
  /// Continuous-query window (0 = whole live snapshot). Rows stored before
  /// now - window are excluded from the sweep.
  Duration window = 0;
  /// Count served batches in EngineStats::batches_scanned (the vectorized
  /// pipeline does; the tuple-adapter fallback does not, matching the
  /// legacy ScanStage accounting).
  bool count_batches = false;
  /// The query's own pipeline: filter/project/agg kernels plus the emit
  /// sink. Receives each shared batch (as a private copy — feeds mutate
  /// selections); returns false to stop the scan early (LIMIT pushdown).
  std::function<bool(exec::RowBatch&)> feed;
  /// Fires exactly once when the scan finishes: `complete` is true on a
  /// normal end (sweep exhausted or feed declined more), false when the
  /// engine's abort probe cut it short.
  std::function<void(bool complete)> done;
  /// Engine-injected probe: true = stop serving this scan (query ended or
  /// a per-query budget tripped). May be null (never aborts).
  std::function<bool()> aborted;
};

/// Per-node round-robin scan scheduler with shared-sweep batching. Owned by
/// the QueryEngine; single-threaded like everything in the sim.
class QueryScheduler {
 public:
  struct Options {
    uint32_t quantum_rows = 2048;
    Duration round_interval = Millis(5);
    Duration shared_window = Millis(500);
    /// Rows per materialized sweep batch (the engine's batch_size, so
    /// mid-batch LIMIT pushdown sees the same granularity as a solo scan).
    uint32_t batch_rows = 1024;
  };
  /// Schedules an engine-owned timer (auto-cancelled with the engine).
  using ScheduleFn =
      std::function<sim::TimerId(Duration, std::function<void()>)>;

  QueryScheduler(sim::Simulation* sim, dht::Dht* dht, EngineStats* stats,
                 ScheduleFn schedule, Options opts)
      : sim_(sim), dht_(dht), stats_(stats), schedule_(std::move(schedule)),
        opts_(opts) {}

  /// Enqueues one scan pass. Materializes or attaches to a shared sweep
  /// immediately (the store may mutate before the first round fires; the
  /// sweep pins this scan's snapshot). A newer-epoch submit for the same
  /// query silently supersedes any queued older-epoch scan.
  void Submit(ScanWork work);

  /// Drops every queued scan for `qid` without firing its callbacks. Must
  /// be called before the query's runtime is destroyed — queued feeds
  /// capture stage state.
  void DropQuery(uint64_t qid);

  /// Engine shutdown: drops all tasks and cached sweeps; no callbacks fire.
  void Stop();

  size_t pending_scans() const { return tasks_.size(); }

 private:
  /// One materialized LocalStore pass, shared by reference across
  /// concurrent same-table scans.
  struct Sweep {
    std::string table;
    TimePoint cutoff = 0;
    uint64_t store_version = 0;
    TimePoint created_at = 0;
    catalog::Schema schema;
    std::vector<exec::RowBatch> batches;
    size_t total_rows = 0;
  };

  struct Task {
    ScanWork work;
    std::shared_ptr<Sweep> sweep;
    size_t next_batch = 0;
  };

  std::shared_ptr<Sweep> AcquireSweep(const ScanWork& work);
  void ArmRound(Duration delay);
  void RunRound();
  /// Serves up to quantum_rows to one task; returns true when the task is
  /// finished (done fired) and should be removed.
  bool ServeTask(Task* task);

  sim::Simulation* sim_;
  dht::Dht* dht_;
  EngineStats* stats_;
  ScheduleFn schedule_;
  Options opts_;

  std::deque<Task> tasks_;
  size_t cursor_ = 0;
  std::vector<std::shared_ptr<Sweep>> recent_sweeps_;
  bool round_armed_ = false;
  bool stopped_ = false;
};

}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_SCHEDULER_H_
