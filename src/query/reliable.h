// Building blocks of the reliable result plane (PR 8): per-query frame-id
// dedupe for receivers, a pending-frame outbox for senders, and the jittered
// exponential backoff schedule shared by both the engine's frame retries and
// the broadcast layer's hop retries. These are plain data structures — the
// engine owns all timers and wire I/O — so they unit-test without a network.

#ifndef PIER_QUERY_RELIABLE_H_
#define PIER_QUERY_RELIABLE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/backoff.h"
#include "common/time_util.h"
#include "sim/network.h"

namespace pier {
namespace query {

/// Receiver-side frame-id dedupe: frame ids are per-(query, sender) and
/// monotone from 1, so a contiguous watermark plus a sparse out-of-order set
/// stays O(gaps). Admit() returns true exactly once per id.
class FrameDedupe {
 public:
  bool Admit(uint64_t frame_id);
  uint64_t admitted() const { return admitted_; }

 private:
  // Ids <= max_contig_ are all seen; sparse_ holds seen ids above it.
  uint64_t max_contig_ = 0;
  std::set<uint64_t> sparse_;
  uint64_t admitted_ = 0;
  // Bound sparse growth against hostile/garbage frame ids: past the cap we
  // admit without recording (dedupe degrades, memory does not).
  static constexpr size_t kMaxSparse = 4096;
};

/// Sender-side pending-frame ledger: one per active query. Frames are
/// removed on ack or after the retry budget is spent; `control` frames
/// (epoch reports) are excluded from the data-drain accounting that gates
/// the member's per-epoch completion report.
///
/// Teardown contract: the engine must Clear() the outbox — refunding
/// pending_bytes() against its admission counter first — on EVERY terminal
/// path of the owning query (end, cancel, deadline self-expiry, lease
/// reclaim, engine stop), and must never Enqueue into an ended query's
/// outbox. The testkit audits both via
/// QueryEngine::CheckReliableAccounting.
class ReliableOutbox {
 public:
  struct Frame {
    sim::HostId to = 0;
    std::string bytes;  // the inner direct message, starting with its MsgType
    bool control = false;
    int attempts = 1;  // sends so far, including the first
  };

  /// Registers a frame and returns its id (monotone from 1).
  uint64_t Enqueue(sim::HostId to, std::string bytes, bool control);
  Frame* Get(uint64_t frame_id);
  /// Removes an acked frame. Returns false if it was not pending (dup ack).
  bool Ack(uint64_t frame_id);
  /// Drops a frame whose retry budget is exhausted; data frames are charged
  /// to `lost`.
  void MarkLost(uint64_t frame_id);
  void Clear();

  bool data_drained() const { return data_pending_ == 0; }
  size_t pending_bytes() const { return pending_bytes_; }
  size_t pending_frames() const { return pending_.size(); }

  // Cumulative counters the member's kEpochReport carries (data frames only;
  // monotone, so the origin can merge reordered reports by max).
  uint64_t retried = 0;
  uint64_t lost = 0;
  /// Data frames enqueued whose destination was the query origin — the
  /// member's cumulative claim the origin checks its admitted count against.
  uint64_t data_to_origin = 0;

 private:
  uint64_t next_id_ = 1;
  std::map<uint64_t, Frame> pending_;
  size_t pending_bytes_ = 0;
  size_t data_pending_ = 0;
};

}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_RELIABLE_H_
