// QueryPlan: the distributed plan PIER disseminates to every node.
//
// The executable representation is the opgraph (query/opgraph.h): a DAG of
// typed operator nodes wired by exchanges, interpreted by every node's
// QueryRuntime. A plan also keeps the flat "classic" fields describing the
// four canonical shapes (select/project, aggregate, binary join,
// recursion); plans built through the algebraic API fill only those, and
// EnsureGraph() canonicalizes them into the equivalent degenerate opgraph
// before execution. Planner-built plans (multi-way joins, in-network
// aggregation over joins) carry a composed graph directly.
//
// Column references inside expressions are bound to tuple layouts at
// planning time:
//   - `where`               -> the scan schema (full concat for joins)
//   - `projections`         -> same layout as `where`
//   - `having`              -> the aggregate output layout
//                              [group values..., aggregate results...]
//   - `order_col`           -> the final output layout
//
// Plans serialize; every node rebuilds an identical plan from bytes.

#ifndef PIER_QUERY_PLAN_H_
#define PIER_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/serialize.h"
#include "common/time_util.h"
#include "exec/agg.h"
#include "exec/expr.h"
#include "query/opgraph.h"
#include "query/protocol.h"

namespace pier {
namespace query {

/// The four canonical plan shapes of the algebraic API (each canonicalizes
/// into a degenerate opgraph; composed graphs have no PlanKind).
enum class PlanKind : uint8_t {
  kSelectProject = 0,  ///< scan -> filter -> project, results to origin
  kAggregate = 1,      ///< scan -> filter -> partial agg -> in-network tree
  kJoin = 2,           ///< equi-join (binary via `kind`; n-way via graph)
  kRecursive = 3,      ///< transitive closure over an edge table
};

const char* PlanKindName(PlanKind k);

/// One distributed query. Plain data; built by the planner or directly via
/// the algebraic API.
struct QueryPlan {
  PlanKind kind = PlanKind::kSelectProject;

  /// The executable dataflow. Empty for algebraic-API plans until
  /// EnsureGraph() derives it from the classic fields below.
  OpGraph graph;
  /// True when `graph` came from EnsureGraph(): derived graphs are NOT
  /// serialized (the classic fields already carry everything, and every
  /// member re-derives the identical graph at install), so legacy-shape
  /// broadcasts don't pay twice for expressions and schemas. Composed
  /// planner graphs always travel.
  bool graph_is_derived = false;

  // -- Source relation(s) ---------------------------------------------------
  std::string table;            ///< left/only relation (DHT namespace)
  catalog::Schema scan_schema;  ///< its schema (join: left schema)

  // -- Row pipeline ----------------------------------------------------------
  exec::ExprPtr where;  ///< predicate; null = accept all
  std::vector<exec::ExprPtr> projections;  ///< empty = identity
  std::vector<std::string> output_names;   ///< names for projections
  bool distinct = false;

  // -- Aggregation (kAggregate; or post-join aggregation at the origin) -----
  std::vector<int> group_cols;
  std::vector<exec::AggSpec> aggs;
  exec::ExprPtr having;
  AggStrategy agg_strategy = AggStrategy::kTree;
  /// Applied at the origin after aggregation: indices into the
  /// [group values..., aggregate results...] layout, reordering to the
  /// SELECT-list order. Empty = identity.
  std::vector<int> final_projection;

  // -- Ordering / limiting (applied at the origin) ---------------------------
  int order_col = -1;
  bool order_desc = false;
  int64_t limit = -1;

  // -- Join (kJoin) -----------------------------------------------------------
  JoinStrategy join_strategy = JoinStrategy::kSymmetricHash;
  std::string right_table;
  catalog::Schema right_schema;
  std::vector<int> left_key_cols;
  std::vector<int> right_key_cols;

  // -- Continuous execution ---------------------------------------------------
  Duration every = 0;   ///< 0 = one-shot; else re-evaluate per period
  Duration window = 0;  ///< 0 = whole live snapshot; else items newer than
                        ///< `window` at scan time

  // -- Lifecycle --------------------------------------------------------------
  /// Per-query deadline override (0 = use EngineOptions::query_deadline).
  /// Origin-local only — the wire carries the resolved absolute deadline in
  /// PlanEnvelope::deadline, so this field is not serialized.
  Duration deadline = 0;

  /// Per-query resource budget (0-dimensions fall back to
  /// EngineOptions::default_budget). Travels with the plan so every member
  /// enforces the same caps.
  QueryBudget budget;

  // -- Recursion (kRecursive) -------------------------------------------------
  int src_col = 0;      ///< edge source column in `scan_schema`
  int dst_col = 1;      ///< edge destination column
  int max_hops = 16;    ///< expansion bound
  /// Outer predicate over the closure output layout (src, dst, hops);
  /// `where` filters base edges instead.
  exec::ExprPtr outer_where;

  /// Builds the degenerate opgraph equivalent to the classic fields. The
  /// four legacy shapes reproduce their historical dataflow byte-for-byte.
  OpGraph CanonicalGraph() const;
  /// Fills `graph` from CanonicalGraph() when empty (idempotent).
  void EnsureGraph();

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, QueryPlan* out);

  /// One-line summary ("plan{join table=... }"); the opgraph's ToString()
  /// is the full EXPLAIN rendering.
  std::string ToString() const;
};

/// What actually travels in the dissemination broadcast.
struct PlanEnvelope {
  uint64_t query_id = 0;
  uint32_t origin = 0;       ///< host that issued the query
  TimePoint issued_at = 0;   ///< origin virtual time (epoch alignment)
  /// Absolute expiry (0 = none). Members self-expire shortly after this
  /// even if the origin's kCancel/kQueryEnd broadcast never reaches them.
  TimePoint deadline = 0;
  QueryPlan plan;

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, PlanEnvelope* out);
};

}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_PLAN_H_
