// QueryPlan: the distributed plan PIER disseminates to every node.
//
// A plan fixes the shape of the distributed dataflow (which the engine
// instantiates as local operator chains) plus all bound expressions.
// Column references inside expressions are bound to tuple layouts at
// planning time:
//   - `where`               -> the scan schema (left++right concat for joins)
//   - `projections`         -> same layout as `where`
//   - `having`              -> the aggregate output layout
//                              [group values..., aggregate results...]
//   - `order_col`           -> the final output layout
//
// Plans serialize; every node rebuilds an identical plan from bytes.

#ifndef PIER_QUERY_PLAN_H_
#define PIER_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/serialize.h"
#include "common/time_util.h"
#include "exec/agg.h"
#include "exec/expr.h"

namespace pier {
namespace query {

/// Distributed plan shapes the engine executes.
enum class PlanKind : uint8_t {
  kSelectProject = 0,  ///< scan -> filter -> project, results to origin
  kAggregate = 1,      ///< scan -> filter -> partial agg -> in-network tree
  kJoin = 2,           ///< binary equi-join (strategy below)
  kRecursive = 3,      ///< transitive closure over an edge table
};

/// The four distributed join algorithms from the PIER design papers.
enum class JoinStrategy : uint8_t {
  kSymmetricHash = 0,  ///< rehash both relations into a temp namespace
  kFetchMatches = 1,   ///< probe the already-partitioned inner by DHT get
  kSymmetricSemi = 2,  ///< rehash keys+ids only, fetch full tuples on match
  kBloom = 3,          ///< pre-filter both sides with exchanged Bloom filters
};

/// How partial aggregates reach the query origin.
enum class AggStrategy : uint8_t {
  kDirect = 0,  ///< every node sends partials straight to the origin
  kTree = 1,    ///< partials combine hop-by-hop up the dissemination tree
};

const char* PlanKindName(PlanKind k);
const char* JoinStrategyName(JoinStrategy s);
const char* AggStrategyName(AggStrategy s);

/// One distributed query. Plain data; built by the planner or directly via
/// the algebraic API.
struct QueryPlan {
  PlanKind kind = PlanKind::kSelectProject;

  // -- Source relation(s) ---------------------------------------------------
  std::string table;            ///< left/only relation (DHT namespace)
  catalog::Schema scan_schema;  ///< its schema (join: left schema)

  // -- Row pipeline ----------------------------------------------------------
  exec::ExprPtr where;  ///< predicate; null = accept all
  std::vector<exec::ExprPtr> projections;  ///< empty = identity
  std::vector<std::string> output_names;   ///< names for projections
  bool distinct = false;

  // -- Aggregation (kAggregate; or post-join aggregation at the origin) -----
  std::vector<int> group_cols;
  std::vector<exec::AggSpec> aggs;
  exec::ExprPtr having;
  AggStrategy agg_strategy = AggStrategy::kTree;
  /// Applied at the origin after aggregation: indices into the
  /// [group values..., aggregate results...] layout, reordering to the
  /// SELECT-list order. Empty = identity.
  std::vector<int> final_projection;

  // -- Ordering / limiting (applied at the origin) ---------------------------
  int order_col = -1;
  bool order_desc = false;
  int64_t limit = -1;

  // -- Join (kJoin) -----------------------------------------------------------
  JoinStrategy join_strategy = JoinStrategy::kSymmetricHash;
  std::string right_table;
  catalog::Schema right_schema;
  std::vector<int> left_key_cols;
  std::vector<int> right_key_cols;

  // -- Continuous execution ---------------------------------------------------
  Duration every = 0;   ///< 0 = one-shot; else re-evaluate per period
  Duration window = 0;  ///< 0 = whole live snapshot; else items newer than
                        ///< `window` at scan time

  // -- Recursion (kRecursive) -------------------------------------------------
  int src_col = 0;      ///< edge source column in `scan_schema`
  int dst_col = 1;      ///< edge destination column
  int max_hops = 16;    ///< expansion bound
  /// Outer predicate over the closure output layout (src, dst, hops);
  /// `where` filters base edges instead.
  exec::ExprPtr outer_where;

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, QueryPlan* out);

  /// Multi-line EXPLAIN-style description.
  std::string ToString() const;
};

/// What actually travels in the dissemination broadcast.
struct PlanEnvelope {
  uint64_t query_id = 0;
  uint32_t origin = 0;       ///< host that issued the query
  TimePoint issued_at = 0;   ///< origin virtual time (epoch alignment)
  QueryPlan plan;

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, PlanEnvelope* out);
};

}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_PLAN_H_
