// Wire frames for the Bloom-join filter wave.
//
// The wave is a three-step choreography per kBloom join edge:
//   1. every member scans its slices once and sends a kBloomPart frame
//      (its two per-side key filters) to the query origin;
//   2. the origin unions the parts it received inside the bloom_wait
//      window and *accounts* them against the members the plan broadcast's
//      cover wave confirmed reached;
//   3. the origin broadcasts one kBloomDist frame carrying the unioned
//      filters plus the accounting verdict. Members suppress non-matching
//      tuples only when `complete` is true — an incomplete wave (lost or
//      late parts, unknown coverage) degrades that edge to the full rehash
//      so a missing filter can never silently drop rows.
//
// Both frames are parsed from hostile bytes (any node can send them), so
// deserialization is bounds-checked and fuzzed in fuzz_deserialize_test.cc.
// The MsgType / BcastKind tag byte is written by the engine, not here.

#ifndef PIER_QUERY_BLOOM_WIRE_H_
#define PIER_QUERY_BLOOM_WIRE_H_

#include <cstdint>

#include "common/bloom.h"
#include "common/serialize.h"
#include "common/status.h"

namespace pier {
namespace query {

/// Member -> origin: one node's contribution to a join edge's filter wave.
/// Payload of MsgType::kBloomPart (after the type byte).
struct BloomPartFrame {
  uint64_t qid = 0;
  /// Opgraph node id of the kBloom join this part belongs to — routing is
  /// per-edge, not per-query, so a multiway graph can carry a Bloom edge
  /// next to plain hash edges.
  uint32_t join_node = 0;
  BloomFilter left{64, 1};
  BloomFilter right{64, 1};

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, BloomPartFrame* out);
};

/// Origin -> everyone (dissemination tree): the unioned filters and the
/// wave's accounting verdict. Payload of BcastKind::kBloomDist (after the
/// kind byte).
struct BloomDistFrame {
  uint64_t qid = 0;
  uint32_t join_node = 0;
  /// Accounting snapshot at broadcast time: members the plan broadcast's
  /// cover wave confirmed (origin included) vs. distinct members whose
  /// parts were unioned (origin included).
  uint64_t parts_expected = 0;
  uint64_t parts_reported = 0;
  /// True only when coverage returned complete and every expected member's
  /// part made the union. False => receivers must NOT suppress.
  bool complete = false;
  BloomFilter left{64, 1};
  BloomFilter right{64, 1};

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, BloomDistFrame* out);
};

}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_BLOOM_WIRE_H_
