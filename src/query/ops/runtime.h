// QueryRuntime: one installed query's live dataflow on one node.
//
// Built from the plan's opgraph at install time, it instantiates the
// stages this node participates in (joins, partial aggregation, recursion),
// compiles the kLocal edges into direct call chains (filter/project fused
// into their producer's emit path), and routes engine events — exchange
// arrivals, relayed partials, fetch/Bloom traffic, timers — to the right
// stage. The engine owns one runtime per active query and destroys it at
// query GC.

#ifndef PIER_QUERY_OPS_RUNTIME_H_
#define PIER_QUERY_OPS_RUNTIME_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "query/ops/agg_stage.h"
#include "query/ops/index_scan_stage.h"
#include "query/ops/join_stage.h"
#include "query/ops/recursive_stage.h"
#include "query/ops/scan_stage.h"
#include "query/ops/stage.h"
#include "query/plan.h"

namespace pier {
namespace query {
namespace ops {

class QueryRuntime {
 public:
  /// `env` must outlive the runtime and carry a validated, non-empty graph.
  QueryRuntime(StageHost* host, const PlanEnvelope* env, bool is_origin);

  /// Builds stages and emit chains; fails on graph shapes the runtime
  /// cannot execute (never crashes on hostile graphs).
  Status Init();

  // -- classification --------------------------------------------------------
  /// True for scan->...->origin pipelines that re-run per epoch
  /// (select/project and scan aggregation); joins and recursion set up once.
  bool epochal() const { return epochal_; }
  bool has_recurse() const { return recurse_ != nullptr; }
  bool has_partial_agg() const { return agg_ != nullptr; }
  const OpNode* final_agg_node() const { return final_agg_; }
  const OpNode* collect_node() const { return collect_; }
  /// Exchange namespaces this query consumes on this node (subscribe at
  /// install, drop at query end).
  std::vector<std::string> Namespaces() const;

  // -- engine entry points ---------------------------------------------------
  /// Origin-only, at Execute time (before the plan broadcast): pre-install
  /// setup such as the Bloom collection window.
  void InitOrigin();
  /// One-time member setup for non-epochal graphs (joins, recursion).
  void Start();
  /// Runs one epoch of every epochal scan pipeline.
  void StartEpoch(uint64_t epoch);
  void OnArrival(const std::string& ns, const dht::StoredItem& item);
  void OnRemotePartial(uint64_t epoch, const catalog::Tuple& t);
  void OnFetchReq(uint32_t from, Reader* r);
  void OnFetchResp(Reader* r);
  /// Filter-wave frames route per-edge by the frame's join node id (a
  /// multiway graph can carry a Bloom edge next to plain hash edges); a
  /// frame naming a non-Bloom node is dropped, never crashes.
  void OnBloomPart(uint32_t from, const BloomPartFrame& frame);
  void OnBloomDist(BloomDistFrame frame);
  Stage* stage(uint32_t node_id);

 private:
  EmitFn BuildEmitFrom(uint32_t producer_id);
  /// Batch-plane twin of BuildEmitFrom: compiles the local chain downstream
  /// of `producer_id` into a RowBatch pipeline (kernel filters narrowing
  /// selections, vectorized projection, VectorGroupBy partial aggregation,
  /// one-frame-per-batch origin delivery). Returns an empty function when
  /// the chain has a shape the batch plane cannot express (the caller falls
  /// back to the tuple path and counts it).
  BatchEmitFn BuildBatchEmitFrom(uint32_t producer_id);
  /// Scan-side column pruning: the columns of scan `scan_id`'s layout its
  /// downstream chain actually reads. Empty = all columns (either the full
  /// rows ship to the origin, or pruning could not be proven safe).
  std::vector<int> NeededColumnsFor(uint32_t scan_id) const;
  /// Packages one epochal scan as scheduler work: the compiled batch chain
  /// (or the tuple-fallback adapter) as the feed, and an epoch-completion
  /// callback as done.
  ScanWork BuildScanWork(uint32_t scan_id, uint64_t epoch);
  /// One scheduled scan of `epoch` finished; when the last one does, runs
  /// the end-of-scan work (agg EndScan, the host's scans-done gate).
  void OnEpochScanDone(uint64_t epoch);

  StageHost* host_;
  const PlanEnvelope* env_;
  const OpGraph* graph_;
  bool is_origin_;
  uint64_t qid_;

  bool epochal_ = false;
  /// LIMIT pushdown into epochal scans: stop after this many rows reached
  /// the origin exchange (-1 = unlimited).
  int64_t local_cap_ = -1;
  uint64_t current_epoch_ = 0;
  int64_t epoch_sent_ = 0;
  /// Scheduler path: scans of current_epoch_ still draining.
  size_t pending_epoch_scans_ = 0;

  std::vector<std::unique_ptr<Stage>> stages_;  // indexed by graph node id
  std::vector<JoinStage*> joins_;               // in topological order
  AggStage* agg_ = nullptr;
  RecursiveStage* recurse_ = nullptr;
  const OpNode* final_agg_ = nullptr;
  const OpNode* collect_ = nullptr;
  std::vector<uint32_t> epochal_scans_;
  /// kIndexScan nodes; their stages exist (and run) only at the origin —
  /// members receiving an index graph install an inert runtime.
  std::vector<uint32_t> index_scans_;
  std::map<std::string, uint32_t> ns_to_stage_;
  /// Publisher-scoped instance ids already admitted per exchange namespace:
  /// acked+retried rehash puts can deliver twice (the ack, not the store,
  /// is what got lost), and join state must not double-count.
  std::map<std::string, std::set<uint64_t>> arrival_seen_;
};

}  // namespace ops
}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_OPS_RUNTIME_H_
