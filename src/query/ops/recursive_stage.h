// RecursiveStage: semi-naive transitive closure over an edge relation (the
// kRecurse opgraph node).
//
// Reach tuples (src, dst, hops) live in a per-query DHT namespace keyed on
// the canonical (src, dst) pair, so the pair's owner deduplicates
// re-derivations in-network. Each new pair is reported downstream (the
// runtime attaches the outer filter/projection chain) and expanded by
// probing the edge table — which must be partitioned on the source column —
// for edges leaving `dst`.

#ifndef PIER_QUERY_OPS_RECURSIVE_STAGE_H_
#define PIER_QUERY_OPS_RECURSIVE_STAGE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "query/exchange.h"
#include "query/ops/scan_stage.h"
#include "query/ops/stage.h"

namespace pier {
namespace query {
namespace ops {

class RecursiveStage : public Stage {
 public:
  /// `node` is the kRecurse OpNode; `edge_scan` the kScan node feeding it.
  RecursiveStage(StageHost* host, uint64_t qid, uint32_t node_id,
                 const OpNode* node, const OpNode* edge_scan,
                 Duration window);

  /// Receives deduplicated (src, dst, hops) tuples.
  void SetDownstream(EmitFn fn) { downstream_ = std::move(fn); }

  const std::string& ns() const { return exchange_.ns(); }

  /// Seeds the closure: every local edge becomes a 1-hop path.
  void Setup();

  /// A reach tuple arriving at this node as the (src, dst) owner.
  void OnArrival(const dht::StoredItem& item);

 private:
  void PublishReach(const catalog::Tuple& reach, bool is_expansion);
  void ExpandFrom(const Value& src, const Value& via, int64_t hops,
                  const std::vector<dht::DhtItem>& edges);

  StageHost* host_;
  uint64_t qid_;
  uint32_t node_id_;
  const OpNode* node_;
  const OpNode* edge_scan_;
  Duration window_;
  /// Reach tuples travel like any rehash traffic, keyed on the canonical
  /// (src, dst) resource; only the namespace name is bespoke.
  RehashExchange exchange_;
  EmitFn downstream_;
  std::unordered_set<std::string> reach_seen_;  // dedup by canonical resource
};

}  // namespace ops
}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_OPS_RECURSIVE_STAGE_H_
