#include "query/ops/join_stage.h"

namespace pier {
namespace query {
namespace ops {

using catalog::Tuple;

namespace {
const std::string kNoNamespace;
/// Origin: bloom_wait elapsed — account the wave and broadcast the union.
constexpr uint64_t kBloomBroadcastToken = 0;
/// Every node: the distribution never arrived — produce the full rehash.
constexpr uint64_t kBloomFallbackToken = 1;

/// Layout of the semi-join's rehashed key projection:
/// [key columns (typed from the scan's schema)..., host, row id].
catalog::Schema SemiProjectionSchema(const catalog::Schema& scan_schema,
                                     const std::vector<int>& keys) {
  std::vector<catalog::Column> cols;
  cols.reserve(keys.size() + 2);
  for (int c : keys) {
    if (c >= 0 && static_cast<size_t>(c) < scan_schema.num_columns()) {
      cols.push_back(scan_schema.column(static_cast<size_t>(c)));
    } else {
      cols.push_back(catalog::Column{"key", ValueType::kNull});
    }
  }
  cols.push_back(catalog::Column{"semi_host", ValueType::kInt64});
  cols.push_back(catalog::Column{"semi_row", ValueType::kInt64});
  return catalog::Schema(scan_schema.relation(), std::move(cols));
}

}  // namespace

JoinStage::JoinStage(StageHost* host, uint64_t qid, uint32_t node_id,
                     const OpNode* node, const OpNode* left_scan,
                     const OpNode* right_scan, Duration window,
                     bool is_origin, uint32_t origin_host)
    : host_(host),
      qid_(qid),
      node_id_(node_id),
      node_(node),
      left_scan_(left_scan),
      right_scan_(right_scan),
      window_(window),
      is_origin_(is_origin),
      origin_host_(origin_host) {
  if (node_->strategy != JoinStrategy::kFetchMatches) {
    exchange_ = std::make_unique<RehashExchange>(host_, qid_, node_id_);
  }
}

const std::string& JoinStage::ns() const {
  return exchange_ != nullptr ? exchange_->ns() : kNoNamespace;
}

void JoinStage::InitOrigin() {
  if (node_->strategy != JoinStrategy::kBloom) return;
  const EngineOptions& o = host_->engine_options();
  collect_left_ =
      std::make_unique<BloomFilter>(o.bloom_bits, o.bloom_hashes);
  collect_right_ =
      std::make_unique<BloomFilter>(o.bloom_bits, o.bloom_hashes);
  host_->ScheduleStageTimer(o.bloom_wait, qid_, node_id_,
                            kBloomBroadcastToken);
}

void JoinStage::OnTimer(uint64_t token) {
  if (token == kBloomBroadcastToken) {
    // Bloom collection window over: close the wave, account the parts
    // against the plan broadcast's confirmed coverage, and redistribute
    // the union network-wide with the verdict.
    if (!is_origin_ || collect_left_ == nullptr || wave_closed_) return;
    wave_closed_ = true;
    uint64_t expected = 0;
    bool covered = false;
    host_->QueryCoverage(qid_, &expected, &covered);
    // +1: the origin's own scan contributed directly to the collectors.
    uint64_t reported = static_cast<uint64_t>(part_senders_.size()) + 1;
    bool complete = covered && expected > 0 && reported >= expected;
    host_->BroadcastBloomFilters(qid_, node_id_, expected, reported,
                                 complete, *collect_left_, *collect_right_);
    return;
  }
  if (token == kBloomFallbackToken) {
    // No kBloomDist by the deadline (lost broadcast, partitioned origin):
    // this node's slices must still reach the rendezvous. Produce the full
    // unsuppressed rehash — the degraded-but-lossless baseline.
    if (produced_ || node_->strategy != JoinStrategy::kBloom) return;
    ++host_->mutable_stats()->bloom_dist_timeouts;
    ProduceFromScans(/*bloom_phase2=*/true);
  }
}

void JoinStage::Setup() {
  if (node_->strategy != JoinStrategy::kFetchMatches) {
    // Rendezvous role: join rehashed arrivals incrementally.
    std::vector<int> lkeys, rkeys;
    if (node_->strategy == JoinStrategy::kSymmetricSemi) {
      // Rehashed key-projections: [key values..., host, row id].
      for (size_t i = 0; i < node_->left_keys.size(); ++i) {
        lkeys.push_back(static_cast<int>(i));
        rkeys.push_back(static_cast<int>(i));
      }
    } else {
      lkeys = node_->left_keys;
      rkeys = node_->right_keys;
    }
    shj_ = flow_.Add<exec::SymmetricHashJoinOp>(lkeys, rkeys, nullptr);
    exec::FnSink* sink = flow_.Add<exec::FnSink>(
        [this](const Tuple& t) { HandleJoinOutput(t); });
    flow_.Connect(shj_, sink);
    // Catch-up: tuples rehashed by fast nodes may land here before the
    // plan broadcast did; they are waiting in the exchange namespace.
    host_->dht()->ForEachLocalReadable(ns(),
                                       [this](const dht::StoredItem& item) {
      OnArrival(item);
      return true;
    });
  }

  if (node_->strategy == JoinStrategy::kBloom) {
    BloomPhase1();
    // Backstop for a lost distribution: twice the collection window gives
    // the origin's bloom_wait timer plus the broadcast hop ample slack,
    // and still lands well inside any sane result window.
    host_->ScheduleStageTimer(2 * host_->engine_options().bloom_wait, qid_,
                              node_id_, kBloomFallbackToken);
  } else {
    ProduceFromScans(/*bloom_phase2=*/false);
  }
}

void JoinStage::BloomPhase1() {
  const EngineOptions& o = host_->engine_options();
  BloomFilter left(o.bloom_bits, o.bloom_hashes);
  BloomFilter right(o.bloom_bits, o.bloom_hashes);
  // One pass per side: the same scan builds the filter AND caches the rows
  // phase 2 publishes. Besides halving the scan cost, this pins the filter
  // and the published snapshot to the same instant — a tuple arriving
  // between two separate passes used to be suppressed by a filter that had
  // never seen its key.
  if (left_scan_ != nullptr) {
    ScanStage scan(host_, left_scan_, window_);
    scan.Run([&](const Tuple& t) {
      left.Add(catalog::HashTupleCols(t, node_->left_keys));
      cached_left_.push_back(t);
      return true;
    });
  }
  if (right_scan_ != nullptr) {
    ScanStage scan(host_, right_scan_, window_);
    scan.Run([&](const Tuple& t) {
      right.Add(catalog::HashTupleCols(t, node_->right_keys));
      cached_right_.push_back(t);
      return true;
    });
  }
  scans_cached_ = true;
  if (is_origin_) {
    if (collect_left_ != nullptr) (void)collect_left_->UnionWith(left);
    if (collect_right_ != nullptr) (void)collect_right_->UnionWith(right);
    return;
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kBloomPart));
  BloomPartFrame frame;
  frame.qid = qid_;
  frame.join_node = node_id_;
  frame.left = std::move(left);
  frame.right = std::move(right);
  frame.Serialize(&w);
  ++host_->mutable_stats()->bloom_filters_sent;
  host_->SendQueryBytes(origin_host_, w);
}

void JoinStage::OnBloomPart(uint32_t from, const BloomPartFrame& frame) {
  if (!is_origin_ || collect_left_ == nullptr) return;
  if (wave_closed_) {
    // The union this part belongs to has already been broadcast; folding
    // it in now would vouch for keys nobody will ever see. The wave that
    // missed it went out flagged incomplete, so no suppression happened.
    ++host_->mutable_stats()->bloom_parts_late;
    return;
  }
  // A geometry-mismatched filter can only ADD bits (UnionWith refuses it),
  // so a partial union is harmless; but such a part is not accounted.
  bool ok = collect_left_->UnionWith(frame.left).ok();
  ok = collect_right_->UnionWith(frame.right).ok() && ok;
  if (!ok) return;
  part_senders_.insert(from);
  ++host_->mutable_stats()->bloom_parts_received;
}

void JoinStage::OnBloomDist(BloomDistFrame frame) {
  if (node_->strategy != JoinStrategy::kBloom || produced_) return;
  if (frame.complete) {
    dist_left_ = std::make_unique<BloomFilter>(std::move(frame.left));
    dist_right_ = std::make_unique<BloomFilter>(std::move(frame.right));
  }
  // An incomplete wave leaves the dist filters null: phase 2 publishes
  // everything (full rehash). Degraded, never lossy.
  ProduceFromScans(/*bloom_phase2=*/true);
}

void JoinStage::ProduceFromScans(bool bloom_phase2) {
  std::vector<Tuple> left, right;
  if (scans_cached_) {
    left = std::move(cached_left_);
    right = std::move(cached_right_);
    cached_left_.clear();
    cached_right_.clear();
    scans_cached_ = false;
  } else {
    if (left_scan_ != nullptr) {
      ScanStage scan(host_, left_scan_, window_);
      scan.Run([&](const Tuple& t) {
        left.push_back(t);
        return true;
      });
    }
    if (right_scan_ != nullptr) {
      ScanStage scan(host_, right_scan_, window_);
      scan.Run([&](const Tuple& t) {
        right.push_back(t);
        return true;
      });
    }
  }

  switch (node_->strategy) {
    case JoinStrategy::kBloom:
      if (!bloom_phase2) return;  // phase 2 starts when filters arrive
      produced_ = true;
      [[fallthrough]];
    case JoinStrategy::kSymmetricHash: {
      auto publish_side = [&](std::vector<Tuple>& rows,
                              const std::vector<int>& keys,
                              const BloomFilter* suppress,
                              const OpNode* scan, int side) {
        if (bloom_phase2 && suppress != nullptr) {
          auto kept = rows.begin();
          for (Tuple& t : rows) {
            if (!suppress->MayContain(catalog::HashTupleCols(t, keys))) {
              ++host_->mutable_stats()->bloom_suppressed;
              host_->mutable_stats()->bloom_bytes_saved +=
                  catalog::TupleToBytes(t).size();
              continue;
            }
            if (&*kept != &t) *kept = std::move(t);  // self-move would clear t
            ++kept;
          }
          rows.erase(kept, rows.end());
        }
        if (rows.empty()) return;
        if (host_->engine_options().vectorized && scan != nullptr) {
          // One column-major frame per rendezvous owner per scan, instead
          // of one DHT put per tuple.
          exchange_->PublishBatch(side, keys, scan->schema, rows);
          return;
        }
        for (const Tuple& t : rows) exchange_->Publish(side, keys, t);
      };
      publish_side(left, node_->left_keys, dist_right_.get(), left_scan_, 0);
      publish_side(right, node_->right_keys, dist_left_.get(), right_scan_,
                   1);
      break;
    }
    case JoinStrategy::kSymmetricSemi: {
      auto rehash_keys = [&](std::vector<Tuple>& rows,
                             const std::vector<int>& keys,
                             const OpNode* scan, int side) {
        std::vector<int> leading;
        for (size_t i = 0; i < keys.size(); ++i) {
          leading.push_back(static_cast<int>(i));
        }
        std::vector<Tuple> projs;
        projs.reserve(rows.size());
        uint64_t saved = 0;
        for (Tuple& t : rows) {
          uint64_t row_id = next_row_id_++;
          Tuple proj;
          proj.reserve(keys.size() + 2);
          for (int c : keys) {
            proj.push_back(c >= 0 && static_cast<size_t>(c) < t.size()
                               ? t[c]
                               : Value::Null());
          }
          proj.push_back(Value::Int64(host_->self_host()));
          proj.push_back(Value::Int64(static_cast<int64_t>(row_id)));
          size_t full = catalog::TupleToBytes(t).size();
          size_t slim = catalog::TupleToBytes(proj).size();
          if (full > slim) saved += full - slim;
          row_registry_.emplace(row_id, std::move(t));
          projs.push_back(std::move(proj));
        }
        host_->mutable_stats()->semijoin_bytes_saved += saved;
        if (host_->engine_options().vectorized && scan != nullptr &&
            !projs.empty()) {
          // Key projections ride the columnar plane exactly like the hash
          // path: one frame per rendezvous owner instead of one put per
          // row (this used to fall back to tuple-at-a-time silently).
          exchange_->PublishBatch(side, leading,
                                  SemiProjectionSchema(scan->schema, keys),
                                  projs);
          return;
        }
        for (const Tuple& p : projs) exchange_->Publish(side, leading, p);
      };
      rehash_keys(left, node_->left_keys, left_scan_, 0);
      rehash_keys(right, node_->right_keys, right_scan_, 1);
      break;
    }
    case JoinStrategy::kFetchMatches: {
      for (const Tuple& t : left) {
        std::string resource =
            catalog::ResourceForCols(t, node_->left_keys);
        ++host_->mutable_stats()->fetch_gets;
        Tuple probe = t;
        StageHost* host = host_;
        uint64_t qid = qid_;
        uint32_t node_id = node_id_;
        host_->dht()->Get(
            right_scan_->table, resource,
            [host, qid, node_id, probe](Status s,
                                        std::vector<dht::DhtItem> items) {
              if (!s.ok()) return;
              host->PostToStage(qid, node_id, [&](Stage* stage) {
                static_cast<JoinStage*>(stage)->ResolveFetchMatches(probe,
                                                                    items);
              });
            });
      }
      break;
    }
  }
}

void JoinStage::ResolveFetchMatches(const Tuple& probe,
                                    const std::vector<dht::DhtItem>& items) {
  for (const dht::DhtItem& item : items) {
    Tuple rt;
    if (!catalog::TupleFromBytes(item.value, &rt).ok()) continue;
    // Verify true key equality (resources are hashes).
    bool equal = true;
    for (size_t i = 0; i < node_->left_keys.size(); ++i) {
      int lc = node_->left_keys[i];
      int rc = node_->right_keys[i];
      if (lc < 0 || static_cast<size_t>(lc) >= probe.size() || rc < 0 ||
          static_cast<size_t>(rc) >= rt.size()) {
        equal = false;
        break;
      }
      const Value& lv = probe[lc];
      const Value& rv = rt[rc];
      if (lv.is_null() || rv.is_null() || lv.Compare(rv) != 0) {
        equal = false;
        break;
      }
    }
    if (!equal) continue;
    Tuple joined = probe;
    joined.insert(joined.end(), rt.begin(), rt.end());
    HandleJoinOutput(joined);
  }
}

void JoinStage::PublishUpstream(int side, const Tuple& t) {
  if (exchange_ == nullptr) return;
  exchange_->Publish(side, side == 0 ? node_->left_keys : node_->right_keys,
                     t);
}

void JoinStage::OnArrival(const dht::StoredItem& item) {
  if (shj_ == nullptr) return;
  int side = 0;
  if (RehashExchange::IsBatchFrame(item)) {
    exec::RowBatch b;
    if (!RehashExchange::DecodeBatchArrival(item, &side, &b).ok()) return;
    ++host_->mutable_stats()->batch_frames_received;
    Tuple t;
    for (size_t i = 0; i < b.num_rows(); ++i) {
      b.ToTuple(i, &t);
      shj_->Push(t, side);
    }
    return;
  }
  Tuple t;
  if (!RehashExchange::DecodeArrival(item, &side, &t).ok()) return;
  shj_->Push(t, side);
}

void JoinStage::HandleJoinOutput(const Tuple& joined) {
  size_t k = node_->left_keys.size();
  if (node_->strategy == JoinStrategy::kSymmetricSemi &&
      joined.size() == 2 * (k + 2)) {
    // Matched key-projections: fetch the full tuples from both owners.
    // Layout: [lkeys(k), lhost, lrow, rkeys(k), rhost, rrow].
    int64_t lhost = 0, lrow = 0, rhost = 0, rrow = 0;
    if (!joined[k].AsInt64(&lhost).ok() ||
        !joined[k + 1].AsInt64(&lrow).ok() ||
        !joined[2 * k + 2].AsInt64(&rhost).ok() ||
        !joined[2 * k + 3].AsInt64(&rrow).ok()) {
      return;
    }
    uint64_t match_id = next_match_id_++;
    pending_matches_.emplace(match_id, PendingMatch{});
    auto send_fetch = [&](int64_t host, int64_t row, uint8_t side) {
      Writer w;
      w.PutU8(static_cast<uint8_t>(MsgType::kFetchReq));
      w.PutVarint64(qid_);
      w.PutVarint64(match_id);
      w.PutU8(side);
      w.PutVarint64(static_cast<uint64_t>(row));
      w.PutFixed32(host_->self_host());
      ++host_->mutable_stats()->semijoin_fetches;
      host_->SendQueryBytes(static_cast<uint32_t>(host), w);
    };
    send_fetch(lhost, lrow, 0);
    send_fetch(rhost, rrow, 1);
    return;
  }
  if (downstream_) downstream_(joined);
}

void JoinStage::OnFetchReq(uint32_t /*from*/, Reader* r) {
  uint64_t match_id = 0, row_id = 0;
  uint8_t side = 0;
  uint32_t reply_to = 0;
  if (!r->GetVarint64(&match_id).ok() || !r->GetU8(&side).ok() ||
      !r->GetVarint64(&row_id).ok() || !r->GetFixed32(&reply_to).ok()) {
    return;
  }
  auto row = row_registry_.find(row_id);
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kFetchResp));
  w.PutVarint64(qid_);
  w.PutVarint64(match_id);
  w.PutU8(side);
  bool found = row != row_registry_.end();
  w.PutBool(found);
  if (found) catalog::SerializeTuple(row->second, &w);
  host_->SendQueryBytes(reply_to, w);
}

void JoinStage::OnFetchResp(Reader* r) {
  uint64_t match_id = 0;
  uint8_t side = 0;
  bool found = false;
  if (!r->GetVarint64(&match_id).ok() || !r->GetU8(&side).ok() ||
      !r->GetBool(&found).ok()) {
    return;
  }
  auto pm = pending_matches_.find(match_id);
  if (pm == pending_matches_.end()) return;
  if (!found) {
    pending_matches_.erase(pm);
    return;
  }
  Tuple t;
  if (!catalog::DeserializeTuple(r, &t).ok()) return;
  if (side == 0) {
    pm->second.left = std::move(t);
    pm->second.have_left = true;
  } else {
    pm->second.right = std::move(t);
    pm->second.have_right = true;
  }
  if (pm->second.have_left && pm->second.have_right) {
    Tuple joined = pm->second.left;
    joined.insert(joined.end(), pm->second.right.begin(),
                  pm->second.right.end());
    pending_matches_.erase(pm);
    // Route through the standard full-row path (residual + project).
    if (downstream_) downstream_(joined);
  }
}

}  // namespace ops
}  // namespace query
}  // namespace pier
