#include "query/ops/runtime.h"

#include <algorithm>
#include <memory>

#include "exec/kernels.h"

namespace pier {
namespace query {
namespace ops {

using catalog::Tuple;

namespace {

/// Collects every column index a bound expression reads (via Expr::Info()).
void CollectExprColumns(const exec::Expr* e, std::vector<int>* out) {
  if (e == nullptr) return;
  exec::ExprInfo info = e->Info();
  if (info.kind == exec::ExprInfo::Kind::kColumn && info.column >= 0) {
    out->push_back(info.column);
  }
  CollectExprColumns(info.left, out);
  CollectExprColumns(info.right, out);
}

}  // namespace

QueryRuntime::QueryRuntime(StageHost* host, const PlanEnvelope* env,
                           bool is_origin)
    : host_(host),
      env_(env),
      graph_(&env->plan.graph),
      is_origin_(is_origin),
      qid_(env->query_id) {}

Status QueryRuntime::Init() {
  PIER_RETURN_IF_ERROR(graph_->Validate());
  stages_.resize(graph_->size());

  bool has_join = false, has_recurse = false;
  for (const OpNode& n : graph_->nodes) {
    has_join |= n.type == OpType::kJoin;
    has_recurse |= n.type == OpType::kRecurse;
  }
  epochal_ = !has_join && !has_recurse;

  for (uint32_t id = 0; id < graph_->size(); ++id) {
    const OpNode& n = graph_->nodes[id];
    switch (n.type) {
      case OpType::kJoin: {
        const OpNode* left = &graph_->nodes[n.inputs[0]];
        const OpNode* right = &graph_->nodes[n.inputs[1]];
        const OpNode* left_scan = left->type == OpType::kScan ? left : nullptr;
        const OpNode* right_scan =
            right->type == OpType::kScan ? right : nullptr;
        if (left_scan == nullptr && left->type != OpType::kJoin) {
          return Status::InvalidArgument("join left input must be scan/join");
        }
        if (right_scan == nullptr) {
          return Status::InvalidArgument(
              "join right input must be a scan (joins chain left-deep)");
        }
        if (n.strategy != JoinStrategy::kSymmetricHash &&
            left_scan == nullptr) {
          return Status::InvalidArgument(
              "chained joins require the symmetric-hash strategy");
        }
        auto stage = std::make_unique<JoinStage>(
            host_, qid_, id, &n, left_scan, right_scan, env_->plan.window,
            is_origin_, env_->origin);
        joins_.push_back(stage.get());
        if (!stage->ns().empty()) ns_to_stage_[stage->ns()] = id;
        stages_[id] = std::move(stage);
        break;
      }
      case OpType::kPartialAgg: {
        if (agg_ != nullptr) {
          return Status::InvalidArgument("multiple partial-agg nodes");
        }
        auto stage = std::make_unique<AggStage>(host_, qid_, id, &n,
                                                is_origin_, !epochal_);
        agg_ = stage.get();
        stages_[id] = std::move(stage);
        break;
      }
      case OpType::kRecurse: {
        const OpNode* edge = &graph_->nodes[n.inputs[0]];
        if (edge->type != OpType::kScan) {
          return Status::InvalidArgument("recurse input must be a scan");
        }
        // The recursion stage indexes edge tuples by these columns raw; a
        // hostile broadcast must fail Init, not crash every installer.
        int width = static_cast<int>(edge->schema.num_columns());
        if (n.src_col < 0 || n.src_col >= width || n.dst_col < 0 ||
            n.dst_col >= width) {
          return Status::InvalidArgument("recurse column out of range");
        }
        auto stage = std::make_unique<RecursiveStage>(host_, qid_, id, &n,
                                                      edge, env_->plan.window);
        recurse_ = stage.get();
        ns_to_stage_[stage->ns()] = id;
        stages_[id] = std::move(stage);
        break;
      }
      case OpType::kFinalAgg:
        final_agg_ = &n;
        break;
      case OpType::kCollect:
        collect_ = &n;
        break;
      case OpType::kScan: {
        int cons = graph_->ConsumerOf(id);
        if (cons >= 0) {
          OpType ct = graph_->nodes[cons].type;
          // Scans feeding joins or recursion are driven by those stages;
          // the rest are epoch-driven pipelines.
          if (ct != OpType::kJoin && ct != OpType::kRecurse) {
            epochal_scans_.push_back(id);
          }
        }
        break;
      }
      case OpType::kIndexScan: {
        // The cursor's rows materialize at the origin only; they can feed
        // the local filter/project chain and origin collection, never a
        // distributed stage.
        for (int cons = graph_->ConsumerOf(id); cons >= 0;
             cons = graph_->ConsumerOf(static_cast<uint32_t>(cons))) {
          OpType ct = graph_->nodes[cons].type;
          if (ct == OpType::kJoin || ct == OpType::kRecurse ||
              ct == OpType::kPartialAgg) {
            return Status::InvalidArgument(
                "index scan cannot feed distributed operators");
          }
        }
        index_scans_.push_back(id);
        if (is_origin_) {
          stages_[id] =
              std::make_unique<IndexScanStage>(host_, qid_, id, &n);
        }
        break;
      }
      default:
        break;
    }
  }
  if (epochal_ && epochal_scans_.empty() && index_scans_.empty()) {
    return Status::InvalidArgument("graph has no executable source");
  }

  // LIMIT pushdown: first-k is first-k only without global ordering,
  // dedup, or aggregation.
  if (epochal_ && collect_ != nullptr && collect_->limit >= 0 &&
      !collect_->distinct && collect_->order_col < 0 &&
      final_agg_ == nullptr) {
    local_cap_ = collect_->limit;
  }

  // Wire downstream chains for streaming producers.
  for (JoinStage* js : joins_) {
    // A join's node id is recoverable from its namespace map entry; walk
    // the graph instead to stay simple.
    for (uint32_t id = 0; id < graph_->size(); ++id) {
      if (stages_[id].get() == js) js->SetDownstream(BuildEmitFrom(id));
    }
  }
  if (recurse_ != nullptr) {
    for (uint32_t id = 0; id < graph_->size(); ++id) {
      if (stages_[id].get() == recurse_) {
        recurse_->SetDownstream(BuildEmitFrom(id));
      }
    }
  }
  return Status::OK();
}

EmitFn QueryRuntime::BuildEmitFrom(uint32_t producer_id) {
  const OpNode& n = graph_->nodes[producer_id];
  switch (n.out) {
    case ExchangeKind::kToOrigin: {
      if (epochal_) {
        return [this](const Tuple& t) {
          host_->DeliverResult(qid_, current_epoch_, t);
          if (local_cap_ < 0) return true;
          return ++epoch_sent_ < local_cap_;
        };
      }
      return [this](const Tuple& t) {
        host_->DeliverResult(qid_, 0, t);
        return true;
      };
    }
    case ExchangeKind::kRehash: {
      int cons = graph_->ConsumerOf(producer_id);
      if (cons < 0 || graph_->nodes[cons].type != OpType::kJoin) {
        return [](const Tuple&) { return true; };
      }
      JoinStage* js = static_cast<JoinStage*>(stages_[cons].get());
      int side = graph_->nodes[cons].inputs[0] == producer_id ? 0 : 1;
      return [js, side](const Tuple& t) {
        js->PublishUpstream(side, t);
        return true;
      };
    }
    case ExchangeKind::kTree:
      // Tree routing happens inside AggStage; a raw producer can't emit
      // into a tree edge.
      return [](const Tuple&) { return true; };
    case ExchangeKind::kLocal:
      break;
  }

  int cons_id = graph_->ConsumerOf(producer_id);
  if (cons_id < 0) {
    return [](const Tuple&) { return true; };
  }
  const OpNode& c = graph_->nodes[cons_id];
  switch (c.type) {
    case OpType::kFilter: {
      EmitFn next = BuildEmitFrom(cons_id);
      exec::ExprPtr pred = c.predicate;
      return [pred, next](const Tuple& t) {
        bool pass = false;
        if (!exec::EvalPredicate(*pred, t, &pass).ok() || !pass) return true;
        return next(t);
      };
    }
    case OpType::kProject: {
      EmitFn next = BuildEmitFrom(cons_id);
      std::vector<exec::ExprPtr> exprs = c.exprs;
      return [exprs, next](const Tuple& t) {
        Tuple out;
        out.reserve(exprs.size());
        for (const auto& e : exprs) {
          Value v;
          if (!e->Eval(t, &v).ok()) v = Value::Null();
          out.push_back(std::move(v));
        }
        return next(out);
      };
    }
    case OpType::kPartialAgg: {
      AggStage* as = static_cast<AggStage*>(stages_[cons_id].get());
      if (epochal_) {
        return [as](const Tuple& t) { return as->PushRaw(t); };
      }
      return [as](const Tuple& t) { return as->PushStreaming(t); };
    }
    default:
      // Origin-side nodes (final-agg, collect) are fed through exchanges,
      // never local member edges.
      return [](const Tuple&) { return true; };
  }
}

BatchEmitFn QueryRuntime::BuildBatchEmitFrom(uint32_t producer_id) {
  const OpNode& n = graph_->nodes[producer_id];
  switch (n.out) {
    case ExchangeKind::kToOrigin: {
      if (!epochal_) return nullptr;  // the batch plane is epochal-only
      return [this](exec::RowBatch& b) {
        if (local_cap_ >= 0) {
          int64_t room = local_cap_ - epoch_sent_;
          if (room <= 0) return false;
          // LIMIT pushdown mid-batch: the tail past the cap is never
          // delivered, exactly like the tuple sink stopping at row `cap`.
          if (static_cast<int64_t>(b.ActiveRows()) > room) {
            b.TruncateLive(static_cast<size_t>(room));
          }
        }
        epoch_sent_ += static_cast<int64_t>(b.ActiveRows());
        host_->DeliverResultBatch(qid_, current_epoch_, b);
        return local_cap_ < 0 || epoch_sent_ < local_cap_;
      };
    }
    case ExchangeKind::kRehash:
    case ExchangeKind::kTree:
      // Rehash targets (joins) and tree edges are fed per-tuple elsewhere.
      return nullptr;
    case ExchangeKind::kLocal:
      break;
  }

  int cons_id = graph_->ConsumerOf(producer_id);
  if (cons_id < 0) {
    return [](exec::RowBatch&) { return true; };
  }
  const OpNode& c = graph_->nodes[cons_id];
  switch (c.type) {
    case OpType::kFilter: {
      BatchEmitFn next = BuildBatchEmitFrom(cons_id);
      if (!next) return nullptr;
      std::shared_ptr<const exec::CompiledExpr> kernel =
          exec::CompiledExpr::Compile(c.predicate);
      return [kernel, next](exec::RowBatch& b) {
        exec::Bitmap keep;
        kernel->EvalSelection(b, &keep);
        exec::NarrowSelection(&b, keep);
        if (b.ActiveRows() == 0) return true;
        return next(b);
      };
    }
    case OpType::kProject: {
      BatchEmitFn next = BuildBatchEmitFrom(cons_id);
      if (!next) return nullptr;
      auto kernels = std::make_shared<
          std::vector<std::unique_ptr<exec::CompiledExpr>>>();
      for (const auto& e : c.exprs) {
        kernels->push_back(exec::CompiledExpr::Compile(e));
      }
      return [kernels, next](exec::RowBatch& b) {
        // Kernels evaluate physical rows; compact survivors first so the
        // projected batch holds exactly the live set.
        exec::RowBatch in = b.has_selection() ? b.Compact() : std::move(b);
        size_t rows = in.num_rows();
        std::vector<exec::Column> cols;
        cols.reserve(kernels->size());
        exec::Bitmap err;
        for (const auto& kernel : *kernels) {
          exec::Column col;
          kernel->EvalColumn(in, &col, &err);
          if (!err.none()) {
            // Rows whose scalar evaluation would error project as NULL,
            // matching the tuple chain.
            exec::Column fixed(col.kind());
            for (size_t i = 0; i < rows; ++i) {
              if (err.Get(i)) {
                fixed.AppendNull();
              } else {
                fixed.AppendFrom(col, i);
              }
            }
            col = std::move(fixed);
          }
          cols.push_back(std::move(col));
        }
        exec::RowBatch out =
            exec::RowBatch::FromColumns(std::move(cols), rows);
        return next(out);
      };
    }
    case OpType::kPartialAgg: {
      if (!epochal_) return nullptr;
      AggStage* as = static_cast<AggStage*>(stages_[cons_id].get());
      return [as](exec::RowBatch& b) { return as->PushRawBatch(b); };
    }
    default:
      // Origin-side nodes (final-agg, collect) are fed through exchanges,
      // never local member edges.
      return [](exec::RowBatch&) { return true; };
  }
}

std::vector<int> QueryRuntime::NeededColumnsFor(uint32_t scan_id) const {
  std::vector<int> needed;
  uint32_t id = scan_id;
  while (true) {
    const OpNode& n = graph_->nodes[id];
    if (n.out == ExchangeKind::kToOrigin) {
      // Full scan-layout rows ship to the origin: every column is read.
      return {};
    }
    if (n.out != ExchangeKind::kLocal) return {};
    int cons = graph_->ConsumerOf(id);
    if (cons < 0) return {};
    const OpNode& c = graph_->nodes[cons];
    if (c.type == OpType::kFilter) {
      CollectExprColumns(c.predicate.get(), &needed);
      id = static_cast<uint32_t>(cons);
      continue;  // the filter preserves the layout; keep walking
    }
    if (c.type == OpType::kProject) {
      // Downstream of a projection the layout changes; only the projected
      // expressions read scan columns.
      for (const auto& e : c.exprs) CollectExprColumns(e.get(), &needed);
      break;
    }
    if (c.type == OpType::kPartialAgg) {
      for (int g : c.group_cols) needed.push_back(g);
      for (const exec::AggSpec& a : c.aggs) {
        if (a.col >= 0) needed.push_back(a.col);
      }
      break;
    }
    return {};  // unknown consumer: decode everything
  }
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  return needed;  // empty (e.g. bare COUNT(*)) still means "all" downstream
}

std::vector<std::string> QueryRuntime::Namespaces() const {
  std::vector<std::string> out;
  for (const auto& [ns, id] : ns_to_stage_) out.push_back(ns);
  return out;
}

void QueryRuntime::InitOrigin() {
  for (JoinStage* js : joins_) js->InitOrigin();
}

void QueryRuntime::Start() {
  for (JoinStage* js : joins_) js->Setup();
  if (recurse_ != nullptr) recurse_->Setup();
}

void QueryRuntime::StartEpoch(uint64_t epoch) {
  current_epoch_ = epoch;
  epoch_sent_ = 0;
  if (agg_ != nullptr) agg_->BeginEpoch(epoch);
  const EngineOptions& opts = host_->engine_options();
  if (opts.scheduler_enabled) {
    // Multi-tenant path: hand each scan pass to the node's QueryScheduler
    // and finish the epoch (EndScan + the engine's scans-done gate) only
    // when the last one completes. Queries with no epochal scans (pure
    // index plans, join graphs) complete the gate immediately.
    pending_epoch_scans_ = epochal_scans_.size();
    if (pending_epoch_scans_ == 0) {
      if (agg_ != nullptr) agg_->EndScan();
      host_->OnEpochScansDone(qid_, epoch);
    } else {
      for (uint32_t id : epochal_scans_) {
        host_->SubmitScan(BuildScanWork(id, epoch));
      }
    }
  } else {
    for (uint32_t id : epochal_scans_) {
      ScanStage scan(host_, &graph_->nodes[id], env_->plan.window);
      if (opts.vectorized) {
        BatchEmitFn bemit = BuildBatchEmitFrom(id);
        if (bemit) {
          scan.RunBatch(opts.batch_size, NeededColumnsFor(id), bemit);
          continue;
        }
        ++host_->mutable_stats()->vectorized_fallbacks;
      }
      scan.Run(BuildEmitFrom(id));
    }
    if (agg_ != nullptr) agg_->EndScan();
    host_->OnEpochScansDone(qid_, epoch);
  }
  // Index scans run at the origin only and complete asynchronously within
  // the epoch's result window.
  if (is_origin_) {
    for (uint32_t id : index_scans_) {
      static_cast<IndexScanStage*>(stages_[id].get())
          ->RunEpoch(BuildEmitFrom(id));
    }
  }
}

ScanWork QueryRuntime::BuildScanWork(uint32_t scan_id, uint64_t epoch) {
  const OpNode& node = graph_->nodes[scan_id];
  ScanWork work;
  work.qid = qid_;
  work.epoch = epoch;
  work.table = node.table;
  work.schema = node.schema;
  work.window = env_->plan.window;
  const EngineOptions& opts = host_->engine_options();
  BatchEmitFn bemit;
  if (opts.vectorized) bemit = BuildBatchEmitFrom(scan_id);
  if (bemit) {
    work.count_batches = true;
    work.feed = std::move(bemit);
  } else {
    if (opts.vectorized) ++host_->mutable_stats()->vectorized_fallbacks;
    // Tuple-plane chain fed from the shared batch stream: box each live row
    // back out. Slower, but answers are identical — the same fallback
    // contract the legacy path keeps.
    EmitFn emit = BuildEmitFrom(scan_id);
    work.feed = [this, emit](exec::RowBatch& b) {
      catalog::Tuple t;
      for (size_t i = 0; i < b.ActiveRows(); ++i) {
        b.ToTuple(b.RowId(i), &t);
        if (!emit(t)) return false;
      }
      return true;
    };
  }
  work.done = [this, epoch](bool) { OnEpochScanDone(epoch); };
  return work;
}

void QueryRuntime::OnEpochScanDone(uint64_t epoch) {
  // Stale completions (a superseded epoch's scan draining late) must not
  // double-close the current epoch.
  if (epoch != current_epoch_ || pending_epoch_scans_ == 0) return;
  if (--pending_epoch_scans_ == 0) {
    if (agg_ != nullptr) agg_->EndScan();
    host_->OnEpochScansDone(qid_, epoch);
  }
}

void QueryRuntime::OnArrival(const std::string& ns,
                             const dht::StoredItem& item) {
  auto it = ns_to_stage_.find(ns);
  if (it == ns_to_stage_.end()) return;
  Stage* s = stages_[it->second].get();
  if (s == nullptr) return;
  // Acked rehash puts are retried; when the ack (not the store) was what
  // got lost, the same publisher-scoped instance arrives again. Admit each
  // instance once.
  if (!arrival_seen_[ns].insert(item.key.instance).second) {
    ++host_->mutable_stats()->rehash_dupes_dropped;
    return;
  }
  const OpNode& n = graph_->nodes[it->second];
  if (n.type == OpType::kJoin) {
    static_cast<JoinStage*>(s)->OnArrival(item);
  } else if (n.type == OpType::kRecurse) {
    static_cast<RecursiveStage*>(s)->OnArrival(item);
  }
}

void QueryRuntime::OnRemotePartial(uint64_t epoch, const Tuple& t) {
  if (agg_ != nullptr) {
    agg_->OnRemotePartial(epoch, t);
    return;
  }
  // No aggregation stage on this graph: forward straight to the origin.
  host_->DeliverPartial(qid_, epoch, t, ExchangeKind::kToOrigin);
}

void QueryRuntime::OnFetchReq(uint32_t from, Reader* r) {
  for (JoinStage* js : joins_) {
    if (js->strategy() == JoinStrategy::kSymmetricSemi) {
      js->OnFetchReq(from, r);
      return;
    }
  }
}

void QueryRuntime::OnFetchResp(Reader* r) {
  for (JoinStage* js : joins_) {
    if (js->strategy() == JoinStrategy::kSymmetricSemi) {
      js->OnFetchResp(r);
      return;
    }
  }
}

void QueryRuntime::OnBloomPart(uint32_t from, const BloomPartFrame& frame) {
  if (frame.join_node >= graph_->size() ||
      graph_->nodes[frame.join_node].type != OpType::kJoin ||
      graph_->nodes[frame.join_node].strategy != JoinStrategy::kBloom) {
    return;
  }
  Stage* s = stage(frame.join_node);
  if (s != nullptr) static_cast<JoinStage*>(s)->OnBloomPart(from, frame);
}

void QueryRuntime::OnBloomDist(BloomDistFrame frame) {
  if (frame.join_node >= graph_->size() ||
      graph_->nodes[frame.join_node].type != OpType::kJoin ||
      graph_->nodes[frame.join_node].strategy != JoinStrategy::kBloom) {
    return;
  }
  Stage* s = stage(frame.join_node);
  if (s != nullptr) static_cast<JoinStage*>(s)->OnBloomDist(std::move(frame));
}

Stage* QueryRuntime::stage(uint32_t node_id) {
  if (node_id >= stages_.size()) return nullptr;
  return stages_[node_id].get();
}

}  // namespace ops
}  // namespace query
}  // namespace pier
