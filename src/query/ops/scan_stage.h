// ScanStage: the leaf of every opgraph — one relation's local slice on this
// node. PIER's "lscan": primaries only (replicas would double count),
// windowed for continuous queries, soft-failing on undecodable rows.

#ifndef PIER_QUERY_OPS_SCAN_STAGE_H_
#define PIER_QUERY_OPS_SCAN_STAGE_H_

#include "query/ops/stage.h"

namespace pier {
namespace query {
namespace ops {

class ScanStage : public Stage {
 public:
  /// `node` must be a kScan OpNode and outlive the stage. `window` is the
  /// plan's continuous-query window (0 = whole live snapshot).
  ScanStage(StageHost* host, const OpNode* node, Duration window)
      : host_(host), node_(node), window_(window) {}

  /// Runs one scan pass, pushing each decoded row into `emit`. Stops early
  /// when `emit` returns false (LIMIT pushdown).
  void Run(const EmitFn& emit);

  /// Batch-plane scan pass: decodes the slice straight into column batches
  /// of up to `batch_size` rows and flushes each into `emit`. `needed_cols`
  /// enables scan-side column pruning (empty = decode everything); rows the
  /// tuple path would skip (malformed bytes, width mismatch) are skipped
  /// identically. Stops at the first `emit` returning false.
  void RunBatch(size_t batch_size, const std::vector<int>& needed_cols,
                const BatchEmitFn& emit);

 private:
  StageHost* host_;
  const OpNode* node_;
  Duration window_;
};

}  // namespace ops
}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_OPS_SCAN_STAGE_H_
