#include "query/ops/recursive_stage.h"

#include "exec/expr.h"

namespace pier {
namespace query {
namespace ops {

using catalog::Tuple;

RecursiveStage::RecursiveStage(StageHost* host, uint64_t qid,
                               uint32_t node_id, const OpNode* node,
                               const OpNode* edge_scan, Duration window)
    : host_(host),
      qid_(qid),
      node_id_(node_id),
      node_(node),
      edge_scan_(edge_scan),
      window_(window),
      exchange_(host, qid, "q" + std::to_string(qid) + ".reach") {}

void RecursiveStage::PublishReach(const Tuple& reach, bool is_expansion) {
  if (is_expansion) ++host_->mutable_stats()->recursion_expansions;
  exchange_.PublishValue(catalog::ResourceForCols(reach, {0, 1}),
                         catalog::TupleToBytes(reach));
}

void RecursiveStage::Setup() {
  // Seed: every local edge is a 1-hop path.
  ScanStage scan(host_, edge_scan_, window_);
  scan.Run([&](const Tuple& e) {
    if (node_->predicate != nullptr) {
      bool pass = false;
      if (!exec::EvalPredicate(*node_->predicate, e, &pass).ok() || !pass) {
        return true;
      }
    }
    Tuple reach{e[node_->src_col], e[node_->dst_col], Value::Int64(1)};
    PublishReach(reach, /*is_expansion=*/false);
    return true;
  });
}

void RecursiveStage::OnArrival(const dht::StoredItem& item) {
  Tuple reach;
  if (!catalog::TupleFromBytes(item.value, &reach).ok() ||
      reach.size() != 3) {
    return;
  }
  // Dedup on the canonical (src, dst) resource: this node owns this pair.
  if (!reach_seen_.insert(item.key.resource).second) {
    ++host_->mutable_stats()->recursion_duplicates;
    return;
  }

  // Report (src, dst, hops) to the origin through the outer pipeline.
  if (downstream_) downstream_(reach);

  // Expand: reach(s, d, h) ⋈ edge(d, w) -> reach(s, w, h+1).
  int64_t hops = 0;
  if (!reach[2].AsInt64(&hops).ok() || hops >= node_->max_hops) return;
  Tuple probe(static_cast<size_t>(node_->src_col) + 1);
  probe[node_->src_col] = reach[1];  // edges leaving `dst`
  std::string edge_resource =
      catalog::ResourceForCols(probe, {node_->src_col});
  StageHost* host = host_;
  uint64_t qid = qid_;
  uint32_t node_id = node_id_;
  Value src = reach[0];
  Value via = reach[1];
  host_->dht()->Get(
      edge_scan_->table, edge_resource,
      [host, qid, node_id, src, via, hops](Status s,
                                           std::vector<dht::DhtItem> items) {
        if (!s.ok()) return;
        host->PostToStage(qid, node_id, [&](Stage* stage) {
          static_cast<RecursiveStage*>(stage)->ExpandFrom(src, via, hops,
                                                          items);
        });
      });
}

void RecursiveStage::ExpandFrom(const Value& src, const Value& via,
                                int64_t hops,
                                const std::vector<dht::DhtItem>& edges) {
  for (const dht::DhtItem& item : edges) {
    Tuple edge;
    if (!catalog::TupleFromBytes(item.value, &edge).ok()) continue;
    if (edge.size() != edge_scan_->schema.num_columns()) continue;
    if (edge[node_->src_col].Compare(via) != 0) continue;
    if (node_->predicate != nullptr) {
      bool pass = false;
      if (!exec::EvalPredicate(*node_->predicate, edge, &pass).ok() ||
          !pass) {
        continue;
      }
    }
    Tuple next{src, edge[node_->dst_col], Value::Int64(hops + 1)};
    PublishReach(next, /*is_expansion=*/true);
  }
}

}  // namespace ops
}  // namespace query
}  // namespace pier
