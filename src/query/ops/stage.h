// The runtime side of the opgraph: every node of the network instantiates
// the graph's operator boxes as *stages* — live objects holding per-query
// operator state (hash tables, combiners, pending fetches) — and the engine
// routes network events to them.
//
// Stages never talk to the network directly; they go through StageHost, the
// narrow engine interface below. That keeps the choreography (who a partial
// is sent to, which timers survive a node crash) in one place and the
// operator logic testable in isolation.

#ifndef PIER_QUERY_OPS_STAGE_H_
#define PIER_QUERY_OPS_STAGE_H_

#include <functional>
#include <vector>

#include "catalog/tuple.h"
#include "common/bloom.h"
#include "dht/storage.h"
#include "exec/batch.h"
#include "query/opgraph.h"
#include "query/protocol.h"
#include "query/scheduler.h"
#include "sim/event_queue.h"

namespace pier {
namespace query {
namespace ops {

class Stage;

/// Engine services available to stages and exchanges. Implemented by
/// QueryEngine. All callbacks dispatched through the host are dropped
/// automatically once the query ends or the engine dies, so stages never
/// have to defend against their own destruction.
class StageHost {
 public:
  virtual ~StageHost() = default;

  virtual sim::Simulation* sim() = 0;
  virtual dht::Dht* dht() = 0;
  /// This node's transport address.
  virtual uint32_t self_host() const = 0;
  virtual const EngineOptions& engine_options() const = 0;
  virtual EngineStats* mutable_stats() = 0;
  /// This node's current dissemination-tree depth for `qid` (refresh
  /// broadcasts can reparent a node between epochs).
  virtual int QueryDepth(uint64_t qid) const = 0;

  /// kToOrigin exchange: routes a result row to the query origin (loops
  /// back into origin collection when this node *is* the origin).
  virtual void DeliverResult(uint64_t qid, uint64_t epoch,
                             const catalog::Tuple& t) = 0;
  /// Routes a partial aggregate. kTree sends to the dissemination-tree
  /// parent (which combines before forwarding); anything else goes straight
  /// to the origin.
  virtual void DeliverPartial(uint64_t qid, uint64_t epoch,
                              const catalog::Tuple& t, ExchangeKind route) = 0;
  /// Batch-plane kToOrigin: delivers every live row of `b` to the origin in
  /// ONE column-major wire frame (looping back row-by-row into origin
  /// collection when this node is the origin).
  virtual void DeliverResultBatch(uint64_t qid, uint64_t epoch,
                                  const exec::RowBatch& b) = 0;
  /// Batch-plane partial routing: one frame carries a whole flush worth of
  /// partial rows; the receiver unpacks and folds them exactly as if each
  /// had arrived as a kPartialAgg message.
  virtual void DeliverPartialBatch(uint64_t qid, uint64_t epoch,
                                   const std::vector<catalog::Tuple>& partials,
                                   ExchangeKind route) = 0;
  /// Raw engine-protocol message (semi-join fetch and Bloom traffic).
  virtual void SendQueryBytes(uint32_t to, const Writer& w) = 0;
  /// Bloom join: origin redistributes the unioned filters network-wide with
  /// the wave's accounting verdict (expected/reported parts, complete).
  /// Receivers suppress only on a complete wave; the engine surfaces a
  /// degraded wave in the query's Completeness.
  virtual void BroadcastBloomFilters(uint64_t qid, uint32_t node_id,
                                     uint64_t parts_expected,
                                     uint64_t parts_reported, bool complete,
                                     const BloomFilter& left,
                                     const BloomFilter& right) = 0;
  /// What the latest plan broadcast's cover wave reported for `qid`:
  /// `*members` nodes confirmed covered (origin included; 0 = wave not
  /// back yet), `*complete` = every reachable subtree delivered. The Bloom
  /// wave accounts its parts against exactly this population.
  virtual void QueryCoverage(uint64_t qid, uint64_t* members,
                             bool* complete) const = 0;

  /// Arms an engine-owned timer that invokes Stage::OnTimer(token) on graph
  /// node `node_id` of `qid` — but only if the query is still live, so
  /// stage timers can never fire on freed state.
  virtual sim::TimerId ScheduleStageTimer(Duration delay, uint64_t qid,
                                          uint32_t node_id,
                                          uint64_t token) = 0;
  virtual void CancelTimer(sim::TimerId id) = 0;

  /// Runs `fn` on graph node `node_id`'s stage iff the query is still
  /// live. The safe re-entry point for deferred work (DHT get responses)
  /// whose continuation must not outlive the query.
  virtual void PostToStage(uint64_t qid, uint32_t node_id,
                           const std::function<void(Stage*)>& fn) = 0;

  /// An origin-side index scan finished its cursor walk. `ok` means the
  /// range was fully read (possibly empty); the engine may finalize a
  /// one-shot answer early. !ok means the walk failed mid-churn or found a
  /// cold index: the engine rewrites the plan's index scans into broadcast
  /// scans and re-disseminates — the answer degrades toward the scan
  /// baseline, it never errors.
  virtual void OnIndexScanDone(uint64_t qid, bool ok) = 0;

  /// Hands one epochal scan pass to the node's QueryScheduler (round-robin
  /// quanta + shared-sweep batching). The engine injects its abort probe
  /// before enqueueing; `work.done` fires when the scan finishes.
  virtual void SubmitScan(ScanWork work) = 0;
  /// The runtime finished (or scheduled the completion of) every epochal
  /// scan for `epoch`: members may report their outbox-drain epoch claims,
  /// origins may certify. Fired on both the scheduler and the legacy
  /// synchronous path so the engine has one gate.
  virtual void OnEpochScansDone(uint64_t qid, uint64_t epoch) = 0;
  /// Budget gate for rehash-exchange fan-out: returns false (and trips the
  /// query's budget) when `n` more puts would exceed the per-query cap —
  /// the exchange drops the put and the query degrades loudly.
  virtual bool ChargeRehashPuts(uint64_t qid, uint64_t n) = 0;
};

/// A stage consuming tuples from a local edge. Returns false to stop the
/// producer early (LIMIT pushdown into scans).
using EmitFn = std::function<bool(const catalog::Tuple&)>;

/// The batch-plane twin: a stage consuming whole RowBatches from a local
/// edge. The callee may narrow or truncate the batch's selection in place;
/// returning false stops the producing scan early, exactly like EmitFn.
using BatchEmitFn = std::function<bool(exec::RowBatch&)>;

/// Base class for per-query runtime stages.
class Stage {
 public:
  virtual ~Stage() = default;
  /// Engine-dispatched timer callback (token is stage-defined).
  virtual void OnTimer(uint64_t token) { (void)token; }
};

}  // namespace ops
}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_OPS_STAGE_H_
