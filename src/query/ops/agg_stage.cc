#include "query/ops/agg_stage.h"

#include <algorithm>

namespace pier {
namespace query {
namespace ops {

using catalog::Tuple;

AggStage::AggStage(StageHost* host, uint64_t qid, uint32_t node_id,
                   const OpNode* node, bool is_origin, bool streaming)
    : host_(host),
      qid_(qid),
      node_id_(node_id),
      node_(node),
      is_origin_(is_origin),
      streaming_(streaming),
      route_(node->out) {}

Duration AggStage::HoldDelay() const {
  const EngineOptions& o = host_->engine_options();
  int levels_above =
      std::max(1, o.agg_assumed_depth - host_->QueryDepth(qid_));
  return o.agg_hold_base * levels_above;
}

void AggStage::DeliverAll(uint64_t epoch,
                          const std::vector<Tuple>& partials) {
  // One column-major frame per flush instead of one message per group; the
  // receiver unpacks and folds row by row, so combine semantics are
  // untouched.
  host_->DeliverPartialBatch(qid_, epoch, partials, route_);
}

// -- scan-fed ---------------------------------------------------------------

void AggStage::BeginEpoch(uint64_t epoch) {
  scan_epoch_ = epoch;
  partial_op_ = std::make_unique<exec::GroupByOp>(
      node_->group_cols, node_->aggs, exec::AggPhase::kPartial);
  vgb_.reset();
}

bool AggStage::PushRaw(const Tuple& t) {
  if (partial_op_ != nullptr) partial_op_->Push(t, 0);
  return true;
}

bool AggStage::PushRawBatch(exec::RowBatch& b) {
  if (vgb_ == nullptr) {
    vgb_ = std::make_unique<exec::VectorGroupBy>(node_->group_cols,
                                                 node_->aggs,
                                                 /*finalize=*/false);
  }
  vgb_->PushBatch(b);
  return true;
}

void AggStage::EndScan() {
  std::vector<Tuple> partials = DrainGroupBy(std::move(partial_op_));
  if (vgb_ != nullptr) {
    // Same sorted group order as GroupByOp's drain — downstream combining
    // cannot tell which plane produced the partials.
    vgb_->DrainAndReset([&partials](Tuple& t) {
      partials.push_back(std::move(t));
      return true;
    });
    vgb_.reset();
  }
  if (route_ != ExchangeKind::kTree || is_origin_) {
    DeliverAll(scan_epoch_, partials);
    return;
  }
  // Tree strategy: hold local partials in this node's combiner so children
  // flush before parents.
  for (const Tuple& p : partials) FoldIntoCombiner(scan_epoch_, p);
}

// -- join-fed ---------------------------------------------------------------

bool AggStage::PushStreaming(const Tuple& t) {
  if (streaming_op_ == nullptr) {
    streaming_op_ = std::make_unique<exec::GroupByOp>(
        node_->group_cols, node_->aggs, exec::AggPhase::kPartial);
  }
  if (!stream_timer_armed_) {
    stream_timer_armed_ = true;
    host_->ScheduleStageTimer(HoldDelay(), qid_, node_id_, kStreamFlushToken);
  }
  streaming_op_->Push(t, 0);
  return true;
}

void AggStage::FlushStreaming() {
  stream_timer_armed_ = false;
  std::vector<Tuple> partials = DrainGroupBy(std::move(streaming_op_));
  if (route_ != ExchangeKind::kTree || is_origin_) {
    DeliverAll(0, partials);
    return;
  }
  for (const Tuple& p : partials) FoldIntoCombiner(0, p);
}

// -- tree combine -----------------------------------------------------------

void AggStage::FoldIntoCombiner(uint64_t epoch, const Tuple& partial) {
  if (combiner_ == nullptr || combiner_->epoch() != epoch ||
      !combiner_->open()) {
    if (combiner_ != nullptr && combiner_->open()) {
      FlushCombiner(combiner_->epoch());
    }
    combiner_ =
        std::make_unique<TreeCombiner>(node_->group_cols, node_->aggs, epoch);
    combiner_->flush_timer = host_->ScheduleStageTimer(
        HoldDelay(), qid_, node_id_, /*token=*/1 + epoch);
  }
  combiner_->Push(partial);
}

void AggStage::FlushCombiner(uint64_t epoch) {
  if (combiner_ == nullptr || combiner_->epoch() != epoch ||
      !combiner_->open()) {
    return;
  }
  if (combiner_->flush_timer != 0) {
    host_->CancelTimer(combiner_->flush_timer);
    combiner_->flush_timer = 0;
  }
  std::vector<Tuple> combined = combiner_->Flush();
  combiner_.reset();
  DeliverAll(epoch, combined);
}

void AggStage::OnRemotePartial(uint64_t epoch, const Tuple& t) {
  if (combiner_ != nullptr && combiner_->open() &&
      combiner_->epoch() == epoch) {
    combiner_->Push(t);
    return;
  }
  if (streaming_) {
    // Join-fed aggregation has no epoch scans to open combine windows, so
    // a tree parent opens one lazily on the first child partial.
    FoldIntoCombiner(epoch, t);
    return;
  }
  // Epochal: the combine window for this epoch already closed (or never
  // opened here) — relay upward unmodified, like a late child.
  host_->DeliverPartial(qid_, epoch, t, route_);
}

void AggStage::OnTimer(uint64_t token) {
  if (token == kStreamFlushToken) {
    FlushStreaming();
    return;
  }
  FlushCombiner(token - 1);
}

}  // namespace ops
}  // namespace query
}  // namespace pier
