#include "query/ops/index_scan_stage.h"

#include <algorithm>
#include <limits>

#include "index/pht.h"

namespace pier {
namespace query {
namespace ops {

using catalog::Tuple;

IndexScanStage::IndexScanStage(StageHost* host, uint64_t qid,
                               uint32_t node_id, const OpNode* node)
    : host_(host), qid_(qid), node_id_(node_id), node_(node) {
  ns_ = index::PhtIndex::NamespaceFor(node->table, node->index_col);
  ValueType col_type =
      node->schema.column(static_cast<size_t>(node->index_col)).type;
  lo_key_ = 0;
  hi_key_ = std::numeric_limits<uint64_t>::max();
  bool lo_ok =
      node->index_lo.is_null() ||
      index::EncodeValue(node->index_lo, col_type, index::BoundSide::kLower,
                         &lo_key_);
  bool hi_ok =
      node->index_hi.is_null() ||
      index::EncodeValue(node->index_hi, col_type, index::BoundSide::kUpper,
                         &hi_key_);
  bounds_ok_ = lo_ok && hi_ok;
}

index::PhtCursor::GetFn IndexScanStage::MakeGetFn(uint64_t token) {
  // Every DHT continuation round-trips through PostToStage keyed by the
  // run token: a stale epoch's (or a dead query's) callbacks evaporate.
  StageHost* host = host_;
  uint64_t qid = qid_;
  uint32_t node_id = node_id_;
  std::string ns = ns_;
  return [host, qid, node_id, ns, token](const std::string& resource,
                                         index::PhtCursor::GetCb cb) {
    host->dht()->Get(
        ns, resource,
        [host, qid, node_id, token, cb](Status s,
                                        std::vector<dht::DhtItem> items) {
          host->PostToStage(
              qid, node_id, [token, cb, &s, &items](Stage* stage) {
                auto* self = static_cast<IndexScanStage*>(stage);
                if (self->run_token_ != token) return;  // stale walk
                cb(std::move(s), std::move(items));
              });
        });
  };
}

index::PhtCursor::RowFn IndexScanStage::MakeRowFn(const EmitFn& emit) {
  EmitFn emit_copy = emit;
  return [this, emit_copy](const index::PhtEntry& entry,
                           uint64_t instance) {
    // Fan-out cursors share the upper trie path, so residual entries at
    // internal nodes could reach more than one of them: dedup epoch-wide.
    if (!emitted_.insert(instance).second) return true;
    Tuple t;
    if (!catalog::TupleFromBytes(entry.tuple_bytes, &t).ok()) {
      return true;  // undecodable entry: soft-skip, like ScanStage
    }
    if (t.size() != node_->schema.num_columns()) return true;
    ++host_->mutable_stats()->index_rows;
    return emit_copy(t);
  };
}

void IndexScanStage::StartCursor(uint64_t lo, uint64_t hi,
                                 uint64_t max_leaves, const EmitFn& emit) {
  cursors_.push_back(std::make_unique<index::PhtCursor>(
      MakeGetFn(run_token_), lo, hi, max_leaves));
  index::PhtCursor* cursor = cursors_.back().get();
  ++cursors_pending_;
  EmitFn emit_copy = emit;
  cursor->Run(MakeRowFn(emit),
              [this, cursor, emit_copy](index::PhtCursor::Outcome outcome,
                                        Status /*s*/) {
                OnCursorDone(cursor, outcome, emit_copy);
              });
}

void IndexScanStage::RunEpoch(const EmitFn& emit) {
  ++run_token_;
  cursors_.clear();  // previous epoch's walk (if any) is token-invalidated
  cursors_pending_ = 0;
  emitted_.clear();
  reported_ = false;
  ++host_->mutable_stats()->index_scans_run;
  if (!bounds_ok_) {
    host_->OnIndexScanDone(qid_, /*ok=*/false);
    return;
  }
  // Phase 1: the scout. Selective ranges end inside its leaf budget.
  StartCursor(lo_key_, hi_key_, kScoutLeaves, emit);
}

void IndexScanStage::OnCursorDone(index::PhtCursor* cursor,
                                  index::PhtCursor::Outcome outcome,
                                  const EmitFn& emit) {
  EngineStats* stats = host_->mutable_stats();
  stats->index_probes += cursor->stats().probes;
  stats->index_leaves += cursor->stats().leaves;
  --cursors_pending_;
  switch (outcome) {
    case index::PhtCursor::Outcome::kOk:
      if (cursors_pending_ == 0) ReportDone(/*ok=*/true);
      return;
    case index::PhtCursor::Outcome::kMore:
      // Only the scout carries a leaf budget, so kMore means phase 2.
      FanOut(cursor->next_key(), emit);
      return;
    case index::PhtCursor::Outcome::kColdIndex:
    case index::PhtCursor::Outcome::kError:
      // One damaged walk fails the whole scan: the engine falls back to a
      // broadcast plan and resets this epoch's rows, so sibling cursors'
      // pending callbacks are dropped with the runtime.
      ReportDone(/*ok=*/false);
      return;
  }
}

void IndexScanStage::FanOut(uint64_t resume, const EmitFn& emit) {
  // Partition the unvisited remainder by the leaf density the scout saw:
  // it covered (resume - lo) of encoded keyspace with kScoutLeaves leaves,
  // so size sub-ranges to a handful of leaves' worth each, capped at the
  // fan-out width. Skewed data just makes some sub-walks longer — never
  // wrong, only slower.
  uint64_t covered = resume - lo_key_;
  uint64_t remaining = hi_key_ - resume;
  uint64_t per_leaf = std::max<uint64_t>(1, covered / kScoutLeaves);
  uint64_t est_leaves = remaining / per_leaf;  // saturates fine
  int k = static_cast<int>(
      std::min<uint64_t>(kFanOut, std::max<uint64_t>(1, est_leaves / 4)));
  uint64_t step = remaining / static_cast<uint64_t>(k);
  if (k <= 1 || step == 0) {
    StartCursor(resume, hi_key_, /*max_leaves=*/0, emit);
    return;
  }
  uint64_t start = resume;
  for (int i = 0; i < k; ++i) {
    uint64_t end = i + 1 == k ? hi_key_ : start + step - 1;
    StartCursor(start, end, /*max_leaves=*/0, emit);
    start = end + 1;
  }
}

void IndexScanStage::ReportDone(bool ok) {
  if (reported_) return;
  reported_ = true;
  host_->OnIndexScanDone(qid_, ok);
}

}  // namespace ops
}  // namespace query
}  // namespace pier
