// AggStage: the member-side half of distributed aggregation — the
// kPartialAgg opgraph node plus the kTree exchange's combine duty.
//
// Two input protocols share one stage:
//  - Scan-fed (epochal): BeginEpoch / PushRaw / EndScan once per epoch.
//    Local rows partial-aggregate, then flush by the node's output
//    exchange: kTree folds into this node's TreeCombiner (held until
//    children have flushed), anything else ships partials immediately.
//  - Join-fed (streaming): joined rows arrive continuously at rendezvous
//    nodes; PushStreaming partial-aggregates them and flushes on a hold
//    timer, so aggregation happens in-network at the join site instead of
//    shipping raw rows to the origin.
//
// Either way, partials relayed through this node as a dissemination-tree
// parent (OnRemotePartial) merge into the open combiner, or — matching the
// engine's historical behavior for epochal queries — relay upward
// unmodified when the combine window already closed.

#ifndef PIER_QUERY_OPS_AGG_STAGE_H_
#define PIER_QUERY_OPS_AGG_STAGE_H_

#include <memory>
#include <vector>

#include "exec/kernels.h"
#include "exec/operators.h"
#include "query/exchange.h"
#include "query/ops/stage.h"

namespace pier {
namespace query {
namespace ops {

class AggStage : public Stage {
 public:
  /// `node` must be a kPartialAgg OpNode and outlive the stage.
  /// `streaming` selects the join-fed protocol.
  AggStage(StageHost* host, uint64_t qid, uint32_t node_id,
           const OpNode* node, bool is_origin, bool streaming);

  // -- scan-fed (epochal) ----------------------------------------------------
  void BeginEpoch(uint64_t epoch);
  bool PushRaw(const catalog::Tuple& t);  ///< EmitFn-compatible
  /// Batch-plane twin of PushRaw: folds every live row of `b` into the
  /// epoch's grouped partial states via VectorGroupBy (BatchEmitFn shape).
  /// Both paths drain through the same EndScan; their partials are
  /// identical row for row (the vectorized differential suite's contract).
  bool PushRawBatch(exec::RowBatch& b);
  void EndScan();

  // -- join-fed (streaming) --------------------------------------------------
  bool PushStreaming(const catalog::Tuple& t);

  /// A partial relayed to this node as a tree parent.
  void OnRemotePartial(uint64_t epoch, const catalog::Tuple& t);

  void OnTimer(uint64_t token) override;

 private:
  static constexpr uint64_t kStreamFlushToken = 0;  // combiner tokens: 1+epoch

  Duration HoldDelay() const;
  void DeliverAll(uint64_t epoch, const std::vector<catalog::Tuple>& partials);
  void FoldIntoCombiner(uint64_t epoch, const catalog::Tuple& partial);
  void FlushCombiner(uint64_t epoch);
  void FlushStreaming();

  StageHost* host_;
  uint64_t qid_;
  uint32_t node_id_;
  const OpNode* node_;
  bool is_origin_;
  bool streaming_;
  ExchangeKind route_;  ///< the node's output exchange (kTree or kToOrigin)

  uint64_t scan_epoch_ = 0;
  std::unique_ptr<exec::GroupByOp> partial_op_;
  /// Batch-plane accumulator; an epoch feeds exactly one of partial_op_ /
  /// vgb_ (the scan ran either the tuple or the batch pipeline).
  std::unique_ptr<exec::VectorGroupBy> vgb_;

  std::unique_ptr<exec::GroupByOp> streaming_op_;
  bool stream_timer_armed_ = false;

  std::unique_ptr<TreeCombiner> combiner_;
};

}  // namespace ops
}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_OPS_AGG_STAGE_H_
