#include "query/ops/scan_stage.h"

namespace pier {
namespace query {
namespace ops {

using catalog::Tuple;

void ScanStage::Run(const EmitFn& emit) {
  ++host_->mutable_stats()->scans_run;
  TimePoint cutoff = window_ > 0 ? host_->sim()->now() - window_ : 0;
  // In-place visitation: the store is scanned once per epoch per relation on
  // every node, so this path must not copy values (see dht::LocalStore).
  // ForEachLocalReadable = primaries plus failed-over replicas: data whose
  // owner crashed stays scannable from its surviving copies.
  Tuple t;
  host_->dht()->ForEachLocalReadable(node_->table,
                                     [&](const dht::StoredItem& item) {
    if (item.stored_at < cutoff) return true;
    if (!catalog::TupleFromBytes(item.value, &t).ok()) return true;
    if (t.size() != node_->schema.num_columns()) return true;
    ++host_->mutable_stats()->tuples_scanned;
    return emit(t);
  });
}

void ScanStage::RunBatch(size_t batch_size,
                         const std::vector<int>& needed_cols,
                         const BatchEmitFn& emit) {
  ++host_->mutable_stats()->scans_run;
  TimePoint cutoff = window_ > 0 ? host_->sim()->now() - window_ : 0;
  if (batch_size == 0) batch_size = 1;
  exec::RowBatchBuilder builder(node_->schema);
  builder.Reserve(batch_size);
  builder.SetNeededColumns(needed_cols);
  bool go = true;
  auto flush = [&]() {
    size_t rows = builder.num_rows();
    if (rows == 0) return;
    host_->mutable_stats()->tuples_scanned += rows;
    ++host_->mutable_stats()->batches_scanned;
    exec::RowBatch b = builder.Take();
    go = emit(b);
  };
  host_->dht()->ForEachLocalReadable(node_->table,
                                     [&](const dht::StoredItem& item) {
    if (item.stored_at < cutoff) return true;
    // AppendSerialized skips exactly the rows the tuple scan skips:
    // undecodable bytes and width mismatches.
    builder.AppendSerialized(item.value);
    if (builder.num_rows() >= batch_size) flush();
    return go;
  });
  if (go) flush();
}

}  // namespace ops
}  // namespace query
}  // namespace pier
