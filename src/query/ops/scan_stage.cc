#include "query/ops/scan_stage.h"

namespace pier {
namespace query {
namespace ops {

using catalog::Tuple;

void ScanStage::Run(const EmitFn& emit) {
  ++host_->mutable_stats()->scans_run;
  TimePoint cutoff = window_ > 0 ? host_->sim()->now() - window_ : 0;
  for (const dht::StoredItem& item : host_->dht()->LocalScan(node_->table)) {
    if (item.replica) continue;  // primaries only: no double counting
    if (item.stored_at < cutoff) continue;
    Tuple t;
    if (!catalog::TupleFromBytes(item.value, &t).ok()) continue;
    if (t.size() != node_->schema.num_columns()) continue;
    ++host_->mutable_stats()->tuples_scanned;
    if (!emit(t)) break;
  }
}

}  // namespace ops
}  // namespace query
}  // namespace pier
