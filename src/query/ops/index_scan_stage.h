// IndexScanStage: the runtime box for an OpType::kIndexScan node — the
// origin-side driver of a PhtCursor range walk.
//
// Unlike ScanStage (every member scans its local slice), an index scan runs
// ONLY at the query origin: the cursor contacts the DHT owners of the trie
// nodes covering the predicate's range, so the set of machines doing work
// scales with the answer instead of the overlay. Rows stream into the same
// emit chain a local scan would feed (filter/project fused, kToOrigin loops
// straight into origin collection), asynchronously across the epoch's
// result window.
//
// All cursor continuations re-enter through StageHost::PostToStage, so a
// query that ends (or a runtime replaced by fallback) mid-walk simply drops
// the remaining callbacks — stages never defend against their own
// destruction.

#ifndef PIER_QUERY_OPS_INDEX_SCAN_STAGE_H_
#define PIER_QUERY_OPS_INDEX_SCAN_STAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "index/pht_cursor.h"
#include "query/ops/stage.h"

namespace pier {
namespace query {
namespace ops {

class IndexScanStage : public Stage {
 public:
  /// `node` must be a kIndexScan OpNode and outlive the stage.
  IndexScanStage(StageHost* host, uint64_t qid, uint32_t node_id,
                 const OpNode* node);

  /// Starts one epoch's range walk, feeding rows into `emit`. A walk still
  /// running from the previous epoch is abandoned (its callbacks are
  /// invalidated by the run token). Completion reports through
  /// StageHost::OnIndexScanDone.
  ///
  /// Two-phase walk: a scout cursor reads the first kScoutLeaves leaves
  /// sequentially — the common selective query finishes right there. A
  /// range that turns out wider fans out into parallel sub-range cursors
  /// over the remainder, partitioned by the leaf density the scout
  /// observed, so broad ranges trade O(answer) sequential round-trips for
  /// O(answer / fan-out) and still close within the result window.
  void RunEpoch(const EmitFn& emit);

  /// True once the bounds encode for the declared column type. A plan whose
  /// bounds cannot encode (hostile or type-incoherent) reports !ok
  /// immediately and lets the engine fall back.
  bool bounds_ok() const { return bounds_ok_; }

 private:
  /// Leaves the scout walks before fanning out, and the fan-out width.
  /// The width only matters for broad ranges (selective queries end inside
  /// the scout); 16 parallel walks keep even a whole-table range inside a
  /// typical result window — though at that point a cost-based planner
  /// would pick the broadcast scan anyway.
  static constexpr uint64_t kScoutLeaves = 8;
  static constexpr int kFanOut = 16;

  index::PhtCursor::GetFn MakeGetFn(uint64_t token);
  index::PhtCursor::RowFn MakeRowFn(const EmitFn& emit);
  void StartCursor(uint64_t lo, uint64_t hi, uint64_t max_leaves,
                   const EmitFn& emit);
  void OnCursorDone(index::PhtCursor* cursor,
                    index::PhtCursor::Outcome outcome, const EmitFn& emit);
  void FanOut(uint64_t resume, const EmitFn& emit);
  void ReportDone(bool ok);

  StageHost* host_;
  uint64_t qid_;
  uint32_t node_id_;
  const OpNode* node_;
  std::string ns_;
  bool bounds_ok_ = false;
  uint64_t lo_key_ = 0;
  uint64_t hi_key_ = 0;
  /// Invalidates in-flight cursor callbacks when a new epoch starts.
  uint64_t run_token_ = 0;
  std::vector<std::unique_ptr<index::PhtCursor>> cursors_;
  size_t cursors_pending_ = 0;
  /// Epoch-wide emitted-instance dedup across the scout and its fan-out.
  std::unordered_set<uint64_t> emitted_;
  bool reported_ = false;
};

}  // namespace ops
}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_OPS_INDEX_SCAN_STAGE_H_
