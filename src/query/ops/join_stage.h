// JoinStage: one kJoin opgraph node instantiated at every network node.
//
// Every node plays two roles at once:
//  - producer: scans its local slices of the join's scan inputs and ships
//    them through the join's RehashExchange (or DHT gets for
//    fetch-matches); chained joins receive their upstream side from the
//    previous join's output instead of a scan;
//  - rendezvous: consumes exchange arrivals for keys this node owns and
//    joins them incrementally with a pipelined symmetric hash join.
//
// Strategy-specific choreography (Bloom filter collection/redistribution,
// semi-join match-time tuple fetches) lives here too, driven by the
// engine's message routing.
//
// The Bloom filter wave is accounted, never fire-and-forget: the origin
// counts the parts it unioned against the members the plan broadcast's
// cover wave confirmed, and broadcasts the verdict with the filters.
// Members suppress only on a complete wave; an incomplete wave (lost or
// late parts, unknown coverage) degrades that edge to the full rehash —
// heavier, but no row a lost filter part would have vouched for is ever
// dropped. A member that never receives the distribution at all (lost
// broadcast, partition) produces the full rehash from a fallback timer.

#ifndef PIER_QUERY_OPS_JOIN_STAGE_H_
#define PIER_QUERY_OPS_JOIN_STAGE_H_

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bloom.h"
#include "exec/operator.h"
#include "exec/operators.h"
#include "query/bloom_wire.h"
#include "query/exchange.h"
#include "query/ops/scan_stage.h"
#include "query/ops/stage.h"

namespace pier {
namespace query {
namespace ops {

class JoinStage : public Stage {
 public:
  /// `left_scan`/`right_scan` are the kScan nodes feeding the join, or
  /// nullptr for a side fed by an upstream join. All OpNode pointers must
  /// outlive the stage.
  JoinStage(StageHost* host, uint64_t qid, uint32_t node_id,
            const OpNode* node, const OpNode* left_scan,
            const OpNode* right_scan, Duration window, bool is_origin,
            uint32_t origin_host);

  /// Receives full joined rows (the runtime attaches the residual filter /
  /// projection / aggregation chain here).
  void SetDownstream(EmitFn fn) { downstream_ = std::move(fn); }

  /// Exchange namespace this stage consumes (empty for fetch-matches).
  const std::string& ns() const;

  /// Origin-only, called at Execute time: Bloom joins arm the
  /// filter-collection window before the plan broadcast goes out.
  void InitOrigin();

  /// Wires the local dataflow, catches up on early exchange arrivals, and
  /// produces this node's slice (phase 1 for Bloom joins).
  void Setup();

  /// An upstream join's output entering this join on `side`.
  void PublishUpstream(int side, const catalog::Tuple& t);

  void OnArrival(const dht::StoredItem& item);
  void OnFetchReq(uint32_t from, Reader* r);
  void OnFetchResp(Reader* r);
  /// Origin-only: one member's filter-wave part. Parts after the wave
  /// closed are counted late, never unioned (the broadcast they missed is
  /// already out, flagged incomplete).
  void OnBloomPart(uint32_t from, const BloomPartFrame& frame);
  /// The origin's distributed union arrived. Suppress-and-produce on a
  /// complete wave; full unsuppressed rehash otherwise.
  void OnBloomDist(BloomDistFrame frame);
  void OnTimer(uint64_t token) override;

  JoinStrategy strategy() const { return node_->strategy; }

 private:
  void ProduceFromScans(bool bloom_phase2);
  void BloomPhase1();
  void HandleJoinOutput(const catalog::Tuple& joined);
  void ResolveFetchMatches(const catalog::Tuple& probe,
                           const std::vector<dht::DhtItem>& items);

  StageHost* host_;
  uint64_t qid_;
  uint32_t node_id_;
  const OpNode* node_;
  const OpNode* left_scan_;
  const OpNode* right_scan_;
  Duration window_;
  bool is_origin_;
  uint32_t origin_host_;
  EmitFn downstream_;

  std::unique_ptr<RehashExchange> exchange_;  // null for fetch-matches
  exec::Dataflow flow_;
  exec::SymmetricHashJoinOp* shj_ = nullptr;

  // Semi-join: this node's shipped rows, fetchable by id, and matches
  // awaiting both full tuples.
  std::unordered_map<uint64_t, catalog::Tuple> row_registry_;
  uint64_t next_row_id_ = 1;
  struct PendingMatch {
    catalog::Tuple left, right;
    bool have_left = false, have_right = false;
  };
  std::unordered_map<uint64_t, PendingMatch> pending_matches_;
  uint64_t next_match_id_ = 1;

  // Bloom join: origin-side collectors, part accounting, and the
  // distributed union (absent => produce without suppression).
  std::unique_ptr<BloomFilter> collect_left_, collect_right_;
  std::unique_ptr<BloomFilter> dist_left_, dist_right_;
  std::set<uint32_t> part_senders_;  ///< origin: members unioned in-window
  bool wave_closed_ = false;         ///< origin: bloom_wait broadcast fired
  /// Phase 1's single scan pass caches the rows phase 2 publishes, so a
  /// Bloom join costs one scan, not two.
  std::vector<catalog::Tuple> cached_left_, cached_right_;
  bool scans_cached_ = false;
  /// Phase 2 ran (filters arrived or the fallback timer fired); guards
  /// against double production when both happen.
  bool produced_ = false;
};

}  // namespace ops
}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_OPS_JOIN_STAGE_H_
