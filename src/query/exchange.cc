#include "query/exchange.h"

#include <map>

#include "dht/key.h"

namespace pier {
namespace query {

using catalog::Tuple;

namespace {
/// First byte of a column-major exchange frame. Legacy row frames start
/// with the side byte (0 or 1), so the marker is unambiguous and old
/// decoders reject batch frames cleanly ("bad exchange side").
constexpr uint8_t kBatchFrameMarker = 0x42;
}  // namespace

RehashExchange::RehashExchange(ops::StageHost* host, uint64_t qid,
                               uint32_t edge_id)
    : host_(host), qid_(qid), ns_(NamespaceFor(qid, edge_id)) {}

RehashExchange::RehashExchange(ops::StageHost* host, uint64_t qid,
                               std::string ns)
    : host_(host), qid_(qid), ns_(std::move(ns)) {}

std::string RehashExchange::NamespaceFor(uint64_t qid, uint32_t edge_id) {
  return "q" + std::to_string(qid) + ".x" + std::to_string(edge_id);
}

void RehashExchange::Publish(int side, const std::vector<int>& key_cols,
                             const Tuple& t) {
  PublishAt(side, catalog::ResourceForCols(t, key_cols), t);
}

void RehashExchange::PublishAt(int side, const std::string& resource,
                               const Tuple& t) {
  // Per-query fan-out budget: a tripped query stops feeding the DHT and
  // degrades loudly (the engine flags Completeness) instead of flooding it.
  if (!host_->ChargeRehashPuts(qid_, 1)) return;
  Writer w;
  w.PutU8(static_cast<uint8_t>(side));
  catalog::SerializeTuple(t, &w);
  ++host_->mutable_stats()->rehash_puts;
  PublishValue(resource, w.Release());
}

void RehashExchange::PublishValue(const std::string& resource,
                                  std::string value) {
  uint64_t instance =
      (static_cast<uint64_t>(host_->self_host()) << 32) | seq_++;
  // Temp tuples skip replication: cheap to recreate, dead within the query.
  // The non-null callback makes the put acked and retried (the DHT's own
  // retry plane), so a single lost message no longer drops join state; the
  // owner-side arrival dedupe absorbs any retry duplicates.
  EngineStats* stats = host_->mutable_stats();
  host_->dht()->PutEx(dht::DhtKey{ns_, resource, instance}, std::move(value),
                      host_->engine_options().temp_ttl, /*replicate=*/false,
                      [stats](Status s) {
                        if (!s.ok()) ++stats->rehash_put_failures;
                      });
}

void RehashExchange::PublishBatch(int side, const std::vector<int>& key_cols,
                                  const catalog::Schema& schema,
                                  const std::vector<Tuple>& rows) {
  std::map<std::string, std::vector<const Tuple*>> buckets;
  for (const Tuple& t : rows) {
    buckets[catalog::ResourceForCols(t, key_cols)].push_back(&t);
  }
  for (const auto& [resource, bucket] : buckets) {
    if (bucket.size() == 1) {
      PublishAt(side, resource, *bucket[0]);
      continue;
    }
    // One batch frame is one DHT put regardless of row count, so it charges
    // one unit — the budget caps network operations, not rows.
    if (!host_->ChargeRehashPuts(qid_, 1)) continue;
    exec::RowBatchBuilder builder(schema);
    builder.Reserve(bucket.size());
    for (const Tuple* t : bucket) builder.Append(*t);
    exec::RowBatch batch = builder.Take();
    Writer w;
    w.PutU8(kBatchFrameMarker);
    w.PutU8(static_cast<uint8_t>(side));
    batch.Encode(&w);
    ++host_->mutable_stats()->rehash_puts;
    ++host_->mutable_stats()->batch_frames_sent;
    PublishValue(resource, w.Release());
  }
}

bool RehashExchange::IsBatchFrame(const dht::StoredItem& item) {
  return !item.value.empty() &&
         static_cast<uint8_t>(item.value[0]) == kBatchFrameMarker;
}

Status RehashExchange::DecodeBatchArrival(const dht::StoredItem& item,
                                          int* side, exec::RowBatch* out) {
  Reader r(item.value);
  uint8_t marker = 0, s = 0;
  PIER_RETURN_IF_ERROR(r.GetU8(&marker));
  if (marker != kBatchFrameMarker) {
    return Status::Corruption("not a batch frame");
  }
  PIER_RETURN_IF_ERROR(r.GetU8(&s));
  if (s > 1) return Status::Corruption("bad exchange side");
  PIER_RETURN_IF_ERROR(exec::RowBatch::Decode(&r, out));
  *side = s;
  return Status::OK();
}

Status RehashExchange::DecodeArrival(const dht::StoredItem& item, int* side,
                                     Tuple* t) {
  Reader r(item.value);
  uint8_t s = 0;
  PIER_RETURN_IF_ERROR(r.GetU8(&s));
  if (s > 1) return Status::Corruption("bad exchange side");
  PIER_RETURN_IF_ERROR(catalog::DeserializeTuple(&r, t));
  *side = s;
  return Status::OK();
}

TreeCombiner::TreeCombiner(std::vector<int> group_cols,
                           std::vector<exec::AggSpec> aggs, uint64_t epoch)
    : epoch_(epoch),
      op_(std::make_unique<exec::GroupByOp>(std::move(group_cols),
                                            std::move(aggs),
                                            exec::AggPhase::kCombine)) {}

void TreeCombiner::Push(const Tuple& partial) {
  if (op_ != nullptr) op_->Push(partial, 0);
}

std::vector<Tuple> TreeCombiner::Flush() {
  return DrainGroupBy(std::move(op_));
}

std::vector<Tuple> DrainGroupBy(std::unique_ptr<exec::GroupByOp> op) {
  std::vector<Tuple> out;
  if (op == nullptr) return out;
  exec::FnSink sink([&out](const Tuple& t) { out.push_back(t); });
  op->AddOutput(&sink);
  op->FlushAndReset();
  // `op` dies here, with its sink: a spent group-by is never reused.
  return out;
}

}  // namespace query
}  // namespace pier
