// OpGraph: the serializable "boxes and arrows" distributed plan PIER ships
// to every node.
//
// A query is a DAG of typed operator nodes (scan, filter, project, join,
// partial/final aggregation, recursion, collect) whose edges are annotated
// with an ExchangeKind — how tuples travel from producer to consumer:
//
//   kLocal    same-node operator chain (a plain function call);
//   kRehash   dht::Put keyed on the consumer's key columns into a per-edge
//             temp namespace; the key's owner consumes arrivals (this is
//             how PIER partitions join and rendezvous state);
//   kToOrigin direct message to the query origin (results, or raw rows the
//             origin aggregates itself);
//   kTree     partial aggregates combining hop-by-hop up the dissemination
//             tree that delivered the plan.
//
// The graph is pure data: nodes carry bound expressions and column indices,
// never live operator state. Every node of the network rebuilds an
// identical graph from bytes and instantiates the runtime stages it is
// responsible for (src/query/ops/). The four legacy PlanKind shapes are
// degenerate opgraphs (see QueryPlan::CanonicalGraph in plan.h); composed
// graphs (multi-way joins, in-network aggregation over joins) are emitted
// by the planner.

#ifndef PIER_QUERY_OPGRAPH_H_
#define PIER_QUERY_OPGRAPH_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/serialize.h"
#include "common/status.h"
#include "exec/agg.h"
#include "exec/expr.h"

namespace pier {
namespace query {

/// Distributed join algorithms (the four from the PIER design papers).
enum class JoinStrategy : uint8_t {
  kSymmetricHash = 0,  ///< rehash both relations into a temp namespace
  kFetchMatches = 1,   ///< probe the already-partitioned inner by DHT get
  kSymmetricSemi = 2,  ///< rehash keys+ids only, fetch full tuples on match
  kBloom = 3,          ///< pre-filter both sides with exchanged Bloom filters
};

/// How partial aggregates reach the query origin.
enum class AggStrategy : uint8_t {
  kDirect = 0,  ///< every node sends partials straight to the origin
  kTree = 1,    ///< partials combine hop-by-hop up the dissemination tree
};

const char* JoinStrategyName(JoinStrategy s);
const char* AggStrategyName(AggStrategy s);

/// Operator node types.
enum class OpType : uint8_t {
  kScan = 0,        ///< local slice of a DHT namespace (one per relation)
  kFilter = 1,      ///< predicate over the input layout
  kProject = 2,     ///< expression list over the input layout
  kJoin = 3,        ///< binary equi-join; inputs = {left, right}
  kPartialAgg = 4,  ///< raw rows -> decomposable partial states
  kFinalAgg = 5,    ///< partials (or raw rows) -> final aggregates; origin
  kRecurse = 6,     ///< transitive closure over an edge relation
  kCollect = 7,     ///< origin sink: DISTINCT / ORDER BY / LIMIT / delivery
  kIndexScan = 8,   ///< PHT range scan over an indexed attribute (origin)
};

const char* OpTypeName(OpType t);

/// How a node's output travels to its (single) consumer.
enum class ExchangeKind : uint8_t {
  kLocal = 0,
  kRehash = 1,
  kToOrigin = 2,
  kTree = 3,
};

const char* ExchangeKindName(ExchangeKind k);

/// One typed operator box. Field groups are meaningful per `type`; unused
/// groups stay empty and serialize compactly.
struct OpNode {
  OpType type = OpType::kScan;
  /// Upstream node ids (indices into OpGraph::nodes; strictly smaller than
  /// this node's own id — the graph is stored in topological order).
  std::vector<uint32_t> inputs;
  /// How this node's output reaches its consumer.
  ExchangeKind out = ExchangeKind::kLocal;

  // -- kScan / kIndexScan ----------------------------------------------------
  std::string table;       ///< DHT namespace
  catalog::Schema schema;  ///< the relation's schema

  // -- kIndexScan ------------------------------------------------------------
  /// The indexed attribute and the closed value range the cursor reads.
  /// NULL bounds are open sides (scan from/to the end of the keyspace).
  /// The range is a SUPERSET of the predicate — an exact kFilter always
  /// follows, so encoding coarseness (string truncation, double bounds on
  /// int columns) can only cost traffic, never correctness.
  int index_col = 0;
  Value index_lo;
  Value index_hi;

  // -- kFilter (and kRecurse edge predicate) ---------------------------------
  exec::ExprPtr predicate;

  // -- kProject --------------------------------------------------------------
  std::vector<exec::ExprPtr> exprs;

  // -- kJoin -----------------------------------------------------------------
  JoinStrategy strategy = JoinStrategy::kSymmetricHash;
  std::vector<int> left_keys;   ///< indices into the left input layout
  std::vector<int> right_keys;  ///< indices into the right input layout

  // -- kPartialAgg / kFinalAgg -----------------------------------------------
  std::vector<int> group_cols;
  std::vector<exec::AggSpec> aggs;
  exec::ExprPtr having;  ///< kFinalAgg only, over [group..., agg results...]

  // -- kRecurse --------------------------------------------------------------
  int src_col = 0;
  int dst_col = 1;
  int max_hops = 16;

  // -- kCollect --------------------------------------------------------------
  bool distinct = false;
  /// Post-aggregation SELECT-order permutation (empty = identity).
  std::vector<int> final_projection;
  int order_col = -1;
  bool order_desc = false;
  int64_t limit = -1;

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, OpNode* out);
  /// One-line rendering ("join[symmetric-hash] keys=[0]x[0]").
  std::string ToString() const;
};

/// The distributed dataflow DAG. Nodes are stored in topological order;
/// the last node is the root (normally kCollect at the origin).
struct OpGraph {
  std::vector<OpNode> nodes;

  bool empty() const { return nodes.empty(); }
  size_t size() const { return nodes.size(); }

  /// Structural sanity: topological input edges, per-type arity, a single
  /// terminal collect, exchange kinds that the runtime can execute.
  /// Deserialized graphs MUST be validated before execution.
  Status Validate() const;

  /// First node of `type`, or -1.
  int FindFirst(OpType type) const;
  /// Consumer of node `id`, or -1 for the root.
  int ConsumerOf(uint32_t id) const;
  /// True iff some node has `type`.
  bool Has(OpType type) const { return FindFirst(type) >= 0; }

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, OpGraph* out);

  /// Multi-line EXPLAIN rendering: one indexed line per node with its
  /// inputs and output exchange.
  std::string ToString() const;
};

namespace detail {
// Shared wire helpers (also used by plan.cc).
void PutOptionalExpr(Writer* w, const exec::ExprPtr& e);
Status GetOptionalExpr(Reader* r, exec::ExprPtr* out);
void PutIntVec(Writer* w, const std::vector<int>& v);
Status GetIntVec(Reader* r, std::vector<int>* out);
}  // namespace detail

}  // namespace query
}  // namespace pier

#endif  // PIER_QUERY_OPGRAPH_H_
