#include "query/scheduler.h"

#include <algorithm>
#include <utility>

namespace pier {
namespace query {

void QueryScheduler::Submit(ScanWork work) {
  if (stopped_) return;
  // A fresh epoch for a continuous query supersedes any scan of an earlier
  // epoch still queued (its results would be discarded at the origin
  // anyway): drop the stale task without callbacks — the runtime already
  // moved its epoch pointer past it.
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if (it->work.qid == work.qid && it->work.epoch < work.epoch) {
      it = tasks_.erase(it);
      cursor_ = 0;
    } else {
      ++it;
    }
  }
  ++stats_->scans_run;
  Task task;
  task.sweep = AcquireSweep(work);
  task.work = std::move(work);
  tasks_.push_back(std::move(task));
  // An idle scheduler serves immediately (a lone scan pays no pacing tax —
  // the 0-delay hop keeps it at the submit instant in virtual time); the
  // round interval only paces follow-up rounds while scans remain queued.
  ArmRound(0);
}

std::shared_ptr<QueryScheduler::Sweep> QueryScheduler::AcquireSweep(
    const ScanWork& work) {
  const TimePoint now = sim_->now();
  const TimePoint cutoff = work.window > 0 ? now - work.window : 0;
  const uint64_t version = dht_->local_store()->NamespaceVersion(work.table);

  // Reap sweeps no longer attachable (aged out or invalidated); tasks still
  // draining one keep it alive through their shared_ptr.
  recent_sweeps_.erase(
      std::remove_if(recent_sweeps_.begin(), recent_sweeps_.end(),
                     [&](const std::shared_ptr<Sweep>& s) {
                       return now - s->created_at > opts_.shared_window;
                     }),
      recent_sweeps_.end());

  // Shared-scan attach: an existing sweep is exactly this scan's snapshot
  // iff it walked the same table at the same window cutoff, the namespace
  // has not mutated since (per-namespace store version), and the schema
  // matches. (Router failover can also change the readable slice without a
  // store mutation; the shared_window bound keeps that staleness under a
  // churn detection period.)
  for (const auto& s : recent_sweeps_) {
    if (s->table == work.table && s->cutoff == cutoff &&
        s->store_version == version && s->schema == work.schema) {
      ++stats_->shared_scan_hits;
      return s;
    }
  }

  // Materialize one LocalStore pass into dense column batches. All columns
  // are decoded — consumers with different projections share the stream,
  // and each applies its own pruning downstream.
  ++stats_->store_sweeps;
  auto sweep = std::make_shared<Sweep>();
  sweep->table = work.table;
  sweep->cutoff = cutoff;
  sweep->store_version = version;
  sweep->created_at = now;
  sweep->schema = work.schema;
  size_t batch_rows = std::max<uint32_t>(1, opts_.batch_rows);
  exec::RowBatchBuilder builder(work.schema);
  builder.Reserve(batch_rows);
  auto flush = [&]() {
    if (builder.Empty()) return;
    sweep->total_rows += builder.num_rows();
    sweep->batches.push_back(builder.Take());
  };
  dht_->ForEachLocalReadable(work.table, [&](const dht::StoredItem& item) {
    if (item.stored_at < cutoff) return true;
    // AppendSerialized skips exactly the rows a tuple scan skips:
    // undecodable bytes and width mismatches.
    builder.AppendSerialized(item.value);
    if (builder.num_rows() >= batch_rows) flush();
    return true;
  });
  flush();
  recent_sweeps_.push_back(sweep);
  return sweep;
}

void QueryScheduler::ArmRound(Duration delay) {
  if (round_armed_ || stopped_ || tasks_.empty()) return;
  round_armed_ = true;
  schedule_(delay, [this]() { RunRound(); });
}

void QueryScheduler::RunRound() {
  round_armed_ = false;
  if (stopped_ || tasks_.empty()) return;
  ++stats_->sched_rounds;
  // One pass over the ring starting at the rotating cursor: every live scan
  // gets up to one quantum per round, so no tenant waits on another's whole
  // table.
  if (cursor_ >= tasks_.size()) cursor_ = 0;
  size_t remaining = tasks_.size();
  size_t i = cursor_;
  while (remaining-- > 0 && !tasks_.empty()) {
    if (i >= tasks_.size()) i = 0;
    if (ServeTask(&tasks_[i])) {
      tasks_.erase(tasks_.begin() + static_cast<ptrdiff_t>(i));
      if (i < cursor_ && cursor_ > 0) --cursor_;
    } else {
      ++i;
    }
  }
  cursor_ = tasks_.empty() ? 0 : (cursor_ + 1) % tasks_.size();
  ArmRound(opts_.round_interval);
}

bool QueryScheduler::ServeTask(Task* task) {
  ScanWork& w = task->work;
  if (w.aborted && w.aborted()) {
    if (w.done) w.done(false);
    return true;
  }
  size_t served = 0;
  while (task->next_batch < task->sweep->batches.size()) {
    // Whole batches only: the quantum rounds up to a batch boundary so a
    // consumer's mid-batch LIMIT accounting matches a solo scan's.
    const exec::RowBatch& src = task->sweep->batches[task->next_batch];
    ++task->next_batch;
    exec::RowBatch copy = src;  // feeds install selections; keep src pristine
    size_t rows = copy.num_rows();
    stats_->tuples_scanned += rows;
    if (w.count_batches) ++stats_->batches_scanned;
    served += rows;
    bool more = w.feed ? w.feed(copy) : true;
    if (!more) {
      if (w.done) w.done(true);
      return true;
    }
    if (w.aborted && w.aborted()) {
      if (w.done) w.done(false);
      return true;
    }
    if (served >= opts_.quantum_rows) break;
  }
  if (task->next_batch >= task->sweep->batches.size()) {
    if (w.done) w.done(true);
    return true;
  }
  return false;
}

void QueryScheduler::DropQuery(uint64_t qid) {
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if (it->work.qid == qid) {
      it = tasks_.erase(it);
      cursor_ = 0;
    } else {
      ++it;
    }
  }
}

void QueryScheduler::Stop() {
  stopped_ = true;
  tasks_.clear();
  recent_sweeps_.clear();
  cursor_ = 0;
}

}  // namespace query
}  // namespace pier
