#include "query/bloom_wire.h"

namespace pier {
namespace query {

void BloomPartFrame::Serialize(Writer* w) const {
  w->PutVarint64(qid);
  w->PutVarint32(join_node);
  left.Serialize(w);
  right.Serialize(w);
}

Status BloomPartFrame::Deserialize(Reader* r, BloomPartFrame* out) {
  PIER_RETURN_IF_ERROR(r->GetVarint64(&out->qid));
  PIER_RETURN_IF_ERROR(r->GetVarint32(&out->join_node));
  PIER_RETURN_IF_ERROR(BloomFilter::Deserialize(r, &out->left));
  PIER_RETURN_IF_ERROR(BloomFilter::Deserialize(r, &out->right));
  return Status::OK();
}

void BloomDistFrame::Serialize(Writer* w) const {
  w->PutVarint64(qid);
  w->PutVarint32(join_node);
  w->PutVarint64(parts_expected);
  w->PutVarint64(parts_reported);
  w->PutBool(complete);
  left.Serialize(w);
  right.Serialize(w);
}

Status BloomDistFrame::Deserialize(Reader* r, BloomDistFrame* out) {
  PIER_RETURN_IF_ERROR(r->GetVarint64(&out->qid));
  PIER_RETURN_IF_ERROR(r->GetVarint32(&out->join_node));
  PIER_RETURN_IF_ERROR(r->GetVarint64(&out->parts_expected));
  PIER_RETURN_IF_ERROR(r->GetVarint64(&out->parts_reported));
  PIER_RETURN_IF_ERROR(r->GetBool(&out->complete));
  PIER_RETURN_IF_ERROR(BloomFilter::Deserialize(r, &out->left));
  PIER_RETURN_IF_ERROR(BloomFilter::Deserialize(r, &out->right));
  // A claimed-complete wave with an impossible accounting line is hostile
  // or corrupt: refuse it rather than let it authorize suppression.
  if (out->complete && out->parts_reported < out->parts_expected) {
    return Status::Corruption("bloom dist frame: complete but under-reported");
  }
  return Status::OK();
}

}  // namespace query
}  // namespace pier
