#include "query/plan.h"

namespace pier {
namespace query {

using detail::GetIntVec;
using detail::GetOptionalExpr;
using detail::PutIntVec;
using detail::PutOptionalExpr;

const char* PlanKindName(PlanKind k) {
  switch (k) {
    case PlanKind::kSelectProject:
      return "select-project";
    case PlanKind::kAggregate:
      return "aggregate";
    case PlanKind::kJoin:
      return "join";
    case PlanKind::kRecursive:
      return "recursive";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Canonicalization: classic fields -> degenerate opgraph
// ---------------------------------------------------------------------------

namespace {

/// Appends `node` reading from the current chain tail and returns its id.
uint32_t Chain(OpGraph* g, OpNode node) {
  if (!g->nodes.empty()) {
    node.inputs = {static_cast<uint32_t>(g->nodes.size()) - 1};
  }
  g->nodes.push_back(std::move(node));
  return static_cast<uint32_t>(g->nodes.size()) - 1;
}

OpNode ScanNode(const std::string& table, const catalog::Schema& schema) {
  OpNode n;
  n.type = OpType::kScan;
  n.table = table;
  n.schema = schema;
  return n;
}

OpNode CollectNode(const QueryPlan& p, bool aggregated) {
  OpNode n;
  n.type = OpType::kCollect;
  n.distinct = aggregated ? false : p.distinct;
  if (aggregated) n.final_projection = p.final_projection;
  n.order_col = p.order_col;
  n.order_desc = p.order_desc;
  n.limit = p.limit;
  return n;
}

OpNode FinalAggNode(const QueryPlan& p) {
  OpNode n;
  n.type = OpType::kFinalAgg;
  n.group_cols = p.group_cols;
  n.aggs = p.aggs;
  n.having = p.having;
  return n;
}

}  // namespace

OpGraph QueryPlan::CanonicalGraph() const {
  OpGraph g;
  switch (kind) {
    case PlanKind::kSelectProject: {
      Chain(&g, ScanNode(table, scan_schema));
      if (where != nullptr) {
        OpNode f;
        f.type = OpType::kFilter;
        f.predicate = where;
        Chain(&g, std::move(f));
      }
      if (!projections.empty()) {
        OpNode pr;
        pr.type = OpType::kProject;
        pr.exprs = projections;
        Chain(&g, std::move(pr));
      }
      g.nodes.back().out = ExchangeKind::kToOrigin;
      Chain(&g, CollectNode(*this, /*aggregated=*/false));
      break;
    }
    case PlanKind::kAggregate: {
      Chain(&g, ScanNode(table, scan_schema));
      if (where != nullptr) {
        OpNode f;
        f.type = OpType::kFilter;
        f.predicate = where;
        Chain(&g, std::move(f));
      }
      OpNode pa;
      pa.type = OpType::kPartialAgg;
      pa.group_cols = group_cols;
      pa.aggs = aggs;
      pa.out = agg_strategy == AggStrategy::kTree ? ExchangeKind::kTree
                                                  : ExchangeKind::kToOrigin;
      Chain(&g, std::move(pa));
      Chain(&g, FinalAggNode(*this));
      Chain(&g, CollectNode(*this, /*aggregated=*/true));
      break;
    }
    case PlanKind::kJoin: {
      OpNode left = ScanNode(table, scan_schema);
      left.out = ExchangeKind::kRehash;
      g.nodes.push_back(std::move(left));
      OpNode right = ScanNode(right_table, right_schema);
      right.out = ExchangeKind::kRehash;
      g.nodes.push_back(std::move(right));
      OpNode j;
      j.type = OpType::kJoin;
      j.strategy = join_strategy;
      j.left_keys = left_key_cols;
      j.right_keys = right_key_cols;
      j.inputs = {0, 1};
      g.nodes.push_back(std::move(j));
      if (where != nullptr) {
        OpNode f;
        f.type = OpType::kFilter;
        f.predicate = where;
        Chain(&g, std::move(f));
      }
      bool aggregated = !aggs.empty();
      if (!aggregated && !projections.empty()) {
        OpNode pr;
        pr.type = OpType::kProject;
        pr.exprs = projections;
        Chain(&g, std::move(pr));
      }
      // Joined rows ship to the origin either way: raw for origin-side
      // aggregation, projected otherwise.
      g.nodes.back().out = ExchangeKind::kToOrigin;
      if (aggregated) Chain(&g, FinalAggNode(*this));
      Chain(&g, CollectNode(*this, aggregated));
      break;
    }
    case PlanKind::kRecursive: {
      Chain(&g, ScanNode(table, scan_schema));
      OpNode rec;
      rec.type = OpType::kRecurse;
      rec.src_col = src_col;
      rec.dst_col = dst_col;
      rec.max_hops = max_hops;
      rec.predicate = where;  // base/expansion edge filter
      Chain(&g, std::move(rec));
      if (outer_where != nullptr) {
        OpNode f;
        f.type = OpType::kFilter;
        f.predicate = outer_where;
        Chain(&g, std::move(f));
      }
      if (!projections.empty()) {
        OpNode pr;
        pr.type = OpType::kProject;
        pr.exprs = projections;
        Chain(&g, std::move(pr));
      }
      g.nodes.back().out = ExchangeKind::kToOrigin;
      Chain(&g, CollectNode(*this, /*aggregated=*/false));
      break;
    }
  }
  return g;
}

void QueryPlan::EnsureGraph() {
  if (graph.empty()) {
    graph = CanonicalGraph();
    graph_is_derived = true;
  }
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

void QueryPlan::Serialize(Writer* w) const {
  w->PutU8(static_cast<uint8_t>(kind));
  w->PutString(table);
  scan_schema.Serialize(w);
  PutOptionalExpr(w, where);
  w->PutVarint32(static_cast<uint32_t>(projections.size()));
  for (const auto& e : projections) e->Serialize(w);
  w->PutVarint32(static_cast<uint32_t>(output_names.size()));
  for (const auto& n : output_names) w->PutString(n);
  w->PutBool(distinct);
  PutIntVec(w, group_cols);
  w->PutVarint32(static_cast<uint32_t>(aggs.size()));
  for (const auto& a : aggs) a.Serialize(w);
  PutOptionalExpr(w, having);
  w->PutU8(static_cast<uint8_t>(agg_strategy));
  PutIntVec(w, final_projection);
  w->PutVarint64Signed(order_col);
  w->PutBool(order_desc);
  w->PutVarint64Signed(limit);
  w->PutU8(static_cast<uint8_t>(join_strategy));
  w->PutString(right_table);
  right_schema.Serialize(w);
  PutIntVec(w, left_key_cols);
  PutIntVec(w, right_key_cols);
  w->PutVarint64(static_cast<uint64_t>(every));
  w->PutVarint64(static_cast<uint64_t>(window));
  w->PutVarint64Signed(src_col);
  w->PutVarint64Signed(dst_col);
  w->PutVarint64Signed(max_hops);
  PutOptionalExpr(w, outer_where);
  bool ship_graph = !graph.empty() && !graph_is_derived;
  w->PutBool(ship_graph);
  if (ship_graph) graph.Serialize(w);
  // Budget travels last so members enforce the same caps as the origin.
  w->PutVarint64(budget.max_result_bytes);
  w->PutVarint64(budget.max_rehash_puts);
  w->PutVarint64(budget.max_result_rows);
}

Status QueryPlan::Deserialize(Reader* r, QueryPlan* out) {
  uint8_t kind = 0;
  PIER_RETURN_IF_ERROR(r->GetU8(&kind));
  if (kind > static_cast<uint8_t>(PlanKind::kRecursive)) {
    return Status::Corruption("bad plan kind");
  }
  out->kind = static_cast<PlanKind>(kind);
  PIER_RETURN_IF_ERROR(r->GetString(&out->table));
  PIER_RETURN_IF_ERROR(catalog::Schema::Deserialize(r, &out->scan_schema));
  PIER_RETURN_IF_ERROR(GetOptionalExpr(r, &out->where));
  uint32_t n = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 10000) return Status::Corruption("too many projections");
  out->projections.clear();
  for (uint32_t i = 0; i < n; ++i) {
    exec::ExprPtr e;
    PIER_RETURN_IF_ERROR(exec::Expr::Deserialize(r, &e));
    out->projections.push_back(std::move(e));
  }
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 10000) return Status::Corruption("too many output names");
  out->output_names.clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    PIER_RETURN_IF_ERROR(r->GetString(&name));
    out->output_names.push_back(std::move(name));
  }
  PIER_RETURN_IF_ERROR(r->GetBool(&out->distinct));
  PIER_RETURN_IF_ERROR(GetIntVec(r, &out->group_cols));
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 1000) return Status::Corruption("too many aggs");
  out->aggs.clear();
  for (uint32_t i = 0; i < n; ++i) {
    exec::AggSpec a;
    PIER_RETURN_IF_ERROR(exec::AggSpec::Deserialize(r, &a));
    out->aggs.push_back(std::move(a));
  }
  PIER_RETURN_IF_ERROR(GetOptionalExpr(r, &out->having));
  uint8_t agg_strategy = 0;
  PIER_RETURN_IF_ERROR(r->GetU8(&agg_strategy));
  if (agg_strategy > static_cast<uint8_t>(AggStrategy::kTree)) {
    return Status::Corruption("bad agg strategy");
  }
  out->agg_strategy = static_cast<AggStrategy>(agg_strategy);
  PIER_RETURN_IF_ERROR(GetIntVec(r, &out->final_projection));
  int64_t order_col = 0, limit = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&order_col));
  PIER_RETURN_IF_ERROR(r->GetBool(&out->order_desc));
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&limit));
  out->order_col = static_cast<int>(order_col);
  out->limit = limit;
  uint8_t join_strategy = 0;
  PIER_RETURN_IF_ERROR(r->GetU8(&join_strategy));
  if (join_strategy > static_cast<uint8_t>(JoinStrategy::kBloom)) {
    return Status::Corruption("bad join strategy");
  }
  out->join_strategy = static_cast<JoinStrategy>(join_strategy);
  PIER_RETURN_IF_ERROR(r->GetString(&out->right_table));
  PIER_RETURN_IF_ERROR(catalog::Schema::Deserialize(r, &out->right_schema));
  PIER_RETURN_IF_ERROR(GetIntVec(r, &out->left_key_cols));
  PIER_RETURN_IF_ERROR(GetIntVec(r, &out->right_key_cols));
  uint64_t every = 0, window = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint64(&every));
  PIER_RETURN_IF_ERROR(r->GetVarint64(&window));
  out->every = static_cast<Duration>(every);
  out->window = static_cast<Duration>(window);
  int64_t src_col = 0, dst_col = 0, max_hops = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&src_col));
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&dst_col));
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&max_hops));
  out->src_col = static_cast<int>(src_col);
  out->dst_col = static_cast<int>(dst_col);
  out->max_hops = static_cast<int>(max_hops);
  PIER_RETURN_IF_ERROR(GetOptionalExpr(r, &out->outer_where));
  bool has_graph = false;
  PIER_RETURN_IF_ERROR(r->GetBool(&has_graph));
  out->graph.nodes.clear();
  out->graph_is_derived = false;
  if (has_graph) {
    PIER_RETURN_IF_ERROR(OpGraph::Deserialize(r, &out->graph));
  }
  PIER_RETURN_IF_ERROR(r->GetVarint64(&out->budget.max_result_bytes));
  PIER_RETURN_IF_ERROR(r->GetVarint64(&out->budget.max_rehash_puts));
  PIER_RETURN_IF_ERROR(r->GetVarint64(&out->budget.max_result_rows));
  return Status::OK();
}

std::string QueryPlan::ToString() const {
  std::string out = "plan{";
  out += PlanKindName(kind);
  out += " table=" + table;
  if (kind == PlanKind::kJoin) {
    out += " join=" + std::string(JoinStrategyName(join_strategy));
    out += " right=" + right_table;
  }
  if (!aggs.empty()) {
    out += " aggs=";
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (i > 0) out += ",";
      out += exec::AggFuncName(aggs[i].fn);
    }
    out += " strategy=";
    out += AggStrategyName(agg_strategy);
  }
  if (where != nullptr) out += " where=" + where->ToString();
  if (every > 0) out += " every=" + FormatDuration(every);
  if (limit >= 0) out += " limit=" + std::to_string(limit);
  if (!graph.empty()) out += " ops=" + std::to_string(graph.size());
  out += "}";
  return out;
}

void PlanEnvelope::Serialize(Writer* w) const {
  w->PutVarint64(query_id);
  w->PutFixed32(origin);
  w->PutVarint64(static_cast<uint64_t>(issued_at));
  w->PutVarint64(static_cast<uint64_t>(deadline));
  plan.Serialize(w);
}

Status PlanEnvelope::Deserialize(Reader* r, PlanEnvelope* out) {
  PIER_RETURN_IF_ERROR(r->GetVarint64(&out->query_id));
  PIER_RETURN_IF_ERROR(r->GetFixed32(&out->origin));
  uint64_t issued = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint64(&issued));
  out->issued_at = static_cast<TimePoint>(issued);
  uint64_t deadline = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint64(&deadline));
  out->deadline = static_cast<TimePoint>(deadline);
  return QueryPlan::Deserialize(r, &out->plan);
}

}  // namespace query
}  // namespace pier
