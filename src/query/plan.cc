#include "query/plan.h"

namespace pier {
namespace query {

const char* PlanKindName(PlanKind k) {
  switch (k) {
    case PlanKind::kSelectProject:
      return "select-project";
    case PlanKind::kAggregate:
      return "aggregate";
    case PlanKind::kJoin:
      return "join";
    case PlanKind::kRecursive:
      return "recursive";
  }
  return "?";
}

const char* JoinStrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kSymmetricHash:
      return "symmetric-hash";
    case JoinStrategy::kFetchMatches:
      return "fetch-matches";
    case JoinStrategy::kSymmetricSemi:
      return "symmetric-semi";
    case JoinStrategy::kBloom:
      return "bloom";
  }
  return "?";
}

const char* AggStrategyName(AggStrategy s) {
  switch (s) {
    case AggStrategy::kDirect:
      return "direct";
    case AggStrategy::kTree:
      return "tree";
  }
  return "?";
}

namespace {

void PutOptionalExpr(Writer* w, const exec::ExprPtr& e) {
  w->PutBool(e != nullptr);
  if (e != nullptr) e->Serialize(w);
}

Status GetOptionalExpr(Reader* r, exec::ExprPtr* out) {
  bool present = false;
  PIER_RETURN_IF_ERROR(r->GetBool(&present));
  if (!present) {
    out->reset();
    return Status::OK();
  }
  return exec::Expr::Deserialize(r, out);
}

void PutIntVec(Writer* w, const std::vector<int>& v) {
  w->PutVarint32(static_cast<uint32_t>(v.size()));
  for (int x : v) w->PutVarint64Signed(x);
}

Status GetIntVec(Reader* r, std::vector<int>* out) {
  uint32_t n = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 100000) return Status::Corruption("int vector too long");
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int64_t x = 0;
    PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&x));
    out->push_back(static_cast<int>(x));
  }
  return Status::OK();
}

}  // namespace

void QueryPlan::Serialize(Writer* w) const {
  w->PutU8(static_cast<uint8_t>(kind));
  w->PutString(table);
  scan_schema.Serialize(w);
  PutOptionalExpr(w, where);
  w->PutVarint32(static_cast<uint32_t>(projections.size()));
  for (const auto& e : projections) e->Serialize(w);
  w->PutVarint32(static_cast<uint32_t>(output_names.size()));
  for (const auto& n : output_names) w->PutString(n);
  w->PutBool(distinct);
  PutIntVec(w, group_cols);
  w->PutVarint32(static_cast<uint32_t>(aggs.size()));
  for (const auto& a : aggs) a.Serialize(w);
  PutOptionalExpr(w, having);
  w->PutU8(static_cast<uint8_t>(agg_strategy));
  PutIntVec(w, final_projection);
  w->PutVarint64Signed(order_col);
  w->PutBool(order_desc);
  w->PutVarint64Signed(limit);
  w->PutU8(static_cast<uint8_t>(join_strategy));
  w->PutString(right_table);
  right_schema.Serialize(w);
  PutIntVec(w, left_key_cols);
  PutIntVec(w, right_key_cols);
  w->PutVarint64(static_cast<uint64_t>(every));
  w->PutVarint64(static_cast<uint64_t>(window));
  w->PutVarint64Signed(src_col);
  w->PutVarint64Signed(dst_col);
  w->PutVarint64Signed(max_hops);
  PutOptionalExpr(w, outer_where);
}

Status QueryPlan::Deserialize(Reader* r, QueryPlan* out) {
  uint8_t kind = 0;
  PIER_RETURN_IF_ERROR(r->GetU8(&kind));
  if (kind > static_cast<uint8_t>(PlanKind::kRecursive)) {
    return Status::Corruption("bad plan kind");
  }
  out->kind = static_cast<PlanKind>(kind);
  PIER_RETURN_IF_ERROR(r->GetString(&out->table));
  PIER_RETURN_IF_ERROR(catalog::Schema::Deserialize(r, &out->scan_schema));
  PIER_RETURN_IF_ERROR(GetOptionalExpr(r, &out->where));
  uint32_t n = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 10000) return Status::Corruption("too many projections");
  out->projections.clear();
  for (uint32_t i = 0; i < n; ++i) {
    exec::ExprPtr e;
    PIER_RETURN_IF_ERROR(exec::Expr::Deserialize(r, &e));
    out->projections.push_back(std::move(e));
  }
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 10000) return Status::Corruption("too many output names");
  out->output_names.clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    PIER_RETURN_IF_ERROR(r->GetString(&name));
    out->output_names.push_back(std::move(name));
  }
  PIER_RETURN_IF_ERROR(r->GetBool(&out->distinct));
  PIER_RETURN_IF_ERROR(GetIntVec(r, &out->group_cols));
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 1000) return Status::Corruption("too many aggs");
  out->aggs.clear();
  for (uint32_t i = 0; i < n; ++i) {
    exec::AggSpec a;
    PIER_RETURN_IF_ERROR(exec::AggSpec::Deserialize(r, &a));
    out->aggs.push_back(std::move(a));
  }
  PIER_RETURN_IF_ERROR(GetOptionalExpr(r, &out->having));
  uint8_t agg_strategy = 0;
  PIER_RETURN_IF_ERROR(r->GetU8(&agg_strategy));
  if (agg_strategy > static_cast<uint8_t>(AggStrategy::kTree)) {
    return Status::Corruption("bad agg strategy");
  }
  out->agg_strategy = static_cast<AggStrategy>(agg_strategy);
  PIER_RETURN_IF_ERROR(GetIntVec(r, &out->final_projection));
  int64_t order_col = 0, limit = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&order_col));
  PIER_RETURN_IF_ERROR(r->GetBool(&out->order_desc));
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&limit));
  out->order_col = static_cast<int>(order_col);
  out->limit = limit;
  uint8_t join_strategy = 0;
  PIER_RETURN_IF_ERROR(r->GetU8(&join_strategy));
  if (join_strategy > static_cast<uint8_t>(JoinStrategy::kBloom)) {
    return Status::Corruption("bad join strategy");
  }
  out->join_strategy = static_cast<JoinStrategy>(join_strategy);
  PIER_RETURN_IF_ERROR(r->GetString(&out->right_table));
  PIER_RETURN_IF_ERROR(catalog::Schema::Deserialize(r, &out->right_schema));
  PIER_RETURN_IF_ERROR(GetIntVec(r, &out->left_key_cols));
  PIER_RETURN_IF_ERROR(GetIntVec(r, &out->right_key_cols));
  uint64_t every = 0, window = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint64(&every));
  PIER_RETURN_IF_ERROR(r->GetVarint64(&window));
  out->every = static_cast<Duration>(every);
  out->window = static_cast<Duration>(window);
  int64_t src_col = 0, dst_col = 0, max_hops = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&src_col));
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&dst_col));
  PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&max_hops));
  out->src_col = static_cast<int>(src_col);
  out->dst_col = static_cast<int>(dst_col);
  out->max_hops = static_cast<int>(max_hops);
  PIER_RETURN_IF_ERROR(GetOptionalExpr(r, &out->outer_where));
  return Status::OK();
}

std::string QueryPlan::ToString() const {
  std::string out = "plan{";
  out += PlanKindName(kind);
  out += " table=" + table;
  if (kind == PlanKind::kJoin) {
    out += " join=" + std::string(JoinStrategyName(join_strategy));
    out += " right=" + right_table;
  }
  if (!aggs.empty()) {
    out += " aggs=";
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (i > 0) out += ",";
      out += exec::AggFuncName(aggs[i].fn);
    }
    out += " strategy=";
    out += AggStrategyName(agg_strategy);
  }
  if (where != nullptr) out += " where=" + where->ToString();
  if (every > 0) out += " every=" + FormatDuration(every);
  if (limit >= 0) out += " limit=" + std::to_string(limit);
  out += "}";
  return out;
}

void PlanEnvelope::Serialize(Writer* w) const {
  w->PutVarint64(query_id);
  w->PutFixed32(origin);
  w->PutVarint64(static_cast<uint64_t>(issued_at));
  plan.Serialize(w);
}

Status PlanEnvelope::Deserialize(Reader* r, PlanEnvelope* out) {
  PIER_RETURN_IF_ERROR(r->GetVarint64(&out->query_id));
  PIER_RETURN_IF_ERROR(r->GetFixed32(&out->origin));
  uint64_t issued = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint64(&issued));
  out->issued_at = static_cast<TimePoint>(issued);
  return QueryPlan::Deserialize(r, &out->plan);
}

}  // namespace query
}  // namespace pier
