#include "dht/storage.h"

#include "common/logging.h"

namespace pier {
namespace dht {

Dht::Dht(overlay::Transport* transport, overlay::Router* router,
         overlay::RouteMux* mux, DhtOptions options)
    : transport_(transport),
      router_(router),
      sim_(transport->simulation()),
      options_(options),
      rpc_(transport->simulation()) {
  mux->Register(kPutTag, [this](const overlay::RoutedMessage& m) {
    OnRoutedPut(m);
  });
  mux->Register(kGetTag, [this](const overlay::RoutedMessage& m) {
    OnRoutedGet(m);
  });
  transport_->RegisterHandler(
      overlay::Proto::kDht,
      [this](sim::HostId from, Reader* r, const sim::Payload& /*body*/) {
        OnDirect(from, r);
      });
}

void Dht::Start() {
  running_ = true;
  sweep_task_.Start(sim_, options_.sweep_interval, options_.sweep_interval,
                    [this] {
                      stats_.items_swept += store_.Sweep(sim_->now());
                    });
}

void Dht::Stop() {
  running_ = false;
  sweep_task_.Stop();
  rpc_.CancelAll();
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

void Dht::Put(const DhtKey& key, std::string value, Duration ttl,
              PutCallback done) {
  PutEx(key, std::move(value), ttl, /*replicate=*/true, std::move(done));
}

void Dht::PutEx(const DhtKey& key, std::string value, Duration ttl,
                bool replicate, PutCallback done) {
  if (ttl <= 0) ttl = options_.default_ttl;
  SendPutOnce(key, value, ttl, replicate, std::move(done), 0);
}

void Dht::SubscribeArrivals(const std::string& ns, ArrivalFn fn) {
  arrival_subscribers_[ns] = std::move(fn);
}

void Dht::UnsubscribeArrivals(const std::string& ns) {
  arrival_subscribers_.erase(ns);
}

void Dht::SendPutOnce(const DhtKey& key, const std::string& value,
                      Duration ttl, bool replicate, PutCallback done,
                      int attempt) {
  if (!running_) {
    if (done) done(Status::Unavailable("dht stopped"));
    return;
  }
  ++stats_.puts_sent;
  uint64_t req_id = 0;
  if (done) {
    req_id = rpc_.Begin(
        [this, key, value, ttl, replicate, done, attempt](Status s, Reader*) {
          if (s.ok()) {
            ++stats_.puts_acked;
            done(Status::OK());
            return;
          }
          if (attempt < options_.put_retries) {
            ++stats_.put_retries;
            SendPutOnce(key, value, ttl, replicate, done, attempt + 1);
          } else {
            ++stats_.put_failures;
            done(Status::Timeout("put: no ack after retries"));
          }
        },
        options_.put_timeout);
  }
  Writer w;
  key.Serialize(&w);
  w.PutString(value);
  w.PutVarint64(static_cast<uint64_t>(ttl));
  w.PutVarint64(req_id);  // 0 = no ack requested
  w.PutFixed32(transport_->self());
  w.PutBool(replicate);
  router_->Route(key.RoutingKey(), kPutTag, sim::Payload(w.Release()));
}

void Dht::Get(const std::string& ns, const std::string& resource,
              GetCallback cb) {
  SendGetOnce(ns, resource, std::move(cb), 0);
}

void Dht::SendGetOnce(const std::string& ns, const std::string& resource,
                      GetCallback cb, int attempt) {
  if (!running_) {
    cb(Status::Unavailable("dht stopped"), {});
    return;
  }
  ++stats_.gets_sent;
  uint64_t req_id = rpc_.Begin(
      [this, ns, resource, cb, attempt](Status s, Reader* r) {
        if (!s.ok()) {
          if (attempt < options_.get_retries) {
            ++stats_.get_retries;
            SendGetOnce(ns, resource, cb, attempt + 1);
          } else {
            ++stats_.get_failures;
            cb(s, {});
          }
          return;
        }
        uint32_t count = 0;
        if (!r->GetVarint32(&count).ok()) {
          cb(Status::Corruption("bad get response"), {});
          return;
        }
        std::vector<DhtItem> items;
        items.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          DhtItem item;
          if (!DhtKey::Deserialize(r, &item.key).ok() ||
              !r->GetString(&item.value).ok()) {
            cb(Status::Corruption("bad get item"), {});
            return;
          }
          items.push_back(std::move(item));
        }
        ++stats_.gets_ok;
        cb(Status::OK(), std::move(items));
      },
      options_.get_timeout);

  DhtKey probe{ns, resource, 0};
  Writer w;
  w.PutString(ns);
  w.PutString(resource);
  w.PutVarint64(req_id);
  w.PutFixed32(transport_->self());
  router_->Route(probe.RoutingKey(), kGetTag, sim::Payload(w.Release()));
}

// ---------------------------------------------------------------------------
// Owner side
// ---------------------------------------------------------------------------

void Dht::OnRoutedPut(const overlay::RoutedMessage& m) {
  if (!running_) return;
  Reader r(m.payload.view());
  StoredItem item;
  uint64_t ttl = 0, req_id = 0;
  uint32_t origin = 0;
  bool replicate = true;
  if (!DhtKey::Deserialize(&r, &item.key).ok() ||
      !r.GetString(&item.value).ok() || !r.GetVarint64(&ttl).ok() ||
      !r.GetVarint64(&req_id).ok() || !r.GetFixed32(&origin).ok() ||
      !r.GetBool(&replicate).ok()) {
    return;
  }
  ++stats_.store_requests;
  item.expires_at = sim_->now() + static_cast<Duration>(ttl);
  item.stored_at = sim_->now();
  item.publisher = origin;
  item.replica = false;
  // The subscriber rules first: an item it consumes (forwards down a PHT
  // trie, say) must not be stored OR replicated here — replicas of data
  // that lives elsewhere would resurface as ghosts after a failover.
  bool keep = true;
  auto sub = arrival_subscribers_.find(item.key.ns);
  if (sub != arrival_subscribers_.end()) keep = sub->second(item);
  if (keep) {
    if (replicate) ReplicateOut(item);
    store_.Put(std::move(item));
  }
  if (req_id != 0) {
    Writer w;
    w.PutU8(static_cast<uint8_t>(MsgType::kPutAck));
    w.PutVarint64(req_id);
    transport_->Send(origin, overlay::Proto::kDht, w);
  }
}

void Dht::OnRoutedGet(const overlay::RoutedMessage& m) {
  if (!running_) return;
  Reader r(m.payload.view());
  std::string ns, resource;
  uint64_t req_id = 0;
  uint32_t origin = 0;
  if (!r.GetString(&ns).ok() || !r.GetString(&resource).ok() ||
      !r.GetVarint64(&req_id).ok() || !r.GetFixed32(&origin).ok()) {
    return;
  }
  ++stats_.serve_requests;
  // Replica copies answer too: if this node now owns the key after a
  // failover, its replicas are the surviving data. Two visitor passes
  // (count, then serialize straight from the store) — no item copies.
  TimePoint now = sim_->now();
  uint32_t count = 0;
  size_t bytes = 0;
  store_.ForEachAt(ns, resource, now, [&](const StoredItem& item) {
    ++count;
    bytes += item.key.resource.size() + item.value.size() + 24;
    return true;
  });
  Writer w;
  w.Reserve(bytes + 16);
  w.PutU8(static_cast<uint8_t>(MsgType::kGetResp));
  w.PutVarint64(req_id);
  w.PutVarint32(count);
  store_.ForEachAt(ns, resource, now, [&w](const StoredItem& item) {
    item.key.Serialize(&w);
    w.PutString(item.value);
    return true;
  });
  transport_->Send(origin, overlay::Proto::kDht, w);
}

void Dht::ReplicateOut(const StoredItem& item) {
  if (options_.replicas <= 0) return;
  std::vector<overlay::NodeInfo> neighbors = router_->RoutingNeighbors();
  int pushed = 0;
  for (const overlay::NodeInfo& n : neighbors) {
    if (pushed >= options_.replicas) break;
    Writer w;
    w.PutU8(static_cast<uint8_t>(MsgType::kReplicate));
    item.key.Serialize(&w);
    w.PutString(item.value);
    w.PutVarint64(static_cast<uint64_t>(item.expires_at - sim_->now()));
    w.PutFixed32(item.publisher);
    transport_->Send(n.host, overlay::Proto::kDht, w);
    ++pushed;
    ++stats_.replicas_pushed;
  }
}

void Dht::OnDirect(sim::HostId /*from*/, Reader* r) {
  uint8_t type = 0;
  if (!r->GetU8(&type).ok()) return;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPutAck: {
      uint64_t req_id = 0;
      if (!r->GetVarint64(&req_id).ok()) return;
      rpc_.Complete(req_id, r);
      break;
    }
    case MsgType::kGetResp: {
      uint64_t req_id = 0;
      if (!r->GetVarint64(&req_id).ok()) return;
      rpc_.Complete(req_id, r);
      break;
    }
    case MsgType::kReplicate: {
      if (!running_) return;
      StoredItem item;
      uint64_t ttl = 0;
      uint32_t publisher = 0;
      if (!DhtKey::Deserialize(r, &item.key).ok() ||
          !r->GetString(&item.value).ok() || !r->GetVarint64(&ttl).ok() ||
          !r->GetFixed32(&publisher).ok()) {
        return;
      }
      item.expires_at = sim_->now() + static_cast<Duration>(ttl);
      item.stored_at = sim_->now();
      item.publisher = publisher;
      item.replica = true;
      store_.Put(std::move(item));
      ++stats_.replicas_received;
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// RenewingPublisher
// ---------------------------------------------------------------------------

RenewingPublisher::RenewingPublisher(Dht* dht, sim::Simulation* sim,
                                     Duration ttl)
    : dht_(dht), sim_(sim), ttl_(ttl) {}

void RenewingPublisher::Publish(const DhtKey& key, std::string value) {
  for (auto& [k, v] : items_) {
    if (k == key) {
      v = std::move(value);
      dht_->Put(key, v, ttl_, nullptr);
      return;
    }
  }
  items_.emplace_back(key, std::move(value));
  dht_->Put(key, items_.back().second, ttl_, nullptr);
}

void RenewingPublisher::Withdraw(const DhtKey& key) {
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->first == key) {
      items_.erase(it);
      return;
    }
  }
}

void RenewingPublisher::Start() {
  renew_task_.Start(sim_, ttl_ / 2, ttl_ / 2, [this] { RenewAll(); });
}

void RenewingPublisher::Stop() { renew_task_.Stop(); }

void RenewingPublisher::RenewAll() {
  for (const auto& [key, value] : items_) {
    dht_->Renew(key, value, ttl_, nullptr);
  }
}

}  // namespace dht
}  // namespace pier
