#include "dht/broadcast.h"

#include <algorithm>
#include <vector>

namespace pier {
namespace dht {

BroadcastService::BroadcastService(overlay::Transport* transport,
                                   overlay::Router* router)
    : transport_(transport), router_(router) {
  transport_->RegisterHandler(
      overlay::Proto::kBroadcast,
      [this](sim::HostId from, Reader* r, const sim::Payload& body) {
        OnMessage(from, r, body);
      });
}

uint64_t BroadcastService::Broadcast(sim::Payload payload) {
  if (!running_) return 0;
  uint64_t seq = next_seq_++;
  ++stats_.initiated;
  sim::HostId self = transport_->self();
  AlreadySeen(self, seq);  // mark, so loops back to us are suppressed
  Deliver(self, seq, /*parent=*/self, 0, payload);
  // Whole ring: limit == own id (the interval (self, self) wraps all the
  // way around).
  Relay(self, seq, router_->self().id, 0, payload);
  return seq;
}

void BroadcastService::Relay(sim::HostId origin, uint64_t seq,
                             const Id160& limit, int depth,
                             const sim::Payload& payload) {
  if (depth >= kMaxDepth) return;
  const Id160 self_id = router_->self().id;
  std::vector<overlay::NodeInfo> neighbors = router_->RoutingNeighbors();
  // Keep only neighbors strictly inside (self, limit), sorted clockwise.
  std::vector<overlay::NodeInfo> in_range;
  for (const auto& n : neighbors) {
    if (limit == self_id || n.id.InIntervalOpenOpen(self_id, limit)) {
      in_range.push_back(n);
    }
  }
  std::sort(in_range.begin(), in_range.end(),
            [&](const overlay::NodeInfo& a, const overlay::NodeInfo& b) {
              return self_id.DistanceTo(a.id) < self_id.DistanceTo(b.id);
            });
  in_range.erase(std::unique(in_range.begin(), in_range.end(),
                             [](const overlay::NodeInfo& a,
                                const overlay::NodeInfo& b) {
                               return a.host == b.host;
                             }),
                 in_range.end());
  for (size_t i = 0; i < in_range.size(); ++i) {
    // Neighbor i covers up to the next neighbor (or our limit for the last).
    // Only this small tree header is rebuilt per edge; the payload buffer
    // is shared down the entire dissemination tree.
    const Id160& sub_limit =
        (i + 1 < in_range.size()) ? in_range[i + 1].id : limit;
    Writer w;
    w.PutFixed32(origin);
    w.PutVarint64(seq);
    sub_limit.Serialize(&w);
    w.PutVarint32(static_cast<uint32_t>(depth + 1));
    transport_->SendWithBody(in_range[i].host, overlay::Proto::kBroadcast, w,
                             payload);
    ++stats_.forwarded;
  }
}

void BroadcastService::OnMessage(sim::HostId from, Reader* r,
                                 const sim::Payload& body) {
  uint32_t origin = 0, depth = 0;
  uint64_t seq = 0;
  Id160 limit;
  if (!r->GetFixed32(&origin).ok() || !r->GetVarint64(&seq).ok() ||
      !Id160::Deserialize(r, &limit).ok() || !r->GetVarint32(&depth).ok()) {
    return;
  }
  if (!running_) return;
  if (AlreadySeen(origin, seq)) {
    ++stats_.duplicates;
    return;
  }
  stats_.max_depth_seen =
      std::max(stats_.max_depth_seen, static_cast<int>(depth));
  Deliver(origin, seq, from, static_cast<int>(depth), body);
  Relay(origin, seq, limit, static_cast<int>(depth), body);
}

void BroadcastService::Deliver(sim::HostId origin, uint64_t seq,
                               sim::HostId parent, int depth,
                               const sim::Payload& payload) {
  ++stats_.delivered;
  if (handler_) handler_(origin, seq, parent, depth, payload);
}

bool BroadcastService::AlreadySeen(sim::HostId origin, uint64_t seq) {
  TimePoint now = transport_->simulation()->now();
  for (auto it = seen_.begin(); it != seen_.end();) {
    if (it->second <= now) {
      it = seen_.erase(it);
    } else {
      ++it;
    }
  }
  auto [it, inserted] = seen_.emplace(std::make_pair(origin, seq),
                                      now + kSeenTtl);
  (void)it;
  return !inserted;
}

}  // namespace dht
}  // namespace pier
