#include "dht/broadcast.h"

#include <algorithm>
#include <vector>

#include "common/backoff.h"

namespace pier {
namespace dht {

BroadcastService::BroadcastService(overlay::Transport* transport,
                                   overlay::Router* router,
                                   BroadcastOptions options)
    : transport_(transport), router_(router), options_(options) {
  transport_->RegisterHandler(
      overlay::Proto::kBroadcast,
      [this](sim::HostId from, Reader* r, const sim::Payload& body) {
        OnMessage(from, r, body);
      });
}

BroadcastService::~BroadcastService() {
  running_ = false;
  for (sim::TimerId id : timers_) transport_->simulation()->Cancel(id);
}

sim::TimerId BroadcastService::ScheduleTimer(Duration delay,
                                             std::function<void()> fn) {
  sim::TimerId id = transport_->simulation()->ScheduleAfter(
      delay, [this, fn = std::move(fn)] {
        if (!running_) return;
        fn();
      });
  timers_.push_back(id);
  return id;
}

uint64_t BroadcastService::Broadcast(sim::Payload payload) {
  if (!running_) return 0;
  uint64_t seq = next_seq_++;
  ++stats_.initiated;
  sim::HostId self = transport_->self();
  AlreadySeen(self, seq);  // mark, so loops back to us are suppressed
  Deliver(self, seq, /*parent=*/self, 0, payload);
  // Whole ring: limit == own id (the interval (self, self) wraps all the
  // way around).
  if (!options_.reliable) {
    Relay(nullptr, self, seq, router_->self().id, 0, payload);
    return seq;
  }
  RelayState& state = relays_[{self, seq}];
  state.parent = self;
  state.is_origin = true;
  state.payload = payload;
  state.expires = transport_->simulation()->now() + kSeenTtl;
  Relay(&state, self, seq, router_->self().id, 0, payload);
  ArmCoverDeadline(self, seq);
  MaybeFinishCover(self, seq, &state);  // leaf origin: fire immediately
  return seq;
}

void BroadcastService::Relay(RelayState* state, sim::HostId origin,
                             uint64_t seq, const Id160& limit, int depth,
                             const sim::Payload& payload) {
  if (depth >= kMaxDepth) return;
  const Id160 self_id = router_->self().id;
  std::vector<overlay::NodeInfo> neighbors = router_->RoutingNeighbors();
  // Keep only neighbors strictly inside (self, limit), sorted clockwise.
  std::vector<overlay::NodeInfo> in_range;
  for (const auto& n : neighbors) {
    if (limit == self_id || n.id.InIntervalOpenOpen(self_id, limit)) {
      in_range.push_back(n);
    }
  }
  std::sort(in_range.begin(), in_range.end(),
            [&](const overlay::NodeInfo& a, const overlay::NodeInfo& b) {
              return self_id.DistanceTo(a.id) < self_id.DistanceTo(b.id);
            });
  in_range.erase(std::unique(in_range.begin(), in_range.end(),
                             [](const overlay::NodeInfo& a,
                                const overlay::NodeInfo& b) {
                               return a.host == b.host;
                             }),
                 in_range.end());
  for (size_t i = 0; i < in_range.size(); ++i) {
    // Neighbor i covers up to the next neighbor (or our limit for the last).
    const Id160& sub_limit =
        (i + 1 < in_range.size()) ? in_range[i + 1].id : limit;
    if (state == nullptr) {
      ChildEdge edge;
      edge.host = in_range[i].host;
      edge.sub_limit = sub_limit;
      edge.depth = depth + 1;
      SendDataEdge(origin, seq, &edge, payload);
      continue;
    }
    state->children.emplace_back();
    ChildEdge& edge = state->children.back();
    edge.host = in_range[i].host;
    edge.sub_limit = sub_limit;
    edge.depth = depth + 1;
    SendDataEdge(origin, seq, &edge, payload);
    ScheduleEdgeRetry(origin, seq, edge.host);
  }
}

void BroadcastService::SendDataEdge(sim::HostId origin, uint64_t seq,
                                    ChildEdge* edge,
                                    const sim::Payload& payload) {
  // Only this small tree header is rebuilt per edge; the payload buffer is
  // shared down the entire dissemination tree.
  Writer w;
  w.PutU8(kData);
  w.PutFixed32(origin);
  w.PutVarint64(seq);
  edge->sub_limit.Serialize(&w);
  w.PutVarint32(static_cast<uint32_t>(edge->depth));
  transport_->SendWithBody(edge->host, overlay::Proto::kBroadcast, w, payload);
  if (edge->attempts == 0) {
    ++stats_.forwarded;
  } else {
    ++stats_.retransmits;
  }
  ++edge->attempts;
}

void BroadcastService::ScheduleEdgeRetry(sim::HostId origin, uint64_t seq,
                                         sim::HostId child) {
  RelayState* state = FindRelay(origin, seq);
  if (state == nullptr) return;
  ChildEdge* edge = nullptr;
  for (auto& e : state->children) {
    if (e.host == child) edge = &e;
  }
  if (edge == nullptr) return;
  uint64_t salt = MixHash64(
      (static_cast<uint64_t>(origin) << 32) ^ seq ^
      (static_cast<uint64_t>(child) << 17) ^ transport_->self());
  Duration delay = RetryDelay(options_.ack_timeout, options_.ack_max,
                                     0.25, salt, edge->attempts);
  ScheduleTimer(delay, [this, origin, seq, child] {
    RelayState* s = FindRelay(origin, seq);
    if (s == nullptr || s->cover_sent) return;
    ChildEdge* e = nullptr;
    for (auto& c : s->children) {
      if (c.host == child) e = &c;
    }
    if (e == nullptr || e->acked || e->covered || e->failed) return;
    if (e->attempts >= options_.retries) {
      e->failed = true;
      ++stats_.edges_failed;
      MaybeFinishCover(origin, seq, s);
      return;
    }
    SendDataEdge(origin, seq, e, s->payload);
    ScheduleEdgeRetry(origin, seq, child);
  });
}

void BroadcastService::OnMessage(sim::HostId from, Reader* r,
                                 const sim::Payload& body) {
  uint8_t kind = 0;
  if (!r->GetU8(&kind).ok()) return;
  if (!running_) return;
  switch (static_cast<Kind>(kind)) {
    case kData:
      OnData(from, r, body);
      break;
    case kAck:
      OnAck(from, r);
      break;
    case kCover:
      OnCover(from, r);
      break;
    default:
      break;
  }
}

void BroadcastService::OnData(sim::HostId from, Reader* r,
                              const sim::Payload& body) {
  uint32_t origin = 0, depth = 0;
  uint64_t seq = 0;
  Id160 limit;
  if (!r->GetFixed32(&origin).ok() || !r->GetVarint64(&seq).ok() ||
      !Id160::Deserialize(r, &limit).ok() || !r->GetVarint32(&depth).ok()) {
    return;
  }
  if (options_.reliable) SendAck(from, origin, seq, kAckData);
  if (AlreadySeen(origin, seq)) {
    ++stats_.duplicates;
    // A second parent picked us up. Its subtree count must not double-count
    // ours (the first parent accounts for it), so cover it with zero
    // additional members — delivered, nothing new underneath.
    //
    // Our OWN parent retransmitting (its ack got lost) must NOT get that
    // zero-cover: it is the one accounting for our subtree, and a zero that
    // races ahead of the real cover would erase the subtree from the
    // origin's count while leaving the wave marked complete. The ack above
    // already stops its retries; the real cover has its own retry loop.
    if (options_.reliable) {
      RelayState* state = FindRelay(origin, seq);
      if (state == nullptr || state->parent != from) {
        Writer w;
        w.PutU8(kCover);
        w.PutFixed32(origin);
        w.PutVarint64(seq);
        w.PutVarint64(0);
        w.PutU8(1);
        transport_->Send(from, overlay::Proto::kBroadcast, w);
      }
    }
    return;
  }
  stats_.max_depth_seen =
      std::max(stats_.max_depth_seen, static_cast<int>(depth));
  Deliver(origin, seq, from, static_cast<int>(depth), body);
  if (!options_.reliable) {
    Relay(nullptr, origin, seq, limit, static_cast<int>(depth), body);
    return;
  }
  RelayState& state = relays_[{origin, seq}];
  state.parent = from;
  state.payload = body;
  state.expires = transport_->simulation()->now() + kSeenTtl;
  Relay(&state, origin, seq, limit, static_cast<int>(depth), body);
  ArmCoverDeadline(origin, seq);
  MaybeFinishCover(origin, seq, &state);  // leaf: cover immediately
}

void BroadcastService::OnAck(sim::HostId from, Reader* r) {
  uint32_t origin = 0;
  uint64_t seq = 0;
  uint8_t what = 0;
  if (!r->GetFixed32(&origin).ok() || !r->GetVarint64(&seq).ok() ||
      !r->GetU8(&what).ok()) {
    return;
  }
  RelayState* state = FindRelay(origin, seq);
  if (state == nullptr) return;
  ++stats_.acks_received;
  if (what == kAckCover) {
    state->cover_acked = true;
    return;
  }
  for (auto& e : state->children) {
    if (e.host == from) e.acked = true;
  }
}

void BroadcastService::OnCover(sim::HostId from, Reader* r) {
  uint32_t origin = 0;
  uint64_t seq = 0, count = 0;
  uint8_t complete = 0;
  if (!r->GetFixed32(&origin).ok() || !r->GetVarint64(&seq).ok() ||
      !r->GetVarint64(&count).ok() || !r->GetU8(&complete).ok()) {
    return;
  }
  // Always ack, even when our state is gone — the child keeps retrying
  // otherwise.
  SendAck(from, origin, seq, kAckCover);
  RelayState* state = FindRelay(origin, seq);
  if (state == nullptr) return;
  for (auto& e : state->children) {
    if (e.host == from && !e.covered) {
      e.covered = true;
      e.cover_count = count;
      e.cover_complete = complete != 0;
      ++stats_.covers_received;
    }
  }
  MaybeFinishCover(origin, seq, state);
}

void BroadcastService::SendAck(sim::HostId to, sim::HostId origin,
                               uint64_t seq, AckWhat what) {
  Writer w;
  w.PutU8(kAck);
  w.PutFixed32(origin);
  w.PutVarint64(seq);
  w.PutU8(static_cast<uint8_t>(what));
  transport_->Send(to, overlay::Proto::kBroadcast, w);
}

void BroadcastService::MaybeFinishCover(sim::HostId origin, uint64_t seq,
                                        RelayState* state) {
  if (state->cover_sent) return;
  uint64_t count = 1;  // self
  bool complete = true;
  for (const auto& e : state->children) {
    if (!e.covered && !e.failed) return;  // still waiting
    if (e.covered) {
      count += e.cover_count;
      complete = complete && e.cover_complete;
    } else {
      complete = false;
    }
  }
  state->cover_sent = true;
  state->cover_count = count;
  state->cover_complete = complete;
  if (state->is_origin) {
    // Deferred a tick: a childless origin finishes its cover synchronously
    // inside Broadcast(), and the caller registers interest in `seq` only
    // after Broadcast returns it.
    if (coverage_fn_) {
      ScheduleTimer(0, [this, seq, count, complete] {
        if (coverage_fn_) coverage_fn_(seq, count, complete);
      });
    }
    return;
  }
  SendCoverOnce(origin, seq, state);
  ScheduleCoverRetry(origin, seq);
}

void BroadcastService::SendCoverOnce(sim::HostId origin, uint64_t seq,
                                     RelayState* state) {
  Writer w;
  w.PutU8(kCover);
  w.PutFixed32(origin);
  w.PutVarint64(seq);
  w.PutVarint64(state->cover_count);
  w.PutU8(state->cover_complete ? 1 : 0);
  transport_->Send(state->parent, overlay::Proto::kBroadcast, w);
  if (state->cover_attempts > 0) ++stats_.retransmits;
  ++state->cover_attempts;
}

void BroadcastService::ScheduleCoverRetry(sim::HostId origin, uint64_t seq) {
  RelayState* state = FindRelay(origin, seq);
  if (state == nullptr) return;
  uint64_t salt = MixHash64((static_cast<uint64_t>(origin) << 32) ^
                                   seq ^ (~0u - transport_->self()));
  Duration delay = RetryDelay(options_.ack_timeout, options_.ack_max,
                                     0.25, salt, state->cover_attempts);
  ScheduleTimer(delay, [this, origin, seq] {
    RelayState* s = FindRelay(origin, seq);
    if (s == nullptr || s->cover_acked) return;
    if (s->cover_attempts >= options_.retries) return;  // give up quietly
    SendCoverOnce(origin, seq, s);
    ScheduleCoverRetry(origin, seq);
  });
}

void BroadcastService::ArmCoverDeadline(sim::HostId origin, uint64_t seq) {
  ScheduleTimer(options_.cover_timeout, [this, origin, seq] {
    RelayState* s = FindRelay(origin, seq);
    if (s == nullptr || s->cover_sent) return;
    // Children that never covered are abandoned; the wave goes up marked
    // incomplete rather than stalling the origin forever.
    for (auto& e : s->children) {
      if (!e.covered && !e.failed) {
        e.failed = true;
        ++stats_.edges_failed;
      }
    }
    MaybeFinishCover(origin, seq, s);
  });
}

BroadcastService::RelayState* BroadcastService::FindRelay(sim::HostId origin,
                                                          uint64_t seq) {
  auto it = relays_.find({origin, seq});
  return it == relays_.end() ? nullptr : &it->second;
}

void BroadcastService::Deliver(sim::HostId origin, uint64_t seq,
                               sim::HostId parent, int depth,
                               const sim::Payload& payload) {
  ++stats_.delivered;
  if (handler_) handler_(origin, seq, parent, depth, payload);
}

bool BroadcastService::AlreadySeen(sim::HostId origin, uint64_t seq) {
  TimePoint now = transport_->simulation()->now();
  for (auto it = seen_.begin(); it != seen_.end();) {
    if (it->second <= now) {
      it = seen_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = relays_.begin(); it != relays_.end();) {
    if (it->second.expires <= now) {
      it = relays_.erase(it);
    } else {
      ++it;
    }
  }
  auto [it, inserted] = seen_.emplace(std::make_pair(origin, seq),
                                      now + kSeenTtl);
  (void)it;
  return !inserted;
}

}  // namespace dht
}  // namespace pier
