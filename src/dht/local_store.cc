#include "dht/local_store.h"

namespace pier {
namespace dht {

void LocalStore::Put(StoredItem item) {
  ResourceMap& rm = by_namespace_[item.key.ns];
  auto map_key = std::make_pair(item.key.resource, item.key.instance);
  auto it = rm.find(map_key);
  if (it == rm.end()) {
    rm.emplace(map_key, std::move(item));
    ++size_;
  } else {
    // Renewal: replace value, keep the later expiry.
    TimePoint expiry = std::max(it->second.expires_at, item.expires_at);
    it->second = std::move(item);
    it->second.expires_at = expiry;
  }
}

std::vector<StoredItem> LocalStore::Get(const std::string& ns,
                                        const std::string& resource,
                                        TimePoint now) const {
  std::vector<StoredItem> out;
  auto nit = by_namespace_.find(ns);
  if (nit == by_namespace_.end()) return out;
  auto lo = nit->second.lower_bound({resource, 0});
  for (auto it = lo; it != nit->second.end() && it->first.first == resource;
       ++it) {
    if (it->second.expires_at > now) out.push_back(it->second);
  }
  return out;
}

std::vector<StoredItem> LocalStore::Scan(const std::string& ns,
                                         TimePoint now) const {
  std::vector<StoredItem> out;
  auto nit = by_namespace_.find(ns);
  if (nit == by_namespace_.end()) return out;
  for (const auto& [k, item] : nit->second) {
    if (item.expires_at > now) out.push_back(item);
  }
  return out;
}

size_t LocalStore::Sweep(TimePoint now) {
  size_t reclaimed = 0;
  for (auto nit = by_namespace_.begin(); nit != by_namespace_.end();) {
    ResourceMap& rm = nit->second;
    for (auto it = rm.begin(); it != rm.end();) {
      if (it->second.expires_at <= now) {
        it = rm.erase(it);
        ++reclaimed;
        --size_;
      } else {
        ++it;
      }
    }
    if (rm.empty()) {
      nit = by_namespace_.erase(nit);
    } else {
      ++nit;
    }
  }
  return reclaimed;
}

size_t LocalStore::DropNamespace(const std::string& ns) {
  auto nit = by_namespace_.find(ns);
  if (nit == by_namespace_.end()) return 0;
  size_t n = nit->second.size();
  size_ -= n;
  by_namespace_.erase(nit);
  return n;
}

std::vector<std::string> LocalStore::Namespaces() const {
  std::vector<std::string> out;
  out.reserve(by_namespace_.size());
  for (const auto& [ns, rm] : by_namespace_) out.push_back(ns);
  return out;
}

}  // namespace dht
}  // namespace pier
