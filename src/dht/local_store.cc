#include "dht/local_store.h"

#include <algorithm>

namespace pier {
namespace dht {

void LocalStore::Put(StoredItem item) {
  auto nit = by_namespace_.find(std::string_view(item.key.ns));
  if (nit == by_namespace_.end()) {
    nit = by_namespace_.emplace(item.key.ns, NamespaceShard{}).first;
  }
  NamespaceShard& shard = nit->second;
  shard.version = ++mutation_counter_;
  shard.min_expiry = std::min(shard.min_expiry, item.expires_at);
  auto it = shard.items.find(
      ResourceRef{std::string_view(item.key.resource), item.key.instance});
  if (it == shard.items.end()) {
    auto map_key = std::make_pair(item.key.resource, item.key.instance);
    shard.items.emplace(std::move(map_key), std::move(item));
    ++size_;
  } else {
    // Renewal: replace value, keep the later expiry.
    TimePoint expiry = std::max(it->second.expires_at, item.expires_at);
    it->second = std::move(item);
    it->second.expires_at = expiry;
  }
}

std::vector<StoredItem> LocalStore::Get(std::string_view ns,
                                        std::string_view resource,
                                        TimePoint now) const {
  std::vector<StoredItem> out;
  ForEachAt(ns, resource, now, [&out](const StoredItem& item) {
    out.push_back(item);
    return true;
  });
  return out;
}

std::vector<StoredItem> LocalStore::Scan(std::string_view ns,
                                         TimePoint now) const {
  std::vector<StoredItem> out;
  ForEach(ns, now, [&out](const StoredItem& item) {
    out.push_back(item);
    return true;
  });
  return out;
}

size_t LocalStore::Sweep(TimePoint now) {
  ++stats_.sweep_runs;
  size_t reclaimed = 0;
  for (auto nit = by_namespace_.begin(); nit != by_namespace_.end();) {
    NamespaceShard& shard = nit->second;
    if (shard.min_expiry > now) {
      // Nothing in this namespace can have expired yet.
      ++stats_.sweep_namespaces_skipped;
      ++nit;
      continue;
    }
    ++stats_.sweep_namespaces_scanned;
    TimePoint new_min = std::numeric_limits<TimePoint>::max();
    for (auto it = shard.items.begin(); it != shard.items.end();) {
      if (it->second.expires_at <= now) {
        stats_.max_sweep_lag =
            std::max(stats_.max_sweep_lag, now - it->second.expires_at);
        it = shard.items.erase(it);
        shard.version = ++mutation_counter_;
        ++reclaimed;
        ++stats_.items_reclaimed;
        --size_;
      } else {
        new_min = std::min(new_min, it->second.expires_at);
        ++it;
      }
    }
    if (shard.items.empty()) {
      nit = by_namespace_.erase(nit);
    } else {
      // The rescan tightens the watermark (renewals only loosened it).
      shard.min_expiry = new_min;
      ++nit;
    }
  }
  return reclaimed;
}

size_t LocalStore::DropNamespace(std::string_view ns) {
  auto nit = by_namespace_.find(ns);
  if (nit == by_namespace_.end()) return 0;
  size_t n = nit->second.items.size();
  size_ -= n;
  by_namespace_.erase(nit);
  return n;
}

bool LocalStore::Erase(std::string_view ns, std::string_view resource,
                       uint64_t instance) {
  auto nit = by_namespace_.find(ns);
  if (nit == by_namespace_.end()) return false;
  ResourceMap& rm = nit->second.items;
  auto it = rm.find(ResourceRef{resource, instance});
  if (it == rm.end()) return false;
  rm.erase(it);
  nit->second.version = ++mutation_counter_;
  --size_;
  if (rm.empty()) by_namespace_.erase(nit);
  return true;
}

std::vector<std::string> LocalStore::Namespaces() const {
  std::vector<std::string> out;
  out.reserve(by_namespace_.size());
  for (const auto& [ns, shard] : by_namespace_) out.push_back(ns);
  return out;
}

}  // namespace dht
}  // namespace pier
