// LocalStore: one node's slice of the DHT — a soft-state item store.
//
// Every item carries an absolute expiry time; expired items are invisible to
// reads and reclaimed by periodic sweeps. There is no delete operation in
// the hot path: publishers keep data alive by renewing (re-putting), and
// stale data ages out. This is the paper's "soft state" storage model.
//
// Read path performance contract (see DESIGN.md "Performance model"):
//   - ForEach/ForEachAt visit items in place — the aggregation path scans
//     every namespace once per epoch on every node, so reads must not
//     materialize vectors of copied values;
//   - lookups are heterogeneous (string_view all the way down): Get/ForEachAt
//     never construct a temporary (string, instance) pair key;
//   - Sweep skips namespaces whose earliest possible expiry is in the future
//     (per-namespace min-expiry watermark), so idle namespaces cost nothing.

#ifndef PIER_DHT_LOCAL_STORE_H_
#define PIER_DHT_LOCAL_STORE_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time_util.h"
#include "dht/key.h"
#include "sim/network.h"

namespace pier {
namespace dht {

/// One stored item with its lifetime metadata.
struct StoredItem {
  DhtKey key;
  std::string value;
  TimePoint expires_at = 0;
  /// When this copy arrived at this node (windowed scans filter on it).
  TimePoint stored_at = 0;
  sim::HostId publisher = sim::kInvalidHost;
  /// True when this copy was pushed here by replication rather than routed
  /// ownership; replicas answer reads only after ownership changes.
  bool replica = false;
};

/// In-memory multimap from (namespace, resource, instance) to items.
class LocalStore {
 public:
  /// Sweep-path counters (experiment accounting).
  struct Stats {
    uint64_t sweep_runs = 0;
    uint64_t sweep_namespaces_scanned = 0;
    uint64_t sweep_namespaces_skipped = 0;
    uint64_t items_reclaimed = 0;
    /// Worst observed sweep lag: max over reclaimed items of
    /// (sweep time - expiry time). The soft-state invariant bounds this by
    /// the sweep period — an expired tuple may linger at most one sweep
    /// cycle (plus scheduling slack) before it is reclaimed.
    Duration max_sweep_lag = 0;
  };

  /// Upserts by exact key. A renewal with a later expiry extends lifetime.
  void Put(StoredItem item);

  /// Visits every live (non-expired) item in `ns` in deterministic
  /// (resource, instance) order; `fn` returns false to stop early. Items
  /// are visited in place — no copies.
  template <typename Fn>
  void ForEach(std::string_view ns, TimePoint now, Fn&& fn) const {
    auto nit = by_namespace_.find(ns);
    if (nit == by_namespace_.end()) return;
    for (const auto& [k, item] : nit->second.items) {
      if (item.expires_at > now && !fn(item)) return;
    }
  }

  /// Visits live items under (ns, resource), all instances, in place.
  template <typename Fn>
  void ForEachAt(std::string_view ns, std::string_view resource,
                 TimePoint now, Fn&& fn) const {
    auto nit = by_namespace_.find(ns);
    if (nit == by_namespace_.end()) return;
    const ResourceMap& rm = nit->second.items;
    for (auto it = rm.lower_bound(ResourceRef{resource, 0});
         it != rm.end() && it->first.first == resource; ++it) {
      if (it->second.expires_at > now && !fn(it->second)) return;
    }
  }

  /// All live items under (ns, resource), copied out (compat wrapper; hot
  /// paths use ForEachAt).
  std::vector<StoredItem> Get(std::string_view ns, std::string_view resource,
                              TimePoint now) const;

  /// All live items in a namespace, copied out — PIER's "lscan" compat
  /// wrapper; hot paths use ForEach.
  std::vector<StoredItem> Scan(std::string_view ns, TimePoint now) const;

  /// Drops expired items; returns how many were reclaimed. Namespaces whose
  /// min-expiry watermark is in the future are skipped wholesale.
  size_t Sweep(TimePoint now);

  /// Drops an entire namespace (end-of-query cleanup for temp namespaces).
  size_t DropNamespace(std::string_view ns);

  /// Removes one exact item; returns whether it existed. The PHT split
  /// retires a moved entry's parent copy only once the child's owner has
  /// ACKED the re-put — an unacknowledged move keeps both copies (readers
  /// dedup by instance), so a partition mid-split can never lose keys.
  bool Erase(std::string_view ns, std::string_view resource,
             uint64_t instance);

  /// Monotone per-namespace mutation version: bumped by every Put, Erase,
  /// and sweep-reclaim that touches the namespace; 0 when the namespace is
  /// absent. The query scheduler's shared-scan cache keys on it — an
  /// unchanged version proves a materialized sweep of the namespace is
  /// still exact.
  uint64_t NamespaceVersion(std::string_view ns) const {
    auto nit = by_namespace_.find(ns);
    return nit == by_namespace_.end() ? 0 : nit->second.version;
  }

  /// Live + not-yet-swept expired items currently held.
  size_t size() const { return size_; }
  /// Namespaces currently present (diagnostics).
  std::vector<std::string> Namespaces() const;

  const Stats& stats() const { return stats_; }

 private:
  /// Heterogeneous key for lookups: no temporary std::string.
  using ResourceRef = std::pair<std::string_view, uint64_t>;

  struct ResourceKeyLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      // Compares pair<string-ish, uint64_t> across string/string_view.
      std::string_view ar = a.first, br = b.first;
      return ar != br ? ar < br : a.second < b.second;
    }
  };

  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct StringEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  // resource -> instance -> item. An ordered map keeps scans deterministic.
  using ResourceMap =
      std::map<std::pair<std::string, uint64_t>, StoredItem, ResourceKeyLess>;

  struct NamespaceShard {
    ResourceMap items;
    /// Conservative lower bound on the earliest expiry in this shard:
    /// always <= the true minimum (renewals may raise the true minimum
    /// without touching the watermark), so a future watermark proves there
    /// is nothing to reclaim yet.
    TimePoint min_expiry = std::numeric_limits<TimePoint>::max();
    /// See NamespaceVersion(). Seeded from the store-wide counter so a
    /// namespace dropped and recreated never repeats a version.
    uint64_t version = 0;
  };

  std::unordered_map<std::string, NamespaceShard, StringHash, StringEq>
      by_namespace_;
  size_t size_ = 0;
  /// Store-wide monotone mutation counter feeding per-shard versions.
  uint64_t mutation_counter_ = 0;
  Stats stats_;
};

}  // namespace dht
}  // namespace pier

#endif  // PIER_DHT_LOCAL_STORE_H_
