// LocalStore: one node's slice of the DHT — a soft-state item store.
//
// Every item carries an absolute expiry time; expired items are invisible to
// reads and reclaimed by periodic sweeps. There is no delete operation in
// the hot path: publishers keep data alive by renewing (re-putting), and
// stale data ages out. This is the paper's "soft state" storage model.

#ifndef PIER_DHT_LOCAL_STORE_H_
#define PIER_DHT_LOCAL_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time_util.h"
#include "dht/key.h"
#include "sim/network.h"

namespace pier {
namespace dht {

/// One stored item with its lifetime metadata.
struct StoredItem {
  DhtKey key;
  std::string value;
  TimePoint expires_at = 0;
  /// When this copy arrived at this node (windowed scans filter on it).
  TimePoint stored_at = 0;
  sim::HostId publisher = sim::kInvalidHost;
  /// True when this copy was pushed here by replication rather than routed
  /// ownership; replicas answer reads only after ownership changes.
  bool replica = false;
};

/// In-memory multimap from (namespace, resource, instance) to items.
class LocalStore {
 public:
  /// Upserts by exact key. A renewal with a later expiry extends lifetime.
  void Put(StoredItem item);

  /// All live (non-expired) items under (ns, resource).
  std::vector<StoredItem> Get(const std::string& ns,
                              const std::string& resource,
                              TimePoint now) const;

  /// All live items in a namespace — PIER's "lscan" access method.
  std::vector<StoredItem> Scan(const std::string& ns, TimePoint now) const;

  /// Drops expired items; returns how many were reclaimed.
  size_t Sweep(TimePoint now);

  /// Drops an entire namespace (end-of-query cleanup for temp namespaces).
  size_t DropNamespace(const std::string& ns);

  /// Live + not-yet-swept expired items currently held.
  size_t size() const { return size_; }
  /// Namespaces currently present (diagnostics).
  std::vector<std::string> Namespaces() const;

 private:
  // resource -> instance -> item. An ordered map keeps scans deterministic.
  using ResourceMap = std::map<std::pair<std::string, uint64_t>, StoredItem>;
  std::unordered_map<std::string, ResourceMap> by_namespace_;
  size_t size_ = 0;
};

}  // namespace dht
}  // namespace pier

#endif  // PIER_DHT_LOCAL_STORE_H_
