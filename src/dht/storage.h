// Dht: the node-level storage API PIER runs on — asynchronous Put/Get/Renew
// against the ring plus local scans, with soft-state TTLs, bounded retries,
// and successor replication.
//
// Writes and reads are routed to the key's owner via the overlay Router;
// acks and responses return directly to the requester (one hop). Everything
// is idempotent so retries after loss or churn are safe.

#ifndef PIER_DHT_STORAGE_H_
#define PIER_DHT_STORAGE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dht/key.h"
#include "dht/local_store.h"
#include "overlay/router.h"
#include "overlay/rpc.h"
#include "overlay/transport.h"
#include "sim/event_queue.h"

namespace pier {
namespace dht {

/// Route-mux app tags owned by the DHT layer.
inline constexpr uint8_t kPutTag = 1;
inline constexpr uint8_t kGetTag = 2;

/// One item in a Get response.
struct DhtItem {
  DhtKey key;
  std::string value;
};

struct DhtOptions {
  /// Lifetime applied when the caller does not specify one.
  Duration default_ttl = Seconds(120);
  /// Extra copies pushed to ring successors (0 = owner only).
  int replicas = 1;
  /// Acked-put retry policy.
  Duration put_timeout = Seconds(2);
  int put_retries = 2;
  /// Get retry policy.
  Duration get_timeout = Seconds(2);
  int get_retries = 2;
  /// Expired-item reclamation period.
  Duration sweep_interval = Seconds(5);
};

struct DhtStats {
  uint64_t puts_sent = 0;
  uint64_t puts_acked = 0;
  uint64_t put_retries = 0;
  uint64_t put_failures = 0;
  uint64_t gets_sent = 0;
  uint64_t gets_ok = 0;
  uint64_t get_retries = 0;
  uint64_t get_failures = 0;
  uint64_t store_requests = 0;   ///< puts arriving at this node as owner
  uint64_t serve_requests = 0;   ///< gets served by this node as owner
  uint64_t replicas_pushed = 0;
  uint64_t replicas_received = 0;
  uint64_t items_swept = 0;
};

/// Per-node DHT component.
class Dht {
 public:
  using PutCallback = std::function<void(Status)>;
  using GetCallback = std::function<void(Status, std::vector<DhtItem>)>;

  /// `transport`, `router`, and `mux` must outlive this object. Registers
  /// handlers for Proto::kDht and the kPutTag/kGetTag route tags.
  Dht(overlay::Transport* transport, overlay::Router* router,
      overlay::RouteMux* mux, DhtOptions options);

  /// Starts the sweep timer.
  void Start();
  /// Stops timers and outstanding requests (node shutdown/crash).
  void Stop();

  /// Stores `value` under `key` for `ttl` (default_ttl when ttl==0).
  /// `done` may be null for fire-and-forget; when set, the put is acked by
  /// the owner and retried on timeout.
  void Put(const DhtKey& key, std::string value, Duration ttl,
           PutCallback done);

  /// Put with per-item replication control. Query-temporary tuples
  /// (rehashed join state) skip replication: they are cheap to recreate and
  /// expire within the query anyway.
  void PutEx(const DhtKey& key, std::string value, Duration ttl,
             bool replicate, PutCallback done);

  /// Registers `fn` to observe every item arriving at THIS node as owner
  /// under `ns` (owner-routed puts only, not replica pushes). This is how
  /// dataflow operators at a rendezvous node consume rehashed tuples as
  /// they arrive, and how the PHT index runs its owner-side split/forward
  /// protocol. The subscriber returns true to store the item normally;
  /// returning false CONSUMES it — the item is neither stored nor
  /// replicated here (it was relayed elsewhere or dropped), though the
  /// publisher's ack still fires: consumption is an ownership decision,
  /// not a failure. One subscriber per namespace; re-subscribing replaces.
  using ArrivalFn = std::function<bool(const StoredItem&)>;
  void SubscribeArrivals(const std::string& ns, ArrivalFn fn);
  void UnsubscribeArrivals(const std::string& ns);

  /// Re-publishes (identical to Put; renewal is just an idempotent re-put
  /// that extends the expiry — the soft-state heartbeat).
  void Renew(const DhtKey& key, std::string value, Duration ttl,
             PutCallback done) {
    Put(key, std::move(value), ttl, std::move(done));
  }

  /// Fetches all live instances under (ns, resource) from the owner.
  void Get(const std::string& ns, const std::string& resource,
           GetCallback cb);

  /// PIER's "lscan": visits this node's local slice of a namespace in
  /// place (no value copies); `fn(const StoredItem&)` returns false to
  /// stop early. The hot path for every ScanStage pass and join catch-up.
  template <typename Fn>
  void ForEachLocal(std::string_view ns, Fn&& fn) const {
    store_.ForEach(ns, sim_->now(), std::forward<Fn>(fn));
  }

  /// Visits this node's *readable* slice: primary copies always, replica
  /// copies only when this node has become responsible for their key — the
  /// scan-side replica failover matching OnRoutedGet's "after a failover,
  /// the replicas are the surviving data". A replica whose owner is alive
  /// is skipped (the owner reports it), so nothing double-counts on a
  /// converged ring.
  template <typename Fn>
  void ForEachLocalReadable(std::string_view ns, Fn&& fn) const {
    store_.ForEach(ns, sim_->now(), [&](const StoredItem& item) {
      if (item.replica &&
          !router_->IsResponsibleFor(item.key.RoutingKey())) {
        return true;
      }
      return fn(item);
    });
  }

  /// Copying variant of the local scan (tests, diagnostics).
  std::vector<StoredItem> LocalScan(std::string_view ns) const {
    return store_.Scan(ns, sim_->now());
  }

  /// Direct access for operators colocated with the store.
  LocalStore* local_store() { return &store_; }
  const LocalStore& local_store() const { return store_; }

  const DhtStats& stats() const { return stats_; }
  DhtOptions* mutable_options() { return &options_; }
  sim::HostId self() const { return transport_->self(); }

 private:
  // Direct (non-routed) message types under Proto::kDht.
  enum class MsgType : uint8_t {
    kPutAck = 1,
    kGetResp = 2,
    kReplicate = 3,
  };

  void OnRoutedPut(const overlay::RoutedMessage& m);
  void OnRoutedGet(const overlay::RoutedMessage& m);
  void OnDirect(sim::HostId from, Reader* r);
  void SendPutOnce(const DhtKey& key, const std::string& value, Duration ttl,
                   bool replicate, PutCallback done, int attempt);
  void SendGetOnce(const std::string& ns, const std::string& resource,
                   GetCallback cb, int attempt);
  void ReplicateOut(const StoredItem& item);

  overlay::Transport* transport_;
  overlay::Router* router_;
  sim::Simulation* sim_;
  DhtOptions options_;
  LocalStore store_;
  overlay::RpcManager rpc_;
  sim::PeriodicTask sweep_task_;
  bool running_ = false;
  DhtStats stats_;
  std::unordered_map<std::string, ArrivalFn> arrival_subscribers_;
};

/// Keeps a set of items alive by re-putting them every ttl/2 — the
/// publisher side of soft state. Base tables (file indexes, node stats)
/// stay in the DHT only while their publisher keeps renewing.
class RenewingPublisher {
 public:
  RenewingPublisher(Dht* dht, sim::Simulation* sim, Duration ttl);

  /// Adds/updates an item under management and puts it immediately.
  void Publish(const DhtKey& key, std::string value);
  /// Stops renewing (item will expire within one TTL).
  void Withdraw(const DhtKey& key);
  void Start();
  void Stop();
  size_t item_count() const { return items_.size(); }

 private:
  void RenewAll();

  Dht* dht_;
  sim::Simulation* sim_;
  Duration ttl_;
  std::vector<std::pair<DhtKey, std::string>> items_;
  sim::PeriodicTask renew_task_;
};

}  // namespace dht
}  // namespace pier

#endif  // PIER_DHT_STORAGE_H_
