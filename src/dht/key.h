// PIER's three-part DHT naming scheme (from the PIER design papers):
//
//   namespace   — which relation/stream the item belongs to (base table or a
//                 per-query temporary namespace for rehashed tuples);
//   resource    — the serialized value of the partitioning attribute(s);
//                 determines WHERE on the ring the item lives;
//   instance    — distinguishes items sharing (namespace, resource), e.g.
//                 multiple tuples with one join-key value.
//
// The routing key is SHA-1 over (namespace, resource) only, so all instances
// of a resource colocate on one node — which is precisely what makes
// in-network joins and aggregation possible.

#ifndef PIER_DHT_KEY_H_
#define PIER_DHT_KEY_H_

#include <cstdint>
#include <string>

#include "common/id160.h"
#include "common/serialize.h"

namespace pier {
namespace dht {

/// Fully-qualified name of one stored item.
struct DhtKey {
  std::string ns;
  std::string resource;
  uint64_t instance = 0;

  /// Ring position: hash of namespace + resource (instance excluded).
  Id160 RoutingKey() const {
    Writer w;
    w.PutString(ns);
    w.PutString(resource);
    return Id160::FromName(w.buffer());
  }

  /// Ring position shared by a whole namespace (used for aggregation roots).
  static Id160 NamespaceRoot(const std::string& ns) {
    return Id160::FromName("ns-root:" + ns);
  }

  bool operator==(const DhtKey& o) const {
    return ns == o.ns && resource == o.resource && instance == o.instance;
  }

  void Serialize(Writer* w) const {
    w->PutString(ns);
    w->PutString(resource);
    w->PutVarint64(instance);
  }
  static Status Deserialize(Reader* r, DhtKey* out) {
    PIER_RETURN_IF_ERROR(r->GetString(&out->ns));
    PIER_RETURN_IF_ERROR(r->GetString(&out->resource));
    return r->GetVarint64(&out->instance);
  }

  std::string ToString() const {
    return ns + "/" + resource + "#" + std::to_string(instance);
  }
};

}  // namespace dht
}  // namespace pier

#endif  // PIER_DHT_KEY_H_
