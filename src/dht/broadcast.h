// BroadcastService: O(log n)-depth dissemination trees over the overlay.
//
// PIER pushes query plans to every node ("query dissemination") and needs
// namespace-wide scans to start everywhere. The algorithm is the classic
// interval-partitioned DHT broadcast: a node responsible for the ring
// interval (self, limit) splits it among its routing neighbors, giving each
// neighbor the sub-interval up to the next neighbor. Every node is reached
// once on a stabilized ring; duplicates arising from imperfect neighbor
// views are suppressed by a seen-cache.

#ifndef PIER_DHT_BROADCAST_H_
#define PIER_DHT_BROADCAST_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "overlay/router.h"
#include "overlay/transport.h"
#include "sim/event_queue.h"

namespace pier {
namespace dht {

struct BroadcastStats {
  uint64_t initiated = 0;
  uint64_t delivered = 0;   ///< local deliveries (once per broadcast)
  uint64_t forwarded = 0;   ///< messages sent downstream
  uint64_t duplicates = 0;  ///< suppressed re-deliveries
  int max_depth_seen = 0;
};

/// Per-node broadcast component; registers for Proto::kBroadcast.
class BroadcastService {
 public:
  /// Delivery upcall: `origin` initiated broadcast `seq`; `parent` is the
  /// node that forwarded it to us (self at the origin) — the edge of the
  /// dissemination tree, which aggregation re-uses in reverse; `depth` is
  /// the tree depth at this node. The payload is the origin's buffer,
  /// shared (not copied) across the whole tree.
  using Handler =
      std::function<void(sim::HostId origin, uint64_t seq, sim::HostId parent,
                         int depth, const sim::Payload& payload)>;

  BroadcastService(overlay::Transport* transport, overlay::Router* router);

  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  /// Disseminates `payload` to every reachable node, including this one.
  /// The payload is serialized exactly once (by the caller); every relay
  /// hop re-frames only the small tree header. Returns the broadcast
  /// sequence number.
  uint64_t Broadcast(sim::Payload payload);

  void Start() { running_ = true; }
  void Stop() { running_ = false; }

  const BroadcastStats& stats() const { return stats_; }

 private:
  void OnMessage(sim::HostId from, Reader* r, const sim::Payload& body);
  /// Forwards into (self, limit), splitting among neighbors.
  void Relay(sim::HostId origin, uint64_t seq, const Id160& limit, int depth,
             const sim::Payload& payload);
  void Deliver(sim::HostId origin, uint64_t seq, sim::HostId parent,
               int depth, const sim::Payload& payload);
  bool AlreadySeen(sim::HostId origin, uint64_t seq);

  overlay::Transport* transport_;
  overlay::Router* router_;
  Handler handler_;
  bool running_ = true;
  uint64_t next_seq_ = 1;
  /// (origin, seq) -> expiry of the dedup entry.
  std::map<std::pair<sim::HostId, uint64_t>, TimePoint> seen_;
  BroadcastStats stats_;

  static constexpr int kMaxDepth = 64;
  static constexpr Duration kSeenTtl = Seconds(120);
};

}  // namespace dht
}  // namespace pier

#endif  // PIER_DHT_BROADCAST_H_
