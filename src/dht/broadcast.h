// BroadcastService: O(log n)-depth dissemination trees over the overlay.
//
// PIER pushes query plans to every node ("query dissemination") and needs
// namespace-wide scans to start everywhere. The algorithm is the classic
// interval-partitioned DHT broadcast: a node responsible for the ring
// interval (self, limit) splits it among its routing neighbors, giving each
// neighbor the sub-interval up to the next neighbor. Every node is reached
// once on a stabilized ring; duplicates arising from imperfect neighbor
// views are suppressed by a seen-cache.
//
// PR 8 makes the tree success-tolerant: every tree edge is acked and
// retransmitted with jittered backoff (a lost kPlan/kCancel no longer
// silently excludes a subtree), and a "cover wave" flows back up the tree —
// each node reports its subtree's delivered-node count and a complete flag
// once all children have covered or conclusively failed. The origin's
// coverage callback is how the query engine learns members_expected /
// coverage_complete for its Completeness accounting.

#ifndef PIER_DHT_BROADCAST_H_
#define PIER_DHT_BROADCAST_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "overlay/router.h"
#include "overlay/transport.h"
#include "sim/event_queue.h"

namespace pier {
namespace dht {

struct BroadcastOptions {
  /// Ack + retransmit each tree edge and run the cover wave. Off restores
  /// the fire-and-forget tree (kept for measurement).
  bool reliable = true;
  /// First retransmit after this long; exponential backoff (x2) up to
  /// ack_max, jittered +/-25% per attempt (deterministic hash jitter).
  Duration ack_timeout = Millis(400);
  Duration ack_max = Seconds(2);
  /// Send attempts per edge (and per cover report) before giving up.
  int retries = 6;
  /// A relay forces its cover upward after this long even if some children
  /// never covered (they are marked failed; the wave reports incomplete).
  Duration cover_timeout = Seconds(6);
};

struct BroadcastStats {
  uint64_t initiated = 0;
  uint64_t delivered = 0;   ///< local deliveries (once per broadcast)
  uint64_t forwarded = 0;   ///< first sends downstream
  uint64_t duplicates = 0;  ///< suppressed re-deliveries
  uint64_t retransmits = 0; ///< data + cover retry sends
  uint64_t acks_received = 0;
  uint64_t covers_received = 0;
  uint64_t edges_failed = 0;  ///< edges abandoned after the retry budget
  int max_depth_seen = 0;
};

/// Per-node broadcast component; registers for Proto::kBroadcast.
class BroadcastService {
 public:
  /// Delivery upcall: `origin` initiated broadcast `seq`; `parent` is the
  /// node that forwarded it to us (self at the origin) — the edge of the
  /// dissemination tree, which aggregation re-uses in reverse; `depth` is
  /// the tree depth at this node. The payload is the origin's buffer,
  /// shared (not copied) across the whole tree.
  using Handler =
      std::function<void(sim::HostId origin, uint64_t seq, sim::HostId parent,
                         int depth, const sim::Payload& payload)>;
  /// Cover-wave upcall at the origin: broadcast `seq` reached `members`
  /// nodes (self included); `complete` means every subtree reported in —
  /// no edge was abandoned and no cover was forced by timeout.
  using CoverageFn =
      std::function<void(uint64_t seq, uint64_t members, bool complete)>;

  BroadcastService(overlay::Transport* transport, overlay::Router* router,
                   BroadcastOptions options = BroadcastOptions());
  ~BroadcastService();

  void SetHandler(Handler handler) { handler_ = std::move(handler); }
  void SetCoverageHandler(CoverageFn fn) { coverage_fn_ = std::move(fn); }

  /// Disseminates `payload` to every reachable node, including this one.
  /// The payload is serialized exactly once (by the caller); every relay
  /// hop re-frames only the small tree header. Returns the broadcast
  /// sequence number.
  uint64_t Broadcast(sim::Payload payload);

  void Start() { running_ = true; }
  void Stop() { running_ = false; }

  const BroadcastStats& stats() const { return stats_; }
  const BroadcastOptions& options() const { return options_; }

 private:
  /// Leading kind byte of every Proto::kBroadcast frame.
  enum Kind : uint8_t { kData = 1, kAck = 2, kCover = 3 };
  enum AckWhat : uint8_t { kAckData = 1, kAckCover = 2 };

  /// One downstream edge of a relayed broadcast.
  struct ChildEdge {
    sim::HostId host = 0;
    Id160 sub_limit;
    int depth = 0;
    int attempts = 0;
    bool acked = false;
    bool covered = false;
    bool failed = false;
    uint64_t cover_count = 0;
    bool cover_complete = true;
  };
  /// Per-(origin, seq) relay bookkeeping while the wave is in flight.
  struct RelayState {
    sim::HostId parent = 0;
    bool is_origin = false;
    sim::Payload payload;
    std::vector<ChildEdge> children;
    bool cover_sent = false;
    bool cover_acked = false;
    int cover_attempts = 0;
    uint64_t cover_count = 0;
    bool cover_complete = true;
    TimePoint expires = 0;
  };
  using RelayKey = std::pair<sim::HostId, uint64_t>;

  void OnMessage(sim::HostId from, Reader* r, const sim::Payload& body);
  void OnData(sim::HostId from, Reader* r, const sim::Payload& body);
  void OnAck(sim::HostId from, Reader* r);
  void OnCover(sim::HostId from, Reader* r);
  /// Forwards into (self, limit), splitting among neighbors. When `state`
  /// is non-null (reliable mode) the edges are recorded for ack tracking.
  void Relay(RelayState* state, sim::HostId origin, uint64_t seq,
             const Id160& limit, int depth, const sim::Payload& payload);
  void SendDataEdge(sim::HostId origin, uint64_t seq, ChildEdge* edge,
                    const sim::Payload& payload);
  void ScheduleEdgeRetry(sim::HostId origin, uint64_t seq, sim::HostId child);
  void SendCoverOnce(sim::HostId origin, uint64_t seq, RelayState* state);
  void ScheduleCoverRetry(sim::HostId origin, uint64_t seq);
  void SendAck(sim::HostId to, sim::HostId origin, uint64_t seq,
               AckWhat what);
  /// Fires the cover (or the origin callback) once every child has either
  /// covered or conclusively failed.
  void MaybeFinishCover(sim::HostId origin, uint64_t seq, RelayState* state);
  void ArmCoverDeadline(sim::HostId origin, uint64_t seq);
  RelayState* FindRelay(sim::HostId origin, uint64_t seq);
  void Deliver(sim::HostId origin, uint64_t seq, sim::HostId parent,
               int depth, const sim::Payload& payload);
  bool AlreadySeen(sim::HostId origin, uint64_t seq);
  sim::TimerId ScheduleTimer(Duration delay, std::function<void()> fn);

  overlay::Transport* transport_;
  overlay::Router* router_;
  BroadcastOptions options_;
  Handler handler_;
  CoverageFn coverage_fn_;
  bool running_ = true;
  uint64_t next_seq_ = 1;
  /// (origin, seq) -> expiry of the dedup entry.
  std::map<RelayKey, TimePoint> seen_;
  std::map<RelayKey, RelayState> relays_;
  std::vector<sim::TimerId> timers_;
  BroadcastStats stats_;

  static constexpr int kMaxDepth = 64;
  static constexpr Duration kSeenTtl = Seconds(120);
};

}  // namespace dht
}  // namespace pier

#endif  // PIER_DHT_BROADCAST_H_
