// Lightweight measurement helpers for experiments: streaming histograms and
// time-series recorders used by the bench harnesses to print paper-style
// tables and figure series.

#ifndef PIER_SIM_METRICS_H_
#define PIER_SIM_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time_util.h"

namespace pier {
namespace sim {

/// Collects samples; percentile queries sort lazily.
class Histogram {
 public:
  void Add(double v);
  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  /// p in [0,100].
  double Percentile(double p) const;
  /// "n=… mean=… p50=… p95=… max=…".
  std::string Summary() const;
  void Clear();

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// A (time, value) series — one reproduced figure curve.
class TimeSeries {
 public:
  void Record(TimePoint t, double value) { points_.push_back({t, value}); }
  struct Point {
    TimePoint time;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }
  /// Renders "t_seconds<TAB>value" lines, the format gnuplot/matplotlib eat.
  std::string ToTsv(const std::string& header) const;

 private:
  std::vector<Point> points_;
};

}  // namespace sim
}  // namespace pier

#endif  // PIER_SIM_METRICS_H_
