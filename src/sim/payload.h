// Payload: the zero-copy unit of the simulated data plane.
//
// A Payload is an immutable, cheaply-copyable slice of a ref-counted byte
// buffer. Layers serialize once at the origin (materializing one buffer) and
// then hand the same bytes through sim::Network -> Transport -> overlay
// forwarding -> broadcast relays without ever copying them again: copying a
// Payload bumps a refcount, slicing adjusts offsets.
//
// Messages on the wire are a Packet: a small per-hop `head` (protocol
// framing, rebuilt whenever a hop rewrites routing state) plus a shared
// `body` (application bytes, forwarded untouched). Control messages are
// head-only; bulk paths (routed puts, broadcast dissemination) put their
// application payload in `body` so an O(log n)-hop route or an n-node
// broadcast costs one serialization total.
//
// Materialization counters make "zero copies per hop" testable: every byte
// buffer created from owned bytes is counted; sharing and slicing are not.
// The simulator is single-threaded, so plain counters suffice.

#ifndef PIER_SIM_PAYLOAD_H_
#define PIER_SIM_PAYLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace pier {
namespace sim {

class Payload {
 public:
  Payload() = default;
  /// Materializes a buffer from owned bytes (counted; this is "the copy").
  explicit Payload(std::string bytes)
      : data_(std::make_shared<const Buffer>(std::move(bytes))),
        offset_(0),
        len_(data_->bytes.size()) {
    ++buffers_created_;
    bytes_materialized_ += len_;
  }

  std::string_view view() const {
    return data_ == nullptr
               ? std::string_view()
               : std::string_view(data_->bytes.data() + offset_, len_);
  }
  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  /// A sub-range sharing the same buffer (never counted as a copy).
  Payload Slice(size_t offset, size_t len) const {
    Payload out;
    if (offset > len_) offset = len_;
    if (len > len_ - offset) len = len_ - offset;
    out.data_ = data_;
    out.offset_ = offset_ + offset;
    out.len_ = len;
    return out;
  }

  /// Copies the viewed bytes out into a fresh string (rare; explicit).
  std::string ToString() const { return std::string(view()); }

  /// True when both payloads view into the same underlying buffer — the
  /// zero-copy assertion used by tests.
  bool SharesBufferWith(const Payload& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

  // -- materialization accounting -------------------------------------------
  static uint64_t buffers_created() { return buffers_created_; }
  static uint64_t bytes_materialized() { return bytes_materialized_; }
  /// Buffers whose refcount has not yet dropped to zero. Any experiment
  /// that drains its event queue and tears down its nodes must return this
  /// to its starting value — the leak invariant of the fault testkit.
  static uint64_t buffers_live() { return buffers_live_; }
  static void ResetCounters() {
    buffers_created_ = 0;
    bytes_materialized_ = 0;
    // buffers_live_ is intentionally NOT reset: it tracks real object
    // lifetimes, so zeroing it while payloads exist would corrupt the count.
  }

 private:
  /// The shared allocation. Its lifetime bounds are observable (the leak
  /// invariant), so construction/destruction maintain the live counter.
  struct Buffer {
    std::string bytes;
    explicit Buffer(std::string b) : bytes(std::move(b)) { ++buffers_live_; }
    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;
    ~Buffer() { --buffers_live_; }
  };

  std::shared_ptr<const Buffer> data_;
  size_t offset_ = 0;
  size_t len_ = 0;

  static inline uint64_t buffers_created_ = 0;
  static inline uint64_t bytes_materialized_ = 0;
  static inline uint64_t buffers_live_ = 0;
};

/// One message on the simulated wire: per-hop header + shared body.
struct Packet {
  Payload head;
  Payload body;

  Packet() = default;
  Packet(Payload h, Payload b) : head(std::move(h)), body(std::move(b)) {}
  /// Head-only frame (control messages, fully re-serialized payloads).
  explicit Packet(std::string head_bytes)
      : head(Payload(std::move(head_bytes))) {}

  size_t size() const { return head.size() + body.size(); }
  /// Concatenated bytes, for tests and diagnostics (copies; not a hot path).
  std::string Flatten() const {
    std::string out;
    out.reserve(size());
    out.append(head.view());
    out.append(body.view());
    return out;
  }
};

}  // namespace sim
}  // namespace pier

#endif  // PIER_SIM_PAYLOAD_H_
