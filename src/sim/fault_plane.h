// FaultPlane: scriptable link-level fault injection for the simulated
// network.
//
// The plane holds a set of timed rules; sim::Network consults it once per
// packet (Judge). Each rule matches a direction-sensitive set of (src, dst)
// host pairs inside an activation window and contributes faults:
//
//   drop_prob        per-packet loss; 1.0 blackholes the link
//   extra_delay      fixed delay spike added to the delivery latency
//   reorder_window   extra uniform delay in [0, window) per packet — packets
//                    sent close together can overtake each other, which is
//                    how real reordering is modelled without breaking the
//                    simulator's deterministic (time, seq) total order
//   duplicate_prob   chance the packet is delivered twice
//
// Partitions are just blackhole rules over host groups: a bidirectional
// partition installs A->B and B->A, an asymmetric one installs a single
// direction (the pathological case overlay stabilization must survive).
//
// Determinism: all stochastic draws come from one Rng forked off the
// simulation's root seed, so any run replays byte-identically from its seed
// (asserted via Network::trace_digest()).

#ifndef PIER_SIM_FAULT_PLANE_H_
#define PIER_SIM_FAULT_PLANE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time_util.h"

namespace pier {
namespace sim {

using HostId = uint32_t;  // mirrors network.h (no include cycle)

/// Identifies an installed rule so scripts can retire it early. 0 invalid.
using FaultRuleId = uint64_t;

/// "{1,2,3}" or "*" for the empty (wildcard) set — shared by FaultRule and
/// the testkit's FaultScript renderings so replay recipes and plane dumps
/// can't drift apart.
std::string FormatHostSet(const std::vector<HostId>& set);

/// One link-fault rule. Empty src/dst sets match every host.
struct FaultRule {
  /// Activation window [from, until) in virtual time.
  TimePoint from = 0;
  TimePoint until = std::numeric_limits<TimePoint>::max();
  /// Matching endpoints; empty = wildcard.
  std::vector<HostId> src;
  std::vector<HostId> dst;
  /// Also match the reversed direction (bidirectional partition/loss).
  bool symmetric = false;

  double drop_prob = 0.0;
  Duration extra_delay = 0;
  Duration reorder_window = 0;
  double duplicate_prob = 0.0;
  /// Hard cap on the copies this rule may inject over its lifetime. On a
  /// multi-hop overlay every forwarded hop is judged again, so unbounded
  /// duplication is a supercritical branching process (1+p per hop) that
  /// can melt the simulation; real retransmission storms are finite too.
  uint64_t duplicate_budget = 5000;

  bool ActiveAt(TimePoint now) const { return now >= from && now < until; }
  bool Matches(HostId a, HostId b) const;
  std::string ToString() const;
};

/// What the network should do with one packet.
struct FaultVerdict {
  bool drop = false;
  Duration extra_delay = 0;
  /// Extra deliveries on top of the original (0 or 1 in practice).
  int duplicates = 0;
};

/// The per-experiment fault layer. One instance, shared by reference with
/// the Network (Network::SetFaultPlane).
class FaultPlane {
 public:
  explicit FaultPlane(Rng rng) : rng_(rng) {}

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  FaultRuleId AddRule(FaultRule rule);
  /// Retires a rule before its window ends. No-op on unknown ids.
  void RemoveRule(FaultRuleId id);
  void Clear() { rules_.clear(); }
  size_t rule_count() const { return rules_.size(); }

  // -- scripted helpers -------------------------------------------------------
  /// Blackholes all traffic group_a -> group_b (and the reverse when
  /// `bidirectional`) during [from, until).
  FaultRuleId Partition(std::vector<HostId> group_a, std::vector<HostId> group_b,
                        TimePoint from, TimePoint until,
                        bool bidirectional = true);
  /// Per-link loss in one direction (symmetric=false) or both.
  FaultRuleId Loss(std::vector<HostId> src, std::vector<HostId> dst, double p,
                   TimePoint from, TimePoint until, bool symmetric = true);
  /// Fixed latency spike on matching links.
  FaultRuleId DelaySpike(std::vector<HostId> src, std::vector<HostId> dst,
                         Duration extra, TimePoint from, TimePoint until);
  /// Reordering window on matching links.
  FaultRuleId Reorder(std::vector<HostId> src, std::vector<HostId> dst,
                      Duration window, TimePoint from, TimePoint until);
  /// Probabilistic duplication on matching links.
  FaultRuleId Duplicate(std::vector<HostId> src, std::vector<HostId> dst,
                        double p, TimePoint from, TimePoint until);

  /// Called by the network once per packet (never for self-sends). Combines
  /// every active matching rule: delays add, and a winning drop suppresses
  /// the packet's other effects (a dropped packet yields no copies and
  /// charges no duplication budget). Every matching rule's RNG draws happen
  /// regardless, so the consumed stream — and therefore the replay — is a
  /// pure function of the rule set.
  FaultVerdict Judge(TimePoint now, HostId from, HostId to);

  /// True when no rule's window extends past `now` — the script has fully
  /// healed and the system should reconverge.
  bool QuietAfter(TimePoint now) const;

  /// Counters (diagnostics and tests).
  uint64_t packets_judged() const { return packets_judged_; }
  uint64_t packets_dropped() const { return packets_dropped_; }
  uint64_t packets_duplicated() const { return packets_duplicated_; }

  std::string ToString() const;

 private:
  struct Installed {
    FaultRuleId id;
    FaultRule rule;
  };

  std::vector<Installed> rules_;
  Rng rng_;
  FaultRuleId next_id_ = 1;
  uint64_t packets_judged_ = 0;
  uint64_t packets_dropped_ = 0;
  uint64_t packets_duplicated_ = 0;
};

}  // namespace sim
}  // namespace pier

#endif  // PIER_SIM_FAULT_PLANE_H_
