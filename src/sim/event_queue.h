// The discrete-event simulation core: a virtual clock and an event queue.
//
// Everything in a PIER experiment — message deliveries, protocol timers,
// workload arrivals, churn — is an event. Events at equal timestamps run in
// insertion order (a monotonically increasing sequence number breaks ties),
// which together with seeded RNGs makes whole-system runs deterministic.
//
// Performance model (this is the floor under every experiment; see
// DESIGN.md "Performance model"):
//   - the queue is a 4-ary min-heap keyed (time, seq) over pooled event
//     nodes, so the steady-state ScheduleAfter -> fire path performs zero
//     heap allocations: callbacks up to EventCallback::kInlineSize bytes are
//     constructed in the node's inline storage, and nodes are recycled
//     through a free list;
//   - Cancel is O(1) lazy cancellation: it bumps the node's generation and
//     frees the node immediately (destroying the callback); the stale heap
//     entry is skipped when it surfaces;
//   - equal-timestamp FIFO order is total because the comparator falls back
//     to the insertion sequence number.

#ifndef PIER_SIM_EVENT_QUEUE_H_
#define PIER_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/time_util.h"

namespace pier {
namespace sim {

/// Identifies a scheduled event so it can be cancelled. 0 is never a valid id.
using TimerId = uint64_t;

/// Move-only callable with small-buffer storage, sized so the network's
/// delivery closures (a Packet plus addressing) stay inline. Callables
/// larger than kInlineSize fall back to a single heap allocation.
class EventCallback {
 public:
  static constexpr size_t kInlineSize = 104;

  EventCallback() noexcept {}
  EventCallback(EventCallback&& other) noexcept { TakeFrom(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      TakeFrom(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { Reset(); }

  template <typename F>
  void Emplace(F&& fn) {
    Reset();
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      new (storage_) Fn(std::forward<F>(fn));
      invoke_ = [](void* s) { (*static_cast<Fn*>(s))(); };
      manager_ = [](Op op, void* s, void* d) {
        Fn* self = std::launder(static_cast<Fn*>(s));
        if (op == Op::kMove) new (d) Fn(std::move(*self));
        self->~Fn();
      };
    } else {
      Fn* heap = new Fn(std::forward<F>(fn));
      std::memcpy(storage_, &heap, sizeof(heap));
      invoke_ = [](void* s) {
        Fn* p;
        std::memcpy(&p, s, sizeof(p));
        (*p)();
      };
      manager_ = [](Op op, void* s, void* d) {
        if (op == Op::kMove) {
          std::memcpy(d, s, sizeof(Fn*));
        } else {
          Fn* p;
          std::memcpy(&p, s, sizeof(p));
          delete p;
        }
      };
    }
  }

  void Reset() {
    if (manager_ != nullptr) {
      manager_(Op::kDestroy, storage_, nullptr);
      manager_ = nullptr;
      invoke_ = nullptr;
    }
  }

  bool engaged() const { return invoke_ != nullptr; }
  void operator()() { invoke_(storage_); }

 private:
  enum class Op { kDestroy, kMove };
  using Invoker = void (*)(void*);
  using Manager = void (*)(Op, void* src, void* dst);

  void TakeFrom(EventCallback& other) noexcept {
    invoke_ = other.invoke_;
    manager_ = other.manager_;
    if (manager_ != nullptr) manager_(Op::kMove, other.storage_, storage_);
    other.invoke_ = nullptr;
    other.manager_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  Invoker invoke_ = nullptr;
  Manager manager_ = nullptr;
};

/// Single-threaded virtual-time event loop.
class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1) : rng_(seed) {
    // Clock registration is by pointer identity (a stack in the logger), so
    // any mix of nested or interleaved Simulation lifetimes is safe: this
    // instance only ever adds and removes its own clock.
    Logger::Instance().push_clock_source(&now_);
  }
  ~Simulation() { Logger::Instance().remove_clock_source(&now_); }

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `t` (clamped to now).
  /// Accepts any nullary callable; captures up to EventCallback::kInlineSize
  /// bytes are stored without allocating.
  template <typename F>
  TimerId ScheduleAt(TimePoint t, F&& fn) {
    if (t < now_) t = now_;
    uint32_t index = AllocNode();
    EventNode& node = NodeAt(index);
    node.cb.Emplace(std::forward<F>(fn));
    HeapPush(HeapKey{t, next_seq_++}, HeapRef{index, node.gen});
    ++live_;
    return MakeTimerId(index, node.gen);
  }
  /// Schedules `fn` to run `delay` after now.
  template <typename F>
  TimerId ScheduleAfter(Duration delay, F&& fn) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::forward<F>(fn));
  }
  /// Cancels a pending event; no-op if already fired or cancelled. O(1):
  /// the callback is destroyed now, the heap entry is skipped lazily.
  void Cancel(TimerId id);

  /// Runs events until the queue is empty or virtual time would exceed
  /// `deadline`. The clock is left at min(deadline, last event time).
  void RunUntil(TimePoint deadline);
  /// Runs for `span` of virtual time from now.
  void RunFor(Duration span) { RunUntil(now_ + span); }
  /// Drains the queue completely (bounded by `max_events` as a runaway
  /// guard). Returns the number of events executed.
  size_t RunAll(size_t max_events = 100'000'000);

  /// Number of pending (scheduled, not yet fired or cancelled) events.
  size_t pending() const { return live_; }
  /// Total events executed since construction.
  uint64_t executed() const { return executed_; }

  /// Root RNG for the experiment; subsystems should Fork() child streams.
  Rng& rng() { return rng_; }

 private:
  /// Heap entries are tombstoned by generation mismatch: a cancelled or
  /// fired node bumps `gen`, so the stale entry is discarded on pop.
  /// The heap is stored as two parallel arrays: 16-byte ordering keys
  /// (so a 4-ary node's children occupy one cache line on the sift-down's
  /// compare path) and 8-byte node references moved alongside.
  struct HeapKey {
    TimePoint time;
    uint64_t seq;
  };
  struct HeapRef {
    uint32_t node;
    uint32_t gen;
  };

  struct EventNode {
    EventCallback cb;
    uint32_t gen = 1;
  };
  /// Nodes live in fixed-size chunks so their addresses never move: a firing
  /// callback is invoked in place even if it schedules more events (which
  /// may grow the pool).
  static constexpr uint32_t kChunkShift = 9;  // 512 nodes per chunk
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;

  static TimerId MakeTimerId(uint32_t index, uint32_t gen) {
    return (static_cast<uint64_t>(gen) << 32) | index;
  }

  static bool Before(const HeapKey& a, const HeapKey& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  EventNode& NodeAt(uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  uint32_t AllocNode();
  void FreeNode(uint32_t index);
  /// Runs the event at `index` in place, then recycles the node. The node's
  /// generation is bumped before the callback runs, so the fired TimerId is
  /// already dead (Cancel from inside the callback is a no-op).
  void FireNode(uint32_t index);
  void HeapPush(HeapKey key, HeapRef ref);
  void HeapPop();

  TimePoint now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  size_t live_ = 0;
  // 4-ary min-heap on (time, seq): parallel key/ref arrays so the
  // sift-down's compare path reads one cache line per level.
  std::vector<HeapKey> heap_keys_;
  std::vector<HeapRef> heap_refs_;
  std::vector<std::unique_ptr<EventNode[]>> chunks_;  // stable node pool
  std::vector<uint32_t> free_nodes_;                  // recycled indices
  uint32_t node_count_ = 0;
  Rng rng_;
};

/// Convenience for protocol loops: reschedules itself every `period` until
/// the owner is destroyed or Stop() is called.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  ~PeriodicTask() { Stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Starts ticking: first fire after `initial_delay`, then every `period`.
  void Start(Simulation* sim, Duration initial_delay, Duration period,
             std::function<void()> fn);
  void Stop();
  bool running() const { return sim_ != nullptr; }

 private:
  void Fire();

  Simulation* sim_ = nullptr;
  Duration period_ = 0;
  TimerId pending_ = 0;
  std::function<void()> fn_;
};

}  // namespace sim
}  // namespace pier

#endif  // PIER_SIM_EVENT_QUEUE_H_
