// The discrete-event simulation core: a virtual clock and an event queue.
//
// Everything in a PIER experiment — message deliveries, protocol timers,
// workload arrivals, churn — is an event. Events at equal timestamps run in
// insertion order (a monotonically increasing sequence number breaks ties),
// which together with seeded RNGs makes whole-system runs deterministic.

#ifndef PIER_SIM_EVENT_QUEUE_H_
#define PIER_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/time_util.h"

namespace pier {
namespace sim {

/// Identifies a scheduled event so it can be cancelled. 0 is never a valid id.
using TimerId = uint64_t;

/// Single-threaded virtual-time event loop.
class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1) : rng_(seed) {
    Logger::Instance().set_clock_source(&now_);
  }
  ~Simulation() { Logger::Instance().set_clock_source(nullptr); }

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `t` (clamped to now).
  TimerId ScheduleAt(TimePoint t, std::function<void()> fn);
  /// Schedules `fn` to run `delay` after now.
  TimerId ScheduleAfter(Duration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }
  /// Cancels a pending event; no-op if already fired or cancelled.
  void Cancel(TimerId id);

  /// Runs events until the queue is empty or virtual time would exceed
  /// `deadline`. The clock is left at min(deadline, last event time).
  void RunUntil(TimePoint deadline);
  /// Runs for `span` of virtual time from now.
  void RunFor(Duration span) { RunUntil(now_ + span); }
  /// Drains the queue completely (bounded by `max_events` as a runaway
  /// guard). Returns the number of events executed.
  size_t RunAll(size_t max_events = 100'000'000);

  /// Number of pending events.
  size_t pending() const { return queue_.size(); }
  /// Total events executed since construction.
  uint64_t executed() const { return executed_; }

  /// Root RNG for the experiment; subsystems should Fork() child streams.
  Rng& rng() { return rng_; }

 private:
  struct EventKey {
    TimePoint time;
    uint64_t seq;
    bool operator<(const EventKey& o) const {
      return time != o.time ? time < o.time : seq < o.seq;
    }
  };

  TimePoint now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  std::map<EventKey, std::function<void()>> queue_;
  std::map<TimerId, EventKey> timer_index_;
  Rng rng_;
};

/// Convenience for protocol loops: reschedules itself every `period` until
/// the owner is destroyed or Stop() is called.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  ~PeriodicTask() { Stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Starts ticking: first fire after `initial_delay`, then every `period`.
  void Start(Simulation* sim, Duration initial_delay, Duration period,
             std::function<void()> fn);
  void Stop();
  bool running() const { return sim_ != nullptr; }

 private:
  void Fire();

  Simulation* sim_ = nullptr;
  Duration period_ = 0;
  TimerId pending_ = 0;
  std::function<void()> fn_;
};

}  // namespace sim
}  // namespace pier

#endif  // PIER_SIM_EVENT_QUEUE_H_
