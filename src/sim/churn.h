// Churn scheduling: drives hosts through up/down cycles with exponentially
// distributed session and downtime lengths, the standard model for P2P
// membership dynamics (cf. "Handling churn in a DHT", USENIX '04 — reference
// [6] of the paper).

#ifndef PIER_SIM_CHURN_H_
#define PIER_SIM_CHURN_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/network.h"

namespace pier {
namespace sim {

struct ChurnOptions {
  /// Mean up-time before a node departs.
  Duration mean_session = Seconds(300);
  /// Mean down-time before it returns.
  Duration mean_downtime = Seconds(60);
  /// Churn begins only after this time (lets the overlay stabilize first).
  TimePoint start_at = Seconds(30);
  /// No departures are scheduled after this time (0 = no limit).
  TimePoint stop_at = 0;
  /// Fraction of managed hosts that never churn (stable core).
  double stable_fraction = 0.0;
};

/// Schedules up/down transitions for a set of hosts and reports them to a
/// callback (the PIER harness reacts by failing/rebooting nodes).
class ChurnScheduler {
 public:
  /// `on_transition(host, up)` fires at each membership change.
  ChurnScheduler(Simulation* sim, ChurnOptions options,
                 std::function<void(HostId, bool)> on_transition);

  /// Puts `host` under churn management. Must be called while the host is up.
  void Manage(HostId host);

  /// Transitions that have fired so far (diagnostics).
  uint64_t transitions() const { return transitions_; }

 private:
  void ScheduleDeparture(HostId host);
  void ScheduleReturn(HostId host);
  bool StoppedAt(TimePoint t) const {
    return options_.stop_at != 0 && t >= options_.stop_at;
  }

  Simulation* sim_;
  ChurnOptions options_;
  std::function<void(HostId, bool)> on_transition_;
  Rng rng_;
  uint64_t transitions_ = 0;
};

}  // namespace sim
}  // namespace pier

#endif  // PIER_SIM_CHURN_H_
