#include "sim/fault_plane.h"

#include <algorithm>

namespace pier {
namespace sim {

namespace {
bool InSet(const std::vector<HostId>& set, HostId h) {
  return set.empty() || std::find(set.begin(), set.end(), h) != set.end();
}
}  // namespace

std::string FormatHostSet(const std::vector<HostId>& set) {
  if (set.empty()) return "*";
  std::string out = "{";
  for (size_t i = 0; i < set.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(set[i]);
  }
  return out + "}";
}

bool FaultRule::Matches(HostId a, HostId b) const {
  if (InSet(src, a) && InSet(dst, b)) return true;
  return symmetric && InSet(src, b) && InSet(dst, a);
}

std::string FaultRule::ToString() const {
  std::string out = "[" + FormatDuration(from) + "," +
                    (until == std::numeric_limits<TimePoint>::max()
                         ? std::string("inf")
                         : FormatDuration(until)) +
                    ") " + FormatHostSet(src) +
                    (symmetric ? "<->" : "->") + FormatHostSet(dst);
  if (drop_prob > 0) {
    out += " drop=" + std::to_string(drop_prob);
  }
  if (extra_delay > 0) out += " delay+" + FormatDuration(extra_delay);
  if (reorder_window > 0) out += " reorder<" + FormatDuration(reorder_window);
  if (duplicate_prob > 0) out += " dup=" + std::to_string(duplicate_prob);
  return out;
}

FaultRuleId FaultPlane::AddRule(FaultRule rule) {
  FaultRuleId id = next_id_++;
  rules_.push_back(Installed{id, std::move(rule)});
  return id;
}

void FaultPlane::RemoveRule(FaultRuleId id) {
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [id](const Installed& r) { return r.id == id; }),
               rules_.end());
}

FaultRuleId FaultPlane::Partition(std::vector<HostId> group_a,
                                  std::vector<HostId> group_b, TimePoint from,
                                  TimePoint until, bool bidirectional) {
  FaultRule rule;
  rule.from = from;
  rule.until = until;
  rule.src = std::move(group_a);
  rule.dst = std::move(group_b);
  rule.symmetric = bidirectional;
  rule.drop_prob = 1.0;
  return AddRule(std::move(rule));
}

FaultRuleId FaultPlane::Loss(std::vector<HostId> src, std::vector<HostId> dst,
                             double p, TimePoint from, TimePoint until,
                             bool symmetric) {
  FaultRule rule;
  rule.from = from;
  rule.until = until;
  rule.src = std::move(src);
  rule.dst = std::move(dst);
  rule.symmetric = symmetric;
  rule.drop_prob = p;
  return AddRule(std::move(rule));
}

FaultRuleId FaultPlane::DelaySpike(std::vector<HostId> src,
                                   std::vector<HostId> dst, Duration extra,
                                   TimePoint from, TimePoint until) {
  FaultRule rule;
  rule.from = from;
  rule.until = until;
  rule.src = std::move(src);
  rule.dst = std::move(dst);
  rule.symmetric = true;
  rule.extra_delay = extra;
  return AddRule(std::move(rule));
}

FaultRuleId FaultPlane::Reorder(std::vector<HostId> src,
                                std::vector<HostId> dst, Duration window,
                                TimePoint from, TimePoint until) {
  FaultRule rule;
  rule.from = from;
  rule.until = until;
  rule.src = std::move(src);
  rule.dst = std::move(dst);
  rule.symmetric = true;
  rule.reorder_window = window;
  return AddRule(std::move(rule));
}

FaultRuleId FaultPlane::Duplicate(std::vector<HostId> src,
                                  std::vector<HostId> dst, double p,
                                  TimePoint from, TimePoint until) {
  FaultRule rule;
  rule.from = from;
  rule.until = until;
  rule.src = std::move(src);
  rule.dst = std::move(dst);
  rule.symmetric = true;
  rule.duplicate_prob = p;
  return AddRule(std::move(rule));
}

FaultVerdict FaultPlane::Judge(TimePoint now, HostId from, HostId to) {
  ++packets_judged_;
  FaultVerdict v;
  // Rules whose duplication draw won this packet; their budgets are charged
  // only once the packet is known NOT to drop (a dropped packet yields no
  // copies, so it must not exhaust a duplication budget either). At most 8
  // duplication rules (in installation order) can win per packet — beyond
  // that, later winners inject nothing and are charged nothing; scripts
  // stacking 9+ overlapping duplication rules on one link are outside the
  // model's envelope.
  Installed* dup_winners[8];
  size_t n_dup_winners = 0;
  for (Installed& entry : rules_) {
    FaultRule& rule = entry.rule;
    if (!rule.ActiveAt(now) || !rule.Matches(from, to)) continue;
    // Every active matching rule draws from the RNG in installation order,
    // so the stream consumed per packet is a pure function of the rule set —
    // required for seed replay.
    if (rule.drop_prob > 0 && rng_.Chance(rule.drop_prob)) v.drop = true;
    v.extra_delay += rule.extra_delay;
    if (rule.reorder_window > 0) {
      v.extra_delay += static_cast<Duration>(
          rng_.NextBelow(static_cast<uint64_t>(rule.reorder_window)));
    }
    if (rule.duplicate_prob > 0 && rng_.Chance(rule.duplicate_prob) &&
        n_dup_winners < 8) {
      dup_winners[n_dup_winners++] = &entry;
    }
  }
  if (v.drop) {
    ++packets_dropped_;
    v.extra_delay = 0;
    return v;
  }
  for (size_t i = 0; i < n_dup_winners; ++i) {
    FaultRule& rule = dup_winners[i]->rule;
    if (rule.duplicate_budget == 0) continue;
    --rule.duplicate_budget;
    ++v.duplicates;
  }
  packets_duplicated_ += static_cast<uint64_t>(v.duplicates);
  return v;
}

bool FaultPlane::QuietAfter(TimePoint now) const {
  for (const Installed& entry : rules_) {
    if (entry.rule.until > now) return false;
  }
  return true;
}

std::string FaultPlane::ToString() const {
  std::string out;
  for (const Installed& entry : rules_) {
    if (!out.empty()) out += "\n";
    out += entry.rule.ToString();
  }
  return out;
}

}  // namespace sim
}  // namespace pier
