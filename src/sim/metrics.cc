#include "sim/metrics.h"

#include <cmath>
#include <cstdio>

namespace pier {
namespace sim {

void Histogram::Add(double v) {
  samples_.push_back(v);
  sorted_valid_ = false;
}

void Histogram::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0 : sorted_.front();
}

double Histogram::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0 : sorted_.back();
}

double Histogram::Percentile(double p) const {
  EnsureSorted();
  if (sorted_.empty()) return 0;
  double rank = (p / 100.0) * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  if (hi >= sorted_.size()) hi = sorted_.size() - 1;
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1 - frac) + sorted_[hi] * frac;
}

std::string Histogram::Summary() const {
  char buf[160];
  snprintf(buf, sizeof(buf),
           "n=%zu mean=%.2f p50=%.2f p95=%.2f max=%.2f", count(), Mean(),
           Percentile(50), Percentile(95), Max());
  return buf;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

std::string TimeSeries::ToTsv(const std::string& header) const {
  std::string out = "# " + header + "\n";
  char buf[64];
  for (const Point& p : points_) {
    snprintf(buf, sizeof(buf), "%.3f\t%.3f\n", ToSecondsF(p.time), p.value);
    out += buf;
  }
  return out;
}

}  // namespace sim
}  // namespace pier
