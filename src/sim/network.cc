#include "sim/network.h"

#include "common/hash.h"

namespace pier {
namespace sim {

Network::Network(Simulation* sim, NetworkOptions options)
    : sim_(sim),
      options_(options),
      latency_rng_(sim->rng().Fork(0x6e657477ull)),  // "netw"
      pair_seed_(sim->rng().Fork(0x70616972ull).Next()) {}

HostId Network::AddHost(MessageHandler* handler) {
  HostId id = static_cast<HostId>(hosts_.size());
  hosts_.push_back(HostState{handler, true, 0});
  return id;
}

void Network::SetHandler(HostId host, MessageHandler* handler) {
  PIER_CHECK(host < hosts_.size());
  hosts_[host].handler = handler;
}

void Network::SetHostUp(HostId host, bool up) {
  PIER_CHECK(host < hosts_.size());
  if (hosts_[host].up && !up) {
    ++hosts_[host].epoch;  // invalidate in-flight traffic
  }
  hosts_[host].up = up;
}

bool Network::IsUp(HostId host) const {
  return host < hosts_.size() && hosts_[host].up;
}

Duration Network::BaseLatency(HostId a, HostId b) const {
  if (a == b) return Millis(0) + 50;  // loopback: 50us
  HostId lo = a < b ? a : b;
  HostId hi = a < b ? b : a;
  uint64_t h = Mix64(pair_seed_ ^ (static_cast<uint64_t>(lo) << 32 | hi));
  Duration span = options_.max_latency - options_.min_latency;
  if (span <= 0) return options_.min_latency;
  return options_.min_latency + static_cast<Duration>(h % static_cast<uint64_t>(span));
}

Status Network::Send(HostId from, HostId to, Packet packet) {
  if (from >= hosts_.size() || to >= hosts_.size()) {
    return Status::InvalidArgument("no such host");
  }
  if (!hosts_[from].up) {
    return Status::Unavailable("sending host is down");
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += packet.size() + options_.per_message_overhead_bytes;

  if (!hosts_[to].up) {
    // Real networks do not tell you this synchronously; the message just
    // disappears and upper layers time out.
    ++stats_.messages_to_down_host;
    return Status::OK();
  }
  if (from != to && options_.loss_rate > 0 &&
      latency_rng_.Chance(options_.loss_rate)) {
    ++stats_.messages_lost;
    return Status::OK();
  }
  FaultVerdict fault;
  if (fault_plane_ != nullptr && from != to) {
    fault = fault_plane_->Judge(sim_->now(), from, to);
    if (fault.drop) {
      ++stats_.messages_faulted;
      FoldTrace(/*tag=*/2, from, to, static_cast<uint64_t>(sim_->now()),
                packet.size());
      return Status::OK();
    }
  }

  Duration delay = BaseLatency(from, to) + fault.extra_delay;
  if (options_.jitter > 0 && from != to) {
    delay += static_cast<Duration>(
        latency_rng_.NextBelow(static_cast<uint64_t>(options_.jitter) + 1));
  }
  if (options_.bandwidth_bytes_per_sec > 0) {
    delay += static_cast<Duration>(
        (packet.size() + options_.per_message_overhead_bytes) * kSecond /
        options_.bandwidth_bytes_per_sec);
  }
  FoldTrace(/*tag=*/1, from, to, static_cast<uint64_t>(sim_->now()),
            static_cast<uint64_t>(delay) ^ (packet.size() << 32));

  uint64_t to_epoch = hosts_[to].epoch;
  Duration dup_delay = delay;
  for (int copy = 0; copy < fault.duplicates; ++copy) {
    ++stats_.messages_duplicated;
    // Duplicates arrive with their own jitter draw so the copies separate
    // in time, as retransmission-induced duplicates do. Copying the Packet
    // bumps refcounts, never bytes.
    dup_delay += static_cast<Duration>(
        latency_rng_.NextBelow(static_cast<uint64_t>(options_.jitter) + 1));
    sim_->ScheduleAfter(dup_delay, [this, from, to, to_epoch, packet] {
      Deliver(from, to, to_epoch, packet);
    });
  }
  // The delivery closure carries two Payload handles (refcounts, no byte
  // copies) and fits the event node's inline storage — the hot path of a
  // 10k-node run does no allocation here.
  sim_->ScheduleAfter(delay, [this, from, to, to_epoch,
                              packet = std::move(packet)] {
    Deliver(from, to, to_epoch, packet);
  });
  return Status::OK();
}

void Network::Deliver(HostId from, HostId to, uint64_t to_epoch,
                      const Packet& packet) {
  HostState& host = hosts_[to];
  if (!host.up || host.epoch != to_epoch || host.handler == nullptr) {
    ++stats_.messages_to_down_host;
    return;
  }
  ++stats_.messages_delivered;
  FoldTrace(/*tag=*/3, from, to, static_cast<uint64_t>(sim_->now()),
            packet.size());
  host.handler->OnMessage(from, packet);
}

void Network::FoldTrace(uint64_t tag, HostId from, HostId to, uint64_t a,
                        uint64_t b) {
  // FNV-1a over the event's identifying words; order-sensitive by design.
  auto fold = [this](uint64_t word) {
    trace_digest_ = (trace_digest_ ^ word) * 0x100000001b3ull;
  };
  fold(tag);
  fold((static_cast<uint64_t>(from) << 32) | to);
  fold(a);
  fold(b);
}

}  // namespace sim
}  // namespace pier
