#include "sim/churn.h"

namespace pier {
namespace sim {

ChurnScheduler::ChurnScheduler(Simulation* sim, ChurnOptions options,
                               std::function<void(HostId, bool)> on_transition)
    : sim_(sim),
      options_(options),
      on_transition_(std::move(on_transition)),
      rng_(sim->rng().Fork(0x636875726eull)) {}  // "churn"

void ChurnScheduler::Manage(HostId host) {
  if (rng_.Chance(options_.stable_fraction)) return;
  ScheduleDeparture(host);
}

void ChurnScheduler::ScheduleDeparture(HostId host) {
  Duration session = static_cast<Duration>(
      rng_.Exponential(static_cast<double>(options_.mean_session)));
  TimePoint when = sim_->now() + session;
  if (when < options_.start_at) when = options_.start_at + session;
  if (StoppedAt(when)) return;
  sim_->ScheduleAt(when, [this, host] {
    ++transitions_;
    on_transition_(host, /*up=*/false);
    ScheduleReturn(host);
  });
}

void ChurnScheduler::ScheduleReturn(HostId host) {
  Duration down = static_cast<Duration>(
      rng_.Exponential(static_cast<double>(options_.mean_downtime)));
  TimePoint when = sim_->now() + std::max<Duration>(down, Seconds(1));
  sim_->ScheduleAt(when, [this, host] {
    ++transitions_;
    on_transition_(host, /*up=*/true);
    if (!StoppedAt(sim_->now())) ScheduleDeparture(host);
  });
}

}  // namespace sim
}  // namespace pier
