#include "sim/event_queue.h"

namespace pier {
namespace sim {

uint32_t Simulation::AllocNode() {
  if (!free_nodes_.empty()) {
    uint32_t index = free_nodes_.back();
    free_nodes_.pop_back();
    return index;
  }
  if ((node_count_ >> kChunkShift) == chunks_.size()) {
    chunks_.push_back(std::make_unique<EventNode[]>(kChunkSize));
  }
  return node_count_++;
}

void Simulation::FreeNode(uint32_t index) {
  EventNode& node = NodeAt(index);
  node.cb.Reset();
  ++node.gen;  // invalidates the TimerId and any heap entry still pointing here
  free_nodes_.push_back(index);
}

void Simulation::FireNode(uint32_t index) {
  EventNode& node = NodeAt(index);
  ++node.gen;  // the TimerId dies before the callback runs
  --live_;
  ++executed_;
  node.cb();  // node storage is chunk-stable: safe even if this schedules
  node.cb.Reset();
  free_nodes_.push_back(index);
}

void Simulation::Cancel(TimerId id) {
  uint32_t index = static_cast<uint32_t>(id & 0xffffffffu);
  uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (index >= node_count_ || NodeAt(index).gen != gen) return;
  FreeNode(index);
  --live_;
}

void Simulation::HeapPush(HeapKey key, HeapRef ref) {
  // Hole insertion: bubble the vacancy up and write the entry once.
  heap_keys_.push_back(key);
  heap_refs_.push_back(ref);
  size_t i = heap_keys_.size() - 1;
  while (i > 0) {
    size_t parent = (i - 1) >> 2;
    if (!Before(key, heap_keys_[parent])) break;
    heap_keys_[i] = heap_keys_[parent];
    heap_refs_[i] = heap_refs_[parent];
    i = parent;
  }
  heap_keys_[i] = key;
  heap_refs_[i] = ref;
}

void Simulation::HeapPop() {
  HeapKey last_key = heap_keys_.back();
  HeapRef last_ref = heap_refs_.back();
  heap_keys_.pop_back();
  heap_refs_.pop_back();
  size_t n = heap_keys_.size();
  if (n == 0) return;
  // Hole sift-down with early exit, comparing only the key array (a 4-ary
  // node's four 16-byte children keys span one cache line). The early-exit
  // test beats Floyd's bottom-up variant at this arity (measured).
  size_t i = 0;
  for (;;) {
    size_t first = (i << 2) + 1;
    if (first >= n) break;
    size_t best = first;
    size_t end = first + 4 < n ? first + 4 : n;
    for (size_t c = first + 1; c < end; ++c) {
      if (Before(heap_keys_[c], heap_keys_[best])) best = c;
    }
    if (!Before(heap_keys_[best], last_key)) break;
    heap_keys_[i] = heap_keys_[best];
    heap_refs_[i] = heap_refs_[best];
    i = best;
  }
  heap_keys_[i] = last_key;
  heap_refs_[i] = last_ref;
}

void Simulation::RunUntil(TimePoint deadline) {
  while (!heap_keys_.empty()) {
    HeapRef top_ref = heap_refs_.front();
    if (NodeAt(top_ref.node).gen != top_ref.gen) {
      HeapPop();  // tombstone of a cancelled event
      continue;
    }
    TimePoint top_time = heap_keys_.front().time;
    if (top_time > deadline) break;
    HeapPop();
    now_ = top_time;
    FireNode(top_ref.node);
  }
  if (now_ < deadline) now_ = deadline;
}

size_t Simulation::RunAll(size_t max_events) {
  size_t count = 0;
  while (count < max_events && !heap_keys_.empty()) {
    HeapRef top_ref = heap_refs_.front();
    if (NodeAt(top_ref.node).gen != top_ref.gen) {
      HeapPop();  // tombstone of a cancelled event
      continue;
    }
    now_ = heap_keys_.front().time;
    HeapPop();
    FireNode(top_ref.node);
    ++count;
  }
  return count;
}

void PeriodicTask::Start(Simulation* sim, Duration initial_delay,
                         Duration period, std::function<void()> fn) {
  Stop();
  sim_ = sim;
  period_ = period;
  fn_ = std::move(fn);
  pending_ = sim_->ScheduleAfter(initial_delay, [this] { Fire(); });
}

void PeriodicTask::Stop() {
  if (sim_ != nullptr && pending_ != 0) {
    sim_->Cancel(pending_);
  }
  pending_ = 0;
  sim_ = nullptr;
}

void PeriodicTask::Fire() {
  // Reschedule before running so the callback may Stop() us.
  pending_ = sim_->ScheduleAfter(period_, [this] { Fire(); });
  fn_();
}

}  // namespace sim
}  // namespace pier
