#include "sim/event_queue.h"

namespace pier {
namespace sim {

TimerId Simulation::ScheduleAt(TimePoint t, std::function<void()> fn) {
  if (t < now_) t = now_;
  EventKey key{t, next_seq_++};
  TimerId id = key.seq;
  queue_.emplace(key, std::move(fn));
  timer_index_.emplace(id, key);
  return id;
}

void Simulation::Cancel(TimerId id) {
  auto it = timer_index_.find(id);
  if (it == timer_index_.end()) return;
  queue_.erase(it->second);
  timer_index_.erase(it);
}

void Simulation::RunUntil(TimePoint deadline) {
  while (!queue_.empty()) {
    auto it = queue_.begin();
    if (it->first.time > deadline) break;
    now_ = it->first.time;
    std::function<void()> fn = std::move(it->second);
    timer_index_.erase(it->first.seq);
    queue_.erase(it);
    ++executed_;
    fn();
  }
  if (now_ < deadline) now_ = deadline;
}

size_t Simulation::RunAll(size_t max_events) {
  size_t count = 0;
  while (!queue_.empty() && count < max_events) {
    auto it = queue_.begin();
    now_ = it->first.time;
    std::function<void()> fn = std::move(it->second);
    timer_index_.erase(it->first.seq);
    queue_.erase(it);
    ++executed_;
    ++count;
    fn();
  }
  return count;
}

void PeriodicTask::Start(Simulation* sim, Duration initial_delay,
                         Duration period, std::function<void()> fn) {
  Stop();
  sim_ = sim;
  period_ = period;
  fn_ = std::move(fn);
  pending_ = sim_->ScheduleAfter(initial_delay, [this] { Fire(); });
}

void PeriodicTask::Stop() {
  if (sim_ != nullptr && pending_ != 0) {
    sim_->Cancel(pending_);
  }
  pending_ = 0;
  sim_ = nullptr;
}

void PeriodicTask::Fire() {
  // Reschedule before running so the callback may Stop() us.
  pending_ = sim_->ScheduleAfter(period_, [this] { Fire(); });
  fn_();
}

}  // namespace sim
}  // namespace pier
