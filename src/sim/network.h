// Simulated wide-area message network.
//
// Substitution for PlanetLab (see DESIGN.md): hosts are in-process endpoints
// addressed by HostId; each ordered host pair has a deterministic base
// latency drawn from a configurable range (stable "geography"), plus
// per-message jitter, optional loss, and a serialization delay derived from
// a bandwidth cap. Payloads are opaque byte strings — layers above must
// really serialize, exactly as they would on a socket.

#ifndef PIER_SIM_NETWORK_H_
#define PIER_SIM_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sim/event_queue.h"
#include "sim/fault_plane.h"
#include "sim/payload.h"

namespace pier {
namespace sim {

/// Index of a host within a Network. Dense, assigned at AddHost time.
using HostId = uint32_t;
inline constexpr HostId kInvalidHost = 0xffffffffu;

/// Receiver interface for host endpoints. Deliveries hand over the Packet's
/// payloads by reference; handlers that keep bytes alive copy the Payload
/// handle (refcount bump), never the bytes.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  /// Called when a message addressed to this host is delivered.
  virtual void OnMessage(HostId from, const Packet& packet) = 0;
};

/// Knobs for the network model (RocksDB-style options struct).
struct NetworkOptions {
  /// Base one-way latency range; each unordered pair draws a stable value.
  Duration min_latency = Millis(5);
  Duration max_latency = Millis(80);
  /// Per-message jitter added on top of the pair's base latency.
  Duration jitter = Millis(3);
  /// Probability a message is silently dropped in flight.
  double loss_rate = 0.0;
  /// Per-host uplink bandwidth in bytes/sec; 0 disables the serialization
  /// delay term.
  uint64_t bandwidth_bytes_per_sec = 0;
  /// Fixed per-message header overhead added to byte accounting (UDP/IP-ish).
  size_t per_message_overhead_bytes = 28;
};

/// Aggregate traffic counters.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_lost = 0;
  uint64_t messages_to_down_host = 0;
  /// Dropped by an active FaultPlane rule (partitions, injected loss).
  uint64_t messages_faulted = 0;
  /// Extra copies scheduled by duplication rules.
  uint64_t messages_duplicated = 0;
  uint64_t bytes_sent = 0;

  void Reset() { *this = NetworkStats(); }
};

/// The simulated network. Single instance per experiment.
class Network {
 public:
  Network(Simulation* sim, NetworkOptions options);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a new host and returns its address. The handler may be null
  /// initially and set later (hosts are wired up in two phases at boot).
  HostId AddHost(MessageHandler* handler);
  void SetHandler(HostId host, MessageHandler* handler);

  /// Marks a host up/down. Messages to or from a down host vanish, as do
  /// messages already in flight toward a host that crashes before delivery.
  void SetHostUp(HostId host, bool up);
  bool IsUp(HostId host) const;
  size_t host_count() const { return hosts_.size(); }

  /// Sends `packet` from `from` to `to`. Delivery (if any) happens later in
  /// virtual time. Self-sends are delivered with minimal loopback delay and
  /// are never lost. The packet's body buffer is shared, not copied.
  Status Send(HostId from, HostId to, Packet packet);
  /// Convenience for flat byte strings (tests, single-hop protocols).
  Status Send(HostId from, HostId to, std::string bytes) {
    return Send(from, to, Packet(std::move(bytes)));
  }

  /// Stable base one-way latency for the pair (diagnostics, experiments).
  Duration BaseLatency(HostId a, HostId b) const;

  /// Attaches a fault-injection layer consulted once per non-loopback packet
  /// (null detaches). The plane is owned by the caller and must outlive the
  /// network or be detached first.
  void SetFaultPlane(FaultPlane* plane) { fault_plane_ = plane; }
  FaultPlane* fault_plane() { return fault_plane_; }

  /// Order-sensitive digest over every send decision and delivery
  /// (time, endpoints, size, computed delay). Two runs of the same seeded
  /// experiment produce equal digests iff their event traces are
  /// byte-identical — the replay assertion of the fault testkit.
  uint64_t trace_digest() const { return trace_digest_; }

  const NetworkStats& stats() const { return stats_; }
  NetworkStats* mutable_stats() { return &stats_; }

  Simulation* simulation() { return sim_; }
  const NetworkOptions& options() const { return options_; }

 private:
  struct HostState {
    MessageHandler* handler = nullptr;
    bool up = true;
    /// Incremented on every down transition; in-flight messages remember the
    /// epoch they were sent in and are dropped on mismatch, so a host that
    /// crashes and returns does not receive pre-crash traffic.
    uint64_t epoch = 0;
  };

  void Deliver(HostId from, HostId to, uint64_t to_epoch,
               const Packet& packet);
  void FoldTrace(uint64_t tag, HostId from, HostId to, uint64_t a, uint64_t b);

  Simulation* sim_;
  NetworkOptions options_;
  std::vector<HostState> hosts_;
  NetworkStats stats_;
  Rng latency_rng_;   // per-message jitter + loss draws
  uint64_t pair_seed_;
  FaultPlane* fault_plane_ = nullptr;
  uint64_t trace_digest_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
};

}  // namespace sim
}  // namespace pier

#endif  // PIER_SIM_NETWORK_H_
