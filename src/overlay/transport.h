// Transport: one node's endpoint onto the simulated network, demultiplexing
// inbound messages to subsystem protocols (overlay maintenance, DHT storage,
// query dataflow, ...). Every outbound message is [proto byte][payload],
// with payload produced by a Writer — real serialization end to end.

#ifndef PIER_OVERLAY_TRANSPORT_H_
#define PIER_OVERLAY_TRANSPORT_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "common/serialize.h"
#include "common/status.h"
#include "sim/network.h"

namespace pier {
namespace overlay {

/// Well-known protocol numbers. Subsystems register handlers for these.
enum class Proto : uint8_t {
  kOverlay = 1,    ///< ring maintenance + routing (chord.cc)
  kDht = 2,        ///< soft-state storage RPCs (dht/storage.cc)
  kBroadcast = 3,  ///< dissemination trees (dht/broadcast.cc)
  kQuery = 4,      ///< query plans + dataflow tuples (query/*)
};

/// Per-protocol traffic counters for experiment accounting.
struct ProtoTraffic {
  uint64_t messages_out = 0;
  uint64_t bytes_out = 0;
};

/// A node's sending/receiving endpoint. Owned by the node; handlers are
/// registered once at boot.
class Transport {
 public:
  /// Handler receives the sender host, a Reader positioned at the frame's
  /// header payload, and the packet body (empty for head-only frames). The
  /// body is a shared buffer: forwarding it onward never copies bytes.
  using Handler =
      std::function<void(sim::HostId from, Reader* r, const sim::Payload& body)>;

  Transport(sim::Network* network, sim::HostId self)
      : network_(network), self_(self) {}

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Registers the handler for `proto`. At most one handler per protocol.
  void RegisterHandler(Proto proto, Handler handler) {
    handlers_[static_cast<size_t>(proto)] = std::move(handler);
  }

  /// Sends `payload` to `to` under `proto` as a head-only frame.
  Status Send(sim::HostId to, Proto proto, const Writer& payload) {
    Writer framed;
    framed.Reserve(payload.size() + 1);
    framed.PutU8(static_cast<uint8_t>(proto));
    framed.PutRaw(payload.buffer().data(), payload.size());
    return SendPacket(to, proto,
                      sim::Packet(sim::Payload(framed.Release()), {}));
  }

  /// Sends `header` plus a shared `body` — the zero-copy path for routed
  /// and broadcast application payloads: the header is rebuilt per hop, the
  /// body buffer travels untouched end to end.
  Status SendWithBody(sim::HostId to, Proto proto, const Writer& header,
                      sim::Payload body) {
    Writer framed;
    framed.Reserve(header.size() + 1);
    framed.PutU8(static_cast<uint8_t>(proto));
    framed.PutRaw(header.buffer().data(), header.size());
    return SendPacket(to, proto,
                      sim::Packet(sim::Payload(framed.Release()),
                                  std::move(body)));
  }

  /// Entry point wired to sim::MessageHandler by the owning node.
  void Dispatch(sim::HostId from, const sim::Packet& packet) {
    Reader r(packet.head.view());
    uint8_t proto = 0;
    if (!r.GetU8(&proto).ok()) return;  // malformed frame: drop
    if (proto >= handlers_.size()) return;
    const Handler& h = handlers_[proto];
    if (h) h(from, &r, packet.body);
  }

  sim::HostId self() const { return self_; }
  sim::Network* network() { return network_; }
  sim::Simulation* simulation() { return network_->simulation(); }

  const ProtoTraffic& traffic(Proto proto) const {
    return traffic_[static_cast<size_t>(proto)];
  }

 private:
  Status SendPacket(sim::HostId to, Proto proto, sim::Packet packet) {
    ProtoTraffic& t = traffic_[static_cast<size_t>(proto)];
    ++t.messages_out;
    t.bytes_out += packet.size();
    return network_->Send(self_, to, std::move(packet));
  }

  sim::Network* network_;
  sim::HostId self_;
  std::array<Handler, 8> handlers_;
  std::array<ProtoTraffic, 8> traffic_{};
};

}  // namespace overlay
}  // namespace pier

#endif  // PIER_OVERLAY_TRANSPORT_H_
