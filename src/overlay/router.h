// Router: the key-based routing abstraction PIER builds on.
//
// The paper is explicit that "DHT" is a catch-all: PIER needs only
//   (1) route a payload to the node responsible for a key,
//   (2) know which keys this node is responsible for, and
//   (3) enumerate routing neighbors (for dissemination trees).
// ChordNode implements this with O(log n) hops; OneHopRouter is an idealized
// full-membership baseline used in tests and ablations.

#ifndef PIER_OVERLAY_ROUTER_H_
#define PIER_OVERLAY_ROUTER_H_

#include <functional>
#include <unordered_map>
#include <string>
#include <vector>

#include "common/id160.h"
#include "common/time_util.h"
#include "overlay/node_info.h"
#include "sim/payload.h"

namespace pier {
namespace overlay {

/// Application payload delivered by the router at the responsible node.
struct RoutedMessage {
  Id160 key;                  ///< key the message was routed by
  sim::HostId origin;         ///< host that initiated the route
  uint8_t app_tag = 0;        ///< application demux tag (DHT put vs get ...)
  int hops = 0;               ///< overlay hops taken
  sim::Payload payload;       ///< opaque application bytes (shared buffer)
};

/// Key-based routing interface.
class Router {
 public:
  virtual ~Router() = default;

  /// Upcall invoked at the node responsible for a routed key.
  using DeliverFn = std::function<void(const RoutedMessage&)>;
  virtual void SetDeliverCallback(DeliverFn fn) = 0;

  /// Routes `payload` toward the node currently responsible for `key`.
  /// Best-effort: messages can be lost under churn; callers that need
  /// reliability retry (soft state). The payload buffer is serialized once
  /// by the caller and shared across every overlay hop.
  virtual void Route(const Id160& key, uint8_t app_tag,
                     sim::Payload payload) = 0;

  /// True iff this node currently owns `key`.
  virtual bool IsResponsibleFor(const Id160& key) const = 0;

  /// This node's identity.
  virtual NodeInfo self() const = 0;

  /// Live routing neighbors, deduplicated, for building dissemination trees:
  /// successors first, then fingers in increasing clockwise distance.
  virtual std::vector<NodeInfo> RoutingNeighbors() const = 0;

  /// Virtual time of the most recent routing-topology change this node
  /// observed locally (neighbor eviction/adoption under churn). 0 = never.
  /// A recent change means this node's view of "the whole network" may be
  /// one side of a partition — consumers making global claims (the query
  /// engine's exactness certification) must hold off until the view has
  /// been stable for a detection window. The idealized one-hop router's
  /// omniscient directory never drifts, so the default stands.
  virtual TimePoint last_topology_change() const { return 0; }

  /// Resolves the responsible node for `key` asynchronously.
  /// `cb(status, owner, hops)`.
  using LookupCallback =
      std::function<void(Status, const NodeInfo&, int hops)>;
  virtual void Lookup(const Id160& key, LookupCallback cb) = 0;
};

/// Demultiplexes the router's single delivery callback by app_tag so several
/// subsystems (DHT storage, query dataflow) can share one router.
class RouteMux {
 public:
  using TagHandler = std::function<void(const RoutedMessage&)>;

  /// Installs itself as `router`'s delivery callback.
  explicit RouteMux(Router* router) {
    router->SetDeliverCallback(
        [this](const RoutedMessage& m) { Dispatch(m); });
  }

  RouteMux(const RouteMux&) = delete;
  RouteMux& operator=(const RouteMux&) = delete;

  void Register(uint8_t app_tag, TagHandler handler) {
    handlers_[app_tag] = std::move(handler);
  }

  void Dispatch(const RoutedMessage& m) {
    auto it = handlers_.find(m.app_tag);
    if (it != handlers_.end()) it->second(m);
  }

 private:
  std::unordered_map<uint8_t, TagHandler> handlers_;
};

}  // namespace overlay
}  // namespace pier

#endif  // PIER_OVERLAY_ROUTER_H_
