// RpcManager: request/response matching with virtual-time timeouts.
//
// Overlay and DHT protocols are built on one-shot request/response exchanges
// over the (unreliable) transport. Each outstanding request has an id, a
// completion callback, and a timeout; a response that arrives late or twice
// is ignored. This is soft-state thinking: nothing blocks, everything that
// can be lost has a timeout.

#ifndef PIER_OVERLAY_RPC_H_
#define PIER_OVERLAY_RPC_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/serialize.h"
#include "common/status.h"
#include "sim/event_queue.h"

namespace pier {
namespace overlay {

/// Tracks outstanding requests for one node subsystem.
class RpcManager {
 public:
  /// Callback receives OK + Reader positioned at the response payload, or a
  /// Timeout status with a null reader.
  using Callback = std::function<void(Status, Reader*)>;

  explicit RpcManager(sim::Simulation* sim) : sim_(sim) {}

  RpcManager(const RpcManager&) = delete;
  RpcManager& operator=(const RpcManager&) = delete;

  ~RpcManager() { CancelAll(); }

  /// Registers a new request; returns the id to embed in the wire message.
  uint64_t Begin(Callback cb, Duration timeout) {
    uint64_t id = next_id_++;
    Pending p;
    p.cb = std::move(cb);
    p.timer = sim_->ScheduleAfter(timeout, [this, id] { Expire(id); });
    pending_.emplace(id, std::move(p));
    return id;
  }

  /// Completes request `id` with a successful response. Returns false if the
  /// request is unknown (stale/duplicate response).
  bool Complete(uint64_t id, Reader* response) {
    auto it = pending_.find(id);
    if (it == pending_.end()) return false;
    Callback cb = std::move(it->second.cb);
    sim_->Cancel(it->second.timer);
    pending_.erase(it);
    cb(Status::OK(), response);
    return true;
  }

  /// Cancels all outstanding requests without invoking callbacks (node
  /// shutdown).
  void CancelAll() {
    for (auto& [id, p] : pending_) sim_->Cancel(p.timer);
    pending_.clear();
  }

  size_t outstanding() const { return pending_.size(); }

 private:
  struct Pending {
    Callback cb;
    sim::TimerId timer = 0;
  };

  void Expire(uint64_t id) {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    Callback cb = std::move(it->second.cb);
    pending_.erase(it);
    cb(Status::Timeout("rpc timeout"), nullptr);
  }

  sim::Simulation* sim_;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, Pending> pending_;
};

}  // namespace overlay
}  // namespace pier

#endif  // PIER_OVERLAY_RPC_H_
