// NodeInfo: the (host address, ring identifier) pair that overlay protocols
// gossip about. This is the only way nodes learn of each other.

#ifndef PIER_OVERLAY_NODE_INFO_H_
#define PIER_OVERLAY_NODE_INFO_H_

#include <string>

#include "common/id160.h"
#include "common/serialize.h"
#include "sim/network.h"

namespace pier {
namespace overlay {

/// A remote node as known to overlay protocols.
struct NodeInfo {
  sim::HostId host = sim::kInvalidHost;
  Id160 id;

  bool valid() const { return host != sim::kInvalidHost; }

  bool operator==(const NodeInfo& o) const {
    return host == o.host && id == o.id;
  }

  void Serialize(Writer* w) const {
    w->PutFixed32(host);
    id.Serialize(w);
  }
  static Status Deserialize(Reader* r, NodeInfo* out) {
    PIER_RETURN_IF_ERROR(r->GetFixed32(&out->host));
    return Id160::Deserialize(r, &out->id);
  }

  std::string ToString() const {
    return "node" + std::to_string(host) + "@" + id.ToShortHex();
  }
};

}  // namespace overlay
}  // namespace pier

#endif  // PIER_OVERLAY_NODE_INFO_H_
