#include "overlay/one_hop.h"

namespace pier {
namespace overlay {

OneHopRouter::OneHopRouter(Transport* transport, const Id160& id,
                           Directory* directory)
    : transport_(transport),
      self_{transport->self(), id},
      directory_(directory) {
  transport_->RegisterHandler(
      Proto::kOverlay, [this](sim::HostId from, Reader* r,
                              const sim::Payload& body) {
        OnMessage(from, r, body);
      });
}

OneHopRouter::~OneHopRouter() { Deactivate(); }

void OneHopRouter::Activate() {
  directory_->Register(self_);
  active_ = true;
}

void OneHopRouter::Deactivate() {
  if (active_) directory_->Unregister(self_.id);
  active_ = false;
}

void OneHopRouter::Route(const Id160& key, uint8_t app_tag,
                         sim::Payload payload) {
  if (!active_) return;
  NodeInfo owner = directory_->Owner(key);
  if (!owner.valid()) return;
  if (owner.host == self_.host) {
    if (deliver_) {
      deliver_(RoutedMessage{key, self_.host, app_tag, 0, std::move(payload)});
    }
    return;
  }
  Writer w;
  key.Serialize(&w);
  w.PutU8(app_tag);
  w.PutFixed32(self_.host);
  transport_->SendWithBody(owner.host, Proto::kOverlay, w, std::move(payload));
}

void OneHopRouter::OnMessage(sim::HostId /*from*/, Reader* r,
                             const sim::Payload& body) {
  Id160 key;
  uint8_t app_tag = 0;
  uint32_t origin = 0;
  if (!Id160::Deserialize(r, &key).ok() || !r->GetU8(&app_tag).ok() ||
      !r->GetFixed32(&origin).ok()) {
    return;
  }
  if (!active_) return;
  if (deliver_) {
    deliver_(RoutedMessage{key, origin, app_tag, 1, body});
  }
}

bool OneHopRouter::IsResponsibleFor(const Id160& key) const {
  if (!active_) return false;
  NodeInfo owner = directory_->Owner(key);
  return owner.valid() && owner.host == self_.host;
}

std::vector<NodeInfo> OneHopRouter::RoutingNeighbors() const {
  std::vector<NodeInfo> all = directory_->Members();
  // Rotate so neighbors start just after self in ring order and exclude self.
  std::vector<NodeInfo> out;
  out.reserve(all.size());
  size_t start = 0;
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].id > self_.id) {
      start = i;
      break;
    }
  }
  for (size_t i = 0; i < all.size(); ++i) {
    const NodeInfo& n = all[(start + i) % all.size()];
    if (n.host != self_.host) out.push_back(n);
  }
  return out;
}

void OneHopRouter::Lookup(const Id160& key, LookupCallback cb) {
  NodeInfo owner = directory_->Owner(key);
  // Stay asynchronous so callers cannot depend on re-entrancy.
  transport_->simulation()->ScheduleAfter(0, [owner, cb] {
    if (owner.valid()) {
      cb(Status::OK(), owner, owner.valid() ? 1 : 0);
    } else {
      cb(Status::Unavailable("empty directory"), owner, 0);
    }
  });
}

}  // namespace overlay
}  // namespace pier
