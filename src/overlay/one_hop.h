// OneHopRouter: an idealized full-membership router.
//
// Every node consults a shared Directory (an omniscient membership oracle)
// and delivers in one hop. It exists for two reasons: (1) unit tests of the
// storage/query layers isolate them from Chord's convergence dynamics, and
// (2) ablation benches compare multi-hop routing against the one-hop ideal.
// Messages still cross the simulated network and still serialize.

#ifndef PIER_OVERLAY_ONE_HOP_H_
#define PIER_OVERLAY_ONE_HOP_H_

#include <map>
#include <vector>

#include "overlay/node_info.h"
#include "overlay/router.h"
#include "overlay/transport.h"

namespace pier {
namespace overlay {

/// Global live-membership table shared by all OneHopRouters of an experiment.
class Directory {
 public:
  void Register(const NodeInfo& node) { ring_[node.id] = node; }
  void Unregister(const Id160& id) { ring_.erase(id); }

  /// Successor-of-key ownership, identical to Chord's rule.
  NodeInfo Owner(const Id160& key) const {
    if (ring_.empty()) return NodeInfo{};
    auto it = ring_.lower_bound(key);
    if (it == ring_.end()) it = ring_.begin();  // wrap
    return it->second;
  }

  /// All live nodes in ring order.
  std::vector<NodeInfo> Members() const {
    std::vector<NodeInfo> out;
    out.reserve(ring_.size());
    for (const auto& [id, n] : ring_) out.push_back(n);
    return out;
  }

  size_t size() const { return ring_.size(); }

 private:
  std::map<Id160, NodeInfo> ring_;
};

/// Router that resolves ownership through the shared Directory and sends
/// application payloads in a single overlay hop.
class OneHopRouter : public Router {
 public:
  OneHopRouter(Transport* transport, const Id160& id, Directory* directory);
  ~OneHopRouter() override;

  /// Adds this node to the directory (idempotent).
  void Activate();
  /// Removes this node from the directory (leave or crash).
  void Deactivate();
  bool active() const { return active_; }

  void SetDeliverCallback(DeliverFn fn) override { deliver_ = std::move(fn); }
  void Route(const Id160& key, uint8_t app_tag, sim::Payload payload) override;
  bool IsResponsibleFor(const Id160& key) const override;
  NodeInfo self() const override { return self_; }
  std::vector<NodeInfo> RoutingNeighbors() const override;
  void Lookup(const Id160& key, LookupCallback cb) override;

 private:
  void OnMessage(sim::HostId from, Reader* r, const sim::Payload& body);

  Transport* transport_;
  NodeInfo self_;
  Directory* directory_;
  bool active_ = false;
  DeliverFn deliver_;
};

}  // namespace overlay
}  // namespace pier

#endif  // PIER_OVERLAY_ONE_HOP_H_
