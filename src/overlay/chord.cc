#include "overlay/chord.h"

#include <algorithm>

#include "common/logging.h"

namespace pier {
namespace overlay {

namespace {
std::string Who(const NodeInfo& n) { return n.ToString(); }
}  // namespace

ChordNode::ChordNode(Transport* transport, const Id160& id,
                     ChordOptions options)
    : transport_(transport),
      self_{transport->self(), id},
      options_(options),
      rpc_(transport->simulation()) {
  transport_->RegisterHandler(
      Proto::kOverlay, [this](sim::HostId from, Reader* r,
                              const sim::Payload& body) {
        OnMessage(from, r, body);
      });
}

ChordNode::~ChordNode() { StopTasks(); }

void ChordNode::Create() {
  PIER_CHECK(state_ == State::kIdle || state_ == State::kStopped);
  pred_.reset();
  successors_.clear();
  state_ = State::kActive;
  StartTasks();
  PLOG(kInfo, Who(self_)) << "created ring";
}

void ChordNode::Join(sim::HostId bootstrap, std::function<void(Status)> done) {
  PIER_CHECK(state_ == State::kIdle || state_ == State::kStopped);
  state_ = State::kJoining;
  join_bootstrap_ = bootstrap;
  join_done_ = std::move(done);
  join_attempts_ = 0;
  AttemptJoin();
}

void ChordNode::AttemptJoin() {
  if (state_ != State::kJoining) return;
  ++join_attempts_;
  if (join_attempts_ > options_.max_join_attempts) {
    state_ = State::kIdle;
    if (join_done_) join_done_(Status::Unavailable("join: no response"));
    return;
  }
  // FIND_SUCCESSOR(self.id) answered directly to us.
  uint64_t req_id = rpc_.Begin(
      [this](Status s, Reader* r) {
        if (state_ != State::kJoining) return;
        if (!s.ok()) {
          // Back off and retry; the bootstrap may be down or slow.
          transport_->simulation()->ScheduleAfter(
              options_.join_retry_interval, [this] { AttemptJoin(); });
          return;
        }
        NodeInfo owner;
        uint32_t hops = 0;
        if (!NodeInfo::Deserialize(r, &owner).ok() ||
            !r->GetVarint32(&hops).ok()) {
          return;  // malformed; timeout path will retry
        }
        successors_.assign(1, owner);
        state_ = State::kActive;
        StartTasks();
        PLOG(kInfo, Who(self_)) << "joined; successor=" << Who(owner);
        NotifyNeighborsChanged();
        if (join_done_) join_done_(Status::OK());
        // Kick off an immediate stabilize to learn the successor list.
        Stabilize();
      },
      options_.rpc_timeout);

  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kFindSuccReq));
  self_.id.Serialize(&w);
  w.PutVarint64(req_id);
  w.PutFixed32(self_.host);
  w.PutVarint32(0);  // hops
  SendMsg(join_bootstrap_, w);
}

void ChordNode::Leave() {
  if (state_ != State::kActive) {
    state_ = State::kStopped;
    StopTasks();
    return;
  }
  // Tell predecessor and successor to splice around us. Stored state is NOT
  // transferred: PIER's soft-state model re-publishes data continuously, so
  // ownership migrates with the next renewal cycle.
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kLeaveNotice));
  self_.Serialize(&w);
  w.PutBool(!successors_.empty());
  if (!successors_.empty()) successors_[0].Serialize(&w);
  w.PutBool(pred_.has_value());
  if (pred_.has_value()) pred_->Serialize(&w);
  if (!successors_.empty()) SendMsg(successors_[0].host, w);
  if (pred_.has_value()) SendMsg(pred_->host, w);
  state_ = State::kStopped;
  StopTasks();
  PLOG(kInfo, Who(self_)) << "left ring";
}

void ChordNode::Fail() {
  state_ = State::kStopped;
  StopTasks();
}

void ChordNode::StartTasks() {
  sim::Simulation* sim = transport_->simulation();
  // Phase-shift the first firing per node so protocol ticks don't
  // synchronize across the network.
  Duration phase0 = static_cast<Duration>(
      sim->rng().Fork(self_.host ^ 0x74696d65ull)
          .NextBelow(static_cast<uint64_t>(options_.stabilize_interval) + 1));
  stabilize_task_.Start(sim, phase0, options_.stabilize_interval,
                        [this] { Stabilize(); });
  fix_fingers_task_.Start(sim, phase0 + Millis(50),
                          options_.fix_fingers_interval,
                          [this] { FixFingers(); });
  check_pred_task_.Start(sim, phase0 + Millis(100),
                         options_.check_predecessor_interval,
                         [this] { CheckPredecessor(); });
}

void ChordNode::StopTasks() {
  stabilize_task_.Stop();
  fix_fingers_task_.Stop();
  check_pred_task_.Stop();
  rpc_.CancelAll();
}

Status ChordNode::SendMsg(sim::HostId to, const Writer& w) {
  return transport_->Send(to, Proto::kOverlay, w);
}

// ---------------------------------------------------------------------------
// Ring geometry
// ---------------------------------------------------------------------------

bool ChordNode::IsResponsibleFor(const Id160& key) const {
  if (state_ != State::kActive) return false;
  if (!pred_.has_value()) {
    // Either singleton or our predecessor just died. Claiming responsibility
    // errs toward local delivery; soft state tolerates the transient.
    return true;
  }
  return key.InIntervalOpenClosed(pred_->id, self_.id);
}

NodeInfo ChordNode::successor() const {
  return successors_.empty() ? self_ : successors_[0];
}

const std::vector<NodeInfo>& ChordNode::CompactFingers() const {
  if (finger_cache_dirty_) {
    finger_compact_.clear();
    for (const auto& f : fingers_) {
      if (!f.has_value()) continue;
      bool dup = false;
      for (const auto& e : finger_compact_) dup = dup || e.host == f->host;
      if (!dup) finger_compact_.push_back(*f);
    }
    finger_cache_dirty_ = false;
  }
  return finger_compact_;
}

NodeInfo ChordNode::NextHop(const Id160& key) const {
  if (IsResponsibleFor(key) || successors_.empty()) return self_;
  // Immediate successor owns (self, successor].
  if (key.InIntervalOpenClosed(self_.id, successors_[0].id) &&
      !IsSuspect(successors_[0].host)) {
    return successors_[0];
  }
  // Closest preceding live node across fingers and the successor list.
  NodeInfo best = self_;
  Id160 best_dist = Id160::Max();
  auto consider = [&](const NodeInfo& cand) {
    if (!cand.valid() || cand.host == self_.host) return;
    if (IsSuspect(cand.host)) return;
    if (!cand.id.InIntervalOpenOpen(self_.id, key)) return;
    // Prefer the candidate closest to (but before) the key: smallest
    // clockwise distance cand -> key.
    Id160 dist = cand.id.DistanceTo(key);
    if (!(best.valid() && best.host != self_.host) || dist < best_dist) {
      best = cand;
      best_dist = dist;
    }
  };
  // Same slot-order traversal as the raw table, minus the duplicates: this
  // runs once per routed hop, so it iterates the handful of distinct
  // fingers, not all 160 slots.
  for (const auto& f : CompactFingers()) consider(f);
  for (const auto& s : successors_) consider(s);
  if (best.host != self_.host) return best;
  // Fall back to any live successor.
  for (const auto& s : successors_) {
    if (!IsSuspect(s.host)) return s;
  }
  return self_;  // nowhere to go; deliver locally rather than drop
}

std::vector<NodeInfo> ChordNode::RoutingNeighbors() const {
  std::vector<NodeInfo> out;
  auto add = [&](const NodeInfo& n) {
    if (!n.valid() || n.host == self_.host || IsSuspect(n.host)) return;
    for (const auto& e : out) {
      if (e.host == n.host) return;
    }
    out.push_back(n);
  };
  for (const auto& s : successors_) add(s);
  // Fingers in increasing clockwise distance from self.
  std::vector<NodeInfo> fs = CompactFingers();
  std::sort(fs.begin(), fs.end(), [this](const NodeInfo& a, const NodeInfo& b) {
    return self_.id.DistanceTo(a.id) < self_.id.DistanceTo(b.id);
  });
  for (const auto& f : fs) add(f);
  return out;
}

std::vector<NodeInfo> ChordNode::FingerEntries() const {
  return CompactFingers();
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

void ChordNode::Route(const Id160& key, uint8_t app_tag, sim::Payload payload) {
  if (state_ != State::kActive) return;
  ++stats_.routes_initiated;
  NodeInfo hop = NextHop(key);
  if (hop.host == self_.host) {
    if (deliver_) {
      deliver_(RoutedMessage{key, self_.host, app_tag, 0, std::move(payload)});
    }
    return;
  }
  // Per-hop header only; the payload rides as the shared packet body.
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kRoute));
  key.Serialize(&w);
  w.PutU8(app_tag);
  w.PutFixed32(self_.host);
  w.PutVarint32(0);
  transport_->SendWithBody(hop.host, Proto::kOverlay, w, std::move(payload));
}

void ChordNode::HandleRoute(Reader* r, const sim::Payload& body) {
  Id160 key;
  uint8_t app_tag = 0;
  uint32_t origin = 0, hops = 0;
  if (!Id160::Deserialize(r, &key).ok() || !r->GetU8(&app_tag).ok() ||
      !r->GetFixed32(&origin).ok() || !r->GetVarint32(&hops).ok()) {
    return;
  }
  if (state_ != State::kActive) return;
  if (static_cast<int>(hops) >= options_.max_route_hops) return;  // loop guard
  NodeInfo hop = NextHop(key);
  if (hop.host == self_.host) {
    if (deliver_) {
      deliver_(RoutedMessage{key, origin, app_tag, static_cast<int>(hops),
                             body});
    }
    return;
  }
  ++stats_.messages_forwarded;
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kRoute));
  key.Serialize(&w);
  w.PutU8(app_tag);
  w.PutFixed32(origin);
  w.PutVarint32(hops + 1);
  transport_->SendWithBody(hop.host, Proto::kOverlay, w, body);
}

void ChordNode::Lookup(const Id160& key, LookupCallback cb) {
  if (state_ != State::kActive) {
    cb(Status::Unavailable("node not active"), NodeInfo{}, 0);
    return;
  }
  if (IsResponsibleFor(key)) {
    ++stats_.lookups_ok;
    stats_.lookup_hops.Add(0);
    cb(Status::OK(), self_, 0);
    return;
  }
  uint64_t req_id = rpc_.Begin(
      [this, cb](Status s, Reader* r) {
        if (!s.ok()) {
          ++stats_.lookups_failed;
          cb(s, NodeInfo{}, 0);
          return;
        }
        NodeInfo owner;
        uint32_t hops = 0;
        if (!NodeInfo::Deserialize(r, &owner).ok() ||
            !r->GetVarint32(&hops).ok()) {
          ++stats_.lookups_failed;
          cb(Status::Corruption("bad lookup response"), NodeInfo{}, 0);
          return;
        }
        ++stats_.lookups_ok;
        stats_.lookup_hops.Add(hops);
        cb(Status::OK(), owner, static_cast<int>(hops));
      },
      options_.rpc_timeout);
  ForwardFindSucc(key, req_id, self_.host, 0);
}

void ChordNode::ForwardFindSucc(const Id160& key, uint64_t req_id,
                                sim::HostId reply_to, int hops) {
  if (IsResponsibleFor(key)) {
    Writer w;
    w.PutU8(static_cast<uint8_t>(MsgType::kFindSuccResp));
    w.PutVarint64(req_id);
    self_.Serialize(&w);
    w.PutVarint32(static_cast<uint32_t>(hops));
    if (reply_to == self_.host) {
      // Local completion without a network round trip.
      Reader r(w.buffer());
      uint8_t type = 0;
      uint64_t id = 0;
      (void)r.GetU8(&type);
      (void)r.GetVarint64(&id);
      rpc_.Complete(id, &r);
    } else {
      SendMsg(reply_to, w);
    }
    return;
  }
  if (hops >= options_.max_route_hops) return;
  NodeInfo hop = NextHop(key);
  if (hop.host == self_.host) {
    // Inconsistent transient state: answer with our best known successor.
    Writer w;
    w.PutU8(static_cast<uint8_t>(MsgType::kFindSuccResp));
    w.PutVarint64(req_id);
    successor().Serialize(&w);
    w.PutVarint32(static_cast<uint32_t>(hops));
    if (reply_to == self_.host) {
      Reader r(w.buffer());
      uint8_t type = 0;
      uint64_t id = 0;
      (void)r.GetU8(&type);
      (void)r.GetVarint64(&id);
      rpc_.Complete(id, &r);
    } else {
      SendMsg(reply_to, w);
    }
    return;
  }
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kFindSuccReq));
  key.Serialize(&w);
  w.PutVarint64(req_id);
  w.PutFixed32(reply_to);
  w.PutVarint32(static_cast<uint32_t>(hops));
  SendMsg(hop.host, w);
}

void ChordNode::HandleFindSuccReq(Reader* r) {
  Id160 key;
  uint64_t req_id = 0;
  uint32_t reply_to = 0, hops = 0;
  if (!Id160::Deserialize(r, &key).ok() || !r->GetVarint64(&req_id).ok() ||
      !r->GetFixed32(&reply_to).ok() || !r->GetVarint32(&hops).ok()) {
    return;
  }
  if (state_ != State::kActive) return;
  ForwardFindSucc(key, req_id, reply_to, static_cast<int>(hops) + 1);
}

// ---------------------------------------------------------------------------
// Maintenance protocol
// ---------------------------------------------------------------------------

void ChordNode::Stabilize() {
  if (state_ != State::kActive) return;
  ++stats_.stabilize_rounds;
  // Prune expired suspicion entries so the map stays bounded under
  // long-running churn (IsSuspect already ignores them).
  TimePoint now = transport_->simulation()->now();
  for (auto it = suspects_.begin(); it != suspects_.end();) {
    it = now >= it->second ? suspects_.erase(it) : std::next(it);
  }
  // Drop suspect successors from the head.
  while (!successors_.empty() && IsSuspect(successors_[0].host)) {
    ++stats_.successor_failovers;
    successors_.erase(successors_.begin());
    NotifyNeighborsChanged();
  }
  // Partition healing runs even (especially) when every successor has been
  // evicted: an isolated node's only way back is probing its memory.
  ProbeEvicted();
  if (successors_.empty()) return;  // singleton

  NodeInfo succ = successors_[0];
  uint64_t req_id = rpc_.Begin(
      [this, succ](Status s, Reader* r) {
        if (state_ != State::kActive) return;
        if (!s.ok()) {
          Suspect(succ.host);
          return;
        }
        bool has_pred = false;
        NodeInfo pred;
        uint32_t n = 0;
        if (!r->GetBool(&has_pred).ok()) return;
        if (has_pred && !NodeInfo::Deserialize(r, &pred).ok()) return;
        if (!r->GetVarint32(&n).ok()) return;
        std::vector<NodeInfo> their_list;
        for (uint32_t i = 0; i < n; ++i) {
          NodeInfo e;
          if (!NodeInfo::Deserialize(r, &e).ok()) return;
          their_list.push_back(e);
        }
        // Rule 1: successor's predecessor may be a closer successor for us.
        if (has_pred && pred.host != self_.host && !IsSuspect(pred.host) &&
            pred.id.InIntervalOpenOpen(self_.id, succ.id)) {
          AdoptSuccessorCandidate(pred);
        }
        // Rule 2: merge successor list = [succ] + succ's list.
        std::vector<NodeInfo> merged;
        merged.push_back(successors_[0]);
        for (const auto& e : their_list) {
          if (e.host == self_.host) continue;
          if (IsSuspect(e.host)) continue;
          bool dup = false;
          for (const auto& m : merged) dup = dup || m.host == e.host;
          if (!dup) merged.push_back(e);
          if (static_cast<int>(merged.size()) >=
              options_.successor_list_size) {
            break;
          }
        }
        if (merged != successors_) {
          successors_ = std::move(merged);
          NotifyNeighborsChanged();
        }
        // Rule 3: notify our successor about us.
        Writer w;
        w.PutU8(static_cast<uint8_t>(MsgType::kNotify));
        self_.Serialize(&w);
        SendMsg(successors_[0].host, w);
      },
      options_.rpc_timeout);

  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kGetNeighborsReq));
  w.PutVarint64(req_id);
  SendMsg(succ.host, w);
}

// ---------------------------------------------------------------------------
// Partition healing
// ---------------------------------------------------------------------------
//
// A network partition splits the ring into halves that each evict the other
// half as suspects; once the halves stabilize into independent rings, no
// routine exchange ever crosses the old boundary again. The heal path is
// out-of-band memory: every eviction is remembered (bounded cache + TTL),
// and each stabilize round re-probes one remembered peer. When a probe
// answers after the heal, its neighborhood is fed through the usual
// adoption rules and a notify is sent back, so both halves knit their
// successor lists together and stabilization cascades the merge.

void ChordNode::RememberEvicted(const NodeInfo& info) {
  if (info.host == self_.host) return;
  TimePoint until =
      transport_->simulation()->now() + options_.rejoin_cache_ttl;
  for (EvictedPeer& e : evicted_) {
    if (e.info.host == info.host) {
      e.until = until;  // refresh
      return;
    }
  }
  if (evicted_.size() >= options_.rejoin_cache_size) {
    evicted_.erase(evicted_.begin());  // oldest remembered drops first
  }
  evicted_.push_back(EvictedPeer{info, until});
}

void ChordNode::ConsiderRejoinCandidate(const NodeInfo& candidate) {
  if (candidate.host == self_.host || IsSuspect(candidate.host)) return;
  if (successors_.empty()) {
    ++stats_.rejoin_merges;
    AdoptSuccessorCandidate(candidate);
    return;
  }
  if (candidate.id.InIntervalOpenOpen(self_.id, successors_[0].id)) {
    ++stats_.rejoin_merges;
    AdoptSuccessorCandidate(candidate);
  }
}

void ChordNode::ProbeEvicted() {
  TimePoint now = transport_->simulation()->now();
  evicted_.erase(std::remove_if(evicted_.begin(), evicted_.end(),
                                [now](const EvictedPeer& e) {
                                  return e.until <= now;
                                }),
                 evicted_.end());
  if (evicted_.empty()) return;
  evicted_probe_idx_ %= evicted_.size();
  NodeInfo target = evicted_[evicted_probe_idx_++].info;
  ++stats_.rejoin_probes;
  uint64_t req_id = rpc_.Begin(
      [this, target](Status s, Reader* r) {
        if (state_ != State::kActive || !s.ok()) return;  // still cut off
        // Reachable again: drop suspicion so the adoption rules accept it,
        // and forget the eviction (normal stabilization owns it now).
        suspects_.erase(target.host);
        evicted_.erase(
            std::remove_if(evicted_.begin(), evicted_.end(),
                           [&target](const EvictedPeer& e) {
                             return e.info.host == target.host;
                           }),
            evicted_.end());
        ConsiderRejoinCandidate(target);
        bool has_pred = false;
        NodeInfo pred;
        uint32_t n = 0;
        if (!r->GetBool(&has_pred).ok()) return;
        if (has_pred) {
          if (!NodeInfo::Deserialize(r, &pred).ok()) return;
          ConsiderRejoinCandidate(pred);
        }
        if (!r->GetVarint32(&n).ok()) return;
        for (uint32_t i = 0; i < n; ++i) {
          NodeInfo e;
          if (!NodeInfo::Deserialize(r, &e).ok()) return;
          ConsiderRejoinCandidate(e);
        }
        // Tell the other side about us so its half can knit symmetrically.
        Writer w;
        w.PutU8(static_cast<uint8_t>(MsgType::kNotify));
        self_.Serialize(&w);
        SendMsg(target.host, w);
      },
      options_.rpc_timeout);
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kGetNeighborsReq));
  w.PutVarint64(req_id);
  SendMsg(target.host, w);
}

void ChordNode::AdoptSuccessorCandidate(const NodeInfo& candidate) {
  successors_.insert(successors_.begin(), candidate);
  if (static_cast<int>(successors_.size()) > options_.successor_list_size) {
    successors_.resize(options_.successor_list_size);
  }
  NotifyNeighborsChanged();
}

void ChordNode::HandleGetNeighborsReq(sim::HostId from, Reader* r) {
  uint64_t req_id = 0;
  if (!r->GetVarint64(&req_id).ok()) return;
  if (state_ != State::kActive) return;
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kGetNeighborsResp));
  w.PutVarint64(req_id);
  w.PutBool(pred_.has_value());
  if (pred_.has_value()) pred_->Serialize(&w);
  w.PutVarint32(static_cast<uint32_t>(successors_.size()));
  for (const auto& s : successors_) s.Serialize(&w);
  SendMsg(from, w);
}

void ChordNode::HandleNotify(Reader* r) {
  NodeInfo candidate;
  if (!NodeInfo::Deserialize(r, &candidate).ok()) return;
  if (state_ != State::kActive) return;
  if (candidate.host == self_.host) return;
  if (!pred_.has_value() ||
      candidate.id.InIntervalOpenOpen(pred_->id, self_.id) ||
      IsSuspect(pred_->host)) {
    pred_ = candidate;
    NotifyNeighborsChanged();
  }
  if (successors_.empty()) {
    // Second node of the ring: our notifier is also our successor.
    successors_.push_back(candidate);
    NotifyNeighborsChanged();
  }
}

void ChordNode::HandleLeaveNotice(Reader* r) {
  NodeInfo leaving, succ, pred;
  bool has_succ = false, has_pred = false;
  if (!NodeInfo::Deserialize(r, &leaving).ok() ||
      !r->GetBool(&has_succ).ok()) {
    return;
  }
  if (has_succ && !NodeInfo::Deserialize(r, &succ).ok()) return;
  if (!r->GetBool(&has_pred).ok()) return;
  if (has_pred && !NodeInfo::Deserialize(r, &pred).ok()) return;
  if (state_ != State::kActive) return;

  if (pred_.has_value() && pred_->host == leaving.host) {
    if (has_pred && pred.host != self_.host) {
      pred_ = pred;
    } else {
      pred_.reset();
    }
    NotifyNeighborsChanged();
  }
  if (!successors_.empty() && successors_[0].host == leaving.host) {
    successors_.erase(successors_.begin());
    if (has_succ && succ.host != self_.host && !IsSuspect(succ.host)) {
      AdoptSuccessorCandidate(succ);
    } else {
      NotifyNeighborsChanged();
    }
  } else {
    RemoveSuccessor(leaving.host);
  }
  // Make sure stale finger entries do not route through the departed node.
  for (auto& f : fingers_) {
    if (f.has_value() && f->host == leaving.host) f.reset();
  }
  InvalidateFingerCache();
}

void ChordNode::FixFingers() {
  if (state_ != State::kActive || successors_.empty()) return;
  for (int i = 0; i < options_.fingers_per_tick; ++i) {
    int index = next_finger_;
    next_finger_ = (next_finger_ - 1 + Id160::kBits) % Id160::kBits;
    Id160 target = self_.id.AddPowerOfTwo(index);
    uint64_t req_id = rpc_.Begin(
        [this, index](Status s, Reader* r) {
          if (!s.ok() || state_ != State::kActive) return;
          NodeInfo owner;
          uint32_t hops = 0;
          if (!NodeInfo::Deserialize(r, &owner).ok() ||
              !r->GetVarint32(&hops).ok()) {
            return;
          }
          if (owner.host == self_.host) {
            fingers_[index].reset();
          } else {
            fingers_[index] = owner;
          }
          InvalidateFingerCache();
        },
        options_.rpc_timeout);
    ForwardFindSucc(target, req_id, self_.host, 0);
  }
}

void ChordNode::CheckPredecessor() {
  if (state_ != State::kActive || !pred_.has_value()) return;
  NodeInfo pred = *pred_;
  uint64_t req_id = rpc_.Begin(
      [this, pred](Status s, Reader* /*r*/) {
        if (state_ != State::kActive) return;
        if (!s.ok()) {
          Suspect(pred.host);
          if (pred_.has_value() && pred_->host == pred.host) {
            pred_.reset();
            NotifyNeighborsChanged();
          }
        }
      },
      options_.rpc_timeout);
  Writer w;
  w.PutU8(static_cast<uint8_t>(MsgType::kPingReq));
  w.PutVarint64(req_id);
  SendMsg(pred.host, w);
}

// ---------------------------------------------------------------------------
// Failure suspicion
// ---------------------------------------------------------------------------

void ChordNode::Suspect(sim::HostId host) {
  TimePoint now = transport_->simulation()->now();
  // A new suspicion episode = the host was not currently suspect (absent,
  // or present but expired — expired entries linger until pruned).
  auto sit = suspects_.find(host);
  if (sit == suspects_.end() || now >= sit->second) ++stats_.suspects_marked;
  suspects_[host] = now + options_.suspect_ttl;
  // Remember the identity we are about to forget, while we still have it:
  // if this "failure" is really a partition, the rejoin probe needs the
  // NodeInfo to find the other half again after the heal.
  for (const NodeInfo& s : successors_) {
    if (s.host == host) {
      RememberEvicted(s);
      break;
    }
  }
  if (pred_.has_value() && pred_->host == host) RememberEvicted(*pred_);
  for (auto& f : fingers_) {
    if (f.has_value() && f->host == host) RememberEvicted(*f);
  }
  RemoveSuccessor(host);
  for (auto& f : fingers_) {
    if (f.has_value() && f->host == host) f.reset();
  }
  InvalidateFingerCache();
}

bool ChordNode::IsSuspect(sim::HostId host) const {
  if (suspects_.empty()) return false;  // the common case on a stable ring
  auto it = suspects_.find(host);
  if (it == suspects_.end()) return false;
  return transport_->simulation()->now() < it->second;
}

void ChordNode::RemoveSuccessor(sim::HostId host) {
  auto it = std::remove_if(
      successors_.begin(), successors_.end(),
      [host](const NodeInfo& n) { return n.host == host; });
  if (it != successors_.end()) {
    successors_.erase(it, successors_.end());
    NotifyNeighborsChanged();
  }
}

void ChordNode::NotifyNeighborsChanged() {
  ++stats_.neighbor_changes;
  last_neighbor_change_ = transport_->simulation()->now();
  if (on_neighbors_changed_) on_neighbors_changed_();
}

bool ChordNode::RingStable(Duration window) const {
  return transport_->simulation()->now() - last_neighbor_change_ >= window;
}

size_t ChordNode::suspect_count() const {
  TimePoint now = transport_->simulation()->now();
  size_t n = 0;
  for (const auto& [host, until] : suspects_) n += now < until ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void ChordNode::OnMessage(sim::HostId from, Reader* r,
                          const sim::Payload& body) {
  uint8_t type = 0;
  if (!r->GetU8(&type).ok()) return;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kRoute:
      HandleRoute(r, body);
      break;
    case MsgType::kFindSuccReq:
      HandleFindSuccReq(r);
      break;
    case MsgType::kFindSuccResp: {
      uint64_t req_id = 0;
      if (!r->GetVarint64(&req_id).ok()) return;
      rpc_.Complete(req_id, r);
      break;
    }
    case MsgType::kGetNeighborsReq:
      HandleGetNeighborsReq(from, r);
      break;
    case MsgType::kGetNeighborsResp: {
      uint64_t req_id = 0;
      if (!r->GetVarint64(&req_id).ok()) return;
      rpc_.Complete(req_id, r);
      break;
    }
    case MsgType::kNotify:
      HandleNotify(r);
      break;
    case MsgType::kPingReq: {
      uint64_t req_id = 0;
      if (!r->GetVarint64(&req_id).ok()) return;
      if (state_ != State::kActive) return;
      Writer w;
      w.PutU8(static_cast<uint8_t>(MsgType::kPingResp));
      w.PutVarint64(req_id);
      SendMsg(from, w);
      break;
    }
    case MsgType::kPingResp: {
      uint64_t req_id = 0;
      if (!r->GetVarint64(&req_id).ok()) return;
      rpc_.Complete(req_id, r);
      break;
    }
    case MsgType::kLeaveNotice:
      HandleLeaveNotice(r);
      break;
    default:
      break;  // unknown message: drop
  }
}

}  // namespace overlay
}  // namespace pier
