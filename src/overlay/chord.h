// Chord-style structured overlay (Stoica et al., SIGCOMM 2001 — reference
// [7] of the paper): consistent hashing on a 160-bit ring, successor lists
// for fault tolerance, finger tables for O(log n) routing, and periodic
// soft-state stabilization. This is the DHT routing layer PIER runs on.
//
// Protocol sketch (all messages under Proto::kOverlay):
//   - join:     FIND_SUCCESSOR(self.id) via a bootstrap node
//   - routing:  greedy forwarding to the closest preceding finger/successor
//   - repair:   stabilize (successor's predecessor + successor-list merge),
//               notify, fix-fingers, predecessor liveness pings
//   - failure:  RPC timeouts mark hosts suspect; suspects are routed around
//               until stabilization removes them
//
// Everything is timer-driven soft state: no operation blocks, every remote
// exchange can be lost, and the ring heals as long as successor lists
// retain one live entry.

#ifndef PIER_OVERLAY_CHORD_H_
#define PIER_OVERLAY_CHORD_H_

#include <array>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/id160.h"
#include "overlay/node_info.h"
#include "overlay/router.h"
#include "overlay/rpc.h"
#include "overlay/transport.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"

namespace pier {
namespace overlay {

/// Tuning knobs for the Chord protocol.
struct ChordOptions {
  /// Successor-list length; the ring survives up to this many simultaneous
  /// adjacent failures.
  int successor_list_size = 8;
  /// How often to run the stabilize exchange with our successor.
  Duration stabilize_interval = Millis(500);
  /// How often to refresh a batch of finger-table entries.
  Duration fix_fingers_interval = Millis(500);
  /// Finger entries refreshed per fix-fingers tick.
  int fingers_per_tick = 8;
  /// Predecessor liveness probe period.
  Duration check_predecessor_interval = Seconds(1);
  /// Timeout for all overlay RPCs.
  Duration rpc_timeout = Millis(1500);
  /// How long a timed-out host stays on the suspects list.
  Duration suspect_ttl = Seconds(8);
  /// Join retry backoff.
  Duration join_retry_interval = Seconds(1);
  int max_join_attempts = 8;
  /// Routing loop guard.
  int max_route_hops = 64;
  /// Partition healing: peers evicted on suspicion are remembered and
  /// re-probed (one per stabilize round) for this long. A ring split by a
  /// network partition has no in-band path between its halves, so these
  /// probes are the only way the halves re-merge after the heal; the cache
  /// TTL bounds how long a partition may last and still self-heal.
  Duration rejoin_cache_ttl = Seconds(240);
  size_t rejoin_cache_size = 16;
};

/// Counters exposed for experiments.
struct ChordStats {
  uint64_t lookups_ok = 0;
  uint64_t lookups_failed = 0;
  uint64_t routes_initiated = 0;
  uint64_t messages_forwarded = 0;
  uint64_t stabilize_rounds = 0;
  uint64_t successor_failovers = 0;
  /// Hosts newly marked suspect after an RPC timeout (churn/partition
  /// observability: rises while links are faulted, flat once healed).
  uint64_t suspects_marked = 0;
  /// Ring-neighborhood changes (successor/predecessor/successor-list edits).
  uint64_t neighbor_changes = 0;
  /// Partition-heal probes sent to evicted peers, and the probes that came
  /// back and knitted state from the other side of a split.
  uint64_t rejoin_probes = 0;
  uint64_t rejoin_merges = 0;
  sim::Histogram lookup_hops;
};

/// One node's Chord protocol instance.
class ChordNode : public Router {
 public:
  /// `transport` must outlive the node. The node registers itself as the
  /// Proto::kOverlay handler.
  ChordNode(Transport* transport, const Id160& id, ChordOptions options);
  ~ChordNode() override;

  /// Becomes the first node of a fresh ring (no bootstrap needed).
  void Create();

  /// Joins the ring known to `bootstrap`. `done` fires once the node has a
  /// successor (or with an error after max_join_attempts timeouts).
  void Join(sim::HostId bootstrap, std::function<void(Status)> done);

  /// Graceful departure: tells neighbors to splice around us, then stops.
  void Leave();
  /// Crash: stops all protocol activity without telling anyone.
  void Fail();
  /// True once joined/created and not stopped.
  bool active() const { return state_ == State::kActive; }

  // Router interface.
  void SetDeliverCallback(DeliverFn fn) override { deliver_ = std::move(fn); }
  void Route(const Id160& key, uint8_t app_tag, sim::Payload payload) override;
  bool IsResponsibleFor(const Id160& key) const override;
  NodeInfo self() const override { return self_; }
  std::vector<NodeInfo> RoutingNeighbors() const override;
  void Lookup(const Id160& key, LookupCallback cb) override;

  /// Current immediate successor (self when singleton).
  NodeInfo successor() const;
  std::optional<NodeInfo> predecessor() const { return pred_; }
  const std::vector<NodeInfo>& successor_list() const { return successors_; }
  /// Distinct live finger entries (diagnostics).
  std::vector<NodeInfo> FingerEntries() const;

  // -- stabilization observability (partition-heal testing hooks) ------------
  /// Virtual time of the last ring-neighborhood change at this node.
  TimePoint last_neighbor_change() const { return last_neighbor_change_; }
  TimePoint last_topology_change() const override {
    return last_neighbor_change_;
  }
  /// True when the ring neighborhood has been unchanged for `window` — the
  /// per-node convergence probe the fault testkit polls after a heal.
  bool RingStable(Duration window) const;
  /// Hosts currently under suspicion (unexpired entries).
  size_t suspect_count() const;

  const ChordStats& stats() const { return stats_; }
  ChordStats* mutable_stats() { return &stats_; }

  /// Fired after predecessor/successor changes (replication hooks).
  void SetNeighborsChangedCallback(std::function<void()> fn) {
    on_neighbors_changed_ = std::move(fn);
  }

 private:
  enum class State { kIdle, kJoining, kActive, kStopped };

  // Wire message types under Proto::kOverlay.
  enum class MsgType : uint8_t {
    kRoute = 1,
    kFindSuccReq = 2,
    kFindSuccResp = 3,
    kGetNeighborsReq = 4,
    kGetNeighborsResp = 5,
    kNotify = 6,
    kPingReq = 7,
    kPingResp = 8,
    kLeaveNotice = 9,
  };

  void OnMessage(sim::HostId from, Reader* r, const sim::Payload& body);
  void HandleRoute(Reader* r, const sim::Payload& body);
  void HandleFindSuccReq(Reader* r);
  void HandleGetNeighborsReq(sim::HostId from, Reader* r);
  void HandleNotify(Reader* r);
  void HandleLeaveNotice(Reader* r);

  /// Greedy next hop for `key`; self when locally responsible.
  NodeInfo NextHop(const Id160& key) const;
  /// Deduplicated finger entries in slot order (cached).
  const std::vector<NodeInfo>& CompactFingers() const;
  void InvalidateFingerCache() { finger_cache_dirty_ = true; }
  /// Forwards a find-successor query one hop (or answers it).
  void ForwardFindSucc(const Id160& key, uint64_t req_id,
                       sim::HostId reply_to, int hops);
  void StartTasks();
  void StopTasks();
  void Stabilize();
  /// Partition healing: re-probes one remembered evicted peer; a response
  /// clears its suspicion and feeds its neighborhood back into ours.
  void ProbeEvicted();
  void RememberEvicted(const NodeInfo& info);
  void ConsiderRejoinCandidate(const NodeInfo& candidate);
  void FixFingers();
  void CheckPredecessor();
  void AttemptJoin();
  void AdoptSuccessorCandidate(const NodeInfo& candidate);
  void RemoveSuccessor(sim::HostId host);
  void Suspect(sim::HostId host);
  bool IsSuspect(sim::HostId host) const;
  void NotifyNeighborsChanged();
  Status SendMsg(sim::HostId to, const Writer& w);

  Transport* transport_;
  NodeInfo self_;
  ChordOptions options_;
  State state_ = State::kIdle;

  std::optional<NodeInfo> pred_;
  std::vector<NodeInfo> successors_;  // clockwise from self; [0] = successor
  std::array<std::optional<NodeInfo>, Id160::kBits> fingers_;
  int next_finger_ = Id160::kBits - 1;
  /// Distinct finger entries in slot order, rebuilt lazily: NextHop runs on
  /// every routed hop and must not walk all 160 (mostly duplicate) slots.
  mutable std::vector<NodeInfo> finger_compact_;
  mutable bool finger_cache_dirty_ = true;

  std::unordered_map<sim::HostId, TimePoint> suspects_;
  /// Evicted-peer memory for partition healing (see ProbeEvicted).
  struct EvictedPeer {
    NodeInfo info;
    TimePoint until;  ///< drop from the cache after this time
  };
  std::vector<EvictedPeer> evicted_;
  size_t evicted_probe_idx_ = 0;

  RpcManager rpc_;
  sim::PeriodicTask stabilize_task_;
  sim::PeriodicTask fix_fingers_task_;
  sim::PeriodicTask check_pred_task_;

  DeliverFn deliver_;
  std::function<void()> on_neighbors_changed_;
  std::function<void(Status)> join_done_;
  sim::HostId join_bootstrap_ = sim::kInvalidHost;
  int join_attempts_ = 0;
  TimePoint last_neighbor_change_ = 0;

  ChordStats stats_;
};

}  // namespace overlay
}  // namespace pier

#endif  // PIER_OVERLAY_CHORD_H_
