// SQL lexer: tokenizes PIER's SQL dialect (keywords are case-insensitive;
// strings use single quotes with '' escapes; numbers are int64 or double).

#ifndef PIER_SQL_LEXER_H_
#define PIER_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pier {
namespace sql {

enum class TokenType : uint8_t {
  kIdentifier,  ///< table / column / keyword (keywords resolved by parser)
  kInteger,
  kFloat,
  kString,
  kSymbol,  ///< punctuation / operator, text holds the exact symbol
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     ///< identifier (upper-cased copy in `upper`), symbol,
                        ///< or literal spelling
  std::string upper;    ///< upper-cased text for keyword comparison
  int64_t int_value = 0;
  double float_value = 0;
  size_t position = 0;  ///< byte offset, for error messages
};

/// Splits `sql` into tokens. Returns InvalidArgument with position info on
/// malformed input (unterminated string, bad number, stray character).
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace sql
}  // namespace pier

#endif  // PIER_SQL_LEXER_H_
