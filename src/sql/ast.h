// Abstract syntax for PIER's SQL dialect (names still unresolved; the
// planner binds them against the catalog).
//
// Supported surface:
//   [EXPLAIN]
//   SELECT [DISTINCT] item[, ...]
//   FROM table [alias] [, table [alias] ...]
//      | FROM t1 JOIN t2 ON expr [JOIN t3 ON expr ...]
//   [WHERE expr] [GROUP BY col, ...] [HAVING expr]
//   [ORDER BY expr [ASC|DESC]] [LIMIT n]
//   [EVERY n SECONDS] [WINDOW n SECONDS]          -- continuous variant
//
//   WITH RECURSIVE name(src, dst) AS (
//     SELECT a, b FROM edges [WHERE ...]
//     UNION SELECT name.src, e.b FROM name JOIN edges e ON name.dst = e.a
//   ) SELECT ... FROM name [WHERE ...] [MAXHOPS n]
//
// FROM lists of three or more relations plan as left-deep chains of binary
// equi-joins; EXPLAIN returns the planned opgraph rendering instead of
// executing.

#ifndef PIER_SQL_AST_H_
#define PIER_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "exec/agg.h"
#include "exec/expr.h"

namespace pier {
namespace sql {

struct AstExpr;
using AstExprPtr = std::shared_ptr<AstExpr>;

/// Unresolved expression node.
struct AstExpr {
  enum class Kind : uint8_t {
    kLiteral,
    kColumn,    ///< name = "col" or "tbl.col"
    kCompare,
    kArith,
    kAnd,
    kOr,
    kNot,
    kNeg,
    kIsNull,
    kIsNotNull,
    kAggCall,   ///< agg over child (child null = COUNT(*))
  };

  Kind kind;
  Value literal;             // kLiteral
  std::string column;        // kColumn
  exec::CompareOp cmp;       // kCompare
  exec::ArithOp arith;       // kArith
  exec::AggFunc agg;         // kAggCall
  AstExprPtr left, right;    // operands / single child in `left`

  std::string ToString() const;
};

struct SelectItem {
  AstExprPtr expr;
  std::string alias;  ///< AS name (may be empty)
};

struct TableRef {
  std::string table;
  std::string alias;  ///< defaults to table name
};

struct SelectStmt {
  bool distinct = false;
  bool select_star = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;   ///< 1 = scan, 2+ = (chained) joins
  AstExprPtr join_on;           ///< AND of all JOIN ... ON conditions
  AstExprPtr where;
  std::vector<std::string> group_by;
  AstExprPtr having;
  AstExprPtr order_by;
  bool order_desc = false;
  int64_t limit = -1;
  int64_t every_seconds = 0;
  int64_t window_seconds = 0;
};

struct RecursiveQuery {
  std::string name;                      ///< the recursive relation
  std::vector<std::string> columns;      ///< declared column names (2)
  SelectStmt base;                       ///< seed select over the edge table
  SelectStmt step;                       ///< recursive step (join pattern)
  SelectStmt outer;                      ///< final select over `name`
  int64_t max_hops = 16;
};

/// A parsed statement: either a plain select or a recursive query,
/// optionally wrapped in EXPLAIN.
struct Statement {
  enum class Kind : uint8_t { kSelect, kRecursive };
  Kind kind = Kind::kSelect;
  /// EXPLAIN <query>: plan but do not execute; the answer is the planned
  /// opgraph's rendering as a one-row result.
  bool explain = false;
  SelectStmt select;
  std::optional<RecursiveQuery> recursive;
};

}  // namespace sql
}  // namespace pier

#endif  // PIER_SQL_AST_H_
