#include "sql/parser.h"

#include "sql/lexer.h"

namespace pier {
namespace sql {

namespace {

AstExprPtr MakeExpr(AstExpr::Kind kind) {
  auto e = std::make_shared<AstExpr>();
  e->kind = kind;
  return e;
}

/// Token-stream cursor with helpers. All Parse* methods return Status and
/// write through out-params; the cursor only advances on success.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Status ParseStatement(Statement* out) {
    if (ConsumeKeyword("EXPLAIN")) out->explain = true;
    if (PeekKeyword("WITH")) {
      PIER_RETURN_IF_ERROR(ParseRecursive(out));
    } else {
      out->kind = Statement::Kind::kSelect;
      PIER_RETURN_IF_ERROR(ParseSelect(&out->select));
    }
    (void)ConsumeSymbol(";");
    if (!AtEnd()) {
      return Error("unexpected trailing input");
    }
    return Status::OK();
  }

 private:
  // -- cursor helpers --------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && t.upper == kw;
  }
  bool ConsumeKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  bool PeekSymbol(const std::string& s) const {
    const Token& t = Peek();
    return t.type == TokenType::kSymbol && t.text == s;
  }
  bool ConsumeSymbol(const std::string& s) {
    if (!PeekSymbol(s)) return false;
    ++pos_;
    return true;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!ConsumeKeyword(kw)) return Error("expected " + kw);
    return Status::OK();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!ConsumeSymbol(s)) return Error("expected '" + s + "'");
    return Status::OK();
  }
  Status ExpectIdentifier(std::string* out) {
    const Token& t = Peek();
    if (t.type != TokenType::kIdentifier) return Error("expected identifier");
    *out = t.text;
    ++pos_;
    return Status::OK();
  }
  Status ExpectInteger(int64_t* out) {
    const Token& t = Peek();
    if (t.type != TokenType::kInteger) return Error("expected integer");
    *out = t.int_value;
    ++pos_;
    return Status::OK();
  }
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        "parse error at position " + std::to_string(Peek().position) + ": " +
        msg + " (near '" + Peek().text + "')");
  }

  // -- grammar ---------------------------------------------------------------
  Status ParseSelect(SelectStmt* out) {
    PIER_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (ConsumeKeyword("DISTINCT")) out->distinct = true;
    if (ConsumeSymbol("*")) {
      out->select_star = true;
    } else {
      while (true) {
        SelectItem item;
        PIER_RETURN_IF_ERROR(ParseExpr(&item.expr));
        if (ConsumeKeyword("AS")) {
          PIER_RETURN_IF_ERROR(ExpectIdentifier(&item.alias));
        }
        out->items.push_back(std::move(item));
        if (!ConsumeSymbol(",")) break;
      }
    }
    PIER_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    PIER_RETURN_IF_ERROR(ParseTableRef(out));
    // Any number of further relations: comma list and/or JOIN ... ON
    // chains. All ON conditions AND together; the planner re-extracts
    // per-join equi keys from the conjuncts.
    while (true) {
      if (ConsumeSymbol(",")) {
        PIER_RETURN_IF_ERROR(ParseTableRef(out));
        continue;
      }
      if (ConsumeKeyword("JOIN")) {
        PIER_RETURN_IF_ERROR(ParseTableRef(out));
        PIER_RETURN_IF_ERROR(ExpectKeyword("ON"));
        AstExprPtr on;
        PIER_RETURN_IF_ERROR(ParseExpr(&on));
        if (out->join_on == nullptr) {
          out->join_on = on;
        } else {
          auto e = MakeExpr(AstExpr::Kind::kAnd);
          e->left = out->join_on;
          e->right = on;
          out->join_on = e;
        }
        continue;
      }
      break;
    }
    if (ConsumeKeyword("WHERE")) {
      PIER_RETURN_IF_ERROR(ParseExpr(&out->where));
    }
    if (ConsumeKeyword("GROUP")) {
      PIER_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        std::string col;
        PIER_RETURN_IF_ERROR(ParseQualifiedName(&col));
        out->group_by.push_back(std::move(col));
        if (!ConsumeSymbol(",")) break;
      }
    }
    if (ConsumeKeyword("HAVING")) {
      PIER_RETURN_IF_ERROR(ParseExpr(&out->having));
    }
    if (ConsumeKeyword("ORDER")) {
      PIER_RETURN_IF_ERROR(ExpectKeyword("BY"));
      PIER_RETURN_IF_ERROR(ParseExpr(&out->order_by));
      if (ConsumeKeyword("DESC")) {
        out->order_desc = true;
      } else {
        (void)ConsumeKeyword("ASC");
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      PIER_RETURN_IF_ERROR(ExpectInteger(&out->limit));
    }
    if (ConsumeKeyword("EVERY")) {
      PIER_RETURN_IF_ERROR(ExpectInteger(&out->every_seconds));
      PIER_RETURN_IF_ERROR(ExpectKeyword("SECONDS"));
    }
    if (ConsumeKeyword("WINDOW")) {
      PIER_RETURN_IF_ERROR(ExpectInteger(&out->window_seconds));
      PIER_RETURN_IF_ERROR(ExpectKeyword("SECONDS"));
    }
    return Status::OK();
  }

  Status ParseTableRef(SelectStmt* out) {
    TableRef ref;
    PIER_RETURN_IF_ERROR(ExpectIdentifier(&ref.table));
    // Optional alias: bare identifier that is not a clause keyword.
    static const char* kClauses[] = {"WHERE",   "GROUP",  "HAVING", "ORDER",
                                     "LIMIT",   "EVERY",  "WINDOW", "JOIN",
                                     "ON",      "SECONDS", "AS",    "UNION",
                                     "MAXHOPS", "ASC",     "DESC"};
    if (ConsumeKeyword("AS")) {
      PIER_RETURN_IF_ERROR(ExpectIdentifier(&ref.alias));
    } else if (Peek().type == TokenType::kIdentifier) {
      bool is_clause = false;
      for (const char* kw : kClauses) is_clause |= Peek().upper == kw;
      if (!is_clause) {
        ref.alias = Peek().text;
        ++pos_;
      }
    }
    if (ref.alias.empty()) ref.alias = ref.table;
    out->from.push_back(std::move(ref));
    return Status::OK();
  }

  Status ParseQualifiedName(std::string* out) {
    std::string name;
    PIER_RETURN_IF_ERROR(ExpectIdentifier(&name));
    if (ConsumeSymbol(".")) {
      std::string rest;
      PIER_RETURN_IF_ERROR(ExpectIdentifier(&rest));
      name += "." + rest;
    }
    *out = std::move(name);
    return Status::OK();
  }

  // Precedence climbing: OR < AND < NOT < comparison < additive <
  // multiplicative < unary < primary.
  Status ParseExpr(AstExprPtr* out) { return ParseOr(out); }

  Status ParseOr(AstExprPtr* out) {
    PIER_RETURN_IF_ERROR(ParseAnd(out));
    while (ConsumeKeyword("OR")) {
      AstExprPtr rhs;
      PIER_RETURN_IF_ERROR(ParseAnd(&rhs));
      auto e = MakeExpr(AstExpr::Kind::kOr);
      e->left = *out;
      e->right = rhs;
      *out = e;
    }
    return Status::OK();
  }

  Status ParseAnd(AstExprPtr* out) {
    PIER_RETURN_IF_ERROR(ParseNot(out));
    while (ConsumeKeyword("AND")) {
      AstExprPtr rhs;
      PIER_RETURN_IF_ERROR(ParseNot(&rhs));
      auto e = MakeExpr(AstExpr::Kind::kAnd);
      e->left = *out;
      e->right = rhs;
      *out = e;
    }
    return Status::OK();
  }

  Status ParseNot(AstExprPtr* out) {
    if (ConsumeKeyword("NOT")) {
      AstExprPtr inner;
      PIER_RETURN_IF_ERROR(ParseNot(&inner));
      auto e = MakeExpr(AstExpr::Kind::kNot);
      e->left = inner;
      *out = e;
      return Status::OK();
    }
    return ParseComparison(out);
  }

  Status ParseComparison(AstExprPtr* out) {
    PIER_RETURN_IF_ERROR(ParseAdditive(out));
    // BETWEEN lo AND hi desugars to (x >= lo AND x <= hi); the bound
    // operands parse at additive precedence so the AND belongs to BETWEEN,
    // not the enclosing conjunction.
    if (ConsumeKeyword("BETWEEN")) {
      AstExprPtr lo, hi;
      PIER_RETURN_IF_ERROR(ParseAdditive(&lo));
      PIER_RETURN_IF_ERROR(ExpectKeyword("AND"));
      PIER_RETURN_IF_ERROR(ParseAdditive(&hi));
      auto ge = MakeExpr(AstExpr::Kind::kCompare);
      ge->cmp = exec::CompareOp::kGe;
      ge->left = *out;
      ge->right = lo;
      auto le = MakeExpr(AstExpr::Kind::kCompare);
      le->cmp = exec::CompareOp::kLe;
      le->left = *out;
      le->right = hi;
      auto both = MakeExpr(AstExpr::Kind::kAnd);
      both->left = ge;
      both->right = le;
      *out = both;
      return Status::OK();
    }
    // IS [NOT] NULL postfix.
    if (PeekKeyword("IS")) {
      ++pos_;
      bool negated = ConsumeKeyword("NOT");
      PIER_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto e = MakeExpr(negated ? AstExpr::Kind::kIsNotNull
                                : AstExpr::Kind::kIsNull);
      e->left = *out;
      *out = e;
      return Status::OK();
    }
    struct OpMap {
      const char* sym;
      exec::CompareOp op;
    };
    static const OpMap kOps[] = {{"<=", exec::CompareOp::kLe},
                                 {">=", exec::CompareOp::kGe},
                                 {"<>", exec::CompareOp::kNe},
                                 {"=", exec::CompareOp::kEq},
                                 {"<", exec::CompareOp::kLt},
                                 {">", exec::CompareOp::kGt}};
    for (const OpMap& m : kOps) {
      if (PeekSymbol(m.sym)) {
        ++pos_;
        AstExprPtr rhs;
        PIER_RETURN_IF_ERROR(ParseAdditive(&rhs));
        auto e = MakeExpr(AstExpr::Kind::kCompare);
        e->cmp = m.op;
        e->left = *out;
        e->right = rhs;
        *out = e;
        return Status::OK();
      }
    }
    return Status::OK();
  }

  Status ParseAdditive(AstExprPtr* out) {
    PIER_RETURN_IF_ERROR(ParseMultiplicative(out));
    while (PeekSymbol("+") || PeekSymbol("-")) {
      exec::ArithOp op = PeekSymbol("+") ? exec::ArithOp::kAdd
                                         : exec::ArithOp::kSub;
      ++pos_;
      AstExprPtr rhs;
      PIER_RETURN_IF_ERROR(ParseMultiplicative(&rhs));
      auto e = MakeExpr(AstExpr::Kind::kArith);
      e->arith = op;
      e->left = *out;
      e->right = rhs;
      *out = e;
    }
    return Status::OK();
  }

  Status ParseMultiplicative(AstExprPtr* out) {
    PIER_RETURN_IF_ERROR(ParseUnary(out));
    while (PeekSymbol("*") || PeekSymbol("/") || PeekSymbol("%")) {
      exec::ArithOp op = PeekSymbol("*")   ? exec::ArithOp::kMul
                         : PeekSymbol("/") ? exec::ArithOp::kDiv
                                           : exec::ArithOp::kMod;
      ++pos_;
      AstExprPtr rhs;
      PIER_RETURN_IF_ERROR(ParseUnary(&rhs));
      auto e = MakeExpr(AstExpr::Kind::kArith);
      e->arith = op;
      e->left = *out;
      e->right = rhs;
      *out = e;
    }
    return Status::OK();
  }

  Status ParseUnary(AstExprPtr* out) {
    if (ConsumeSymbol("-")) {
      AstExprPtr inner;
      PIER_RETURN_IF_ERROR(ParseUnary(&inner));
      auto e = MakeExpr(AstExpr::Kind::kNeg);
      e->left = inner;
      *out = e;
      return Status::OK();
    }
    return ParsePrimary(out);
  }

  Status ParsePrimary(AstExprPtr* out) {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        auto e = MakeExpr(AstExpr::Kind::kLiteral);
        e->literal = Value::Int64(t.int_value);
        ++pos_;
        *out = e;
        return Status::OK();
      }
      case TokenType::kFloat: {
        auto e = MakeExpr(AstExpr::Kind::kLiteral);
        e->literal = Value::Double(t.float_value);
        ++pos_;
        *out = e;
        return Status::OK();
      }
      case TokenType::kString: {
        auto e = MakeExpr(AstExpr::Kind::kLiteral);
        e->literal = Value::String(t.text);
        ++pos_;
        *out = e;
        return Status::OK();
      }
      case TokenType::kSymbol:
        if (t.text == "(") {
          ++pos_;
          PIER_RETURN_IF_ERROR(ParseExpr(out));
          return ExpectSymbol(")");
        }
        return Error("unexpected symbol");
      case TokenType::kIdentifier: {
        // Boolean / null literals.
        if (t.upper == "TRUE" || t.upper == "FALSE") {
          auto e = MakeExpr(AstExpr::Kind::kLiteral);
          e->literal = Value::Bool(t.upper == "TRUE");
          ++pos_;
          *out = e;
          return Status::OK();
        }
        if (t.upper == "NULL") {
          auto e = MakeExpr(AstExpr::Kind::kLiteral);
          ++pos_;
          *out = e;
          return Status::OK();
        }
        // Aggregate call?
        static const struct {
          const char* name;
          exec::AggFunc fn;
        } kAggs[] = {{"COUNT", exec::AggFunc::kCount},
                     {"SUM", exec::AggFunc::kSum},
                     {"AVG", exec::AggFunc::kAvg},
                     {"MIN", exec::AggFunc::kMin},
                     {"MAX", exec::AggFunc::kMax}};
        for (const auto& agg : kAggs) {
          if (t.upper == agg.name && Peek(1).type == TokenType::kSymbol &&
              Peek(1).text == "(") {
            pos_ += 2;
            auto e = MakeExpr(AstExpr::Kind::kAggCall);
            e->agg = agg.fn;
            if (ConsumeSymbol("*")) {
              // COUNT(*): child stays null.
            } else {
              PIER_RETURN_IF_ERROR(ParseExpr(&e->left));
            }
            PIER_RETURN_IF_ERROR(ExpectSymbol(")"));
            *out = e;
            return Status::OK();
          }
        }
        // Plain (possibly qualified) column reference.
        auto e = MakeExpr(AstExpr::Kind::kColumn);
        PIER_RETURN_IF_ERROR(ParseQualifiedName(&e->column));
        *out = e;
        return Status::OK();
      }
      case TokenType::kEnd:
        return Error("unexpected end of input");
    }
    return Error("unexpected token");
  }

  Status ParseRecursive(Statement* out) {
    PIER_RETURN_IF_ERROR(ExpectKeyword("WITH"));
    PIER_RETURN_IF_ERROR(ExpectKeyword("RECURSIVE"));
    out->kind = Statement::Kind::kRecursive;
    RecursiveQuery rq;
    PIER_RETURN_IF_ERROR(ExpectIdentifier(&rq.name));
    PIER_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      std::string col;
      PIER_RETURN_IF_ERROR(ExpectIdentifier(&col));
      rq.columns.push_back(std::move(col));
      if (!ConsumeSymbol(",")) break;
    }
    PIER_RETURN_IF_ERROR(ExpectSymbol(")"));
    PIER_RETURN_IF_ERROR(ExpectKeyword("AS"));
    PIER_RETURN_IF_ERROR(ExpectSymbol("("));
    PIER_RETURN_IF_ERROR(ParseSelect(&rq.base));
    PIER_RETURN_IF_ERROR(ExpectKeyword("UNION"));
    (void)ConsumeKeyword("ALL");
    PIER_RETURN_IF_ERROR(ParseSelect(&rq.step));
    PIER_RETURN_IF_ERROR(ExpectSymbol(")"));
    PIER_RETURN_IF_ERROR(ParseSelect(&rq.outer));
    if (ConsumeKeyword("MAXHOPS")) {
      PIER_RETURN_IF_ERROR(ExpectInteger(&rq.max_hops));
    }
    out->recursive = std::move(rq);
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string AstExpr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kColumn:
      return column;
    case Kind::kCompare:
      return "(" + left->ToString() + " " + exec::CompareOpName(cmp) + " " +
             right->ToString() + ")";
    case Kind::kArith:
      return "(" + left->ToString() + " " + exec::ArithOpName(arith) + " " +
             right->ToString() + ")";
    case Kind::kAnd:
      return "(" + left->ToString() + " AND " + right->ToString() + ")";
    case Kind::kOr:
      return "(" + left->ToString() + " OR " + right->ToString() + ")";
    case Kind::kNot:
      return "(NOT " + left->ToString() + ")";
    case Kind::kNeg:
      return "(-" + left->ToString() + ")";
    case Kind::kIsNull:
      return "(" + left->ToString() + " IS NULL)";
    case Kind::kIsNotNull:
      return "(" + left->ToString() + " IS NOT NULL)";
    case Kind::kAggCall:
      return std::string(exec::AggFuncName(agg)) + "(" +
             (left ? left->ToString() : "*") + ")";
  }
  return "?";
}

Result<Statement> Parse(const std::string& sql) {
  std::vector<Token> tokens;
  PIER_ASSIGN_OR_RETURN(tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  Statement stmt;
  PIER_RETURN_IF_ERROR(parser.ParseStatement(&stmt));
  return stmt;
}

}  // namespace sql
}  // namespace pier
