#include "sql/lexer.h"

#include <cctype>

namespace pier {
namespace sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comment to end of line.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      tok.type = TokenType::kIdentifier;
      tok.text = sql.substr(start, i - start);
      tok.upper = Upper(tok.text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
                       ((sql[i] == '+' || sql[i] == '-') && i > start &&
                        (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        if (sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E') is_float = true;
        ++i;
      }
      std::string spelling = sql.substr(start, i - start);
      tok.text = spelling;
      errno = 0;
      if (is_float) {
        tok.type = TokenType::kFloat;
        char* end = nullptr;
        tok.float_value = std::strtod(spelling.c_str(), &end);
        if (end == nullptr || *end != '\0') {
          return Status::InvalidArgument("bad number '" + spelling +
                                         "' at position " +
                                         std::to_string(start));
        }
      } else {
        tok.type = TokenType::kInteger;
        char* end = nullptr;
        tok.int_value = std::strtoll(spelling.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          return Status::InvalidArgument("bad integer '" + spelling +
                                         "' at position " +
                                         std::to_string(start));
        }
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string at position " +
                                       std::to_string(tok.position));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tok.type = TokenType::kSymbol;
        tok.text = two == "!=" ? "<>" : two;
        tokens.push_back(std::move(tok));
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = "()+-*/%,.;<>=";
    if (kSingles.find(c) != std::string::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      tokens.push_back(std::move(tok));
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at position " +
                                   std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sql
}  // namespace pier
