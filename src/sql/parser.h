// Recursive-descent parser for PIER's SQL dialect. Returns Status-carrying
// results; never throws. See ast.h for the supported grammar.

#ifndef PIER_SQL_PARSER_H_
#define PIER_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace pier {
namespace sql {

/// Parses one statement (optionally ';'-terminated).
Result<Statement> Parse(const std::string& sql);

}  // namespace sql
}  // namespace pier

#endif  // PIER_SQL_PARSER_H_
