// PierNetwork: the deployment harness — builds an N-node PIER network on a
// simulated wide-area topology, boots the ring, and provides the crash /
// reboot / churn controls experiments need. This plays the role PlanetLab
// played for the paper's demo (see DESIGN.md, substitutions).

#ifndef PIER_CORE_NETWORK_H_
#define PIER_CORE_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "core/node.h"
#include "sim/churn.h"
#include "sim/event_queue.h"
#include "sim/network.h"

namespace pier {
namespace core {

struct PierNetworkOptions {
  uint64_t seed = 42;
  sim::NetworkOptions net;
  NodeOptions node;
  /// Gap between consecutive joins during boot (staggered arrival).
  Duration join_stagger = Millis(250);
};

/// An experiment-scale PIER deployment.
class PierNetwork {
 public:
  explicit PierNetwork(size_t n, PierNetworkOptions options = {});
  ~PierNetwork();

  PierNetwork(const PierNetwork&) = delete;
  PierNetwork& operator=(const PierNetwork&) = delete;

  /// Creates the ring at node 0, joins the rest staggered, then runs the
  /// simulation for `settle` so the overlay stabilizes. Returns the number
  /// of nodes that joined successfully.
  size_t Boot(Duration settle = Seconds(60));

  PierNode* node(size_t i) { return nodes_[i].get(); }
  PierNode* operator[](size_t i) { return nodes_[i].get(); }
  size_t size() const { return nodes_.size(); }
  size_t alive_count() const;
  /// Host id of some currently-alive node (bootstrap target for reboots).
  sim::HostId AnyAliveHost() const;

  sim::Simulation* sim() { return sim_.get(); }
  sim::Network* net() { return net_.get(); }
  overlay::Directory* directory() { return &directory_; }

  void RunFor(Duration d) { sim_->RunFor(d); }

  void Crash(size_t i) { nodes_[i]->Crash(); }
  void Reboot(size_t i);

  /// Attaches a churn scheduler that crashes/reboots nodes per `options`.
  /// Node 0 is kept stable as the experiment's observation point.
  void EnableChurn(sim::ChurnOptions options);
  /// Membership transitions fired so far (0 when churn was never enabled).
  uint64_t churn_transitions() const {
    return churn_ != nullptr ? churn_->transitions() : 0;
  }

  /// Sum of a per-node traffic counter across nodes (experiment accounting).
  uint64_t TotalBytesOut(overlay::Proto proto) const;

 private:
  PierNetworkOptions options_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<sim::Network> net_;
  overlay::Directory directory_;
  std::vector<std::unique_ptr<PierNode>> nodes_;
  std::unique_ptr<sim::ChurnScheduler> churn_;
  size_t joined_ok_ = 0;
};

}  // namespace core
}  // namespace pier

#endif  // PIER_CORE_NETWORK_H_
