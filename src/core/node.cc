#include "core/node.h"

#include "common/logging.h"
#include "query/engine.h"

namespace pier {
namespace core {

PierNode::PierNode(sim::Network* network, std::string name,
                   NodeOptions options, overlay::Directory* directory)
    : network_(network),
      name_(std::move(name)),
      options_(options),
      directory_(directory),
      host_(network->AddHost(this)),
      id_(Id160::FromName(name_)) {
  PIER_CHECK(options_.router_kind != RouterKind::kOneHop ||
             directory_ != nullptr);
  BuildComponents();
}

PierNode::~PierNode() = default;

void PierNode::OnMessage(sim::HostId from, const sim::Packet& packet) {
  if (!alive_) return;
  transport_->Dispatch(from, packet);
}

void PierNode::BuildComponents() {
  transport_ = std::make_unique<overlay::Transport>(network_, host_);
  if (options_.router_kind == RouterKind::kChord) {
    chord_ = std::make_unique<overlay::ChordNode>(transport_.get(), id_,
                                                  options_.chord);
    router_ = chord_.get();
  } else {
    one_hop_ = std::make_unique<overlay::OneHopRouter>(transport_.get(), id_,
                                                       directory_);
    router_ = one_hop_.get();
  }
  mux_ = std::make_unique<overlay::RouteMux>(router_);
  dht_ = std::make_unique<dht::Dht>(transport_.get(), router_, mux_.get(),
                                    options_.dht);
  broadcast_ = std::make_unique<dht::BroadcastService>(
      transport_.get(), router_, options_.broadcast);
  index_manager_ = std::make_unique<index::IndexManager>(
      dht_.get(), network_->simulation(), options_.index);
  // Index maintenance tracks the catalog: definitions registered at any
  // time wire up their PHT handles, and a reboot (which rebuilds the
  // manager but keeps the catalog) replays the existing registrations.
  catalog_.SetRegisterHook([this](const catalog::TableDef& def) {
    index_manager_->RegisterTable(def);
  });
  for (const std::string& name : catalog_.TableNames()) {
    index_manager_->RegisterTable(*catalog_.Find(name));
  }
  query_engine_ = std::make_unique<query::QueryEngine>(
      transport_.get(), router_, dht_.get(), broadcast_.get(), &catalog_,
      options_.engine);
  query_engine_->SetIndexManager(index_manager_.get());
}

void PierNode::StartServices() {
  dht_->Start();
  broadcast_->Start();
}

void PierNode::StopServices() {
  if (query_engine_) query_engine_->Stop();
  if (dht_) dht_->Stop();
  if (broadcast_) broadcast_->Stop();
}

void PierNode::CreateRing() {
  if (chord_) {
    chord_->Create();
  } else {
    one_hop_->Activate();
  }
  StartServices();
}

void PierNode::JoinRing(sim::HostId bootstrap,
                        std::function<void(Status)> done) {
  if (chord_) {
    chord_->Join(bootstrap, [this, done](Status s) {
      if (s.ok()) StartServices();
      if (done) done(s);
    });
  } else {
    one_hop_->Activate();
    StartServices();
    if (done) {
      simulation()->ScheduleAfter(0, [done] { done(Status::OK()); });
    }
  }
}

void PierNode::Leave() {
  if (!alive_) return;
  if (chord_) {
    chord_->Leave();
  } else {
    one_hop_->Deactivate();
  }
  StopServices();
  alive_ = false;
  network_->SetHostUp(host_, false);
}

void PierNode::Crash() {
  if (!alive_) return;
  if (chord_) {
    chord_->Fail();
  } else {
    one_hop_->Deactivate();
  }
  StopServices();
  alive_ = false;
  network_->SetHostUp(host_, false);
  PLOG(kInfo, name_) << "crashed";
}

void PierNode::Reboot(sim::HostId bootstrap,
                      std::function<void(Status)> done) {
  PIER_CHECK(!alive_);
  // A reboot is a fresh process: all protocol and storage state is rebuilt.
  query_engine_.reset();
  index_manager_.reset();
  broadcast_.reset();
  dht_.reset();
  mux_.reset();
  chord_.reset();
  one_hop_.reset();
  transport_.reset();
  router_ = nullptr;
  BuildComponents();
  alive_ = true;
  network_->SetHostUp(host_, true);
  JoinRing(bootstrap, std::move(done));
  PLOG(kInfo, name_) << "rebooted";
}

}  // namespace core
}  // namespace pier
