#include "core/network.h"

#include "common/logging.h"

namespace pier {
namespace core {

PierNetwork::PierNetwork(size_t n, PierNetworkOptions options)
    : options_(options),
      sim_(std::make_unique<sim::Simulation>(options.seed)),
      net_(std::make_unique<sim::Network>(sim_.get(), options.net)) {
  nodes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<PierNode>(
        net_.get(), "pier-node-" + std::to_string(i), options_.node,
        &directory_));
  }
}

PierNetwork::~PierNetwork() = default;

size_t PierNetwork::Boot(Duration settle) {
  if (nodes_.empty()) return 0;
  nodes_[0]->CreateRing();
  joined_ok_ = 1;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    sim_->ScheduleAt(options_.join_stagger * static_cast<Duration>(i),
                     [this, i] {
                       nodes_[i]->JoinRing(nodes_[0]->host(), [this](Status s) {
                         if (s.ok()) ++joined_ok_;
                       });
                     });
  }
  sim_->RunFor(options_.join_stagger * static_cast<Duration>(nodes_.size()) +
               settle);
  return joined_ok_;
}

size_t PierNetwork::alive_count() const {
  size_t n = 0;
  for (const auto& node : nodes_) n += node->alive() ? 1 : 0;
  return n;
}

sim::HostId PierNetwork::AnyAliveHost() const {
  for (const auto& node : nodes_) {
    if (node->alive()) return node->host();
  }
  return sim::kInvalidHost;
}

void PierNetwork::Reboot(size_t i) {
  sim::HostId bootstrap = AnyAliveHost();
  if (bootstrap == sim::kInvalidHost) return;
  nodes_[i]->Reboot(bootstrap, nullptr);
}

void PierNetwork::EnableChurn(sim::ChurnOptions options) {
  churn_ = std::make_unique<sim::ChurnScheduler>(
      sim_.get(), options, [this](sim::HostId host, bool up) {
        // Host ids are node indices in this harness.
        size_t i = static_cast<size_t>(host);
        if (i >= nodes_.size()) return;
        if (up) {
          if (!nodes_[i]->alive()) Reboot(i);
        } else {
          nodes_[i]->Crash();
        }
      });
  // Node 0 stays up: it is the observation point for experiments.
  for (size_t i = 1; i < nodes_.size(); ++i) {
    churn_->Manage(nodes_[i]->host());
  }
}

uint64_t PierNetwork::TotalBytesOut(overlay::Proto proto) const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->transport()->traffic(proto).bytes_out;
  }
  return total;
}

}  // namespace core
}  // namespace pier
