// PierNode: one participant in a PIER deployment — the composition of the
// transport endpoint, an overlay router (Chord or the one-hop baseline),
// the DHT storage layer, the broadcast service, and (once a query engine is
// attached) the distributed query processor.
//
// Lifecycle: construct -> CreateRing()/JoinRing() -> ... -> Crash()/Leave().
// A crashed node can Reboot(), which rebuilds all protocol state from
// scratch (its in-memory store is lost — soft state means the data comes
// back through publisher renewals).

#ifndef PIER_CORE_NODE_H_
#define PIER_CORE_NODE_H_

#include <functional>
#include <memory>
#include <string>

#include "catalog/table_def.h"
#include "dht/broadcast.h"
#include "dht/storage.h"
#include "index/index_manager.h"
#include "overlay/chord.h"
#include "overlay/one_hop.h"
#include "overlay/transport.h"
#include "query/engine.h"
#include "sim/network.h"

namespace pier {
namespace core {

/// Which routing substrate a node runs on.
enum class RouterKind {
  kChord,   ///< multi-hop Chord overlay (the real deployment mode)
  kOneHop,  ///< idealized full-membership router (tests/ablations)
};

struct NodeOptions {
  RouterKind router_kind = RouterKind::kChord;
  overlay::ChordOptions chord;
  dht::DhtOptions dht;
  dht::BroadcastOptions broadcast;
  query::EngineOptions engine;
  index::IndexOptions index;
};

/// One PIER node. Owns every per-node component and wires them together.
class PierNode : public sim::MessageHandler {
 public:
  /// `directory` is required iff router_kind == kOneHop and must be shared
  /// by all nodes of the experiment.
  PierNode(sim::Network* network, std::string name, NodeOptions options,
           overlay::Directory* directory = nullptr);
  ~PierNode() override;

  PierNode(const PierNode&) = delete;
  PierNode& operator=(const PierNode&) = delete;

  // sim::MessageHandler.
  void OnMessage(sim::HostId from, const sim::Packet& packet) override;

  /// Becomes the first node of the ring and starts all services.
  void CreateRing();
  /// Joins via `bootstrap`; `done` fires when the overlay join completes.
  void JoinRing(sim::HostId bootstrap, std::function<void(Status)> done);
  /// Graceful departure (notifies neighbors). The host stays addressable.
  void Leave();
  /// Abrupt failure: all services stop, the simulated host goes down, and
  /// all in-memory state is lost.
  void Crash();
  /// Restarts a crashed node: host comes back up with fresh protocol state
  /// and rejoins through `bootstrap`.
  void Reboot(sim::HostId bootstrap, std::function<void(Status)> done);

  bool alive() const { return alive_; }
  sim::HostId host() const { return host_; }
  const std::string& name() const { return name_; }
  const Id160& id() const { return id_; }

  overlay::Transport* transport() { return transport_.get(); }
  overlay::Router* router() { return router_; }
  overlay::ChordNode* chord() { return chord_.get(); }  // null in one-hop mode
  overlay::RouteMux* mux() { return mux_.get(); }
  dht::Dht* dht() { return dht_.get(); }
  dht::BroadcastService* broadcast() { return broadcast_.get(); }
  query::QueryEngine* query_engine() { return query_engine_.get(); }
  index::IndexManager* index_manager() { return index_manager_.get(); }
  catalog::Catalog* catalog() { return &catalog_; }
  sim::Simulation* simulation() { return network_->simulation(); }

 private:
  void BuildComponents();
  void StartServices();
  void StopServices();

  sim::Network* network_;
  std::string name_;
  NodeOptions options_;
  overlay::Directory* directory_;
  sim::HostId host_;
  Id160 id_;
  bool alive_ = true;
  /// Table definitions survive reboots (an application redeploys its
  /// catalog with the process image).
  catalog::Catalog catalog_;

  std::unique_ptr<overlay::Transport> transport_;
  std::unique_ptr<overlay::ChordNode> chord_;
  std::unique_ptr<overlay::OneHopRouter> one_hop_;
  overlay::Router* router_ = nullptr;
  std::unique_ptr<overlay::RouteMux> mux_;
  std::unique_ptr<dht::Dht> dht_;
  std::unique_ptr<dht::BroadcastService> broadcast_;
  std::unique_ptr<index::IndexManager> index_manager_;
  std::unique_ptr<query::QueryEngine> query_engine_;
};

}  // namespace core
}  // namespace pier

#endif  // PIER_CORE_NODE_H_
