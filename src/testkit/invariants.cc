#include "testkit/invariants.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace pier {
namespace testkit {

namespace {
std::string HostLabel(core::PierNode* node) {
  return node->name() + " (host " + std::to_string(node->host()) + ")";
}
}  // namespace

Status RoutingConvergenceChecker::Check(const CheckContext& ctx) {
  core::PierNetwork& net = *ctx.net;
  // Collect the alive Chord membership sorted by ring position — the ring
  // stabilization must converge to exactly this ordering.
  std::vector<core::PierNode*> alive;
  for (size_t i = 0; i < net.size(); ++i) {
    core::PierNode* node = net.node(i);
    if (!node->alive()) continue;
    if (node->chord() == nullptr) return Status::OK();  // one-hop overlay
    alive.push_back(node);
  }
  if (alive.size() < 2) return Status::OK();
  std::sort(alive.begin(), alive.end(),
            [](core::PierNode* a, core::PierNode* b) {
              return a->id() < b->id();
            });

  for (size_t i = 0; i < alive.size(); ++i) {
    core::PierNode* node = alive[i];
    core::PierNode* expect_succ = alive[(i + 1) % alive.size()];
    core::PierNode* expect_pred = alive[(i + alive.size() - 1) % alive.size()];
    const overlay::ChordNode& chord = *node->chord();
    if (chord.successor().host != expect_succ->host()) {
      return Status::Internal(
          "ring not converged: " + HostLabel(node) + " successor is host " +
          std::to_string(chord.successor().host) + ", expected " +
          HostLabel(expect_succ));
    }
    if (!chord.predecessor().has_value() ||
        chord.predecessor()->host != expect_pred->host()) {
      return Status::Internal("ring not converged: " + HostLabel(node) +
                              " predecessor is " +
                              (chord.predecessor().has_value()
                                   ? "host " + std::to_string(
                                                   chord.predecessor()->host)
                                   : std::string("unset")) +
                              ", expected " + HostLabel(expect_pred));
    }
    if (!chord.RingStable(stability_window_)) {
      return Status::Internal(
          "ring still churning: " + HostLabel(node) +
          " changed neighbors " +
          FormatDuration(net.sim()->now() - chord.last_neighbor_change()) +
          " ago (< " + FormatDuration(stability_window_) + " window)");
    }
  }
  return Status::OK();
}

Status SoftStateExpiryChecker::Check(const CheckContext& ctx) {
  core::PierNetwork& net = *ctx.net;
  const Duration bound = ctx.sweep_interval + slack_;
  const TimePoint now = net.sim()->now();
  for (size_t i = 0; i < net.size(); ++i) {
    core::PierNode* node = net.node(i);
    if (!node->alive()) continue;
    const dht::LocalStore& store = *node->dht()->local_store();
    // Historical bound: the worst lag any sweep ever observed.
    if (store.stats().max_sweep_lag > bound) {
      return Status::Internal(
          "soft-state expiry violated at " + HostLabel(node) +
          ": an item outlived its TTL by " +
          FormatDuration(store.stats().max_sweep_lag) + " (bound " +
          FormatDuration(bound) + ")");
    }
    // Point-in-time bound: nothing currently held may be expired past the
    // sweep lag (Scan with now=0 sees expired-but-unswept items too).
    for (const std::string& ns : store.Namespaces()) {
      for (const dht::StoredItem& item : store.Scan(ns, /*now=*/0)) {
        if (item.expires_at + bound < now) {
          return Status::Internal(
              "soft-state expiry violated at " + HostLabel(node) + ": " +
              item.key.ToString() + " expired " +
              FormatDuration(now - item.expires_at) +
              " ago and was never swept (bound " + FormatDuration(bound) +
              ")");
        }
      }
    }
  }
  return Status::OK();
}

Status PayloadLeakChecker::CheckTeardown(int64_t live_payload_delta) {
  if (live_payload_delta != 0) {
    return Status::Internal(
        "payload leak: " + std::to_string(live_payload_delta) +
        " body buffer(s) still live after teardown");
  }
  return Status::OK();
}

Status OracleFloorChecker::Check(const CheckContext& ctx) {
  if (ctx.queries == nullptr) return Status::OK();
  for (const QueryOutcome& q : *ctx.queries) {
    if (q.min_recall < 0 && q.min_precision < 0) continue;
    if (!q.completed) {
      return Status::Internal("query never completed: " + q.sql);
    }
    if (q.min_recall >= 0 && q.score.recall < q.min_recall) {
      return Status::Internal(
          "recall floor violated for \"" + q.sql + "\": " +
          q.score.ToString() + " < floor " + std::to_string(q.min_recall));
    }
    if (q.min_precision >= 0 && q.score.precision < q.min_precision) {
      return Status::Internal(
          "precision floor violated for \"" + q.sql + "\": " +
          q.score.ToString() + " < floor " +
          std::to_string(q.min_precision));
    }
  }
  return Status::OK();
}

Status CompletenessChecker::Check(const CheckContext& ctx) {
  if (ctx.queries == nullptr) return Status::OK();
  for (const QueryOutcome& q : *ctx.queries) {
    if (!q.completed || !q.oracle_ok) continue;
    if (q.batch.completeness.exact && q.score.recall < 1.0) {
      return Status::Internal(
          "completeness claims exact for \"" + q.sql +
          "\" but the oracle sees missing rows: " + q.score.ToString() +
          " (" + q.batch.completeness.ToString() + ")");
    }
  }
  return Status::OK();
}

Status ExchangeHygieneChecker::Check(const CheckContext& ctx) {
  core::PierNetwork& net = *ctx.net;
  const TimePoint now = net.sim()->now();
  for (size_t i = 0; i < net.size(); ++i) {
    core::PierNode* node = net.node(i);
    if (!node->alive()) continue;
    // Rule 0 — reliable-plane teardown accounting: ended queries must hold
    // no outbox frames / dedupe windows / member reports, and the admission
    // gate's pending-byte counter must match what live outboxes actually
    // hold. A drifted counter wedges admission into permanent Busy.
    Status acct = node->query_engine()->CheckReliableAccounting();
    if (!acct.ok()) {
      return Status::Internal("reliable-plane accounting at " +
                              HostLabel(node) + ": " + acct.ToString());
    }
    const dht::LocalStore& store = *node->dht()->local_store();
    for (const std::string& ns : store.Namespaces()) {
      // Query-scoped namespaces: "q<qid>.x<edge>" (rehash exchanges) and
      // "q<qid>.reach" (recursion closure state).
      if (ns.size() < 3 || ns[0] != 'q' || !std::isdigit(static_cast<unsigned char>(ns[1]))) continue;
      size_t dot = ns.find('.');
      if (dot == std::string::npos) continue;
      uint64_t qid = 0;
      bool numeric = dot > 1;
      for (size_t p = 1; p < dot; ++p) {
        if (!std::isdigit(static_cast<unsigned char>(ns[p]))) {
          numeric = false;
          break;
        }
        qid = qid * 10 + static_cast<uint64_t>(ns[p] - '0');
      }
      if (!numeric) continue;
      if (store.Scan(ns, now).empty()) continue;  // expired, just unswept
      // Rule 1 — local orphan: exchange items whose query this node itself
      // already tore down (or never knew).
      if (!node->query_engine()->HasLiveQuery(qid)) {
        return Status::Internal(
            "namespace squatting at " + HostLabel(node) + ": live items in " +
            ns + " but query " + std::to_string(qid) +
            " is not live on this node");
      }
      // Rule 2 — dead at the origin: the issuing node (encoded in the
      // query-id's top half) is alive and has ended the query, yet this
      // member still holds live exchange state — a cancel/teardown that
      // never took effect here.
      uint64_t origin_host = (qid >> 32) - 1;
      for (size_t j = 0; j < net.size(); ++j) {
        core::PierNode* origin = net.node(j);
        if (!origin->alive() ||
            static_cast<uint64_t>(origin->host()) != origin_host) {
          continue;
        }
        if (!origin->query_engine()->HasLiveQuery(qid)) {
          return Status::Internal(
              "namespace squatting at " + HostLabel(node) +
              ": live items in " + ns + " but query " + std::to_string(qid) +
              " already ended at its origin " + HostLabel(origin));
        }
      }
    }
  }
  return Status::OK();
}

std::vector<std::unique_ptr<InvariantChecker>> DefaultCheckers() {
  std::vector<std::unique_ptr<InvariantChecker>> out;
  out.push_back(std::make_unique<RoutingConvergenceChecker>());
  out.push_back(std::make_unique<SoftStateExpiryChecker>());
  out.push_back(std::make_unique<PayloadLeakChecker>());
  out.push_back(std::make_unique<OracleFloorChecker>());
  out.push_back(std::make_unique<CompletenessChecker>());
  return out;
}

}  // namespace testkit
}  // namespace pier
