// FaultScript: a serializable, samplable description of the faults a
// scenario injects — the unit the fuzzer randomizes, prints on failure, and
// minimizes.
//
// A script is an ordered list of timed directives over node *indices*
// (0..n-1, the PierNetwork numbering; host ids equal indices in that
// harness). Applying a script installs the equivalent FaultPlane rules.
// Scripts render to a stable one-line-per-directive text form so a failing
// fuzz seed's reproduction recipe can be pasted into a bug report.

#ifndef PIER_TESTKIT_FAULT_SCRIPT_H_
#define PIER_TESTKIT_FAULT_SCRIPT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time_util.h"
#include "sim/fault_plane.h"

namespace pier {
namespace testkit {

/// One timed fault. `group_a`/`group_b` are node indices — except for the
/// query-lifecycle kinds, where `group_a[0]` is a *query slot* (an index
/// into the scenario's issue-ordered query list, taken modulo its size).
struct FaultDirective {
  enum class Kind : uint8_t {
    kPartition,      ///< bidirectional blackhole A <-> B
    kAsymPartition,  ///< one-way blackhole A -> B (B still reaches A)
    kLoss,           ///< probabilistic loss on A <-> B links
    kDelaySpike,     ///< fixed extra latency on A <-> B links
    kDuplicate,      ///< probabilistic duplication on A <-> B links
    kReorder,        ///< reordering window on A <-> B links
    // Query-lifecycle adversity (consumed by the Scenario harness, not the
    // FaultPlane): exercise mid-query cancellation and deadline expiry so
    // the fuzzer hunts teardown bugs, not just delivery bugs.
    kCancelQuery,    ///< origin cancels query slot group_a[0] at `from`
    kQueryDeadline,  ///< query slot group_a[0] runs with deadline `magnitude`
  };

  Kind kind = Kind::kPartition;
  TimePoint from = 0;
  TimePoint until = 0;
  std::vector<sim::HostId> group_a;
  std::vector<sim::HostId> group_b;
  /// Loss / duplication probability.
  double probability = 0.0;
  /// Delay-spike magnitude, reorder window, or deadline duration.
  Duration magnitude = 0;

  std::string ToString() const;
};

const char* FaultKindName(FaultDirective::Kind k);

/// The whole injected-fault schedule of one scenario run.
struct FaultScript {
  std::vector<FaultDirective> directives;

  bool empty() const { return directives.empty(); }
  size_t size() const { return directives.size(); }

  /// Installs every directive as FaultPlane rules (windows handle timing;
  /// nothing needs the sim clock at install time).
  void Apply(sim::FaultPlane* plane) const;

  /// Latest `until` across directives (0 when empty) — the heal point.
  TimePoint HealTime() const;

  /// One directive per line; stable across runs for a given script.
  std::string ToString() const;

  /// Copy with directive `i` removed (minimization step).
  FaultScript Without(size_t i) const;

  /// Draws a random script over `n_hosts` nodes with every window inside
  /// [start, end). Host 0 is never isolated by a partition (it is the
  /// conventional observation point). Deterministic in `rng`.
  static FaultScript Sample(Rng* rng, size_t n_hosts, TimePoint start,
                            TimePoint end);
};

}  // namespace testkit
}  // namespace pier

#endif  // PIER_TESTKIT_FAULT_SCRIPT_H_
