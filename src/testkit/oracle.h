// Answer oracle: centrally evaluates a distributed query plan over the live
// nodes' data and scores the distributed answer against it.
//
// PIER's relaxed-consistency contract is "best effort over the data
// reachable in the window", so correctness under faults is a *degree*, not
// a boolean. The oracle makes that degree measurable: it snapshots every
// alive node's local store (deduplicating replicas by DHT key), runs the
// same bound opgraph through the local exec operators in one process — no
// network, no loss — and reports recall/precision of the distributed rows
// against that ground truth. Scenario floors then assert "a query issued
// after the heal recovers >= 90% of the reachable answer", which is the
// acceptance bar PIQL-style success-tolerant systems need.
//
// Limitation: recursive closure graphs (kRecurse) are not evaluated —
// their hop-annotated output depends on expansion order. Scenarios score
// non-recursive queries.

#ifndef PIER_TESTKIT_ORACLE_H_
#define PIER_TESTKIT_ORACLE_H_

#include <vector>

#include "catalog/tuple.h"
#include "common/result.h"
#include "core/network.h"
#include "query/plan.h"

namespace pier {
namespace testkit {

/// Multiset agreement between the distributed answer and the oracle's.
struct OracleScore {
  size_t oracle_rows = 0;
  size_t answer_rows = 0;
  size_t matched = 0;
  /// matched / oracle_rows (1.0 when the oracle is empty).
  double recall = 1.0;
  /// matched / answer_rows (1.0 when the answer is empty).
  double precision = 1.0;

  std::string ToString() const;
};

/// Evaluates `plan`'s opgraph centrally over the current live data of
/// `net`'s alive nodes. The plan must already be planned/bound (the same
/// object handed to QueryEngine::Execute). Fails on recursive graphs and
/// on undecodable stored tuples.
Result<std::vector<catalog::Tuple>> OracleEvaluate(core::PierNetwork& net,
                                                   const query::QueryPlan& plan);

/// Multiset recall/precision of `answer` against `oracle`.
OracleScore ScoreAnswer(const std::vector<catalog::Tuple>& oracle,
                        const std::vector<catalog::Tuple>& answer);

}  // namespace testkit
}  // namespace pier

#endif  // PIER_TESTKIT_ORACLE_H_
