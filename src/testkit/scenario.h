// Scenario: the declarative fault-injection test harness.
//
// A scenario is "N nodes on an overlay, some tables and rows, a fault
// script, an optional churn profile, some queries with answer-quality
// floors, and a set of invariant checkers". Run() executes the whole thing
// deterministically from one seed:
//
//   Scenario s(/*seed=*/42);
//   s.WithNodes(12)
//    .WithTable(AlertsTable())
//    .PublishRows("alerts", rows)
//    .WithFaults(script)                  // or .WithChurn(churn_opts)
//    .AddQuery({.sql = "SELECT ...", .issue_at = Seconds(200),
//               .min_recall = 0.9})
//    .WithDefaultCheckers();
//   ScenarioReport report = s.Run();
//   ASSERT_TRUE(report.ok()) << report.ToString();
//
// Replay guarantee: two Run()s of identically-built scenarios produce
// byte-identical event traces (equal Network trace digests) — asserted by
// the fuzzer, relied on by everyone debugging a failing seed. Everything
// stochastic forks off the scenario seed; Run() never reads ambient state.

#ifndef PIER_TESTKIT_SCENARIO_H_
#define PIER_TESTKIT_SCENARIO_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/table_def.h"
#include "core/network.h"
#include "sim/churn.h"
#include "testkit/fault_script.h"
#include "testkit/invariants.h"
#include "testkit/oracle.h"

namespace pier {
namespace testkit {

/// One query the scenario issues and (optionally) scores.
struct QuerySpec {
  std::string sql;
  /// Virtual time to issue at (after boot; the harness clamps to post-boot).
  TimePoint issue_at = 0;
  /// Node index issuing the query.
  size_t origin = 0;
  /// Extra virtual time to wait for the answer; 0 = engine result_wait + 5s.
  Duration wait = 0;
  /// Oracle floors; < 0 = don't assert (the query still runs and scores).
  double min_recall = -1.0;
  double min_precision = -1.0;
  /// > 0: the origin cancels this query this long after issuing it.
  Duration cancel_after = 0;
  /// > 0: per-query deadline (overrides EngineOptions::query_deadline).
  Duration deadline = 0;
};

/// Everything a run produced (checkers already applied).
struct ScenarioReport {
  uint64_t seed = 0;
  /// Network event-trace digest — equal across replays of the same seed.
  uint64_t trace_digest = 0;
  FaultScript script;
  std::vector<QueryOutcome> queries;
  /// "checker-name: message" per violated invariant.
  std::vector<std::string> violations;
  size_t nodes_booted = 0;
  uint64_t churn_transitions = 0;
  /// Packets the fault plane actually dropped/duplicated — scenarios assert
  /// these are nonzero so a silently misconfigured script can't pass.
  uint64_t messages_faulted = 0;
  uint64_t messages_duplicated = 0;
  /// Chord partition-heal adoptions observed across nodes (0 on one-hop).
  uint64_t rejoin_merges = 0;

  bool ok() const { return violations.empty(); }
  /// Violations plus the replay recipe (seed + fault script).
  std::string ToString() const;
};

class Scenario {
 public:
  explicit Scenario(uint64_t seed);

  // -- topology ---------------------------------------------------------------
  Scenario& WithNodes(size_t n);
  Scenario& WithRouter(core::RouterKind kind);
  /// Direct access to the deployment options (network model, engine knobs).
  core::PierNetworkOptions& options() { return options_; }
  /// Boot settle time; default 60s Chord / 8s one-hop.
  Scenario& WithBootSettle(Duration settle);

  // -- workload ---------------------------------------------------------------
  Scenario& WithTable(catalog::TableDef def);
  /// Publishes rows round-robin across nodes right after boot.
  Scenario& PublishRows(std::string table, std::vector<catalog::Tuple> rows);
  Scenario& AddQuery(QuerySpec spec);

  // -- adversity --------------------------------------------------------------
  Scenario& WithFaults(FaultScript script);
  Scenario& WithChurn(sim::ChurnOptions churn);
  /// Arbitrary scripted action (crash node 3 at t, etc.), run at `when`.
  Scenario& At(TimePoint when, std::function<void(core::PierNetwork&)> fn);

  // -- invariants -------------------------------------------------------------
  Scenario& WithChecker(std::unique_ptr<InvariantChecker> checker);
  Scenario& WithDefaultCheckers();
  /// Post-heal stabilization window before checkers run; default 30s.
  Scenario& WithHealSettle(Duration settle);

  /// Executes the scenario once. Reentrant: a fresh equivalent Scenario
  /// replays identically.
  ScenarioReport Run();

 private:
  uint64_t seed_;
  core::PierNetworkOptions options_;
  size_t n_nodes_ = 8;
  Duration boot_settle_ = -1;  // -1 = router default
  std::vector<catalog::TableDef> tables_;
  std::vector<std::pair<std::string, std::vector<catalog::Tuple>>> rows_;
  std::vector<QuerySpec> queries_;
  FaultScript script_;
  bool churn_enabled_ = false;
  sim::ChurnOptions churn_;
  std::vector<std::pair<TimePoint, std::function<void(core::PierNetwork&)>>>
      actions_;
  std::vector<std::unique_ptr<InvariantChecker>> checkers_;
  Duration heal_settle_ = Seconds(30);
};

}  // namespace testkit
}  // namespace pier

#endif  // PIER_TESTKIT_SCENARIO_H_
