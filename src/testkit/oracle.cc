#include "testkit/oracle.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "exec/operators.h"

namespace pier {
namespace testkit {

using catalog::Tuple;
using query::OpGraph;
using query::OpNode;
using query::OpType;

namespace {

/// Snapshot of one relation: the union of every alive node's *readable*
/// local slice — the same primary-or-failed-over-replica rule the scan
/// stages apply, so the oracle is exactly "a lossless execution of the
/// system's own read semantics". Deduplicated by (resource, instance) for
/// the transient windows where two nodes both believe they own a key.
std::vector<Tuple> CollectTable(core::PierNetwork& net,
                                const query::OpNode& scan) {
  std::set<std::pair<std::string, uint64_t>> seen;
  std::vector<Tuple> rows;
  for (size_t i = 0; i < net.size(); ++i) {
    core::PierNode* node = net.node(i);
    if (!node->alive()) continue;
    node->dht()->ForEachLocalReadable(
        scan.table, [&](const dht::StoredItem& item) {
          if (seen.insert({item.key.resource, item.key.instance}).second) {
            Tuple t;
            // Mirror ScanStage's arity filter: a stored blob that decodes
            // to the wrong width is dropped by the system and must not
            // inflate the ground truth either.
            if (catalog::TupleFromBytes(item.value, &t).ok() &&
                t.size() == scan.schema.num_columns()) {
              rows.push_back(std::move(t));
            }
          }
          return true;
        });
  }
  return rows;
}

std::vector<Tuple> RunGroupBy(const std::vector<Tuple>& input,
                              const std::vector<int>& group_cols,
                              const std::vector<exec::AggSpec>& aggs,
                              exec::AggPhase phase) {
  exec::GroupByOp gb(group_cols, aggs, phase);
  std::vector<Tuple> out;
  exec::FnSink sink([&out](const Tuple& t) { out.push_back(t); });
  gb.AddOutput(&sink);
  for (const Tuple& t : input) gb.Push(t, 0);
  gb.FlushAndReset();
  return out;
}

}  // namespace

Result<std::vector<Tuple>> OracleEvaluate(core::PierNetwork& net,
                                          const query::QueryPlan& plan) {
  query::QueryPlan bound = plan;
  bound.EnsureGraph();
  const OpGraph& g = bound.graph;
  PIER_RETURN_IF_ERROR(g.Validate());
  if (g.Has(OpType::kRecurse)) {
    return Status::NotSupported("oracle: recursive graphs are not scored");
  }
  if (bound.window > 0) {
    // Windowed scans filter on per-copy arrival time (stored_at), which
    // differs across replicas and nodes — there is no single central
    // ground truth to score against.
    return Status::NotSupported("oracle: windowed scans are not scored");
  }

  // Materialize each node's output in topological (storage) order. The
  // whole evaluation is single-process: the answer the network *should*
  // converge to if no message were ever lost.
  std::vector<std::vector<Tuple>> out(g.nodes.size());
  for (size_t id = 0; id < g.nodes.size(); ++id) {
    const OpNode& node = g.nodes[id];
    switch (node.type) {
      case OpType::kScan:
        out[id] = CollectTable(net, node);
        break;
      case OpType::kIndexScan: {
        // Ground truth for an index scan: the same readable base slices a
        // broadcast scan would read, restricted to the node's closed value
        // range. The distributed path reads a SUPERSET of this range from
        // trie leaves and re-filters, and the exact-predicate kFilter that
        // always follows makes both sides converge to identical rows.
        std::vector<Tuple> rows = CollectTable(net, node);
        for (const Tuple& t : rows) {
          if (static_cast<size_t>(node.index_col) >= t.size()) continue;
          const Value& v = t[static_cast<size_t>(node.index_col)];
          if (v.is_null()) continue;  // range predicates never match NULL
          if (!node.index_lo.is_null() && v.Compare(node.index_lo) < 0) {
            continue;
          }
          if (!node.index_hi.is_null() && v.Compare(node.index_hi) > 0) {
            continue;
          }
          out[id].push_back(t);
        }
        break;
      }
      case OpType::kFilter: {
        for (const Tuple& t : out[node.inputs[0]]) {
          bool pass = false;
          if (node.predicate != nullptr &&
              exec::EvalPredicate(*node.predicate, t, &pass).ok() && pass) {
            out[id].push_back(t);
          }
        }
        break;
      }
      case OpType::kProject: {
        for (const Tuple& t : out[node.inputs[0]]) {
          Tuple projected;
          projected.reserve(node.exprs.size());
          bool ok = true;
          for (const exec::ExprPtr& e : node.exprs) {
            Value v;
            if (!e->Eval(t, &v).ok()) {
              ok = false;
              break;
            }
            projected.push_back(std::move(v));
          }
          if (ok) out[id].push_back(std::move(projected));
        }
        break;
      }
      case OpType::kJoin: {
        exec::SymmetricHashJoinOp join(node.left_keys, node.right_keys,
                                       /*residual=*/nullptr);
        exec::FnSink sink(
            [&out, id](const Tuple& t) { out[id].push_back(t); });
        join.AddOutput(&sink);
        for (const Tuple& t : out[node.inputs[0]]) join.Push(t, 0);
        for (const Tuple& t : out[node.inputs[1]]) join.Push(t, 1);
        break;
      }
      case OpType::kPartialAgg:
        out[id] = RunGroupBy(out[node.inputs[0]], node.group_cols, node.aggs,
                             exec::AggPhase::kPartial);
        break;
      case OpType::kFinalAgg: {
        // Mirrors the origin: partial states merge with kFinal; raw rows
        // (join output shipped straight to the origin) aggregate complete.
        bool from_partials =
            g.nodes[node.inputs[0]].type == OpType::kPartialAgg;
        out[id] = RunGroupBy(out[node.inputs[0]], node.group_cols, node.aggs,
                             from_partials ? exec::AggPhase::kFinal
                                           : exec::AggPhase::kComplete);
        // SQL scalar-aggregate semantics: no groups + no input still yields
        // one identity row (COUNT = 0, SUM = NULL, ...).
        if (node.group_cols.empty() && out[id].empty()) {
          Tuple identity;
          for (const exec::AggSpec& spec : node.aggs) {
            Value v1, v2;
            exec::AggInit(spec, &v1, &v2);
            identity.push_back(exec::AggFinalize(spec, v1, v2));
          }
          out[id].push_back(std::move(identity));
        }
        if (node.having != nullptr) {
          std::vector<Tuple> kept;
          for (const Tuple& t : out[id]) {
            bool pass = false;
            if (exec::EvalPredicate(*node.having, t, &pass).ok() && pass) {
              kept.push_back(t);
            }
          }
          out[id] = std::move(kept);
        }
        break;
      }
      case OpType::kCollect: {
        std::vector<Tuple> rows = out[node.inputs[0]];
        bool aggregated = g.nodes[node.inputs[0]].type == OpType::kFinalAgg;
        if (aggregated && !node.final_projection.empty()) {
          for (Tuple& t : rows) {
            Tuple permuted;
            permuted.reserve(node.final_projection.size());
            for (int c : node.final_projection) {
              permuted.push_back(c >= 0 && static_cast<size_t>(c) < t.size()
                                     ? t[c]
                                     : Value::Null());
            }
            t = std::move(permuted);
          }
        }
        if (!aggregated && node.distinct) {
          std::vector<Tuple> unique;
          exec::DistinctOp distinct;
          exec::FnSink sink(
              [&unique](const Tuple& t) { unique.push_back(t); });
          distinct.AddOutput(&sink);
          for (const Tuple& t : rows) distinct.Push(t, 0);
          rows = std::move(unique);
        }
        if (node.order_col >= 0) {
          size_t k = node.limit >= 0 ? static_cast<size_t>(node.limit)
                                     : rows.size();
          exec::TopKOp topk(node.order_col, node.order_desc, k);
          std::vector<Tuple> ordered;
          exec::FnSink sink(
              [&ordered](const Tuple& t) { ordered.push_back(t); });
          topk.AddOutput(&sink);
          for (const Tuple& t : rows) topk.Push(t, 0);
          topk.FlushAndReset();
          rows = std::move(ordered);
        } else if (node.limit >= 0 &&
                   rows.size() > static_cast<size_t>(node.limit)) {
          rows.resize(static_cast<size_t>(node.limit));
        }
        out[id] = std::move(rows);
        break;
      }
      case OpType::kRecurse:
        return Status::NotSupported("oracle: recursive graphs");
    }
  }
  return std::move(out.back());
}

OracleScore ScoreAnswer(const std::vector<Tuple>& oracle,
                        const std::vector<Tuple>& answer) {
  OracleScore score;
  score.oracle_rows = oracle.size();
  score.answer_rows = answer.size();
  std::map<std::string, size_t> counts;
  for (const Tuple& t : oracle) ++counts[catalog::TupleToBytes(t)];
  for (const Tuple& t : answer) {
    auto it = counts.find(catalog::TupleToBytes(t));
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++score.matched;
    }
  }
  score.recall = oracle.empty()
                     ? 1.0
                     : static_cast<double>(score.matched) /
                           static_cast<double>(oracle.size());
  score.precision = answer.empty()
                        ? 1.0
                        : static_cast<double>(score.matched) /
                              static_cast<double>(answer.size());
  return score;
}

std::string OracleScore::ToString() const {
  char buf[128];
  snprintf(buf, sizeof(buf),
           "oracle=%zu answer=%zu matched=%zu recall=%.3f precision=%.3f",
           oracle_rows, answer_rows, matched, recall, precision);
  return buf;
}

}  // namespace testkit
}  // namespace pier
