#include "testkit/scenario.h"

#include <algorithm>

#include "planner/planner.h"
#include "sim/payload.h"
#include "sql/parser.h"

namespace pier {
namespace testkit {

Scenario::Scenario(uint64_t seed) : seed_(seed) {
  options_.seed = seed;
  // Faster answer windows than the library defaults: scenarios issue
  // several queries per run and tier-1 wall-clock matters.
  options_.node.engine.result_wait = Seconds(8);
  options_.node.engine.agg_hold_base = Millis(400);
}

Scenario& Scenario::WithNodes(size_t n) {
  n_nodes_ = n;
  return *this;
}

Scenario& Scenario::WithRouter(core::RouterKind kind) {
  options_.node.router_kind = kind;
  return *this;
}

Scenario& Scenario::WithBootSettle(Duration settle) {
  boot_settle_ = settle;
  return *this;
}

Scenario& Scenario::WithTable(catalog::TableDef def) {
  tables_.push_back(std::move(def));
  return *this;
}

Scenario& Scenario::PublishRows(std::string table,
                                std::vector<catalog::Tuple> rows) {
  rows_.emplace_back(std::move(table), std::move(rows));
  return *this;
}

Scenario& Scenario::AddQuery(QuerySpec spec) {
  queries_.push_back(std::move(spec));
  return *this;
}

Scenario& Scenario::WithFaults(FaultScript script) {
  script_ = std::move(script);
  return *this;
}

Scenario& Scenario::WithChurn(sim::ChurnOptions churn) {
  churn_enabled_ = true;
  churn_ = churn;
  return *this;
}

Scenario& Scenario::At(TimePoint when,
                       std::function<void(core::PierNetwork&)> fn) {
  actions_.emplace_back(when, std::move(fn));
  return *this;
}

Scenario& Scenario::WithChecker(std::unique_ptr<InvariantChecker> checker) {
  checkers_.push_back(std::move(checker));
  return *this;
}

Scenario& Scenario::WithDefaultCheckers() {
  for (auto& c : DefaultCheckers()) checkers_.push_back(std::move(c));
  return *this;
}

Scenario& Scenario::WithHealSettle(Duration settle) {
  heal_settle_ = settle;
  return *this;
}

ScenarioReport Scenario::Run() {
  ScenarioReport report;
  report.seed = seed_;
  report.script = script_;
  const int64_t payload_before =
      static_cast<int64_t>(sim::Payload::buffers_live());

  {
    core::PierNetwork net(n_nodes_, options_);
    sim::FaultPlane plane(net.sim()->rng().Fork(0x6661756c74ull));  // "fault"
    net.net()->SetFaultPlane(&plane);
    script_.Apply(&plane);

    for (auto& [when, fn] : actions_) {
      net.sim()->ScheduleAt(when, [&net, fn = fn] { fn(net); });
    }

    const bool chord = options_.node.router_kind == core::RouterKind::kChord;
    Duration settle = boot_settle_ >= 0 ? boot_settle_
                                        : (chord ? Seconds(60) : Seconds(8));
    report.nodes_booted = net.Boot(settle);

    for (const catalog::TableDef& def : tables_) {
      for (size_t i = 0; i < net.size(); ++i) {
        net.node(i)->catalog()->Register(def);
      }
    }
    for (auto& [table, rows] : rows_) {
      for (size_t i = 0; i < rows.size(); ++i) {
        core::PierNode* node = net.node(i % net.size());
        if (!node->alive()) node = net.node(0);
        Status s = node->query_engine()->Publish(table, rows[i]);
        if (!s.ok()) {
          report.violations.push_back("publish: " + s.ToString());
        }
      }
    }
    net.RunFor(Seconds(5));  // let puts land before adversity ramps up

    if (churn_enabled_) net.EnableChurn(churn_);

    // Issue queries in time order; evaluate the oracle against the live
    // data snapshot at issue time (the answer the network could know).
    // Queries whose [issue_at, issue_at + wait) windows overlap run
    // CONCURRENTLY: the harness does not block on one answer before
    // issuing the next spec, it only drains all outstanding windows after
    // the last issue. Specs with disjoint windows behave exactly as a
    // serial harness would.
    std::vector<QuerySpec> specs = queries_;
    std::stable_sort(specs.begin(), specs.end(),
                     [](const QuerySpec& a, const QuerySpec& b) {
                       return a.issue_at < b.issue_at;
                     });
    // Fold the script's query-lifecycle directives into the specs they
    // target. A cancelled or deadlined query legitimately answers with less
    // than the oracle, so its floors are dropped — the hygiene/teardown
    // invariants are what these directives test.
    std::vector<TimePoint> cancel_at(specs.size(), 0);
    if (!specs.empty()) {
      for (const FaultDirective& d : script_.directives) {
        if (d.kind != FaultDirective::Kind::kCancelQuery &&
            d.kind != FaultDirective::Kind::kQueryDeadline) {
          continue;
        }
        if (d.group_a.empty()) continue;
        size_t slot = d.group_a[0] % specs.size();
        if (d.kind == FaultDirective::Kind::kCancelQuery) {
          cancel_at[slot] = d.from;
        } else {
          specs[slot].deadline = d.magnitude;
        }
        specs[slot].min_recall = -1.0;
        specs[slot].min_precision = -1.0;
      }
    }
    report.queries.reserve(specs.size());
    TimePoint windows_close = 0;  // latest [issue, issue+wait) end so far
    for (size_t spec_idx = 0; spec_idx < specs.size(); ++spec_idx) {
      const QuerySpec& spec = specs[spec_idx];
      if (spec.issue_at > net.sim()->now()) {
        net.sim()->RunUntil(spec.issue_at);
      }
      QueryOutcome outcome;
      outcome.sql = spec.sql;
      outcome.origin = spec.origin;
      outcome.min_recall = spec.min_recall;
      outcome.min_precision = spec.min_precision;

      core::PierNode* origin = net.node(spec.origin % net.size());
      auto parsed = sql::Parse(spec.sql);
      if (!parsed.ok()) {
        report.violations.push_back("parse \"" + spec.sql +
                                    "\": " + parsed.status().ToString());
        report.queries.push_back(std::move(outcome));
        continue;
      }
      auto plan = planner::PlanStatement(parsed.value(),
                                         *origin->catalog(), {});
      if (!plan.ok()) {
        report.violations.push_back("plan \"" + spec.sql +
                                    "\": " + plan.status().ToString());
        report.queries.push_back(std::move(outcome));
        continue;
      }
      auto oracle_rows = OracleEvaluate(net, plan.value());
      if (oracle_rows.ok()) {
        outcome.oracle_ok = true;
        outcome.oracle_rows = std::move(oracle_rows.value());
      } else if (spec.min_recall >= 0 || spec.min_precision >= 0) {
        report.violations.push_back("oracle \"" + spec.sql + "\": " +
                                    oracle_rows.status().ToString());
      }

      size_t slot = report.queries.size();
      report.queries.push_back(std::move(outcome));
      // Scoring happens inside the callback: a batch that lands after this
      // query's wait window (during a later query's window or the heal
      // settle) must still be scored, or its floor check passes vacuously
      // on the default-constructed (recall=1) score.
      query::QueryPlan issued_plan = plan.value();
      if (spec.deadline > 0) issued_plan.deadline = spec.deadline;
      auto exec = origin->query_engine()->Execute(
          std::move(issued_plan),
          [&report, slot](const query::ResultBatch& b) {
            QueryOutcome& q = report.queries[slot];
            q.completed = true;
            q.batch = b;
            q.score = ScoreAnswer(q.oracle_rows, b.rows);
          });
      if (!exec.ok()) {
        report.violations.push_back("execute \"" + spec.sql + "\": " +
                                    exec.status().ToString());
        continue;
      }
      // Mid-query cancellation, from the spec or a lifecycle directive
      // (whichever is earliest but still in the future).
      TimePoint cancel_when = 0;
      if (spec.cancel_after > 0) {
        cancel_when = net.sim()->now() + spec.cancel_after;
      }
      if (cancel_at[spec_idx] > 0 &&
          (cancel_when == 0 || cancel_at[spec_idx] < cancel_when)) {
        cancel_when = cancel_at[spec_idx];
      }
      if (cancel_when > 0) {
        cancel_when = std::max(cancel_when, net.sim()->now() + Millis(1));
        uint64_t qid = exec.value();
        net.sim()->ScheduleAt(cancel_when, [&net, &spec, qid] {
          core::PierNode* n = net.node(spec.origin % net.size());
          if (n->alive()) n->query_engine()->Cancel(qid);
        });
      }
      Duration wait = spec.wait > 0
                          ? spec.wait
                          : options_.node.engine.result_wait + Seconds(5);
      windows_close = std::max(windows_close, net.sim()->now() + wait);
    }
    // Drain every outstanding answer window. Scoring happens inside the
    // result callbacks, so overlapped queries that finish out of issue
    // order are still scored against their own oracle snapshot.
    if (windows_close > net.sim()->now()) {
      net.sim()->RunUntil(windows_close);
    }

    // Let the fault script heal and the overlay restabilize, then check.
    TimePoint check_at = std::max(net.sim()->now(),
                                  script_.HealTime()) + heal_settle_;
    net.sim()->RunUntil(check_at);

    CheckContext ctx;
    ctx.net = &net;
    ctx.plane = &plane;
    ctx.queries = &report.queries;
    ctx.sweep_interval = options_.node.dht.sweep_interval;
    for (auto& checker : checkers_) {
      Status s = checker->Check(ctx);
      if (!s.ok()) {
        report.violations.push_back(checker->name() + ": " + s.ToString());
      }
    }

    report.trace_digest = net.net()->trace_digest();
    report.churn_transitions = net.churn_transitions();
    report.messages_faulted = net.net()->stats().messages_faulted;
    report.messages_duplicated = net.net()->stats().messages_duplicated;
    for (size_t i = 0; i < net.size(); ++i) {
      if (net.node(i)->alive() && net.node(i)->chord() != nullptr) {
        report.rejoin_merges += net.node(i)->chord()->stats().rejoin_merges;
      }
    }
    // The plane is declared after the network, so it is destroyed first:
    // detach it before leaving the scope.
    net.net()->SetFaultPlane(nullptr);
  }

  // Teardown-phase invariants: the network, its nodes, and every pending
  // event are gone; any surviving payload buffer is a leak.
  const int64_t payload_after =
      static_cast<int64_t>(sim::Payload::buffers_live());
  for (auto& checker : checkers_) {
    Status s = checker->CheckTeardown(payload_after - payload_before);
    if (!s.ok()) {
      report.violations.push_back(checker->name() + ": " + s.ToString());
    }
  }
  return report;
}

std::string ScenarioReport::ToString() const {
  std::string out = "scenario seed=" + std::to_string(seed) +
                    " trace=" + std::to_string(trace_digest) +
                    " booted=" + std::to_string(nodes_booted) + "\n";
  out += "fault script:\n" + script.ToString() + "\n";
  for (const QueryOutcome& q : queries) {
    out += "query \"" + q.sql + "\": " +
           (q.completed ? q.score.ToString() : std::string("NO ANSWER")) +
           "\n";
  }
  if (violations.empty()) {
    out += "all invariants held\n";
  } else {
    for (const std::string& v : violations) out += "VIOLATION " + v + "\n";
    out += "replay: rebuild the scenario with seed=" + std::to_string(seed) +
           " (fault script above)\n";
  }
  return out;
}

}  // namespace testkit
}  // namespace pier
