#include "testkit/fault_script.h"

#include <algorithm>

namespace pier {
namespace testkit {

namespace {

/// Draws a subset of [lo, n) of the given size, in index order.
std::vector<sim::HostId> SampleGroup(Rng* rng, size_t n, size_t lo,
                                     size_t want) {
  std::vector<sim::HostId> pool;
  for (size_t i = lo; i < n; ++i) pool.push_back(static_cast<sim::HostId>(i));
  // Partial Fisher-Yates: deterministic in the rng stream.
  for (size_t i = 0; i < want && i < pool.size(); ++i) {
    size_t j = i + static_cast<size_t>(rng->NextBelow(pool.size() - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(std::min(want, pool.size()));
  std::sort(pool.begin(), pool.end());
  return pool;
}

}  // namespace

const char* FaultKindName(FaultDirective::Kind k) {
  switch (k) {
    case FaultDirective::Kind::kPartition: return "partition";
    case FaultDirective::Kind::kAsymPartition: return "asym-partition";
    case FaultDirective::Kind::kLoss: return "loss";
    case FaultDirective::Kind::kDelaySpike: return "delay-spike";
    case FaultDirective::Kind::kDuplicate: return "duplicate";
    case FaultDirective::Kind::kReorder: return "reorder";
    case FaultDirective::Kind::kCancelQuery: return "cancel-query";
    case FaultDirective::Kind::kQueryDeadline: return "query-deadline";
  }
  return "?";
}

std::string FaultDirective::ToString() const {
  std::string out = std::string(FaultKindName(kind)) + " [" +
                    FormatDuration(from) + "," + FormatDuration(until) +
                    ") " + sim::FormatHostSet(group_a) +
                    (kind == Kind::kAsymPartition ? "->" : "<->") +
                    sim::FormatHostSet(group_b);
  if (probability > 0) out += " p=" + std::to_string(probability);
  if (magnitude > 0) out += " mag=" + FormatDuration(magnitude);
  return out;
}

void FaultScript::Apply(sim::FaultPlane* plane) const {
  for (const FaultDirective& d : directives) {
    switch (d.kind) {
      case FaultDirective::Kind::kPartition:
        plane->Partition(d.group_a, d.group_b, d.from, d.until,
                         /*bidirectional=*/true);
        break;
      case FaultDirective::Kind::kAsymPartition:
        plane->Partition(d.group_a, d.group_b, d.from, d.until,
                         /*bidirectional=*/false);
        break;
      case FaultDirective::Kind::kLoss:
        plane->Loss(d.group_a, d.group_b, d.probability, d.from, d.until);
        break;
      case FaultDirective::Kind::kDelaySpike:
        plane->DelaySpike(d.group_a, d.group_b, d.magnitude, d.from, d.until);
        break;
      case FaultDirective::Kind::kDuplicate:
        plane->Duplicate(d.group_a, d.group_b, d.probability, d.from,
                         d.until);
        break;
      case FaultDirective::Kind::kReorder:
        plane->Reorder(d.group_a, d.group_b, d.magnitude, d.from, d.until);
        break;
      case FaultDirective::Kind::kCancelQuery:
      case FaultDirective::Kind::kQueryDeadline:
        break;  // lifecycle directives are the Scenario harness's to apply
    }
  }
}

TimePoint FaultScript::HealTime() const {
  TimePoint heal = 0;
  for (const FaultDirective& d : directives) heal = std::max(heal, d.until);
  return heal;
}

std::string FaultScript::ToString() const {
  if (directives.empty()) return "(no faults)";
  std::string out;
  for (size_t i = 0; i < directives.size(); ++i) {
    if (i > 0) out += "\n";
    out += "  #" + std::to_string(i) + " " + directives[i].ToString();
  }
  return out;
}

FaultScript FaultScript::Without(size_t i) const {
  FaultScript out = *this;
  if (i < out.directives.size()) {
    out.directives.erase(out.directives.begin() + static_cast<long>(i));
  }
  return out;
}

FaultScript FaultScript::Sample(Rng* rng, size_t n_hosts, TimePoint start,
                                TimePoint end) {
  FaultScript script;
  if (n_hosts < 3 || end <= start) return script;
  size_t count = 1 + static_cast<size_t>(rng->NextBelow(3));  // 1..3 faults
  for (size_t i = 0; i < count; ++i) {
    FaultDirective d;
    d.kind = static_cast<FaultDirective::Kind>(rng->NextBelow(6));
    Duration span = end - start;
    d.from = start + static_cast<Duration>(
                         rng->NextBelow(static_cast<uint64_t>(span / 2) + 1));
    Duration max_len = end - d.from;
    d.until = d.from + std::max<Duration>(
                           Seconds(5),
                           static_cast<Duration>(rng->NextBelow(
                               static_cast<uint64_t>(max_len))));
    if (d.until > end) d.until = end;
    // Minority group drawn from 1..n-1 (host 0 stays on the majority side,
    // so the observation point is never the isolated one).
    size_t minority =
        1 + static_cast<size_t>(rng->NextBelow((n_hosts - 1) / 2 + 1));
    d.group_a = SampleGroup(rng, n_hosts, /*lo=*/1, minority);
    // The other side is the complement, so intra-group traffic stays clean
    // (a partition separates groups; it does not take nodes offline).
    for (size_t h = 0; h < n_hosts; ++h) {
      if (std::find(d.group_a.begin(), d.group_a.end(),
                    static_cast<sim::HostId>(h)) == d.group_a.end()) {
        d.group_b.push_back(static_cast<sim::HostId>(h));
      }
    }
    switch (d.kind) {
      case FaultDirective::Kind::kLoss:
        d.probability = 0.05 + 0.45 * rng->NextDouble();
        break;
      case FaultDirective::Kind::kDuplicate:
        // Kept sub-critical-ish: every forwarded hop re-judges the packet,
        // and the per-rule duplicate budget bounds the worst case anyway.
        d.probability = 0.05 + 0.15 * rng->NextDouble();
        break;
      case FaultDirective::Kind::kDelaySpike:
        d.magnitude = Millis(50) + static_cast<Duration>(rng->NextBelow(
                                       static_cast<uint64_t>(Millis(400))));
        break;
      case FaultDirective::Kind::kReorder:
        d.magnitude = Millis(20) + static_cast<Duration>(rng->NextBelow(
                                       static_cast<uint64_t>(Millis(200))));
        break;
      default:
        break;
    }
    script.directives.push_back(std::move(d));
  }
  // Roughly a third of scripts also stress the query lifecycle: a mid-query
  // cancel or a tight deadline on one of the scenario's query slots. The
  // harness drops the oracle floors for the targeted slot (a cancelled
  // query legitimately answers with nothing) — the teardown and hygiene
  // invariants are what these directives hunt.
  if (rng->NextBelow(3) == 0) {
    FaultDirective d;
    bool cancel = rng->NextBelow(2) == 0;
    d.kind = cancel ? FaultDirective::Kind::kCancelQuery
                    : FaultDirective::Kind::kQueryDeadline;
    // Query slot (taken modulo the scenario's spec count by the harness).
    // Drawn from {1, 2}: scripts keep host 0 out of every group_a, and the
    // modulo still reaches both slots of a two-query scenario.
    d.group_a = {static_cast<sim::HostId>(1 + rng->NextBelow(2))};
    Duration span = end - start;
    d.from = start + static_cast<Duration>(rng->NextBelow(
                         static_cast<uint64_t>(span / 2) + 1));
    d.until = d.from;
    if (!cancel) {
      d.magnitude = Seconds(1) + static_cast<Duration>(rng->NextBelow(
                                     static_cast<uint64_t>(Seconds(6))));
    }
    script.directives.push_back(std::move(d));
  }
  return script;
}

}  // namespace testkit
}  // namespace pier
