// Invariant checkers: the properties a PIER deployment must recover after
// (or maintain through) injected faults and churn. The Scenario harness runs
// every attached checker once the fault script has healed and the overlay
// has been given a stabilization window, and again after teardown for
// lifetime invariants.
//
// Adding a checker: subclass InvariantChecker, implement name() and
// Check() (post-run, network alive) and/or CheckTeardown() (network
// destroyed, event queue drained). Return a non-OK Status with a
// human-readable message; the scenario attaches the seed and fault script
// so any violation is replayable. See docs/testing.md.

#ifndef PIER_TESTKIT_INVARIANTS_H_
#define PIER_TESTKIT_INVARIANTS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/network.h"
#include "sim/fault_plane.h"
#include "testkit/oracle.h"

namespace pier {
namespace testkit {

/// One scored query of a scenario run (filled by the Scenario harness).
struct QueryOutcome {
  std::string sql;
  size_t origin = 0;
  bool completed = false;  ///< the origin delivered a result batch
  bool oracle_ok = false;  ///< the central oracle produced a reference answer
  query::ResultBatch batch;
  std::vector<catalog::Tuple> oracle_rows;
  OracleScore score;
  /// Floors asserted by OracleFloorChecker; < 0 = not asserted.
  double min_recall = -1.0;
  double min_precision = -1.0;
};

/// Everything a post-run checker may inspect.
struct CheckContext {
  core::PierNetwork* net = nullptr;
  sim::FaultPlane* plane = nullptr;
  const std::vector<QueryOutcome>* queries = nullptr;
  /// The DHT sweep period configured for the run (expiry-lag bound).
  Duration sweep_interval = 0;
};

class InvariantChecker {
 public:
  virtual ~InvariantChecker() = default;
  virtual std::string name() const = 0;
  /// Post-run check, network alive and healed. Default: OK.
  virtual Status Check(const CheckContext& ctx) {
    (void)ctx;
    return Status::OK();
  }
  /// Post-teardown check (nodes destroyed, simulation drained).
  /// `live_payload_delta` = live payload buffers now minus the count before
  /// the network was built. Default: OK.
  virtual Status CheckTeardown(int64_t live_payload_delta) {
    (void)live_payload_delta;
    return Status::OK();
  }
};

/// After a heal + settle, every alive Chord node's successor/predecessor
/// must agree with the ring formed by the alive nodes, and its neighborhood
/// must have been stable for `stability_window`. No-op on one-hop overlays.
class RoutingConvergenceChecker : public InvariantChecker {
 public:
  explicit RoutingConvergenceChecker(Duration stability_window = Seconds(5))
      : stability_window_(stability_window) {}
  std::string name() const override { return "routing-convergence"; }
  Status Check(const CheckContext& ctx) override;

 private:
  Duration stability_window_;
};

/// Soft-state expiry: no stored item outlives its TTL past a bounded sweep
/// lag — neither in place (store scan) nor historically (the store's
/// max_sweep_lag counter).
class SoftStateExpiryChecker : public InvariantChecker {
 public:
  /// `slack` absorbs timer-scheduling quantization on top of one sweep
  /// period.
  explicit SoftStateExpiryChecker(Duration slack = Seconds(2))
      : slack_(slack) {}
  std::string name() const override { return "soft-state-expiry"; }
  Status Check(const CheckContext& ctx) override;

 private:
  Duration slack_;
};

/// Zero payload-buffer leaks: after teardown every ref-counted body buffer
/// created during the run must have been released (forwarding trees,
/// dropped packets, and crashed nodes included).
class PayloadLeakChecker : public InvariantChecker {
 public:
  std::string name() const override { return "payload-leak"; }
  Status CheckTeardown(int64_t live_payload_delta) override;
};

/// Answer-quality floors: every scored query must meet its configured
/// recall/precision minimums against the central oracle.
class OracleFloorChecker : public InvariantChecker {
 public:
  std::string name() const override { return "oracle-floor"; }
  Status Check(const CheckContext& ctx) override;
};

/// Completeness honesty: a result batch whose Completeness summary claims
/// `exact` while the central oracle sees missing rows is lying — the one
/// thing the accounting must never do. ("Degrade loudly, never silently.")
class CompletenessChecker : public InvariantChecker {
 public:
  std::string name() const override { return "completeness-honesty"; }
  Status Check(const CheckContext& ctx) override;
};

/// No namespace squatting: after cancel/deadline/heal has settled, no alive
/// node may hold live query-exchange state (`q<id>.…` namespaces) for a
/// query that is dead — locally torn down, or gone at its origin. Not part
/// of DefaultCheckers(): a scenario whose queries legitimately outlive the
/// check window (long continuous queries) attaches it deliberately.
class ExchangeHygieneChecker : public InvariantChecker {
 public:
  std::string name() const override { return "exchange-hygiene"; }
  Status Check(const CheckContext& ctx) override;
};

/// The default suite: routing convergence, soft-state expiry, payload
/// leaks, oracle floors, completeness honesty.
std::vector<std::unique_ptr<InvariantChecker>> DefaultCheckers();

}  // namespace testkit
}  // namespace pier

#endif  // PIER_TESTKIT_INVARIANTS_H_
