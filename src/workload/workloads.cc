#include "workload/workloads.h"

#include <cmath>

namespace pier {
namespace workload {

using catalog::Schema;
using catalog::TableDef;
using catalog::Tuple;

void RegisterTableEverywhere(core::PierNetwork* net, const TableDef& def) {
  for (size_t i = 0; i < net->size(); ++i) {
    PIER_CHECK(net->node(i)->catalog()->Register(def).ok());
  }
}

// ---------------------------------------------------------------------------
// Snort
// ---------------------------------------------------------------------------

const std::vector<SnortRule>& PaperTable1Rules() {
  static const std::vector<SnortRule> kRules = {
      {1322, "BAD-TRAFFIC bad frag bits", 465770},
      {2189, "BAD TRAFFIC IP Proto 103 (PIM)", 123558},
      {1923, "RPC portmap proxy attempt UDP", 31491},
      {1444, "TFTP Get", 21944},
      {1917, "SCAN UPnP service discover attempt", 17565},
      {1384, "MISC UPnP malformed advertisement", 14052},
      {1321, "BAD-TRAFFIC 0 ttl", 10115},
      {1852, "WEB-MISC robots.txt access", 10094},
      {1411, "SNMP public access udp", 7778},
      {895, "WEB-CGI redirect access", 7277},
  };
  return kRules;
}

TableDef SnortAlertsTable() {
  TableDef def;
  def.name = "snort_alerts";
  def.schema = Schema("snort_alerts", {{"rule_id", ValueType::kInt64},
                                       {"descr", ValueType::kString},
                                       {"hits", ValueType::kInt64}});
  def.partition_cols = {0};
  def.ttl = Seconds(3600);
  return def;
}

size_t PublishSnortAlerts(core::PierNetwork* net, uint64_t seed,
                          int decoy_rules) {
  RegisterTableEverywhere(net, SnortAlertsTable());
  Rng rng(seed);
  std::vector<SnortRule> rules = PaperTable1Rules();
  // Decoys: volumes safely below the paper's #10 (7,277 hits).
  for (int d = 0; d < decoy_rules; ++d) {
    static const char* kDecoyNames[] = {
        "ICMP PING NMAP",          "WEB-IIS cmd.exe access",
        "P2P Gnutella client req", "SCAN SOCKS proxy attempt",
        "WEB-PHP admin access",    "FTP SITE overflow attempt",
        "DNS zone transfer TCP",   "SHELLCODE x86 NOOP"};
    rules.push_back(SnortRule{3000 + d,
                              kDecoyNames[d % 8],
                              500 + static_cast<int64_t>(rng.NextBelow(5000))});
  }
  size_t n = net->size();
  size_t published = 0;
  for (const SnortRule& rule : rules) {
    // Multinomial split preserving the exact total: random weights, floor
    // shares, then hand out the remainder.
    std::vector<double> weights(n);
    double weight_sum = 0;
    for (size_t i = 0; i < n; ++i) {
      weights[i] = 0.2 + rng.NextDouble();
      weight_sum += weights[i];
    }
    std::vector<int64_t> share(n);
    int64_t assigned = 0;
    for (size_t i = 0; i < n; ++i) {
      share[i] = static_cast<int64_t>(
          static_cast<double>(rule.total_hits) * weights[i] / weight_sum);
      assigned += share[i];
    }
    int64_t remainder = rule.total_hits - assigned;
    for (size_t i = 0; remainder > 0; i = (i + 1) % n) {
      ++share[i];
      --remainder;
    }
    for (size_t i = 0; i < n; ++i) {
      if (share[i] == 0) continue;
      Tuple t{Value::Int64(rule.rule_id), Value::String(rule.description),
              Value::Int64(share[i])};
      if (net->node(i)->alive() &&
          net->node(i)->query_engine()->Publish("snort_alerts", t).ok()) {
        ++published;
      }
    }
  }
  return published;
}

// ---------------------------------------------------------------------------
// Traffic
// ---------------------------------------------------------------------------

TableDef NodeStatsTable() {
  TableDef def;
  def.name = "node_stats";
  def.schema = Schema("node_stats", {{"node_id", ValueType::kInt64},
                                     {"out_kbps", ValueType::kDouble}});
  def.partition_cols = {0};
  def.ttl = Seconds(25);
  return def;
}

TrafficWorkload::TrafficWorkload(core::PierNetwork* net,
                                 TrafficOptions options, uint64_t seed)
    : net_(net), options_(options), rng_(seed) {
  base_.resize(net->size());
  flaky_.resize(net->size());
  last_noise_.assign(net->size(), 1.0);
  for (size_t i = 0; i < net->size(); ++i) {
    base_[i] = options_.base_kbps * rng_.UniformDouble(0.5, 1.5);
    flaky_[i] = rng_.Chance(options_.flaky_fraction);
  }
  for (size_t i = 0; i < net->size(); ++i) {
    tasks_.push_back(std::make_unique<sim::PeriodicTask>());
  }
}

void TrafficWorkload::Start() {
  TableDef def = NodeStatsTable();
  def.ttl = options_.ttl;
  RegisterTableEverywhere(net_, def);
  for (size_t i = 0; i < net_->size(); ++i) {
    // Phase-shift publishers so they do not synchronize.
    Duration phase = static_cast<Duration>(
        rng_.NextBelow(static_cast<uint64_t>(options_.publish_period)));
    tasks_[i]->Start(net_->sim(), phase, options_.publish_period,
                     [this, i] { PublishOne(i); });
  }
}

void TrafficWorkload::Stop() {
  for (auto& t : tasks_) t->Stop();
}

double TrafficWorkload::NodeRateKbps(size_t i) const {
  double t = ToSecondsF(net_->sim()->now());
  double period = ToSecondsF(options_.drift_period);
  double drift = 1.0 + options_.drift_fraction *
                           std::sin(2.0 * M_PI * t / period +
                                    static_cast<double>(i));
  return base_[i] * drift * last_noise_[i];
}

double TrafficWorkload::OracleSumKbps() const {
  double sum = 0;
  for (size_t i = 0; i < net_->size(); ++i) {
    if (net_->node(i)->alive()) sum += NodeRateKbps(i);
  }
  return sum;
}

void TrafficWorkload::PublishOne(size_t i) {
  if (!net_->node(i)->alive()) return;
  if (flaky_[i] && rng_.Chance(options_.flaky_skip_probability)) return;
  last_noise_[i] =
      std::max(0.1, rng_.Gaussian(1.0, options_.noise_fraction));
  Tuple t{Value::Int64(static_cast<int64_t>(i)),
          Value::Double(NodeRateKbps(i))};
  // Stable instance: each publish renews the node's single stats row.
  (void)net_->node(i)->query_engine()->PublishVersioned("node_stats", t,
                                                        /*instance=*/1);
}

// ---------------------------------------------------------------------------
// Filesharing
// ---------------------------------------------------------------------------

TableDef FileIndexTable() {
  TableDef def;
  def.name = "file_index";
  def.schema = Schema("file_index", {{"keyword", ValueType::kString},
                                     {"file_id", ValueType::kInt64},
                                     {"filename", ValueType::kString}});
  def.partition_cols = {0};
  def.ttl = Seconds(3600);
  return def;
}

std::string KeywordName(size_t k) {
  static const char* kWords[] = {
      "music",  "video",   "linux",   "kernel", "paper",  "sigmod", "dht",
      "chord",  "pier",    "planet",  "lab",    "query",  "join",   "index",
      "stream", "network", "monitor", "trace",  "packet", "router"};
  size_t base = sizeof(kWords) / sizeof(kWords[0]);
  if (k < base) return kWords[k];
  return std::string(kWords[k % base]) + "-" + std::to_string(k / base);
}

size_t PublishFileIndex(core::PierNetwork* net, FilesharingOptions options,
                        uint64_t seed) {
  RegisterTableEverywhere(net, FileIndexTable());
  Rng rng(seed);
  ZipfDistribution zipf(options.vocabulary, options.zipf_s);
  size_t postings = 0;
  for (size_t f = 0; f < options.num_files; ++f) {
    size_t owner = rng.NextBelow(net->size());
    if (!net->node(owner)->alive()) continue;
    std::string filename = "file-" + std::to_string(f) + ".dat";
    int nkw = static_cast<int>(rng.UniformInt(options.keywords_per_file_min,
                                              options.keywords_per_file_max));
    std::vector<size_t> chosen;
    while (static_cast<int>(chosen.size()) < nkw) {
      size_t k = zipf.Sample(&rng) - 1;
      bool dup = false;
      for (size_t c : chosen) dup = dup || c == k;
      if (!dup) chosen.push_back(k);
    }
    for (size_t k : chosen) {
      Tuple t{Value::String(KeywordName(k)),
              Value::Int64(static_cast<int64_t>(f)),
              Value::String(filename)};
      if (net->node(owner)->query_engine()->Publish("file_index", t).ok()) {
        ++postings;
      }
    }
  }
  return postings;
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

TableDef LinksTable() {
  TableDef def;
  def.name = "links";
  def.schema = Schema("links", {{"src", ValueType::kString},
                                {"dst", ValueType::kString}});
  def.partition_cols = {0};
  def.ttl = Seconds(3600);
  return def;
}

std::vector<std::pair<std::string, std::string>> PublishTopology(
    core::PierNetwork* net, TopologyOptions options, uint64_t seed) {
  RegisterTableEverywhere(net, LinksTable());
  Rng rng(seed);
  std::vector<std::pair<std::string, std::string>> edges;
  auto vertex = [](size_t v) { return "v" + std::to_string(v); };
  for (size_t v = 0; v < options.num_vertices; ++v) {
    for (int d = 0; d < options.out_degree; ++d) {
      size_t to = rng.NextBelow(options.num_vertices);
      if (to == v) continue;
      bool dup = false;
      for (auto& e : edges) {
        dup = dup || (e.first == vertex(v) && e.second == vertex(to));
      }
      if (dup) continue;
      edges.push_back({vertex(v), vertex(to)});
      size_t publisher = rng.NextBelow(net->size());
      if (!net->node(publisher)->alive()) continue;
      Tuple t{Value::String(vertex(v)), Value::String(vertex(to))};
      (void)net->node(publisher)->query_engine()->Publish("links", t);
    }
  }
  return edges;
}

}  // namespace workload
}  // namespace pier
