// Workload generators for the paper's experiments (see DESIGN.md,
// substitutions table):
//
//  - SnortWorkload: synthetic per-node intrusion alert counts calibrated so
//    the network-wide totals equal the paper's Table 1 exactly;
//  - TrafficWorkload: per-node outbound data rates with drift + noise, the
//    signal behind Figure 1's continuous SUM;
//  - FilesharingWorkload: a keyword->file inverted index (the IPTPS'04
//    filesharing-search application);
//  - TopologyWorkload: random directed link tables for recursive
//    topology-mapping queries.

#ifndef PIER_WORKLOAD_WORKLOADS_H_
#define PIER_WORKLOAD_WORKLOADS_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/table_def.h"
#include "common/rng.h"
#include "core/network.h"

namespace pier {
namespace workload {

// ---------------------------------------------------------------------------
// Snort / Table 1
// ---------------------------------------------------------------------------

/// One intrusion-detection rule with its network-wide total from the paper.
struct SnortRule {
  int64_t rule_id;
  const char* description;
  int64_t total_hits;
};

/// The paper's Table 1, verbatim (top ten), plus below-threshold decoys are
/// added by the generator.
const std::vector<SnortRule>& PaperTable1Rules();

/// Table definition for the `snort_alerts` relation:
///   (rule_id INT64, descr STRING, hits INT64), partitioned on rule_id.
catalog::TableDef SnortAlertsTable();

/// Splits each rule's total across nodes (deterministic multinomial with the
/// exact total preserved) and publishes one row per (node, rule) from that
/// node. Adds `decoy_rules` extra low-volume rules so LIMIT 10 has something
/// to cut. Returns rows published.
size_t PublishSnortAlerts(core::PierNetwork* net, uint64_t seed,
                          int decoy_rules = 8);

// ---------------------------------------------------------------------------
// Traffic / Figure 1
// ---------------------------------------------------------------------------

/// Table definition for `node_stats`: (node_id INT64, out_kbps DOUBLE),
/// partitioned on node_id.
catalog::TableDef NodeStatsTable();

struct TrafficOptions {
  /// Mean per-node outbound rate.
  double base_kbps = 300.0;
  /// Slow sinusoidal drift amplitude (fraction of base).
  double drift_fraction = 0.4;
  /// Drift period.
  Duration drift_period = Seconds(300);
  /// Per-sample multiplicative noise stddev.
  double noise_fraction = 0.15;
  /// How often each node republishes its current rate.
  Duration publish_period = Seconds(10);
  /// Rate rows expire quickly: a node that stops publishing stops counting
  /// ("responding nodes" semantics from the paper).
  Duration ttl = Seconds(25);
  /// Fraction of nodes that are chronically flaky (skip publishes often).
  double flaky_fraction = 0.1;
  double flaky_skip_probability = 0.5;
};

/// Drives periodic per-node rate publication. The aggregate ground truth at
/// any instant is available for error measurement.
class TrafficWorkload {
 public:
  TrafficWorkload(core::PierNetwork* net, TrafficOptions options,
                  uint64_t seed);

  /// Registers the table everywhere and starts per-node publishers.
  void Start();
  void Stop();

  /// Sum of the *current* true rates over currently-alive nodes — the oracle
  /// Figure 1's measured curve is compared against.
  double OracleSumKbps() const;
  /// True rate of one node right now.
  double NodeRateKbps(size_t i) const;

 private:
  void PublishOne(size_t i);

  core::PierNetwork* net_;
  TrafficOptions options_;
  Rng rng_;
  std::vector<double> base_;
  std::vector<bool> flaky_;
  std::vector<double> last_noise_;
  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks_;
};

// ---------------------------------------------------------------------------
// Filesharing
// ---------------------------------------------------------------------------

/// `file_index`: (keyword STRING, file_id INT64, filename STRING), the
/// inverted index, partitioned on keyword (so single-keyword lookup is one
/// DHT get and multi-keyword search is a distributed join on file_id... or
/// an intersection of keyword partitions).
catalog::TableDef FileIndexTable();

struct FilesharingOptions {
  size_t num_files = 400;
  size_t vocabulary = 60;
  /// Zipf exponent of keyword popularity.
  double zipf_s = 1.1;
  int keywords_per_file_min = 2;
  int keywords_per_file_max = 5;
};

/// Publishes the inverted index from the nodes that "own" each file.
/// Returns the number of (keyword, file) postings published.
size_t PublishFileIndex(core::PierNetwork* net, FilesharingOptions options,
                        uint64_t seed);

/// Vocabulary word `k` (deterministic).
std::string KeywordName(size_t k);

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

/// `links`: (src STRING, dst STRING), partitioned on src.
catalog::TableDef LinksTable();

struct TopologyOptions {
  size_t num_vertices = 32;
  /// Out-degree per vertex (random targets).
  int out_degree = 2;
};

/// Publishes a random directed graph; returns the edge list for reference
/// computations.
std::vector<std::pair<std::string, std::string>> PublishTopology(
    core::PierNetwork* net, TopologyOptions options, uint64_t seed);

/// Registers `def` in every node's catalog.
void RegisterTableEverywhere(core::PierNetwork* net,
                             const catalog::TableDef& def);

}  // namespace workload
}  // namespace pier

#endif  // PIER_WORKLOAD_WORKLOADS_H_
