#include "exec/operators.h"

#include <algorithm>

namespace pier {
namespace exec {

// ---------------------------------------------------------------------------
// FilterOp
// ---------------------------------------------------------------------------

void FilterOp::Push(const catalog::Tuple& t, int /*port*/) {
  bool pass = false;
  Status s = EvalPredicate(*predicate_, t, &pass);
  if (!s.ok() || !pass) {
    ++dropped_;
    return;
  }
  Emit(t);
}

// ---------------------------------------------------------------------------
// ProjectOp
// ---------------------------------------------------------------------------

void ProjectOp::Push(const catalog::Tuple& t, int /*port*/) {
  catalog::Tuple out;
  out.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    Value v;
    if (!e->Eval(t, &v).ok()) v = Value::Null();  // soft failure
    out.push_back(std::move(v));
  }
  Emit(out);
}

// ---------------------------------------------------------------------------
// GroupByOp
// ---------------------------------------------------------------------------

GroupByOp::GroupByOp(std::vector<int> group_cols, std::vector<AggSpec> aggs,
                     AggPhase phase)
    : group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)),
      phase_(phase) {}

catalog::Tuple GroupByOp::GroupKey(const catalog::Tuple& t) const {
  catalog::Tuple key;
  if (phase_ == AggPhase::kCombine || phase_ == AggPhase::kFinal) {
    // Partial layout: group values occupy the first G slots.
    key.assign(t.begin(),
               t.begin() + std::min(t.size(), group_cols_.size()));
  } else {
    key.reserve(group_cols_.size());
    for (int c : group_cols_) {
      key.push_back(c >= 0 && static_cast<size_t>(c) < t.size()
                        ? t[c]
                        : Value::Null());
    }
  }
  return key;
}

void GroupByOp::Push(const catalog::Tuple& t, int /*port*/) {
  catalog::Tuple key = GroupKey(t);
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    std::vector<Value> state(aggs_.size() * kPartialWidth);
    for (size_t a = 0; a < aggs_.size(); ++a) {
      AggInit(aggs_[a], &state[a * kPartialWidth],
              &state[a * kPartialWidth + 1]);
    }
    it = groups_.emplace(std::move(key), std::move(state)).first;
  }
  std::vector<Value>& state = it->second;
  if (phase_ == AggPhase::kComplete || phase_ == AggPhase::kPartial) {
    for (size_t a = 0; a < aggs_.size(); ++a) {
      AggUpdate(aggs_[a], t, &state[a * kPartialWidth],
                &state[a * kPartialWidth + 1]);
    }
  } else {
    // Merging partials: states follow the group values.
    size_t base = group_cols_.size();
    for (size_t a = 0; a < aggs_.size(); ++a) {
      size_t off = base + a * kPartialWidth;
      const Value& in1 =
          off < t.size() ? t[off] : Value::Null();
      const Value& in2 =
          off + 1 < t.size() ? t[off + 1] : Value::Null();
      AggMerge(aggs_[a], in1, in2, &state[a * kPartialWidth],
               &state[a * kPartialWidth + 1]);
    }
  }
}

void GroupByOp::FlushOnly() {
  for (const auto& [key, state] : groups_) {
    catalog::Tuple out = key;
    if (phase_ == AggPhase::kComplete || phase_ == AggPhase::kFinal) {
      for (size_t a = 0; a < aggs_.size(); ++a) {
        out.push_back(AggFinalize(aggs_[a], state[a * kPartialWidth],
                                  state[a * kPartialWidth + 1]));
      }
    } else {
      for (const Value& v : state) out.push_back(v);
    }
    Emit(out);
  }
}

void GroupByOp::FlushAndReset() {
  FlushOnly();
  groups_.clear();
}

// ---------------------------------------------------------------------------
// DistinctOp
// ---------------------------------------------------------------------------

void DistinctOp::Push(const catalog::Tuple& t, int /*port*/) {
  uint64_t h = catalog::HashTuple(t);
  std::vector<catalog::Tuple>& bucket = seen_[h];
  for (const catalog::Tuple& prev : bucket) {
    if (catalog::CompareTuples(prev, t) == 0) return;  // duplicate
  }
  bucket.push_back(t);
  Emit(t);
}

// ---------------------------------------------------------------------------
// TopKOp
// ---------------------------------------------------------------------------

bool TopKOp::Before(const catalog::Tuple& a, const catalog::Tuple& b) const {
  const Value& va = order_col_ >= 0 && static_cast<size_t>(order_col_) < a.size()
                        ? a[order_col_]
                        : Value();
  const Value& vb = order_col_ >= 0 && static_cast<size_t>(order_col_) < b.size()
                        ? b[order_col_]
                        : Value();
  int c = va.Compare(vb);
  if (c != 0) return descending_ ? c > 0 : c < 0;
  // Stable total order for determinism across runs.
  return catalog::CompareTuples(a, b) < 0;
}

void TopKOp::Push(const catalog::Tuple& t, int /*port*/) {
  rows_.push_back(t);
  std::sort(rows_.begin(), rows_.end(),
            [this](const catalog::Tuple& a, const catalog::Tuple& b) {
              return Before(a, b);
            });
  if (rows_.size() > k_) rows_.resize(k_);
}

void TopKOp::FlushOnly() {
  for (const catalog::Tuple& t : rows_) Emit(t);
}

void TopKOp::FlushAndReset() {
  FlushOnly();
  rows_.clear();
}

// ---------------------------------------------------------------------------
// LimitOp
// ---------------------------------------------------------------------------

void LimitOp::Push(const catalog::Tuple& t, int /*port*/) {
  if (passed_ >= k_) return;
  ++passed_;
  Emit(t);
}

// ---------------------------------------------------------------------------
// SymmetricHashJoinOp
// ---------------------------------------------------------------------------

SymmetricHashJoinOp::SymmetricHashJoinOp(std::vector<int> left_key_cols,
                                         std::vector<int> right_key_cols,
                                         ExprPtr residual)
    : left_keys_(std::move(left_key_cols)),
      right_keys_(std::move(right_key_cols)),
      residual_(std::move(residual)) {
  SetNumInputs(2);
}

bool SymmetricHashJoinOp::KeysEqual(const catalog::Tuple& l,
                                    const catalog::Tuple& r) const {
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    const Value& lv = l[left_keys_[i]];
    const Value& rv = r[right_keys_[i]];
    if (lv.is_null() || rv.is_null()) return false;  // SQL join semantics
    if (lv.Compare(rv) != 0) return false;
  }
  return true;
}

void SymmetricHashJoinOp::EmitJoined(const catalog::Tuple& l,
                                     const catalog::Tuple& r) {
  catalog::Tuple joined;
  joined.reserve(l.size() + r.size());
  joined.insert(joined.end(), l.begin(), l.end());
  joined.insert(joined.end(), r.begin(), r.end());
  if (residual_ != nullptr) {
    bool pass = false;
    if (!EvalPredicate(*residual_, joined, &pass).ok() || !pass) return;
  }
  Emit(joined);
}

void SymmetricHashJoinOp::Push(const catalog::Tuple& t, int port) {
  if (port == 0) {
    uint64_t h = catalog::HashTupleCols(t, left_keys_);
    left_table_[h].push_back(t);
    ++left_rows_;
    auto it = right_table_.find(h);
    if (it != right_table_.end()) {
      for (const catalog::Tuple& r : it->second) {
        if (KeysEqual(t, r)) EmitJoined(t, r);
      }
    }
  } else {
    uint64_t h = catalog::HashTupleCols(t, right_keys_);
    right_table_[h].push_back(t);
    ++right_rows_;
    auto it = left_table_.find(h);
    if (it != left_table_.end()) {
      for (const catalog::Tuple& l : it->second) {
        if (KeysEqual(l, t)) EmitJoined(l, t);
      }
    }
  }
}

}  // namespace exec
}  // namespace pier
