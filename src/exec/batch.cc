#include "exec/batch.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/hash.h"

namespace pier {
namespace exec {

namespace {

// Decode guards: a frame claiming more than this is corrupt, not big.
constexpr uint32_t kMaxBatchRows = 1u << 20;
constexpr uint32_t kMaxBatchCols = 4096;
constexpr uint8_t kBatchVersion = 1;

constexpr bool kLittleEndian = std::endian::native == std::endian::little;

}  // namespace

// ---------------------------------------------------------------------------
// Column

Column::Kind Column::KindForType(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return Kind::kInt64;
    case ValueType::kDouble:
      return Kind::kDouble;
    case ValueType::kString:
      return Kind::kString;
    case ValueType::kBool:
      return Kind::kBool;
    case ValueType::kNull:
    case ValueType::kBytes:
      return Kind::kMixed;
  }
  return Kind::kMixed;
}

void Column::PushValidity(bool valid) {
  if ((size_ & 63) == 0) validity_.push_back(0);
  if (valid) validity_.back() |= 1ull << (size_ & 63);
  ++size_;
}

void Column::AppendNull() {
  switch (kind_) {
    case Kind::kInt64:
      i64_.push_back(0);
      break;
    case Kind::kDouble:
      f64_.push_back(0);
      break;
    case Kind::kString:
      str_.emplace_back();
      break;
    case Kind::kBool:
      b8_.push_back(0);
      break;
    case Kind::kMixed:
      mixed_.emplace_back();
      break;
  }
  PushValidity(false);
}

void Column::AppendInt64(int64_t v) {
  i64_.push_back(v);
  PushValidity(true);
}

void Column::AppendDouble(double v) {
  f64_.push_back(v);
  PushValidity(true);
}

void Column::AppendString(std::string s) {
  str_.push_back(std::move(s));
  PushValidity(true);
}

void Column::AppendBool(bool v) {
  b8_.push_back(v ? 1 : 0);
  PushValidity(true);
}

void Column::PromoteToMixed() {
  std::vector<Value> boxed;
  boxed.reserve(size_);
  for (size_t i = 0; i < size_; ++i) boxed.push_back(ValueAt(i));
  kind_ = Kind::kMixed;
  i64_.clear();
  f64_.clear();
  str_.clear();
  b8_.clear();
  mixed_ = std::move(boxed);
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (kind_) {
    case Kind::kInt64:
      if (v.type() == ValueType::kInt64) {
        AppendInt64(v.int64_value());
        return;
      }
      break;
    case Kind::kDouble:
      if (v.type() == ValueType::kDouble) {
        AppendDouble(v.double_value());
        return;
      }
      break;
    case Kind::kString:
      if (v.type() == ValueType::kString) {
        AppendString(v.string_value());
        return;
      }
      break;
    case Kind::kBool:
      if (v.type() == ValueType::kBool) {
        AppendBool(v.bool_value());
        return;
      }
      break;
    case Kind::kMixed:
      mixed_.push_back(v);
      PushValidity(true);
      return;
  }
  // Runtime type disagrees with the storage lane: fall back to boxing.
  PromoteToMixed();
  mixed_.push_back(v);
  PushValidity(true);
}

void Column::AppendFrom(const Column& src, size_t row) {
  if (src.IsNull(row)) {
    AppendNull();
    return;
  }
  if (src.kind_ == kind_) {
    switch (kind_) {
      case Kind::kInt64:
        AppendInt64(src.i64_[row]);
        return;
      case Kind::kDouble:
        AppendDouble(src.f64_[row]);
        return;
      case Kind::kString:
        AppendString(src.str_[row]);
        return;
      case Kind::kBool:
        AppendBool(src.b8_[row] != 0);
        return;
      case Kind::kMixed:
        mixed_.push_back(src.mixed_[row]);
        PushValidity(true);
        return;
    }
  }
  AppendValue(src.ValueAt(row));
}

Value Column::ValueAt(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (kind_) {
    case Kind::kInt64:
      return Value::Int64(i64_[row]);
    case Kind::kDouble:
      return Value::Double(f64_[row]);
    case Kind::kString:
      return Value::String(str_[row]);
    case Kind::kBool:
      return Value::Bool(b8_[row] != 0);
    case Kind::kMixed:
      return mixed_[row];
  }
  return Value::Null();
}

uint64_t Column::CellHash(size_t row) const {
  if (IsNull(row)) return 0x9e3779b97f4a7c15ull;  // Value::Hash of NULL
  switch (kind_) {
    case Kind::kInt64:
      return Mix64(0x1234abcdull ^ static_cast<uint64_t>(i64_[row]));
    case Kind::kDouble: {
      double d = f64_[row];
      double rounded = std::nearbyint(d);
      if (rounded == d && std::abs(d) < 9.2e18) {
        return Mix64(0x1234abcdull ^
                     static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(0x5678efabull ^ bits);
    }
    case Kind::kString:
      return HashBytes(str_[row]);
    case Kind::kBool:
      return Mix64(b8_[row] != 0 ? 2 : 1);
    case Kind::kMixed:
      return mixed_[row].Hash();
  }
  return 0;
}

bool Column::CellEquals(size_t row, const Value& v) const {
  if (IsNull(row)) return v.is_null();
  if (v.is_null()) return false;
  switch (kind_) {
    case Kind::kInt64:
      if (v.type() == ValueType::kInt64) return i64_[row] == v.int64_value();
      break;
    case Kind::kString:
      if (v.type() == ValueType::kString) {
        return str_[row] == v.string_value();
      }
      break;
    default:
      break;
  }
  return ValueAt(row).Compare(v) == 0;
}

void Column::PopBack() {
  --size_;
  validity_[size_ >> 6] &= ~(1ull << (size_ & 63));
  if ((size_ & 63) == 0) validity_.pop_back();
  switch (kind_) {
    case Kind::kInt64:
      i64_.pop_back();
      break;
    case Kind::kDouble:
      f64_.pop_back();
      break;
    case Kind::kString:
      str_.pop_back();
      break;
    case Kind::kBool:
      b8_.pop_back();
      break;
    case Kind::kMixed:
      mixed_.pop_back();
      break;
  }
}

void Column::Reserve(size_t n) {
  validity_.reserve((n + 63) / 64);
  switch (kind_) {
    case Kind::kInt64:
      i64_.reserve(n);
      break;
    case Kind::kDouble:
      f64_.reserve(n);
      break;
    case Kind::kString:
      str_.reserve(n);
      break;
    case Kind::kBool:
      b8_.reserve(n);
      break;
    case Kind::kMixed:
      mixed_.reserve(n);
      break;
  }
}

void Column::ResizeNull(size_t n) {
  Clear();
  size_ = n;
  validity_.assign((n + 63) / 64, 0);
  switch (kind_) {
    case Kind::kInt64:
      i64_.resize(n);
      break;
    case Kind::kDouble:
      f64_.resize(n);
      break;
    case Kind::kString:
      str_.resize(n);
      break;
    case Kind::kBool:
      b8_.resize(n);
      break;
    case Kind::kMixed:
      mixed_.resize(n);
      break;
  }
}

void Column::Clear() {
  size_ = 0;
  validity_.clear();
  i64_.clear();
  f64_.clear();
  str_.clear();
  b8_.clear();
  mixed_.clear();
}

// ---------------------------------------------------------------------------
// RowBatch

RowBatch::RowBatch(const catalog::Schema& schema) {
  cols_.reserve(schema.num_columns());
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    cols_.push_back(Column::ForType(schema.column(i).type));
  }
}

RowBatch::RowBatch(const std::vector<ValueType>& types) {
  cols_.reserve(types.size());
  for (ValueType t : types) cols_.push_back(Column::ForType(t));
}

void RowBatch::SetSelection(std::vector<uint32_t> rows) {
  has_selection_ = true;
  selection_ = std::move(rows);
}

void RowBatch::ClearSelection() {
  has_selection_ = false;
  selection_.clear();
}

void RowBatch::ToTuple(size_t row, catalog::Tuple* out) const {
  out->clear();
  out->reserve(cols_.size());
  for (const Column& c : cols_) out->push_back(c.ValueAt(row));
}

RowBatch RowBatch::Compact() const {
  RowBatch out;
  out.cols_.reserve(cols_.size());
  for (const Column& c : cols_) out.cols_.push_back(Column(c.kind()));
  size_t n = ActiveRows();
  for (size_t i = 0; i < n; ++i) {
    uint32_t row = RowId(i);
    for (size_t c = 0; c < cols_.size(); ++c) {
      out.cols_[c].AppendFrom(cols_[c], row);
    }
  }
  out.num_rows_ = n;
  return out;
}

RowBatch RowBatch::SliceLive(size_t start, size_t len) const {
  RowBatch out;
  out.cols_.reserve(cols_.size());
  for (const Column& c : cols_) out.cols_.push_back(Column(c.kind()));
  size_t n = ActiveRows();
  if (start > n) start = n;
  size_t end = (len > n - start) ? n : start + len;
  for (size_t i = start; i < end; ++i) {
    uint32_t row = RowId(i);
    for (size_t c = 0; c < cols_.size(); ++c) {
      out.cols_[c].AppendFrom(cols_[c], row);
    }
  }
  out.num_rows_ = end - start;
  return out;
}

void RowBatch::TruncateLive(size_t n) {
  if (n >= ActiveRows()) return;
  if (has_selection_) {
    selection_.resize(n);
    return;
  }
  selection_.resize(n);
  for (size_t i = 0; i < n; ++i) selection_[i] = static_cast<uint32_t>(i);
  has_selection_ = true;
}

RowBatch RowBatch::FromColumns(std::vector<Column> cols, size_t rows) {
  RowBatch out;
  out.cols_ = std::move(cols);
  out.num_rows_ = rows;
  return out;
}

void RowBatch::Encode(Writer* w) const {
  if (has_selection_) {
    // The wire never carries dead rows: compact first.
    Compact().Encode(w);
    return;
  }
  size_t n = num_rows_;
  w->PutU8(kBatchVersion);
  w->PutVarint32(static_cast<uint32_t>(n));
  w->PutVarint32(static_cast<uint32_t>(cols_.size()));
  size_t vbytes = (n + 7) / 8;
  std::vector<uint8_t> bits(vbytes, 0);
  for (const Column& c : cols_) {
    w->PutU8(static_cast<uint8_t>(c.kind()));
    std::fill(bits.begin(), bits.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      if (!c.IsNull(i)) bits[i >> 3] |= 1u << (i & 7);
    }
    w->PutRaw(bits.data(), vbytes);
    switch (c.kind()) {
      case Column::Kind::kInt64:
        if constexpr (kLittleEndian) {
          w->PutRaw(c.i64_.data(), n * sizeof(int64_t));
        } else {
          for (size_t i = 0; i < n; ++i) {
            w->PutFixed64(static_cast<uint64_t>(c.i64_[i]));
          }
        }
        break;
      case Column::Kind::kDouble:
        if constexpr (kLittleEndian) {
          w->PutRaw(c.f64_.data(), n * sizeof(double));
        } else {
          for (size_t i = 0; i < n; ++i) w->PutDouble(c.f64_[i]);
        }
        break;
      case Column::Kind::kString: {
        size_t total = 0;
        for (size_t i = 0; i < n; ++i) total += 5 + c.str_[i].size();
        w->Reserve(total);
        for (size_t i = 0; i < n; ++i) w->PutString(c.str_[i]);
        break;
      }
      case Column::Kind::kBool: {
        std::vector<uint8_t> packed(vbytes, 0);
        for (size_t i = 0; i < n; ++i) {
          if (c.b8_[i]) packed[i >> 3] |= 1u << (i & 7);
        }
        w->PutRaw(packed.data(), vbytes);
        break;
      }
      case Column::Kind::kMixed:
        for (size_t i = 0; i < n; ++i) c.mixed_[i].Serialize(w);
        break;
    }
  }
}

std::string RowBatch::EncodeToBytes() const {
  Writer w;
  Encode(&w);
  return w.Release();
}

Status RowBatch::Decode(Reader* r, RowBatch* out) {
  uint8_t version = 0;
  PIER_RETURN_IF_ERROR(r->GetU8(&version));
  if (version != kBatchVersion) return Status::Corruption("bad batch version");
  uint32_t n = 0, ncols = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  PIER_RETURN_IF_ERROR(r->GetVarint32(&ncols));
  if (n > kMaxBatchRows) return Status::Corruption("batch rows out of range");
  if (ncols > kMaxBatchCols) return Status::Corruption("batch cols out of range");
  out->cols_.clear();
  out->num_rows_ = n;
  out->ClearSelection();
  size_t vbytes = (n + 7) / 8;
  std::vector<uint8_t> bits(vbytes);
  out->cols_.reserve(ncols);
  for (uint32_t ci = 0; ci < ncols; ++ci) {
    uint8_t kind = 0;
    PIER_RETURN_IF_ERROR(r->GetU8(&kind));
    if (kind > static_cast<uint8_t>(Column::Kind::kMixed)) {
      return Status::Corruption("bad column kind");
    }
    Column c(static_cast<Column::Kind>(kind));
    if (r->remaining() < vbytes) return Status::Corruption("batch truncated");
    PIER_RETURN_IF_ERROR(r->GetRaw(bits.data(), vbytes));
    c.size_ = n;
    c.validity_.assign((n + 63) / 64, 0);
    for (size_t i = 0; i < n; ++i) {
      if (bits[i >> 3] & (1u << (i & 7))) {
        c.validity_[i >> 6] |= 1ull << (i & 63);
      }
    }
    switch (c.kind_) {
      case Column::Kind::kInt64: {
        if (r->remaining() < n * sizeof(int64_t)) {
          return Status::Corruption("batch truncated");
        }
        c.i64_.resize(n);
        if constexpr (kLittleEndian) {
          PIER_RETURN_IF_ERROR(r->GetRaw(c.i64_.data(), n * sizeof(int64_t)));
        } else {
          for (size_t i = 0; i < n; ++i) {
            uint64_t v = 0;
            PIER_RETURN_IF_ERROR(r->GetFixed64(&v));
            c.i64_[i] = static_cast<int64_t>(v);
          }
        }
        break;
      }
      case Column::Kind::kDouble: {
        if (r->remaining() < n * sizeof(double)) {
          return Status::Corruption("batch truncated");
        }
        c.f64_.resize(n);
        if constexpr (kLittleEndian) {
          PIER_RETURN_IF_ERROR(r->GetRaw(c.f64_.data(), n * sizeof(double)));
        } else {
          for (size_t i = 0; i < n; ++i) {
            PIER_RETURN_IF_ERROR(r->GetDouble(&c.f64_[i]));
          }
        }
        break;
      }
      case Column::Kind::kString: {
        c.str_.reserve(n <= 4096 ? n : 4096);
        for (size_t i = 0; i < n; ++i) {
          c.str_.emplace_back();
          PIER_RETURN_IF_ERROR(r->GetString(&c.str_.back()));
        }
        break;
      }
      case Column::Kind::kBool: {
        if (r->remaining() < vbytes) return Status::Corruption("batch truncated");
        std::vector<uint8_t> packed(vbytes);
        PIER_RETURN_IF_ERROR(r->GetRaw(packed.data(), vbytes));
        c.b8_.resize(n);
        for (size_t i = 0; i < n; ++i) {
          c.b8_[i] = (packed[i >> 3] >> (i & 7)) & 1;
        }
        break;
      }
      case Column::Kind::kMixed: {
        c.mixed_.reserve(n <= 4096 ? n : 4096);
        for (size_t i = 0; i < n; ++i) {
          Value v;
          PIER_RETURN_IF_ERROR(Value::Deserialize(r, &v));
          c.mixed_.push_back(std::move(v));
        }
        break;
      }
    }
    out->cols_.push_back(std::move(c));
  }
  return Status::OK();
}

Status RowBatch::FromBytes(std::string_view bytes, RowBatch* out) {
  Reader r(bytes);
  PIER_RETURN_IF_ERROR(Decode(&r, out));
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after batch");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RowBatchBuilder

RowBatchBuilder::RowBatchBuilder(const catalog::Schema& schema)
    : batch_(schema) {
  types_.reserve(schema.num_columns());
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    types_.push_back(schema.column(i).type);
  }
}

RowBatchBuilder::RowBatchBuilder(std::vector<ValueType> types)
    : types_(std::move(types)), batch_(types_) {}

void RowBatchBuilder::Append(const catalog::Tuple& t) {
  for (size_t i = 0; i < batch_.cols_.size(); ++i) {
    if (!needed_.empty() && needed_[i] == 0) continue;  // bulk-nulled in Take()
    if (i < t.size()) {
      batch_.cols_[i].AppendValue(t[i]);
    } else {
      batch_.cols_[i].AppendNull();
    }
  }
  ++batch_.num_rows_;
}

namespace {

/// Varint decode over raw bytes with the exact failure behavior of
/// Reader::GetVarint64 (truncation and overlong >10-byte encodings fail).
/// AppendSerialized is the per-row hot loop of every scan; going through
/// Reader's Status-returning primitives costs a call and a Status per cell.
inline bool FastVarint(const uint8_t*& p, const uint8_t* end, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (shift < 64) {
    if (p == end) return false;
    uint8_t byte = *p++;
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

/// Steps over a varint without decoding it, with FastVarint's exact
/// failure behavior (truncation and overlong encodings fail). When eight
/// bytes are in bounds the stop byte is found in one word op — skipping is
/// the whole cost of a pruned column, so this loop earns its tuning.
inline bool SkipVarint(const uint8_t*& p, const uint8_t* end) {
  int cap = 10;
  if (kLittleEndian && end - p >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    uint64_t stops = ~chunk & 0x8080808080808080ull;
    if (stops != 0) {
      p += (std::countr_zero(stops) >> 3) + 1;
      return true;
    }
    p += 8;  // 9- and 10-byte varints finish below
    cap = 2;
  }
  for (int k = 0; k < cap; ++k) {
    if (p == end) return false;
    if ((*p++ & 0x80) == 0) return true;
  }
  return false;
}

}  // namespace

void RowBatchBuilder::Reserve(size_t n) {
  reserve_hint_ = n;
  for (Column& c : batch_.cols_) c.Reserve(n);
}

void RowBatchBuilder::SetNeededColumns(const std::vector<int>& needed) {
  needed_.clear();
  if (needed.empty()) return;
  needed_.assign(batch_.cols_.size(), 0);
  for (int c : needed) {
    if (c >= 0 && static_cast<size_t>(c) < needed_.size()) needed_[c] = 1;
  }
}

bool RowBatchBuilder::AppendSerialized(std::string_view bytes) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(bytes.data());
  const uint8_t* end = p + bytes.size();
  uint64_t count = 0;
  if (!FastVarint(p, end, &count)) return false;
  if (count != batch_.cols_.size()) return false;
  // Decode straight into the column lanes; a tag that disagrees with the
  // lane boxes through AppendValue (promoting the column), so malformed
  // rows are the only ones that bail out below. Columns outside the needed
  // set are validated but not materialized: their payload bytes are stepped
  // over and the lane gets a NULL (scan-side column pruning).
  size_t appended = 0;
  bool ok = true;
  for (uint64_t i = 0; i < count && ok; ++i) {
    Column& col = batch_.cols_[i];
    const bool wanted = needed_.empty() || needed_[i] != 0;
    if (p == end) {
      ok = false;
      break;
    }
    uint8_t tag = *p++;
    switch (tag) {
      case static_cast<uint8_t>(ValueType::kNull):
        if (wanted) col.AppendNull();
        break;
      case static_cast<uint8_t>(ValueType::kInt64): {
        if (!wanted) {
          if (!SkipVarint(p, end)) ok = false;
          break;
        }
        uint64_t zz = 0;
        if (!FastVarint(p, end, &zz)) {
          ok = false;
          break;
        }
        int64_t v = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
        if (col.kind() == Column::Kind::kInt64) {
          col.AppendInt64(v);
        } else {
          col.AppendValue(Value::Int64(v));
        }
        break;
      }
      case static_cast<uint8_t>(ValueType::kDouble): {
        if (end - p < 8) {
          ok = false;
          break;
        }
        if (!wanted) {
          p += 8;
          break;
        }
        uint64_t bits = 0;
        for (int b = 0; b < 8; ++b) {
          bits |= static_cast<uint64_t>(p[b]) << (8 * b);
        }
        p += 8;
        double d = 0;
        std::memcpy(&d, &bits, sizeof(d));
        if (col.kind() == Column::Kind::kDouble) {
          col.AppendDouble(d);
        } else {
          col.AppendValue(Value::Double(d));
        }
        break;
      }
      case static_cast<uint8_t>(ValueType::kBool): {
        uint8_t b = *p++;
        if (!wanted) break;
        if (col.kind() == Column::Kind::kBool) {
          col.AppendBool(b != 0);
        } else {
          col.AppendValue(Value::Bool(b != 0));
        }
        break;
      }
      case static_cast<uint8_t>(ValueType::kString):
      case static_cast<uint8_t>(ValueType::kBytes): {
        uint64_t n = 0;
        if (!FastVarint(p, end, &n) ||
            n > static_cast<uint64_t>(end - p)) {
          ok = false;
          break;
        }
        if (!wanted) {
          p += n;
          break;
        }
        std::string s(reinterpret_cast<const char*>(p), n);
        p += n;
        if (tag == static_cast<uint8_t>(ValueType::kString) &&
            col.kind() == Column::Kind::kString) {
          col.AppendString(std::move(s));
        } else if (tag == static_cast<uint8_t>(ValueType::kString)) {
          col.AppendValue(Value::String(std::move(s)));
        } else {
          col.AppendValue(Value::Bytes(std::move(s)));
        }
        break;
      }
      default:
        ok = false;
        break;
    }
    if (ok) ++appended;
  }
  if (ok && p != end) ok = false;
  if (!ok) {
    // Roll back the columns touched before the row went bad (pruned
    // columns were never appended to).
    for (size_t i = 0; i < appended; ++i) {
      if (needed_.empty() || needed_[i] != 0) batch_.cols_[i].PopBack();
    }
    return false;
  }
  ++batch_.num_rows_;
  return true;
}

RowBatch RowBatchBuilder::Take() {
  // Pruned columns carried no per-row storage during the append loop;
  // materialize them as all-null now so the batch is uniformly shaped.
  if (!needed_.empty()) {
    for (size_t i = 0; i < batch_.cols_.size(); ++i) {
      if (needed_[i] == 0) batch_.cols_[i].ResizeNull(batch_.num_rows_);
    }
  }
  RowBatch out = std::move(batch_);
  batch_ = RowBatch(types_);
  if (reserve_hint_ > 0) {
    for (Column& c : batch_.cols_) c.Reserve(reserve_hint_);
  }
  return out;
}

}  // namespace exec
}  // namespace pier
