// Vectorized expression kernels and batch accumulators.
//
// CompiledExpr::Compile walks a bound Expr tree (via Expr::Info()) and
// builds a kernel program that evaluates whole RowBatch columns at a time:
// comparisons and logic produce selection bitmaps, arithmetic produces new
// column vectors, and per-row evaluation errors become error bits instead
// of Status returns. Scalar Expr::Eval stays the semantic reference — the
// kernels must agree with it row for row, including SQL NULL semantics
// (NULL comparisons are false, NULL arithmetic is NULL, division by zero
// is NULL) and error propagation (a row whose evaluation would error under
// the scalar plane is marked in the error bitmap; filters drop such rows,
// projections null them, exactly as the tuple plane does).
//
// VectorGroupBy is the batch twin of GroupByOp for the raw-row phases:
// it accumulates grouped partial states per batch through the same
// AggInit/AggUpdateValue folds, and drains in the same sorted group order.

#ifndef PIER_EXEC_KERNELS_H_
#define PIER_EXEC_KERNELS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "catalog/tuple.h"
#include "common/value.h"
#include "exec/agg.h"
#include "exec/batch.h"
#include "exec/expr.h"

namespace pier {
namespace exec {

/// Fixed-size bitset sized to a batch. An empty word vector means all-zero
/// (the common case for error bitmaps), so untouched bitmaps cost nothing.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t n) : size_(n) {}

  size_t size() const { return size_; }
  void Reset(size_t n) {
    size_ = n;
    words_.clear();
  }

  bool Get(size_t i) const {
    return !words_.empty() && (words_[i >> 6] & (1ull << (i & 63))) != 0;
  }
  void Set(size_t i) {
    EnsureWords();
    words_[i >> 6] |= 1ull << (i & 63);
  }
  void Clear(size_t i) {
    if (!words_.empty()) words_[i >> 6] &= ~(1ull << (i & 63));
  }
  void SetAll();

  /// True when no bit is set.
  bool none() const;
  size_t Count() const;

  void OrWith(const Bitmap& o);
  void AndWith(const Bitmap& o);
  /// this &= ~o.
  void AndNotWith(const Bitmap& o);
  /// Flips every bit (tail bits stay clear).
  void FlipAll();

  /// Direct word access for kernels that fill 64 rows at a time (word i
  /// covers rows [64i, 64i+64); callers must keep tail bits clear).
  uint64_t* MutableWords() {
    EnsureWords();
    return words_.data();
  }

 private:
  void EnsureWords() {
    if (words_.empty()) words_.assign((size_ + 63) / 64, 0);
  }

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

/// A compiled expression program over RowBatch columns.
class CompiledExpr {
 public:
  /// One lowered program node (defined in kernels.cc; declared here so the
  /// kernel implementations can take it by reference).
  struct Node;

  ~CompiledExpr();

  /// Compiles `e` (which must outlive nothing — the shared_ptr is retained).
  /// Never fails: every node kind lowers to a kernel, with a boxed per-row
  /// fallback for heterogeneous (kMixed) columns.
  static std::unique_ptr<CompiledExpr> Compile(ExprPtr e);

  /// Predicate evaluation over all physical rows of `b`: bit i set iff the
  /// scalar plane would keep row i (EvalPredicate true and no error) —
  /// rows whose evaluation errors are excluded, matching the runtime
  /// filter's skip-on-error behavior.
  void EvalSelection(const RowBatch& b, Bitmap* out) const;

  /// Full value evaluation over all physical rows: `out` holds the per-row
  /// results and `err` flags rows whose scalar evaluation would return a
  /// non-OK Status (their column cells are unspecified; projections map
  /// them to NULL).
  void EvalColumn(const RowBatch& b, Column* out, Bitmap* err) const;

 private:
  CompiledExpr() = default;

  ExprPtr source_;  // keeps borrowed ExprInfo children alive
  std::unique_ptr<Node> root_;
};

/// Narrows `b`'s live set to the rows whose bit is set in `keep` (indexed
/// by physical row id). With a selection already installed the result is
/// the intersection — this is how filter stages compose without
/// materializing survivors.
void NarrowSelection(RowBatch* b, const Bitmap& keep);

/// Batch-at-a-time GROUP BY accumulator for the raw-row phases. With
/// `finalize` false it drains partial tuples [group values..., v1, v2 per
/// agg] (GroupByOp kPartial); with `finalize` true it drains finalized rows
/// (kComplete). Drain order matches GroupByOp's sorted map order.
class VectorGroupBy {
 public:
  VectorGroupBy(std::vector<int> group_cols, std::vector<AggSpec> aggs,
                bool finalize);

  /// Folds every live row of `b` into its group's partial states.
  void PushBatch(const RowBatch& b);

  size_t group_count() const { return groups_.size(); }

  /// Emits groups in sorted key order and clears state. Stops early when
  /// `emit` returns false (remaining groups are still discarded).
  void DrainAndReset(const std::function<bool(catalog::Tuple&)>& emit);

 private:
  struct Group {
    catalog::Tuple key;
    std::vector<Value> state;
  };

  size_t FindOrCreateGroup(const RowBatch& b, size_t row);
  void GrowSlots();
  /// Folds column `spec.col` of every live row into agg slot `a`, using a
  /// typed lane loop where the fold can stay unboxed (COUNT, and
  /// SUM/AVG/MIN/MAX over INT64/DOUBLE lanes) and the boxed reference fold
  /// everywhere else.
  void FoldAgg(const RowBatch& b, size_t a);

  std::vector<int> group_cols_;
  std::vector<AggSpec> aggs_;
  bool finalize_;
  std::vector<Group> groups_;
  /// Open-addressing group index: slot = group idx + 1, 0 = empty. Linear
  /// probing over a power-of-two table; group_hash_ is parallel to groups_
  /// so probes compare hashes before touching keys.
  std::vector<uint32_t> slots_;
  std::vector<uint64_t> group_hash_;
  /// Per-batch scratch: group index of each live row.
  std::vector<uint32_t> row_group_;
};

}  // namespace exec
}  // namespace pier

#endif  // PIER_EXEC_KERNELS_H_
