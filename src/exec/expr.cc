#include "exec/expr.h"

#include <cmath>

namespace pier {
namespace exec {

namespace {

enum class ExprTag : uint8_t {
  kLiteral = 1,
  kColumn = 2,
  kCompare = 3,
  kArith = 4,
  kAnd = 5,
  kOr = 6,
  kNot = 7,
  kNeg = 8,
  kIsNull = 9,
  kIsNotNull = 10,
};

constexpr int kMaxExprDepth = 64;

Status DeserializeImpl(Reader* r, int depth, ExprPtr* out);

// ---------------------------------------------------------------------------

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  Status Eval(const catalog::Tuple&, Value* out) const override {
    *out = value_;
    return Status::OK();
  }
  void Serialize(Writer* w) const override {
    w->PutU8(static_cast<uint8_t>(ExprTag::kLiteral));
    value_.Serialize(w);
  }
  std::string ToString() const override { return value_.ToString(); }
  ExprInfo Info() const override {
    ExprInfo info;
    info.kind = ExprInfo::Kind::kLiteral;
    info.literal = value_;
    return info;
  }

 private:
  Value value_;
};

class ColumnExpr : public Expr {
 public:
  ColumnExpr(int index, std::string name)
      : index_(index), name_(std::move(name)) {}
  Status Eval(const catalog::Tuple& t, Value* out) const override {
    if (index_ < 0 || static_cast<size_t>(index_) >= t.size()) {
      return Status::InvalidArgument("column index " +
                                     std::to_string(index_) +
                                     " out of range for tuple of " +
                                     std::to_string(t.size()));
    }
    *out = t[index_];
    return Status::OK();
  }
  void Serialize(Writer* w) const override {
    w->PutU8(static_cast<uint8_t>(ExprTag::kColumn));
    w->PutVarint32(static_cast<uint32_t>(index_));
    w->PutString(name_);
  }
  std::string ToString() const override {
    return name_.empty() ? "$" + std::to_string(index_) : name_;
  }
  ExprInfo Info() const override {
    ExprInfo info;
    info.kind = ExprInfo::Kind::kColumn;
    info.column = index_;
    return info;
  }

 private:
  int index_;
  std::string name_;
};

class CompareExpr : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr l, ExprPtr r)
      : op_(op), l_(std::move(l)), r_(std::move(r)) {}
  Status Eval(const catalog::Tuple& t, Value* out) const override {
    Value lv, rv;
    PIER_RETURN_IF_ERROR(l_->Eval(t, &lv));
    PIER_RETURN_IF_ERROR(r_->Eval(t, &rv));
    if (lv.is_null() || rv.is_null()) {
      *out = Value::Bool(false);  // SQL: NULL comparisons are not true
      return Status::OK();
    }
    int c = lv.Compare(rv);
    bool result = false;
    switch (op_) {
      case CompareOp::kEq:
        result = c == 0;
        break;
      case CompareOp::kNe:
        result = c != 0;
        break;
      case CompareOp::kLt:
        result = c < 0;
        break;
      case CompareOp::kLe:
        result = c <= 0;
        break;
      case CompareOp::kGt:
        result = c > 0;
        break;
      case CompareOp::kGe:
        result = c >= 0;
        break;
    }
    *out = Value::Bool(result);
    return Status::OK();
  }
  void Serialize(Writer* w) const override {
    w->PutU8(static_cast<uint8_t>(ExprTag::kCompare));
    w->PutU8(static_cast<uint8_t>(op_));
    l_->Serialize(w);
    r_->Serialize(w);
  }
  std::string ToString() const override {
    return "(" + l_->ToString() + " " + CompareOpName(op_) + " " +
           r_->ToString() + ")";
  }
  ExprInfo Info() const override {
    ExprInfo info;
    info.kind = ExprInfo::Kind::kCompare;
    info.cmp = op_;
    info.left = l_.get();
    info.right = r_.get();
    return info;
  }

 private:
  CompareOp op_;
  ExprPtr l_, r_;
};

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr l, ExprPtr r)
      : op_(op), l_(std::move(l)), r_(std::move(r)) {}
  Status Eval(const catalog::Tuple& t, Value* out) const override {
    Value lv, rv;
    PIER_RETURN_IF_ERROR(l_->Eval(t, &lv));
    PIER_RETURN_IF_ERROR(r_->Eval(t, &rv));
    if (lv.is_null() || rv.is_null()) {
      *out = Value::Null();
      return Status::OK();
    }
    // String concatenation via '+'.
    if (op_ == ArithOp::kAdd && lv.type() == ValueType::kString &&
        rv.type() == ValueType::kString) {
      *out = Value::String(lv.string_value() + rv.string_value());
      return Status::OK();
    }
    bool both_int = lv.type() == ValueType::kInt64 &&
                    rv.type() == ValueType::kInt64;
    if (both_int) {
      int64_t a = lv.int64_value(), b = rv.int64_value();
      switch (op_) {
        case ArithOp::kAdd:
          *out = Value::Int64(a + b);
          return Status::OK();
        case ArithOp::kSub:
          *out = Value::Int64(a - b);
          return Status::OK();
        case ArithOp::kMul:
          *out = Value::Int64(a * b);
          return Status::OK();
        case ArithOp::kDiv:
          if (b == 0) {
            *out = Value::Null();
            return Status::OK();
          }
          *out = Value::Int64(a / b);
          return Status::OK();
        case ArithOp::kMod:
          if (b == 0) {
            *out = Value::Null();
            return Status::OK();
          }
          *out = Value::Int64(a % b);
          return Status::OK();
      }
    }
    double a = 0, b = 0;
    PIER_RETURN_IF_ERROR(lv.AsDouble(&a));
    PIER_RETURN_IF_ERROR(rv.AsDouble(&b));
    switch (op_) {
      case ArithOp::kAdd:
        *out = Value::Double(a + b);
        return Status::OK();
      case ArithOp::kSub:
        *out = Value::Double(a - b);
        return Status::OK();
      case ArithOp::kMul:
        *out = Value::Double(a * b);
        return Status::OK();
      case ArithOp::kDiv:
        if (b == 0) {
          *out = Value::Null();
          return Status::OK();
        }
        *out = Value::Double(a / b);
        return Status::OK();
      case ArithOp::kMod:
        if (b == 0) {
          *out = Value::Null();
          return Status::OK();
        }
        *out = Value::Double(std::fmod(a, b));
        return Status::OK();
    }
    return Status::Internal("unreachable arith op");
  }
  void Serialize(Writer* w) const override {
    w->PutU8(static_cast<uint8_t>(ExprTag::kArith));
    w->PutU8(static_cast<uint8_t>(op_));
    l_->Serialize(w);
    r_->Serialize(w);
  }
  std::string ToString() const override {
    return "(" + l_->ToString() + " " + ArithOpName(op_) + " " +
           r_->ToString() + ")";
  }
  ExprInfo Info() const override {
    ExprInfo info;
    info.kind = ExprInfo::Kind::kArith;
    info.arith = op_;
    info.left = l_.get();
    info.right = r_.get();
    return info;
  }

 private:
  ArithOp op_;
  ExprPtr l_, r_;
};

class LogicExpr : public Expr {
 public:
  LogicExpr(bool is_and, ExprPtr l, ExprPtr r)
      : is_and_(is_and), l_(std::move(l)), r_(std::move(r)) {}
  Status Eval(const catalog::Tuple& t, Value* out) const override {
    bool lb = false, rb = false;
    PIER_RETURN_IF_ERROR(EvalPredicate(*l_, t, &lb));
    // Short circuit.
    if (is_and_ && !lb) {
      *out = Value::Bool(false);
      return Status::OK();
    }
    if (!is_and_ && lb) {
      *out = Value::Bool(true);
      return Status::OK();
    }
    PIER_RETURN_IF_ERROR(EvalPredicate(*r_, t, &rb));
    *out = Value::Bool(rb);
    return Status::OK();
  }
  void Serialize(Writer* w) const override {
    w->PutU8(static_cast<uint8_t>(is_and_ ? ExprTag::kAnd : ExprTag::kOr));
    l_->Serialize(w);
    r_->Serialize(w);
  }
  std::string ToString() const override {
    return "(" + l_->ToString() + (is_and_ ? " AND " : " OR ") +
           r_->ToString() + ")";
  }
  ExprInfo Info() const override {
    ExprInfo info;
    info.kind = is_and_ ? ExprInfo::Kind::kAnd : ExprInfo::Kind::kOr;
    info.left = l_.get();
    info.right = r_.get();
    return info;
  }

 private:
  bool is_and_;
  ExprPtr l_, r_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr e) : e_(std::move(e)) {}
  Status Eval(const catalog::Tuple& t, Value* out) const override {
    bool b = false;
    PIER_RETURN_IF_ERROR(EvalPredicate(*e_, t, &b));
    *out = Value::Bool(!b);
    return Status::OK();
  }
  void Serialize(Writer* w) const override {
    w->PutU8(static_cast<uint8_t>(ExprTag::kNot));
    e_->Serialize(w);
  }
  std::string ToString() const override {
    return "(NOT " + e_->ToString() + ")";
  }
  ExprInfo Info() const override {
    ExprInfo info;
    info.kind = ExprInfo::Kind::kNot;
    info.left = e_.get();
    return info;
  }

 private:
  ExprPtr e_;
};

class NegExpr : public Expr {
 public:
  explicit NegExpr(ExprPtr e) : e_(std::move(e)) {}
  Status Eval(const catalog::Tuple& t, Value* out) const override {
    Value v;
    PIER_RETURN_IF_ERROR(e_->Eval(t, &v));
    if (v.is_null()) {
      *out = Value::Null();
      return Status::OK();
    }
    if (v.type() == ValueType::kInt64) {
      *out = Value::Int64(-v.int64_value());
      return Status::OK();
    }
    double d = 0;
    PIER_RETURN_IF_ERROR(v.AsDouble(&d));
    *out = Value::Double(-d);
    return Status::OK();
  }
  void Serialize(Writer* w) const override {
    w->PutU8(static_cast<uint8_t>(ExprTag::kNeg));
    e_->Serialize(w);
  }
  std::string ToString() const override { return "(-" + e_->ToString() + ")"; }
  ExprInfo Info() const override {
    ExprInfo info;
    info.kind = ExprInfo::Kind::kNeg;
    info.left = e_.get();
    return info;
  }

 private:
  ExprPtr e_;
};

class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr e, bool negated) : e_(std::move(e)), negated_(negated) {}
  Status Eval(const catalog::Tuple& t, Value* out) const override {
    Value v;
    PIER_RETURN_IF_ERROR(e_->Eval(t, &v));
    *out = Value::Bool(negated_ ? !v.is_null() : v.is_null());
    return Status::OK();
  }
  void Serialize(Writer* w) const override {
    w->PutU8(static_cast<uint8_t>(negated_ ? ExprTag::kIsNotNull
                                           : ExprTag::kIsNull));
    e_->Serialize(w);
  }
  std::string ToString() const override {
    return "(" + e_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL") +
           ")";
  }
  ExprInfo Info() const override {
    ExprInfo info;
    info.kind =
        negated_ ? ExprInfo::Kind::kIsNotNull : ExprInfo::Kind::kIsNull;
    info.left = e_.get();
    return info;
  }

 private:
  ExprPtr e_;
  bool negated_;
};

Status DeserializeImpl(Reader* r, int depth, ExprPtr* out) {
  if (depth > kMaxExprDepth) return Status::Corruption("expr too deep");
  uint8_t tag = 0;
  PIER_RETURN_IF_ERROR(r->GetU8(&tag));
  switch (static_cast<ExprTag>(tag)) {
    case ExprTag::kLiteral: {
      Value v;
      PIER_RETURN_IF_ERROR(Value::Deserialize(r, &v));
      *out = Expr::Literal(std::move(v));
      return Status::OK();
    }
    case ExprTag::kColumn: {
      uint32_t index = 0;
      std::string name;
      PIER_RETURN_IF_ERROR(r->GetVarint32(&index));
      PIER_RETURN_IF_ERROR(r->GetString(&name));
      *out = Expr::Column(static_cast<int>(index), std::move(name));
      return Status::OK();
    }
    case ExprTag::kCompare: {
      uint8_t op = 0;
      PIER_RETURN_IF_ERROR(r->GetU8(&op));
      if (op > static_cast<uint8_t>(CompareOp::kGe)) {
        return Status::Corruption("bad compare op");
      }
      ExprPtr l, rr;
      PIER_RETURN_IF_ERROR(DeserializeImpl(r, depth + 1, &l));
      PIER_RETURN_IF_ERROR(DeserializeImpl(r, depth + 1, &rr));
      *out = Expr::Compare(static_cast<CompareOp>(op), l, rr);
      return Status::OK();
    }
    case ExprTag::kArith: {
      uint8_t op = 0;
      PIER_RETURN_IF_ERROR(r->GetU8(&op));
      if (op > static_cast<uint8_t>(ArithOp::kMod)) {
        return Status::Corruption("bad arith op");
      }
      ExprPtr l, rr;
      PIER_RETURN_IF_ERROR(DeserializeImpl(r, depth + 1, &l));
      PIER_RETURN_IF_ERROR(DeserializeImpl(r, depth + 1, &rr));
      *out = Expr::Arith(static_cast<ArithOp>(op), l, rr);
      return Status::OK();
    }
    case ExprTag::kAnd:
    case ExprTag::kOr: {
      ExprPtr l, rr;
      PIER_RETURN_IF_ERROR(DeserializeImpl(r, depth + 1, &l));
      PIER_RETURN_IF_ERROR(DeserializeImpl(r, depth + 1, &rr));
      *out = static_cast<ExprTag>(tag) == ExprTag::kAnd ? Expr::And(l, rr)
                                                        : Expr::Or(l, rr);
      return Status::OK();
    }
    case ExprTag::kNot: {
      ExprPtr e;
      PIER_RETURN_IF_ERROR(DeserializeImpl(r, depth + 1, &e));
      *out = Expr::Not(e);
      return Status::OK();
    }
    case ExprTag::kNeg: {
      ExprPtr e;
      PIER_RETURN_IF_ERROR(DeserializeImpl(r, depth + 1, &e));
      *out = Expr::Negate(e);
      return Status::OK();
    }
    case ExprTag::kIsNull:
    case ExprTag::kIsNotNull: {
      ExprPtr e;
      PIER_RETURN_IF_ERROR(DeserializeImpl(r, depth + 1, &e));
      *out = Expr::IsNull(e, static_cast<ExprTag>(tag) == ExprTag::kIsNotNull);
      return Status::OK();
    }
  }
  return Status::Corruption("unknown expr tag");
}

}  // namespace

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  return std::make_shared<LiteralExpr>(std::move(v));
}
ExprPtr Expr::Column(int index, std::string name) {
  return std::make_shared<ColumnExpr>(index, std::move(name));
}
ExprPtr Expr::Compare(CompareOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<CompareExpr>(op, std::move(l), std::move(r));
}
ExprPtr Expr::Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(op, std::move(l), std::move(r));
}
ExprPtr Expr::And(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicExpr>(true, std::move(l), std::move(r));
}
ExprPtr Expr::Or(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicExpr>(false, std::move(l), std::move(r));
}
ExprPtr Expr::Not(ExprPtr e) {
  return std::make_shared<NotExpr>(std::move(e));
}
ExprPtr Expr::Negate(ExprPtr e) {
  return std::make_shared<NegExpr>(std::move(e));
}
ExprPtr Expr::IsNull(ExprPtr e, bool negated) {
  return std::make_shared<IsNullExpr>(std::move(e), negated);
}

Status Expr::Deserialize(Reader* r, ExprPtr* out) {
  return DeserializeImpl(r, 0, out);
}

Status EvalPredicate(const Expr& e, const catalog::Tuple& t, bool* out) {
  Value v;
  PIER_RETURN_IF_ERROR(e.Eval(t, &v));
  *out = v.type() == ValueType::kBool && v.bool_value();
  return Status::OK();
}

}  // namespace exec
}  // namespace pier
