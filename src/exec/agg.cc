#include "exec/agg.h"

namespace pier {
namespace exec {

const char* AggFuncName(AggFunc fn) {
  switch (fn) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

namespace {

/// Numeric addition preserving integerness when both sides are INT64.
Value AddValues(const Value& a, const Value& b) {
  if (a.is_null()) return b;
  if (b.is_null()) return a;
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    return Value::Int64(a.int64_value() + b.int64_value());
  }
  double x = 0, y = 0;
  (void)a.AsDouble(&x);
  (void)b.AsDouble(&y);
  return Value::Double(x + y);
}

}  // namespace

void AggInit(const AggSpec& spec, Value* v1, Value* v2) {
  switch (spec.fn) {
    case AggFunc::kCount:
      *v1 = Value::Int64(0);
      *v2 = Value::Null();
      break;
    case AggFunc::kSum:
      *v1 = Value::Null();  // SUM of nothing is NULL
      *v2 = Value::Null();
      break;
    case AggFunc::kAvg:
      *v1 = Value::Null();
      *v2 = Value::Int64(0);
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      *v1 = Value::Null();
      *v2 = Value::Null();
      break;
  }
}

void AggUpdate(const AggSpec& spec, const catalog::Tuple& row, Value* v1,
               Value* v2) {
  Value input;
  if (spec.col >= 0 && static_cast<size_t>(spec.col) < row.size()) {
    input = row[spec.col];
  }
  AggUpdateValue(spec, input, v1, v2);
}

void AggUpdateValue(const AggSpec& spec, const Value& input, Value* v1,
                    Value* v2) {
  switch (spec.fn) {
    case AggFunc::kCount: {
      // COUNT(*) counts rows; COUNT(col) counts non-null values.
      bool counts = (spec.col < 0) || !input.is_null();
      if (counts) *v1 = Value::Int64(v1->int64_value() + 1);
      break;
    }
    case AggFunc::kSum:
      if (!input.is_null()) *v1 = AddValues(*v1, input);
      break;
    case AggFunc::kAvg:
      if (!input.is_null()) {
        *v1 = AddValues(*v1, input);
        *v2 = Value::Int64(v2->int64_value() + 1);
      }
      break;
    case AggFunc::kMin:
      if (!input.is_null() && (v1->is_null() || input.Compare(*v1) < 0)) {
        *v1 = input;
      }
      break;
    case AggFunc::kMax:
      if (!input.is_null() && (v1->is_null() || input.Compare(*v1) > 0)) {
        *v1 = input;
      }
      break;
  }
}

void AggMerge(const AggSpec& spec, const Value& in1, const Value& in2,
              Value* v1, Value* v2) {
  switch (spec.fn) {
    case AggFunc::kCount:
      *v1 = AddValues(*v1, in1);
      break;
    case AggFunc::kSum:
      *v1 = AddValues(*v1, in1);
      break;
    case AggFunc::kAvg:
      *v1 = AddValues(*v1, in1);
      *v2 = AddValues(*v2, in2);
      break;
    case AggFunc::kMin:
      if (!in1.is_null() && (v1->is_null() || in1.Compare(*v1) < 0)) {
        *v1 = in1;
      }
      break;
    case AggFunc::kMax:
      if (!in1.is_null() && (v1->is_null() || in1.Compare(*v1) > 0)) {
        *v1 = in1;
      }
      break;
  }
}

Value AggFinalize(const AggSpec& spec, const Value& v1, const Value& v2) {
  switch (spec.fn) {
    case AggFunc::kCount:
      return v1.is_null() ? Value::Int64(0) : v1;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return v1;
    case AggFunc::kAvg: {
      if (v1.is_null() || v2.is_null()) return Value::Null();
      int64_t count = v2.int64_value();
      if (count == 0) return Value::Null();
      double sum = 0;
      (void)v1.AsDouble(&sum);
      return Value::Double(sum / static_cast<double>(count));
    }
  }
  return Value::Null();
}

}  // namespace exec
}  // namespace pier
