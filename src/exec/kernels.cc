#include "exec/kernels.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/hash.h"

namespace pier {
namespace exec {

// ---------------------------------------------------------------------------
// Bitmap

void Bitmap::SetAll() {
  words_.assign((size_ + 63) / 64, ~0ull);
  size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() = (1ull << tail) - 1;
  }
  if (size_ == 0) words_.clear();
}

bool Bitmap::none() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

size_t Bitmap::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

void Bitmap::OrWith(const Bitmap& o) {
  if (o.words_.empty()) return;
  EnsureWords();
  for (size_t i = 0; i < words_.size() && i < o.words_.size(); ++i) {
    words_[i] |= o.words_[i];
  }
}

void Bitmap::AndWith(const Bitmap& o) {
  if (words_.empty()) return;
  if (o.words_.empty()) {
    std::fill(words_.begin(), words_.end(), 0);
    return;
  }
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= i < o.words_.size() ? o.words_[i] : 0;
  }
}

void Bitmap::AndNotWith(const Bitmap& o) {
  if (words_.empty() || o.words_.empty()) return;
  for (size_t i = 0; i < words_.size() && i < o.words_.size(); ++i) {
    words_[i] &= ~o.words_[i];
  }
}

void Bitmap::FlipAll() {
  EnsureWords();
  for (uint64_t& w : words_) w = ~w;
  size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ull << tail) - 1;
  }
}

// ---------------------------------------------------------------------------
// Compiled program representation

struct CompiledExpr::Node {
  ExprInfo::Kind kind = ExprInfo::Kind::kLiteral;
  Value literal;
  int column = -1;
  CompareOp cmp = CompareOp::kEq;
  ArithOp arith = ArithOp::kAdd;
  std::unique_ptr<Node> l, r;
};

CompiledExpr::~CompiledExpr() = default;

namespace {

/// One evaluated intermediate: a broadcast constant, a column (borrowed
/// from the batch or owned by the kernel), or a predicate bitmap (the
/// representation every boolean-producing node uses — compare, logic, NOT,
/// IS NULL all yield non-null BOOLs, so a truth bitmap is lossless).
struct Vec {
  enum class Rep : uint8_t { kConst, kCol, kPred };
  Rep rep = Rep::kConst;
  Value cval;                       // kConst
  const Column* borrowed = nullptr; // kCol: borrowed from the batch
  Column owned;                     // kCol: kernel-produced
  Bitmap truth;                     // kPred
  Bitmap err;                       // rows whose scalar eval would error

  const Column& col() const { return borrowed ? *borrowed : owned; }
  /// Boxes row `i` (kPred boxes the truth bit; error rows are garbage-in,
  /// garbage-out — they are dropped or nulled at the top level anyway).
  Value BoxRow(size_t i) const {
    switch (rep) {
      case Rep::kConst:
        return cval;
      case Rep::kCol:
        return col().ValueAt(i);
      case Rep::kPred:
        return Value::Bool(truth.Get(i));
    }
    return Value::Null();
  }
  bool RowIsNull(size_t i) const {
    switch (rep) {
      case Rep::kConst:
        return cval.is_null();
      case Rep::kCol:
        return col().IsNull(i);
      case Rep::kPred:
        return false;
    }
    return true;
  }
};

bool ApplyCmp(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

int SignOf(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

/// Mirrors ArithExpr::Eval after the null check: returns false when the
/// scalar plane would return a non-OK Status.
bool ScalarArithValue(ArithOp op, const Value& lv, const Value& rv,
                      Value* out) {
  if (lv.is_null() || rv.is_null()) {
    *out = Value::Null();
    return true;
  }
  if (op == ArithOp::kAdd && lv.type() == ValueType::kString &&
      rv.type() == ValueType::kString) {
    *out = Value::String(lv.string_value() + rv.string_value());
    return true;
  }
  if (lv.type() == ValueType::kInt64 && rv.type() == ValueType::kInt64) {
    int64_t a = lv.int64_value(), b = rv.int64_value();
    switch (op) {
      case ArithOp::kAdd:
        *out = Value::Int64(a + b);
        return true;
      case ArithOp::kSub:
        *out = Value::Int64(a - b);
        return true;
      case ArithOp::kMul:
        *out = Value::Int64(a * b);
        return true;
      case ArithOp::kDiv:
        *out = b == 0 ? Value::Null() : Value::Int64(a / b);
        return true;
      case ArithOp::kMod:
        *out = b == 0 ? Value::Null() : Value::Int64(a % b);
        return true;
    }
  }
  double a = 0, b = 0;
  if (!lv.AsDouble(&a).ok() || !rv.AsDouble(&b).ok()) return false;
  switch (op) {
    case ArithOp::kAdd:
      *out = Value::Double(a + b);
      return true;
    case ArithOp::kSub:
      *out = Value::Double(a - b);
      return true;
    case ArithOp::kMul:
      *out = Value::Double(a * b);
      return true;
    case ArithOp::kDiv:
      *out = b == 0 ? Value::Null() : Value::Double(a / b);
      return true;
    case ArithOp::kMod:
      *out = b == 0 ? Value::Null() : Value::Double(std::fmod(a, b));
      return true;
  }
  return false;
}

/// Mirrors CompareExpr::Eval after child evaluation (never errors itself).
bool ScalarCompare(CompareOp op, const Value& lv, const Value& rv) {
  if (lv.is_null() || rv.is_null()) return false;
  return ApplyCmp(op, lv.Compare(rv));
}

/// Predicate view of a Vec: truth bit = value is BOOL true (NULL and
/// non-bool are false, per EvalPredicate). Errors pass through untouched.
void PredOf(const Vec& v, size_t n, Bitmap* truth) {
  truth->Reset(n);
  switch (v.rep) {
    case Vec::Rep::kPred:
      *truth = v.truth;
      return;
    case Vec::Rep::kConst:
      if (v.cval.type() == ValueType::kBool && v.cval.bool_value()) {
        truth->SetAll();
      }
      return;
    case Vec::Rep::kCol: {
      const Column& c = v.col();
      if (c.kind() == Column::Kind::kBool) {
        for (size_t i = 0; i < n; ++i) {
          if (!c.IsNull(i) && c.bools()[i]) truth->Set(i);
        }
      } else if (c.kind() == Column::Kind::kMixed) {
        for (size_t i = 0; i < n; ++i) {
          Value bv = c.ValueAt(i);
          if (bv.type() == ValueType::kBool && bv.bool_value()) truth->Set(i);
        }
      }
      // Other kinds are never BOOL: all false.
      return;
    }
  }
}

/// Numeric view of a Vec cell as double (only call when the lane is
/// numeric-typed).
struct NumSide {
  enum class Lane { kI64, kF64, kConstI64, kConstF64, kNone };
  Lane lane = Lane::kNone;
  const Column* c = nullptr;
  int64_t ci = 0;
  double cf = 0;

  static NumSide Of(const Vec& v) {
    NumSide s;
    if (v.rep == Vec::Rep::kConst) {
      if (v.cval.type() == ValueType::kInt64) {
        s.lane = Lane::kConstI64;
        s.ci = v.cval.int64_value();
      } else if (v.cval.type() == ValueType::kDouble) {
        s.lane = Lane::kConstF64;
        s.cf = v.cval.double_value();
      }
    } else if (v.rep == Vec::Rep::kCol) {
      if (v.col().kind() == Column::Kind::kInt64) {
        s.lane = Lane::kI64;
        s.c = &v.col();
      } else if (v.col().kind() == Column::Kind::kDouble) {
        s.lane = Lane::kF64;
        s.c = &v.col();
      }
    }
    return s;
  }
  bool numeric() const { return lane != Lane::kNone; }
  bool is_int() const { return lane == Lane::kI64 || lane == Lane::kConstI64; }
  bool IsNull(size_t i) const {
    return (lane == Lane::kI64 || lane == Lane::kF64) && c->IsNull(i);
  }
  int64_t I64(size_t i) const {
    return lane == Lane::kI64 ? c->int64s()[i] : ci;
  }
  double F64(size_t i) const {
    switch (lane) {
      case Lane::kI64:
        return static_cast<double>(c->int64s()[i]);
      case Lane::kF64:
        return c->doubles()[i];
      case Lane::kConstI64:
        return static_cast<double>(ci);
      case Lane::kConstF64:
        return cf;
      case Lane::kNone:
        break;
    }
    return 0;
  }
};

/// String view of a Vec side (string column or string constant).
struct StrSide {
  const Column* c = nullptr;
  const std::string* cs = nullptr;

  static StrSide Of(const Vec& v) {
    StrSide s;
    if (v.rep == Vec::Rep::kConst && v.cval.type() == ValueType::kString) {
      s.cs = &v.cval.string_value();
    } else if (v.rep == Vec::Rep::kCol &&
               v.col().kind() == Column::Kind::kString) {
      s.c = &v.col();
    }
    return s;
  }
  bool valid() const { return c != nullptr || cs != nullptr; }
  bool IsNull(size_t i) const { return c != nullptr && c->IsNull(i); }
  const std::string& Str(size_t i) const { return c ? c->strings()[i] : *cs; }
};

}  // namespace

// ---------------------------------------------------------------------------
// Compilation

namespace {

std::unique_ptr<CompiledExpr::Node> CompileNode(const Expr& e);

std::unique_ptr<CompiledExpr::Node> CompileChild(const Expr* e) {
  return e != nullptr ? CompileNode(*e) : nullptr;
}

std::unique_ptr<CompiledExpr::Node> CompileNode(const Expr& e) {
  ExprInfo info = e.Info();
  auto n = std::make_unique<CompiledExpr::Node>();
  n->kind = info.kind;
  n->literal = std::move(info.literal);
  n->column = info.column;
  n->cmp = info.cmp;
  n->arith = info.arith;
  n->l = CompileChild(info.left);
  n->r = CompileChild(info.right);
  return n;
}

}  // namespace

std::unique_ptr<CompiledExpr> CompiledExpr::Compile(ExprPtr e) {
  auto ce = std::unique_ptr<CompiledExpr>(new CompiledExpr());
  ce->source_ = std::move(e);
  ce->root_ = CompileNode(*ce->source_);
  return ce;
}

// ---------------------------------------------------------------------------
// Evaluation

namespace {

void EvalNode(const CompiledExpr::Node& node, const RowBatch& b, Vec* out);

/// Compare kernel: produces a kPred Vec.
void EvalCompare(const CompiledExpr::Node& node, const RowBatch& b,
                 Vec* out) {
  size_t n = b.num_rows();
  Vec lv, rv;
  EvalNode(*node.l, b, &lv);
  EvalNode(*node.r, b, &rv);
  out->rep = Vec::Rep::kPred;
  out->truth.Reset(n);
  out->err = std::move(lv.err);
  out->err.OrWith(rv.err);
  CompareOp op = node.cmp;

  if (lv.rep == Vec::Rep::kConst && rv.rep == Vec::Rep::kConst) {
    if (ScalarCompare(op, lv.cval, rv.cval)) out->truth.SetAll();
    return;
  }
  NumSide ln = NumSide::Of(lv), rn = NumSide::Of(rv);
  if (ln.numeric() && rn.numeric()) {
    if (ln.is_int() && rn.is_int()) {
      // Word-at-a-time INT64 kernel: 64 comparisons per stored word, op
      // dispatched once, validity ANDed in per word. const-vs-col
      // normalizes to col-vs-const with the operator mirrored.
      if (ln.lane == NumSide::Lane::kConstI64) {
        std::swap(ln, rn);
        op = op == CompareOp::kLt   ? CompareOp::kGt
             : op == CompareOp::kGt ? CompareOp::kLt
             : op == CompareOp::kLe ? CompareOp::kGe
             : op == CompareOp::kGe ? CompareOp::kLe
                                    : op;
      }
      const int64_t* a = ln.c->int64s().data();
      const uint64_t* av = ln.c->validity().data();
      const int64_t* bcol =
          rn.lane == NumSide::Lane::kI64 ? rn.c->int64s().data() : nullptr;
      const uint64_t* bv = bcol != nullptr ? rn.c->validity().data() : nullptr;
      const int64_t bc = rn.ci;
      uint64_t* w = out->truth.MutableWords();
      auto fill = [&](auto cmp) {
        for (size_t base = 0; base < n; base += 64) {
          const size_t lim = std::min<size_t>(64, n - base);
          uint64_t word = 0;
          if (bcol != nullptr) {
            for (size_t k = 0; k < lim; ++k) {
              word |= static_cast<uint64_t>(cmp(a[base + k], bcol[base + k]))
                      << k;
            }
          } else {
            for (size_t k = 0; k < lim; ++k) {
              word |= static_cast<uint64_t>(cmp(a[base + k], bc)) << k;
            }
          }
          word &= av[base >> 6];
          if (bv != nullptr) word &= bv[base >> 6];
          w[base >> 6] = word;
        }
      };
      switch (op) {
        case CompareOp::kEq:
          fill([](int64_t x, int64_t y) { return x == y; });
          break;
        case CompareOp::kNe:
          fill([](int64_t x, int64_t y) { return x != y; });
          break;
        case CompareOp::kLt:
          fill([](int64_t x, int64_t y) { return x < y; });
          break;
        case CompareOp::kLe:
          fill([](int64_t x, int64_t y) { return x <= y; });
          break;
        case CompareOp::kGt:
          fill([](int64_t x, int64_t y) { return x > y; });
          break;
        case CompareOp::kGe:
          fill([](int64_t x, int64_t y) { return x >= y; });
          break;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (ln.IsNull(i) || rn.IsNull(i)) continue;
        if (ApplyCmp(op, SignOf(ln.F64(i) - rn.F64(i)))) out->truth.Set(i);
      }
    }
    return;
  }
  StrSide ls = StrSide::Of(lv), rs = StrSide::Of(rv);
  if (ls.valid() && rs.valid()) {
    for (size_t i = 0; i < n; ++i) {
      if (ls.IsNull(i) || rs.IsNull(i)) continue;
      int cc = ls.Str(i).compare(rs.Str(i));
      if (ApplyCmp(op, cc < 0 ? -1 : (cc > 0 ? 1 : 0))) out->truth.Set(i);
    }
    return;
  }
  // Generic boxed fallback (mixed columns, cross-type, BOOL columns).
  for (size_t i = 0; i < n; ++i) {
    if (ScalarCompare(op, lv.BoxRow(i), rv.BoxRow(i))) out->truth.Set(i);
  }
}

/// Arithmetic kernel: produces a kCol (or kConst) Vec.
void EvalArith(const CompiledExpr::Node& node, const RowBatch& b, Vec* out) {
  size_t n = b.num_rows();
  Vec lv, rv;
  EvalNode(*node.l, b, &lv);
  EvalNode(*node.r, b, &rv);
  out->err = std::move(lv.err);
  out->err.OrWith(rv.err);
  ArithOp op = node.arith;

  if (lv.rep == Vec::Rep::kConst && rv.rep == Vec::Rep::kConst) {
    out->rep = Vec::Rep::kConst;
    if (!ScalarArithValue(op, lv.cval, rv.cval, &out->cval)) {
      out->err.Reset(n);
      out->err.SetAll();
      out->cval = Value::Null();
    }
    return;
  }
  out->rep = Vec::Rep::kCol;
  NumSide ln = NumSide::Of(lv), rn = NumSide::Of(rv);
  if (ln.numeric() && rn.numeric()) {
    if (ln.is_int() && rn.is_int()) {
      out->owned = Column(Column::Kind::kInt64);
      for (size_t i = 0; i < n; ++i) {
        if (ln.IsNull(i) || rn.IsNull(i)) {
          out->owned.AppendNull();
          continue;
        }
        int64_t a = ln.I64(i), c = rn.I64(i);
        switch (op) {
          case ArithOp::kAdd:
            out->owned.AppendInt64(a + c);
            break;
          case ArithOp::kSub:
            out->owned.AppendInt64(a - c);
            break;
          case ArithOp::kMul:
            out->owned.AppendInt64(a * c);
            break;
          case ArithOp::kDiv:
            if (c == 0) {
              out->owned.AppendNull();
            } else {
              out->owned.AppendInt64(a / c);
            }
            break;
          case ArithOp::kMod:
            if (c == 0) {
              out->owned.AppendNull();
            } else {
              out->owned.AppendInt64(a % c);
            }
            break;
        }
      }
    } else {
      out->owned = Column(Column::Kind::kDouble);
      for (size_t i = 0; i < n; ++i) {
        if (ln.IsNull(i) || rn.IsNull(i)) {
          out->owned.AppendNull();
          continue;
        }
        double a = ln.F64(i), c = rn.F64(i);
        switch (op) {
          case ArithOp::kAdd:
            out->owned.AppendDouble(a + c);
            break;
          case ArithOp::kSub:
            out->owned.AppendDouble(a - c);
            break;
          case ArithOp::kMul:
            out->owned.AppendDouble(a * c);
            break;
          case ArithOp::kDiv:
            if (c == 0) {
              out->owned.AppendNull();
            } else {
              out->owned.AppendDouble(a / c);
            }
            break;
          case ArithOp::kMod:
            if (c == 0) {
              out->owned.AppendNull();
            } else {
              out->owned.AppendDouble(std::fmod(a, c));
            }
            break;
        }
      }
    }
    return;
  }
  StrSide ls = StrSide::Of(lv), rs = StrSide::Of(rv);
  if (op == ArithOp::kAdd && ls.valid() && rs.valid()) {
    out->owned = Column(Column::Kind::kString);
    for (size_t i = 0; i < n; ++i) {
      if (ls.IsNull(i) || rs.IsNull(i)) {
        out->owned.AppendNull();
      } else {
        out->owned.AppendString(ls.Str(i) + rs.Str(i));
      }
    }
    return;
  }
  // Generic boxed fallback.
  out->owned = Column(Column::Kind::kMixed);
  for (size_t i = 0; i < n; ++i) {
    Value v;
    if (!ScalarArithValue(op, lv.BoxRow(i), rv.BoxRow(i), &v)) {
      out->err.Set(i);
      v = Value::Null();
    }
    out->owned.AppendValue(v);
  }
}

void EvalNode(const CompiledExpr::Node& node, const RowBatch& b, Vec* out) {
  size_t n = b.num_rows();
  out->err.Reset(n);
  switch (node.kind) {
    case ExprInfo::Kind::kLiteral:
      out->rep = Vec::Rep::kConst;
      out->cval = node.literal;
      return;
    case ExprInfo::Kind::kColumn:
      if (node.column < 0 ||
          static_cast<size_t>(node.column) >= b.num_columns()) {
        // Scalar plane: out-of-range column errors on every row.
        out->rep = Vec::Rep::kConst;
        out->cval = Value::Null();
        out->err.SetAll();
        return;
      }
      out->rep = Vec::Rep::kCol;
      out->borrowed = &b.column(node.column);
      return;
    case ExprInfo::Kind::kCompare:
      EvalCompare(node, b, out);
      return;
    case ExprInfo::Kind::kArith:
      EvalArith(node, b, out);
      return;
    case ExprInfo::Kind::kAnd:
    case ExprInfo::Kind::kOr: {
      Vec lv, rv;
      EvalNode(*node.l, b, &lv);
      EvalNode(*node.r, b, &rv);
      Bitmap tl, tr;
      PredOf(lv, n, &tl);
      PredOf(rv, n, &tr);
      out->rep = Vec::Rep::kPred;
      // Short-circuit error algebra: the right side's error only counts on
      // rows where the scalar plane would have evaluated it.
      if (node.kind == ExprInfo::Kind::kAnd) {
        Bitmap right_reached = tl;      // left true -> right evaluated
        right_reached.AndWith(rv.err);  // (empty rv.err short-circuits)
        out->err = std::move(lv.err);
        out->err.OrWith(right_reached);
        out->truth = std::move(tl);
        out->truth.AndWith(tr);
      } else {
        Bitmap right_reached = tl;  // left false -> right evaluated
        right_reached.FlipAll();
        right_reached.AndWith(rv.err);
        out->err = std::move(lv.err);
        out->err.OrWith(right_reached);
        out->truth = std::move(tl);
        out->truth.OrWith(tr);
      }
      return;
    }
    case ExprInfo::Kind::kNot: {
      Vec cv;
      EvalNode(*node.l, b, &cv);
      out->rep = Vec::Rep::kPred;
      PredOf(cv, n, &out->truth);
      out->truth.FlipAll();
      out->err = std::move(cv.err);
      return;
    }
    case ExprInfo::Kind::kNeg: {
      Vec cv;
      EvalNode(*node.l, b, &cv);
      out->err = std::move(cv.err);
      if (cv.rep == Vec::Rep::kConst) {
        out->rep = Vec::Rep::kConst;
        const Value& v = cv.cval;
        if (v.is_null()) {
          out->cval = Value::Null();
        } else if (v.type() == ValueType::kInt64) {
          out->cval = Value::Int64(-v.int64_value());
        } else if (v.type() == ValueType::kDouble) {
          out->cval = Value::Double(-v.double_value());
        } else {
          out->cval = Value::Null();
          out->err.SetAll();
        }
        return;
      }
      out->rep = Vec::Rep::kCol;
      const Column& c = cv.col();
      if (c.kind() == Column::Kind::kInt64) {
        out->owned = Column(Column::Kind::kInt64);
        for (size_t i = 0; i < n; ++i) {
          if (c.IsNull(i)) {
            out->owned.AppendNull();
          } else {
            out->owned.AppendInt64(-c.int64s()[i]);
          }
        }
        return;
      }
      if (c.kind() == Column::Kind::kDouble) {
        out->owned = Column(Column::Kind::kDouble);
        for (size_t i = 0; i < n; ++i) {
          if (c.IsNull(i)) {
            out->owned.AppendNull();
          } else {
            out->owned.AppendDouble(-c.doubles()[i]);
          }
        }
        return;
      }
      // BOOL/STRING lanes (and pred reps) error per non-null row; mixed
      // boxes per row.
      out->owned = Column(Column::Kind::kMixed);
      for (size_t i = 0; i < n; ++i) {
        Value v = cv.BoxRow(i);
        if (v.is_null()) {
          out->owned.AppendNull();
          continue;
        }
        if (v.type() == ValueType::kInt64) {
          out->owned.AppendValue(Value::Int64(-v.int64_value()));
          continue;
        }
        double d = 0;
        if (v.AsDouble(&d).ok()) {
          out->owned.AppendValue(Value::Double(-d));
        } else {
          out->err.Set(i);
          out->owned.AppendNull();
        }
      }
      return;
    }
    case ExprInfo::Kind::kIsNull:
    case ExprInfo::Kind::kIsNotNull: {
      Vec cv;
      EvalNode(*node.l, b, &cv);
      bool negated = node.kind == ExprInfo::Kind::kIsNotNull;
      out->rep = Vec::Rep::kPred;
      out->err = std::move(cv.err);
      out->truth.Reset(n);
      switch (cv.rep) {
        case Vec::Rep::kPred:
          // Boolean results are never NULL.
          if (negated) out->truth.SetAll();
          break;
        case Vec::Rep::kConst:
          if (cv.cval.is_null() != negated) out->truth.SetAll();
          break;
        case Vec::Rep::kCol: {
          const Column& c = cv.col();
          for (size_t i = 0; i < n; ++i) {
            if (c.IsNull(i) != negated) out->truth.Set(i);
          }
          break;
        }
      }
      return;
    }
  }
}

}  // namespace

void CompiledExpr::EvalSelection(const RowBatch& b, Bitmap* out) const {
  Vec v;
  EvalNode(*root_, b, &v);
  PredOf(v, b.num_rows(), out);
  out->AndNotWith(v.err);
}

void CompiledExpr::EvalColumn(const RowBatch& b, Column* out,
                              Bitmap* err) const {
  size_t n = b.num_rows();
  Vec v;
  EvalNode(*root_, b, &v);
  *err = std::move(v.err);
  switch (v.rep) {
    case Vec::Rep::kConst: {
      *out = Column::ForType(v.cval.type());
      for (size_t i = 0; i < n; ++i) out->AppendValue(v.cval);
      return;
    }
    case Vec::Rep::kCol:
      *out = v.col();
      return;
    case Vec::Rep::kPred: {
      *out = Column(Column::Kind::kBool);
      for (size_t i = 0; i < n; ++i) out->AppendBool(v.truth.Get(i));
      return;
    }
  }
}

void NarrowSelection(RowBatch* b, const Bitmap& keep) {
  std::vector<uint32_t> sel;
  size_t live = b->ActiveRows();
  sel.reserve(live);
  for (size_t i = 0; i < live; ++i) {
    uint32_t row = b->RowId(i);
    if (keep.Get(row)) sel.push_back(row);
  }
  b->SetSelection(std::move(sel));
}

// ---------------------------------------------------------------------------
// VectorGroupBy

VectorGroupBy::VectorGroupBy(std::vector<int> group_cols,
                             std::vector<AggSpec> aggs, bool finalize)
    : group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)),
      finalize_(finalize) {}

void VectorGroupBy::GrowSlots() {
  size_t n = slots_.empty() ? 16 : slots_.size() * 2;
  slots_.assign(n, 0);
  const size_t mask = n - 1;
  for (uint32_t gi = 0; gi < groups_.size(); ++gi) {
    size_t pos = group_hash_[gi] & mask;
    while (slots_[pos] != 0) pos = (pos + 1) & mask;
    slots_[pos] = gi + 1;
  }
}

size_t VectorGroupBy::FindOrCreateGroup(const RowBatch& b, size_t row) {
  uint64_t h = 0x243f6a8885a308d3ull;  // HashTupleCols seed
  for (int c : group_cols_) {
    uint64_t ch = c >= 0 && static_cast<size_t>(c) < b.num_columns()
                      ? b.column(c).CellHash(row)
                      : 0x9e3779b97f4a7c15ull;  // Value::Hash of NULL
    h = HashCombine(h, ch);
  }
  if ((groups_.size() + 1) * 4 > slots_.size() * 3) GrowSlots();
  const size_t mask = slots_.size() - 1;
  size_t pos = h & mask;
  while (slots_[pos] != 0) {
    const uint32_t gi = slots_[pos] - 1;
    if (group_hash_[gi] == h) {
      const catalog::Tuple& key = groups_[gi].key;
      bool match = true;
      for (size_t k = 0; k < group_cols_.size(); ++k) {
        int c = group_cols_[k];
        if (c >= 0 && static_cast<size_t>(c) < b.num_columns()) {
          if (!b.column(c).CellEquals(row, key[k])) {
            match = false;
            break;
          }
        } else if (!key[k].is_null()) {
          match = false;
          break;
        }
      }
      if (match) return gi;
    }
    pos = (pos + 1) & mask;
  }
  Group g;
  g.key.reserve(group_cols_.size());
  for (int c : group_cols_) {
    g.key.push_back(c >= 0 && static_cast<size_t>(c) < b.num_columns()
                        ? b.column(c).ValueAt(row)
                        : Value::Null());
  }
  g.state.resize(aggs_.size() * kPartialWidth);
  for (size_t a = 0; a < aggs_.size(); ++a) {
    AggInit(aggs_[a], &g.state[a * kPartialWidth],
            &g.state[a * kPartialWidth + 1]);
  }
  uint32_t gi = static_cast<uint32_t>(groups_.size());
  groups_.push_back(std::move(g));
  group_hash_.push_back(h);
  slots_[pos] = gi + 1;
  return gi;
}

void VectorGroupBy::PushBatch(const RowBatch& b) {
  const size_t live = b.ActiveRows();
  if (live == 0) return;
  // Pass 1: resolve every live row to its group, so the fold loops below
  // run column-at-a-time over each aggregate's input lane.
  row_group_.resize(live);
  const bool single_i64_key =
      group_cols_.size() == 1 && group_cols_[0] >= 0 &&
      static_cast<size_t>(group_cols_[0]) < b.num_columns() &&
      b.column(group_cols_[0]).kind() == Column::Kind::kInt64;
  if (single_i64_key) {
    // Unboxed probe for the dominant GROUP BY shape, with a last-key memo
    // (skewed keys repeat in runs). Hashing matches CellHash/HashTupleCols
    // bit for bit, so groups merge identically to the generic path.
    const Column& kc = b.column(group_cols_[0]);
    const int64_t* lane = kc.int64s().data();
    bool have_last = false;
    int64_t last_key = 0;
    uint32_t last_gi = 0;
    for (size_t i = 0; i < live; ++i) {
      const size_t row = b.RowId(i);
      if (kc.IsNull(row)) {
        row_group_[i] = static_cast<uint32_t>(FindOrCreateGroup(b, row));
        continue;
      }
      const int64_t key = lane[row];
      if (have_last && key == last_key) {
        row_group_[i] = last_gi;
        continue;
      }
      const uint64_t h = HashCombine(
          0x243f6a8885a308d3ull,
          Mix64(0x1234abcdull ^ static_cast<uint64_t>(key)));
      if ((groups_.size() + 1) * 4 > slots_.size() * 3) GrowSlots();
      const size_t mask = slots_.size() - 1;
      size_t pos = h & mask;
      uint32_t gi = 0;
      bool found = false;
      while (slots_[pos] != 0) {
        gi = slots_[pos] - 1;
        if (group_hash_[gi] == h) {
          const Value& k0 = groups_[gi].key[0];
          // An integral DOUBLE key from an earlier boxed batch hashes and
          // compares equal to the INT64 cell; route through CellEquals.
          if (k0.type() == ValueType::kInt64 ? k0.int64_value() == key
                                             : kc.CellEquals(row, k0)) {
            found = true;
            break;
          }
        }
        pos = (pos + 1) & mask;
      }
      if (!found) {
        Group g;
        g.key.push_back(Value::Int64(key));
        g.state.resize(aggs_.size() * kPartialWidth);
        for (size_t a = 0; a < aggs_.size(); ++a) {
          AggInit(aggs_[a], &g.state[a * kPartialWidth],
                  &g.state[a * kPartialWidth + 1]);
        }
        gi = static_cast<uint32_t>(groups_.size());
        groups_.push_back(std::move(g));
        group_hash_.push_back(h);
        slots_[pos] = gi + 1;
      }
      row_group_[i] = gi;
      have_last = true;
      last_key = key;
      last_gi = gi;
    }
  } else {
    for (size_t i = 0; i < live; ++i) {
      row_group_[i] = static_cast<uint32_t>(FindOrCreateGroup(b, b.RowId(i)));
    }
  }
  // Pass 2: fold. When every aggregate has an unboxed step (COUNT, or
  // SUM/AVG/MIN/MAX over an INT64 lane) run one fused row loop so each
  // row's group state is resolved exactly once; otherwise fold per
  // aggregate through FoldAgg.
  struct FoldStep {
    enum class K {
      kCountStar,
      kCountCol,
      kSumI64,
      kAvgI64,
      kMinI64,
      kMaxI64,
      kNoop,  // out-of-range column: input NULL every row
    };
    K k = K::kNoop;
    const Column* col = nullptr;
    const int64_t* lane = nullptr;
    size_t s1 = 0;
  };
  std::vector<FoldStep> steps(aggs_.size());
  bool fused = true;
  for (size_t a = 0; a < aggs_.size() && fused; ++a) {
    const AggSpec& spec = aggs_[a];
    FoldStep& f = steps[a];
    f.s1 = a * kPartialWidth;
    if (spec.col < 0) {
      f.k = spec.fn == AggFunc::kCount ? FoldStep::K::kCountStar
                                       : FoldStep::K::kNoop;
      continue;
    }
    if (static_cast<size_t>(spec.col) >= b.num_columns()) {
      f.k = FoldStep::K::kNoop;
      continue;
    }
    f.col = &b.column(spec.col);
    if (spec.fn == AggFunc::kCount) {
      f.k = FoldStep::K::kCountCol;
      continue;
    }
    if (f.col->kind() != Column::Kind::kInt64) {
      fused = false;
      break;
    }
    f.lane = f.col->int64s().data();
    switch (spec.fn) {
      case AggFunc::kSum:
        f.k = FoldStep::K::kSumI64;
        break;
      case AggFunc::kAvg:
        f.k = FoldStep::K::kAvgI64;
        break;
      case AggFunc::kMin:
        f.k = FoldStep::K::kMinI64;
        break;
      case AggFunc::kMax:
        f.k = FoldStep::K::kMaxI64;
        break;
      case AggFunc::kCount:
        break;  // handled above
    }
  }
  if (!fused) {
    for (size_t a = 0; a < aggs_.size(); ++a) FoldAgg(b, a);
    return;
  }
  for (size_t i = 0; i < live; ++i) {
    const size_t row = b.RowId(i);
    Value* st = groups_[row_group_[i]].state.data();
    for (const FoldStep& f : steps) {
      switch (f.k) {
        case FoldStep::K::kCountStar: {
          Value& v1 = st[f.s1];
          v1 = Value::Int64(v1.int64_value() + 1);
          break;
        }
        case FoldStep::K::kCountCol: {
          if (f.col->IsNull(row)) break;
          Value& v1 = st[f.s1];
          v1 = Value::Int64(v1.int64_value() + 1);
          break;
        }
        case FoldStep::K::kAvgI64: {
          if (f.col->IsNull(row)) break;
          Value& v2 = st[f.s1 + 1];
          v2 = Value::Int64(v2.int64_value() + 1);
          [[fallthrough]];
        }
        case FoldStep::K::kSumI64: {
          if (f.col->IsNull(row)) break;
          const int64_t v = f.lane[row];
          Value& v1 = st[f.s1];
          if (v1.is_null()) {
            v1 = Value::Int64(v);
          } else if (v1.type() == ValueType::kInt64) {
            v1 = Value::Int64(v1.int64_value() + v);
          } else {
            double x = 0;
            (void)v1.AsDouble(&x);
            v1 = Value::Double(x + static_cast<double>(v));
          }
          break;
        }
        case FoldStep::K::kMinI64: {
          if (f.col->IsNull(row)) break;
          const int64_t v = f.lane[row];
          Value& v1 = st[f.s1];
          if (v1.is_null()) {
            v1 = Value::Int64(v);
          } else if (v1.type() == ValueType::kInt64) {
            if (v < v1.int64_value()) v1 = Value::Int64(v);
          } else {
            Value in = Value::Int64(v);
            if (in.Compare(v1) < 0) v1 = in;
          }
          break;
        }
        case FoldStep::K::kMaxI64: {
          if (f.col->IsNull(row)) break;
          const int64_t v = f.lane[row];
          Value& v1 = st[f.s1];
          if (v1.is_null()) {
            v1 = Value::Int64(v);
          } else if (v1.type() == ValueType::kInt64) {
            if (v > v1.int64_value()) v1 = Value::Int64(v);
          } else {
            Value in = Value::Int64(v);
            if (in.Compare(v1) > 0) v1 = in;
          }
          break;
        }
        case FoldStep::K::kNoop:
          break;
      }
    }
  }
}

void VectorGroupBy::FoldAgg(const RowBatch& b, size_t a) {
  const AggSpec& spec = aggs_[a];
  const size_t live = b.ActiveRows();
  const size_t s1 = a * kPartialWidth;
  const size_t s2 = s1 + 1;
  // COUNT(*) never looks at a column.
  if (spec.fn == AggFunc::kCount && spec.col < 0) {
    for (size_t i = 0; i < live; ++i) {
      Value& v1 = groups_[row_group_[i]].state[s1];
      v1 = Value::Int64(v1.int64_value() + 1);
    }
    return;
  }
  if (spec.col < 0 || static_cast<size_t>(spec.col) >= b.num_columns()) {
    // Input is NULL on every row: COUNT(col) skips nulls and the other
    // folds ignore null inputs, so there is nothing to do.
    return;
  }
  const Column& col = b.column(spec.col);
  // COUNT(col) needs only the validity bitmap, whatever the lane kind.
  if (spec.fn == AggFunc::kCount) {
    for (size_t i = 0; i < live; ++i) {
      if (col.IsNull(b.RowId(i))) continue;
      Value& v1 = groups_[row_group_[i]].state[s1];
      v1 = Value::Int64(v1.int64_value() + 1);
    }
    return;
  }
  // Unboxed folds on the numeric lanes. Each arm reproduces AggUpdateValue
  // exactly, including the state-type ladder of AddValues: a state that an
  // earlier (boxed) batch left as DOUBLE keeps accumulating as DOUBLE.
  if (col.kind() == Column::Kind::kInt64) {
    const int64_t* lane = col.int64s().data();
    for (size_t i = 0; i < live; ++i) {
      const size_t row = b.RowId(i);
      if (col.IsNull(row)) continue;
      const int64_t v = lane[row];
      std::vector<Value>& st = groups_[row_group_[i]].state;
      Value& v1 = st[s1];
      switch (spec.fn) {
        case AggFunc::kAvg: {
          Value& v2 = st[s2];
          v2 = Value::Int64(v2.int64_value() + 1);
          [[fallthrough]];
        }
        case AggFunc::kSum:
          if (v1.is_null()) {
            v1 = Value::Int64(v);
          } else if (v1.type() == ValueType::kInt64) {
            v1 = Value::Int64(v1.int64_value() + v);
          } else {
            double x = 0;
            (void)v1.AsDouble(&x);
            v1 = Value::Double(x + static_cast<double>(v));
          }
          break;
        case AggFunc::kMin:
          if (v1.is_null()) {
            v1 = Value::Int64(v);
          } else if (v1.type() == ValueType::kInt64) {
            if (v < v1.int64_value()) v1 = Value::Int64(v);
          } else {
            Value in = Value::Int64(v);
            if (in.Compare(v1) < 0) v1 = in;
          }
          break;
        case AggFunc::kMax:
          if (v1.is_null()) {
            v1 = Value::Int64(v);
          } else if (v1.type() == ValueType::kInt64) {
            if (v > v1.int64_value()) v1 = Value::Int64(v);
          } else {
            Value in = Value::Int64(v);
            if (in.Compare(v1) > 0) v1 = in;
          }
          break;
        case AggFunc::kCount:
          break;  // handled above
      }
    }
    return;
  }
  if (col.kind() == Column::Kind::kDouble &&
      (spec.fn == AggFunc::kSum || spec.fn == AggFunc::kAvg)) {
    const double* lane = col.doubles().data();
    for (size_t i = 0; i < live; ++i) {
      const size_t row = b.RowId(i);
      if (col.IsNull(row)) continue;
      const double v = lane[row];
      std::vector<Value>& st = groups_[row_group_[i]].state;
      Value& v1 = st[s1];
      if (spec.fn == AggFunc::kAvg) {
        Value& v2 = st[s2];
        v2 = Value::Int64(v2.int64_value() + 1);
      }
      if (v1.is_null()) {
        v1 = Value::Double(v);
      } else {
        // AddValues widens any prior INT64 state through AsDouble.
        double x = 0;
        (void)v1.AsDouble(&x);
        v1 = Value::Double(x + v);
      }
    }
    return;
  }
  // Boxed reference fold: strings, bools, mixed lanes, DOUBLE MIN/MAX
  // (Value::Compare owns the NaN ordering). Null inputs are no-ops for
  // every remaining fold, so skip them without boxing.
  for (size_t i = 0; i < live; ++i) {
    const size_t row = b.RowId(i);
    if (col.IsNull(row)) continue;
    std::vector<Value>& st = groups_[row_group_[i]].state;
    AggUpdateValue(spec, col.ValueAt(row), &st[s1], &st[s2]);
  }
}

void VectorGroupBy::DrainAndReset(
    const std::function<bool(catalog::Tuple&)>& emit) {
  std::vector<uint32_t> order(groups_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return catalog::CompareTuples(groups_[a].key, groups_[b].key) < 0;
  });
  bool more = true;
  for (uint32_t gi : order) {
    if (!more) break;
    Group& g = groups_[gi];
    catalog::Tuple out = std::move(g.key);
    if (finalize_) {
      for (size_t a = 0; a < aggs_.size(); ++a) {
        out.push_back(AggFinalize(aggs_[a], g.state[a * kPartialWidth],
                                  g.state[a * kPartialWidth + 1]));
      }
    } else {
      for (Value& v : g.state) out.push_back(std::move(v));
    }
    more = emit(out);
  }
  groups_.clear();
  group_hash_.clear();
  slots_.clear();
}

}  // namespace exec
}  // namespace pier
