// Columnar row batches: the unit of the vectorized data plane.
//
// A RowBatch holds a fixed set of typed column vectors (INT64, DOUBLE,
// STRING, BOOL — with a validity bitmap for NULLs, and a boxed-Value
// fallback column for anything the typed lanes cannot carry). Operators
// process whole batches at a time: scans decode store slices straight into
// builders, filters narrow a selection vector without materializing, and
// exchanges ship one column-major wire frame per batch instead of one frame
// per tuple.
//
// Values round-trip losslessly: Column::ValueAt() re-boxes exactly the Value
// that was appended, so the batch plane and the tuple plane agree bit for
// bit (the differential tests in tests/vectorized_test.cc hold both planes
// to that contract).

#ifndef PIER_EXEC_BATCH_H_
#define PIER_EXEC_BATCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/value.h"

namespace pier {
namespace exec {

/// One typed column vector with a validity bitmap. The storage kind is
/// chosen from the declared schema type; a value of any other runtime type
/// (heterogeneous edge data) promotes the whole column to the boxed kMixed
/// lane, preserving exact tuple-plane semantics at reduced speed.
class Column {
 public:
  enum class Kind : uint8_t {
    kInt64 = 0,
    kDouble = 1,
    kString = 2,
    kBool = 3,
    kMixed = 4,  ///< boxed Values; the always-correct fallback lane
  };

  Column() : kind_(Kind::kMixed) {}
  explicit Column(Kind k) : kind_(k) {}

  /// Storage kind for a declared schema type. BYTES and untyped columns go
  /// to the boxed lane; the common INT64/DOUBLE/STRING/BOOL lanes are typed.
  static Kind KindForType(ValueType t);
  static Column ForType(ValueType t) { return Column(KindForType(t)); }

  Kind kind() const { return kind_; }
  size_t size() const { return size_; }

  bool IsNull(size_t row) const {
    return (validity_[row >> 6] & (1ull << (row & 63))) == 0;
  }

  void AppendNull();
  /// Appends `v`, promoting to kMixed if its runtime type does not match
  /// the storage kind.
  void AppendValue(const Value& v);
  /// Typed appends (callers must know the column kind matches).
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string s);
  void AppendBool(bool v);
  /// Copies row `row` of `src` (same logical column, any kind) — the
  /// no-boxing path exchanges use when re-bucketing batches.
  void AppendFrom(const Column& src, size_t row);
  /// Removes the last row (builder rollback when a serialized row turns
  /// out malformed mid-decode).
  void PopBack();
  /// Replaces the contents with `n` all-NULL rows (bulk form the builder
  /// uses to materialize pruned columns at Take() time).
  void ResizeNull(size_t n);

  /// Pre-sizes storage for `n` rows (lanes and validity words).
  void Reserve(size_t n);

  /// Re-boxes row `row` as a Value (exactly the value that was appended).
  Value ValueAt(size_t row) const;

  /// Stable hash of row `row`, identical to ValueAt(row).Hash() but without
  /// boxing on the typed lanes. Join buckets and group tables rely on this
  /// matching Value::Hash bit for bit.
  uint64_t CellHash(size_t row) const;
  /// True iff ValueAt(row) compares equal to `v` (Value::Compare == 0),
  /// with a no-boxing fast path for INT64.
  bool CellEquals(size_t row, const Value& v) const;

  /// Raw typed storage (valid only for the matching kind).
  const std::vector<int64_t>& int64s() const { return i64_; }
  const std::vector<double>& doubles() const { return f64_; }
  const std::vector<std::string>& strings() const { return str_; }
  const std::vector<uint8_t>& bools() const { return b8_; }
  const std::vector<uint64_t>& validity() const { return validity_; }

  void Clear();

 private:
  friend class RowBatch;

  void PromoteToMixed();
  void PushValidity(bool valid);

  Kind kind_;
  size_t size_ = 0;
  /// Bit set = non-null. Word i covers rows [64i, 64i+64).
  std::vector<uint64_t> validity_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<std::string> str_;
  std::vector<uint8_t> b8_;
  std::vector<Value> mixed_;
};

/// A batch of rows in columnar form, with an optional selection vector.
/// When a selection is installed only the listed rows are live: filters
/// narrow it in place instead of materializing survivors, and the wire
/// codec compacts it away on encode.
class RowBatch {
 public:
  RowBatch() = default;
  explicit RowBatch(const catalog::Schema& schema);
  explicit RowBatch(const std::vector<ValueType>& types);

  size_t num_columns() const { return cols_.size(); }
  /// Physical rows (ignores the selection).
  size_t num_rows() const { return num_rows_; }
  /// Live rows: selection size if one is installed, else num_rows().
  size_t ActiveRows() const {
    return has_selection_ ? selection_.size() : num_rows_;
  }

  const Column& column(size_t i) const { return cols_[i]; }
  Column* mutable_column(size_t i) { return &cols_[i]; }

  bool has_selection() const { return has_selection_; }
  const std::vector<uint32_t>& selection() const { return selection_; }
  /// Installs `rows` (ascending physical row ids) as the live set.
  void SetSelection(std::vector<uint32_t> rows);
  void ClearSelection();
  /// Physical row id of live row `i`.
  uint32_t RowId(size_t i) const {
    return has_selection_ ? selection_[i] : static_cast<uint32_t>(i);
  }

  /// Boxes physical row `row` into a Tuple.
  void ToTuple(size_t row, catalog::Tuple* out) const;

  /// Dense copy containing only the live rows, selection cleared.
  RowBatch Compact() const;

  /// Dense copy of live rows [start, start+len) of the current live order —
  /// the unit of chunked wire delivery (bounding the rows one lost frame
  /// can cost). Clamps to the live range.
  RowBatch SliceLive(size_t start, size_t len) const;

  /// Shrinks the live set to its first `n` rows (no-op when already <= n).
  /// This is LIMIT pushdown on the batch plane: a sink that hits its cap
  /// mid-batch truncates the tail instead of delivering it.
  void TruncateLive(size_t n);

  /// Assembles a batch directly from pre-built columns (all of size `rows`)
  /// — how projection stages emit without re-boxing through a builder.
  static RowBatch FromColumns(std::vector<Column> cols, size_t rows);

  /// Column-major wire frame of the live rows (selection compacted away).
  /// One Encode is one network Payload body — the whole point.
  void Encode(Writer* w) const;
  std::string EncodeToBytes() const;
  /// Strict inverse of Encode. Malformed bytes return a Status and leave
  /// `out` unspecified; never crashes (fuzz-hardened like every decoder).
  static Status Decode(Reader* r, RowBatch* out);
  static Status FromBytes(std::string_view bytes, RowBatch* out);

 private:
  friend class RowBatchBuilder;

  std::vector<Column> cols_;
  size_t num_rows_ = 0;
  bool has_selection_ = false;
  std::vector<uint32_t> selection_;
};

/// Builds batches from tuples or — the hot path — straight from serialized
/// tuple bytes, decoding each value directly into its column vector with no
/// intermediate std::vector<Value> allocation.
class RowBatchBuilder {
 public:
  explicit RowBatchBuilder(const catalog::Schema& schema);
  explicit RowBatchBuilder(std::vector<ValueType> types);

  size_t num_rows() const { return batch_.num_rows(); }
  bool Empty() const { return batch_.num_rows() == 0; }

  /// Pre-sizes every column for `n` rows; re-applied after each Take() so a
  /// scan loop reserves once for its whole lifetime.
  void Reserve(size_t n);

  /// Restricts decoding to the named columns: AppendSerialized validates
  /// but steps over the payload bytes of every other column, and Take()
  /// materializes those columns as all-NULL in one bulk resize. This is
  /// scan-side column pruning — a query that never reads a column does not
  /// pay to decode or store it (the planner passes the set of columns its
  /// stages touch). An empty `needed` means all columns. Wire validation
  /// is unchanged: malformed rows are still rejected whole.
  void SetNeededColumns(const std::vector<int>& needed);

  void Append(const catalog::Tuple& t);
  /// Decodes one wire-format tuple (SerializeTuple layout) directly into
  /// the columns. Returns true if the row was appended; false (with no
  /// partial append) if the bytes are malformed or the column count does
  /// not match the schema — the same rows a tuple-plane scan would skip.
  bool AppendSerialized(std::string_view bytes);

  /// Moves the accumulated batch out and resets the builder.
  RowBatch Take();

 private:
  std::vector<ValueType> types_;
  /// Empty = decode everything; else one byte per column, nonzero = decode.
  std::vector<uint8_t> needed_;
  size_t reserve_hint_ = 0;
  RowBatch batch_;
};

}  // namespace exec
}  // namespace pier

#endif  // PIER_EXEC_BATCH_H_
