// Aggregate functions with decomposable partial states.
//
// In-network aggregation hinges on decomposability: every aggregate here
// has a uniform two-value partial representation that can be initialized
// from raw rows, merged associatively at interior tree nodes, and finalized
// at the root:
//
//   COUNT: (count, -)        SUM: (sum, -)       AVG: (sum, count)
//   MIN:   (min, -)          MAX: (max, -)
//
// A partial tuple is [group values..., a1.v1, a1.v2, a2.v1, a2.v2, ...].

#ifndef PIER_EXEC_AGG_H_
#define PIER_EXEC_AGG_H_

#include <string>
#include <vector>

#include "catalog/tuple.h"
#include "common/serialize.h"
#include "common/value.h"

namespace pier {
namespace exec {

enum class AggFunc : uint8_t { kCount = 0, kSum = 1, kAvg = 2, kMin = 3, kMax = 4 };

const char* AggFuncName(AggFunc fn);

/// One aggregate in a GROUP BY: the function, its input column in the raw
/// tuple (-1 means COUNT(*)), and the output column name.
struct AggSpec {
  AggFunc fn = AggFunc::kCount;
  int col = -1;
  std::string output_name;

  void Serialize(Writer* w) const {
    w->PutU8(static_cast<uint8_t>(fn));
    w->PutVarint64Signed(col);
    w->PutString(output_name);
  }
  static Status Deserialize(Reader* r, AggSpec* out) {
    uint8_t fn = 0;
    int64_t col = 0;
    PIER_RETURN_IF_ERROR(r->GetU8(&fn));
    if (fn > static_cast<uint8_t>(AggFunc::kMax)) {
      return Status::Corruption("bad agg func");
    }
    PIER_RETURN_IF_ERROR(r->GetVarint64Signed(&col));
    PIER_RETURN_IF_ERROR(r->GetString(&out->output_name));
    out->fn = static_cast<AggFunc>(fn);
    out->col = static_cast<int>(col);
    return Status::OK();
  }
};

/// Number of values a partial state occupies in a partial tuple.
inline constexpr int kPartialWidth = 2;

/// Initializes (v1, v2) to the aggregate's identity.
void AggInit(const AggSpec& spec, Value* v1, Value* v2);
/// Folds one raw row into the partial state.
void AggUpdate(const AggSpec& spec, const catalog::Tuple& row, Value* v1,
               Value* v2);
/// Same fold with the input value already extracted (NULL when the spec's
/// column is absent from the row). The vectorized accumulator
/// (exec/kernels.h) feeds column cells through this without building a
/// Tuple per row; AggUpdate delegates here so both planes share one
/// definition.
void AggUpdateValue(const AggSpec& spec, const Value& input, Value* v1,
                    Value* v2);
/// Merges another partial (in1, in2) into (v1, v2). Associative and
/// commutative — safe at any interior node of the aggregation tree.
void AggMerge(const AggSpec& spec, const Value& in1, const Value& in2,
              Value* v1, Value* v2);
/// Produces the final value from a partial state.
Value AggFinalize(const AggSpec& spec, const Value& v1, const Value& v2);

}  // namespace exec
}  // namespace pier

#endif  // PIER_EXEC_AGG_H_
