// The local relational operator library: filter, project, group-by (all
// aggregation phases), distinct, top-k, limit, union, symmetric hash join,
// and sinks. Network-facing operators (scans, rehash, fetch-matches) live in
// the query layer, which composes them with these boxes.

#ifndef PIER_EXEC_OPERATORS_H_
#define PIER_EXEC_OPERATORS_H_

#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/agg.h"
#include "exec/expr.h"
#include "exec/operator.h"

namespace pier {
namespace exec {

/// Drops tuples failing the predicate. Evaluation errors drop the tuple
/// (bad data must not kill a long-running distributed query; mirrors
/// PIER's soft-failure philosophy).
class FilterOp : public Operator {
 public:
  explicit FilterOp(ExprPtr predicate) : predicate_(std::move(predicate)) {}
  void Push(const catalog::Tuple& t, int port) override;
  std::string name() const override { return "filter"; }
  uint64_t dropped() const { return dropped_; }

 private:
  ExprPtr predicate_;
  uint64_t dropped_ = 0;
};

/// Emits [e1(t), e2(t), ...] for each input tuple.
class ProjectOp : public Operator {
 public:
  explicit ProjectOp(std::vector<ExprPtr> exprs) : exprs_(std::move(exprs)) {}
  void Push(const catalog::Tuple& t, int port) override;
  std::string name() const override { return "project"; }

 private:
  std::vector<ExprPtr> exprs_;
};

/// Which transformation a GroupByOp performs (see agg.h for the partial
/// representation).
enum class AggPhase : uint8_t {
  kComplete = 0,  ///< raw rows -> final aggregates (single-site execution)
  kPartial = 1,   ///< raw rows -> partial states (leaf of the agg tree)
  kCombine = 2,   ///< partials -> partials (interior tree node)
  kFinal = 3,     ///< partials -> final aggregates (tree root)
};

/// Hash group-by. Blocking: emits on EOS; continuous queries call
/// FlushAndReset() per window instead.
///
/// Input layout: raw rows for kComplete/kPartial (group_cols/agg cols index
/// into the raw schema); partial tuples for kCombine/kFinal, laid out as
/// [group values..., partial states...] — group_cols are then implicitly
/// 0..G-1.
class GroupByOp : public Operator {
 public:
  GroupByOp(std::vector<int> group_cols, std::vector<AggSpec> aggs,
            AggPhase phase);
  void Push(const catalog::Tuple& t, int port) override;
  std::string name() const override { return "groupby"; }

  /// Emits current groups downstream and clears state (window boundary).
  void FlushAndReset();
  size_t group_count() const { return groups_.size(); }

 protected:
  void OnAllInputsEos() override { FlushOnly(); }

 private:
  void FlushOnly();
  catalog::Tuple GroupKey(const catalog::Tuple& t) const;

  std::vector<int> group_cols_;
  std::vector<AggSpec> aggs_;
  AggPhase phase_;
  // Group key -> accumulated partial states (2 values per agg).
  std::map<catalog::Tuple, std::vector<Value>> groups_;
};

/// Suppresses tuples already seen (exact duplicate elimination by value).
class DistinctOp : public Operator {
 public:
  void Push(const catalog::Tuple& t, int port) override;
  std::string name() const override { return "distinct"; }
  size_t unique_count() const { return seen_.size(); }

 private:
  // Hash -> tuples with that hash (collision-safe exact check).
  std::unordered_map<uint64_t, std::vector<catalog::Tuple>> seen_;
};

/// ORDER BY <col> [DESC] LIMIT k. Blocking: keeps the best k, emits sorted
/// on EOS or FlushAndReset().
class TopKOp : public Operator {
 public:
  TopKOp(int order_col, bool descending, size_t k)
      : order_col_(order_col), descending_(descending), k_(k) {}
  void Push(const catalog::Tuple& t, int port) override;
  std::string name() const override { return "topk"; }
  void FlushAndReset();

 protected:
  void OnAllInputsEos() override { FlushOnly(); }

 private:
  void FlushOnly();
  bool Before(const catalog::Tuple& a, const catalog::Tuple& b) const;

  int order_col_;
  bool descending_;
  size_t k_;
  std::vector<catalog::Tuple> rows_;  // kept at most k after each insert
};

/// Passes through the first `k` tuples, then drops.
class LimitOp : public Operator {
 public:
  explicit LimitOp(size_t k) : k_(k) {}
  void Push(const catalog::Tuple& t, int port) override;
  std::string name() const override { return "limit"; }

 private:
  size_t k_;
  size_t passed_ = 0;
};

/// Merges any number of input streams (set SetNumInputs accordingly).
class UnionOp : public Operator {
 public:
  void Push(const catalog::Tuple& t, int /*port*/) override { Emit(t); }
  std::string name() const override { return "union"; }
};

/// Pipelined symmetric hash join: builds hash tables on both inputs and
/// probes the opposite side on every arrival, so results stream out as soon
/// as both matching tuples exist — no blocking, which is what makes it
/// suitable for continuously arriving rehashed tuples. Port 0 = left,
/// port 1 = right. Output is the concatenation left ++ right, optionally
/// filtered by a residual predicate over the concatenated layout.
class SymmetricHashJoinOp : public Operator {
 public:
  SymmetricHashJoinOp(std::vector<int> left_key_cols,
                      std::vector<int> right_key_cols, ExprPtr residual);
  void Push(const catalog::Tuple& t, int port) override;
  std::string name() const override { return "shj"; }
  size_t left_size() const { return left_rows_; }
  size_t right_size() const { return right_rows_; }

 private:
  void Probe(const catalog::Tuple& t, int side);
  bool KeysEqual(const catalog::Tuple& l, const catalog::Tuple& r) const;
  void EmitJoined(const catalog::Tuple& l, const catalog::Tuple& r);

  std::vector<int> left_keys_, right_keys_;
  ExprPtr residual_;
  std::unordered_map<uint64_t, std::vector<catalog::Tuple>> left_table_;
  std::unordered_map<uint64_t, std::vector<catalog::Tuple>> right_table_;
  size_t left_rows_ = 0, right_rows_ = 0;
};

/// Collects results (query-origin sink). Also reports EOS.
class CollectorSink : public Operator {
 public:
  void Push(const catalog::Tuple& t, int /*port*/) override {
    rows_.push_back(t);
  }
  void PushEos(int /*port*/) override {
    if (++eos_seen_ >= num_inputs_) eos_ = true;
  }
  std::string name() const override { return "collect"; }

  const std::vector<catalog::Tuple>& rows() const { return rows_; }
  bool eos() const { return eos_; }
  void Clear() {
    rows_.clear();
    eos_ = false;
    eos_seen_ = 0;
  }

 private:
  std::vector<catalog::Tuple> rows_;
  bool eos_ = false;
};

/// Invokes a callback per tuple (bridges dataflow output into engine code).
class FnSink : public Operator {
 public:
  using Fn = std::function<void(const catalog::Tuple&)>;
  using EosFn = std::function<void()>;
  explicit FnSink(Fn fn, EosFn on_eos = nullptr)
      : fn_(std::move(fn)), on_eos_(std::move(on_eos)) {}
  void Push(const catalog::Tuple& t, int /*port*/) override { fn_(t); }
  void PushEos(int /*port*/) override {
    if (++eos_seen_ >= num_inputs_ && on_eos_) on_eos_();
  }
  std::string name() const override { return "fn-sink"; }

 private:
  Fn fn_;
  EosFn on_eos_;
};

}  // namespace exec
}  // namespace pier

#endif  // PIER_EXEC_OPERATORS_H_
