// Scalar expressions over tuples.
//
// Expressions are built by the SQL planner (or directly via the factory
// functions — the algebraic API) with column references already bound to
// tuple indices, so evaluation needs no schema. They serialize, because
// query plans carrying predicates are shipped to every node.
//
// NULL semantics follow SQL: comparisons involving NULL are false,
// arithmetic involving NULL is NULL, and IS NULL tests explicitly.

#ifndef PIER_EXEC_EXPR_H_
#define PIER_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/tuple.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/value.h"

namespace pier {
namespace exec {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod };

const char* CompareOpName(CompareOp op);
const char* ArithOpName(ArithOp op);

/// Structural description of one expression node, exposed through
/// Expr::Info() so the batch compiler (exec/kernels.h) can walk a bound
/// tree and emit vectorized kernels without widening the Expr interface
/// for every node type. Only the fields relevant to `kind` are meaningful.
struct ExprInfo {
  enum class Kind : uint8_t {
    kLiteral,
    kColumn,
    kCompare,
    kArith,
    kAnd,
    kOr,
    kNot,
    kNeg,
    kIsNull,
    kIsNotNull,
  };
  Kind kind = Kind::kLiteral;
  Value literal;                 ///< kLiteral
  int column = -1;               ///< kColumn
  CompareOp cmp = CompareOp::kEq;  ///< kCompare
  ArithOp arith = ArithOp::kAdd;   ///< kArith
  /// Children (borrowed; valid while the owning Expr lives). Unary nodes
  /// use `left` only.
  const Expr* left = nullptr;
  const Expr* right = nullptr;
};

/// Immutable expression tree node.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates against `t`. Type errors (e.g. 'a' + 1) return
  /// InvalidArgument; data-dependent hazards (division by zero) yield NULL.
  virtual Status Eval(const catalog::Tuple& t, Value* out) const = 0;

  /// Structural view of this node for the batch compiler. Scalar Eval()
  /// stays the semantic reference; compiled kernels must agree with it row
  /// for row (tests/vectorized_test.cc enforces this differentially).
  virtual ExprInfo Info() const = 0;

  /// Wire encoding (kind tag + operands).
  virtual void Serialize(Writer* w) const = 0;
  /// Rebuilds a tree from the wire (depth-limited against malicious input).
  static Status Deserialize(Reader* r, ExprPtr* out);

  /// Human-readable rendering for EXPLAIN-style output.
  virtual std::string ToString() const = 0;

  // Factories (the algebraic expression-building API).
  static ExprPtr Literal(Value v);
  /// Reference to tuple column `index`; `name` is cosmetic (ToString).
  static ExprPtr Column(int index, std::string name = "");
  static ExprPtr Compare(CompareOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
  static ExprPtr And(ExprPtr l, ExprPtr r);
  static ExprPtr Or(ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr e);
  static ExprPtr Negate(ExprPtr e);
  static ExprPtr IsNull(ExprPtr e, bool negated = false);
};

/// Evaluates `e` as a predicate: NULL and non-bool results are false.
Status EvalPredicate(const Expr& e, const catalog::Tuple& t, bool* out);

}  // namespace exec
}  // namespace pier

#endif  // PIER_EXEC_EXPR_H_
