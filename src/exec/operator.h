// The "boxes and arrows" dataflow protocol.
//
// PIER is a push-based engine: sources push tuples downstream; blocking
// operators (group-by, top-k) accumulate and release on end-of-stream or on
// an explicit Flush (continuous queries flush per window; recursive queries
// never see EOS and rely on quiescence instead). An operator may feed
// multiple downstream boxes (DAGs) and may receive from multiple upstream
// boxes on distinct input ports (joins, unions).
//
// Operators are single-threaded within a node, matching the event-driven
// simulator.

#ifndef PIER_EXEC_OPERATOR_H_
#define PIER_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/tuple.h"

namespace pier {
namespace exec {

/// Base class for all dataflow boxes.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Wires `downstream` to receive this operator's output on `port`.
  void AddOutput(Operator* downstream, int port = 0) {
    outputs_.push_back({downstream, port});
  }

  /// Declares how many upstream streams feed this operator (default 1);
  /// EOS propagates downstream only after all inputs reported EOS.
  void SetNumInputs(int n) { num_inputs_ = n; }

  /// Receives one tuple on `port`.
  virtual void Push(const catalog::Tuple& t, int port) = 0;

  /// Receives end-of-stream on one input.
  virtual void PushEos(int /*port*/) {
    if (++eos_seen_ >= num_inputs_) {
      OnAllInputsEos();
      EmitEos();
    }
  }

  /// Diagnostic name ("filter", "groupby", ...).
  virtual std::string name() const = 0;

  /// Tuples emitted downstream so far.
  uint64_t emitted() const { return emitted_; }

 protected:
  /// Hook for blocking operators to release buffered state before EOS
  /// propagates.
  virtual void OnAllInputsEos() {}

  void Emit(const catalog::Tuple& t) {
    ++emitted_;
    for (const Out& o : outputs_) o.op->Push(t, o.port);
  }
  void EmitEos() {
    for (const Out& o : outputs_) o.op->PushEos(o.port);
  }

  struct Out {
    Operator* op;
    int port;
  };
  std::vector<Out> outputs_;
  int num_inputs_ = 1;
  int eos_seen_ = 0;
  uint64_t emitted_ = 0;
};

/// Owns a set of operators forming one local dataflow graph; the building
/// block of the algebraic API. Operators are destroyed with the graph.
class Dataflow {
 public:
  /// Constructs an operator of type T in place and returns it.
  template <typename T, typename... Args>
  T* Add(Args&&... args) {
    auto op = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = op.get();
    ops_.push_back(std::move(op));
    return raw;
  }

  /// Arrow from `from` to `to` (input `port` of `to`).
  void Connect(Operator* from, Operator* to, int port = 0) {
    from->AddOutput(to, port);
  }

  size_t size() const { return ops_.size(); }

 private:
  std::vector<std::unique_ptr<Operator>> ops_;
};

}  // namespace exec
}  // namespace pier

#endif  // PIER_EXEC_OPERATOR_H_
