#include "index/pht_cursor.h"

namespace pier {
namespace index {

PhtCursor::PhtCursor(GetFn get, uint64_t lo, uint64_t hi,
                     uint64_t max_leaves)
    : get_(std::move(get)), lo_(lo), hi_(hi), max_leaves_(max_leaves) {}

void PhtCursor::Run(RowFn row, DoneFn done) {
  row_ = std::move(row);
  done_ = std::move(done);
  if (lo_ > hi_) {
    Finish(Outcome::kOk, Status::OK());
    return;
  }
  cur_key_ = lo_;
  Locate();
}

void PhtCursor::Locate() {
  lo_depth_ = 0;
  hi_depth_ = kKeyBits;
  use_hint_ = depth_hint_ >= 0;
  Probe();
}

int PhtCursor::ProbeDepth() const {
  if (use_hint_) {
    int d = depth_hint_;
    if (d < lo_depth_) d = lo_depth_;
    if (d > hi_depth_) d = hi_depth_;
    return d;
  }
  return (lo_depth_ + hi_depth_) / 2;
}

void PhtCursor::Probe() {
  while (!finished_) {
    if (lo_depth_ > hi_depth_) {
      // No leaf anywhere on this key's path. In a healthy trie that cannot
      // happen: splits materialize BOTH children, so every path ends at a
      // leaf marker (possibly with zero entries). Converging on nothing
      // below an internal ancestor means the trie lost nodes mid-churn —
      // report an error so the query layer falls back to a broadcast scan
      // rather than pass damage off as an empty region. Converging on an
      // entirely silent trie means the index is cold.
      if (!saw_trie_state_) {
        Finish(Outcome::kColdIndex, Status::OK());
      } else {
        Finish(Outcome::kError,
               Status::Unavailable("pht path lost its leaf (churn)"));
      }
      return;
    }
    int depth = ProbeDepth();
    // Prefixes already known internal resolve without the network: sibling
    // locates share the upper trie path.
    if (known_internal_.count(Prefix(cur_key_, depth)) > 0) {
      use_hint_ = false;
      lo_depth_ = depth + 1;
      continue;
    }
    if (stats_.probes >= kMaxProbes) {
      Finish(Outcome::kError,
             Status::Unavailable("pht walk exceeded budget"));
      return;
    }
    ++stats_.probes;
    get_(Prefix(cur_key_, depth),
         [this](Status s, std::vector<dht::DhtItem> items) {
           OnProbe(std::move(s), std::move(items));
         });
    return;
  }
}

PhtCursor::NodeClass PhtCursor::Classify(
    const std::vector<dht::DhtItem>& items) {
  bool has_entries = false;
  for (const dht::DhtItem& item : items) {
    if (item.key.instance == kMarkerInstance) {
      Reader r(item.value);
      PhtNodeRecord rec;
      // An internal marker overrules any entries still decaying here from
      // before the node split.
      if (PhtNodeRecord::Deserialize(&r, &rec).ok() && rec.internal) {
        return NodeClass::kInternal;
      }
      has_entries = true;  // leaf marker counts as presence
    } else {
      has_entries = true;
    }
  }
  return has_entries ? NodeClass::kLeaf : NodeClass::kEmpty;
}

void PhtCursor::OnProbe(Status s, std::vector<dht::DhtItem> items) {
  if (finished_) return;
  if (!s.ok()) {
    Finish(Outcome::kError, std::move(s));
    return;
  }
  int depth = ProbeDepth();
  use_hint_ = false;  // the hint is only ever the first probe of a locate
  switch (Classify(items)) {
    case NodeClass::kInternal:
      saw_trie_state_ = true;
      known_internal_.insert(Prefix(cur_key_, depth));
      // Internal nodes can hold residual entries: moves awaiting (or
      // denied) their child ack during a partition, or failover ghosts.
      // Reading them here is what makes "no key lost across a split" hold
      // under arbitrary fault timing; the instance dedup keeps exactness.
      EmitLeaf(Prefix(cur_key_, depth), items);
      if (finished_) return;
      lo_depth_ = depth + 1;
      Probe();
      return;
    case NodeClass::kLeaf: {
      saw_trie_state_ = true;
      ++stats_.leaves;
      depth_hint_ = depth;
      std::string prefix = Prefix(cur_key_, depth);
      EmitLeaf(prefix, items);
      if (!finished_) Advance(prefix);
      return;
    }
    case NodeClass::kEmpty:
      hi_depth_ = depth - 1;
      Probe();
      return;
  }
}

void PhtCursor::EmitLeaf(const std::string& /*prefix*/,
                         const std::vector<dht::DhtItem>& items) {
  for (const dht::DhtItem& item : items) {
    if (item.key.instance == kMarkerInstance) continue;
    PhtEntry entry;
    Reader r(item.value);
    if (!PhtEntry::Deserialize(&r, &entry).ok()) continue;
    ++stats_.entries_seen;
    if (entry.key < lo_ || entry.key > hi_) continue;
    if (!emitted_instances_.insert(item.key.instance).second) continue;
    ++stats_.entries_emitted;
    if (!row_(entry, item.key.instance)) {
      Finish(Outcome::kOk, Status::OK());
      return;
    }
  }
}

void PhtCursor::Advance(const std::string& leaf_prefix) {
  uint64_t next = 0;
  if (leaf_prefix.empty() || !NextKeyAfterPrefix(leaf_prefix, &next) ||
      next > hi_) {
    // The root leaf covers everything / walked off the top of the keyspace
    // / the next region starts past the range: done.
    Finish(Outcome::kOk, Status::OK());
    return;
  }
  cur_key_ = next;
  if (max_leaves_ > 0 && stats_.leaves >= max_leaves_) {
    Finish(Outcome::kMore, Status::OK());  // resume point in next_key()
    return;
  }
  Locate();
}

void PhtCursor::Finish(Outcome outcome, Status s) {
  if (finished_) return;
  finished_ = true;
  if (done_) done_(outcome, std::move(s));
}

}  // namespace index
}  // namespace pier
