#include "index/pht.h"

#include "common/backoff.h"

namespace pier {
namespace index {

// ---------------------------------------------------------------------------
// Wire records
// ---------------------------------------------------------------------------

namespace {
// Marker wire tags. A one-byte record keeps trie metadata cheap to renew.
constexpr uint8_t kTagLeaf = 1;
constexpr uint8_t kTagInternal = 2;
}  // namespace

void PhtNodeRecord::Serialize(Writer* w) const {
  w->PutU8(internal ? kTagInternal : kTagLeaf);
}

Status PhtNodeRecord::Deserialize(Reader* r, PhtNodeRecord* out) {
  uint8_t tag = 0;
  PIER_RETURN_IF_ERROR(r->GetU8(&tag));
  if (tag != kTagLeaf && tag != kTagInternal) {
    return Status::Corruption("bad pht marker tag");
  }
  out->internal = tag == kTagInternal;
  return Status::OK();
}

void PhtEntry::Serialize(Writer* w) const {
  w->PutFixed64(key);
  w->PutString(tuple_bytes);
}

Status PhtEntry::Deserialize(Reader* r, PhtEntry* out) {
  PIER_RETURN_IF_ERROR(r->GetFixed64(&out->key));
  return r->GetString(&out->tuple_bytes);
}

// ---------------------------------------------------------------------------
// PhtIndex
// ---------------------------------------------------------------------------

namespace {

bool ValidPrefix(const std::string& p) {
  if (p.size() > static_cast<size_t>(kKeyBits)) return false;
  for (char c : p) {
    if (c != '0' && c != '1') return false;
  }
  return true;
}

std::string MarkerBytes(bool internal) {
  Writer w;
  PhtNodeRecord rec;
  rec.internal = internal;
  rec.Serialize(&w);
  return w.Release();
}

}  // namespace

std::string PhtIndex::NamespaceFor(const std::string& table, int col) {
  return "#idx." + table + "." + std::to_string(col);
}

PhtIndex::PhtIndex(dht::Dht* dht, sim::Simulation* sim, std::string ns,
                   PhtOptions options)
    : dht_(dht), sim_(sim), ns_(std::move(ns)), options_(options) {
  dht_->SubscribeArrivals(ns_, [this](const dht::StoredItem& item) {
    return OnArrival(item);
  });
  // Deterministic (node, namespace) phase/period spread: without it every
  // node booted at t=0 fires its sweep on the same tick, and the repair
  // traffic arrives in synchronized bursts.
  uint64_t salt = MixHash64(HashBytes(ns_) ^
                            (static_cast<uint64_t>(dht_->self()) << 32));
  auto jittered = [&](Duration base, uint64_t lane) {
    double j = options_.repair_jitter;
    if (j <= 0) return base;
    uint64_t h = MixHash64(salt ^ (lane << 56));
    double f = 1.0 + j * (2.0 * (static_cast<double>(h >> 11) /
                                 static_cast<double>(1ull << 53)) -
                          1.0);
    Duration d = static_cast<Duration>(static_cast<double>(base) * f);
    return d < Millis(1) ? Millis(1) : d;
  };
  repair_task_.Start(sim_, jittered(options_.repair_interval, 1),
                     jittered(options_.repair_interval, 2),
                     [this] { RepairSweep(); });
  attached_ = true;
}

PhtIndex::~PhtIndex() { Detach(); }

void PhtIndex::Detach() {
  if (attached_) {
    dht_->UnsubscribeArrivals(ns_);
    repair_task_.Stop();
    attached_ = false;
  }
}

void PhtIndex::RepairSweep() {
  // Residuals — entries parked at an internal prefix because their move
  // could not ack (partition, churn) or because a failover resurfaced a
  // replica — are re-driven one level down until they land or expire.
  struct Residual {
    std::string prefix;
    PhtEntry entry;
    Duration ttl;
    uint64_t instance;
  };
  std::vector<Residual> residuals;
  TimePoint now = sim_->now();
  dht_->local_store()->ForEach(ns_, now, [&](const dht::StoredItem& item) {
    if (item.key.instance == kMarkerInstance) return true;
    if (static_cast<int>(item.key.resource.size()) >= kKeyBits) return true;
    if (!LocalMarkerInternal(item.key.resource)) return true;
    PhtEntry e;
    Reader r(item.value);
    if (PhtEntry::Deserialize(&r, &e).ok()) {
      residuals.push_back({item.key.resource, std::move(e),
                           item.expires_at - now, item.key.instance});
    }
    return true;
  });
  for (const Residual& res : residuals) {
    ++stats_.repairs_driven;
    MoveEntryDown(res.prefix, res.entry, res.ttl, res.instance);
  }
}

void PhtIndex::Insert(const PhtEntry& entry, Duration ttl,
                      uint64_t instance) {
  // Descend through the levels this node already knows are internal; the
  // owners forward the rest of the way (and teach us nothing — only splits
  // and forwards we perform ourselves populate the cache, so a node that
  // never owns trie state simply pays the extra forwarding hops).
  std::string prefix;
  while (static_cast<int>(prefix.size()) < kKeyBits &&
         known_internal_.count(prefix) > 0) {
    prefix.push_back(Bit(entry.key, static_cast<int>(prefix.size())) != 0
                         ? '1'
                         : '0');
  }
  ++stats_.inserts;
  PutEntryAt(prefix, entry, ttl, instance);
}

void PhtIndex::PutEntryAt(const std::string& prefix, const PhtEntry& entry,
                          Duration ttl, uint64_t instance) {
  Writer w;
  entry.Serialize(&w);
  dht_->Put(dht::DhtKey{ns_, prefix, instance}, w.Release(), ttl, nullptr);
}

bool PhtIndex::LocalMarkerInternal(const std::string& prefix) const {
  bool internal = false;
  dht_->local_store()->ForEachAt(
      ns_, prefix, sim_->now(), [&](const dht::StoredItem& item) {
        if (item.key.instance != kMarkerInstance) return false;  // sorted
        Reader r(item.value);
        PhtNodeRecord rec;
        if (PhtNodeRecord::Deserialize(&r, &rec).ok()) {
          internal = rec.internal;
        }
        return false;
      });
  return internal;
}

void PhtIndex::TouchMarker(const std::string& prefix, bool internal) {
  dht::StoredItem marker;
  marker.key = dht::DhtKey{ns_, prefix, kMarkerInstance};
  marker.value = MarkerBytes(internal);
  marker.expires_at = sim_->now() + options_.marker_ttl;
  marker.stored_at = sim_->now();
  marker.replica = false;
  dht_->local_store()->Put(std::move(marker));
}

bool PhtIndex::OnArrival(const dht::StoredItem& item) {
  const std::string& prefix = item.key.resource;
  if (!ValidPrefix(prefix)) return true;  // alien resource: store inertly
  if (item.key.instance == kMarkerInstance) {
    Reader r(item.value);
    PhtNodeRecord rec;
    if (!PhtNodeRecord::Deserialize(&r, &rec).ok()) return false;
    if (rec.internal) {
      known_internal_.insert(prefix);
    } else if (LocalMarkerInternal(prefix)) {
      // A split's child-leaf marker racing this node's own later split:
      // the owner's internal transition is authoritative, a stale leaf
      // marker must not downgrade it and orphan the subtree.
      return false;
    }
    return true;
  }

  PhtEntry entry;
  {
    Reader r(item.value);
    if (!PhtEntry::Deserialize(&r, &entry).ok()) return false;  // drop junk
  }
  const int depth = static_cast<int>(prefix.size());

  if (depth < kKeyBits && LocalMarkerInternal(prefix)) {
    // Past an interior node: relay one level toward the key's leaf. The
    // marker refresh is what keeps a live trie's shape from expiring. The
    // relay is acked — if the child's owner is unreachable the entry comes
    // back as a residual here instead of vanishing into the cut.
    TouchMarker(prefix, /*internal=*/true);
    known_internal_.insert(prefix);
    Duration ttl = item.expires_at - sim_->now();
    if (ttl > 0) {
      MoveEntryDown(prefix, entry, ttl, item.key.instance);
      ++stats_.entries_forwarded;
    }
    return false;  // consumed: never stored (or replicated) here
  }

  // Leaf (or max-depth bucket, which never splits: keys with identical
  // 64-bit encodings must be allowed to exceed the threshold). A renewal —
  // an instance already stored here — replaces its copy in place and must
  // not count as growth, or every full leaf would split on its next
  // soft-state refresh.
  bool renewal = false;
  size_t occupancy = 1;  // the arriving entry
  dht_->local_store()->ForEachAt(ns_, prefix, sim_->now(),
                                 [&](const dht::StoredItem& stored) {
                                   if (stored.key.instance ==
                                       kMarkerInstance) {
                                     return true;
                                   }
                                   renewal |= stored.key.instance ==
                                              item.key.instance;
                                   ++occupancy;
                                   return true;
                                 });
  if (renewal) --occupancy;
  if (depth < kKeyBits &&
      occupancy > static_cast<size_t>(options_.bucket_size)) {
    Split(prefix, item);
    return false;  // incoming entry re-routed by the split
  }
  TouchMarker(prefix, /*internal=*/false);
  ++stats_.entries_stored;
  return true;
}

void PhtIndex::Split(const std::string& prefix,
                     const dht::StoredItem& incoming) {
  ++stats_.splits;
  known_internal_.insert(prefix);
  // Immediate local transition so every subsequent arrival forwards, then a
  // routed self-put so the internal marker is replicated like any item.
  TouchMarker(prefix, /*internal=*/true);
  dht_->Put(dht::DhtKey{ns_, prefix, kMarkerInstance},
            MarkerBytes(/*internal=*/true), options_.marker_ttl, nullptr);
  // Materialize BOTH children: every internal node's children exist (as
  // leaf markers at their owners, possibly with zero entries). This is the
  // trie-consistency signal cursors rely on — a probe finding NOTHING
  // directly below an internal node means the trie lost state mid-churn,
  // and the query layer falls back to a broadcast scan instead of
  // mistaking the damage for an empty region.
  for (char bit : {'0', '1'}) {
    std::string child = prefix;
    child.push_back(bit);
    dht_->Put(dht::DhtKey{ns_, child, kMarkerInstance},
              MarkerBytes(/*internal=*/false), options_.marker_ttl, nullptr);
  }

  // Materialize the bucket before issuing moves: the re-puts below can loop
  // back into OnArrival and must not race a live iteration. Parent copies
  // stay in the store until each move acks (MoveEntryDown).
  struct Moved {
    PhtEntry entry;
    Duration ttl;
    uint64_t instance;
  };
  std::vector<Moved> bucket;
  TimePoint now = sim_->now();
  dht_->local_store()->ForEachAt(
      ns_, prefix, now, [&](const dht::StoredItem& item) {
        if (item.key.instance == kMarkerInstance) return true;
        PhtEntry e;
        Reader r(item.value);
        if (PhtEntry::Deserialize(&r, &e).ok() && item.expires_at > now) {
          bucket.push_back({std::move(e), item.expires_at - now,
                            item.key.instance});
        }
        return true;
      });
  {
    // The overflow-triggering arrival was consumed (never stored), so a
    // failed move RESTORES it at the parent rather than erasing it.
    PhtEntry e;
    Reader r(incoming.value);
    if (PhtEntry::Deserialize(&r, &e).ok() &&
        incoming.expires_at > now) {
      std::string parent = prefix;
      Duration ttl = incoming.expires_at - now;
      uint64_t instance = incoming.key.instance;
      RestoreAtParent(parent, e, ttl, instance);
      bucket.push_back({std::move(e), ttl, instance});
    }
  }
  for (const Moved& m : bucket) {
    MoveEntryDown(prefix, m.entry, m.ttl, m.instance);
    ++stats_.split_moves;
  }
}

void PhtIndex::MoveEntryDown(const std::string& parent,
                             const PhtEntry& entry, Duration ttl,
                             uint64_t instance) {
  std::string child = parent;
  child.push_back(Bit(entry.key, static_cast<int>(parent.size())) != 0
                      ? '1'
                      : '0');
  Writer w;
  entry.Serialize(&w);
  PhtEntry keep = entry;
  dht_->Put(dht::DhtKey{ns_, child, instance}, w.Release(), ttl,
            [this, parent, keep, ttl, instance](Status s) {
              if (s.ok()) {
                ++stats_.moves_acked;
                dht_->local_store()->Erase(ns_, parent, instance);
              } else {
                // Unreachable child (partition, churn): keep the parent
                // copy readable — cursors visit internal-node residuals.
                ++stats_.moves_failed;
                RestoreAtParent(parent, keep, ttl, instance);
              }
            });
}

void PhtIndex::RestoreAtParent(const std::string& parent,
                               const PhtEntry& entry, Duration ttl,
                               uint64_t instance) {
  if (ttl <= 0) return;
  dht::StoredItem item;
  item.key = dht::DhtKey{ns_, parent, instance};
  Writer w;
  entry.Serialize(&w);
  item.value = w.Release();
  item.expires_at = sim_->now() + ttl;
  item.stored_at = sim_->now();
  item.replica = false;
  dht_->local_store()->Put(std::move(item));
}

}  // namespace index
}  // namespace pier
