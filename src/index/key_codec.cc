#include "index/key_codec.h"

#include <cmath>
#include <limits>

namespace pier {
namespace index {

uint64_t EncodeInt64(int64_t v) {
  return static_cast<uint64_t>(v) ^ (1ull << 63);
}

uint64_t EncodeString(std::string_view s) {
  uint64_t key = 0;
  for (int i = 0; i < 8; ++i) {
    uint8_t byte = i < static_cast<int>(s.size())
                       ? static_cast<uint8_t>(s[i])
                       : 0;
    key = (key << 8) | byte;
  }
  return key;
}

namespace {

/// Doubles entering an INT64-keyed trie round toward the widening side.
bool EncodeDoubleAsInt64(double d, BoundSide side, uint64_t* out) {
  if (std::isnan(d)) return false;
  double rounded = side == BoundSide::kUpper ? std::ceil(d) : std::floor(d);
  constexpr double kMin = -9223372036854775808.0;  // -2^63
  constexpr double kMax = 9223372036854775808.0;   // 2^63
  if (rounded <= kMin) {
    *out = EncodeInt64(std::numeric_limits<int64_t>::min());
  } else if (rounded >= kMax) {
    *out = EncodeInt64(std::numeric_limits<int64_t>::max());
  } else {
    *out = EncodeInt64(static_cast<int64_t>(rounded));
  }
  return true;
}

}  // namespace

bool EncodeValue(const Value& v, ValueType col_type, BoundSide side,
                 uint64_t* out) {
  switch (col_type) {
    case ValueType::kInt64:
      if (v.type() == ValueType::kInt64) {
        *out = EncodeInt64(v.int64_value());
        return true;
      }
      if (v.type() == ValueType::kDouble) {
        return EncodeDoubleAsInt64(v.double_value(), side, out);
      }
      return false;
    case ValueType::kString:
      if (v.type() == ValueType::kString) {
        *out = EncodeString(v.string_value());
        return true;
      }
      return false;
    default:
      return false;
  }
}

std::string Prefix(uint64_t key, int depth) {
  std::string out;
  out.reserve(static_cast<size_t>(depth));
  for (int i = 0; i < depth; ++i) {
    out.push_back(Bit(key, i) != 0 ? '1' : '0');
  }
  return out;
}

bool NextKeyAfterPrefix(const std::string& prefix, uint64_t* out) {
  // Increment the prefix as a binary number; keys below the incremented
  // prefix (padded with zeros) are exactly the keys above everything the
  // original prefix covers.
  std::string p = prefix;
  int i = static_cast<int>(p.size()) - 1;
  for (; i >= 0; --i) {
    if (p[i] == '0') {
      p[i] = '1';
      break;
    }
    p[i] = '0';
  }
  if (i < 0) return false;  // prefix was all ones
  uint64_t key = 0;
  for (size_t b = 0; b < p.size(); ++b) {
    if (p[b] == '1') key |= 1ull << (kKeyBits - 1 - b);
  }
  *out = key;
  return true;
}

}  // namespace index
}  // namespace pier
