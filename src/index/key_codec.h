// Order-preserving binary key encoding for the Prefix Hash Tree.
//
// Every indexable attribute value maps to a 64-bit key whose unsigned
// integer order agrees with SQL value order, so a bit-prefix of the key is
// a contiguous value range and the PHT trie can answer range predicates:
//
//   INT64   sign bit flipped, big-endian (two's-complement order fix);
//   DOUBLE  floored/ceiled into the INT64 lattice (bound side chooses the
//           rounding so encoded ranges are always supersets of value
//           ranges — the runtime re-filters with the exact predicate);
//   STRING  first 8 bytes big-endian, zero padded. Truncation is monotone
//           (a <= b implies Enc(a) <= Enc(b)), so strings sharing an
//           8-byte prefix collide into one key — again a superset the
//           downstream filter resolves.
//
// Prefixes are materialized as '0'/'1' character strings because they double
// as DHT resource names: the trie node for prefix p lives at the owner of
// hash(index namespace, p).

#ifndef PIER_INDEX_KEY_CODEC_H_
#define PIER_INDEX_KEY_CODEC_H_

#include <cstdint>
#include <string>

#include "common/value.h"

namespace pier {
namespace index {

/// Bits in an encoded key == maximum trie depth.
inline constexpr int kKeyBits = 64;

/// Order-preserving encodings (see header comment).
uint64_t EncodeInt64(int64_t v);
uint64_t EncodeString(std::string_view s);

/// Which side of a range a Value is encoded for. Matters only for DOUBLE
/// bounds on INT64 columns, where flooring/ceiling must widen the range.
enum class BoundSide { kLower, kUpper, kExact };

/// Encodes `v` as a key for a column of `col_type`. Returns false when the
/// value's runtime type cannot be ordered against the column's lattice
/// (e.g. BOOL in an INT64 column) — such rows are not indexed and such
/// bounds disqualify index selection.
bool EncodeValue(const Value& v, ValueType col_type, BoundSide side,
                 uint64_t* out);

/// First `depth` bits of `key` as a '0'/'1' string (the DHT resource of the
/// trie node covering that prefix).
std::string Prefix(uint64_t key, int depth);

/// Bit `i` (0 = most significant) of `key`.
inline int Bit(uint64_t key, int i) {
  return static_cast<int>((key >> (kKeyBits - 1 - i)) & 1u);
}

/// Smallest key strictly above every key covered by `prefix`; false when
/// `prefix` is all ones (nothing above — the walk is done).
bool NextKeyAfterPrefix(const std::string& prefix, uint64_t* out);

}  // namespace index
}  // namespace pier

#endif  // PIER_INDEX_KEY_CODEC_H_
