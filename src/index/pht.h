// Prefix Hash Tree: a distributed trie layered on the plain put/get DHT,
// turning PIER's equality-only rendezvous into a range-capable secondary
// index (Ramabhadran et al.'s PHT, adapted to PIER's soft-state storage).
//
// Layout — one DHT namespace per (table, indexed column):
//
//   namespace  "#idx.<table>.<col>"      never collides with relations or
//                                        per-query temp namespaces
//   resource   the trie-node prefix, a '0'/'1' string ("" = root)
//   instance 0 the node marker (PhtNodeRecord: leaf or internal)
//   instance>0 one index entry (PhtEntry: encoded key + tuple bytes),
//              instance = the publisher-scoped id of the base tuple, so
//              renewals and duplicated puts stay idempotent
//
// All instances of a resource colocate on one DHT owner, so the owner of a
// trie node sees every arrival for it and can run the split protocol
// locally:
//
//   - an entry arriving at a leaf is stored; when occupancy exceeds the
//     bucket threshold the owner marks the node internal and re-puts every
//     entry one level down (keys sharing a full 64-bit encoding stop
//     splitting at max depth — the bucket bound is per *distinct* prefix);
//   - split moves are ACKED: the parent copy of a moved entry is erased
//     only when the child's owner acknowledges the re-put. A partition
//     that eats the move leaves the entry readable at the parent (cursors
//     visit internal nodes' residual entries and dedup by instance id), so
//     no key is ever lost across a split;
//   - an entry arriving at an internal node is forwarded (acked re-put)
//     toward the child its key bits select, and is NOT stored or
//     replicated here; if the forward fails, the entry is re-stored at the
//     internal node as a readable residual;
//   - markers are soft state: leaf markers refresh on every arrival,
//     internal markers on every split and every forward. A quiescent
//     subtree's markers expire and the trie lazily "merges" back — a
//     cursor that then finds a cold root falls back to broadcast scan.
//
// The write path piggybacks on publishes (QueryEngine::Publish inserts into
// every index of the table); the read path is the client-side PhtCursor
// (pht_cursor.h).

#ifndef PIER_INDEX_PHT_H_
#define PIER_INDEX_PHT_H_

#include <string>
#include <unordered_set>

#include "common/serialize.h"
#include "common/status.h"
#include "dht/storage.h"
#include "index/key_codec.h"
#include "sim/event_queue.h"

namespace pier {
namespace index {

/// Reserved instance id of the per-trie-node marker item.
inline constexpr uint64_t kMarkerInstance = 0;

/// Trie-node marker stored at instance 0 of a prefix resource.
struct PhtNodeRecord {
  bool internal = false;  ///< true once the node has split

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, PhtNodeRecord* out);
};

/// One index entry: the encoded key plus the indexed base tuple.
struct PhtEntry {
  uint64_t key = 0;         ///< order-preserving encoding (key_codec.h)
  std::string tuple_bytes;  ///< catalog::TupleToBytes of the base row

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, PhtEntry* out);
};

struct PhtOptions {
  /// Leaf bucket capacity: an owner splits a leaf whose occupancy exceeds
  /// this (PHT's B parameter).
  int bucket_size = 8;
  /// Marker lifetime. Long relative to entry TTLs so the trie shape
  /// outlives individual entries; short enough that a dead index decays.
  Duration marker_ttl = Seconds(600);
  /// Period of the residual-repair sweep: entries stranded at internal
  /// nodes (moves that could not ack mid-partition, failover ghosts) are
  /// re-driven toward their leaf until they land or expire.
  Duration repair_interval = Seconds(15);
  /// Deterministic per-(node, namespace) spread of the sweep phase and
  /// period, +/- this fraction, so a thousand nodes booted together do not
  /// sweep in lockstep.
  double repair_jitter = 0.25;
};

struct PhtStats {
  uint64_t inserts = 0;           ///< client-side entry puts issued
  uint64_t entries_stored = 0;    ///< entries accepted at leaves we own
  uint64_t entries_forwarded = 0; ///< arrivals relayed past internal nodes
  uint64_t splits = 0;
  uint64_t split_moves = 0;       ///< entries re-put by splits
  uint64_t moves_acked = 0;       ///< parent copies retired after child ack
  uint64_t moves_failed = 0;      ///< moves kept/restored at the parent
  uint64_t repairs_driven = 0;    ///< residuals re-driven by the sweep
};

/// One node's handle on one (table, column) PHT. Owns both roles:
/// the client-side insert path and the owner-side split/forward protocol
/// (registered as the DHT arrival subscriber for the index namespace).
class PhtIndex {
 public:
  /// `dht` and `sim` must outlive this object. Subscribes to arrivals on
  /// `ns` immediately; call Detach() (or destroy) to unsubscribe.
  PhtIndex(dht::Dht* dht, sim::Simulation* sim, std::string ns,
           PhtOptions options);
  ~PhtIndex();

  PhtIndex(const PhtIndex&) = delete;
  PhtIndex& operator=(const PhtIndex&) = delete;

  /// Namespace for table/column — the contract shared with the cursor and
  /// the planner ("#idx.<table>.<col>").
  static std::string NamespaceFor(const std::string& table, int col);

  /// Client-side insert of one entry, keyed `instance` (the base tuple's
  /// publisher-scoped id). Starts at the deepest prefix this node knows to
  /// be internal; owners forward the rest of the way down.
  void Insert(const PhtEntry& entry, Duration ttl, uint64_t instance);

  void Detach();

  const std::string& ns() const { return ns_; }
  const PhtOptions& options() const { return options_; }
  const PhtStats& stats() const { return stats_; }

 private:
  /// DHT arrival hook for ns_: the owner-side protocol. Returns false when
  /// the item was consumed (forwarded) instead of stored.
  bool OnArrival(const dht::StoredItem& item);
  void Split(const std::string& prefix, const dht::StoredItem& incoming);
  /// Writes/refreshes the local marker for `prefix` (owner-side, in-store).
  void TouchMarker(const std::string& prefix, bool internal);
  bool LocalMarkerInternal(const std::string& prefix) const;
  void PutEntryAt(const std::string& prefix, const PhtEntry& entry,
                  Duration ttl, uint64_t instance);
  /// Acked one-level-down move from `parent`: on ack the parent copy is
  /// erased; on failure it is kept (or restored) at `parent` as a
  /// readable residual.
  void MoveEntryDown(const std::string& parent, const PhtEntry& entry,
                     Duration ttl, uint64_t instance);
  void RestoreAtParent(const std::string& parent, const PhtEntry& entry,
                       Duration ttl, uint64_t instance);
  /// The self-healing pass: re-drives every readable entry sitting at a
  /// locally-internal prefix one level down.
  void RepairSweep();

  dht::Dht* dht_;
  sim::Simulation* sim_;
  std::string ns_;
  PhtOptions options_;
  PhtStats stats_;
  bool attached_ = false;
  sim::PeriodicTask repair_task_;
  /// Prefixes this node has learned are internal (from splits and forwards
  /// it performed) — lets local inserts skip the upper trie levels.
  std::unordered_set<std::string> known_internal_;
};

}  // namespace index
}  // namespace pier

#endif  // PIER_INDEX_PHT_H_
