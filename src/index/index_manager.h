// IndexManager: one node's registry of Prefix-Hash-Tree secondary indexes.
//
// Sits between the catalog and the DHT: when a table definition declaring
// indexed attributes is registered (on any node — every node must run the
// owner-side split/forward protocol for prefixes it happens to own, whether
// or not it ever publishes), the manager instantiates a PhtIndex per
// indexed column and subscribes it to the index namespace. The publish path
// (QueryEngine::Publish) calls OnPublish to piggyback index maintenance on
// every tuple put.

#ifndef PIER_INDEX_INDEX_MANAGER_H_
#define PIER_INDEX_INDEX_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "catalog/table_def.h"
#include "index/pht.h"

namespace pier {
namespace index {

/// Node-level indexing knobs, threaded into every PhtIndex the manager
/// creates (per-index bucket sizes still come from the catalog's IndexDef).
struct IndexOptions {
  /// Residual-repair sweep period and its deterministic per-node spread
  /// (see PhtOptions::repair_jitter).
  Duration repair_interval = Seconds(15);
  double repair_jitter = 0.25;
  /// Trie-marker lifetime.
  Duration marker_ttl = Seconds(600);
};

class IndexManager {
 public:
  /// `dht` and `sim` must outlive the manager.
  IndexManager(dht::Dht* dht, sim::Simulation* sim,
               IndexOptions options = IndexOptions());

  /// Creates (or rebuilds, on re-registration) the PHT handles for `def`'s
  /// indexed columns. Tables without indexes tear down any stale handles.
  void RegisterTable(const catalog::TableDef& def);

  /// Piggybacked index maintenance for one published tuple: inserts an
  /// entry into every index of `def` whose column value encodes (NULLs and
  /// type-incoherent values are skipped — range predicates never match
  /// them anyway). `instance` is the publisher-scoped id of the base put,
  /// so renewals renew the entry instead of duplicating it.
  void OnPublish(const catalog::TableDef& def, const catalog::Tuple& t,
                 uint64_t instance, Duration ttl);

  /// The index handle for (table, col); nullptr when absent (diagnostics
  /// and tests).
  const PhtIndex* Find(const std::string& table, int col) const;
  size_t index_count() const { return indexes_.size(); }

 private:
  dht::Dht* dht_;
  sim::Simulation* sim_;
  IndexOptions options_;
  /// (table, column) -> live index handle.
  std::map<std::pair<std::string, int>, std::unique_ptr<PhtIndex>> indexes_;
};

}  // namespace index
}  // namespace pier

#endif  // PIER_INDEX_INDEX_MANAGER_H_
