// PhtCursor: the client-side range reader of the Prefix Hash Tree.
//
// For a closed encoded-key range [lo, hi] the cursor locates the leaf
// covering `lo` by the PHT "doubly binary" search — a binary search over
// prefix DEPTH, where each probe is one DHT get at prefix(key, depth) and
// classifies the trie node from the items that come back (internal marker /
// leaf marker or entries / nothing) — then walks rightward leaf by leaf:
// the successor of a leaf's prefix (incremented as a binary number) is the
// next key to locate. Total cost is O(log kKeyBits) gets per leaf touched
// plus the leaves themselves: the set of nodes contacted scales with the
// answer, not the overlay.
//
// The cursor is deliberately transport-agnostic: it speaks through a GetFn
// so the query runtime can interpose its query-lifetime re-entry guard
// (StageHost::PostToStage) and tests can drive a bare Dht. Every terminal
// outcome is reported exactly once through DoneFn:
//
//   kOk         range exhausted (or the row callback stopped early);
//   kColdIndex  the trie root is empty — nothing was ever inserted or the
//               index decayed; the caller should fall back to scanning;
//   kError      a probe failed (owner unreachable after DHT retries) or the
//               walk exceeded its safety budget mid-churn.

#ifndef PIER_INDEX_PHT_CURSOR_H_
#define PIER_INDEX_PHT_CURSOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "dht/storage.h"
#include "index/key_codec.h"
#include "index/pht.h"

namespace pier {
namespace index {

class PhtCursor {
 public:
  enum class Outcome {
    kOk,         ///< range exhausted (or the row callback stopped early)
    kMore,       ///< leaf budget hit; resume from next_key()
    kColdIndex,  ///< trie root empty: fall back to scanning
    kError,      ///< probe failed / walk over budget / missing leaf
  };

  struct Stats {
    uint64_t probes = 0;          ///< DHT gets issued
    uint64_t leaves = 0;          ///< leaves (incl. empty regions) visited
    uint64_t entries_seen = 0;    ///< entries decoded at visited leaves
    uint64_t entries_emitted = 0; ///< entries inside [lo, hi]
  };

  using GetCb = std::function<void(Status, std::vector<dht::DhtItem>)>;
  /// Issues one DHT get for `resource` in the index namespace.
  using GetFn = std::function<void(const std::string& resource, GetCb cb)>;
  /// Receives one in-range entry plus its (globally unique) instance id —
  /// callers running several cursors over one range dedup on it. Return
  /// false to stop the walk early.
  using RowFn = std::function<bool(const PhtEntry& entry, uint64_t instance)>;
  using DoneFn = std::function<void(Outcome, Status)>;

  /// Closed encoded range; `lo` > `hi` completes immediately with kOk.
  /// `max_leaves` > 0 bounds the walk: after that many leaves the cursor
  /// reports kMore with next_key() set — the hook the index-scan stage
  /// uses to probe a range's density before fanning out parallel
  /// sub-range walks.
  PhtCursor(GetFn get, uint64_t lo, uint64_t hi, uint64_t max_leaves = 0);

  /// Starts the walk. Callbacks fire from GetFn continuations; the cursor
  /// must stay alive until DoneFn runs (drop the continuations to abort).
  void Run(RowFn row, DoneFn done);

  const Stats& stats() const { return stats_; }
  /// After kMore: the first key of the unvisited remainder of the range.
  uint64_t next_key() const { return cur_key_; }

 private:
  enum class NodeClass { kInternal, kLeaf, kEmpty };

  void Locate();
  void Probe();
  int ProbeDepth() const;
  void OnProbe(Status s, std::vector<dht::DhtItem> items);
  void EmitLeaf(const std::string& prefix,
                const std::vector<dht::DhtItem>& items);
  void Advance(const std::string& leaf_prefix);
  void Finish(Outcome outcome, Status s);

  static NodeClass Classify(const std::vector<dht::DhtItem>& items);

  GetFn get_;
  uint64_t lo_;
  uint64_t hi_;
  uint64_t max_leaves_;
  RowFn row_;
  DoneFn done_;
  Stats stats_;

  // Depth binary-search state for the current locate.
  uint64_t cur_key_ = 0;
  int lo_depth_ = 0;
  int hi_depth_ = kKeyBits;
  bool saw_trie_state_ = false;  ///< any probe ever classified non-empty
  bool finished_ = false;
  /// First probe of a locate lands at the previous leaf's depth: sibling
  /// leaves cluster at similar depths, so the common walk step costs one
  /// probe instead of a fresh O(log kKeyBits) search.
  int depth_hint_ = -1;
  bool use_hint_ = false;
  /// Prefixes already classified internal — internal nodes stay internal,
  /// and sibling locates share their upper path, so these probes are free.
  std::unordered_set<std::string> known_internal_;
  /// Entry instances already emitted. Split moves are acked, so an entry
  /// can transiently exist at BOTH the parent (residual awaiting ack) and
  /// the child, and replica failovers can resurface parent-level ghosts;
  /// instance ids are globally unique per base tuple, so deduping here
  /// keeps the answer an exact multiset.
  std::unordered_set<uint64_t> emitted_instances_;
  /// Hard cap on probes per cursor: a walk that exceeds it is churn debris
  /// (or hostile trie state) and reports kError instead of spinning.
  static constexpr uint64_t kMaxProbes = 4096;
};

}  // namespace index
}  // namespace pier

#endif  // PIER_INDEX_PHT_CURSOR_H_
