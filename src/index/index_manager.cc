#include "index/index_manager.h"

#include "catalog/tuple.h"

namespace pier {
namespace index {

IndexManager::IndexManager(dht::Dht* dht, sim::Simulation* sim,
                           IndexOptions options)
    : dht_(dht), sim_(sim), options_(options) {}

void IndexManager::RegisterTable(const catalog::TableDef& def) {
  // Drop handles the new definition no longer declares — or declares with
  // a different bucket threshold — and keep identical ones (their trie
  // caches and stats survive idempotent re-registration).
  for (auto it = indexes_.begin(); it != indexes_.end();) {
    if (it->first.first != def.name) {
      ++it;
      continue;
    }
    bool unchanged = false;
    for (const catalog::IndexDef& idx : def.indexes) {
      unchanged |= idx.col == it->first.second &&
                   idx.bucket_size == it->second->options().bucket_size;
    }
    it = unchanged ? std::next(it) : indexes_.erase(it);
  }
  for (const catalog::IndexDef& idx : def.indexes) {
    auto key = std::make_pair(def.name, idx.col);
    if (indexes_.count(key) > 0) continue;
    PhtOptions options;
    options.bucket_size = idx.bucket_size;
    options.repair_interval = options_.repair_interval;
    options.repair_jitter = options_.repair_jitter;
    options.marker_ttl = options_.marker_ttl;
    indexes_.emplace(key, std::make_unique<PhtIndex>(
                              dht_, sim_,
                              PhtIndex::NamespaceFor(def.name, idx.col),
                              options));
  }
}

void IndexManager::OnPublish(const catalog::TableDef& def,
                             const catalog::Tuple& t, uint64_t instance,
                             Duration ttl) {
  for (const catalog::IndexDef& idx : def.indexes) {
    if (idx.col < 0 || static_cast<size_t>(idx.col) >= t.size()) continue;
    auto it = indexes_.find(std::make_pair(def.name, idx.col));
    if (it == indexes_.end()) continue;
    uint64_t key = 0;
    if (!EncodeValue(t[static_cast<size_t>(idx.col)],
                     def.schema.column(static_cast<size_t>(idx.col)).type,
                     BoundSide::kExact, &key)) {
      continue;
    }
    PhtEntry entry;
    entry.key = key;
    entry.tuple_bytes = catalog::TupleToBytes(t);
    it->second->Insert(entry, ttl, instance);
  }
}

const PhtIndex* IndexManager::Find(const std::string& table, int col) const {
  auto it = indexes_.find(std::make_pair(table, col));
  return it == indexes_.end() ? nullptr : it->second.get();
}

}  // namespace index
}  // namespace pier
