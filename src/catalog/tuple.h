// Tuples: the unit of data PIER moves. A tuple is a vector of Values whose
// interpretation is given by a Schema. Tuples crossing the network or
// entering the DHT are byte-serialized with the common wire format.

#ifndef PIER_CATALOG_TUPLE_H_
#define PIER_CATALOG_TUPLE_H_

#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "common/value.h"

namespace pier {
namespace catalog {

using Tuple = std::vector<Value>;

/// Serializes `t` into `w` (column count then each value).
void SerializeTuple(const Tuple& t, Writer* w);
/// One-shot convenience returning the bytes.
std::string TupleToBytes(const Tuple& t);
/// Inverse of SerializeTuple.
Status DeserializeTuple(Reader* r, Tuple* out);
/// Inverse of TupleToBytes.
Status TupleFromBytes(const std::string& bytes, Tuple* out);

/// "(1322, 'BAD-TRAFFIC bad frag bits', 465770)".
std::string TupleToString(const Tuple& t);

/// Order-sensitive 64-bit hash over all values (Distinct, dedup tables).
uint64_t HashTuple(const Tuple& t);
/// Hash over a subset of columns (group keys, join keys).
uint64_t HashTupleCols(const Tuple& t, const std::vector<int>& cols);

/// Lexicographic comparison using Value::Compare.
int CompareTuples(const Tuple& a, const Tuple& b);

/// Encodes the values of `cols` as a DHT resource string: equal key values
/// (including INT64 5 vs DOUBLE 5.0) produce identical resources, so they
/// rendezvous at the same node.
std::string ResourceForCols(const Tuple& t, const std::vector<int>& cols);

}  // namespace catalog
}  // namespace pier

#endif  // PIER_CATALOG_TUPLE_H_
