// Relational schemas for PIER tuples.
//
// Schemas are declared at query time (or by data publishers) and shipped
// inside query plans, so they serialize. Column lookup supports qualified
// names ("alerts.rule_id") and bare names ("rule_id"); bare lookup fails as
// ambiguous when two columns share a name.

#ifndef PIER_CATALOG_SCHEMA_H_
#define PIER_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "common/value.h"

namespace pier {
namespace catalog {

/// One column: a name and a declared type.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Column& o) const {
    return name == o.name && type == o.type;
  }
};

/// An ordered list of columns, optionally qualified by a relation name.
class Schema {
 public:
  Schema() = default;
  Schema(std::string relation, std::vector<Column> columns)
      : relation_(std::move(relation)), columns_(std::move(columns)) {}

  const std::string& relation() const { return relation_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Resolves "col" or "rel.col" to a column index. Returns
  /// InvalidArgument for unknown names and for ambiguous bare names.
  Status Resolve(const std::string& name, int* index) const;

  /// Concatenation for join outputs: columns of `left` then `right`, each
  /// keeping its own qualifier.
  static Schema Concat(const Schema& left, const Schema& right);

  bool operator==(const Schema& o) const {
    return relation_ == o.relation_ && columns_ == o.columns_;
  }

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, Schema* out);

  /// "alerts(rule_id INT64, hits INT64)".
  std::string ToString() const;

 private:
  std::string relation_;
  std::vector<Column> columns_;
};

}  // namespace catalog
}  // namespace pier

#endif  // PIER_CATALOG_SCHEMA_H_
