#include "catalog/tuple.h"

#include "common/hash.h"

namespace pier {
namespace catalog {

void SerializeTuple(const Tuple& t, Writer* w) {
  size_t bound = 5;
  for (const Value& v : t) bound += v.SerializedSizeBound();
  w->Reserve(bound);
  w->PutVarint32(static_cast<uint32_t>(t.size()));
  for (const Value& v : t) v.Serialize(w);
}

std::string TupleToBytes(const Tuple& t) {
  Writer w;
  SerializeTuple(t, &w);
  return w.Release();
}

Status DeserializeTuple(Reader* r, Tuple* out) {
  uint32_t n = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 100000) return Status::Corruption("tuple too wide");
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    PIER_RETURN_IF_ERROR(Value::Deserialize(r, &v));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

Status TupleFromBytes(const std::string& bytes, Tuple* out) {
  Reader r(bytes);
  return DeserializeTuple(&r, out);
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

uint64_t HashTuple(const Tuple& t) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const Value& v : t) h = HashCombine(h, v.Hash());
  return h;
}

uint64_t HashTupleCols(const Tuple& t, const std::vector<int>& cols) {
  uint64_t h = 0x243f6a8885a308d3ull;
  for (int c : cols) {
    h = HashCombine(h, c >= 0 && static_cast<size_t>(c) < t.size()
                           ? t[c].Hash()
                           : 0);
  }
  return h;
}

int CompareTuples(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

std::string ResourceForCols(const Tuple& t, const std::vector<int>& cols) {
  // Hash-based resource: canonical across numeric types (Value::Hash
  // guarantees INT64/DOUBLE equality), fixed-length, and key values do not
  // leak into routing keys.
  Writer w;
  w.Reserve(cols.size() * 8);
  for (int c : cols) {
    uint64_t h = (c >= 0 && static_cast<size_t>(c) < t.size())
                     ? t[c].Hash()
                     : 0x6e756c6cull;
    w.PutFixed64(h);
  }
  return w.Release();
}

}  // namespace catalog
}  // namespace pier
