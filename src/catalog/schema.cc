#include "catalog/schema.h"

namespace pier {
namespace catalog {

Status Schema::Resolve(const std::string& name, int* index) const {
  std::string qualifier, bare = name;
  size_t dot = name.find('.');
  if (dot != std::string::npos) {
    qualifier = name.substr(0, dot);
    bare = name.substr(dot + 1);
  }
  int found = -1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const std::string& cname = columns_[i].name;
    // Stored column names may themselves be qualified (join outputs).
    std::string cqual, cbare = cname;
    size_t cdot = cname.find('.');
    if (cdot != std::string::npos) {
      cqual = cname.substr(0, cdot);
      cbare = cname.substr(cdot + 1);
    }
    bool name_matches = (cbare == bare) || (cname == name);
    if (!name_matches) continue;
    if (!qualifier.empty()) {
      const std::string& eff_qual = cqual.empty() ? relation_ : cqual;
      if (eff_qual != qualifier) continue;
    }
    if (found != -1) {
      return Status::InvalidArgument("ambiguous column: " + name);
    }
    found = static_cast<int>(i);
  }
  if (found == -1) {
    return Status::InvalidArgument("unknown column: " + name);
  }
  *index = found;
  return Status::OK();
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols;
  cols.reserve(left.num_columns() + right.num_columns());
  auto qualify = [](const Schema& s, const Column& c) {
    if (c.name.find('.') != std::string::npos || s.relation().empty()) {
      return c;
    }
    return Column{s.relation() + "." + c.name, c.type};
  };
  for (const Column& c : left.columns()) cols.push_back(qualify(left, c));
  for (const Column& c : right.columns()) cols.push_back(qualify(right, c));
  return Schema("", std::move(cols));
}

void Schema::Serialize(Writer* w) const {
  w->PutString(relation_);
  w->PutVarint32(static_cast<uint32_t>(columns_.size()));
  for (const Column& c : columns_) {
    w->PutString(c.name);
    w->PutU8(static_cast<uint8_t>(c.type));
  }
}

Status Schema::Deserialize(Reader* r, Schema* out) {
  std::string relation;
  uint32_t n = 0;
  PIER_RETURN_IF_ERROR(r->GetString(&relation));
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 10000) return Status::Corruption("schema too wide");
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Column c;
    uint8_t type = 0;
    PIER_RETURN_IF_ERROR(r->GetString(&c.name));
    PIER_RETURN_IF_ERROR(r->GetU8(&type));
    if (type > static_cast<uint8_t>(ValueType::kBytes)) {
      return Status::Corruption("bad column type");
    }
    c.type = static_cast<ValueType>(type);
    cols.push_back(std::move(c));
  }
  *out = Schema(std::move(relation), std::move(cols));
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = relation_ + "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace catalog
}  // namespace pier
