// Table definitions and the per-node catalog.
//
// A PIER "table" is a DHT namespace plus a schema plus the partitioning
// columns whose values place each tuple on the ring. There is no global
// catalog service: every node registers the same definitions (in the demo,
// shipped with the application), and query plans carry the schemas they
// need.

#ifndef PIER_CATALOG_TABLE_DEF_H_
#define PIER_CATALOG_TABLE_DEF_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "common/time_util.h"
#include "dht/key.h"

namespace pier {
namespace catalog {

/// One secondary-index declaration: a Prefix Hash Tree over `col` (see
/// src/index/). Only INT64 and STRING columns are indexable — the PHT key
/// codec is order-preserving for exactly those lattices.
struct IndexDef {
  int col = 0;
  /// PHT leaf-bucket split threshold.
  int bucket_size = 8;

  bool operator==(const IndexDef& o) const {
    return col == o.col && bucket_size == o.bucket_size;
  }
};

/// Coarse per-table statistics for cost-based planning. PIER has no global
/// catalog service, so these are application-declared estimates (shipped
/// with the table definition like everything else), not maintained
/// histograms. Zero means unknown; the planner treats unknown
/// conservatively (symmetric-hash, never a suppressing strategy).
struct TableStats {
  /// Estimated network-wide row count. 0 = unknown (stats absent).
  uint64_t row_count = 0;
  /// Estimated serialized tuple width in bytes. 0 = unknown.
  uint32_t avg_tuple_bytes = 0;
  /// Estimated distinct values per column, parallel to the schema
  /// (shorter vectors leave trailing columns unknown). 0 = unknown.
  std::vector<uint64_t> distinct_per_col;

  bool empty() const { return row_count == 0; }
  /// Distinct estimate for `col`, falling back to `row_count` (every row
  /// distinct) when the column is unknown.
  uint64_t DistinctFor(int col) const {
    if (col >= 0 && static_cast<size_t>(col) < distinct_per_col.size() &&
        distinct_per_col[col] > 0) {
      return distinct_per_col[col];
    }
    return row_count;
  }
};

/// Binding of a relation to its DHT storage layout.
struct TableDef {
  /// Relation name == DHT namespace.
  std::string name;
  Schema schema;
  /// Indices of the columns that form the DHT resource (partitioning key).
  std::vector<int> partition_cols;
  /// Soft-state lifetime applied to published tuples.
  Duration ttl = Seconds(120);
  /// Secondary indexes maintained piggyback on every publish.
  std::vector<IndexDef> indexes;
  /// Planner statistics (row counts, widths, key selectivity). Optional:
  /// an empty() stats block keeps every plan on the conservative
  /// symmetric-hash default.
  TableStats stats;

  /// The index over `col`, or nullptr.
  const IndexDef* IndexOn(int col) const {
    for (const IndexDef& idx : indexes) {
      if (idx.col == col) return &idx;
    }
    return nullptr;
  }

  /// DHT resource string for a tuple of this table.
  std::string ResourceFor(const Tuple& t) const {
    return ResourceForCols(t, partition_cols);
  }
  /// Full DHT key for a tuple; `instance` must be unique per publisher
  /// (e.g. a local sequence number mixed with the host id).
  dht::DhtKey KeyFor(const Tuple& t, uint64_t instance) const {
    return dht::DhtKey{name, ResourceFor(t), instance};
  }

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, TableDef* out);
};

/// Node-local registry of table definitions.
class Catalog {
 public:
  /// Registers or replaces a definition. Fails on empty name, partition
  /// column indices out of range, or indexes over non-indexable columns.
  Status Register(TableDef def);
  /// Looks up by name; nullptr if absent.
  const TableDef* Find(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  size_t size() const { return tables_.size(); }

  /// Observer invoked after every successful Register — how the node wires
  /// index maintenance (src/index/IndexManager) to definitions arriving at
  /// arbitrary times. Replaces any previous hook; does NOT replay existing
  /// registrations (callers replay via TableNames()/Find()).
  using RegisterHook = std::function<void(const TableDef&)>;
  void SetRegisterHook(RegisterHook hook) { hook_ = std::move(hook); }

 private:
  std::unordered_map<std::string, TableDef> tables_;
  RegisterHook hook_;
};

}  // namespace catalog
}  // namespace pier

#endif  // PIER_CATALOG_TABLE_DEF_H_
