// Table definitions and the per-node catalog.
//
// A PIER "table" is a DHT namespace plus a schema plus the partitioning
// columns whose values place each tuple on the ring. There is no global
// catalog service: every node registers the same definitions (in the demo,
// shipped with the application), and query plans carry the schemas they
// need.

#ifndef PIER_CATALOG_TABLE_DEF_H_
#define PIER_CATALOG_TABLE_DEF_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "common/time_util.h"
#include "dht/key.h"

namespace pier {
namespace catalog {

/// Binding of a relation to its DHT storage layout.
struct TableDef {
  /// Relation name == DHT namespace.
  std::string name;
  Schema schema;
  /// Indices of the columns that form the DHT resource (partitioning key).
  std::vector<int> partition_cols;
  /// Soft-state lifetime applied to published tuples.
  Duration ttl = Seconds(120);

  /// DHT resource string for a tuple of this table.
  std::string ResourceFor(const Tuple& t) const {
    return ResourceForCols(t, partition_cols);
  }
  /// Full DHT key for a tuple; `instance` must be unique per publisher
  /// (e.g. a local sequence number mixed with the host id).
  dht::DhtKey KeyFor(const Tuple& t, uint64_t instance) const {
    return dht::DhtKey{name, ResourceFor(t), instance};
  }

  void Serialize(Writer* w) const;
  static Status Deserialize(Reader* r, TableDef* out);
};

/// Node-local registry of table definitions.
class Catalog {
 public:
  /// Registers or replaces a definition. Fails on empty name or partition
  /// column indices out of range.
  Status Register(TableDef def);
  /// Looks up by name; nullptr if absent.
  const TableDef* Find(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  size_t size() const { return tables_.size(); }

 private:
  std::unordered_map<std::string, TableDef> tables_;
};

}  // namespace catalog
}  // namespace pier

#endif  // PIER_CATALOG_TABLE_DEF_H_
