#include "catalog/table_def.h"

namespace pier {
namespace catalog {

void TableDef::Serialize(Writer* w) const {
  w->PutString(name);
  schema.Serialize(w);
  w->PutVarint32(static_cast<uint32_t>(partition_cols.size()));
  for (int c : partition_cols) w->PutVarint32(static_cast<uint32_t>(c));
  w->PutVarint64(static_cast<uint64_t>(ttl));
}

Status TableDef::Deserialize(Reader* r, TableDef* out) {
  PIER_RETURN_IF_ERROR(r->GetString(&out->name));
  PIER_RETURN_IF_ERROR(Schema::Deserialize(r, &out->schema));
  uint32_t n = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 1000) return Status::Corruption("too many partition cols");
  out->partition_cols.clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t c = 0;
    PIER_RETURN_IF_ERROR(r->GetVarint32(&c));
    out->partition_cols.push_back(static_cast<int>(c));
  }
  uint64_t ttl = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint64(&ttl));
  out->ttl = static_cast<Duration>(ttl);
  return Status::OK();
}

Status Catalog::Register(TableDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  for (int c : def.partition_cols) {
    if (c < 0 || static_cast<size_t>(c) >= def.schema.num_columns()) {
      return Status::InvalidArgument("partition column out of range");
    }
  }
  tables_[def.name] = std::move(def);
  return Status::OK();
}

const TableDef* Catalog::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, def] : tables_) out.push_back(name);
  return out;
}

}  // namespace catalog
}  // namespace pier
