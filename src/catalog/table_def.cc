#include "catalog/table_def.h"

namespace pier {
namespace catalog {

void TableDef::Serialize(Writer* w) const {
  w->PutString(name);
  schema.Serialize(w);
  w->PutVarint32(static_cast<uint32_t>(partition_cols.size()));
  for (int c : partition_cols) w->PutVarint32(static_cast<uint32_t>(c));
  w->PutVarint64(static_cast<uint64_t>(ttl));
  w->PutVarint32(static_cast<uint32_t>(indexes.size()));
  for (const IndexDef& idx : indexes) {
    w->PutVarint32(static_cast<uint32_t>(idx.col));
    w->PutVarint32(static_cast<uint32_t>(idx.bucket_size));
  }
  w->PutVarint64(stats.row_count);
  w->PutVarint32(stats.avg_tuple_bytes);
  w->PutVarint32(static_cast<uint32_t>(stats.distinct_per_col.size()));
  for (uint64_t d : stats.distinct_per_col) w->PutVarint64(d);
}

Status TableDef::Deserialize(Reader* r, TableDef* out) {
  PIER_RETURN_IF_ERROR(r->GetString(&out->name));
  PIER_RETURN_IF_ERROR(Schema::Deserialize(r, &out->schema));
  uint32_t n = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 1000) return Status::Corruption("too many partition cols");
  out->partition_cols.clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t c = 0;
    PIER_RETURN_IF_ERROR(r->GetVarint32(&c));
    out->partition_cols.push_back(static_cast<int>(c));
  }
  uint64_t ttl = 0;
  PIER_RETURN_IF_ERROR(r->GetVarint64(&ttl));
  out->ttl = static_cast<Duration>(ttl);
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 1000) return Status::Corruption("too many indexes");
  out->indexes.clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t col = 0, bucket = 0;
    PIER_RETURN_IF_ERROR(r->GetVarint32(&col));
    PIER_RETURN_IF_ERROR(r->GetVarint32(&bucket));
    if (bucket == 0 || bucket > 100000) {
      return Status::Corruption("bad index bucket size");
    }
    out->indexes.push_back(
        IndexDef{static_cast<int>(col), static_cast<int>(bucket)});
  }
  PIER_RETURN_IF_ERROR(r->GetVarint64(&out->stats.row_count));
  PIER_RETURN_IF_ERROR(r->GetVarint32(&out->stats.avg_tuple_bytes));
  PIER_RETURN_IF_ERROR(r->GetVarint32(&n));
  if (n > 1000) return Status::Corruption("too many column stats");
  out->stats.distinct_per_col.clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t d = 0;
    PIER_RETURN_IF_ERROR(r->GetVarint64(&d));
    out->stats.distinct_per_col.push_back(d);
  }
  return Status::OK();
}

Status Catalog::Register(TableDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  for (int c : def.partition_cols) {
    if (c < 0 || static_cast<size_t>(c) >= def.schema.num_columns()) {
      return Status::InvalidArgument("partition column out of range");
    }
  }
  for (size_t i = 0; i < def.indexes.size(); ++i) {
    const IndexDef& idx = def.indexes[i];
    if (idx.col < 0 ||
        static_cast<size_t>(idx.col) >= def.schema.num_columns()) {
      return Status::InvalidArgument("index column out of range");
    }
    for (size_t j = 0; j < i; ++j) {
      if (def.indexes[j].col == idx.col) {
        return Status::InvalidArgument(
            "duplicate index over one column");
      }
    }
    ValueType t = def.schema.column(static_cast<size_t>(idx.col)).type;
    if (t != ValueType::kInt64 && t != ValueType::kString) {
      return Status::InvalidArgument(
          "only INT64 and STRING columns are indexable");
    }
    if (idx.bucket_size <= 0) {
      return Status::InvalidArgument("index bucket size must be positive");
    }
  }
  auto [it, inserted] = tables_.insert_or_assign(def.name, std::move(def));
  (void)inserted;
  if (hook_) hook_(it->second);
  return Status::OK();
}

const TableDef* Catalog::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, def] : tables_) out.push_back(name);
  return out;
}

}  // namespace catalog
}  // namespace pier
