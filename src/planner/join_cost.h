// Per-edge join strategy selection.
//
// PIER's join strategies trade network bytes differently: symmetric hash
// rehashes both relations in full; symmetric semi-join rehashes key
// projections and fetches full tuples only for matches; Bloom join
// broadcasts filter digests and rehashes only probable matches. Which one
// wins depends on relation cardinalities, tuple widths, and key
// selectivity — exactly the coarse statistics TableStats carries. This
// module is the planner's cost model: given both sides' stats it estimates
// bytes-on-the-wire for each strategy and picks the cheapest, falling back
// to the always-correct symmetric hash whenever statistics are missing
// (an unknown side must never authorize a suppressing strategy).

#ifndef PIER_PLANNER_JOIN_COST_H_
#define PIER_PLANNER_JOIN_COST_H_

#include <cstdint>
#include <vector>

#include "catalog/table_def.h"
#include "query/opgraph.h"

namespace pier {
namespace planner {

/// Everything the cost model sees about one join edge. Key columns index
/// the base table schemas (both sides of a candidate edge are scans).
struct JoinCostInputs {
  const catalog::TableStats* left = nullptr;
  const catalog::TableStats* right = nullptr;
  std::vector<int> left_key_cols;
  std::vector<int> right_key_cols;
  /// Estimated network size — scales the Bloom wave's fixed broadcast
  /// cost. Plans don't know the live ring size; a coarse default is fine
  /// because the wave term is dwarfed by per-tuple terms at any scale
  /// where Bloom wins.
  uint64_t members = 32;
  /// Filter sizing, mirroring EngineOptions::bloom_bits.
  uint64_t bloom_bits = 1 << 14;
};

/// The selection plus the estimates it was based on (surfaced in tests and
/// EXPLAIN debugging; bytes are estimates, not guarantees).
struct JoinChoice {
  query::JoinStrategy strategy = query::JoinStrategy::kSymmetricHash;
  uint64_t est_hash_bytes = 0;
  uint64_t est_bloom_bytes = 0;
  uint64_t est_semi_bytes = 0;
};

/// Picks the cheapest of {kSymmetricHash, kSymmetricSemi, kBloom} for one
/// edge. Returns kSymmetricHash when either side lacks statistics.
/// Never returns kFetchMatches — that choice is about partitioning
/// alignment, not cardinality, and stays with the planner's existing rule.
JoinChoice ChooseJoinStrategy(const JoinCostInputs& in);

}  // namespace planner
}  // namespace pier

#endif  // PIER_PLANNER_JOIN_COST_H_
