#include "planner/join_cost.h"

#include <algorithm>

namespace pier {
namespace planner {

namespace {

// Per-tuple framing overhead of a rehash put (DHT key, namespace, instance
// id, ack bookkeeping), amortized by batching but still real.
constexpr uint64_t kTupleOverhead = 24;
// Extra bytes a semi-join projection carries beyond the keys: origin host,
// row id, and the same framing as any rehash put.
constexpr uint64_t kSemiOverhead = 18 + kTupleOverhead;
// One fetch round-trip per matched pair: request (key + row id) plus
// response framing around the two full tuples.
constexpr uint64_t kFetchOverhead = 64;
// Serialized width of one key column (varint64 / short string estimate).
constexpr uint64_t kKeyColBytes = 9;

uint64_t WidthOf(const catalog::TableStats& s) {
  // Stats may declare rows without width; assume a modest tuple rather
  // than zero (zero would make every suppressing strategy look free).
  return s.avg_tuple_bytes > 0 ? s.avg_tuple_bytes : 64;
}

// Distinct estimate for a composite key: the max over its columns (a
// lower bound on the composite count — conservative, since a smaller
// domain means more matches and higher semi-join fetch cost).
uint64_t KeyDistinct(const catalog::TableStats& s,
                     const std::vector<int>& cols) {
  uint64_t d = 0;
  for (int c : cols) d = std::max(d, s.DistinctFor(c));
  return std::max<uint64_t>(d, 1);
}

}  // namespace

JoinChoice ChooseJoinStrategy(const JoinCostInputs& in) {
  JoinChoice out;
  if (in.left == nullptr || in.right == nullptr || in.left->empty() ||
      in.right->empty() || in.left_key_cols.empty()) {
    return out;  // unknown side: stay on symmetric hash
  }
  const uint64_t L = in.left->row_count;
  const uint64_t R = in.right->row_count;
  const uint64_t wL = WidthOf(*in.left);
  const uint64_t wR = WidthOf(*in.right);
  const uint64_t dL = KeyDistinct(*in.left, in.left_key_cols);
  const uint64_t dR = KeyDistinct(*in.right, in.right_key_cols);
  const uint64_t domain = std::max(dL, dR);

  // Symmetric hash: both relations rehash in full.
  out.est_hash_bytes = L * (wL + kTupleOverhead) + R * (wR + kTupleOverhead);

  // Bloom: fixed filter wave (parts to the origin, union broadcast down
  // the tree — both filters per frame) plus the surviving rehash. Under
  // the containment assumption the smaller key domain is a subset of the
  // larger, so a side survives in proportion to the other side's domain.
  const uint64_t filter_bytes = 2 * (in.bloom_bits / 8);
  const uint64_t wave = 3 * std::max<uint64_t>(in.members, 1) * filter_bytes;
  const double fL = dL <= dR ? 1.0 : static_cast<double>(dR) / dL;
  const double fR = dR <= dL ? 1.0 : static_cast<double>(dL) / dR;
  out.est_bloom_bytes =
      wave + static_cast<uint64_t>(fL * L) * (wL + kTupleOverhead) +
      static_cast<uint64_t>(fR * R) * (wR + kTupleOverhead);

  // Semi-join: key projections rehash from both sides, then one fetch
  // round-trip per matched pair (|L x R| / key domain).
  const uint64_t key_bytes = kKeyColBytes * in.left_key_cols.size();
  const double matches =
      static_cast<double>(L) * static_cast<double>(R) / domain;
  out.est_semi_bytes =
      (L + R) * (key_bytes + kSemiOverhead) +
      static_cast<uint64_t>(matches) * (wL + wR + kFetchOverhead);

  // Cheapest wins; ties keep the simpler strategy (hash beats both,
  // semi beats bloom) so estimates have to earn the extra machinery.
  out.strategy = query::JoinStrategy::kSymmetricHash;
  uint64_t best = out.est_hash_bytes;
  if (out.est_semi_bytes < best) {
    out.strategy = query::JoinStrategy::kSymmetricSemi;
    best = out.est_semi_bytes;
  }
  if (out.est_bloom_bytes < best) {
    out.strategy = query::JoinStrategy::kBloom;
  }
  return out;
}

}  // namespace planner
}  // namespace pier
