#include "planner/planner.h"

#include <algorithm>

#include "planner/join_cost.h"

namespace pier {
namespace planner {

namespace {

using catalog::Schema;
using exec::AggSpec;
using exec::Expr;
using exec::ExprPtr;
using query::PlanKind;
using query::QueryPlan;
using sql::AstExpr;
using sql::AstExprPtr;
using sql::SelectStmt;

/// Qualifies a table's schema with its alias so "alias.col" resolves.
Schema AliasSchema(const catalog::TableDef& def, const std::string& alias) {
  return Schema(alias, def.schema.columns());
}

bool ContainsAgg(const AstExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == AstExpr::Kind::kAggCall) return true;
  return ContainsAgg(e->left) || ContainsAgg(e->right);
}

/// Binds an AST expression over `schema`, rejecting aggregate calls.
Status BindScalar(const AstExprPtr& ast, const Schema& schema, ExprPtr* out) {
  if (ast == nullptr) return Status::InvalidArgument("null expression");
  switch (ast->kind) {
    case AstExpr::Kind::kLiteral:
      *out = Expr::Literal(ast->literal);
      return Status::OK();
    case AstExpr::Kind::kColumn: {
      int index = -1;
      PIER_RETURN_IF_ERROR(schema.Resolve(ast->column, &index));
      *out = Expr::Column(index, ast->column);
      return Status::OK();
    }
    case AstExpr::Kind::kCompare: {
      ExprPtr l, r;
      PIER_RETURN_IF_ERROR(BindScalar(ast->left, schema, &l));
      PIER_RETURN_IF_ERROR(BindScalar(ast->right, schema, &r));
      *out = Expr::Compare(ast->cmp, l, r);
      return Status::OK();
    }
    case AstExpr::Kind::kArith: {
      ExprPtr l, r;
      PIER_RETURN_IF_ERROR(BindScalar(ast->left, schema, &l));
      PIER_RETURN_IF_ERROR(BindScalar(ast->right, schema, &r));
      *out = Expr::Arith(ast->arith, l, r);
      return Status::OK();
    }
    case AstExpr::Kind::kAnd:
    case AstExpr::Kind::kOr: {
      ExprPtr l, r;
      PIER_RETURN_IF_ERROR(BindScalar(ast->left, schema, &l));
      PIER_RETURN_IF_ERROR(BindScalar(ast->right, schema, &r));
      *out = ast->kind == AstExpr::Kind::kAnd ? Expr::And(l, r)
                                              : Expr::Or(l, r);
      return Status::OK();
    }
    case AstExpr::Kind::kNot: {
      ExprPtr inner;
      PIER_RETURN_IF_ERROR(BindScalar(ast->left, schema, &inner));
      *out = Expr::Not(inner);
      return Status::OK();
    }
    case AstExpr::Kind::kNeg: {
      ExprPtr inner;
      PIER_RETURN_IF_ERROR(BindScalar(ast->left, schema, &inner));
      *out = Expr::Negate(inner);
      return Status::OK();
    }
    case AstExpr::Kind::kIsNull:
    case AstExpr::Kind::kIsNotNull: {
      ExprPtr inner;
      PIER_RETURN_IF_ERROR(BindScalar(ast->left, schema, &inner));
      *out = Expr::IsNull(inner, ast->kind == AstExpr::Kind::kIsNotNull);
      return Status::OK();
    }
    case AstExpr::Kind::kAggCall:
      return Status::InvalidArgument(
          "aggregate not allowed in this context: " + ast->ToString());
  }
  return Status::Internal("unreachable expr kind");
}

/// Flattens an AND tree into conjuncts.
void Conjuncts(const AstExprPtr& e, std::vector<AstExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == AstExpr::Kind::kAnd) {
    Conjuncts(e->left, out);
    Conjuncts(e->right, out);
    return;
  }
  out->push_back(e);
}

/// Rebuilds an AND tree from conjuncts (null when empty).
AstExprPtr AndAll(const std::vector<AstExprPtr>& cs) {
  AstExprPtr out;
  for (const AstExprPtr& c : cs) {
    if (out == nullptr) {
      out = c;
    } else {
      auto e = std::make_shared<AstExpr>();
      e->kind = AstExpr::Kind::kAnd;
      e->left = out;
      e->right = c;
      out = e;
    }
  }
  return out;
}

/// Is `e` a plain column of `schema`? Returns its index or -1.
int ColumnIndexIn(const AstExprPtr& e, const Schema& schema) {
  if (e == nullptr || e->kind != AstExpr::Kind::kColumn) return -1;
  int index = -1;
  if (!schema.Resolve(e->column, &index).ok()) return -1;
  return index;
}

struct AggAnalysis {
  std::vector<int> group_cols;           // indices into the input schema
  std::vector<std::string> group_names;  // as written in GROUP BY
  std::vector<AggSpec> aggs;
  std::vector<int> final_projection;     // select-order over [group|aggs]
  std::vector<std::string> output_names;
};

/// Finds (or appends) an aggregate spec matching fn over column `col`.
int FindOrAddAgg(AggAnalysis* a, exec::AggFunc fn, int col,
                 const std::string& name) {
  for (size_t i = 0; i < a->aggs.size(); ++i) {
    if (a->aggs[i].fn == fn && a->aggs[i].col == col) {
      return static_cast<int>(i);
    }
  }
  a->aggs.push_back(AggSpec{fn, col, name});
  return static_cast<int>(a->aggs.size()) - 1;
}

/// Rewrites an expression over the aggregate output layout
/// [group values..., aggregate results...]: group columns become column refs
/// into the prefix; aggregate calls become refs past the prefix.
Status BindOverAggLayout(const AstExprPtr& ast, const Schema& input,
                         AggAnalysis* a, ExprPtr* out) {
  if (ast == nullptr) return Status::InvalidArgument("null expression");
  if (ast->kind == AstExpr::Kind::kAggCall) {
    int col = -1;
    if (ast->left != nullptr) {
      col = ColumnIndexIn(ast->left, input);
      if (col < 0) {
        return Status::InvalidArgument(
            "aggregate argument must be a column: " + ast->ToString());
      }
    }
    int agg_index = FindOrAddAgg(a, ast->agg, col, ast->ToString());
    *out = Expr::Column(static_cast<int>(a->group_cols.size()) + agg_index,
                        ast->ToString());
    return Status::OK();
  }
  if (ast->kind == AstExpr::Kind::kColumn) {
    int input_index = -1;
    PIER_RETURN_IF_ERROR(input.Resolve(ast->column, &input_index));
    for (size_t g = 0; g < a->group_cols.size(); ++g) {
      if (a->group_cols[g] == input_index) {
        *out = Expr::Column(static_cast<int>(g), ast->column);
        return Status::OK();
      }
    }
    return Status::InvalidArgument("column " + ast->column +
                                   " is neither grouped nor aggregated");
  }
  // Recurse structurally for composite expressions.
  switch (ast->kind) {
    case AstExpr::Kind::kLiteral:
      *out = Expr::Literal(ast->literal);
      return Status::OK();
    case AstExpr::Kind::kCompare: {
      ExprPtr l, r;
      PIER_RETURN_IF_ERROR(BindOverAggLayout(ast->left, input, a, &l));
      PIER_RETURN_IF_ERROR(BindOverAggLayout(ast->right, input, a, &r));
      *out = Expr::Compare(ast->cmp, l, r);
      return Status::OK();
    }
    case AstExpr::Kind::kArith: {
      ExprPtr l, r;
      PIER_RETURN_IF_ERROR(BindOverAggLayout(ast->left, input, a, &l));
      PIER_RETURN_IF_ERROR(BindOverAggLayout(ast->right, input, a, &r));
      *out = Expr::Arith(ast->arith, l, r);
      return Status::OK();
    }
    case AstExpr::Kind::kAnd:
    case AstExpr::Kind::kOr: {
      ExprPtr l, r;
      PIER_RETURN_IF_ERROR(BindOverAggLayout(ast->left, input, a, &l));
      PIER_RETURN_IF_ERROR(BindOverAggLayout(ast->right, input, a, &r));
      *out = ast->kind == AstExpr::Kind::kAnd ? Expr::And(l, r)
                                              : Expr::Or(l, r);
      return Status::OK();
    }
    case AstExpr::Kind::kNot: {
      ExprPtr inner;
      PIER_RETURN_IF_ERROR(BindOverAggLayout(ast->left, input, a, &inner));
      *out = Expr::Not(inner);
      return Status::OK();
    }
    case AstExpr::Kind::kNeg: {
      ExprPtr inner;
      PIER_RETURN_IF_ERROR(BindOverAggLayout(ast->left, input, a, &inner));
      *out = Expr::Negate(inner);
      return Status::OK();
    }
    default:
      return Status::NotSupported("expression over aggregates: " +
                                  ast->ToString());
  }
}

Status PlanAggregation(const SelectStmt& stmt, const Schema& input,
                       QueryPlan* plan) {
  AggAnalysis a;
  for (const std::string& g : stmt.group_by) {
    int index = -1;
    PIER_RETURN_IF_ERROR(input.Resolve(g, &index));
    a.group_cols.push_back(index);
    a.group_names.push_back(g);
  }
  // Each SELECT item must reduce to a group column or an aggregate.
  for (const sql::SelectItem& item : stmt.items) {
    if (item.expr->kind == AstExpr::Kind::kAggCall) {
      int col = -1;
      if (item.expr->left != nullptr) {
        col = ColumnIndexIn(item.expr->left, input);
        if (col < 0) {
          return Status::InvalidArgument(
              "aggregate argument must be a column: " +
              item.expr->ToString());
        }
      }
      std::string name =
          item.alias.empty() ? item.expr->ToString() : item.alias;
      int agg_index = FindOrAddAgg(&a, item.expr->agg, col, name);
      a.final_projection.push_back(
          static_cast<int>(a.group_cols.size()) + agg_index);
      a.output_names.push_back(name);
      continue;
    }
    if (item.expr->kind == AstExpr::Kind::kColumn) {
      int input_index = -1;
      PIER_RETURN_IF_ERROR(input.Resolve(item.expr->column, &input_index));
      bool found = false;
      for (size_t g = 0; g < a.group_cols.size(); ++g) {
        if (a.group_cols[g] == input_index) {
          a.final_projection.push_back(static_cast<int>(g));
          a.output_names.push_back(
              item.alias.empty() ? item.expr->column : item.alias);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("column " + item.expr->column +
                                       " must appear in GROUP BY");
      }
      continue;
    }
    return Status::NotSupported(
        "aggregate SELECT items must be columns or aggregate calls: " +
        item.expr->ToString());
  }
  if (stmt.having != nullptr) {
    PIER_RETURN_IF_ERROR(
        BindOverAggLayout(stmt.having, input, &a, &plan->having));
  }
  // ORDER BY: an alias of a select item, a group column, or an agg call.
  if (stmt.order_by != nullptr) {
    int order = -1;
    if (stmt.order_by->kind == AstExpr::Kind::kColumn) {
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (!stmt.items[i].alias.empty() &&
            stmt.items[i].alias == stmt.order_by->column) {
          order = static_cast<int>(i);
          break;
        }
      }
    }
    if (order < 0) {
      // Match by structural print against select items.
      std::string want = stmt.order_by->ToString();
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (stmt.items[i].expr->ToString() == want) {
          order = static_cast<int>(i);
          break;
        }
      }
    }
    if (order < 0) {
      return Status::NotSupported(
          "ORDER BY must reference a SELECT item in aggregate queries");
    }
    plan->order_col = order;
    plan->order_desc = stmt.order_desc;
  }
  plan->group_cols = std::move(a.group_cols);
  plan->aggs = std::move(a.aggs);
  plan->final_projection = std::move(a.final_projection);
  plan->output_names = std::move(a.output_names);
  return Status::OK();
}

Status PlanSelectItems(const SelectStmt& stmt, const Schema& schema,
                       QueryPlan* plan) {
  if (stmt.select_star) {
    // Identity projection.
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      plan->output_names.push_back(schema.column(i).name);
    }
  } else {
    for (const sql::SelectItem& item : stmt.items) {
      ExprPtr bound;
      PIER_RETURN_IF_ERROR(BindScalar(item.expr, schema, &bound));
      plan->projections.push_back(bound);
      plan->output_names.push_back(
          item.alias.empty() ? item.expr->ToString() : item.alias);
    }
  }
  if (stmt.order_by != nullptr) {
    // Resolve against the output: alias, structural match, or (for SELECT *)
    // a schema column.
    int order = -1;
    if (stmt.order_by->kind == AstExpr::Kind::kColumn) {
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (!stmt.items[i].alias.empty() &&
            stmt.items[i].alias == stmt.order_by->column) {
          order = static_cast<int>(i);
        }
      }
      if (order < 0 && stmt.select_star) {
        int index = -1;
        PIER_RETURN_IF_ERROR(schema.Resolve(stmt.order_by->column, &index));
        order = index;
      }
    }
    if (order < 0) {
      std::string want = stmt.order_by->ToString();
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (stmt.items[i].expr->ToString() == want) {
          order = static_cast<int>(i);
        }
      }
    }
    if (order < 0) {
      return Status::NotSupported("cannot resolve ORDER BY expression");
    }
    plan->order_col = order;
    plan->order_desc = stmt.order_desc;
  }
  return Status::OK();
}

/// Plans FROM lists of three or more relations as a left-deep chain of
/// binary symmetric-hash joins, emitted directly as a composed opgraph:
/// scans rehash into the first join, each join's output rehashes into the
/// next on the following join key, and — when aggregating — a partial-agg
/// stage runs at the final join's rendezvous nodes so aggregation happens
/// in-network (kTree combines partials up the dissemination tree).
Result<QueryPlan> PlanMultiwayJoin(const SelectStmt& stmt,
                                   const catalog::Catalog& catalog,
                                   const PlannerOptions& options) {
  const size_t n = stmt.from.size();
  // n scans + (n-1) joins + filter/agg/collect tail must fit the opgraph
  // wire cap (64 nodes); reject well-formed-but-oversized SQL here with a
  // planner error instead of a corruption status at Execute.
  if (n > 30) {
    return Status::InvalidArgument(
        "FROM lists a maximum of 30 relations");
  }
  std::vector<const catalog::TableDef*> defs(n);
  std::vector<Schema> schemas(n);
  for (size_t i = 0; i < n; ++i) {
    defs[i] = catalog.Find(stmt.from[i].table);
    if (defs[i] == nullptr) {
      return Status::NotFound("unknown table: " + stmt.from[i].table);
    }
    schemas[i] = AliasSchema(*defs[i], stmt.from[i].alias);
  }

  std::vector<AstExprPtr> conjuncts;
  Conjuncts(stmt.join_on, &conjuncts);
  Conjuncts(stmt.where, &conjuncts);
  std::vector<bool> used(conjuncts.size(), false);

  // Greedy left-deep join order: start from the first relation, repeatedly
  // attach a relation connected to the current layout by >= 1 equality
  // conjunct, consuming every key conjunct that links the two sides.
  struct JoinStep {
    size_t table;
    std::vector<int> left_keys;   // into the accumulated layout
    std::vector<int> right_keys;  // into the attached relation's schema
  };
  std::vector<bool> joined(n, false);
  joined[0] = true;
  Schema layout = schemas[0];
  std::vector<JoinStep> steps;
  for (size_t step = 1; step < n; ++step) {
    bool attached = false;
    for (size_t t = 0; t < n && !attached; ++t) {
      if (joined[t]) continue;
      Schema concat = Schema::Concat(layout, schemas[t]);
      size_t left_width = layout.num_columns();
      JoinStep js;
      js.table = t;
      std::vector<size_t> consumed;
      for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
        if (used[ci]) continue;
        const AstExprPtr& c = conjuncts[ci];
        if (c->kind != AstExpr::Kind::kCompare ||
            c->cmp != exec::CompareOp::kEq) {
          continue;
        }
        int a = ColumnIndexIn(c->left, concat);
        int b = ColumnIndexIn(c->right, concat);
        if (a < 0 || b < 0) continue;
        bool a_left = static_cast<size_t>(a) < left_width;
        bool b_left = static_cast<size_t>(b) < left_width;
        if (a_left == b_left) continue;
        int l = a_left ? a : b;
        int r = a_left ? b : a;
        js.left_keys.push_back(l);
        js.right_keys.push_back(r - static_cast<int>(left_width));
        consumed.push_back(ci);
      }
      if (js.left_keys.empty()) continue;
      for (size_t ci : consumed) used[ci] = true;
      joined[t] = true;
      layout = std::move(concat);
      steps.push_back(std::move(js));
      attached = true;
    }
    if (!attached) {
      return Status::NotSupported(
          "every FROM relation must connect to the join via an equality "
          "predicate (cross products are not distributed)");
    }
  }

  QueryPlan plan;
  plan.kind = PlanKind::kJoin;
  plan.table = defs[0]->name;
  plan.scan_schema = schemas[0];
  plan.join_strategy = query::JoinStrategy::kSymmetricHash;
  plan.distinct = stmt.distinct;
  plan.limit = stmt.limit;
  plan.every = Seconds(stmt.every_seconds);
  plan.window = Seconds(stmt.window_seconds);

  // Residual predicate over the full concat layout.
  std::vector<AstExprPtr> residual;
  for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
    if (!used[ci]) residual.push_back(conjuncts[ci]);
  }
  AstExprPtr residual_ast = AndAll(residual);
  if (residual_ast != nullptr) {
    PIER_RETURN_IF_ERROR(BindScalar(residual_ast, layout, &plan.where));
  }

  bool has_agg = !stmt.group_by.empty();
  for (const sql::SelectItem& item : stmt.items) {
    has_agg = has_agg || ContainsAgg(item.expr);
  }
  if (has_agg) {
    plan.agg_strategy = options.agg_strategy;
    PIER_RETURN_IF_ERROR(PlanAggregation(stmt, layout, &plan));
  } else {
    PIER_RETURN_IF_ERROR(PlanSelectItems(stmt, layout, &plan));
  }

  // -- emit the composed opgraph --------------------------------------------
  query::OpGraph g;
  auto add_scan = [&](size_t t) {
    query::OpNode s;
    s.type = query::OpType::kScan;
    s.table = defs[t]->name;
    s.schema = schemas[t];
    s.out = query::ExchangeKind::kRehash;
    g.nodes.push_back(std::move(s));
    return static_cast<uint32_t>(g.nodes.size()) - 1;
  };
  uint32_t upstream = add_scan(0);
  for (size_t k = 0; k < steps.size(); ++k) {
    uint32_t right = add_scan(steps[k].table);
    query::OpNode j;
    j.type = query::OpType::kJoin;
    j.strategy = query::JoinStrategy::kSymmetricHash;
    // Per-edge strategy selection. Only the first edge joins two base-table
    // scans; later edges consume a prior join's rehash output, whose
    // tuples exist nowhere until that join runs — semi/Bloom pre-filtering
    // has no scan to suppress, so those edges stay symmetric hash.
    if (k == 0 && options.join_strategy ==
                      query::JoinStrategy::kSymmetricHash) {
      JoinCostInputs ci;
      ci.left = &defs[0]->stats;
      ci.right = &defs[steps[k].table]->stats;
      ci.left_key_cols = steps[k].left_keys;
      ci.right_key_cols = steps[k].right_keys;
      j.strategy = ChooseJoinStrategy(ci).strategy;
      plan.join_strategy = j.strategy;
    }
    j.left_keys = steps[k].left_keys;
    j.right_keys = steps[k].right_keys;
    j.inputs = {upstream, right};
    // Intermediate joins rehash into the next join; the final join feeds
    // the local post-join pipeline.
    j.out = k + 1 < steps.size() ? query::ExchangeKind::kRehash
                                 : query::ExchangeKind::kLocal;
    g.nodes.push_back(std::move(j));
    upstream = static_cast<uint32_t>(g.nodes.size()) - 1;
  }
  auto chain = [&](query::OpNode node) {
    node.inputs = {static_cast<uint32_t>(g.nodes.size()) - 1};
    g.nodes.push_back(std::move(node));
    return static_cast<uint32_t>(g.nodes.size()) - 1;
  };
  if (plan.where != nullptr) {
    query::OpNode f;
    f.type = query::OpType::kFilter;
    f.predicate = plan.where;
    chain(std::move(f));
  }
  query::OpNode collect;
  collect.type = query::OpType::kCollect;
  collect.order_col = plan.order_col;
  collect.order_desc = plan.order_desc;
  collect.limit = plan.limit;
  if (has_agg) {
    // In-network aggregation over the join output: partial-aggregate at
    // the rendezvous nodes, combine per AggStrategy, finalize at origin.
    query::OpNode pa;
    pa.type = query::OpType::kPartialAgg;
    pa.group_cols = plan.group_cols;
    pa.aggs = plan.aggs;
    pa.out = plan.agg_strategy == query::AggStrategy::kTree
                 ? query::ExchangeKind::kTree
                 : query::ExchangeKind::kToOrigin;
    chain(std::move(pa));
    query::OpNode fa;
    fa.type = query::OpType::kFinalAgg;
    fa.group_cols = plan.group_cols;
    fa.aggs = plan.aggs;
    fa.having = plan.having;
    chain(std::move(fa));
    collect.final_projection = plan.final_projection;
  } else {
    if (!plan.projections.empty()) {
      query::OpNode pr;
      pr.type = query::OpType::kProject;
      pr.exprs = plan.projections;
      chain(std::move(pr));
    }
    g.nodes.back().out = query::ExchangeKind::kToOrigin;
    collect.distinct = plan.distinct;
  }
  chain(std::move(collect));
  plan.graph = std::move(g);
  // Composed plans execute (and ship) the graph only: drop the classic
  // expression/aggregate fields the graph nodes now carry so the broadcast
  // doesn't pay for them twice. Scalars the runtime reads off the plan
  // (every/window/limit) and client-facing output_names stay.
  plan.where.reset();
  plan.projections.clear();
  plan.group_cols.clear();
  plan.aggs.clear();
  plan.having.reset();
  plan.final_projection.clear();
  return plan;
}

// ---------------------------------------------------------------------------
// Index-scan access-path selection
// ---------------------------------------------------------------------------

/// The range a WHERE clause pins onto one indexed attribute. Bounds are the
/// CLOSED superset the cursor walks (strict bounds keep the literal; the
/// trailing exact filter re-checks), Null = open side.
struct IndexChoice {
  int col = -1;
  Value lo;
  Value hi;
  int bound_count = 0;
};

bool LiteralFitsColumn(const Value& lit, ValueType col_type) {
  switch (col_type) {
    case ValueType::kInt64:
      return lit.type() == ValueType::kInt64 ||
             lit.type() == ValueType::kDouble;
    case ValueType::kString:
      return lit.type() == ValueType::kString;
    default:
      return false;
  }
}

/// Picks the indexed attribute the WHERE conjuncts constrain best (two-sided
/// ranges beat one-sided ones). Only `col op literal` / `literal op col`
/// conjuncts count; everything else stays in the filter.
IndexChoice ChooseIndex(const sql::SelectStmt& stmt,
                        const catalog::TableDef& def, const Schema& schema) {
  std::vector<AstExprPtr> conjuncts;
  Conjuncts(stmt.where, &conjuncts);

  IndexChoice best;
  for (const catalog::IndexDef& idx : def.indexes) {
    IndexChoice choice;
    choice.col = idx.col;
    ValueType col_type =
        def.schema.column(static_cast<size_t>(idx.col)).type;
    bool has_lo = false, has_hi = false;
    for (const AstExprPtr& c : conjuncts) {
      if (c == nullptr || c->kind != AstExpr::Kind::kCompare) continue;
      // Normalize to column-on-the-left.
      AstExprPtr col_side = c->left, lit_side = c->right;
      exec::CompareOp op = c->cmp;
      if (col_side != nullptr && col_side->kind == AstExpr::Kind::kLiteral) {
        std::swap(col_side, lit_side);
        switch (op) {  // 5 < x  ==  x > 5
          case exec::CompareOp::kLt: op = exec::CompareOp::kGt; break;
          case exec::CompareOp::kLe: op = exec::CompareOp::kGe; break;
          case exec::CompareOp::kGt: op = exec::CompareOp::kLt; break;
          case exec::CompareOp::kGe: op = exec::CompareOp::kLe; break;
          default: break;
        }
      }
      if (lit_side == nullptr || lit_side->kind != AstExpr::Kind::kLiteral) {
        continue;
      }
      if (ColumnIndexIn(col_side, schema) != idx.col) continue;
      const Value& lit = lit_side->literal;
      if (lit.is_null() || !LiteralFitsColumn(lit, col_type)) continue;
      switch (op) {
        case exec::CompareOp::kGt:
        case exec::CompareOp::kGe:
          if (!has_lo || choice.lo.Compare(lit) < 0) choice.lo = lit;
          has_lo = true;
          break;
        case exec::CompareOp::kLt:
        case exec::CompareOp::kLe:
          if (!has_hi || lit.Compare(choice.hi) < 0) choice.hi = lit;
          has_hi = true;
          break;
        case exec::CompareOp::kEq:
          if (!has_lo || choice.lo.Compare(lit) < 0) choice.lo = lit;
          if (!has_hi || lit.Compare(choice.hi) < 0) choice.hi = lit;
          has_lo = has_hi = true;
          break;
        default:
          break;
      }
    }
    choice.bound_count = (has_lo ? 1 : 0) + (has_hi ? 1 : 0);
    if (choice.bound_count > best.bound_count) best = choice;
  }
  return best;
}

/// Rewrites a planned single-table query into its index-scan opgraph:
///   index-scan -> filter(full WHERE) [-> project] -> origin tail.
/// The graph executes entirely at the origin (plus the trie owners the
/// cursor contacts) — EXPLAIN shows the chosen access path.
void EmitIndexGraph(const catalog::TableDef& def, const Schema& schema,
                    const IndexChoice& choice, bool has_agg,
                    QueryPlan* plan) {
  query::OpGraph g;
  query::OpNode scan;
  scan.type = query::OpType::kIndexScan;
  scan.table = def.name;
  scan.schema = schema;
  scan.index_col = choice.col;
  scan.index_lo = choice.lo;
  scan.index_hi = choice.hi;
  g.nodes.push_back(std::move(scan));
  auto chain = [&](query::OpNode node) {
    node.inputs = {static_cast<uint32_t>(g.nodes.size()) - 1};
    g.nodes.push_back(std::move(node));
  };
  // The full predicate re-applies after the cursor: the encoded range is a
  // superset (string truncation, double bounds), and WHERE may carry
  // conjuncts the index never saw.
  query::OpNode f;
  f.type = query::OpType::kFilter;
  f.predicate = plan->where;
  chain(std::move(f));

  query::OpNode collect;
  collect.type = query::OpType::kCollect;
  collect.order_col = plan->order_col;
  collect.order_desc = plan->order_desc;
  collect.limit = plan->limit;
  if (has_agg) {
    // Raw in-range rows aggregate completely at the origin (the cursor
    // already gathered them; a partial-agg layer would add nothing).
    g.nodes.back().out = query::ExchangeKind::kToOrigin;
    query::OpNode fa;
    fa.type = query::OpType::kFinalAgg;
    fa.group_cols = plan->group_cols;
    fa.aggs = plan->aggs;
    fa.having = plan->having;
    chain(std::move(fa));
    collect.final_projection = plan->final_projection;
  } else {
    if (!plan->projections.empty()) {
      query::OpNode pr;
      pr.type = query::OpType::kProject;
      pr.exprs = plan->projections;
      chain(std::move(pr));
    }
    g.nodes.back().out = query::ExchangeKind::kToOrigin;
    collect.distinct = plan->distinct;
  }
  chain(std::move(collect));
  plan->graph = std::move(g);
  // Composed plans ship (and execute) the graph only; see PlanMultiwayJoin.
  plan->where.reset();
  plan->projections.clear();
  plan->group_cols.clear();
  plan->aggs.clear();
  plan->having.reset();
  plan->final_projection.clear();
}

Result<QueryPlan> PlanSelect(const SelectStmt& stmt,
                             const catalog::Catalog& catalog,
                             const PlannerOptions& options) {
  QueryPlan plan;
  plan.distinct = stmt.distinct;
  plan.limit = stmt.limit;
  plan.every = Seconds(stmt.every_seconds);
  plan.window = Seconds(stmt.window_seconds);

  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM must name at least one relation");
  }
  if (stmt.from.size() > 2) {
    return PlanMultiwayJoin(stmt, catalog, options);
  }
  const catalog::TableDef* left_def = catalog.Find(stmt.from[0].table);
  if (left_def == nullptr) {
    return Status::NotFound("unknown table: " + stmt.from[0].table);
  }
  Schema left_schema = AliasSchema(*left_def, stmt.from[0].alias);

  bool has_agg = !stmt.group_by.empty();
  for (const sql::SelectItem& item : stmt.items) {
    has_agg = has_agg || ContainsAgg(item.expr);
  }

  if (stmt.from.size() == 1) {
    plan.table = left_def->name;
    plan.scan_schema = left_schema;
    if (stmt.where != nullptr) {
      PIER_RETURN_IF_ERROR(BindScalar(stmt.where, left_schema, &plan.where));
    }
    if (has_agg) {
      plan.kind = PlanKind::kAggregate;
      plan.agg_strategy = options.agg_strategy;
      PIER_RETURN_IF_ERROR(PlanAggregation(stmt, left_schema, &plan));
    } else {
      plan.kind = PlanKind::kSelectProject;
      PIER_RETURN_IF_ERROR(PlanSelectItems(stmt, left_schema, &plan));
    }
    // Access-path selection: a WHERE that pins an indexed attribute to a
    // range turns the broadcast scan into a PHT index scan. Windowed
    // continuous queries keep scanning — index entries carry their own
    // arrival times, not the base copies', so window semantics differ.
    if (options.use_index && plan.where != nullptr && plan.window == 0) {
      IndexChoice choice = ChooseIndex(stmt, *left_def, left_schema);
      if (choice.bound_count > 0) {
        EmitIndexGraph(*left_def, left_schema, choice, has_agg, &plan);
      }
    }
    return plan;
  }

  // -- join ------------------------------------------------------------------
  const catalog::TableDef* right_def = catalog.Find(stmt.from[1].table);
  if (right_def == nullptr) {
    return Status::NotFound("unknown table: " + stmt.from[1].table);
  }
  Schema right_schema = AliasSchema(*right_def, stmt.from[1].alias);
  Schema concat = Schema::Concat(left_schema, right_schema);

  plan.kind = PlanKind::kJoin;
  plan.table = left_def->name;
  plan.scan_schema = left_schema;
  plan.right_table = right_def->name;
  plan.right_schema = right_schema;

  // Collect conjuncts from ON and WHERE; extract equi-join keys.
  std::vector<AstExprPtr> conjuncts;
  Conjuncts(stmt.join_on, &conjuncts);
  Conjuncts(stmt.where, &conjuncts);
  std::vector<AstExprPtr> residual;
  size_t left_width = left_schema.num_columns();
  for (const AstExprPtr& c : conjuncts) {
    bool is_key = false;
    if (c->kind == AstExpr::Kind::kCompare &&
        c->cmp == exec::CompareOp::kEq) {
      int a = ColumnIndexIn(c->left, concat);
      int b = ColumnIndexIn(c->right, concat);
      if (a >= 0 && b >= 0) {
        bool a_left = static_cast<size_t>(a) < left_width;
        bool b_left = static_cast<size_t>(b) < left_width;
        if (a_left != b_left) {
          int l = a_left ? a : b;
          int r = a_left ? b : a;
          plan.left_key_cols.push_back(l);
          plan.right_key_cols.push_back(r -
                                        static_cast<int>(left_width));
          is_key = true;
        }
      }
    }
    if (!is_key) residual.push_back(c);
  }
  if (plan.left_key_cols.empty()) {
    return Status::NotSupported(
        "joins require at least one equality predicate between the two "
        "relations");
  }
  AstExprPtr residual_ast = AndAll(residual);
  if (residual_ast != nullptr) {
    PIER_RETURN_IF_ERROR(BindScalar(residual_ast, concat, &plan.where));
  }

  plan.join_strategy = options.join_strategy;
  if (options.prefer_fetch_matches &&
      right_def->partition_cols == plan.right_key_cols) {
    // Partitioning alignment beats any cardinality argument: fetch-matches
    // ships zero tuples for the inner relation.
    plan.join_strategy = query::JoinStrategy::kFetchMatches;
  } else if (options.join_strategy == query::JoinStrategy::kSymmetricHash) {
    // The caller left the strategy at its default, so the planner owns the
    // choice: consult table statistics and pick the cheapest shipping
    // strategy for this edge. Without stats this is a no-op (hash).
    JoinCostInputs ci;
    ci.left = &left_def->stats;
    ci.right = &right_def->stats;
    ci.left_key_cols = plan.left_key_cols;
    ci.right_key_cols = plan.right_key_cols;
    plan.join_strategy = ChooseJoinStrategy(ci).strategy;
  }

  if (has_agg) {
    plan.agg_strategy = options.agg_strategy;
    PIER_RETURN_IF_ERROR(PlanAggregation(stmt, concat, &plan));
  } else {
    PIER_RETURN_IF_ERROR(PlanSelectItems(stmt, concat, &plan));
  }
  return plan;
}

Result<QueryPlan> PlanRecursive(const sql::RecursiveQuery& rq,
                                const catalog::Catalog& catalog) {
  if (rq.columns.size() != 2) {
    return Status::NotSupported(
        "recursive relations must declare exactly (src, dst)");
  }
  // Base: SELECT c1, c2 FROM edge [WHERE ...].
  if (rq.base.from.size() != 1 || rq.base.items.size() != 2) {
    return Status::NotSupported(
        "recursive base must be SELECT src, dst FROM <edges>");
  }
  const catalog::TableDef* edge_def = catalog.Find(rq.base.from[0].table);
  if (edge_def == nullptr) {
    return Status::NotFound("unknown edge table: " + rq.base.from[0].table);
  }
  Schema edge_schema = AliasSchema(*edge_def, rq.base.from[0].alias);
  int src_col = ColumnIndexIn(rq.base.items[0].expr, edge_schema);
  int dst_col = ColumnIndexIn(rq.base.items[1].expr, edge_schema);
  if (src_col < 0 || dst_col < 0) {
    return Status::NotSupported(
        "recursive base items must be edge-table columns");
  }
  // Step: must join the recursive relation with the same edge table (the
  // canonical transitive-closure shape); details are implied.
  bool step_uses_self = false, step_uses_edges = false;
  for (const sql::TableRef& ref : rq.step.from) {
    step_uses_self |= ref.table == rq.name;
    step_uses_edges |= ref.table == edge_def->name;
  }
  if (!step_uses_self || !step_uses_edges) {
    return Status::NotSupported(
        "recursive step must join " + rq.name + " with " + edge_def->name);
  }

  QueryPlan plan;
  plan.kind = PlanKind::kRecursive;
  plan.table = edge_def->name;
  plan.scan_schema = edge_schema;
  plan.src_col = src_col;
  plan.dst_col = dst_col;
  plan.max_hops = static_cast<int>(rq.max_hops);
  if (rq.base.where != nullptr) {
    PIER_RETURN_IF_ERROR(BindScalar(rq.base.where, edge_schema, &plan.where));
  }

  // Outer select runs over (src, dst, hops).
  Schema closure(rq.name, {{rq.columns[0], ValueType::kNull},
                           {rq.columns[1], ValueType::kNull},
                           {"hops", ValueType::kInt64}});
  if (rq.outer.from.size() != 1 || rq.outer.from[0].table != rq.name) {
    return Status::NotSupported("outer select must read FROM " + rq.name);
  }
  if (rq.outer.where != nullptr) {
    PIER_RETURN_IF_ERROR(
        BindScalar(rq.outer.where, closure, &plan.outer_where));
  }
  if (!rq.outer.select_star) {
    for (const sql::SelectItem& item : rq.outer.items) {
      ExprPtr bound;
      PIER_RETURN_IF_ERROR(BindScalar(item.expr, closure, &bound));
      plan.projections.push_back(bound);
      plan.output_names.push_back(
          item.alias.empty() ? item.expr->ToString() : item.alias);
    }
  } else {
    for (size_t i = 0; i < closure.num_columns(); ++i) {
      plan.output_names.push_back(closure.column(i).name);
    }
  }
  plan.limit = rq.outer.limit;
  return plan;
}

}  // namespace

Result<QueryPlan> PlanStatement(const sql::Statement& stmt,
                                const catalog::Catalog& catalog,
                                const PlannerOptions& options) {
  if (stmt.kind == sql::Statement::Kind::kRecursive) {
    return PlanRecursive(*stmt.recursive, catalog);
  }
  return PlanSelect(stmt.select, catalog, options);
}

Result<uint64_t> ExecuteSql(query::QueryEngine* engine, const std::string& sql,
                            query::QueryEngine::ResultCallback cb,
                            const PlannerOptions& options) {
  sql::Statement stmt;
  PIER_ASSIGN_OR_RETURN(stmt, sql::Parse(sql));
  query::QueryPlan plan;
  PIER_ASSIGN_OR_RETURN(plan, PlanStatement(stmt, *engine->catalog(),
                                            options));
  if (stmt.explain) {
    // EXPLAIN answers locally: the planned opgraph's rendering as a
    // one-row result. Nothing is disseminated; the id 0 marks "no query".
    plan.EnsureGraph();
    query::ResultBatch batch;
    batch.rows.push_back({Value::String(plan.graph.ToString())});
    if (cb) cb(batch);
    return static_cast<uint64_t>(0);
  }
  return engine->Execute(std::move(plan), std::move(cb));
}

}  // namespace planner
}  // namespace pier
