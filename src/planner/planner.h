// Planner: binds a parsed SQL statement against the catalog and produces the
// distributed QueryPlan (and its opgraph) the engine disseminates.
//
// Responsibilities: name resolution (aliases, qualified columns), equi-join
// key extraction from WHERE / ON conjuncts, join-order selection for 3+
// relation FROM lists (left-deep symmetric-hash chains emitted as composed
// opgraphs, with group-by pushed to the join rendezvous per AggStrategy),
// aggregate analysis (partial/final split, HAVING and ORDER BY rewritten
// over the aggregate layout), join/aggregation strategy selection, and
// validation (e.g. fetch-matches partitioning compatibility is re-checked
// by the engine). EXPLAIN statements plan but do not execute.

#ifndef PIER_PLANNER_PLANNER_H_
#define PIER_PLANNER_PLANNER_H_

#include "catalog/table_def.h"
#include "common/result.h"
#include "query/engine.h"
#include "query/plan.h"
#include "sql/ast.h"
#include "sql/parser.h"

namespace pier {
namespace planner {

struct PlannerOptions {
  query::JoinStrategy join_strategy = query::JoinStrategy::kSymmetricHash;
  query::AggStrategy agg_strategy = query::AggStrategy::kTree;
  /// When true, a join whose inner relation is already partitioned on the
  /// join key is downgraded from rehashing to fetch-matches automatically.
  bool prefer_fetch_matches = true;
  /// When true, a single-table query whose WHERE bounds an indexed
  /// attribute (<, <=, >, >=, =, BETWEEN against a literal) plans as a PHT
  /// IndexScan instead of a broadcast scan. The engine still degrades to
  /// the broadcast plan at runtime if the index proves cold or unreachable.
  bool use_index = true;
};

/// Binds `stmt` against `catalog`. Fails with InvalidArgument (bad names,
/// unsupported shapes) or NotFound (unknown tables).
Result<query::QueryPlan> PlanStatement(const sql::Statement& stmt,
                                       const catalog::Catalog& catalog,
                                       const PlannerOptions& options = {});

/// Convenience: parse + plan + execute in one call.
Result<uint64_t> ExecuteSql(query::QueryEngine* engine, const std::string& sql,
                            query::QueryEngine::ResultCallback cb,
                            const PlannerOptions& options = {});

}  // namespace planner
}  // namespace pier

#endif  // PIER_PLANNER_PLANNER_H_
