// Unit tests for src/common: serialization, SHA-1, Id160 ring arithmetic,
// Value semantics, RNG determinism, Bloom filters, Status/Result.

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <string>
#include <vector>

#include "common/bloom.h"
#include "common/hash.h"
#include "common/id160.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/sha1.h"
#include "common/status.h"
#include "common/value.h"

namespace pier {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: no such key");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(Status::Code::kTimeout), "Timeout");
  EXPECT_STREQ(StatusCodeName(Status::Code::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(Status::Code::kUnavailable), "Unavailable");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Timeout("slow"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout());
  EXPECT_EQ(r.value_or(-1), -1);
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(SerializeTest, FixedWidthRoundTrip) {
  Writer w;
  w.PutU8(0xab);
  w.PutFixed16(0x1234);
  w.PutFixed32(0xdeadbeef);
  w.PutFixed64(0x0123456789abcdefull);
  Reader r(w.buffer());
  uint8_t a;
  uint16_t b;
  uint32_t c;
  uint64_t d;
  ASSERT_TRUE(r.GetU8(&a).ok());
  ASSERT_TRUE(r.GetFixed16(&b).ok());
  ASSERT_TRUE(r.GetFixed32(&c).ok());
  ASSERT_TRUE(r.GetFixed64(&d).ok());
  EXPECT_EQ(a, 0xab);
  EXPECT_EQ(b, 0x1234);
  EXPECT_EQ(c, 0xdeadbeefu);
  EXPECT_EQ(d, 0x0123456789abcdefull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, VarintRoundTrip) {
  const std::vector<uint64_t> cases = {
      0,       1,          127,        128,
      16383,   16384,      1000000,    1ull << 30,
      1ull << 35, 1ull << 62, std::numeric_limits<uint64_t>::max()};
  Writer w;
  for (uint64_t v : cases) w.PutVarint64(v);
  Reader r(w.buffer());
  for (uint64_t expected : cases) {
    uint64_t got = 0;
    ASSERT_TRUE(r.GetVarint64(&got).ok());
    EXPECT_EQ(got, expected);
  }
}

TEST(SerializeTest, SignedVarintZigZag) {
  const std::vector<int64_t> cases = {0,  -1, 1,  -2, 2, 1000, -1000,
                                      std::numeric_limits<int64_t>::min(),
                                      std::numeric_limits<int64_t>::max()};
  Writer w;
  for (int64_t v : cases) w.PutVarint64Signed(v);
  // Small magnitudes should encode in one byte.
  Writer small;
  small.PutVarint64Signed(-1);
  EXPECT_EQ(small.size(), 1u);
  Reader r(w.buffer());
  for (int64_t expected : cases) {
    int64_t got = 0;
    ASSERT_TRUE(r.GetVarint64Signed(&got).ok());
    EXPECT_EQ(got, expected);
  }
}

TEST(SerializeTest, StringAndDouble) {
  Writer w;
  w.PutString("hello");
  w.PutString(std::string("\x00\x01\x02", 3));  // embedded NULs survive
  w.PutDouble(3.14159);
  w.PutDouble(-0.0);
  Reader r(w.buffer());
  std::string s1, s2;
  double d1, d2;
  ASSERT_TRUE(r.GetString(&s1).ok());
  ASSERT_TRUE(r.GetString(&s2).ok());
  ASSERT_TRUE(r.GetDouble(&d1).ok());
  ASSERT_TRUE(r.GetDouble(&d2).ok());
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2.size(), 3u);
  EXPECT_DOUBLE_EQ(d1, 3.14159);
  EXPECT_EQ(d2, 0.0);
}

TEST(SerializeTest, TruncatedInputIsCorruptionNotCrash) {
  Writer w;
  w.PutFixed64(123);
  std::string bytes = w.buffer().substr(0, 3);
  Reader r(bytes);
  uint64_t v;
  EXPECT_TRUE(r.GetFixed64(&v).IsCorruption());
}

TEST(SerializeTest, TruncatedStringLength) {
  Writer w;
  w.PutVarint64(1000);  // claims 1000 bytes follow
  Reader r(w.buffer());
  std::string s;
  EXPECT_TRUE(r.GetString(&s).IsCorruption());
}

TEST(SerializeTest, ReaderPoisonsAfterFirstError) {
  Reader r("");
  uint8_t v;
  EXPECT_FALSE(r.GetU8(&v).ok());
  EXPECT_FALSE(r.GetU8(&v).ok());
}

TEST(SerializeTest, UnterminatedVarintFails) {
  std::string bad(12, '\xff');  // continuation bit forever
  Reader r(bad);
  uint64_t v;
  EXPECT_TRUE(r.GetVarint64(&v).IsCorruption());
}

// ---------------------------------------------------------------------------
// SHA-1 (FIPS 180-1 test vectors)
// ---------------------------------------------------------------------------

std::string DigestHex(const Sha1Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (uint8_t b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(DigestHex(Sha1::Hash("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(DigestHex(Sha1::Hash("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(DigestHex(Sha1::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestHex(h.Finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  Sha1 h;
  h.Update("querying at ");
  h.Update("internet scale");
  EXPECT_EQ(DigestHex(h.Finish()),
            DigestHex(Sha1::Hash("querying at internet scale")));
}

// ---------------------------------------------------------------------------
// Id160
// ---------------------------------------------------------------------------

TEST(Id160Test, HexRoundTrip) {
  Id160 id = Id160::FromName("node-1");
  Id160 back;
  ASSERT_TRUE(Id160::FromHex(id.ToHex(), &back).ok());
  EXPECT_EQ(id, back);
}

TEST(Id160Test, FromHexRejectsBadInput) {
  Id160 out;
  EXPECT_FALSE(Id160::FromHex("abc", &out).ok());
  EXPECT_FALSE(Id160::FromHex(std::string(40, 'z'), &out).ok());
}

TEST(Id160Test, AddPowerOfTwoLowBit) {
  Id160 zero;
  Id160 one = zero.AddPowerOfTwo(0);
  EXPECT_EQ(one.ToHex(), std::string(39, '0') + "1");
}

TEST(Id160Test, AddPowerOfTwoCarries) {
  Id160 max = Id160::Max();
  Id160 wrapped = max.AddPowerOfTwo(0);  // 2^160 - 1 + 1 == 0 (mod 2^160)
  EXPECT_EQ(wrapped, Id160());
}

TEST(Id160Test, DistanceIsModular) {
  Id160 a = Id160::FromUint64(100);
  Id160 b = Id160::FromUint64(300);
  // a -> b plus b -> a must cover the full ring (sum == 0 mod 2^160).
  Id160 ab = a.DistanceTo(b);
  Id160 ba = b.DistanceTo(a);
  EXPECT_EQ(ab.Add(ba), Id160());
  EXPECT_EQ(a.DistanceTo(a), Id160());
}

TEST(Id160Test, IntervalNoWrap) {
  Id160 a = Id160::FromUint64(10);
  Id160 b = Id160::FromUint64(20);
  Id160 x = Id160::FromUint64(15);
  EXPECT_TRUE(x.InIntervalOpenClosed(a, b));
  EXPECT_TRUE(b.InIntervalOpenClosed(a, b));   // closed at right
  EXPECT_FALSE(a.InIntervalOpenClosed(a, b));  // open at left
  EXPECT_FALSE(x.InIntervalOpenOpen(b, a) &&
               x.InIntervalOpenClosed(a, b) == false);
}

TEST(Id160Test, IntervalWrapsThroughZero) {
  Id160 hi = Id160::Max();            // near top of ring
  Id160 lo = Id160::FromUint64(5);    // just past zero... (top 64 bits)
  Id160 zero;
  // (hi, lo] wraps: zero is inside.
  EXPECT_TRUE(zero.InIntervalOpenClosed(hi, lo));
  // Something strictly between lo and hi is outside.
  Id160 mid = Id160::FromUint64(1000);
  EXPECT_FALSE(mid.InIntervalOpenClosed(hi, lo));
}

TEST(Id160Test, DegenerateIntervalCoversRing) {
  Id160 n = Id160::FromName("n");
  Id160 other = Id160::FromName("other");
  EXPECT_TRUE(other.InIntervalOpenClosed(n, n));
}

TEST(Id160Test, SerializeRoundTrip) {
  Id160 id = Id160::FromName("serialize-me");
  Writer w;
  id.Serialize(&w);
  EXPECT_EQ(w.size(), 20u);
  Reader r(w.buffer());
  Id160 back;
  ASSERT_TRUE(Id160::Deserialize(&r, &back).ok());
  EXPECT_EQ(id, back);
}

TEST(Id160Test, HighestBit) {
  EXPECT_EQ(Id160().HighestBit(), -1);
  EXPECT_EQ(Id160().AddPowerOfTwo(0).HighestBit(), 0);
  EXPECT_EQ(Id160().AddPowerOfTwo(100).HighestBit(), 100);
  EXPECT_EQ(Id160::Max().HighestBit(), 159);
}

TEST(Id160Test, NamesDisperse) {
  // Hashing distinct names should essentially never collide.
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(Id160::FromName("host-" + std::to_string(i)).ToHex());
  }
  EXPECT_EQ(seen.size(), 1000u);
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int64(7).type(), ValueType::kInt64);
  EXPECT_EQ(Value::Double(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
  EXPECT_EQ(Value::Bytes("y").type(), ValueType::kBytes);
}

TEST(ValueTest, NumericCrossTypeCompare) {
  EXPECT_EQ(Value::Int64(5).Compare(Value::Double(5.0)), 0);
  EXPECT_LT(Value::Int64(5).Compare(Value::Double(5.5)), 0);
  EXPECT_GT(Value::Double(7.0).Compare(Value::Int64(6)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int64(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("abc").Compare(Value::String("abc")), 0);
}

TEST(ValueTest, EqualNumericsHashEqual) {
  EXPECT_EQ(Value::Int64(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_NE(Value::Int64(5).Hash(), Value::Int64(6).Hash());
}

TEST(ValueTest, SerializeRoundTripAllTypes) {
  std::vector<Value> vals = {Value::Null(),
                             Value::Bool(true),
                             Value::Int64(-12345),
                             Value::Double(2.71828),
                             Value::String("PlanetLab"),
                             Value::Bytes(std::string("\x01\x02\x00", 3))};
  Writer w;
  for (const Value& v : vals) v.Serialize(&w);
  Reader r(w.buffer());
  for (const Value& expected : vals) {
    Value got;
    ASSERT_TRUE(Value::Deserialize(&r, &got).ok());
    EXPECT_EQ(got.Compare(expected), 0) << expected.ToString();
    EXPECT_EQ(got.type(), expected.type());
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(ValueTest, DeserializeRejectsBadTag) {
  std::string bad = "\x63";  // type tag 99
  Reader r(bad);
  Value v;
  EXPECT_TRUE(Value::Deserialize(&r, &v).IsCorruption());
}

TEST(ValueTest, AsDoubleConversions) {
  double d = 0;
  EXPECT_TRUE(Value::Int64(3).AsDouble(&d).ok());
  EXPECT_DOUBLE_EQ(d, 3.0);
  EXPECT_FALSE(Value::String("x").AsDouble(&d).ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkIsIndependentAndStable) {
  Rng root(7);
  Rng c1 = root.Fork(1);
  Rng c2 = root.Fork(2);
  Rng c1_again = Rng(7).Fork(1);
  EXPECT_EQ(c1.Next(), c1_again.Next());
  EXPECT_NE(c1.Next(), c2.Next());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(13);
  ZipfDistribution zipf(100, 1.0);
  int rank1 = 0, rank50plus = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t r = zipf.Sample(&rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 100u);
    if (r == 1) ++rank1;
    if (r >= 50) ++rank50plus;
  }
  EXPECT_GT(rank1, rank50plus);  // head outweighs the whole tail half
}

// ---------------------------------------------------------------------------
// Bloom filter
// ---------------------------------------------------------------------------

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter f = BloomFilter::ForEntries(1000);
  for (uint64_t i = 0; i < 1000; ++i) f.Add(Mix64(i));
  for (uint64_t i = 0; i < 1000; ++i) EXPECT_TRUE(f.MayContain(Mix64(i)));
}

TEST(BloomTest, FalsePositiveRateNearDesign) {
  BloomFilter f = BloomFilter::ForEntries(1000);
  for (uint64_t i = 0; i < 1000; ++i) f.Add(Mix64(i));
  int fp = 0;
  const int probes = 10000;
  for (uint64_t i = 0; i < probes; ++i) {
    if (f.MayContain(Mix64(1'000'000 + i))) ++fp;
  }
  double rate = static_cast<double>(fp) / probes;
  EXPECT_LT(rate, 0.03);  // designed for ~1%
}

TEST(BloomTest, UnionContainsBoth) {
  BloomFilter a(1024, 7), b(1024, 7);
  a.Add(Mix64(1));
  b.Add(Mix64(2));
  ASSERT_TRUE(a.UnionWith(b).ok());
  EXPECT_TRUE(a.MayContain(Mix64(1)));
  EXPECT_TRUE(a.MayContain(Mix64(2)));
}

TEST(BloomTest, UnionGeometryMismatchRejected) {
  BloomFilter a(1024, 7), b(2048, 7);
  EXPECT_FALSE(a.UnionWith(b).ok());
}

TEST(BloomTest, SerializeRoundTrip) {
  BloomFilter f(512, 5);
  for (uint64_t i = 0; i < 50; ++i) f.Add(Mix64(i * 31));
  Writer w;
  f.Serialize(&w);
  Reader r(w.buffer());
  BloomFilter back(64, 1);
  ASSERT_TRUE(BloomFilter::Deserialize(&r, &back).ok());
  EXPECT_EQ(back.bit_count(), f.bit_count());
  for (uint64_t i = 0; i < 50; ++i) EXPECT_TRUE(back.MayContain(Mix64(i * 31)));
  EXPECT_EQ(back.PopCount(), f.PopCount());
}

TEST(BloomTest, EstimatedFppGrowsWithLoad) {
  BloomFilter f(1024, 7);
  double fpp_light = f.EstimatedFpp(10);
  double fpp_heavy = f.EstimatedFpp(1000);
  EXPECT_LT(fpp_light, fpp_heavy);
}

// ---------------------------------------------------------------------------
// Hash helpers
// ---------------------------------------------------------------------------

TEST(HashTest, BytesHashIsStable) {
  EXPECT_EQ(HashBytes("pier"), HashBytes("pier"));
  EXPECT_NE(HashBytes("pier"), HashBytes("reip"));
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    total += std::popcount(Mix64(0) ^ Mix64(1ull << i));
  }
  EXPECT_GT(total / 64, 20);
  EXPECT_LT(total / 64, 44);
}

}  // namespace
}  // namespace pier
