// Payload lifetime property test: random forward/rebroadcast trees under
// loss, duplication, and host crashes must end with zero live body buffers
// once the simulation drains and the network is destroyed.
//
// This extends PR 3's SharesBufferWith zero-copy assertions from "the bytes
// are shared" to "the sharing never leaks": every refcounted buffer created
// while packets fan out across hosts must be released no matter where the
// packet died (delivered, lost, faulted, or destroyed in a crashed host's
// in-flight queue).
//
// Seeds are explicit and logged, so any tolerance/leak failure replays.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/fault_plane.h"
#include "sim/network.h"

namespace pier {
namespace sim {
namespace {

// A host that re-forwards every received body to k random peers while the
// hop budget in the header allows — a randomized gossip/broadcast tree. The
// body Payload is sliced and shared, never copied.
class Forwarder : public MessageHandler {
 public:
  Forwarder(Network* net, Rng* rng, int fanout)
      : net_(net), rng_(rng), fanout_(fanout) {}

  void Wire(HostId self) { self_ = self; }

  void OnMessage(HostId, const Packet& packet) override {
    ++received_;
    if (packet.head.size() < 1) return;
    uint8_t hops = static_cast<uint8_t>(packet.head.view()[0]);
    if (hops == 0) return;
    for (int i = 0; i < fanout_; ++i) {
      HostId to = static_cast<HostId>(
          rng_->NextBelow(static_cast<uint64_t>(net_->host_count())));
      // Fresh 1-byte head per hop (per-hop state), shared body buffer.
      Packet out(Payload(std::string(1, static_cast<char>(hops - 1))),
                 packet.body);
      (void)net_->Send(self_, to, std::move(out));
    }
  }

  uint64_t received() const { return received_; }

 private:
  Network* net_;
  Rng* rng_;
  int fanout_;
  HostId self_ = kInvalidHost;
  uint64_t received_ = 0;
};

TEST(PayloadLeakTest, RandomForwardTreesUnderLossEndWithZeroLiveBodies) {
  for (uint64_t seed : {11ull, 12ull, 13ull, 14ull, 15ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const uint64_t live_before = Payload::buffers_live();
    uint64_t delivered = 0;
    {
      NetworkOptions nopts;
      nopts.loss_rate = 0.2;  // ambient loss on top of injected faults
      Simulation sim(seed);
      Network net(&sim, nopts);
      FaultPlane plane(sim.rng().Fork(0x6c65616bull));  // "leak"
      net.SetFaultPlane(&plane);
      Rng rng = sim.rng().Fork(0x7472656533ull);  // "tree3"

      constexpr int kHosts = 24;
      std::vector<std::unique_ptr<Forwarder>> handlers;
      for (int i = 0; i < kHosts; ++i) {
        handlers.push_back(
            std::make_unique<Forwarder>(&net, &rng, /*fanout=*/2));
        HostId h = net.AddHost(handlers.back().get());
        handlers.back()->Wire(h);
      }
      // Injected adversity: a partition, some duplication, a delay spike.
      plane.Partition({1, 2, 3}, {}, Seconds(2), Seconds(20));
      plane.Duplicate({}, {}, 0.15, Seconds(1), Seconds(30));
      plane.DelaySpike({4, 5}, {}, Millis(400), Seconds(5), Seconds(25));

      // Seed 40 broadcast roots with shared bodies and random hop budgets,
      // then crash/reboot a few hosts mid-flight.
      for (int i = 0; i < 40; ++i) {
        HostId from = static_cast<HostId>(rng.NextBelow(kHosts));
        HostId to = static_cast<HostId>(rng.NextBelow(kHosts));
        int hops = 1 + static_cast<int>(rng.NextBelow(5));
        Payload body(std::string(64 + rng.NextBelow(512), 'b'));
        sim.ScheduleAt(Seconds(static_cast<int64_t>(rng.NextBelow(10))),
                       [&net, from, to, hops, body] {
                         Packet p(Payload(std::string(
                                      1, static_cast<char>(hops))),
                                  body);
                         (void)net.Send(from, to, std::move(p));
                       });
      }
      for (int i = 0; i < 5; ++i) {
        HostId victim = static_cast<HostId>(1 + rng.NextBelow(kHosts - 1));
        TimePoint at = Seconds(static_cast<int64_t>(3 + rng.NextBelow(15)));
        sim.ScheduleAt(at, [&net, victim] { net.SetHostUp(victim, false); });
        sim.ScheduleAt(at + Seconds(4),
                       [&net, victim] { net.SetHostUp(victim, true); });
      }

      sim.RunAll();
      delivered = net.stats().messages_delivered;
      EXPECT_GT(delivered, 0u);
      EXPECT_GT(net.stats().messages_faulted + net.stats().messages_lost, 0u);
      net.SetFaultPlane(nullptr);
    }
    // Network, handlers, and every pending event are gone: all body buffers
    // created by the run must have been released.
    EXPECT_EQ(Payload::buffers_live(), live_before)
        << "leaked payload buffers after " << delivered << " deliveries";
  }
}

TEST(PayloadLeakTest, LiveCounterTracksSharingNotCopies) {
  const uint64_t live_before = Payload::buffers_live();
  {
    Payload a(std::string(128, 'x'));
    EXPECT_EQ(Payload::buffers_live(), live_before + 1);
    Payload b = a;               // refcount bump, no new buffer
    Payload c = a.Slice(10, 50);  // shares too
    EXPECT_EQ(Payload::buffers_live(), live_before + 1);
    EXPECT_TRUE(c.SharesBufferWith(a));
    (void)b;
  }
  EXPECT_EQ(Payload::buffers_live(), live_before);
}

}  // namespace
}  // namespace sim
}  // namespace pier
